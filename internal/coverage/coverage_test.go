package coverage

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/lfsr"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
)

func bomFactory(n int) MemoryFactory {
	return func() ram.Memory { return ram.NewBOM(n) }
}

func womFactory(n, m int) MemoryFactory {
	return func() ram.Memory { return ram.NewWOM(n, m) }
}

func TestCampaignMarchCMinusSingleCell(t *testing.T) {
	n := 32
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 1)}
	res := Campaign(MarchRunner(march.MarchCMinus(), nil), u, bomFactory(n), 4)
	if res.FalsePositive {
		t.Fatal("March C- false positive")
	}
	if res.Coverage() != 1 {
		t.Errorf("March C- single-cell coverage = %.3f, want 1", res.Coverage())
	}
	if res.OpsCleanRun != uint64(10*n) {
		t.Errorf("clean ops = %d, want 10n", res.OpsCleanRun)
	}
	if res.ByClass[fault.ClassSAF].Total != 2*n || res.ByClass[fault.ClassTF].Total != 2*n {
		t.Errorf("class totals wrong: %+v", res.ByClass)
	}
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	n := 16
	u := fault.StandardUniverse(n, 1, 5, 3)
	r1 := Campaign(MarchRunner(march.MarchY(), nil), u, bomFactory(n), 1)
	r8 := Campaign(MarchRunner(march.MarchY(), nil), u, bomFactory(n), 8)
	if r1.Detected != r8.Detected || r1.Total != r8.Total {
		t.Errorf("worker count changed results: %d/%d vs %d/%d",
			r1.Detected, r1.Total, r8.Detected, r8.Total)
	}
	for c, s1 := range r1.ByClass {
		if s8 := r8.ByClass[c]; s1 != s8 {
			t.Errorf("class %v differs: %+v vs %+v", c, s1, s8)
		}
	}
}

func TestCampaignPRTRunner(t *testing.T) {
	n := 32
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 4)}
	res := Campaign(PRTRunner(prt.PaperWOMScheme3()), u, womFactory(n, 4), 0)
	if res.FalsePositive {
		t.Fatal("PRT false positive")
	}
	if res.Coverage() != 1 {
		t.Errorf("PRT-3 single-cell coverage = %.3f", res.Coverage())
	}
	if res.Runner != "PRT-3" {
		t.Errorf("runner name %q", res.Runner)
	}
}

func TestCompareOrdersResults(t *testing.T) {
	n := 16
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 1)}
	runners := []Runner{
		MarchRunner(march.MATS(), nil),
		MarchRunner(march.MarchCMinus(), nil),
	}
	rs := Compare(runners, u, bomFactory(n), 2)
	if len(rs) != 2 || rs[0].Runner != "MATS" || rs[1].Runner != "March C-" {
		t.Fatalf("compare results misordered: %+v", rs)
	}
	// MATS (no TF coverage) must trail March C-.
	if rs[0].Detected >= rs[1].Detected {
		t.Errorf("MATS %d should detect fewer than March C- %d", rs[0].Detected, rs[1].Detected)
	}
}

func TestBitSlicedRunner(t *testing.T) {
	n, m := 16, 4
	u := fault.Universe{Name: "iw", Faults: fault.IntraWordUniverse(n, m)}
	r := BitSlicedRunner("bs-random", prt.BitSlicedScheme(m, prt.RandomLanes, 4))
	res := Campaign(r, u, womFactory(n, m), 0)
	if res.FalsePositive {
		t.Fatal("bit-sliced false positive")
	}
	if res.Coverage() <= 0.3 {
		t.Errorf("bit-sliced coverage %.2f suspiciously low", res.Coverage())
	}
}

func TestDualPortRunner(t *testing.T) {
	n := 16
	g := lfsr.PaperGenPoly()
	r := DualPortRunner("2P-PRT", func(mp *ram.MultiPort) (bool, uint64, error) {
		return prt.DualPortScheme3(g, mp)
	})
	u := fault.Universe{Name: "saf", Faults: fault.SingleCellUniverse(n, 4)}
	res := Campaign(r, u, womFactory(n, 4), 2)
	if res.FalsePositive {
		t.Fatal("dual-port false positive")
	}
	if res.ByClass[fault.ClassSAF].Ratio() != 1 {
		t.Errorf("dual-port SAF coverage %.2f", res.ByClass[fault.ClassSAF].Ratio())
	}
}

func TestClassStatRatio(t *testing.T) {
	if (ClassStat{}).Ratio() != 0 {
		t.Error("empty class ratio should be 0")
	}
	if (ClassStat{Total: 4, Detected: 3}).Ratio() != 0.75 {
		t.Error("ratio wrong")
	}
}

func TestResultClassesSorted(t *testing.T) {
	res := Result{ByClass: map[fault.Class]ClassStat{
		fault.ClassBF:  {},
		fault.ClassSAF: {},
		fault.ClassTF:  {},
	}}
	cs := res.Classes()
	if len(cs) != 3 || cs[0] != fault.ClassSAF || cs[2] != fault.ClassBF {
		t.Errorf("classes unsorted: %v", cs)
	}
}

func TestFalsePositiveFlag(t *testing.T) {
	// A deliberately broken runner that always detects.
	broken := brokenRunner{}
	u := fault.Universe{Name: "one", Faults: fault.StuckOpenUniverse(4)}
	res := Campaign(broken, u, bomFactory(8), 1)
	if !res.FalsePositive {
		t.Error("false positive not flagged")
	}
}

type brokenRunner struct{}

func (brokenRunner) Name() string                  { return "broken" }
func (brokenRunner) Run(ram.Memory) (bool, uint64) { return true, 1 }

func TestSumAggregatesClasses(t *testing.T) {
	byClass := map[fault.Class]ClassStat{
		fault.ClassSAF:  {Total: 10, Detected: 9},
		fault.ClassTF:   {Total: 5, Detected: 5},
		fault.ClassCFin: {Total: 7, Detected: 3},
	}
	d, tot := Sum(byClass, fault.ClassSAF, fault.ClassTF)
	if d != 14 || tot != 15 {
		t.Errorf("Sum = %d/%d, want 14/15", d, tot)
	}
	// Absent classes contribute zero.
	d, tot = Sum(byClass, fault.ClassBF)
	if d != 0 || tot != 0 {
		t.Errorf("Sum of absent class = %d/%d", d, tot)
	}
}
