package sim

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// Arena is one replay worker's reusable machine-array state for a
// compiled program: lane buffer, hook tables, read-history ring,
// scratch and a hook pool.  Between batches only the cells the
// previous batch dirtied are restored (a dirty-cell list with epoch
// stamps), so steady-state batches allocate nothing and touch
// O(dirty) instead of O(Size×Width) memory.  An Arena is single-
// threaded; Shards-style drivers create one per worker.
type Arena struct {
	p *Program

	// lanes[(cell*laneWords+g)*width+bit]: each cell owns a contiguous
	// block of laneWords*width words, lane group g (machines [g*64,
	// g*64+64)) at offset g*width — so a single group, viewed through
	// its laneGroup adapter, has exactly the classic 64-lane shape the
	// fault-model hooks address.
	lanes []uint64
	clock uint64

	// views[g] adapts group g of this arena to fault.HookRegistry;
	// hooks installed and invoked through views[g] see only that
	// group's lane words.
	views []laneGroup

	// Dirty-cell tracking: dirtyAt[c] == epoch marks c already recorded
	// this batch.  The epoch bump in reset makes clearing O(dirty).
	dirty   []int32
	dirtyAt []uint32
	epoch   uint32

	// Hook tables, per (cell, lane group) — index cell*laneWords+g;
	// hookedW/hookedR remember which entries the current batch hooked
	// so reset truncates only those (keeping the slices' capacity for
	// the next batch).  flags mirrors the tables' non-emptiness as one
	// byte per cell (any group): the kernels' hot loops test it instead
	// of loading 24-byte slice headers, keeping the lookup table
	// cache-resident even at production memory sizes.
	writeHooks [][]fault.WriteHook
	readHooks  [][]fault.ReadHook
	everyRead  [][]fault.ReadHook // per lane group
	everyN     int                // total every-read hooks across groups
	hookedW    []int32
	hookedR    []int32
	flags      []uint8

	hist []uint64 // read-history ring, maxBack*width*laneWords words
	val  []uint64 // scratch: sensed lanes of the current read, [group][bit]
	data []uint64 // scratch: lanes of the current write, [group][bit]

	// Signature-observer state: acc holds every observer's per-lane
	// accumulator difference back to back (Program.accWords rows of
	// laneWords words each, row r of observer o at acc[(o.acc+r)*W+g]
	// for group g; offsets pre-resolved in the fold/observe side
	// tables), obsScr is the fold scratch (widest observer) and diff
	// the read-difference scratch.  The whole buffer is a few words per
	// observer, so reset clears it wholesale — still O(observer state),
	// not O(memory).
	acc    []uint64
	obsScr []uint64
	diff   []uint64

	pool fault.Pool
}

// NewArena builds a worker arena for the program.
func NewArena(p *Program) *Arena {
	a := &Arena{}
	a.Retarget(p)
	return a
}

// grow resizes a scratch slice to n elements, reusing capacity.  The
// exposed elements may hold stale values; callers clear or overwrite
// what replay reads.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Retarget rebinds the arena to a (possibly different) compiled
// program: every buffer is resized for the new geometry and all state —
// lanes, hook tables, dirty tracking, observer accumulators, the hook
// pool — is restored to the program's initial conditions.  A
// retargeted arena is indistinguishable from a fresh NewArena (the
// cross-program reuse regression test replays program pairs in both
// orders), so session executors keep one arena per worker alive across
// the stages of a campaign instead of reallocating per program.
func (a *Arena) Retarget(p *Program) {
	a.p = p
	a.clock = 0
	W := p.laneWords
	a.lanes = grow(a.lanes, len(p.initLanes))
	copy(a.lanes, p.initLanes)
	a.views = grow(a.views, W)
	for g := range a.views {
		a.views[g] = laneGroup{a: a, g: g}
	}
	// Dirty tracking restarts from scratch: the wholesale lane copy
	// above already restored everything the previous program touched.
	a.dirty = a.dirty[:0]
	a.dirtyAt = grow(a.dirtyAt, p.size)
	clear(a.dirtyAt)
	a.epoch = 1
	// Hook state from the previous program is dropped outright (clear
	// nils the inner slices): the hooked lists may describe cells that
	// no longer exist at the new size.
	a.writeHooks = grow(a.writeHooks, p.size*W)
	clear(a.writeHooks)
	a.readHooks = grow(a.readHooks, p.size*W)
	clear(a.readHooks)
	a.everyRead = grow(a.everyRead, W)
	clear(a.everyRead)
	a.everyN = 0
	a.hookedW = a.hookedW[:0]
	a.hookedR = a.hookedR[:0]
	a.flags = grow(a.flags, p.size)
	clear(a.flags)
	a.val = grow(a.val, p.width*W)
	a.data = grow(a.data, p.width*W)
	a.hist = grow(a.hist, p.maxBack*p.width*W)
	clear(a.hist)
	a.acc = grow(a.acc, p.accWords*W)
	clear(a.acc)
	a.obsScr = grow(a.obsScr, p.obsBits*W)
	a.diff = grow(a.diff, p.width*W)
	a.pool.Reset()
}

// Arena implements fault.LaneMemory and fault.HookRegistry as lane
// group 0 — the only group of a classic 64-machine program, where the
// index formulas collapse to the historical cell*width+bit layout.
// Wider programs address groups g > 0 through a.views[g].

// Size implements fault.LaneMemory.
func (a *Arena) Size() int { return a.p.size }

// Width implements fault.LaneMemory.
func (a *Arena) Width() int { return a.p.width }

// Clock implements fault.LaneMemory.
func (a *Arena) Clock() uint64 { return a.clock }

// StoredLane implements fault.LaneMemory.
func (a *Arena) StoredLane(cell, bit int) uint64 {
	return a.lanes[cell*a.p.laneWords*a.p.width+bit]
}

// SetStoredLane implements fault.LaneMemory.
//
//faultsim:hotpath
func (a *Arena) SetStoredLane(cell, bit int, value, mask uint64) {
	a.markDirty(cell)
	idx := cell*a.p.laneWords*a.p.width + bit
	a.lanes[idx] = a.lanes[idx]&^mask | value&mask
}

// laneGroup is the 64-lane view of one lane group of an arena: the
// LaneMemory/HookRegistry the fault-model hooks of group g are
// installed against and invoked with.  All lane indexing is offset to
// the group's word of each cell-bit block, so the single-word hook
// implementations in the fault package run unmodified on wide arenas.
type laneGroup struct {
	a *Arena
	g int
}

// Size implements fault.LaneMemory.
func (v *laneGroup) Size() int { return v.a.p.size }

// Width implements fault.LaneMemory.
func (v *laneGroup) Width() int { return v.a.p.width }

// Clock implements fault.LaneMemory.
func (v *laneGroup) Clock() uint64 { return v.a.clock }

// StoredLane implements fault.LaneMemory.
//
//faultsim:hotpath
func (v *laneGroup) StoredLane(cell, bit int) uint64 {
	p := v.a.p
	return v.a.lanes[(cell*p.laneWords+v.g)*p.width+bit]
}

// SetStoredLane implements fault.LaneMemory.
//
//faultsim:hotpath
func (v *laneGroup) SetStoredLane(cell, bit int, value, mask uint64) {
	a := v.a
	a.markDirty(cell)
	idx := (cell*a.p.laneWords+v.g)*a.p.width + bit
	a.lanes[idx] = a.lanes[idx]&^mask | value&mask
}

// OnWriteTo implements fault.HookRegistry.
//
//faultsim:hotpath
func (v *laneGroup) OnWriteTo(cell int, h fault.WriteHook) { v.a.onWriteTo(cell, v.g, h) }

// OnReadOf implements fault.HookRegistry.
//
//faultsim:hotpath
func (v *laneGroup) OnReadOf(cell int, h fault.ReadHook) { v.a.onReadOf(cell, v.g, h) }

// OnEveryRead implements fault.HookRegistry.
//
//faultsim:hotpath
func (v *laneGroup) OnEveryRead(h fault.ReadHook) { v.a.onEveryRead(v.g, h) }

// markDirty records cell for restoration at the next reset.
//
//faultsim:hotpath
func (a *Arena) markDirty(cell int) {
	if a.dirtyAt[cell] != a.epoch {
		a.dirtyAt[cell] = a.epoch
		a.dirty = append(a.dirty, int32(cell)) //faultsim:alloc-ok capacity is retained across resets; amortizes to zero
	}
}

// Kernel-visible hook flags, one byte per cell.
const (
	flagRead  uint8 = 1 << iota // readHooks[cell] is non-empty
	flagWrite                   // writeHooks[cell] is non-empty
)

// OnWriteTo implements fault.HookRegistry (lane group 0).
//
//faultsim:hotpath
func (a *Arena) OnWriteTo(cell int, h fault.WriteHook) { a.onWriteTo(cell, 0, h) }

// OnReadOf implements fault.HookRegistry (lane group 0).
//
//faultsim:hotpath
func (a *Arena) OnReadOf(cell int, h fault.ReadHook) { a.onReadOf(cell, 0, h) }

// OnEveryRead implements fault.HookRegistry (lane group 0).
//
//faultsim:hotpath
func (a *Arena) OnEveryRead(h fault.ReadHook) { a.onEveryRead(0, h) }

//faultsim:hotpath
func (a *Arena) onWriteTo(cell, g int, h fault.WriteHook) {
	e := cell*a.p.laneWords + g
	if len(a.writeHooks[e]) == 0 {
		a.hookedW = append(a.hookedW, int32(e)) //faultsim:alloc-ok capacity is retained across resets
		a.flags[cell] |= flagWrite
	}
	a.writeHooks[e] = append(a.writeHooks[e], h) //faultsim:alloc-ok hook lists keep capacity across resets
}

//faultsim:hotpath
func (a *Arena) onReadOf(cell, g int, h fault.ReadHook) {
	e := cell*a.p.laneWords + g
	if len(a.readHooks[e]) == 0 {
		a.hookedR = append(a.hookedR, int32(e)) //faultsim:alloc-ok capacity is retained across resets
		a.flags[cell] |= flagRead
	}
	a.readHooks[e] = append(a.readHooks[e], h) //faultsim:alloc-ok hook lists keep capacity across resets
}

//faultsim:hotpath
func (a *Arena) onEveryRead(g int, h fault.ReadHook) {
	a.everyRead[g] = append(a.everyRead[g], h) //faultsim:alloc-ok capacity is retained across resets
	a.everyN++
}

// reset restores the arena to the program's initial state, touching
// only what the previous batch changed.
//
//faultsim:hotpath
func (a *Arena) reset() {
	// blk is the per-cell lane block: laneWords words per bit.
	blk := a.p.width * a.p.laneWords
	switch {
	case a.p.dense || 2*len(a.dirty) >= a.p.size:
		// Most cells dirtied (typical for full-array test algorithms,
		// detected at compile time as dense): one contiguous copy beats
		// per-cell restores — and the kernels skip dirty marking for
		// dense programs entirely.
		copy(a.lanes, a.p.initLanes)
	case blk == 1:
		for _, c := range a.dirty {
			a.lanes[c] = a.p.initLanes[c]
		}
	default:
		for _, c := range a.dirty {
			base := int(c) * blk
			copy(a.lanes[base:base+blk], a.p.initLanes[base:base+blk])
		}
	}
	a.dirty = a.dirty[:0]
	a.epoch++
	if a.epoch == 0 { // stamp wrap-around: invalidate all stamps
		clear(a.dirtyAt)
		a.epoch = 1
	}
	// Hooked entries are (cell, group) pairs; the per-cell flag byte is
	// the union over groups, so clearing it per entry is idempotent.
	W := a.p.laneWords
	for _, e := range a.hookedW {
		a.writeHooks[e] = a.writeHooks[e][:0]
		a.flags[int(e)/W] &^= flagWrite
	}
	for _, e := range a.hookedR {
		a.readHooks[e] = a.readHooks[e][:0]
		a.flags[int(e)/W] &^= flagRead
	}
	a.hookedW = a.hookedW[:0]
	a.hookedR = a.hookedR[:0]
	if a.everyN != 0 {
		for g := range a.everyRead {
			a.everyRead[g] = a.everyRead[g][:0]
		}
		a.everyN = 0
	}
	clear(a.acc)
	a.pool.Reset()
	a.clock = 0
}

// ArenaPool recycles worker arenas across the compiled programs of a
// campaign session: a worker checks an arena out for one program (Get
// retargets it when the shape changed), replays its batches, and
// returns it.  A nil pool is valid and simply builds fresh arenas.
// The pool is safe for concurrent Get/Put; each checked-out arena is
// still single-threaded.
type ArenaPool struct {
	mu   sync.Mutex
	free []*Arena
}

// Get returns an arena bound to p, reusing a pooled one when possible.
func (ap *ArenaPool) Get(p *Program) *Arena {
	if ap == nil {
		telemetry.Active().ArenaGet(false)
		return NewArena(p)
	}
	ap.mu.Lock()
	var a *Arena
	if n := len(ap.free); n > 0 {
		a = ap.free[n-1]
		ap.free = ap.free[:n-1]
	}
	ap.mu.Unlock()
	telemetry.Active().ArenaGet(a != nil)
	if a == nil {
		return NewArena(p)
	}
	a.Retarget(p)
	return a
}

// Put returns an arena to the pool for a later Get.
func (ap *ArenaPool) Put(a *Arena) {
	if ap == nil || a == nil {
		return
	}
	ap.mu.Lock()
	ap.free = append(ap.free, a)
	ap.mu.Unlock()
}

// inject installs each fault on its machine lane, preferring the
// pooled (allocation-free) capability.  Fault i lands on lane i%64 of
// lane group i/64, registered through that group's 64-lane view.
//
//faultsim:hotpath
func (a *Arena) inject(faults []fault.Fault) error {
	if len(faults) > a.p.BatchFaults() {
		//faultsim:alloc-ok cold error path, never taken by a well-formed campaign
		return fmt.Errorf("sim: batch of %d faults exceeds the %d machine lanes", len(faults), a.p.BatchFaults())
	}
	for i, f := range faults {
		var reg fault.HookRegistry = a
		lane := i
		if lane >= BatchSize {
			reg = &a.views[lane/BatchSize]
			lane %= BatchSize
		}
		switch bi := f.(type) {
		case fault.PooledInjector:
			bi.BatchInjectPooled(reg, lane, &a.pool)
		case fault.BatchInjector:
			bi.BatchInject(reg, lane)
		default:
			//faultsim:alloc-ok cold error path, never taken by a well-formed campaign
			return fmt.Errorf("sim: fault %s (%T) does not support batch injection", f, f)
		}
	}
	return nil
}
