package sim

import (
	"fmt"
	"slices"

	"repro/internal/ram"
)

// Linear describes a write as a GF(2)-affine function of earlier
// reads; see ram.TraceAnnotator for the exact bit semantics.
type Linear struct {
	// Back[j] is the 1-based distance to source read j (1 = the read
	// immediately preceding the write).
	Back []int
	// Rows[j][r] is the bitmask of source-read bits feeding bit r.
	Rows [][]uint32
	// Offset is the affine constant.
	Offset ram.Word
}

// Fold describes a read's signature-fold annotation: the observed
// value feeds a GF(2)-linear accumulator; see ram.TraceAnnotator for
// the exact bit semantics.
type Fold struct {
	// Obs is the observer id (index into Trace.Observers).
	Obs int
	// Step[r] is the bitmask of accumulator bits feeding new
	// accumulator bit r (the MISR's α-multiply).
	Step []uint32
	// Tap[r] is the bitmask of read-word bits XORed into accumulator
	// bit r.
	Tap []uint32
}

// OpObserve is the trace-op kind of an observer compare point.  It is
// not a memory access: replay tests the observer's accumulated
// faulty-minus-clean difference and detects the machine when it is
// nonzero, without touching lanes, hooks or the operation clock.
const OpObserve ram.OpKind = -1

// Op is one recorded memory operation (ram.OpRead or ram.OpWrite) or
// an observer compare point (OpObserve, with Addr the observer id).
type Op struct {
	Kind ram.OpKind
	Addr int
	// Data is the written value for OpWrite and the fault-free sensed
	// value for OpRead.
	Data ram.Word
	// Checked marks a read the algorithm compares against its
	// fault-free expected value.
	Checked bool
	// Lin, when non-nil, overrides Data with an affine recomputation
	// from the replaying machine's own earlier reads.
	Lin *Linear
	// Fold, when non-nil, folds this read into a signature observer.
	Fold *Fold
}

// Trace is the deterministic operation stream of one clean run of a
// test algorithm, ready for bit-parallel replay.
type Trace struct {
	Size  int
	Width int
	// Init is the memory contents before the run.
	Init []ram.Word
	Ops  []Op
	// Checked counts checked reads — a trace with none (and no
	// observer compare points) would declare every fault undetected,
	// which almost always means the executor does not annotate;
	// Replayable reports on it.
	Checked int
	// MaxBack is the largest Linear.Back distance, sizing the replay's
	// read-history ring.
	MaxBack int
	// Observers[id] is the accumulator bit-width of signature observer
	// id (0 for an id never folded into).
	Observers []int
	// Observes counts observer compare points.
	Observes int
}

// Replayable reports whether the trace carries the annotations replay
// correctness depends on: at least one detection point (a checked read
// or an observer compare).
func (t *Trace) Replayable() bool { return t.Checked > 0 || t.Observes > 0 }

// Recorder is an instrumented ram.Memory: it forwards every operation
// to a fault-free backing memory and appends it to the trace.  It
// implements ram.TraceAnnotator, so annotation-aware executors mark
// checked reads and linear writes as they run.
type Recorder struct {
	mem ram.Memory
	tr  Trace
	// lastFold[obs] is the most recent Fold recorded for the observer;
	// folds almost always repeat the same matrices (a MISR's step/tap
	// are fixed), so reuse keeps recording O(observers) — not
	// O(reads) — in allocations.  Ops share the pointer read-only.
	lastFold []*Fold
}

// NewRecorder wraps a fresh fault-free memory.
func NewRecorder(mem ram.Memory) *Recorder {
	return &Recorder{
		mem: mem,
		tr: Trace{
			Size:  mem.Size(),
			Width: mem.Width(),
			Init:  ram.Snapshot(mem),
		},
	}
}

// Read implements ram.Memory.
func (r *Recorder) Read(addr int) ram.Word {
	v := r.mem.Read(addr)
	r.tr.Ops = append(r.tr.Ops, Op{Kind: ram.OpRead, Addr: addr, Data: v})
	return v
}

// Write implements ram.Memory.
func (r *Recorder) Write(addr int, v ram.Word) {
	r.mem.Write(addr, v)
	r.tr.Ops = append(r.tr.Ops, Op{Kind: ram.OpWrite, Addr: addr, Data: v})
}

// Size implements ram.Memory.
func (r *Recorder) Size() int { return r.mem.Size() }

// Width implements ram.Memory.
func (r *Recorder) Width() int { return r.mem.Width() }

// AnnotateChecked implements ram.TraceAnnotator.
func (r *Recorder) AnnotateChecked() {
	last := len(r.tr.Ops) - 1
	if last < 0 || r.tr.Ops[last].Kind != ram.OpRead {
		panic("sim: AnnotateChecked without a preceding read")
	}
	if !r.tr.Ops[last].Checked {
		r.tr.Ops[last].Checked = true
		r.tr.Checked++
	}
}

// AnnotateLinear implements ram.TraceAnnotator.
func (r *Recorder) AnnotateLinear(back []int, rows [][]uint32, offset ram.Word) {
	last := len(r.tr.Ops) - 1
	if last < 0 || r.tr.Ops[last].Kind != ram.OpWrite {
		panic("sim: AnnotateLinear without a preceding write")
	}
	if len(back) != len(rows) {
		panic(fmt.Sprintf("sim: %d back distances for %d row sets", len(back), len(rows)))
	}
	lin := &Linear{
		Back:   append([]int(nil), back...),
		Rows:   make([][]uint32, len(rows)),
		Offset: offset,
	}
	for j, rw := range rows {
		lin.Rows[j] = append([]uint32(nil), rw...)
	}
	for _, b := range back {
		if b < 1 {
			panic(fmt.Sprintf("sim: linear back distance %d must be >= 1", b))
		}
		if b > r.tr.MaxBack {
			r.tr.MaxBack = b
		}
	}
	r.tr.Ops[last].Lin = lin
}

// AnnotateFold implements ram.TraceAnnotator.
func (r *Recorder) AnnotateFold(obs int, step, tap []uint32) {
	last := len(r.tr.Ops) - 1
	if last < 0 || r.tr.Ops[last].Kind != ram.OpRead {
		panic("sim: AnnotateFold without a preceding read")
	}
	if r.tr.Ops[last].Fold != nil {
		panic("sim: read already folded into an observer")
	}
	if obs < 0 {
		panic(fmt.Sprintf("sim: negative observer id %d", obs))
	}
	bits := len(step)
	if bits != len(tap) {
		panic(fmt.Sprintf("sim: %d step rows for %d tap rows", bits, len(tap)))
	}
	if bits < 1 || bits > 32 {
		panic(fmt.Sprintf("sim: observer width %d out of range [1,32]", bits))
	}
	if bits < 32 {
		for r2, m := range step {
			if m>>uint(bits) != 0 {
				panic(fmt.Sprintf("sim: step row %d references accumulator bits beyond width %d", r2, bits))
			}
		}
	}
	if w := r.tr.Width; w < 32 {
		for r2, m := range tap {
			if m>>uint(w) != 0 {
				panic(fmt.Sprintf("sim: tap row %d references read bits beyond memory width %d", r2, w))
			}
		}
	}
	for obs >= len(r.tr.Observers) {
		r.tr.Observers = append(r.tr.Observers, 0)
		r.lastFold = append(r.lastFold, nil)
	}
	if w := r.tr.Observers[obs]; w == 0 {
		r.tr.Observers[obs] = bits
	} else if w != bits {
		panic(fmt.Sprintf("sim: observer %d folded at width %d after width %d", obs, bits, w))
	}
	if f := r.lastFold[obs]; f != nil && slices.Equal(f.Step, step) && slices.Equal(f.Tap, tap) {
		r.tr.Ops[last].Fold = f
		return
	}
	f := &Fold{
		Obs:  obs,
		Step: append([]uint32(nil), step...),
		Tap:  append([]uint32(nil), tap...),
	}
	r.lastFold[obs] = f
	r.tr.Ops[last].Fold = f
}

// AnnotateObserved implements ram.TraceAnnotator.
func (r *Recorder) AnnotateObserved(obs int) {
	if obs < 0 || obs >= len(r.tr.Observers) || r.tr.Observers[obs] == 0 {
		panic(fmt.Sprintf("sim: AnnotateObserved of observer %d that was never folded into", obs))
	}
	r.tr.Ops = append(r.tr.Ops, Op{Kind: OpObserve, Addr: obs})
	r.tr.Observes++
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.tr }

// Record runs the test once on an instrumented clean memory and
// returns the trace plus the clean run's outcome (detected on a
// fault-free memory means a broken configuration — a campaign must
// fall back to the oracle in that case, because checked-read
// comparison against clean values no longer matches the algorithm's
// own expectations).
func Record(mem ram.Memory, run func(ram.Memory) (bool, uint64)) (*Trace, bool, uint64) {
	rec := NewRecorder(mem)
	detected, ops := run(rec)
	return rec.Trace(), detected, ops
}
