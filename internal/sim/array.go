package sim

import (
	"fmt"

	"repro/internal/fault"
)

// Array is the bit-sliced machine array: the state of up to 64
// simultaneously simulated faulty machines, each running the same
// operation schedule.  Cell-bit (c, b) across all machines lives in
// one uint64 lane word; fault behaviour is installed per machine lane
// through the fault.BatchInjector hooks.
type Array struct {
	size  int
	width int
	lanes []uint64 // lanes[cell*width+bit]
	clock uint64

	// Hook tables are per-cell slices, not maps: the lookup sits in
	// the innermost replay loop (once per trace op per batch).
	writeHooks [][]fault.WriteHook
	readHooks  [][]fault.ReadHook
	everyRead  []fault.ReadHook

	val []uint64 // scratch: sensed value lanes of the current read
}

// NewArray builds an array of identical machines initialised from the
// trace's pre-run memory contents.
func NewArray(tr *Trace) *Array {
	a := &Array{
		size:       tr.Size,
		width:      tr.Width,
		lanes:      make([]uint64, tr.Size*tr.Width),
		writeHooks: make([][]fault.WriteHook, tr.Size),
		readHooks:  make([][]fault.ReadHook, tr.Size),
		val:        make([]uint64, tr.Width),
	}
	for c, w := range tr.Init {
		for b := 0; b < tr.Width; b++ {
			if w>>uint(b)&1 == 1 {
				a.lanes[c*tr.Width+b] = ^uint64(0)
			}
		}
	}
	return a
}

// Size implements fault.LaneMemory.
func (a *Array) Size() int { return a.size }

// Width implements fault.LaneMemory.
func (a *Array) Width() int { return a.width }

// Clock implements fault.LaneMemory.
func (a *Array) Clock() uint64 { return a.clock }

// StoredLane implements fault.LaneMemory.
func (a *Array) StoredLane(cell, bit int) uint64 { return a.lanes[cell*a.width+bit] }

// SetStoredLane implements fault.LaneMemory.
func (a *Array) SetStoredLane(cell, bit int, value, mask uint64) {
	idx := cell*a.width + bit
	a.lanes[idx] = a.lanes[idx]&^mask | value&mask
}

// OnWriteTo implements fault.HookRegistry.
func (a *Array) OnWriteTo(cell int, h fault.WriteHook) {
	a.writeHooks[cell] = append(a.writeHooks[cell], h)
}

// OnReadOf implements fault.HookRegistry.
func (a *Array) OnReadOf(cell int, h fault.ReadHook) {
	a.readHooks[cell] = append(a.readHooks[cell], h)
}

// OnEveryRead implements fault.HookRegistry.
func (a *Array) OnEveryRead(h fault.ReadHook) {
	a.everyRead = append(a.everyRead, h)
}

// Inject installs each fault on its machine lane.  All faults must
// implement fault.BatchInjector.
func (a *Array) Inject(faults []fault.Fault) error {
	if len(faults) > 64 {
		return fmt.Errorf("sim: batch of %d faults exceeds the 64 machine lanes", len(faults))
	}
	for lane, f := range faults {
		bi, ok := f.(fault.BatchInjector)
		if !ok {
			return fmt.Errorf("sim: fault %s (%T) does not support batch injection", f, f)
		}
		bi.BatchInject(a, lane)
	}
	return nil
}

// read senses cell across all machines into the scratch lanes, runs
// the read hooks and returns the sensed lanes (valid until the next
// operation).
func (a *Array) read(cell int) []uint64 {
	a.clock++
	base := cell * a.width
	for b := 0; b < a.width; b++ {
		a.val[b] = a.lanes[base+b]
	}
	for _, h := range a.readHooks[cell] {
		h.OnRead(a, cell, a.val)
	}
	for _, h := range a.everyRead {
		h.OnRead(a, cell, a.val)
	}
	return a.val
}

// write stores the data lanes into cell across all machines, bracketed
// by the write hooks.
func (a *Array) write(cell int, data []uint64) {
	a.clock++
	hooks := a.writeHooks[cell]
	for _, h := range hooks {
		h.PreWrite(a, cell, data)
	}
	base := cell * a.width
	for b := 0; b < a.width; b++ {
		a.lanes[base+b] = data[b]
	}
	for _, h := range hooks {
		h.PostWrite(a, cell, data)
	}
}
