package sim

import (
	"context"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/telemetry"
)

// TestStreamTelemetryCounters: a streaming compiled run with a
// registry attached accounts every fault exactly once, splits its time
// between kernel/sink/source, and drives the high-water mark to the
// resume point of the (index-addressable) source.
func TestStreamTelemetryCounters(t *testing.T) {
	const n = 33
	tr := recordMarch(t, march.MarchCMinus(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StandardUniverse(n, 1, 6, 9).Faults

	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var samples []telemetry.Progress
	reg.OnProgress(0, func(pr telemetry.Progress) { // every flush
		mu.Lock()
		samples = append(samples, pr)
		mu.Unlock()
	})
	telemetry.SetActive(reg)
	defer telemetry.SetActive(nil)

	reg.BeginStage("march", int64(len(faults)))
	cs := newCollectSink()
	if _, _, err := ShardsCompiledStream(context.Background(), p, fault.SliceSource(faults),
		StreamConfig{Chunk: 7, Workers: 1}, cs.sink); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	if s.Faults != uint64(len(faults)) {
		t.Errorf("faults presented = %d, want %d", s.Faults, len(faults))
	}
	if s.Reps != uint64(len(faults)) {
		t.Errorf("uncollapsed reps = %d, want %d", s.Reps, len(faults))
	}
	wantChunks := uint64((len(faults) + 6) / 7)
	if s.Chunks != wantChunks {
		t.Errorf("chunks = %d, want %d", s.Chunks, wantChunks)
	}
	if s.Kernel <= 0 {
		t.Errorf("kernel time = %v", s.Kernel)
	}
	if len(s.Workers) != 1 || s.Workers[0].Faults != s.Faults {
		t.Errorf("worker rows: %+v", s.Workers)
	}

	// The single worker claims chunks in order, so the final progress
	// sample is the completed stage: everything done, ETA zero, high
	// water at the source's end (the resume point).
	mu.Lock()
	defer mu.Unlock()
	if len(samples) == 0 {
		t.Fatal("no progress samples")
	}
	last := samples[len(samples)-1]
	if last.Done != int64(len(faults)) {
		t.Errorf("final Done = %d, want %d", last.Done, len(faults))
	}
	if last.ETA != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETA)
	}
	if last.HighWater != int64(len(faults)) {
		t.Errorf("final high water = %d, want %d", last.HighWater, len(faults))
	}
	if last.FaultsPerSec <= 0 {
		t.Errorf("final faults/s = %v", last.FaultsPerSec)
	}
}

// TestStreamTelemetryRace hammers one registry from two concurrent
// multi-worker streaming campaigns while a reader polls snapshots —
// the -race guard for the engine-side instrumentation (the
// registry-internal guard lives in internal/telemetry).  Aggregate
// totals stay exact even though per-worker attribution blurs.
func TestStreamTelemetryRace(t *testing.T) {
	const n = 32
	tr := recordMarch(t, march.MarchB(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StandardUniverse(n, 1, 8, 3).Faults

	reg := telemetry.NewRegistry()
	reg.OnProgress(0, func(telemetry.Progress) {}) // emission path under race too
	reg.BeginStage("race", int64(len(faults)))
	telemetry.SetActive(reg)
	defer telemetry.SetActive(nil)

	const runs = 2
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
			}
		}
	}()
	errs := make([]error, runs)
	var runsWG sync.WaitGroup
	for i := 0; i < runs; i++ {
		runsWG.Add(1)
		go func(i int) {
			defer runsWG.Done()
			_, _, errs[i] = ShardsCompiledStream(context.Background(), p, fault.SliceSource(faults),
				StreamConfig{Chunk: 5, Workers: 3, Collapse: true},
				func(int, int, []int, []fault.Fault, []bool) {})
		}(i)
	}
	runsWG.Wait()
	close(stop)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	s := reg.Snapshot()
	if want := uint64(runs * len(faults)); s.Faults != want {
		t.Errorf("faults presented = %d, want %d", s.Faults, want)
	}
	if s.Reps == 0 || s.Reps > s.Faults {
		t.Errorf("collapsed reps = %d of %d faults", s.Reps, s.Faults)
	}
}
