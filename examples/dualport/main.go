// Dualport demonstrates the paper's Fig. 2 scheme: on a two-port RAM
// the two reads of each π-test sub-iteration execute simultaneously,
// cutting the iteration from 3n operations to 2n cycles.
package main

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/prt"
	"repro/internal/ram"
)

func main() {
	n := 1024
	cfg := prt.PaperWOMConfig()

	// Single-port reference: 3 ops per cell.
	sp := ram.NewWOM(n, 4)
	spRes := prt.MustRunIteration(cfg, sp)
	fmt.Printf("single-port: %d ops  (%.2f per cell)\n", spRes.Ops, float64(spRes.Ops)/float64(n))

	// Dual-port Fig. 2 pipeline: 2 cycles per cell.
	dp := ram.NewDualPort(n, 4)
	dpRes, err := prt.RunDualPort(cfg, dp)
	if err != nil {
		panic(err)
	}
	fmt.Printf("dual-port:   %d cycles (%.2f per cell)\n", dpRes.Cycles, float64(dpRes.Cycles)/float64(n))
	fmt.Printf("speed-up:    %.2fx\n\n", float64(spRes.Ops)/float64(dpRes.Cycles))

	// Same result quality: both leave the identical TDB and signature.
	fmt.Printf("TDB identical: %v\n", ram.Equal(sp, dp.Backing()))
	fmt.Printf("both pass fault-free: %v\n\n", !spRes.Detected && !dpRes.Detected)

	// A faulty 2P memory: inject into the backing array, then run the
	// 3-iteration dual-port scheme.
	broken := ram.NewMultiPortOn(
		fault.TF{Cell: 300, Bit: 1, Up: true}.Inject(ram.NewWOM(n, 4)), 2)
	det, cycles, err := prt.DualPortScheme3(cfg.Gen, broken)
	if err != nil {
		panic(err)
	}
	fmt.Printf("TFup@c300.b1 on 2P memory: detected=%v after %d cycles\n", det, cycles)

	// Port utilisation statistics come from the model itself.
	fmt.Printf("port reads A/B: %d/%d, conflicts: %d\n",
		broken.PortReads[0], broken.PortReads[1], broken.WriteConflicts)
}
