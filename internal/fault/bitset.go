package fault

import "math/bits"

// BitSet is a dense bitmap over universe fault positions — the
// campaign session layer's survivor bookkeeping.  A multi-test dropped
// session over N faults keeps N bits here instead of materialized
// index slices, so cross-test dropping costs N/8 bytes however many
// stages narrow the universe.  Set grows the bitmap on demand (a
// streaming source's Count may be an estimate); Get outside the
// current capacity reads false.  A BitSet is not synchronized.
type BitSet struct {
	words []uint64
}

// NewBitSet returns an empty bitmap with capacity for n bits.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64)}
}

// Get reports bit i (false beyond the current capacity).
func (b *BitSet) Get(i int) bool {
	w := i >> 6
	if w >= len(b.words) {
		return false
	}
	return b.words[w]>>(uint(i)&63)&1 == 1
}

// Set sets bit i, growing the bitmap as needed.
func (b *BitSet) Set(i int) {
	w := i >> 6
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (uint(i) & 63)
}

// Clear clears bit i.
func (b *BitSet) Clear(i int) {
	if w := i >> 6; w < len(b.words) {
		b.words[w] &^= 1 << (uint(i) & 63)
	}
}

// Count returns the number of set bits.
func (b *BitSet) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Or folds other's set bits into b, growing b as needed — the
// partition-merge primitive: per-worker and per-process detection
// bitmaps cover disjoint index ranges, so OR is their exact union.
func (b *BitSet) Or(other *BitSet) {
	if other == nil {
		return
	}
	for len(b.words) < len(other.words) {
		b.words = append(b.words, 0)
	}
	for i, w := range other.words {
		b.words[i] |= w
	}
}

// Clone returns an independent copy.
func (b *BitSet) Clone() *BitSet {
	return &BitSet{words: append([]uint64(nil), b.words...)}
}

// Words exposes the backing word array (bit i lives at word i/64, bit
// i%64) — the serialization surface of the checkpoint layer.  The
// slice aliases the bitmap; callers must not mutate it.
func (b *BitSet) Words() []uint64 { return b.words }

// BitSetFromWords rebuilds a bitmap around a deserialized word array;
// the slice is adopted, not copied.
func BitSetFromWords(words []uint64) *BitSet { return &BitSet{words: words} }

// BitView is a View whose subset is a survivor bitmap over the backing
// slice: position i of the view is the i-th set bit.  It snapshots the
// bitmap at construction (later BitSet mutations do not move the
// view), and carries a per-word rank directory so At/Index resolve a
// view position with one binary search plus an in-word select —
// O(N/64) ints of directory, no per-survivor index slice.
type BitView struct {
	faults []Fault
	words  []uint64
	rank   []int32 // rank[w] = set bits in words[:w]
	n      int
}

// NewBitView builds a view of faults restricted to the set bits of
// bits (bits beyond len(faults) are ignored).
func NewBitView(faults []Fault, bits_ *BitSet) *BitView {
	nw := (len(faults) + 63) / 64
	words := make([]uint64, nw)
	copy(words, bits_.words)
	if nw > 0 && len(faults)%64 != 0 {
		words[nw-1] &= 1<<(uint(len(faults))%64) - 1
	}
	v := &BitView{faults: faults, words: words, rank: make([]int32, nw+1)}
	for w, word := range words {
		v.rank[w+1] = v.rank[w] + int32(bits.OnesCount64(word))
	}
	v.n = int(v.rank[nw])
	return v
}

// Len implements View.
func (v *BitView) Len() int { return v.n }

// Full implements View.
func (v *BitView) Full() bool { return v.n == len(v.faults) }

// sel returns the backing position of view position i (the i-th set
// bit): binary search on the rank directory, select within the word.
func (v *BitView) sel(i int) int {
	lo, hi := 0, len(v.words)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if int(v.rank[mid]) <= i {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	rem := i - int(v.rank[lo])
	word := v.words[lo]
	for ; rem > 0; rem-- {
		word &= word - 1
	}
	return lo*64 + bits.TrailingZeros64(word)
}

// At implements View.
func (v *BitView) At(i int) Fault { return v.faults[v.sel(i)] }

// Index implements View.
func (v *BitView) Index(i int) int { return v.sel(i) }

// Batch implements View: positions [lo, hi) gathered into scratch (the
// backing subslice directly when the view is full).
func (v *BitView) Batch(scratch []Fault, lo, hi int) []Fault {
	if v.Full() {
		return v.faults[lo:hi]
	}
	scratch = scratch[:0]
	if hi <= lo {
		return scratch
	}
	pos := v.sel(lo)
	w, word := pos>>6, v.words[pos>>6]
	word &= ^uint64(0) << (uint(pos) & 63) // drop bits before the first
	for len(scratch) < hi-lo {
		for word == 0 {
			w++
			word = v.words[w]
		}
		scratch = append(scratch, v.faults[w*64+bits.TrailingZeros64(word)])
		word &= word - 1
	}
	return scratch
}

// Where implements View: the kept positions as an index view onto the
// same backing slice.
func (v *BitView) Where(keep func(i int) bool) View {
	idx := make([]int32, 0, v.n)
	pos := 0
	for w, word := range v.words {
		for ; word != 0; word &= word - 1 {
			if keep(pos) {
				idx = append(idx, int32(w*64+bits.TrailingZeros64(word)))
			}
			pos++
		}
	}
	return sliceView{faults: v.faults, idx: idx}
}
