// Faultcampaign runs a full fault-injection campaign: the standard
// van de Goor fault universe against pseudo-ring testing and the March
// baselines, reproducing the coverage comparison of experiment E6 at a
// custom size.
//
// It also demonstrates the three campaign engines: the per-fault
// oracle, the bit-parallel trace-replay engine (package sim), which
// packs 64 faulty machines into every uint64 word, and the compiled
// engine, which lowers the trace to a flat instruction program replayed
// allocation-free over per-worker arenas with fault collapsing.  All
// three produce identical results and are benchmarked here side by
// side, with per-engine faults/s.
//
// Finally it runs the same comparison as one campaign *session*
// (coverage.Plan) with cross-test fault dropping: the cheapest test
// runs first and every fault it detects is dropped from the remaining
// tests, so the session simulates a shrinking survivor set instead of
// re-simulating the full universe per algorithm — the structure behind
// BenchmarkSession's ≥3× speedup over back-to-back campaigns.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
	"repro/internal/report"
)

func main() {
	n, m := 64, 4
	u := fault.StandardUniverse(n, m, 20, 42)
	fmt.Printf("universe: %s — %d faults\n\n", u.Name, u.Len())

	mk := func() ram.Memory { return ram.NewWOM(n, m) }
	bgs := march.DataBackgrounds(m)
	gen := prt.PaperWOMConfig().Gen

	runners := []coverage.Runner{
		coverage.MarchRunner(march.MATSPlus(), bgs),
		coverage.MarchRunner(march.MarchCMinus(), bgs),
		coverage.PRTRunner(prt.StandardScheme3(gen)),
		coverage.PRTRunner(prt.ExtendedScheme(gen, 2)),
	}

	t := report.New("coverage campaign", "algorithm", "ops(clean)", "coverage", "worst class")
	for _, r := range runners {
		res := coverage.Campaign(r, u, mk, 0)
		if res.FalsePositive {
			fmt.Printf("WARNING: %s flags fault-free memory\n", res.Runner)
		}
		worstName, worst := "-", 1.0
		for _, c := range res.Classes() {
			if r := res.ByClass[c].Ratio(); r < worst {
				worst = r
				worstName = c.String()
			}
		}
		t.AddRowf(res.Runner,
			fmt.Sprintf("%d", res.OpsCleanRun),
			report.Percent(res.Detected, res.Total),
			fmt.Sprintf("%s (%.1f%%)", worstName, 100*worst))
	}
	t.Render(os.Stdout)

	// Drill into one algorithm's per-class breakdown.
	fmt.Println()
	res := coverage.Campaign(coverage.PRTRunner(prt.ExtendedScheme(gen, 2)), u, mk, 0)
	d := report.New("PRT-x2 per-class breakdown", "class", "detected", "total", "ratio")
	for _, c := range res.Classes() {
		s := res.ByClass[c]
		d.AddRowf(c.String(), fmt.Sprintf("%d", s.Detected),
			fmt.Sprintf("%d", s.Total), report.Percent(s.Detected, s.Total))
	}
	d.Render(os.Stdout)

	// Engine comparison: same campaign under the per-fault oracle, the
	// bit-parallel trace interpreter, and the compiled arena engine, on
	// a larger memory where the difference matters.  The "simulated"
	// column shows how many machines actually ran: the compiled engine
	// collapses equivalent faults and expands the representatives'
	// results back over the universe.
	fmt.Println()
	bigN := 512
	bigU := fault.Universe{Name: "saf+tf+cf", Faults: append(
		fault.SingleCellUniverse(bigN, 1),
		fault.CouplingUniverse(fault.AdjacentPairs(bigN))...)}
	bigMk := func() ram.Memory { return ram.NewBOM(bigN) }
	runner := coverage.MarchRunner(march.MarchCMinus(), nil)

	e := report.New(fmt.Sprintf("engine comparison — March C- on n=%d, %d faults", bigN, bigU.Len()),
		"engine", "coverage", "simulated", "wall time", "faults/s")
	for _, engine := range []coverage.Engine{coverage.EngineOracle, coverage.EngineBitParallel, coverage.EngineCompiled} {
		start := time.Now()
		r := coverage.CampaignEngine(runner, bigU, bigMk, 0, engine)
		el := time.Since(start)
		simulated := r.Total
		if r.Stats != nil {
			simulated = r.Stats.Reps
		}
		e.AddRowf(engine.String(), report.Percent(r.Detected, r.Total),
			fmt.Sprintf("%d", simulated),
			el.Round(time.Millisecond).String(),
			fmt.Sprintf("%.0f", float64(r.Total)/el.Seconds()))
	}
	e.Render(os.Stdout)

	// Campaign session with cross-test fault dropping: the same March
	// baselines over the big universe, cheapest test first, each fault
	// simulated only until some test detects it.  Per-stage survivor
	// counts show the universe collapsing test by test; the cumulative
	// row is byte-identical to what undropped runs would accumulate.
	fmt.Println()
	plan := coverage.Plan{
		Name: "march-session",
		Runners: []coverage.Runner{
			coverage.MarchRunner(march.MATSPlus(), nil),
			coverage.MarchRunner(march.MarchX(), nil),
			coverage.MarchRunner(march.MarchCMinus(), nil),
			coverage.MarchRunner(march.MarchB(), nil),
		},
		Universe: bigU,
		Memory:   bigMk,
		Drop:     true,
		Order:    coverage.OrderCheapestFirst,
		Cache:    coverage.SharedProgramCache(),
	}
	start := time.Now()
	session := plan.Run()
	el := time.Since(start)
	s := report.New(
		fmt.Sprintf("campaign session — fault dropping, cheapest-first, n=%d, %d faults, %s",
			bigN, bigU.Len(), el.Round(time.Millisecond)),
		"stage", "entered", "newly detected", "survivors")
	for _, st := range session.Stages {
		s.AddRowf(st.Runner,
			fmt.Sprintf("%d", st.Entered),
			fmt.Sprintf("%d", st.Detected),
			fmt.Sprintf("%d", st.Survivors))
	}
	s.AddRowf("cumulative", fmt.Sprintf("%d", session.Cumulative.Total), "",
		fmt.Sprintf("%d (%s)", session.Cumulative.Total-session.Cumulative.Detected,
			report.Percent(session.Cumulative.Detected, session.Cumulative.Total)))
	s.Render(os.Stdout)
}
