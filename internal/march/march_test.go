package march

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ram"
)

func TestLibraryComplexities(t *testing.T) {
	want := map[string]int{
		"MATS": 4, "MATS+": 5, "MATS++": 6,
		"March X": 6, "March Y": 8, "March C-": 10,
		"March U": 13, "March LR": 14, "March A": 15, "March B": 17,
		"March SS": 22, "March LA": 22,
	}
	for _, test := range Library() {
		if got := test.OpsPerCell(); got != want[test.Name] {
			t.Errorf("%s: %dn, want %dn", test.Name, got, want[test.Name])
		}
		if err := test.Validate(); err != nil {
			t.Errorf("%s invalid: %v", test.Name, err)
		}
	}
}

func TestRunCleanMemoryPasses(t *testing.T) {
	for _, test := range Library() {
		for _, mem := range []ram.Memory{ram.NewBOM(64), ram.NewWOM(32, 4)} {
			res := Run(test, mem, 0)
			if res.Detected {
				t.Errorf("%s false positive on clean memory: %v", test.Name, res.First)
			}
			wantOps := uint64(test.OpsPerCell() * mem.Size())
			if res.Ops != wantOps {
				t.Errorf("%s ops = %d, want %d", test.Name, res.Ops, wantOps)
			}
		}
	}
}

func TestMATSDetectsAllSAF(t *testing.T) {
	n := 32
	for _, f := range fault.SingleCellUniverse(n, 1) {
		if f.Class() != fault.ClassSAF {
			continue
		}
		mem := f.Inject(ram.NewBOM(n))
		if !Run(MATS(), mem, 0).Detected {
			t.Errorf("MATS missed %v", f)
		}
	}
}

func TestMATSPlusPlusDetectsAllTF(t *testing.T) {
	n := 32
	for _, f := range fault.SingleCellUniverse(n, 1) {
		mem := f.Inject(ram.NewBOM(n))
		if !Run(MATSPlusPlus(), mem, 0).Detected {
			t.Errorf("MATS++ missed %v", f)
		}
	}
}

func TestMarchCMinusDetectsCoupling(t *testing.T) {
	n := 16
	pairs := fault.AdjacentPairs(n)
	for _, f := range fault.CouplingUniverse(pairs) {
		// March C- covers CFin, CFid, CFst (not BF-AND/OR in all
		// polarities between arbitrary bits, but for bit0-bit0 adjacent
		// pairs it detects the state-observable ones).
		switch f.Class() {
		case fault.ClassCFin, fault.ClassCFid, fault.ClassCFst:
			mem := f.Inject(ram.NewBOM(n))
			if !Run(MarchCMinus(), mem, 0).Detected {
				t.Errorf("March C- missed %v", f)
			}
		}
	}
}

func TestMarchCMinusDetectsDecoderFaults(t *testing.T) {
	n := 16
	for _, f := range fault.DecoderUniverse(n) {
		mem := f.Inject(ram.NewBOM(n))
		if !Run(MarchCMinus(), mem, 0).Detected {
			t.Errorf("March C- missed %v", f)
		}
	}
}

func TestMATSMissesSomeTF(t *testing.T) {
	// MATS cannot see TF↓ faults (it never exercises a 1→0 transition
	// followed by a read) — this asserts our executor is not
	// over-detecting.
	n := 8
	missed := 0
	for _, f := range fault.SingleCellUniverse(n, 1) {
		if tf, ok := f.(fault.TF); ok && !tf.Up {
			mem := f.Inject(ram.NewBOM(n))
			if !Run(MATS(), mem, 0).Detected {
				missed++
			}
		}
	}
	if missed != n {
		t.Errorf("MATS should miss all %d TF↓ faults, missed %d", n, missed)
	}
}

func TestMismatchDetails(t *testing.T) {
	f := fault.SAF{Cell: 5, Bit: 0, Value: 1}
	mem := f.Inject(ram.NewBOM(16))
	res := Run(MATS(), mem, 0)
	if !res.Detected || res.First == nil {
		t.Fatal("SAF1 not detected")
	}
	if res.First.Addr != 5 || res.First.Got != 1 || res.First.Expected != 0 {
		t.Errorf("mismatch details wrong: %v", res.First)
	}
	if res.First.String() == "" {
		t.Error("mismatch should render")
	}
}

func TestWOMBackgroundsDetectIntraWord(t *testing.T) {
	n, m := 8, 4
	bgs := DataBackgrounds(m)
	detected, total := 0, 0
	for _, f := range fault.IntraWordUniverse(n, m) {
		total++
		mem := f.Inject(ram.NewWOM(n, m))
		if RunBackgrounds(MarchCMinus(), mem, bgs).Detected {
			detected++
		}
	}
	// The standard background set distinguishes every bit pair, so
	// March C- over all backgrounds must catch every intra-word CF.
	if detected != total {
		t.Errorf("March C- x backgrounds: %d/%d intra-word faults", detected, total)
	}
}

func TestSingleBackgroundMissesIntraWord(t *testing.T) {
	// With only the all-zero background, aggressor and victim bits
	// always carry identical data, so idempotent intra-word faults that
	// force the shared value slip through — the motivation for multiple
	// backgrounds (and for the paper's random trajectories).
	n, m := 8, 4
	missed := 0
	for _, f := range fault.IntraWordUniverse(n, m) {
		mem := f.Inject(ram.NewWOM(n, m))
		if !Run(MarchCMinus(), mem, 0).Detected {
			missed++
		}
	}
	if missed == 0 {
		t.Error("single background unexpectedly caught every intra-word fault")
	}
}

func TestDataBackgrounds(t *testing.T) {
	bgs := DataBackgrounds(4)
	want := []ram.Word{0b0000, 0b1010, 0b1100}
	if len(bgs) != len(want) {
		t.Fatalf("backgrounds = %v", bgs)
	}
	for i := range want {
		if bgs[i] != want[i] {
			t.Errorf("backgrounds[%d] = %04b, want %04b", i, bgs[i], want[i])
		}
	}
	if got := len(DataBackgrounds(8)); got != 4 {
		t.Errorf("m=8 background count = %d, want 4", got)
	}
	if got := len(DataBackgrounds(1)); got != 1 {
		t.Errorf("m=1 background count = %d, want 1", got)
	}
}

func TestRunChecksReads(t *testing.T) {
	// An inconsistent algorithm (reads a background it never wrote)
	// must panic loudly rather than silently mis-detect.
	bad := Test{Name: "bad", Elems: []Element{
		{Any, []Op{W(0)}},
		{Any, []Op{R(1)}},
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("inconsistent March test did not panic")
		}
	}()
	Run(bad, ram.NewBOM(4), 0)
}

func TestValidate(t *testing.T) {
	if err := (Test{Name: "empty"}).Validate(); err == nil {
		t.Error("empty test validated")
	}
	if err := (Test{Name: "e", Elems: []Element{{Any, nil}}}).Validate(); err == nil {
		t.Error("empty element validated")
	}
	if err := (Test{Name: "d", Elems: []Element{{Any, []Op{{false, 2}}}}}).Validate(); err == nil {
		t.Error("bad data validated")
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("March C-"); !ok {
		t.Error("March C- not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("bogus name found")
	}
}

func TestStringNotation(t *testing.T) {
	got := MATSPlus().String()
	want := "{c(w0);⇑(r0,w1);⇓(r1,w0)}"
	if got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, test := range Library() {
		parsed, err := Parse(test.Name, test.String())
		if err != nil {
			t.Errorf("Parse(%s) failed: %v", test.Name, err)
			continue
		}
		if parsed.String() != test.String() {
			t.Errorf("round trip %s: %q != %q", test.Name, parsed.String(), test.String())
		}
	}
}

func TestParseASCII(t *testing.T) {
	got := MustParse("a", "{c(w0); up(r0,w1); down(r1,w0)}")
	if got.String() != MATSPlus().String() {
		t.Errorf("ASCII parse = %q", got.String())
	}
	// Braces optional.
	got2 := MustParse("b", "c(w0);u(r0,w1);d(r1,w0)")
	if got2.String() != MATSPlus().String() {
		t.Errorf("brace-free parse = %q", got2.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"", "{}", "{c}", "{c()}", "{q(w0)}", "{c(x0)}", "{c(w2)}", "{c(w)}", "{c(w0,)}",
	} {
		if _, err := Parse("bad", s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("bad", "{c(")
}

func TestRunContinuesAfterFirstMismatch(t *testing.T) {
	f := fault.SAF{Cell: 0, Bit: 0, Value: 1}
	mem := f.Inject(ram.NewBOM(8))
	res := Run(MATS(), mem, 0)
	// Full op count even though the first read already failed.
	if res.Ops != uint64(MATS().OpsPerCell()*8) {
		t.Errorf("run aborted early: %d ops", res.Ops)
	}
}
