package fault

import (
	"testing"

	"repro/internal/ram"
)

func TestGridNeighbourhood(t *testing.T) {
	// 4x4 grid (n=16, width=4).  Cell 5 is interior.
	nb := GridNeighbourhood(5, 16, 4)
	if nb.N != 1 || nb.S != 9 || nb.W != 4 || nb.E != 6 {
		t.Errorf("interior neighbourhood wrong: %+v", nb)
	}
	if !nb.Complete() {
		t.Error("interior cell reported incomplete")
	}
	// Corner 0: only S and E.
	c := GridNeighbourhood(0, 16, 4)
	if c.N != -1 || c.W != -1 || c.S != 4 || c.E != 1 {
		t.Errorf("corner neighbourhood wrong: %+v", c)
	}
	if c.Complete() {
		t.Error("corner reported complete")
	}
	// Last cell of a partial row.
	p := GridNeighbourhood(14, 15, 4)
	if p.S != -1 {
		t.Errorf("south of cell 14 in 15-cell array should be absent: %+v", p)
	}
}

func TestSNPSFBehaviour(t *testing.T) {
	// 4x4 grid, base 5, neighbours N=1,E=6,S=9,W=4.
	nb := GridNeighbourhood(5, 16, 4)
	f := SNPSF{Nb: nb, Pattern: 0b1111, Value: 0}
	m := f.Inject(ram.NewBOM(16))
	m.Write(5, 1)
	if m.Read(5) != 1 {
		t.Fatal("base disturbed while pattern inactive")
	}
	// Activate the pattern: all four neighbours to 1.
	for _, c := range []int{1, 6, 9, 4} {
		m.Write(c, 1)
	}
	if m.Read(5) != 0 {
		t.Error("SNPSF did not force base low under full pattern")
	}
	// Deactivate one neighbour.
	m.Write(6, 0)
	if m.Read(5) != 1 {
		t.Error("SNPSF forcing should be level-sensitive")
	}
}

func TestSNPSFPartialPatternBits(t *testing.T) {
	nb := GridNeighbourhood(5, 16, 4)
	// Pattern 0b0001: N=1, others 0.
	f := SNPSF{Nb: nb, Pattern: 0b0001, Value: 1}
	m := f.Inject(ram.NewBOM(16))
	m.Write(1, 1) // N=1; E,S,W are 0 -> pattern active
	if m.Read(5) != 1 {
		t.Error("pattern with zeros not recognised")
	}
}

func TestANPSFBehaviour(t *testing.T) {
	nb := GridNeighbourhood(5, 16, 4)
	// Trigger = E (index 1) rising while N,S,W are 0 forces base to 1.
	f := ANPSF{Nb: nb, Trigger: 1, Up: true, Pattern: 0, Value: 1}
	m := f.Inject(ram.NewBOM(16))
	m.Write(5, 0)
	m.Write(6, 1) // E rises, N/S/W all 0 -> fires
	if m.Read(5) != 1 {
		t.Error("ANPSF did not fire")
	}
	// Reset and block the pattern.
	m.Write(6, 0)
	m.Write(5, 0)
	m.Write(1, 1) // N=1 breaks the pattern
	m.Write(6, 1) // E rises but pattern mismatched
	if m.Read(5) != 0 {
		t.Error("ANPSF fired despite pattern mismatch")
	}
}

func TestNPSFUniverses(t *testing.T) {
	u := NPSFUniverse(16, 4, 1)
	// 4 interior cells (5,6,9,10) × 16 patterns × 2 values.
	if len(u) != 4*16*2 {
		t.Fatalf("SNPSF universe = %d, want 128", len(u))
	}
	for _, f := range u {
		if f.Class() != ClassNPSF {
			t.Fatal("wrong class in NPSF universe")
		}
	}
	a := ANPSFUniverse(16, 4, 4)
	// 4 interior × 4 triggers × 4 sampled patterns × 2.
	if len(a) != 4*4*4*2 {
		t.Fatalf("ANPSF universe = %d, want 128", len(a))
	}
	// Strides below 1 are clamped.
	if len(NPSFUniverse(16, 4, 0)) != len(u) {
		t.Error("stride clamp broken")
	}
}

func TestNPSFStrings(t *testing.T) {
	nb := GridNeighbourhood(5, 16, 4)
	if (SNPSF{Nb: nb, Pattern: 5, Value: 1}).String() == "" {
		t.Error("SNPSF string empty")
	}
	if (ANPSF{Nb: nb, Trigger: 2, Up: true}).String() == "" {
		t.Error("ANPSF string empty")
	}
}

func TestNPSFDetectableByMarchLikeProbe(t *testing.T) {
	// Sanity: NPSF instances are observable by the generic probe.
	nb := GridNeighbourhood(5, 16, 4)
	faults := []Fault{
		SNPSF{Nb: nb, Pattern: 0b1111, Value: 0},
		SNPSF{Nb: nb, Pattern: 0b0000, Value: 1},
		ANPSF{Nb: nb, Trigger: 0, Up: true, Pattern: 0, Value: 1},
	}
	for _, f := range faults {
		if !observable(f, 16, 1) {
			t.Errorf("%v not observable", f)
		}
	}
}
