package gf2

import "testing"

func TestFactor64(t *testing.T) {
	cases := []struct {
		n      uint64
		primes []uint64
		exps   []int
	}{
		{1, nil, nil},
		{2, []uint64{2}, []int{1}},
		{12, []uint64{2, 3}, []int{2, 1}},
		{255, []uint64{3, 5, 17}, []int{1, 1, 1}},
		{65535, []uint64{3, 5, 17, 257}, []int{1, 1, 1, 1}},
		{1 << 20, []uint64{2}, []int{20}},
	}
	for _, c := range cases {
		ps, es := Factor64(c.n)
		if len(ps) != len(c.primes) {
			t.Errorf("Factor64(%d) primes = %v, want %v", c.n, ps, c.primes)
			continue
		}
		for i := range ps {
			if ps[i] != c.primes[i] || es[i] != c.exps[i] {
				t.Errorf("Factor64(%d) = %v^%v, want %v^%v", c.n, ps, es, c.primes, c.exps)
			}
		}
	}
}

func TestFactor64Reconstruct(t *testing.T) {
	for n := uint64(2); n < 2000; n++ {
		ps, es := Factor64(n)
		prod := uint64(1)
		for i, p := range ps {
			for e := 0; e < es[i]; e++ {
				prod *= p
			}
		}
		if prod != n {
			t.Fatalf("Factor64(%d) does not reconstruct (got %d)", n, prod)
		}
	}
}

func TestOrderKnown(t *testing.T) {
	cases := map[Poly]uint64{
		0x13:  15, // primitive degree 4
		0x19:  15, // primitive degree 4
		0x1F:  5,  // x^4+x^3+x^2+x+1 divides x^5-1
		0x7:   3,  // primitive degree 2
		0xB:   7,  // primitive degree 3
		0x11B: 51, // AES polynomial is irreducible but NOT primitive
		0x11D: 255,
	}
	for p, want := range cases {
		if got := Order(p); got != want {
			t.Errorf("Order(%#x) = %d, want %d", uint64(p), got, want)
		}
	}
}

func TestOrderDividesGroupOrder(t *testing.T) {
	for k := 2; k <= 10; k++ {
		group := uint64(1)<<uint(k) - 1
		for _, p := range Irreducibles(k) {
			o := Order(p)
			if group%o != 0 {
				t.Errorf("Order(%v) = %d does not divide 2^%d-1", p, o, k)
			}
			// Verify minimality directly for small orders.
			if o <= 4096 {
				if PowMod(X, o, p) != One {
					t.Errorf("x^order != 1 for %v", p)
				}
			}
		}
	}
}

func TestIsPrimitiveKnown(t *testing.T) {
	primitive := []Poly{3, 7, 0xB, 0xD, 0x13, 0x19, 0x25, 0x11D}
	for _, p := range primitive {
		if !IsPrimitive(p) {
			t.Errorf("%v should be primitive", p)
		}
	}
	notPrimitive := []Poly{
		0x1F,  // irreducible, order 5
		0x11B, // irreducible, order 51
		0x15,  // reducible
		0,
		1,
	}
	for _, p := range notPrimitive {
		if IsPrimitive(p) {
			t.Errorf("%v should not be primitive", p)
		}
	}
}

func TestFirstPrimitive(t *testing.T) {
	cases := map[int]Poly{
		1: 3,
		2: 7,
		3: 0xB,
		4: 0x13,
		8: 0x11D, // the AES polynomial 0x11B is skipped: not primitive
	}
	for k, want := range cases {
		if got := FirstPrimitive(k); got != want {
			t.Errorf("FirstPrimitive(%d) = %#x, want %#x", k, uint64(got), uint64(want))
		}
	}
}

func TestPrimitiveImpliesMaximalPeriod(t *testing.T) {
	// For every primitive polynomial of degree <= 8, iterating s -> s*x
	// mod p from s=1 must visit all 2^k-1 nonzero residues.
	for k := 2; k <= 8; k++ {
		for _, p := range Irreducibles(k) {
			if !IsPrimitive(p) {
				continue
			}
			seen := make(map[Poly]bool)
			s := One
			for {
				if seen[s] {
					break
				}
				seen[s] = true
				s = MulMod(s, X, p)
			}
			if want := 1<<uint(k) - 1; len(seen) != want {
				t.Errorf("primitive %v cycle length %d, want %d", p, len(seen), want)
			}
		}
	}
}

func TestDefaultModulusMatchesFirstPrimitive(t *testing.T) {
	for m := 1; m <= 12; m++ {
		if got, want := DefaultModulus(m), FirstPrimitive(m); got != want {
			t.Errorf("DefaultModulus(%d) = %#x, want FirstPrimitive = %#x",
				m, uint64(got), uint64(want))
		}
	}
	// The paper's worked example uses p(z) = 1 + z + z^4.
	if DefaultModulus(4) != MustParse("1+z+z^4") {
		t.Errorf("DefaultModulus(4) must be the paper's 1+z+z^4")
	}
}

func TestOrderPanics(t *testing.T) {
	for _, p := range []Poly{0x15 /* reducible */, 0x6 /* zero const */} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Order(%v) should panic", p)
				}
			}()
			Order(p)
		}()
	}
}
