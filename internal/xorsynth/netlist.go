// Package xorsynth synthesises XOR-only combinational networks that
// implement GF(2)-linear maps — in particular multiplication by a
// constant in GF(2^m), the operation the paper embeds in the memory
// circuit for word-oriented pseudo-ring testing ("Multiplier by a
// constant contains only XOR-gates and can be implemented inherently in
// the memory circuit").
//
// The package offers two synthesis strategies:
//
//   - Naive: each output bit is a linear XOR chain over its input
//     support, costing Σ (weight(row)-1) two-input gates.
//   - CSE: Paar's greedy common-subexpression elimination, which
//     repeatedly extracts the input pair shared by the most rows; this
//     is the "algorithm to design the optimal scheme of multiplication
//     by a constant" of §2 of the paper.
//
// A synthesised Netlist can be evaluated in software (to cross-check
// against field multiplication), costed (gate count, logic depth) and
// emitted as a small structural-Verilog-style listing for inspection.
package xorsynth

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/gf"
)

// Gate is a two-input XOR gate.  Operand indices refer to signals:
// 0..NIn-1 are the primary inputs, NIn+i is the output of Gates[i].
type Gate struct {
	A, B int
}

// Netlist is an XOR-only combinational network with NIn primary inputs
// and len(Outputs) primary outputs.  Outputs[i] is a signal index, or
// -1 when output i is constant zero (the zero row of the matrix).
type Netlist struct {
	NIn     int
	Gates   []Gate
	Outputs []int
}

// GateCount returns the number of two-input XOR gates.
func (n *Netlist) GateCount() int { return len(n.Gates) }

// Depth returns the maximum logic depth in gates from any input to any
// output (0 when every output is a wire or constant).
func (n *Netlist) Depth() int {
	depth := make([]int, n.NIn+len(n.Gates))
	maxOut := 0
	for i, g := range n.Gates {
		d := depth[g.A]
		if depth[g.B] > d {
			d = depth[g.B]
		}
		depth[n.NIn+i] = d + 1
	}
	for _, o := range n.Outputs {
		if o >= 0 && depth[o] > maxOut {
			maxOut = depth[o]
		}
	}
	return maxOut
}

// Eval applies the network to the input bit-vector x (bit j of x is
// input j) and returns the output bit-vector (bit i is output i).
func (n *Netlist) Eval(x uint32) uint32 {
	sig := make([]uint32, n.NIn+len(n.Gates))
	for j := 0; j < n.NIn; j++ {
		sig[j] = x >> uint(j) & 1
	}
	for i, g := range n.Gates {
		sig[n.NIn+i] = sig[g.A] ^ sig[g.B]
	}
	var y uint32
	for i, o := range n.Outputs {
		if o >= 0 {
			y |= sig[o] << uint(i)
		}
	}
	return y
}

// Matrix recovers the GF(2) matrix computed by the network: row i is
// the input support of output i.  Useful for verification.
func (n *Netlist) Matrix() gf.BitMatrix {
	support := make([]uint32, n.NIn+len(n.Gates))
	for j := 0; j < n.NIn; j++ {
		support[j] = 1 << uint(j)
	}
	for i, g := range n.Gates {
		support[n.NIn+i] = support[g.A] ^ support[g.B]
	}
	m := gf.NewBitMatrix(maxInt(n.NIn, len(n.Outputs)))
	for i, o := range n.Outputs {
		if o >= 0 {
			m.Rows[i] = support[o]
		}
	}
	return m
}

// Verilog emits the network as a structural-Verilog-style listing with
// the given module name.  The output is stable and intended for humans
// and golden tests, not for a specific tool chain.
func (n *Netlist) Verilog(module string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s(input [%d:0] x, output [%d:0] y);\n",
		module, n.NIn-1, len(n.Outputs)-1)
	for i := range n.Gates {
		fmt.Fprintf(&b, "  wire w%d;\n", i)
	}
	name := func(sig int) string {
		if sig < n.NIn {
			return fmt.Sprintf("x[%d]", sig)
		}
		return fmt.Sprintf("w%d", sig-n.NIn)
	}
	for i, g := range n.Gates {
		fmt.Fprintf(&b, "  xor g%d(w%d, %s, %s);\n", i, i, name(g.A), name(g.B))
	}
	for i, o := range n.Outputs {
		if o < 0 {
			fmt.Fprintf(&b, "  assign y[%d] = 1'b0;\n", i)
		} else {
			fmt.Fprintf(&b, "  assign y[%d] = %s;\n", i, name(o))
		}
	}
	b.WriteString("endmodule\n")
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// --- synthesis ---

// Naive synthesises each matrix row as an independent left-to-right XOR
// chain.  Gate count is Σ max(weight(row)-1, 0).
func Naive(m gf.BitMatrix) *Netlist {
	n := &Netlist{NIn: m.N, Outputs: make([]int, m.N)}
	for i, row := range m.Rows {
		n.Outputs[i] = n.chain(row)
	}
	return n
}

// chain builds an XOR chain over the set bits of support and returns
// the final signal index (-1 for empty support).
func (n *Netlist) chain(support uint32) int {
	if support == 0 {
		return -1
	}
	first := bits.TrailingZeros32(support)
	acc := first
	rest := support &^ (1 << uint(first))
	for rest != 0 {
		j := bits.TrailingZeros32(rest)
		rest &^= 1 << uint(j)
		n.Gates = append(n.Gates, Gate{A: acc, B: j})
		acc = n.NIn + len(n.Gates) - 1
	}
	return acc
}

// CSE synthesises the matrix with Paar's greedy common-subexpression
// elimination: while any signal pair is shared by two or more rows,
// extract the most frequent pair into a fresh gate and substitute it.
// Ties are broken towards the lexicographically smallest pair so the
// result is deterministic.
func CSE(m gf.BitMatrix) *Netlist {
	n := &Netlist{NIn: m.N, Outputs: make([]int, m.N)}
	// rows[i] is the current support of output i over an extended signal
	// space (inputs + extracted gates), represented as a sorted slice of
	// signal indices (supports can exceed 32 signals after extraction).
	rows := make([][]int, m.N)
	for i, r := range m.Rows {
		for j := 0; j < m.N; j++ {
			if r>>uint(j)&1 == 1 {
				rows[i] = append(rows[i], j)
			}
		}
	}
	for {
		a, b, count := mostFrequentPair(rows)
		if count < 2 {
			break
		}
		n.Gates = append(n.Gates, Gate{A: a, B: b})
		fresh := n.NIn + len(n.Gates) - 1
		for i := range rows {
			if containsBoth(rows[i], a, b) {
				rows[i] = substitute(rows[i], a, b, fresh)
			}
		}
	}
	// Chain whatever remains in each row.
	for i, row := range rows {
		n.Outputs[i] = n.chainSignals(row)
	}
	return n
}

// chainSignals XOR-chains an arbitrary signal list.
func (n *Netlist) chainSignals(sigs []int) int {
	if len(sigs) == 0 {
		return -1
	}
	acc := sigs[0]
	for _, s := range sigs[1:] {
		n.Gates = append(n.Gates, Gate{A: acc, B: s})
		acc = n.NIn + len(n.Gates) - 1
	}
	return acc
}

// mostFrequentPair scans all rows for the unordered signal pair present
// in the most rows.  Returns counts < 2 when no pair repeats.
func mostFrequentPair(rows [][]int) (bestA, bestB, bestCount int) {
	type pair struct{ a, b int }
	counts := make(map[pair]int)
	for _, row := range rows {
		for i := 0; i < len(row); i++ {
			for j := i + 1; j < len(row); j++ {
				counts[pair{row[i], row[j]}]++
			}
		}
	}
	bestCount = 0
	for p, c := range counts {
		if c > bestCount || (c == bestCount && bestCount > 0 && lessPair(p.a, p.b, bestA, bestB)) {
			bestA, bestB, bestCount = p.a, p.b, c
		}
	}
	return bestA, bestB, bestCount
}

func lessPair(a1, b1, a2, b2 int) bool {
	if a1 != a2 {
		return a1 < a2
	}
	return b1 < b2
}

func containsBoth(row []int, a, b int) bool {
	foundA, foundB := false, false
	for _, s := range row {
		if s == a {
			foundA = true
		}
		if s == b {
			foundB = true
		}
	}
	return foundA && foundB
}

// substitute removes a and b from the (sorted) row and appends fresh,
// keeping the slice sorted.
func substitute(row []int, a, b, fresh int) []int {
	out := row[:0]
	for _, s := range row {
		if s != a && s != b {
			out = append(out, s)
		}
	}
	out = append(out, fresh)
	sort.Ints(out)
	return out
}

// --- convenience for fields ---

// ConstMultiplier synthesises (with CSE) the network computing c*x in
// the field f.  The returned netlist has f.M() inputs and outputs.
func ConstMultiplier(f *gf.Field, c gf.Elem) *Netlist {
	return CSE(f.ConstMulMatrix(c))
}

// Cost summarises a synthesis result.
type Cost struct {
	Constant   gf.Elem
	NaiveGates int
	CSEGates   int
	NaiveDepth int
	CSEDepth   int
}

// Saved returns the number of gates removed by CSE.
func (c Cost) Saved() int { return c.NaiveGates - c.CSEGates }

// SurveyField synthesises a multiplier for every nonzero constant of f
// and returns per-constant costs, ordered by constant.  This regenerates
// experiment E11 (multiplier synthesis table).
func SurveyField(f *gf.Field) []Cost {
	out := make([]Cost, 0, f.Size()-1)
	for c := gf.Elem(1); c <= f.Mask(); c++ {
		m := f.ConstMulMatrix(c)
		naive := Naive(m)
		cse := CSE(m)
		out = append(out, Cost{
			Constant:   c,
			NaiveGates: naive.GateCount(),
			CSEGates:   cse.GateCount(),
			NaiveDepth: naive.Depth(),
			CSEDepth:   cse.Depth(),
		})
	}
	return out
}
