// Command marchsim runs classical March tests on a simulated RAM.
//
// Usage:
//
//	marchsim -list
//	marchsim [-algo "March C-"] [-n cells] [-m width] [-notation "{c(w0);...}"]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/march"
	"repro/internal/ram"
	"repro/internal/report"
)

func main() {
	list := flag.Bool("list", false, "list the algorithm library")
	algo := flag.String("algo", "March C-", "algorithm name from the library")
	notation := flag.String("notation", "", "run a custom algorithm given in March notation")
	n := flag.Int("n", 256, "memory cells")
	m := flag.Int("m", 1, "word width in bits")
	flag.Parse()

	if *list {
		t := report.New("March algorithm library", "name", "ops/cell", "notation")
		for _, test := range march.Library() {
			t.AddRowf(test.Name, fmt.Sprintf("%dn", test.OpsPerCell()), test.String())
		}
		t.Render(os.Stdout)
		return
	}

	var test march.Test
	var err error
	if *notation != "" {
		test, err = march.Parse("custom", *notation)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		var ok bool
		test, ok = march.ByName(*algo)
		if !ok {
			fatalf("unknown algorithm %q (use -list)", *algo)
		}
	}

	var mem ram.Memory
	if *m == 1 {
		mem = ram.NewBOM(*n)
	} else {
		mem = ram.NewWOM(*n, *m)
	}
	bgs := march.DataBackgrounds(*m)
	fmt.Printf("algorithm: %s  %s\n", test.Name, test)
	fmt.Printf("memory:    %d cells × %d bit(s), %d background(s)\n", *n, *m, len(bgs))
	res := march.RunBackgrounds(test, mem, bgs)
	fmt.Printf("ops:       %d (%.1f per cell)\n", res.Ops, float64(res.Ops)/float64(*n))
	if res.Detected {
		fmt.Printf("RESULT: FAULT DETECTED (%v)\n", res.First)
		os.Exit(1)
	}
	fmt.Println("RESULT: PASS")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "marchsim: "+format+"\n", args...)
	os.Exit(2)
}
