package gf2

import (
	"testing"
	"testing/quick"
)

func TestDeg(t *testing.T) {
	cases := []struct {
		p    Poly
		want int
	}{
		{0, -1},
		{1, 0},
		{2, 1},
		{3, 1},
		{0x13, 4},
		{1 << 63, 63},
	}
	for _, c := range cases {
		if got := c.p.Deg(); got != c.want {
			t.Errorf("Deg(%#x) = %d, want %d", uint64(c.p), got, c.want)
		}
	}
}

func TestCoeffSetCoeff(t *testing.T) {
	p := Poly(0)
	p = p.SetCoeff(0, 1).SetCoeff(4, 1).SetCoeff(1, 1)
	if p != 0x13 {
		t.Fatalf("SetCoeff build = %#x, want 0x13", uint64(p))
	}
	if p.Coeff(4) != 1 || p.Coeff(3) != 0 || p.Coeff(0) != 1 {
		t.Errorf("Coeff readback wrong for %v", p)
	}
	if p.SetCoeff(4, 0) != 0x03 {
		t.Errorf("SetCoeff clear failed")
	}
	if p.Coeff(-1) != 0 || p.Coeff(64) != 0 {
		t.Errorf("out-of-range Coeff should be 0")
	}
	if p.SetCoeff(77, 1) != p {
		t.Errorf("out-of-range SetCoeff should be identity")
	}
}

func TestMulKnown(t *testing.T) {
	// (x+1)(x+1) = x^2+1 over GF(2)
	if got := Poly(3).Mul(3); got != 5 {
		t.Errorf("(x+1)^2 = %v, want x^2+1", got)
	}
	// (x^2+x+1)(x+1) = x^3+1
	if got := Poly(7).Mul(3); got != 9 {
		t.Errorf("(x^2+x+1)(x+1) = %v, want x^3+1", got)
	}
	if got := Poly(0x13).Mul(1); got != 0x13 {
		t.Errorf("p*1 != p")
	}
	if got := Poly(0x13).Mul(0); got != 0 {
		t.Errorf("p*0 != 0")
	}
}

func TestDivMod(t *testing.T) {
	// x^4+x+1 divided by x^2+1: x^4+x+1 = (x^2+1)(x^2+1) + x
	quo, rem := Poly(0x13).DivMod(5)
	if quo != 5 || rem != 2 {
		t.Errorf("DivMod = (%v, %v), want (x^2+1, x)", quo, rem)
	}
	// Reconstruction property on a few fixed cases.
	for _, c := range []struct{ p, q Poly }{
		{0xFF, 0x13}, {0x1234, 0xB}, {1, 2}, {0, 7},
	} {
		d, r := c.p.DivMod(c.q)
		if d.Mul(c.q).Add(r) != c.p {
			t.Errorf("DivMod(%v,%v) fails reconstruction", c.p, c.q)
		}
		if r.Deg() >= c.q.Deg() {
			t.Errorf("remainder degree too high: %v mod %v = %v", c.p, c.q, r)
		}
	}
}

func TestDivModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DivMod by zero did not panic")
		}
	}()
	Poly(5).DivMod(0)
}

func TestGCD(t *testing.T) {
	// gcd((x+1)(x^2+x+1), (x+1)(x^3+x+1)) = x+1
	a := Poly(3).Mul(7)
	b := Poly(3).Mul(0xB)
	if g := GCD(a, b); g != 3 {
		t.Errorf("GCD = %v, want x+1", g)
	}
	if GCD(0, 0) != 0 {
		t.Errorf("GCD(0,0) != 0")
	}
	if GCD(0, 7) != 7 || GCD(7, 0) != 7 {
		t.Errorf("GCD with zero operand wrong")
	}
}

func TestMulModMatchesMul(t *testing.T) {
	f := Poly(0x13)
	for a := Poly(0); a < 64; a++ {
		for b := Poly(0); b < 64; b++ {
			want := a.Mul(b).Mod(f)
			if got := MulMod(a, b, f); got != want {
				t.Fatalf("MulMod(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestPowMod(t *testing.T) {
	f := Poly(0x13) // primitive, order of x is 15
	if PowMod(X, 15, f) != One {
		t.Errorf("x^15 mod p != 1 for primitive degree-4 p")
	}
	for e := uint64(1); e < 15; e++ {
		if PowMod(X, e, f) == One {
			t.Errorf("x^%d ≡ 1 prematurely", e)
		}
	}
	if PowMod(X, 0, f) != One {
		t.Errorf("x^0 != 1")
	}
}

func TestDerivative(t *testing.T) {
	// d/dx (x^4 + x + 1) = 1 over GF(2)  (4x^3 vanishes)
	if got := Poly(0x13).Derivative(); got != 1 {
		t.Errorf("derivative = %v, want 1", got)
	}
	// d/dx (x^3 + x^2) = x^2
	if got := Poly(0xC).Derivative(); got != 4 {
		t.Errorf("derivative = %v, want x^2", got)
	}
	if Poly(0).Derivative() != 0 || Poly(1).Derivative() != 0 {
		t.Errorf("derivative of constants must be 0")
	}
}

func TestReverse(t *testing.T) {
	// reverse of x^4+x+1 is x^4+x^3+1
	if got := Poly(0x13).Reverse(); got != 0x19 {
		t.Errorf("Reverse = %#x, want 0x19", uint64(got))
	}
	if Poly(0).Reverse() != 0 || Poly(1).Reverse() != 1 {
		t.Errorf("Reverse of 0/1 must be identity")
	}
}

func TestReversePreservesIrreducibility(t *testing.T) {
	for _, p := range Irreducibles(6) {
		if !IsIrreducible(p.Reverse()) {
			t.Errorf("reverse of irreducible %v not irreducible", p)
		}
	}
}

func TestEval(t *testing.T) {
	p := Poly(0x13) // 1+z+z^4: p(0)=1, p(1)=1 (weight 3 odd)
	if p.Eval(0) != 1 || p.Eval(1) != 1 {
		t.Errorf("Eval wrong for %v", p)
	}
	q := Poly(0x6) // z+z^2: q(0)=0, q(1)=0
	if q.Eval(0) != 0 || q.Eval(1) != 0 {
		t.Errorf("Eval wrong for %v", q)
	}
}

// --- property-based tests ---

// small clips a random polynomial to degree < 31 so products fit.
func small(p Poly) Poly { return p & 0x7FFFFFFF }

func TestQuickMulCommutative(t *testing.T) {
	f := func(a, b uint64) bool {
		x, y := small(Poly(a)), small(Poly(b))
		return x.Mul(y) == y.Mul(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		x, y, z := small(Poly(a)), small(Poly(b)), small(Poly(c))
		return x.Mul(y.Add(z)) == x.Mul(y).Add(x.Mul(z))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickDivModReconstruct(t *testing.T) {
	f := func(a, b uint64) bool {
		p := Poly(a)
		q := small(Poly(b))
		if q == 0 {
			q = 1
		}
		d, r := p.DivMod(q)
		return d.Mul(q).Add(r) == p && r.Deg() < q.Deg()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGCDDivides(t *testing.T) {
	f := func(a, b uint64) bool {
		p, q := Poly(a), Poly(b)
		g := GCD(p, q)
		if g == 0 {
			return p == 0 && q == 0
		}
		return p.Mod(g) == 0 && q.Mod(g) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulModAssociative(t *testing.T) {
	fld := Poly(0x11D)
	f := func(a, b, c uint16) bool {
		x, y, z := Poly(a), Poly(b), Poly(c)
		return MulMod(MulMod(x, y, fld), z, fld) == MulMod(x, MulMod(y, z, fld), fld)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSelfInverse(t *testing.T) {
	f := func(a uint64) bool { return Poly(a).Add(Poly(a)) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
