package fault

// View is a cheap subset of a fault slice: the shared backing slice
// plus an optional index list.  No fault instances are copied — a view
// of a million-fault universe is one slice header and (for proper
// subsets) a []int32 of positions — so the campaign session layer can
// narrow a universe test after test (cross-test fault dropping) without
// rebuilding fault slices.  The zero value is an empty view.
type View struct {
	faults []Fault
	idx    []int32 // positions into faults; nil = the whole slice
}

// Span returns the identity view over the whole slice.
func Span(faults []Fault) View { return View{faults: faults} }

// Len returns the number of faults in the view.
func (v View) Len() int {
	if v.idx != nil {
		return len(v.idx)
	}
	return len(v.faults)
}

// At returns the fault at view position i.
func (v View) At(i int) Fault {
	if v.idx != nil {
		return v.faults[v.idx[i]]
	}
	return v.faults[i]
}

// Index maps view position i to its position in the backing slice.
func (v View) Index(i int) int {
	if v.idx != nil {
		return int(v.idx[i])
	}
	return i
}

// Full reports whether the view spans its whole backing slice without
// an index indirection.
func (v View) Full() bool { return v.idx == nil }

// Batch returns view positions [lo, hi) as a contiguous fault slice:
// the backing subslice directly for a full view (zero copying — the
// common first-stage case), otherwise the headers gathered into
// scratch (grown as needed).  Replay drivers pass a per-worker scratch
// so steady-state batches allocate nothing.
func (v View) Batch(scratch []Fault, lo, hi int) []Fault {
	if v.idx == nil {
		return v.faults[lo:hi]
	}
	scratch = scratch[:0]
	for _, j := range v.idx[lo:hi] {
		scratch = append(scratch, v.faults[j])
	}
	return scratch
}

// Where returns the sub-view of positions the predicate keeps,
// composed onto the same backing slice (indices remain positions in
// the original slice, so detection scatter stays exact across chained
// narrowing).
func (v View) Where(keep func(i int) bool) View {
	n := v.Len()
	idx := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if keep(i) {
			idx = append(idx, int32(v.Index(i)))
		}
	}
	return View{faults: v.faults, idx: idx}
}
