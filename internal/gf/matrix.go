package gf

import (
	"fmt"
	"math/bits"
)

// BitMatrix is an m×m matrix over GF(2), stored as one uint32 bitmask
// per row (bit j of Rows[i] is entry (i,j)).  It represents GF(2)-linear
// maps on field elements: multiplication by a constant, Frobenius, and
// the per-bit view of a word-oriented LFSR all reduce to BitMatrix
// application, which is what the BIST XOR network implements in gates.
type BitMatrix struct {
	N    int      // dimension
	Rows []uint32 // len N, row i in bit j
}

// NewBitMatrix returns the zero n×n matrix.
func NewBitMatrix(n int) BitMatrix {
	if n < 1 || n > 32 {
		panic("gf: BitMatrix dimension out of range [1,32]")
	}
	return BitMatrix{N: n, Rows: make([]uint32, n)}
}

// IdentityMatrix returns the n×n identity.
func IdentityMatrix(n int) BitMatrix {
	m := NewBitMatrix(n)
	for i := 0; i < n; i++ {
		m.Rows[i] = 1 << uint(i)
	}
	return m
}

// Get returns entry (i,j).
func (a BitMatrix) Get(i, j int) uint { return uint(a.Rows[i]>>uint(j)) & 1 }

// Set sets entry (i,j) to v&1.
func (a BitMatrix) Set(i, j int, v uint) {
	if v&1 == 1 {
		a.Rows[i] |= 1 << uint(j)
	} else {
		a.Rows[i] &^= 1 << uint(j)
	}
}

// Apply multiplies the matrix by the column vector x (bit j of x is
// component j) and returns the resulting bit vector.
func (a BitMatrix) Apply(x uint32) uint32 {
	var y uint32
	for i := 0; i < a.N; i++ {
		y |= uint32(bits.OnesCount32(a.Rows[i]&x)&1) << uint(i)
	}
	return y
}

// Mul returns the matrix product a*b.
func (a BitMatrix) Mul(b BitMatrix) BitMatrix {
	if a.N != b.N {
		panic("gf: BitMatrix dimension mismatch")
	}
	// c[i][j] = XOR_k a[i][k] & b[k][j]; compute row-wise: row i of c is
	// the XOR of rows k of b for which a[i][k] is set.
	c := NewBitMatrix(a.N)
	for i := 0; i < a.N; i++ {
		var row uint32
		r := a.Rows[i]
		for r != 0 {
			k := bits.TrailingZeros32(r)
			row ^= b.Rows[k]
			r &= r - 1
		}
		c.Rows[i] = row
	}
	return c
}

// Add returns a + b (entrywise XOR).
func (a BitMatrix) Add(b BitMatrix) BitMatrix {
	if a.N != b.N {
		panic("gf: BitMatrix dimension mismatch")
	}
	c := NewBitMatrix(a.N)
	for i := range c.Rows {
		c.Rows[i] = a.Rows[i] ^ b.Rows[i]
	}
	return c
}

// Equal reports whether the matrices are identical.
func (a BitMatrix) Equal(b BitMatrix) bool {
	if a.N != b.N {
		return false
	}
	for i := range a.Rows {
		if a.Rows[i] != b.Rows[i] {
			return false
		}
	}
	return true
}

// Rank returns the GF(2) rank via Gaussian elimination.
func (a BitMatrix) Rank() int {
	rows := make([]uint32, len(a.Rows))
	copy(rows, a.Rows)
	rank := 0
	for col := 0; col < a.N && rank < len(rows); col++ {
		pivot := -1
		for r := rank; r < len(rows); r++ {
			if rows[r]>>uint(col)&1 == 1 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		rows[rank], rows[pivot] = rows[pivot], rows[rank]
		for r := 0; r < len(rows); r++ {
			if r != rank && rows[r]>>uint(col)&1 == 1 {
				rows[r] ^= rows[rank]
			}
		}
		rank++
	}
	return rank
}

// Invertible reports whether the matrix is nonsingular over GF(2).
func (a BitMatrix) Invertible() bool { return a.Rank() == a.N }

// String renders the matrix as rows of 0/1.
func (a BitMatrix) String() string {
	s := ""
	for i := 0; i < a.N; i++ {
		for j := 0; j < a.N; j++ {
			if a.Get(i, j) == 1 {
				s += "1"
			} else {
				s += "0"
			}
		}
		if i < a.N-1 {
			s += "\n"
		}
	}
	return s
}

// ConstMulMatrix returns the m×m GF(2) matrix M_c of multiplication by
// the constant c: for every x, f.Mul(c, x) equals M_c applied to x.
// Column j of M_c is the element c*z^j.  This matrix is exactly the
// XOR network the paper proposes embedding in the memory circuit
// ("multiplier by a constant contains only XOR-gates").
func (f *Field) ConstMulMatrix(c Elem) BitMatrix {
	f.check(c)
	m := NewBitMatrix(f.m)
	zj := Elem(1) // z^j
	for j := 0; j < f.m; j++ {
		col := f.Mul(c, zj)
		for i := 0; i < f.m; i++ {
			if col>>uint(i)&1 == 1 {
				m.Rows[i] |= 1 << uint(j)
			}
		}
		if f.m > 1 {
			zj = f.Mul(zj, 2) // advance to z^(j+1)
		}
	}
	return m
}

// FrobeniusMatrix returns the matrix of the Frobenius automorphism
// x -> x^2 as a GF(2)-linear map.
func (f *Field) FrobeniusMatrix() BitMatrix {
	m := NewBitMatrix(f.m)
	zj := Elem(1)
	for j := 0; j < f.m; j++ {
		col := f.Mul(zj, zj)
		for i := 0; i < f.m; i++ {
			if col>>uint(i)&1 == 1 {
				m.Rows[i] |= 1 << uint(j)
			}
		}
		if f.m > 1 {
			zj = f.Mul(zj, 2)
		}
	}
	return m
}

// ElemFromBits converts a raw uint32 to an Elem, checking range.
func (f *Field) ElemFromBits(v uint32) (Elem, error) {
	if Elem(v) > f.mask {
		return 0, fmt.Errorf("gf: %#x outside GF(2^%d)", v, f.m)
	}
	return Elem(v), nil
}
