// Command prtsim runs a pseudo-ring self-test on a simulated RAM,
// optionally with an injected fault.
//
// Usage:
//
//	prtsim [-n cells] [-m width] [-iters 1..4] [-blocks B] [-sig]
//	       [-fault spec] [-trace]
//
// Fault specs: saf0@C.B, saf1@C.B, tfup@C.B, tfdown@C.B, sof@C,
// afnone@A, afalias@A:T, afmulti@A:T, cfin@A.B>V.B, bridge@A.B~V.B
// (C,A,V cells; B bit).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/prt"
	"repro/internal/ram"
)

func main() {
	n := flag.Int("n", 256, "memory cells")
	m := flag.Int("m", 4, "word width in bits (1 = bit-oriented)")
	iters := flag.Int("iters", 3, "π-test iterations (1-4)")
	blocks := flag.Int("blocks", 0, "use the extended scheme with this many 4-iteration blocks")
	sig := flag.Bool("sig", false, "signature-only (the paper's pure Fin vs Fin* comparator)")
	faultSpec := flag.String("fault", "", "fault to inject (see doc comment)")
	trace := flag.Bool("trace", false, "print the first TDB cells")
	flag.Parse()

	if *n < 4 || *m < 1 || *m > 16 {
		fatalf("bad geometry n=%d m=%d", *n, *m)
	}
	gen := genFor(*m)
	var scheme prt.Scheme
	switch {
	case *blocks > 0:
		scheme = prt.ExtendedScheme(gen, *blocks)
	default:
		scheme = prt.StandardScheme4(gen).Truncate(*iters)
		scheme.Name = fmt.Sprintf("PRT-%d", *iters)
	}
	if *sig {
		scheme = scheme.SignatureOnly()
	}

	var mem ram.Memory
	if *m == 1 {
		mem = ram.NewBOM(*n)
	} else {
		mem = ram.NewWOM(*n, *m)
	}
	var injected fault.Fault
	if *faultSpec != "" {
		f, err := fault.ParseSpec(*faultSpec)
		if err != nil {
			fatalf("%v", err)
		}
		injected = f
		mem = f.Inject(mem)
	}

	fmt.Printf("memory: %d cells × %d bit(s)\n", *n, *m)
	fmt.Printf("scheme: %s (g(x) = %v, ops/cell = %d)\n", scheme.Name, gen, scheme.OpsPerCell())
	if injected != nil {
		fmt.Printf("fault:  %v\n", injected)
	}

	res, err := scheme.Run(mem)
	if err != nil {
		fatalf("%v", err)
	}
	if *trace {
		show := *n
		if show > 16 {
			show = 16
		}
		fmt.Print("tdb:    ")
		for i := 0; i < show; i++ {
			fmt.Printf("%X ", mem.Read(i))
		}
		fmt.Println("...")
	}
	for i, ir := range res.PerIteration {
		f := gen.Field
		fmt.Printf("it.%d: Fin=%s Fin*=%s sig=%v stale=%d verify=%d\n",
			i+1, prt.FormatState(f, ir.Fin), prt.FormatState(f, ir.FinStar),
			!ir.SignatureMiss, ir.StaleMismatches, ir.VerifyMismatches)
	}
	fmt.Printf("ops: %d (%.2f per cell)\n", res.Ops, float64(res.Ops)/float64(*n))
	if res.Detected {
		fmt.Printf("RESULT: FAULT DETECTED (iteration %d)\n", res.DetectedAt)
		os.Exit(1)
	}
	fmt.Println("RESULT: PASS")
}

func genFor(m int) lfsr.GenPoly {
	if m == 1 {
		return prt.PaperBOMConfig().Gen
	}
	f := gf.NewField(m)
	return lfsr.MustGenPoly(f, []gf.Elem{1, 2, 2})
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "prtsim: "+format+"\n", args...)
	os.Exit(2)
}
