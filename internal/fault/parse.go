package fault

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ram"
)

// ParseSpec parses the textual fault mini-language used by the CLIs
// and test generators:
//
//	saf0@C.B  saf1@C.B        stuck-at on cell C bit B (".B" optional)
//	tfup@C.B  tfdown@C.B      transition faults
//	sof@C                     stuck-open cell
//	drf0@C.B/D  drf1@C.B/D    retention fault decaying to 0/1 after D ops
//	afnone@A  afalias@A:T  afmulti@A:T
//	cfin@A.B>V.B  cfind@…     inversion coupling (up / down)
//	cfid0@A.B>V.B  cfid1@…    idempotent coupling forcing 0/1 (up)
//	cfst@A.B=X>V.B=Y          state coupling: victim forced Y while agg X
//	bridge@A.B~V.B  bridgeand@…   OR / AND bridge
func ParseSpec(s string) (Fault, error) {
	kind, rest, ok := strings.Cut(strings.TrimSpace(s), "@")
	if !ok {
		return nil, fmt.Errorf("fault: bad spec %q (missing @)", s)
	}
	kind = strings.ToLower(kind)
	switch kind {
	case "saf0", "saf1":
		c, b, err := cellBit(rest)
		if err != nil {
			return nil, err
		}
		return SAF{Cell: c, Bit: b, Value: bitOf(kind == "saf1")}, nil
	case "tfup", "tfdown":
		c, b, err := cellBit(rest)
		if err != nil {
			return nil, err
		}
		return TF{Cell: c, Bit: b, Up: kind == "tfup"}, nil
	case "sof":
		c, _, err := cellBit(rest)
		if err != nil {
			return nil, err
		}
		return SOF{Cell: c}, nil
	case "drf0", "drf1":
		head, delayStr, found := strings.Cut(rest, "/")
		if !found {
			return nil, fmt.Errorf("fault: drf needs /delay in %q", s)
		}
		c, b, err := cellBit(head)
		if err != nil {
			return nil, err
		}
		delay, err := strconv.ParseUint(strings.TrimSpace(delayStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad delay in %q", s)
		}
		return DRF{Cell: c, Bit: b, Decay: bitOf(kind == "drf1"), Delay: delay}, nil
	case "afnone":
		a, _, err := cellBit(rest)
		if err != nil {
			return nil, err
		}
		return AF{Kind: AFNone, Addr: a}, nil
	case "afalias", "afmulti":
		at, tt, found := strings.Cut(rest, ":")
		if !found {
			return nil, fmt.Errorf("fault: %s needs addr:target", kind)
		}
		a, err := strconv.Atoi(strings.TrimSpace(at))
		if err != nil {
			return nil, fmt.Errorf("fault: bad addr in %q", s)
		}
		tg, err := strconv.Atoi(strings.TrimSpace(tt))
		if err != nil {
			return nil, fmt.Errorf("fault: bad target in %q", s)
		}
		k := AFAlias
		if kind == "afmulti" {
			k = AFMulti
		}
		return AF{Kind: k, Addr: a, Target: tg}, nil
	case "cfin", "cfind":
		ac, ab, vc, vb, err := pair(rest, ">")
		if err != nil {
			return nil, err
		}
		return CFin{AggCell: ac, AggBit: ab, VicCell: vc, VicBit: vb, Up: kind == "cfin"}, nil
	case "cfid0", "cfid1":
		ac, ab, vc, vb, err := pair(rest, ">")
		if err != nil {
			return nil, err
		}
		return CFid{AggCell: ac, AggBit: ab, VicCell: vc, VicBit: vb,
			Up: true, Value: bitOf(kind == "cfid1")}, nil
	case "cfst":
		agg, vic, found := strings.Cut(rest, ">")
		if !found {
			return nil, fmt.Errorf("fault: cfst needs agg>vic")
		}
		ac, ab, av, err := cellBitVal(agg)
		if err != nil {
			return nil, err
		}
		vc, vb, vv, err := cellBitVal(vic)
		if err != nil {
			return nil, err
		}
		return CFst{AggCell: ac, AggBit: ab, VicCell: vc, VicBit: vb,
			AggValue: av, Value: vv}, nil
	case "bridge", "bridgeand":
		ac, ab, vc, vb, err := pair(rest, "~")
		if err != nil {
			return nil, err
		}
		return BF{CellA: ac, BitA: ab, CellB: vc, BitB: vb, And: kind == "bridgeand"}, nil
	default:
		return nil, fmt.Errorf("fault: unknown kind %q", kind)
	}
}

// MustParseSpec is ParseSpec but panics on error (test helper).
func MustParseSpec(s string) Fault {
	f, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return f
}

func bitOf(b bool) ram.Word {
	if b {
		return 1
	}
	return 0
}

// cellBit parses "C" or "C.B".
func cellBit(t string) (cell, bit int, err error) {
	c, b, found := strings.Cut(strings.TrimSpace(t), ".")
	cell, err = strconv.Atoi(c)
	if err != nil || cell < 0 {
		return 0, 0, fmt.Errorf("fault: bad cell in %q", t)
	}
	if found {
		bit, err = strconv.Atoi(b)
		if err != nil || bit < 0 {
			return 0, 0, fmt.Errorf("fault: bad bit in %q", t)
		}
	}
	return cell, bit, nil
}

// cellBitVal parses "C.B=V".
func cellBitVal(t string) (cell, bit int, val ram.Word, err error) {
	head, v, found := strings.Cut(strings.TrimSpace(t), "=")
	if !found {
		return 0, 0, 0, fmt.Errorf("fault: missing =value in %q", t)
	}
	cell, bit, err = cellBit(head)
	if err != nil {
		return 0, 0, 0, err
	}
	switch strings.TrimSpace(v) {
	case "0":
		val = 0
	case "1":
		val = 1
	default:
		return 0, 0, 0, fmt.Errorf("fault: bad value in %q", t)
	}
	return cell, bit, val, nil
}

// pair parses "A.B<sep>V.B".
func pair(t, sep string) (ac, ab, vc, vb int, err error) {
	a, v, found := strings.Cut(t, sep)
	if !found {
		return 0, 0, 0, 0, fmt.Errorf("fault: missing %q in %q", sep, t)
	}
	ac, ab, err = cellBit(a)
	if err != nil {
		return
	}
	vc, vb, err = cellBit(v)
	return
}
