package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// MetricsHandler serves the registry's current Snapshot as a flat
// expvar-style JSON object (one name → value pair per metric; json
// renders map keys sorted).  Numeric counters are joined by one
// string label, "sink" — which streaming sink path the engine last
// ran ("ordered" or "unordered"; absent before any streaming stage).
// It is exported so services embedding the engines can mount it on
// their own mux.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		m := r.Snapshot().Metrics()
		doc := make(map[string]any, len(m)+1)
		for k, v := range m {
			doc[k] = v
		}
		if mode := r.SinkMode(); mode != "" {
			doc["sink"] = mode
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(doc)
	})
}

// DebugMux builds the debug endpoint's routing: /metrics with the
// counter snapshot plus the standard net/http/pprof profile handlers,
// so in-flight scaling runs can be profiled without global
// http.DefaultServeMux side effects.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the opt-in debug HTTP endpoint on addr (the
// faultcov -debug-addr flag) and returns the bound address — pass a
// ":0" port to let the kernel pick one.  The server runs until the
// process exits; campaign metrics are process-lifetime counters, so
// there is nothing to flush on shutdown.
func ServeDebug(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: DebugMux(r)}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
