// Package sim is the bit-parallel fault-simulation engine behind the
// coverage campaigns: a PPSFP-style simulator that packs 64 faulty
// machines into every uint64 word and replays a recorded test trace
// over all of them at once, instead of re-executing the full test
// algorithm once per injected fault.
//
// The pipeline has three stages:
//
//  1. Trace recording (Recorder, Record): the test algorithm runs once
//     on an instrumented fault-free memory and its operation stream is
//     captured — (op, addr, data) plus three annotations supplied by
//     the executors via ram.TraceAnnotator: which reads the algorithm
//     compares against fault-free expectations ("checked" reads), how
//     recurrence writes derive from preceding reads (the π-test's
//     GF(2)-affine map, so replay preserves error propagation through
//     the walking automaton), and which reads fold into a signature
//     observer (a MISR/SISR's GF(2)-linear accumulator, with compare
//     points where the algorithm tests the register against its
//     prediction).
//
//  2. Bit-sliced replay (Array, ReplayBatch): each cell-bit of the
//     memory becomes a uint64 lane word holding that bit's value
//     across 64 simultaneously simulated machines.  Faults are
//     installed through the fault.BatchInjector capability as
//     per-machine masked hooks that reproduce the Inject decorator
//     wrappers exactly.  A machine is detected as soon as one of its
//     checked reads diverges from the recorded clean value, or an
//     observer compare point finds its accumulated signature
//     difference nonzero — the same criteria the oracle's comparators
//     apply, since every expected value (and predicted signature) a
//     well-formed algorithm checks equals the clean-run value.
//     Because the fold is affine, the faulty-minus-clean accumulator
//     difference evolves linearly in the read differences, so replay
//     reproduces MISR aliasing bit-exactly: multi-error patterns that
//     cancel in the register stay undetected, as in hardware.  A batch
//     finishes early once all of its machines have detected.
//
//  3. Sharded campaigns (Shards): the fault universe is partitioned
//     into 64-machine batches distributed over a worker pool with an
//     atomic cursor; per-fault detection lands in disjoint slices, so
//     results are deterministic regardless of worker count.
//
// On top of the per-batch interpreter sits the compiled pipeline, the
// production fast path:
//
//   - Compile lowers the trace once per campaign into a flat
//     instruction stream with pre-resolved lane offsets, broadcast-
//     expanded clean values, flattened affine terms, fold/observe side
//     tables with deduplicated GF(2) matrices, and the suffix after
//     the last detection point trimmed (nothing past the final
//     comparison can affect detection).  Width-1 traces additionally
//     pack each op into a single uint32.
//
//   - Arena is a worker's reusable machine-array state: lane buffer,
//     hook tables (with a one-byte per-cell flag map the kernels test
//     instead of slice headers), history ring, observer accumulators,
//     scratch, and a fault.Pool recycling hook objects.  Between
//     batches it restores only the cells the previous batch dirtied
//     (or wholesale for dense traces), so steady-state batches
//     allocate nothing.
//
//   - Replay dispatches to a width-1 kernel (no per-bit inner loops;
//     the regime of the paper's Fig. 1a bit-oriented memories and the
//     largest campaigns) or the generic word-oriented kernel.
//
//   - ShardsCompiled drives the batches with one arena per worker and
//     a shared stop flag so a failing batch short-circuits the rest.
//
// Campaigns can additionally collapse the universe into exact
// equivalence classes (fault.Collapse, fed by Program.Summary) and
// simulate one representative per class; package coverage expands the
// results back so every experiment table is unchanged.
//
// Three capabilities serve the campaign *session* layer (package
// coverage's planner/executor, which runs several tests over one
// universe with cross-test fault dropping):
//
//   - subset replay: ShardsView / ShardsCompiledView take an index
//     view of the fault slice (fault.View) and scatter detections
//     back through the lane remap, so the survivors of test k are the
//     only faults replayed against test k+1 — no fault-slice copying;
//
//   - a compiled-program cache (ProgramCache) keyed by (runner
//     identity, memory geometry, initial-image hash), so repeated
//     sweeps record and compile each trace once; programs are
//     immutable after compilation and shared freely across campaigns;
//
//   - arena reuse across programs: Arena.Retarget rebinds a worker's
//     arena to a different program (any width, size, observer or
//     history shape) with a full state reset, and ArenaPool recycles
//     arenas between a session's stages.
//
// On top of the sharded drivers sits the streaming layer (stream.go):
// ShardsStream / ShardsCompiledStream pull the fault universe from a
// fault.Source in fixed-size chunks instead of taking a materialized
// slice, so a campaign's resident fault storage is O(chunk × workers)
// — the universe size stops being a memory bound (the regime of
// exhaustive multi-million-fault coupling universes, experiment E17).
// Each worker owns one reusable chunk buffer plus its arena; chunks
// are claimed under a source mutex, optionally filtered against a
// dropped-fault bitmap (fault.BitSet — the session layer's cross-test
// dropping), structurally collapsed chunk-locally (representatives
// and their expansion never outlive the chunk), replayed as 64-machine
// batches, and the verdicts delivered to a serialized per-chunk sink
// keyed by universe index — so order-insensitive sinks (tallies,
// bitmaps) observe deterministic results whatever the chunk
// scheduling, and order-sensitive ones (the checkpoint layer's
// contiguous-cut tracker) can reorder on the delivered [base, base+n)
// keys.  StreamShard exposes the same loop over a caller-supplied
// replay function (package coverage's chunked oracle).
//
// The streaming drivers offer two sink disciplines.  The serialized
// path (ShardsStream, ShardsCompiledStream, StreamShard) delivers
// every chunk under one sink mutex — required whenever the sink is
// order-sensitive across workers, e.g. the checkpoint layer's
// contiguous prefix cut — and its per-worker lock-wait time is what
// telemetry reports as sink-wait shares.  ShardsCompiledUnordered
// instead gives each worker its own sink (a caller-supplied factory),
// so workers fold verdicts into private accumulators — detection
// bitmap words, class tallies — with no lock at all, and the caller
// merges the accumulators once after the drivers drain.  Because
// chunk index ranges are disjoint and the folds are sums and bit-ORs,
// the merged result is byte-identical to the serialized path's; the
// session layer picks the discipline per plan (checkpoint or live
// progress frontier ⇒ serialized, else unordered).
//
// All drivers take a context.Context and cancel cooperatively at
// batch/chunk granularity: the check is one non-blocking channel
// receive per claim (free against context.Background's nil Done
// channel, never inside the replay kernel), cancelled workers drain
// after their in-flight batch, streaming drivers abandon the
// interrupted chunk before its sink delivery (sinks only ever see
// complete chunks), and the driver returns ctx.Err() alongside the
// partial results — callers separate interruption from replay failure
// with errors.Is.  StreamConfig.Base offsets delivered universe
// indices for checkpoint resume: the source is Skip()ed past the
// completed prefix and Base set to the skip count.
//
// The engine is exact, not approximate: package coverage cross-checks
// all of it against the per-fault oracle path, and the equivalence
// property tests assert identical per-class results over full fault
// universes, for both kernels, with collapsing on and off — including
// signature-compressed (MISR/BIST) runners, whose aliasing the
// observer path models bit-exactly.  Runners opt in via
// coverage.ReplaySafe; anything else (un-annotated adaptive stimuli)
// stays on the oracle.
package sim
