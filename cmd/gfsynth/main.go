// Command gfsynth synthesises XOR-only networks for multiplication by
// a constant in GF(2^m) — the hardware block the paper embeds in the
// memory circuit (§2).
//
// Usage:
//
//	gfsynth [-m 4] [-p "1+z+z^4"] [-c 2] [-verilog] [-survey]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gf"
	"repro/internal/gf2"
	"repro/internal/report"
	"repro/internal/xorsynth"
)

func main() {
	m := flag.Int("m", 4, "extension degree of GF(2^m)")
	pstr := flag.String("p", "", "field modulus p(z) (default: smallest primitive)")
	c := flag.Uint("c", 2, "the constant to multiply by")
	verilog := flag.Bool("verilog", false, "emit a structural Verilog listing")
	survey := flag.Bool("survey", false, "survey all nonzero constants of the field")
	flag.Parse()

	var field *gf.Field
	if *pstr == "" {
		field = gf.NewField(*m)
	} else {
		p, err := gf2.Parse(*pstr)
		if err != nil {
			fatalf("%v", err)
		}
		field, err = gf.NewFieldPoly(p)
		if err != nil {
			fatalf("%v", err)
		}
	}
	fmt.Printf("field: %v\n", field)

	if *survey {
		t := report.New("constant multiplier survey", "constant", "naive", "CSE", "saved", "depth")
		totN, totC := 0, 0
		for _, cost := range xorsynth.SurveyField(field) {
			t.AddRowf(field.FormatElem(cost.Constant),
				fmt.Sprintf("%d", cost.NaiveGates),
				fmt.Sprintf("%d", cost.CSEGates),
				fmt.Sprintf("%d", cost.Saved()),
				fmt.Sprintf("%d", cost.CSEDepth))
			totN += cost.NaiveGates
			totC += cost.CSEGates
		}
		t.AddRowf("total", fmt.Sprintf("%d", totN), fmt.Sprintf("%d", totC),
			fmt.Sprintf("%d", totN-totC), "-")
		t.Render(os.Stdout)
		return
	}

	elem, err := field.ElemFromBits(uint32(*c))
	if err != nil {
		fatalf("%v", err)
	}
	mat := field.ConstMulMatrix(elem)
	naive := xorsynth.Naive(mat)
	cse := xorsynth.CSE(mat)
	fmt.Printf("constant: %s\n", field.FormatElem(elem))
	fmt.Printf("matrix (rows = output bits):\n%v\n", mat)
	fmt.Printf("naive: %d XORs depth %d | CSE: %d XORs depth %d\n",
		naive.GateCount(), naive.Depth(), cse.GateCount(), cse.Depth())
	if *verilog {
		fmt.Println()
		fmt.Print(cse.Verilog(fmt.Sprintf("gfmul_%x", *c)))
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gfsynth: "+format+"\n", args...)
	os.Exit(2)
}
