package bist

import (
	"testing"
	"testing/quick"

	"repro/internal/gf"
	"repro/internal/prt"
	"repro/internal/ram"
)

func TestMISRDeterministic(t *testing.T) {
	f := gf.NewField(4)
	data := []gf.Elem{1, 2, 3, 4, 5, 0xF}
	s1, err := Predict(f, 0, data)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := Predict(f, 0, data)
	if s1 != s2 {
		t.Error("MISR not deterministic")
	}
	m, _ := NewMISR(f, 0)
	m.FeedAll(data)
	if m.Signature() != s1 || m.Fed() != 6 {
		t.Error("register/Predict disagree")
	}
	m.Reset()
	if m.Signature() != 0 || m.Fed() != 0 {
		t.Error("Reset failed")
	}
}

func TestMISRSingleErrorAlwaysDetected(t *testing.T) {
	// Any single wrong word in any position must change the signature.
	f := gf.NewField(4)
	base := make([]gf.Elem, 32)
	for i := range base {
		base[i] = gf.Elem(i*7%16) & 0xF
	}
	clean, _ := Predict(f, 0, base)
	for pos := range base {
		for e := gf.Elem(1); e < 16; e++ {
			dirty := append([]gf.Elem(nil), base...)
			dirty[pos] ^= e
			sig, _ := Predict(f, 0, dirty)
			if sig == clean {
				t.Fatalf("single error e=%x at %d aliased", e, pos)
			}
		}
	}
}

func TestMISRCancellingPairAliases(t *testing.T) {
	// The constructive double-error witness must alias exactly.
	f := gf.NewField(4)
	base := make([]gf.Elem, 20)
	for i := range base {
		base[i] = gf.Elem(i) & 0xF
	}
	clean, _ := Predict(f, 0, base)
	m, _ := NewMISR(f, 0)
	e1 := gf.Elem(0x3)
	i, j := 4, 9
	e2, err := m.CancellingPair(e1, i, j, len(base))
	if err != nil {
		t.Fatal(err)
	}
	dirty := append([]gf.Elem(nil), base...)
	dirty[i] ^= e1
	dirty[j] ^= e2
	sig, _ := Predict(f, 0, dirty)
	if sig != clean {
		t.Errorf("constructed pair did not alias: %x vs %x", sig, clean)
	}
}

func TestMISRCancellingPairValidation(t *testing.T) {
	f := gf.NewField(4)
	m, _ := NewMISR(f, 0)
	if _, err := m.CancellingPair(0, 1, 2, 10); err == nil {
		t.Error("zero error accepted")
	}
	if _, err := m.CancellingPair(1, 5, 5, 10); err == nil {
		t.Error("equal positions accepted")
	}
	if _, err := m.CancellingPair(1, 5, 12, 10); err == nil {
		t.Error("out-of-stream position accepted")
	}
}

func TestMISRValidation(t *testing.T) {
	if _, err := NewMISR(nil, 0); err == nil {
		t.Error("nil field accepted")
	}
	f := gf.NewField(4)
	if _, err := NewMISR(f, 0x10); err == nil {
		t.Error("out-of-field alpha accepted")
	}
}

// TestMISRCompressesVerifyPass wires the MISR into a real π-test
// read-back: the compressed signature of the observed TDB must match
// the compressed prediction on a clean memory and differ under a
// fault.
func TestMISRCompressesVerifyPass(t *testing.T) {
	f := gf.NewField(4)
	cfg := prt.PaperWOMConfig()
	n := 64
	// Clean run.
	mem := ram.NewWOM(n, 4)
	prt.MustRunIteration(cfg, mem)
	observed := make([]gf.Elem, n)
	for i := 0; i < n; i++ {
		observed[i] = gf.Elem(mem.Read(i))
	}
	want := prt.ExpectedSequence(cfg, n)
	sObs, _ := Predict(f, 0, observed)
	sWant, _ := Predict(f, 0, want)
	if sObs != sWant {
		t.Fatal("clean MISR signatures differ")
	}
	// Single corrupted cell must break the signature.
	observed[20] ^= 1
	sBad, _ := Predict(f, 0, observed)
	if sBad == sWant {
		t.Error("corruption aliased in MISR")
	}
}

func TestQuickMISRLinear(t *testing.T) {
	f := gf.NewField(8)
	prop := func(a, b uint8, alphaRaw uint8) bool {
		alpha := gf.Elem(alphaRaw) & f.Mask()
		if alpha == 0 {
			alpha = f.Generator()
		}
		s1, err := Predict(f, alpha, []gf.Elem{gf.Elem(a)})
		if err != nil {
			return false
		}
		s2, _ := Predict(f, alpha, []gf.Elem{gf.Elem(b)})
		s12, _ := Predict(f, alpha, []gf.Elem{gf.Elem(a) ^ gf.Elem(b)})
		return s12 == s1^s2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
