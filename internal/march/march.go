// Package march implements the March test framework for RAM testing —
// the baseline family the paper positions pseudo-ring testing against,
// in the formal notation of van de Goor that the paper's §1 cites:
//
//	MarchA = {c(w0); ⇑(r0,w1); ⇓(r1,w0)}
//
// where ⇑/⇓/c traverse the address space up, down, or in either order,
// and rD/wD read or write the data background D ∈ {0,1} (for
// word-oriented memories D selects the background value or its
// complement).
//
// The package provides the notation (Op, Element, Test), a parser and
// printer for the textual form, an executor that detects faults by
// comparing every read against the algorithm's expected value, data
// background generation for word-oriented memories, and a library of
// the classical algorithms (MATS through March LR).
package march

import (
	"fmt"

	"repro/internal/ram"
)

// Order is an address traversal direction.
type Order int

const (
	// Any means the element works in either direction (the paper's "c").
	// The executor runs it ascending.
	Any Order = iota
	// Up traverses addresses 0 → n-1 (the paper's ⇑).
	Up
	// Down traverses addresses n-1 → 0 (the paper's ⇓).
	Down
)

func (o Order) String() string {
	switch o {
	case Any:
		return "c"
	case Up:
		return "⇑"
	case Down:
		return "⇓"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}

// Op is a single read or write of data background D (0 or 1).
type Op struct {
	Read bool
	D    int
}

// R returns a read of background d.
func R(d int) Op { return Op{Read: true, D: d} }

// W returns a write of background d.
func W(d int) Op { return Op{Read: false, D: d} }

func (o Op) String() string {
	if o.Read {
		return fmt.Sprintf("r%d", o.D)
	}
	return fmt.Sprintf("w%d", o.D)
}

// Element is one March element: an address order and an op sequence
// applied at every address before moving on.
type Element struct {
	Order Order
	Ops   []Op
}

func (e Element) String() string {
	s := e.Order.String() + "("
	for i, op := range e.Ops {
		if i > 0 {
			s += ","
		}
		s += op.String()
	}
	return s + ")"
}

// Test is a complete March algorithm.
type Test struct {
	Name  string
	Elems []Element
}

// String renders the algorithm in the paper's notation, e.g.
// "{c(w0);⇑(r0,w1);⇓(r1,w0)}".
func (t Test) String() string {
	s := "{"
	for i, e := range t.Elems {
		if i > 0 {
			s += ";"
		}
		s += e.String()
	}
	return s + "}"
}

// OpsPerCell returns the number of memory operations per address, the
// standard March complexity measure (e.g. 10n for March C- means
// OpsPerCell() == 10).
func (t Test) OpsPerCell() int {
	total := 0
	for _, e := range t.Elems {
		total += len(e.Ops)
	}
	return total
}

// Validate checks structural sanity: at least one element, non-empty
// op lists, D ∈ {0,1}.
func (t Test) Validate() error {
	if len(t.Elems) == 0 {
		return fmt.Errorf("march: %s has no elements", t.Name)
	}
	for i, e := range t.Elems {
		if len(e.Ops) == 0 {
			return fmt.Errorf("march: %s element %d is empty", t.Name, i)
		}
		if e.Order != Any && e.Order != Up && e.Order != Down {
			return fmt.Errorf("march: %s element %d has bad order", t.Name, i)
		}
		for _, op := range e.Ops {
			if op.D != 0 && op.D != 1 {
				return fmt.Errorf("march: %s element %d has data %d, want 0/1", t.Name, i, op.D)
			}
		}
	}
	return nil
}

// Mismatch records the first failing read of a run.
type Mismatch struct {
	Addr     int
	Expected ram.Word
	Got      ram.Word
	Elem     int
	OpIndex  int
}

func (m Mismatch) String() string {
	return fmt.Sprintf("elem %d op %d @%d: read %#x, expected %#x",
		m.Elem, m.OpIndex, m.Addr, m.Got, m.Expected)
}

// Result is the outcome of running a March test.
type Result struct {
	Detected bool
	First    *Mismatch // nil when not detected
	Ops      uint64    // memory operations performed
}

// Run executes the test on mem with the given data background: rD/wD
// use background for D=0 and its complement for D=1, masked to the
// cell width.  Every read is compared against the value the algorithm
// itself last wrote to that address; a cell that has not been written
// yet is not checked (well-formed March tests initialise before
// reading).  The run continues after a mismatch so Ops reflects the
// full test length; First keeps the earliest failure.
func Run(t Test, mem ram.Memory, background ram.Word) Result {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	n := mem.Size()
	mask := ram.Word(1)<<uint(mem.Width()) - 1
	data := [2]ram.Word{background & mask, ^background & mask}

	expected := make([]ram.Word, n)
	valid := make([]bool, n)
	var res Result

	for ei, e := range t.Elems {
		first, last, step := 0, n-1, 1
		if e.Order == Down {
			first, last, step = n-1, 0, -1
		}
		for a := first; ; a += step {
			for oi, op := range e.Ops {
				res.Ops++
				if op.Read {
					got := mem.Read(a)
					// Every March read is compared against the expected
					// background value, so every read is replay-checked.
					ram.AnnotateChecked(mem)
					want := data[op.D]
					// The algorithm's own bookkeeping must agree; if the
					// expected background diverges from the tracked write
					// the test definition is inconsistent.
					if valid[a] && expected[a] != want {
						panic(fmt.Sprintf("march: %s expects r%d at elem %d but last write was %#x",
							t.Name, op.D, ei, expected[a]))
					}
					if got != want && !res.Detected {
						res.Detected = true
						res.First = &Mismatch{Addr: a, Expected: want, Got: got, Elem: ei, OpIndex: oi}
					} else if got != want {
						res.Detected = true
					}
				} else {
					mem.Write(a, data[op.D])
					expected[a] = data[op.D]
					valid[a] = true
				}
			}
			if a == last {
				break
			}
		}
	}
	return res
}

// FailingAddresses runs the test over the given backgrounds and
// returns the sorted set of addresses that produced at least one
// mismatching read.  Unlike the pseudo-ring walk, March reads compare
// each cell against its own expected value with no error propagation,
// so the failing set localises defects exactly — this is the
// repair-grade diagnosis input for redundancy allocation (see package
// repair).
func FailingAddresses(t Test, mem ram.Memory, backgrounds []ram.Word) []int {
	if len(backgrounds) == 0 {
		backgrounds = []ram.Word{0}
	}
	bad := map[int]bool{}
	for _, bg := range backgrounds {
		collectFailures(t, mem, bg, bad)
	}
	out := make([]int, 0, len(bad))
	for a := range bad {
		out = append(out, a)
	}
	sortInts(out)
	return out
}

// collectFailures is Run with per-address failure recording.
func collectFailures(t Test, mem ram.Memory, background ram.Word, bad map[int]bool) {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	n := mem.Size()
	mask := ram.Word(1)<<uint(mem.Width()) - 1
	data := [2]ram.Word{background & mask, ^background & mask}
	expected := make([]ram.Word, n)
	valid := make([]bool, n)
	for _, e := range t.Elems {
		first, last, step := 0, n-1, 1
		if e.Order == Down {
			first, last, step = n-1, 0, -1
		}
		for a := first; ; a += step {
			for _, op := range e.Ops {
				if op.Read {
					if got := mem.Read(a); got != data[op.D] {
						bad[a] = true
					}
				} else {
					mem.Write(a, data[op.D])
					expected[a] = data[op.D]
					valid[a] = true
				}
			}
			if a == last {
				break
			}
		}
	}
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// RunBackgrounds executes the test once per background and merges the
// results (detected if any run detects).  This is the standard way to
// extend bit-oriented March tests to word-oriented memories.
func RunBackgrounds(t Test, mem ram.Memory, backgrounds []ram.Word) Result {
	var merged Result
	for _, bg := range backgrounds {
		r := Run(t, mem, bg)
		merged.Ops += r.Ops
		if r.Detected && !merged.Detected {
			merged.Detected = true
			merged.First = r.First
		}
	}
	return merged
}

// DataBackgrounds returns the standard log2(m)+1 backgrounds for an
// m-bit word: all-zero, alternating single bits (0101…), alternating
// pairs (0011…), and so on.  With their implicit complements (taken by
// the r1/w1 ops) they distinguish every intra-word bit pair.
func DataBackgrounds(m int) []ram.Word {
	if m < 1 || m > 32 {
		panic(fmt.Sprintf("march: width %d out of range", m))
	}
	mask := ram.Word(1)<<uint(m) - 1
	out := []ram.Word{0}
	for span := 1; span < m; span *= 2 {
		var bg ram.Word
		for b := 0; b < m; b++ {
			if (b/span)&1 == 1 {
				bg |= 1 << uint(b)
			}
		}
		out = append(out, bg&mask)
	}
	return out
}
