// The session planner/executor.  Stage ordering and result folding
// must be deterministic: comparative experiments byte-compare session
// output across engines and runs.
//
//faultsim:deterministic

package coverage

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// This file is the campaign session layer: Plan describes an ordered
// set of test algorithms over one fault universe and memory factory;
// Run executes it as a pipeline.  The layering replaces "one runner ×
// one universe, stateless" with the structure comparative experiments
// actually have — several tests over the same universe — and exploits
// it three ways:
//
//   - cross-test fault dropping (Plan.Drop): once a fault is detected
//     by one test of the session it is dropped from the remaining
//     tests, which replay only the survivor subset through a view of
//     the fault slice (fault.View) — a survivor bitmap (fault.BitView,
//     one bit per universe fault) rather than materialized index
//     slices.  Dropping is
//     verdict-preserving: a fault that IS simulated by a stage gets
//     exactly the verdict an independent campaign would give it
//     (verdicts are unconditional properties of the (runner, fault)
//     pair), and the session-level cumulative result is byte-identical
//     with dropping on or off.  What changes is bookkeeping: a
//     dropped-mode stage's Result covers only the faults presented to
//     it.
//
//   - cheapest-trace-first ordering (OrderCheapestFirst): stages run in
//     ascending clean-run length, so cheap tests pay for the easy kills
//     before expensive tests see the universe.
//
//   - a compiled-program cache (sim.ProgramCache): recording and
//     compiling a runner's trace is keyed by (runner identity, memory
//     geometry, initial image) and shared across sessions, so repeated
//     sweeps compile each trace once.  Runners opt in via TraceKeyer.

// Order selects the stage execution order of a session.
type Order int

const (
	// OrderAsGiven runs the stages in Plan.Runners order.
	OrderAsGiven Order = iota
	// OrderCheapestFirst runs stages in ascending clean-run operation
	// count (stable for ties) — the classic fault-dropping schedule:
	// cheap tests drop the easy faults before expensive tests run.
	OrderCheapestFirst
)

// Verdict is one stage's outcome for one universe fault.
type Verdict uint8

const (
	// VerdictUndetected: the stage simulated the fault and missed it.
	VerdictUndetected Verdict = iota
	// VerdictDetected: the stage simulated the fault and caught it.
	VerdictDetected
	// VerdictDropped: an earlier stage had already detected the fault,
	// so this stage never simulated it (Plan.Drop only).
	VerdictDropped
)

// TraceKeyer lets a runner opt in to the cross-session program cache.
// The key must uniquely determine the operation schedule and replay
// annotations the runner produces on any memory of a given geometry
// and initial image.  A display name is NOT enough: distinct
// configurations (E10's factor grid) share names, so implementations
// must serialise the full configuration.  Runners without the
// interface are recorded and compiled fresh each session — always
// correct, never cached.
type TraceKeyer interface {
	Runner
	// TraceKey returns the configuration-complete identity string.
	TraceKey() string
}

// Plan describes a campaign session.  The zero values give the default
// pipeline: compiled engine, no dropping, given order, no caching.
type Plan struct {
	// Name labels the session's cumulative result ("session" when
	// empty).
	Name string
	// Runners are the test algorithms, in presentation order:
	// Session.Results is always index-aligned with this slice whatever
	// the execution order.
	Runners []Runner
	// Universe is the shared fault universe.
	Universe fault.Universe
	// Stream, when non-nil, replaces Universe with a pull-based fault
	// source enumerated in bounded chunks (stream.go): the session then
	// holds O(Chunk × Workers) fault instances plus one bit per
	// universe fault, whatever the universe size.  Universe is ignored
	// while Stream is set.
	Stream *fault.Stream
	// Chunk is the faults-per-pull of a streaming session (<= 0 means
	// the package default; see SetDefaultChunk).
	Chunk int
	// Memory builds a fresh fault-free memory per trial.
	Memory MemoryFactory
	// Workers caps the campaign goroutines (<= 0 means the package
	// default).
	Workers int
	// LaneWords is the lane width compiled programs use, in 64-machine
	// words (1, 4 or 8 — i.e. 64, 256 or 512 machines per batch; <= 0
	// means the package default, see SetDefaultLaneWords).  Only the
	// compiled engine is affected; the interpreter and oracle always
	// run 64-wide.
	LaneWords int
	// Engine selects the execution strategy for every stage (with the
	// usual per-stage oracle fallback for non-replayable runners).
	Engine Engine
	// Drop enables cross-test fault dropping; see the package comment
	// for the exact semantics.
	Drop bool
	// Order selects the stage execution order.
	Order Order
	// KeepVectors retains a per-runner verdict vector over the full
	// universe (Session.Vectors) — the property tests' view of exactly
	// what each stage simulated and decided.
	KeepVectors bool
	// Cache, when non-nil, memoizes compiled programs across sessions
	// for runners implementing TraceKeyer.  SharedProgramCache() is the
	// process-wide instance the CLI and benchmarks use.
	Cache *sim.ProgramCache
	// Checkpoint, when non-nil with a Path, makes a streaming session
	// durable: its state is persisted atomically on a cadence and the
	// session can resume from a prior checkpoint (durable.go).  nil
	// falls back to the process default (SetDefaultCheckpoint).
	// Materialized sessions ignore it.
	Checkpoint *CheckpointConfig
	// Sink selects the streaming chunk-sink discipline: SinkAuto (the
	// zero value) runs unordered whenever nothing needs ordering — no
	// checkpoint, no KeepVectors, no live progress callback — and
	// ordered otherwise; SinkOrdered/SinkUnordered force a path.  The
	// two paths are property-tested to produce identical Results; the
	// unordered one removes the serialized sink's contention (see
	// sim.ShardsCompiledUnordered).  Materialized sessions ignore it.
	Sink SinkMode
	// PartitionIndex/PartitionCount restrict a streaming session to
	// one index-range partition of its universe — partition
	// PartitionIndex (1-based) of PartitionCount near-equal ranges
	// (fault.PartitionRange).  The session then enumerates only that
	// subrange, its results tally only those faults, and its
	// checkpoints record the covered range for checkpoint.Merge.
	// PartitionCount <= 0 defers to the process default
	// (SetDefaultPartition).  Requires an exact-Count source and is
	// incompatible with KeepVectors; materialized sessions are never
	// partitioned.
	PartitionIndex, PartitionCount int
}

// StageStat reports one executed stage, in execution order.
type StageStat struct {
	// Runner is the stage's display name; RunnerIndex its position in
	// Plan.Runners (and so in Session.Results).
	Runner      string
	RunnerIndex int
	// Entered is the number of faults presented to the stage (the
	// survivor count when dropping; the full universe otherwise).
	Entered int
	// Detected is the number of presented faults the stage caught.
	Detected int
	// Survivors is the cumulative number of universe faults no stage
	// has detected yet, after this stage — the session-ordered coverage
	// progression (and, when dropping, the next stage's Entered).
	Survivors int
	// CacheHit reports that the stage's compiled program came from the
	// program cache (no recording or compilation happened).
	CacheHit bool
	// Stats is the stage's engine execution report.
	Stats *EngineStats
}

// Session is an executed Plan.
type Session struct {
	// Results holds one campaign Result per runner, index-aligned with
	// Plan.Runners.  Without dropping each is byte-identical to an
	// independent CampaignEngine run (the session property tests
	// enforce it); with dropping a stage's Result covers the faults
	// presented to it.
	Results []Result
	// Cumulative is the session-level result: a fault counts as
	// detected when at least one stage detected it.  It is identical
	// with dropping on or off.  OpsCleanRun totals the stages' clean
	// runs (the session's total test length).
	Cumulative Result
	// Stages reports the executed stages in execution order.
	Stages []StageStat
	// Vectors (KeepVectors only) holds per-runner verdicts over the
	// full universe, index-aligned with Plan.Runners.
	Vectors [][]Verdict
	// Interrupted reports that the session's context was cancelled
	// before every stage finished: the results cover only the work done
	// up to the cancellation point (the last running stage's Result is
	// itself tagged Interrupted, and later stages never ran).
	Interrupted bool
}

// defaultDrop is the Drop value Compare-built sessions use (the CLI's
// -drop flag); the zero value keeps sessions undropped.
var defaultDrop atomic.Bool

// SetDefaultDrop toggles cross-test fault dropping for Compare-built
// sessions.
func SetDefaultDrop(on bool) { defaultDrop.Store(on) }

// DefaultDrop reports whether Compare-built sessions drop.
func DefaultDrop() bool { return defaultDrop.Load() }

// sharedCache is the process-wide program cache.
var sharedCache = sim.NewProgramCache()

// SharedProgramCache returns the process-wide compiled-program cache
// used by Compare (and anything else that opts in via Plan.Cache).
func SharedProgramCache() *sim.ProgramCache { return sharedCache }

// sessionObserver, when set, receives every executed multi-runner
// session — the CLI hook behind faultcov -session.
var sessionObserver struct {
	mu sync.RWMutex
	fn func(*Plan, *Session)
}

// SetSessionObserver installs a callback invoked after every session
// of two or more runners completes (nil uninstalls).  It is a
// reporting hook for CLIs; the callback must not mutate the session.
func SetSessionObserver(fn func(*Plan, *Session)) {
	sessionObserver.mu.Lock()
	sessionObserver.fn = fn
	sessionObserver.mu.Unlock()
}

// stage is one runner's prepared execution state.
type stage struct {
	runner        Runner
	index         int
	cleanOps      uint64
	falsePositive bool
	prog          *sim.Program // compiled fast path
	tr            *sim.Trace   // bit-parallel fast path
	cacheHit      bool
	cacheTried    bool // a program-cache lookup happened during prepare
}

// Run executes the session under the process default context (see
// SetDefaultContext — context.Background() unless a CLI installed a
// signal-aware one).
func (p *Plan) Run() *Session { return p.RunContext(DefaultContext()) }

// RunContext executes the session under ctx.  Cancellation is
// cooperative at batch/chunk granularity: the in-flight stage drains
// its workers, its partial verdicts are folded into a well-formed
// Result tagged Interrupted, remaining stages are skipped, and the
// session returns with Session.Interrupted set.
func (p *Plan) RunContext(ctx context.Context) *Session {
	if p.Stream != nil {
		return p.runStream(ctx)
	}
	workers := p.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	nFaults := len(p.Universe.Faults)
	batchable := sim.Batchable(p.Universe.Faults)

	// Plan: one clean run (or cache hit) per runner, so the executor
	// knows every stage's trace, program and cost before ordering.
	stages := make([]*stage, len(p.Runners))
	for i, r := range p.Runners {
		stages[i] = p.prepareStage(r, i, batchable)
	}
	order := p.executionOrder(stages)

	s := &Session{Results: make([]Result, len(p.Runners))}
	if p.KeepVectors {
		s.Vectors = make([][]Verdict, len(p.Runners))
	}
	cum := make([]bool, nFaults)
	cumDetected := 0
	arenas := &sim.ArenaPool{}
	reg := telemetry.Active()
	// Cross-test dropping bookkeeping: one bit per universe fault (set
	// while undetected), exposed to later stages as a fault.BitView —
	// the subset never costs more than N/8 bytes however many stages
	// narrow it.  nil until the first stage has run.
	var surv *fault.BitSet
	for _, st := range order {
		view := fault.Span(p.Universe.Faults)
		if p.Drop && surv != nil {
			view = fault.NewBitView(p.Universe.Faults, surv)
		}
		var before telemetry.Snapshot
		if reg != nil {
			before = reg.Snapshot()
			reg.BeginStage(st.runner.Name(), int64(view.Len()))
		}
		t0 := time.Now() //faultsim:ordered stage wall-clock is telemetry, reported beside the deterministic counts
		det, stats, err := p.detect(ctx, st, view, workers, arenas)
		//faultsim:ordered stage wall-clock is telemetry, reported beside the deterministic counts
		finishStage(stats, st, view.Len(), time.Since(t0), reg, before)
		res := Result{
			Runner:        st.runner.Name(),
			Universe:      p.Universe.Name,
			Total:         view.Len(),
			ByClass:       make(map[fault.Class]ClassStat),
			OpsCleanRun:   st.cleanOps,
			FalsePositive: st.falsePositive,
			Stats:         stats,
			Interrupted:   err != nil,
		}
		for i := 0; i < view.Len(); i++ {
			cs := res.ByClass[view.At(i).Class()]
			cs.Total++
			if det[i] {
				cs.Detected++
				res.Detected++
				if u := view.Index(i); !cum[u] {
					cum[u] = true
					cumDetected++
				}
			}
			res.ByClass[view.At(i).Class()] = cs
		}
		s.Results[st.index] = res
		if s.Vectors != nil {
			vec := make([]Verdict, nFaults)
			if view.Len() != nFaults {
				for i := range vec {
					vec[i] = VerdictDropped
				}
			}
			for i := 0; i < view.Len(); i++ {
				if det[i] {
					vec[view.Index(i)] = VerdictDetected
				} else {
					vec[view.Index(i)] = VerdictUndetected
				}
			}
			s.Vectors[st.index] = vec
		}
		s.Stages = append(s.Stages, StageStat{
			Runner:      st.runner.Name(),
			RunnerIndex: st.index,
			Entered:     view.Len(),
			Detected:    res.Detected,
			Survivors:   nFaults - cumDetected,
			CacheHit:    st.cacheHit,
			Stats:       stats,
		})
		if err != nil {
			// Cancelled mid-stage: the verdict slice covers only the
			// batches that ran (unsimulated faults read as undetected, so
			// Detected is a lower bound).  Remaining stages never run.
			s.Interrupted = true
			break
		}
		if p.Drop {
			if surv == nil {
				surv = fault.NewBitSet(nFaults)
				for i := 0; i < view.Len(); i++ {
					if !det[i] {
						surv.Set(view.Index(i))
					}
				}
			} else {
				for i := 0; i < view.Len(); i++ {
					if det[i] {
						surv.Clear(view.Index(i))
					}
				}
			}
		}
		if reg != nil {
			reg.ReportSurvivors(int64(nFaults - cumDetected))
			p.reportStage(reg, s.Stages[len(s.Stages)-1])
		}
	}

	// Session-level cumulative coverage.
	cumRes := Result{
		Runner:      p.sessionName(),
		Universe:    p.Universe.Name,
		Total:       nFaults,
		Detected:    cumDetected,
		ByClass:     make(map[fault.Class]ClassStat),
		Interrupted: s.Interrupted,
	}
	for i, f := range p.Universe.Faults {
		cs := cumRes.ByClass[f.Class()]
		cs.Total++
		if cum[i] {
			cs.Detected++
		}
		cumRes.ByClass[f.Class()] = cs
	}
	sumCleanRuns(stages, &cumRes)
	s.Cumulative = cumRes

	p.notifyObserver(s)
	return s
}

// executionOrder applies Plan.Order to the prepared stages — shared by
// the materialized and streaming executors, which the property tests
// hold byte-identical.
func (p *Plan) executionOrder(stages []*stage) []*stage {
	order := make([]*stage, len(stages))
	copy(order, stages)
	if p.Order == OrderCheapestFirst {
		sort.SliceStable(order, func(a, b int) bool { return order[a].cleanOps < order[b].cleanOps })
	}
	return order
}

// sessionName labels the cumulative result.
func (p *Plan) sessionName() string {
	if p.Name == "" {
		return "session"
	}
	return p.Name
}

// UniverseName returns the universe label whichever shape the plan
// has: the stream's name for streaming sessions, the materialized
// universe's otherwise.
func (p *Plan) UniverseName() string {
	if p.Stream != nil {
		return p.Stream.Name
	}
	return p.Universe.Name
}

// finishStage completes a stage's engine report: the always-on timing
// fields (elapsed, faults/s, collapse ratio, cache lookups — every
// path gets them, oracle fallbacks included), plus the per-worker time
// split and arena-pool counters captured over the stage when a
// telemetry registry is attached.  presented is the fault count the
// stage was handed (the survivor subset when dropping).
func finishStage(stats *EngineStats, st *stage, presented int, elapsed time.Duration, reg *telemetry.Registry, before telemetry.Snapshot) {
	stats.Elapsed = elapsed
	if elapsed > 0 {
		stats.FaultsPerSec = float64(presented) / elapsed.Seconds()
	}
	stats.CollapseRatio = 1
	if presented > 0 {
		stats.CollapseRatio = float64(stats.Reps) / float64(presented)
	}
	if st.cacheTried {
		if st.cacheHit {
			stats.CacheHits = 1
		} else {
			stats.CacheMisses = 1
		}
	}
	if reg == nil {
		return
	}
	d := reg.Snapshot().Sub(before)
	stats.ArenaReuse, stats.ArenaFresh = d.ArenaReuse, d.ArenaFresh
	n := len(d.Workers)
	if stats.Workers < n {
		n = stats.Workers
	}
	if n <= 0 {
		return
	}
	stats.KernelTime = make([]time.Duration, n)
	stats.SinkWait = make([]time.Duration, n)
	stats.SourceWait = make([]time.Duration, n)
	for i := 0; i < n; i++ {
		stats.KernelTime[i] = d.Workers[i].Kernel
		stats.SinkWait[i] = d.Workers[i].SinkWait
		stats.SourceWait[i] = d.Workers[i].SourceWait
	}
}

// reportStage hands a completed stage to the telemetry registry's
// OnStage callback (the faultcov -progress per-stage report).
func (p *Plan) reportStage(reg *telemetry.Registry, st StageStat) {
	if reg == nil || st.Stats == nil {
		return
	}
	reg.StageDone(telemetry.StageReport{
		Universe:      p.UniverseName(),
		Stage:         st.Runner,
		Engine:        st.Stats.Engine.String(),
		Entered:       st.Entered,
		Detected:      st.Detected,
		Survivors:     st.Survivors,
		Elapsed:       st.Stats.Elapsed,
		FaultsPerSec:  st.Stats.FaultsPerSec,
		CollapseRatio: st.Stats.CollapseRatio,
		CacheHit:      st.CacheHit,
		KernelTime:    st.Stats.KernelTime,
		SinkWait:      st.Stats.SinkWait,
		SourceWait:    st.Stats.SourceWait,
	})
}

// sumCleanRuns folds the stages' clean-run metadata into the
// cumulative result.
func sumCleanRuns(stages []*stage, cum *Result) {
	for _, st := range stages {
		cum.OpsCleanRun += st.cleanOps
		cum.FalsePositive = cum.FalsePositive || st.falsePositive
	}
}

// notifyObserver reports a completed multi-runner session to the
// installed session observer, if any.
func (p *Plan) notifyObserver(s *Session) {
	if len(p.Runners) <= 1 {
		return
	}
	sessionObserver.mu.RLock()
	fn := sessionObserver.fn
	sessionObserver.mu.RUnlock()
	if fn != nil {
		fn(p, s)
	}
}

// prepareStage runs the clean baseline for one runner: under the
// replay engines the run is recorded (and, for the compiled engine,
// lowered to a program — or fetched from the cache without running at
// all); otherwise it is a plain clean run.  A false-positive clean run
// or a non-replayable trace leaves the stage on the oracle, exactly as
// CampaignEngine always fell back.
func (p *Plan) prepareStage(r Runner, index int, batchable bool) *stage {
	st := &stage{runner: r, index: index}
	_, replaySafe := r.(ReplaySafe)
	if p.Engine == EngineOracle || !replaySafe || !batchable {
		st.falsePositive, st.cleanOps = runClean(r, p.Memory)
		return st
	}
	lanes := p.laneWords()
	mem := p.Memory()
	var key sim.ProgramKey
	cached := false
	if tk, ok := r.(TraceKeyer); ok && p.Cache != nil && p.Engine == EngineCompiled {
		key = sim.ProgramKey{
			Runner:   tk.TraceKey(),
			Size:     mem.Size(),
			Width:    mem.Width(),
			Lanes:    lanes,
			InitHash: sim.InitHash(mem),
		}
		cached = true
		st.cacheTried = true
		if e, hit := p.Cache.Get(key); hit {
			st.prog, st.cleanOps, st.cacheHit = e.Prog, e.CleanOps, true
			return st
		}
	}
	tr, cleanDetected, cleanOps := sim.Record(mem, r.Run)
	st.cleanOps = cleanOps
	st.falsePositive = cleanDetected
	// A false-positive clean run breaks the checked-read criterion
	// (clean values no longer equal the algorithm's expectations), and
	// an unannotated trace has nothing to replay: both keep the oracle
	// semantics.
	if cleanDetected || !tr.Replayable() {
		return st
	}
	if p.Engine == EngineBitParallel {
		st.tr = tr
		return st
	}
	prog, err := sim.Compile(tr, lanes)
	if err != nil {
		// Replayability was pre-checked, so an error here is a broken
		// invariant in the engine — failing loudly beats silently
		// delivering correct-but-slow oracle results under a fast-path
		// label.
		panic(fmt.Sprintf("coverage: compile of %s: %v", r.Name(), err))
	}
	st.prog = prog
	if cached {
		p.Cache.Put(key, &sim.CachedProgram{Prog: prog, CleanOps: cleanOps})
	}
	return st
}

// laneWords resolves the plan's effective compiled lane width in
// 64-machine words.
func (p *Plan) laneWords() int {
	if p.LaneWords > 0 {
		return p.LaneWords
	}
	return DefaultLaneWords()
}

// runClean measures the clean baseline for oracle-path stages.
func runClean(r Runner, mk MemoryFactory) (falsePositive bool, ops uint64) {
	detected, ops := r.Run(mk())
	return detected, ops
}

// detect runs one stage over the view and returns per-view-position
// verdicts plus the engine report.  The error is non-nil exactly when
// ctx was cancelled (the verdicts then cover only the batches that
// ran); any other driver failure panics, as a broken engine invariant.
func (p *Plan) detect(ctx context.Context, st *stage, view fault.View, workers int, arenas *sim.ArenaPool) ([]bool, *EngineStats, error) {
	switch {
	case st.prog != nil:
		v := view
		var col fault.Collapsed
		collapsed := CollapseEnabled()
		if collapsed {
			sum := st.prog.Summary()
			col = fault.CollapseView(view, &sum)
			v = fault.Span(col.Reps)
		}
		d, w, err := sim.ShardsCompiledView(ctx, st.prog, v, workers, arenas)
		if err != nil && ctx.Err() == nil {
			panic(fmt.Sprintf("coverage: compiled replay of %s on %s: %v", st.runner.Name(), p.Universe.Name, err))
		}
		if collapsed {
			d = col.Expand(d)
			// The shard driver counted the representatives it simulated;
			// credit the expanded remainder so the registry's presented-
			// fault total (and the progress Done count) stays exact.
			// Skipped on cancellation: the stage did not finish, so the
			// progress total is not owed.
			if reg := telemetry.Active(); reg != nil && err == nil && view.Len() > v.Len() {
				reg.Flush(reg.Worker(0), &telemetry.Local{Faults: uint64(view.Len() - v.Len())})
			}
		}
		return d, &EngineStats{
			Engine:     EngineCompiled,
			Workers:    w,
			Reps:       v.Len(),
			ProgramOps: st.prog.Ops(),
			TrimmedOps: st.prog.TrimmedOps(),
			LaneWords:  st.prog.LaneWords(),
			FusedOps:   st.prog.FusedOps(),
		}, err
	case st.tr != nil:
		d, w, err := sim.ShardsView(ctx, st.tr, view, workers)
		if err != nil && ctx.Err() == nil {
			panic(fmt.Sprintf("coverage: bitpar replay of %s on %s: %v", st.runner.Name(), p.Universe.Name, err))
		}
		return d, &EngineStats{Engine: EngineBitParallel, Workers: w, Reps: view.Len()}, err
	default:
		d, w, err := oracleDetectView(ctx, st.runner, view, p.Memory, workers)
		return d, &EngineStats{Engine: EngineOracle, Workers: w, Reps: view.Len()}, err
	}
}

// oracleDetectView is the reference path over a view: one full
// algorithm run per presented fault, distributed over workers with an
// atomic cursor.  It also returns the effective worker count, and
// ctx.Err() when cancelled mid-run (the cancellation check is per
// fault claim — one algorithm run is the natural response granularity
// here, matching the replay drivers' per-batch check).
func oracleDetectView(ctx context.Context, r Runner, v fault.View, mk MemoryFactory, workers int) ([]bool, int, error) {
	n := v.Len()
	detected := make([]bool, n)
	if workers > n {
		workers = n
	}
	ctxDone := ctx.Done()
	var cursor atomic.Int64
	var wg sync.WaitGroup
	reg := telemetry.Active()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var tw *telemetry.Worker
			var tl telemetry.Local
			if reg != nil {
				tw = reg.Worker(w)
			}
			for {
				idx := int(cursor.Add(1)) - 1
				if idx >= n {
					return
				}
				select {
				case <-ctxDone:
					return
				default:
				}
				var t0 time.Time
				if tw != nil {
					t0 = time.Now() //faultsim:ordered per-fault kernel timing is telemetry only
				}
				mem := v.At(idx).Inject(mk())
				d, _ := r.Run(mem)
				detected[idx] = d
				if tw != nil {
					// One full algorithm run per fault dwarfs a flush, so
					// the oracle flushes per fault.
					tl.KernelNanos += uint64(time.Since(t0)) //faultsim:ordered per-fault kernel timing is telemetry only
					tl.Faults++
					tl.Reps++
					reg.Flush(tw, &tl)
				}
			}
		}(w)
	}
	wg.Wait()
	return detected, workers, ctx.Err()
}

// FormatStages renders the session's stage progression as one line:
// "MATS+ 1292→301 (1.2ms, 1.1M faults/s); March C- 301→4 (…)"
// (entered→survivors with stage timing, execution order) — the
// faultcov -session report.
func (s *Session) FormatStages() string {
	parts := make([]string, len(s.Stages))
	for i, st := range s.Stages {
		parts[i] = fmt.Sprintf("%s %d→%d", st.Runner, st.Entered, st.Survivors)
		if st.Stats != nil && st.Stats.Elapsed > 0 {
			parts[i] += fmt.Sprintf(" (%s, %s faults/s)",
				FormatDuration(st.Stats.Elapsed), FormatRate(st.Stats.FaultsPerSec))
		}
	}
	return strings.Join(parts, "; ")
}

// FormatRate renders a faults/s figure compactly ("1.2M", "534k").
func FormatRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// FormatDuration rounds a stage time to report precision.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
