// Bistoverhead prices the on-chip PRT logic (§4 of the paper): it
// itemises the gate-equivalent budget, sweeps memory capacities to
// locate the 2^-20 overhead crossover, and runs the cycle-stepped
// controller FSM to show the priced logic actually executes the test.
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/bist"
	"repro/internal/fault"
	"repro/internal/lfsr"
	"repro/internal/prt"
	"repro/internal/ram"
	"repro/internal/report"
)

func main() {
	gm := bist.DefaultGateModel()
	gen := lfsr.PaperGenPoly()

	// Itemised budget for a 1 Mcell × 4 bit array.
	p := bist.Params{N: 1 << 20, M: 4, Gen: gen, Ports: 1, Iterations: 3}
	b, err := bist.ForPRT(p)
	if err != nil {
		panic(err)
	}
	fmt.Printf("budget @2^20 cells: %v\n", b)
	fmt.Printf("gate equivalents:   %.0f\n", b.GateEquivalents(gm))
	fmt.Printf("overhead ratio:     %.2e (2^%.1f)\n\n",
		bist.OverheadRatio(b, p.N, p.M, gm), bist.Log2Ratio(b, p.N, p.M, gm))

	// Capacity sweep: where does the ratio cross the paper's 2^-20?
	t := report.New("overhead vs capacity", "cells", "gate-eq", "log2(ratio)", "<2^-20")
	for _, logN := range []int{16, 20, 24, 28, 30} {
		n := 1 << uint(logN)
		bb, err := bist.ForPRT(bist.Params{N: n, M: 4, Gen: gen, Ports: 1, Iterations: 3})
		if err != nil {
			panic(err)
		}
		r := bist.OverheadRatio(bb, n, 4, gm)
		t.AddRowf(fmt.Sprintf("2^%d", logN),
			fmt.Sprintf("%.0f", bb.GateEquivalents(gm)),
			fmt.Sprintf("%.1f", math.Log2(r)),
			fmt.Sprintf("%v", r < math.Pow(2, -20)))
	}
	t.Render(os.Stdout)
	fmt.Println()

	// The controller FSM: one memory operation per clock.
	mem := ram.NewWOM(256, 4)
	ctl, err := bist.NewController(prt.PaperWOMConfig(), mem)
	if err != nil {
		panic(err)
	}
	ok := ctl.Run()
	fmt.Printf("controller on clean memory: pass=%v in %d cycles\n", ok, ctl.Cycles)

	bad := fault.SAF{Cell: 100, Bit: 0, Value: 1}.Inject(ram.NewWOM(256, 4))
	ctl2, _ := bist.NewController(prt.PaperWOMConfig(), bad)
	fmt.Printf("controller on faulty memory: pass=%v (state %v)\n", ctl2.Run(), ctl2.State())
}
