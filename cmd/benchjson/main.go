// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON array on stdout, so CI can archive the perf
// trajectory (faults/s, ns/op, allocs/op per engine) across PRs:
//
//	go test -run xxx -bench BenchmarkCampaign -benchmem . | benchjson > BENCH_campaign.json
//
// Each benchmark line becomes one object:
//
//	{"name": "Campaign/n=1024/compiled", "iterations": 1,
//	 "metrics": {"ns/op": 12345678, "faults/s": 2.3e6, "allocs/op": 42}}
//
// Non-benchmark lines (the tables the benches print, PASS/ok trailers)
// are ignored.
// With -assert-names BASELINE.json, the parsed result is additionally
// diffed against the baseline's benchmark *name set*: any baseline
// name missing from stdin fails the run, so a renamed or deleted
// benchmark breaks CI loudly instead of silently archiving a shrunken
// perf artifact.  New names are reported but allowed (they belong in
// the next baseline refresh).
//
// With -compare OLD.json, every metric shared by a benchmark present
// in both the old artifact and stdin's results is reported to stderr
// as a signed percentage delta (current vs old).  By itself the report
// is advisory — single-shot CI benches on shared runners are too noisy
// to gate on — but it puts the perf trajectory in the build log where
// a regression is one scroll away instead of one artifact-diff away.
//
// -max-regress THRESHOLD turns the faults/s comparison into a gate:
// any shared benchmark whose faults/s dropped by more than the
// threshold (a fraction like 0.5, or a percentage like 50%) fails the
// run.  Only faults/s is gated — it is the throughput figure the
// engines optimize for; ns/op and allocs/op stay advisory.  Pick a
// generous threshold for single-shot CI benches: the gate is there to
// catch order-of-magnitude cliffs (an accidental oracle fallback, a
// serialization bottleneck), not 10% noise.
//
// -max-regress-per-bench 'REGEX=THRESHOLD[,REGEX=THRESHOLD...]'
// overrides the global threshold for matching benchmark names (first
// match wins; each entry splits on its last '=', so regexes like
// "Parallel/n=256" work unquoted).  Without -max-regress, only the
// benchmarks an override matches are gated — the tool's way of saying
// "this benchmark is the one this PR optimized; hold it tighter".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one parsed benchmark result.
type Entry struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkCampaign/n=1024/oracle-8  1  123456 ns/op  9.5e+04 faults/s  160 B/op  3 allocs/op
//
// and reports ok=false for anything else.
func parseLine(line string) (Entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	// Strip the trailing -GOMAXPROCS suffix go test appends to the
	// LAST path segment (and only there): the dash must sit inside the
	// last segment, after its first character, with nothing but digits
	// behind it.  A -<digits> tail in an earlier segment, or a segment
	// that is nothing but -<digits>, is part of the benchmark's own
	// name and survives.
	if i := strings.LastIndexByte(name, '-'); i > strings.LastIndexByte(name, '/')+1 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := Entry{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, len(e.Metrics) > 0
}

// missingNames returns the baseline names absent from the current
// entries, sorted, plus the names the baseline has never seen.
func missingNames(baseline, current []Entry) (missing, added []string) {
	have := make(map[string]bool, len(current))
	for _, e := range current {
		have[e.Name] = true
	}
	known := make(map[string]bool, len(baseline))
	for _, e := range baseline {
		known[e.Name] = true
		if !have[e.Name] {
			missing = append(missing, e.Name)
		}
	}
	for _, e := range current {
		if !known[e.Name] {
			added = append(added, e.Name)
		}
	}
	sort.Strings(missing)
	sort.Strings(added)
	return missing, added
}

// compareEntries formats per-metric percentage deltas of current vs
// old for every benchmark name the two sets share, one line per
// benchmark, names and metrics in sorted order.  Metrics only one side
// has are skipped; an old value of zero reports "n/a" (no meaningful
// ratio).
func compareEntries(old, current []Entry) []string {
	prev := make(map[string]Entry, len(old))
	for _, e := range old {
		prev[e.Name] = e
	}
	var lines []string
	sorted := append([]Entry(nil), current...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, e := range sorted {
		p, ok := prev[e.Name]
		if !ok {
			continue
		}
		names := make([]string, 0, len(e.Metrics))
		for m := range e.Metrics {
			if _, ok := p.Metrics[m]; ok {
				names = append(names, m)
			}
		}
		if len(names) == 0 {
			continue
		}
		sort.Strings(names)
		parts := make([]string, len(names))
		for i, m := range names {
			if p.Metrics[m] == 0 {
				parts[i] = fmt.Sprintf("%s n/a", m)
				continue
			}
			parts[i] = fmt.Sprintf("%s %+.1f%%", m, 100*(e.Metrics[m]-p.Metrics[m])/p.Metrics[m])
		}
		lines = append(lines, fmt.Sprintf("  %s: %s", e.Name, strings.Join(parts, ", ")))
	}
	return lines
}

// parseThreshold parses a -max-regress value: a fraction ("0.5") or a
// percentage ("50%"), either way a number in (0, 1] once normalized.
func parseThreshold(s string) (float64, error) {
	raw := strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("bad threshold %q: %v", s, err)
	}
	if raw != s {
		v /= 100
	}
	if v <= 0 || v > 1 {
		return 0, fmt.Errorf("threshold %q is outside (0%%, 100%%]", s)
	}
	return v, nil
}

// perBenchRule binds a benchmark-name regexp to its own regression
// threshold, overriding the global -max-regress value.
type perBenchRule struct {
	re        *regexp.Regexp
	threshold float64
}

// parsePerBench parses the -max-regress-per-bench value: comma-
// separated REGEX=THRESHOLD overrides.  Each entry is split on its
// LAST '=' so sub-benchmark regexes like "Parallel/n=256" keep their
// own '='s; thresholds take the same forms as -max-regress.
func parsePerBench(s string) ([]perBenchRule, error) {
	var rules []perBenchRule
	for _, part := range strings.Split(s, ",") {
		eq := strings.LastIndexByte(part, '=')
		if eq <= 0 || eq == len(part)-1 {
			return nil, fmt.Errorf("bad override %q: want REGEX=THRESHOLD", part)
		}
		re, err := regexp.Compile(part[:eq])
		if err != nil {
			return nil, fmt.Errorf("bad override %q: %v", part, err)
		}
		th, err := parseThreshold(part[eq+1:])
		if err != nil {
			return nil, fmt.Errorf("bad override %q: %v", part, err)
		}
		rules = append(rules, perBenchRule{re, th})
	}
	return rules, nil
}

// thresholdFor resolves a benchmark's effective regression limit: the
// first matching per-bench override wins, else the global threshold.
// Zero means the benchmark is not gated (a global of 0 with overrides
// gates only the benchmarks an override matches).
func thresholdFor(name string, global float64, rules []perBenchRule) float64 {
	for _, r := range rules {
		if r.re.MatchString(name) {
			return r.threshold
		}
	}
	return global
}

// regressions returns one line per benchmark shared by old and current
// whose faults/s dropped by more than its effective threshold (a
// fraction of the old value), sorted by name.
func regressions(old, current []Entry, global float64, rules []perBenchRule) []string {
	prev := make(map[string]Entry, len(old))
	for _, e := range old {
		prev[e.Name] = e
	}
	var lines []string
	sorted := append([]Entry(nil), current...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	for _, e := range sorted {
		p, ok := prev[e.Name]
		if !ok {
			continue
		}
		was, now := p.Metrics["faults/s"], e.Metrics["faults/s"]
		if was <= 0 {
			continue
		}
		if _, ok := e.Metrics["faults/s"]; !ok {
			continue
		}
		threshold := thresholdFor(e.Name, global, rules)
		if threshold <= 0 {
			continue
		}
		if drop := (was - now) / was; drop > threshold {
			lines = append(lines, fmt.Sprintf("  %s: faults/s %.3g → %.3g (-%.1f%%, limit -%.1f%%)",
				e.Name, was, now, 100*drop, 100*threshold))
		}
	}
	return lines
}

func main() {
	assertNames := flag.String("assert-names", "", "baseline JSON file; exit nonzero when any of its benchmark names is missing from stdin's results")
	compare := flag.String("compare", "", "old benchjson artifact; print per-metric percentage deltas of the current results against it on stderr (advisory unless -max-regress is set)")
	maxRegress := flag.String("max-regress", "", "with -compare: exit nonzero when any shared benchmark's faults/s dropped by more than this fraction (\"0.5\") or percentage (\"50%\")")
	maxRegressPerBench := flag.String("max-regress-per-bench", "", "comma-separated REGEX=THRESHOLD overrides of -max-regress for matching benchmark names (first match wins), e.g. 'Parallel/n=256=0.3,Session=40%'")
	flag.Parse()
	var threshold float64
	if *maxRegress != "" {
		if *compare == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -max-regress requires -compare")
			os.Exit(2)
		}
		var err error
		if threshold, err = parseThreshold(*maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -max-regress: %v\n", err)
			os.Exit(2)
		}
	}
	var perBench []perBenchRule
	if *maxRegressPerBench != "" {
		if *compare == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -max-regress-per-bench requires -compare")
			os.Exit(2)
		}
		var err error
		if perBench, err = parsePerBench(*maxRegressPerBench); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: -max-regress-per-bench: %v\n", err)
			os.Exit(2)
		}
	}
	var entries []Entry
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			entries = append(entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		// An empty array is never a useful perf artifact — it means the
		// bench regex matched nothing (typically a benchmark rename).
		// Fail loudly so CI archives a real trajectory or nothing.
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin (renamed benchmark? wrong -bench regex?)")
		os.Exit(1)
	}
	out, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			// A first run with no committed artifact should not fail, just
			// say why there is no comparison (the regress gate has nothing
			// to gate against either).
			fmt.Fprintf(os.Stderr, "benchjson: compare: %v (skipping delta report)\n", err)
		} else {
			var old []Entry
			if err := json.Unmarshal(raw, &old); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: compare %s: %v (skipping delta report)\n", *compare, err)
			} else {
				if lines := compareEntries(old, entries); len(lines) > 0 {
					fmt.Fprintf(os.Stderr, "benchjson: deltas vs %s:\n", *compare)
					for _, l := range lines {
						fmt.Fprintln(os.Stderr, l)
					}
				}
				if threshold > 0 || len(perBench) > 0 {
					if lines := regressions(old, entries, threshold, perBench); len(lines) > 0 {
						fmt.Fprintf(os.Stderr, "benchjson: faults/s regressed beyond its limit:\n")
						for _, l := range lines {
							fmt.Fprintln(os.Stderr, l)
						}
						os.Exit(1)
					}
				}
			}
		}
	}
	if *assertNames != "" {
		raw, err := os.ReadFile(*assertNames)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
		var baseline []Entry
		if err := json.Unmarshal(raw, &baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline %s: %v\n", *assertNames, err)
			os.Exit(1)
		}
		missing, added := missingNames(baseline, entries)
		for _, n := range added {
			fmt.Fprintf(os.Stderr, "benchjson: note: new benchmark %q not in baseline %s\n", n, *assertNames)
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d baseline benchmark(s) missing from the results (renamed or deleted?):\n", len(missing))
			for _, n := range missing {
				fmt.Fprintf(os.Stderr, "  %s\n", n)
			}
			os.Exit(1)
		}
	}
}
