package bist

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/prt"
	"repro/internal/ram"
)

// State is the controller FSM state.
type State int

// FSM states of the PRT BIST controller.
const (
	StateIdle State = iota
	StateSeed
	StateReadOps // reading the k recurrence operands
	StateWrite   // writing the recurrence value
	StateFinRead // reading back the final window
	StateCompare // comparing Fin with Fin*
	StateDone
	StateFail
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateSeed:
		return "seed"
	case StateReadOps:
		return "read"
	case StateWrite:
		return "write"
	case StateFinRead:
		return "fin-read"
	case StateCompare:
		return "compare"
	case StateDone:
		return "done"
	case StateFail:
		return "fail"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Controller is a cycle-stepped model of the on-chip PRT engine: one
// memory operation (or one compare) per Step call, mirroring the
// hardware the Budget accounts for.  It executes a single signature
// π-iteration; the multi-iteration sequencing is a trivial outer loop
// (see RunAll).
type Controller struct {
	cfg   prt.Config
	mem   ram.Memory
	state State

	addr    []int
	k       int
	pos     int // current trajectory position
	operand int // which of the k operands is being read
	acc     gf.Elem
	fin     []gf.Elem
	finStar []gf.Elem
	finPos  int

	// Signature compression (NewCompressedController): every read
	// folds into misr, and StateCompare tests the signature against
	// sigStar instead of comparing the final window per word.  The
	// fold matrices and observer id annotate replay traces.
	misr     *MISR
	sigStar  gf.Elem
	obs      int
	stepRows []uint32
	tapRows  []uint32

	// Replay annotation of the recurrence write as a GF(2)-affine map
	// of the k operand reads, built only when mem records a trace.
	linBack []int
	linRows [][]uint32

	// Cycles counts Step calls since reset.
	Cycles uint64
}

// NewController builds a controller for one iteration of cfg on mem.
// Ring and Verify/CaptureStale options are not modelled by the FSM
// (the budget covers the plain signature engine).
func NewController(cfg prt.Config, mem ram.Memory) (*Controller, error) {
	if cfg.Ring || cfg.Verify || cfg.CaptureStale {
		return nil, fmt.Errorf("bist: controller models the plain signature iteration only")
	}
	if err := cfg.Validate(mem.Size(), mem.Width()); err != nil {
		return nil, err
	}
	finStar, err := lfsr.AffineJumpAhead(cfg.Gen, cfg.Offset, cfg.Seed, uint64(mem.Size()-cfg.Gen.K()))
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		mem:     mem,
		state:   StateSeed,
		addr:    cfg.Addresses(mem.Size()),
		k:       cfg.Gen.K(),
		fin:     make([]gf.Elem, 0, cfg.Gen.K()),
		finStar: finStar,
	}
	if _, tracing := mem.(ram.TraceAnnotator); tracing {
		// Operand j (read order: most recent trajectory cell first) is
		// the (k-j)-th most recent read when the write executes.
		taps := cfg.Gen.Taps()
		c.linBack = make([]int, c.k)
		c.linRows = make([][]uint32, c.k)
		for j := 0; j < c.k; j++ {
			c.linBack[j] = c.k - j
			c.linRows[j] = cfg.Gen.Field.ConstMulMatrix(taps[j]).Rows
		}
	}
	return c, nil
}

// NewCompressedController builds a controller whose observer is a MISR
// compressing every read — the k recurrence operands of each step and
// the final window — into one m-bit signature, compared in
// StateCompare against the prediction computed on the virtual
// automaton model.  This is the §4 BIST observer with its real ≈2^-m
// aliasing: a multi-read error pattern that cancels in the register
// passes.  alpha is the MISR multiplier (0 selects the field
// generator); obs identifies the signature observer in a recorded
// replay trace and must be unique per iteration of a scheme.
func NewCompressedController(cfg prt.Config, mem ram.Memory, alpha gf.Elem, obs int) (*Controller, error) {
	c, err := NewController(cfg, mem)
	if err != nil {
		return nil, err
	}
	m, err := NewMISR(cfg.Gen.Field, alpha)
	if err != nil {
		return nil, err
	}
	c.misr = m
	c.obs = obs
	c.stepRows, c.tapRows = m.FoldMatrices()
	// Predict the clean signature from the model alone: every read the
	// FSM performs targets a cell written earlier in this iteration, so
	// its fault-free value is the TDB sequence element of that
	// trajectory position.
	pred, err := NewMISR(cfg.Gen.Field, alpha)
	if err != nil {
		return nil, err
	}
	n := mem.Size()
	seq := prt.ExpectedSequence(cfg, n)
	for pos := c.k; pos < n; pos++ {
		for operand := 0; operand < c.k; operand++ {
			pred.Feed(seq[pos-1-operand]) // most recent operand first
		}
	}
	for i := 0; i < c.k; i++ {
		pred.Feed(seq[n-c.k+i])
	}
	c.sigStar = pred.Signature()
	return c, nil
}

// Compressed reports whether the controller compares a MISR signature
// instead of the per-word final window.
func (c *Controller) Compressed() bool { return c.misr != nil }

// Signature returns the accumulated MISR signature (compressed mode).
func (c *Controller) Signature() gf.Elem {
	if c.misr == nil {
		return 0
	}
	return c.misr.Signature()
}

// PredictedSignature returns the model-computed clean signature the
// compare step tests against (compressed mode).
func (c *Controller) PredictedSignature() gf.Elem { return c.sigStar }

// fold feeds one read value into the signature register and annotates
// a replay trace, when recording, with the equivalent GF(2) fold.
func (c *Controller) fold(v gf.Elem) {
	c.misr.Feed(v)
	ram.AnnotateFold(c.mem, c.obs, c.stepRows, c.tapRows)
}

// State returns the current FSM state.
func (c *Controller) State() State { return c.state }

// Done reports whether the FSM reached a terminal state.
func (c *Controller) Done() bool { return c.state == StateDone || c.state == StateFail }

// Failed reports whether the signature comparison failed.
func (c *Controller) Failed() bool { return c.state == StateFail }

// Step advances one clock: exactly one memory operation or one
// comparison per call.
func (c *Controller) Step() {
	if c.Done() {
		return
	}
	c.Cycles++
	f := c.cfg.Gen.Field
	taps := c.cfg.Gen.Taps()
	n := c.mem.Size()
	switch c.state {
	case StateSeed:
		c.mem.Write(c.addr[c.pos], ram.Word(c.cfg.Seed[c.pos]))
		c.pos++
		if c.pos == c.k {
			c.state = StateReadOps
			c.operand = 0
			c.acc = c.cfg.Offset
		}
	case StateReadOps:
		// Read operand c_{pos-1-operand} (most recent first).
		v := gf.Elem(c.mem.Read(c.addr[c.pos-1-c.operand]))
		if c.misr != nil {
			c.fold(v)
		}
		c.acc = f.Add(c.acc, f.Mul(taps[c.operand], v))
		c.operand++
		if c.operand == c.k {
			c.state = StateWrite
		}
	case StateWrite:
		c.mem.Write(c.addr[c.pos], ram.Word(c.acc))
		if c.linBack != nil {
			ram.AnnotateLinear(c.mem, c.linBack, c.linRows, ram.Word(c.cfg.Offset))
		}
		c.pos++
		if c.pos == n {
			c.state = StateFinRead
			c.finPos = 0
		} else {
			c.state = StateReadOps
			c.operand = 0
			c.acc = c.cfg.Offset
		}
	case StateFinRead:
		v := gf.Elem(c.mem.Read(c.addr[n-c.k+c.finPos]))
		if c.misr != nil {
			c.fold(v)
		} else {
			// The plain FSM compares each Fin word against the model,
			// so the read is a checked read in replay terms.
			ram.AnnotateChecked(c.mem)
		}
		c.fin = append(c.fin, v)
		c.finPos++
		if c.finPos == c.k {
			c.state = StateCompare
		}
	case StateCompare:
		if c.misr != nil {
			ram.AnnotateObserved(c.mem, c.obs)
			if c.misr.Signature() != c.sigStar {
				c.state = StateFail
				return
			}
			c.state = StateDone
			return
		}
		for i := range c.fin {
			if c.fin[i] != c.finStar[i] {
				c.state = StateFail
				return
			}
		}
		c.state = StateDone
	}
}

// Run steps the FSM to completion and returns whether the iteration
// passed (signature matched).
func (c *Controller) Run() bool {
	for !c.Done() {
		c.Step()
	}
	return c.state == StateDone
}

// Fin returns the observed final window (after completion).
func (c *Controller) Fin() []gf.Elem { return append([]gf.Elem(nil), c.fin...) }

// RunAll sequences the controller over every iteration of a scheme's
// resolved configurations, returning pass/fail and total cycles.
// Mirror placeholders are resolved against the memory size; the
// verify/capture options are stripped (the FSM models the signature
// engine the Budget prices).
func RunAll(s prt.Scheme, mem ram.Memory) (pass bool, cycles uint64, err error) {
	return runAll(s, mem, func(cfg prt.Config, _ int) (*Controller, error) {
		return NewController(cfg, mem)
	})
}

// RunAllCompressed is RunAll with MISR signature compression: each
// iteration runs a compressed controller (observer id = iteration
// index), so detection carries the register's ≈2^-m aliasing instead
// of the exact per-word Fin comparison.  alpha 0 selects the field
// generator.
func RunAllCompressed(s prt.Scheme, mem ram.Memory, alpha gf.Elem) (pass bool, cycles uint64, err error) {
	return runAll(s, mem, func(cfg prt.Config, i int) (*Controller, error) {
		return NewCompressedController(cfg, mem, alpha, i)
	})
}

// runAll resolves the scheme's configurations and steps one controller
// per iteration, built by the supplied constructor.
func runAll(s prt.Scheme, mem ram.Memory, build func(cfg prt.Config, iter int) (*Controller, error)) (pass bool, cycles uint64, err error) {
	pass = true
	resolved := make([]prt.Config, len(s.Iters))
	for i, cfg := range s.Iters {
		if t := cfg.MirrorOf - 1; t >= 0 {
			m, err := prt.MirrorConfig(resolved[t], mem.Size())
			if err != nil {
				return false, cycles, err
			}
			cfg = m
		}
		cfg.Verify = false
		cfg.CaptureStale = false
		cfg.StaleExpect = nil
		resolved[i] = cfg
		ctl, err := build(cfg, i)
		if err != nil {
			return false, cycles, err
		}
		ok := ctl.Run()
		cycles += ctl.Cycles
		if !ok {
			pass = false
		}
	}
	return pass, cycles, nil
}
