// Package checkpoint is the durable-state format of streaming coverage
// campaigns: a versioned, checksummed, atomically-replaced snapshot
// from which an interrupted session resumes without re-simulating
// completed work.
//
// # What a checkpoint captures
//
// A State records the campaign specification fingerprint (spec hash,
// memory geometry, sampling seed — resume refuses any mismatch), the
// completed stages' result tallies, the in-flight stage's contiguous
// completion frontier (HighWater: every universe index below it is
// fully accounted, none above it), the cumulative detection bitmap
// (one bit per universe fault), and the per-class universe tallies.
// That is exactly the state the streaming executor cannot recompute
// cheaply; everything else (compiled programs, clean-run baselines) is
// rebuilt on resume from the plan itself.
//
// The consistency of the cut is the streaming executor's job: chunks
// complete in scheduling order, but when checkpointing is active the
// executor folds chunk verdicts into durable state only in contiguous
// universe order (buffering the out-of-order tail), so a snapshot
// taken at any instant describes a prefix-closed set of simulated
// faults.  Resume then seeks the fault source past HighWater
// (fault.Source.Skip — O(1) for the index-addressable generator
// families) and continues; the resumed session's results are
// byte-identical to an uninterrupted run's, a property the coverage
// tests assert across universe families, engines and interrupt
// points.
//
// # Partitioned campaigns and Merge
//
// A State also records the universe index range [PartitionLo,
// PartitionHi) its session covered.  Full-universe sessions write the
// sentinel (0, -1) — any negative PartitionHi reads as "spans [0,
// UniverseN)" — while a partitioned session (one shard of a
// distributed campaign, `faultcov -partition i/N`) records its exact
// subrange; resume refuses a partition-range mismatch like any other
// geometry mismatch.  Merge reassembles completed partition states
// into the full-universe state: it validates that every input is
// Complete, that all inputs agree on spec hash, seed, geometry and
// stage set, and that the ranges tile [0, UniverseN) with no gap or
// overlap (ErrMergeIncomplete, ErrMergeSpec, ErrMergeStages,
// ErrMergeGap, ErrMergeOverlap are each distinct, errors.Is-testable
// refusals); then it sums the stage and universe tallies and ORs the
// detection bitmaps.  Because per-fault outcomes are independent of
// which partition simulated them, the merged state is byte-identical
// to the final checkpoint of an unpartitioned run of the same
// campaign — the coverage partition property tests and the CI
// multi-process smoke both diff the encoded files directly.
//
// # File format and failure model
//
// The encoding is little-endian, length-prefixed, magic "FCKP" +
// version up front and a CRC-32C of the whole body as a trailer.
// Decode verifies the checksum before trusting any field, so
// truncation and bit flips surface as ErrCorrupt rather than as a
// silently wrong resume.  WriteAtomic replaces the file via temp +
// fsync + rename (plus a best-effort directory fsync): a crash at any
// instant leaves either the old checkpoint or the new one, never a
// torn file.  States carry no timestamps — the same campaign state
// always encodes to the same bytes, so final checkpoints of resumed
// and uninterrupted runs can be diffed directly.
package checkpoint
