package prt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ram"
)

func TestDiagnoseCleanMemory(t *testing.T) {
	d, err := DiagnoseCells(PaperWOMScheme3(), ram.NewWOM(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Detected() || len(d.Suspects) != 0 || len(d.FirstMismatch) != 0 {
		t.Errorf("clean memory produced suspects: %+v", d)
	}
	// The fault-free TDB has linear complexity exactly k=2.
	if d.Complexity != 2 {
		t.Errorf("clean TDB complexity = %d, want 2", d.Complexity)
	}
	if d.PrimarySuspect() != nil {
		t.Error("clean diagnosis has a primary suspect")
	}
}

func TestDiagnoseLocatesSAF(t *testing.T) {
	for _, cell := range []int{0, 1, 17, 40, 62, 63} {
		f := fault.SAF{Cell: cell, Bit: 2, Value: 1}
		mem := f.Inject(ram.NewWOM(64, 4))
		d, err := DiagnoseCells(PaperWOMScheme3(), mem)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Detected() {
			t.Fatalf("SAF at %d not detected", cell)
		}
		p := d.PrimarySuspect()
		if p == nil || p.Addr != cell {
			t.Errorf("SAF at %d: primary suspect %v", cell, p)
			continue
		}
		if p.BadBits&(1<<2) == 0 {
			t.Errorf("SAF at %d: bit 2 not in bad mask %#x", cell, uint32(p.BadBits))
		}
		if p.StuckAt != 1 {
			t.Errorf("SAF at %d: stuck-at hypothesis %d, want 1", cell, p.StuckAt)
		}
	}
}

func TestDiagnoseLocatesTF(t *testing.T) {
	f := fault.TF{Cell: 25, Bit: 0, Up: true}
	mem := f.Inject(ram.NewWOM(64, 4))
	d, err := DiagnoseCells(PaperWOMScheme3(), mem)
	if err != nil {
		t.Fatal(err)
	}
	p := d.PrimarySuspect()
	if p == nil || p.Addr != 25 {
		t.Errorf("TF at 25: primary suspect %v", p)
	}
}

func TestDiagnoseComplexityRises(t *testing.T) {
	f := fault.SAF{Cell: 10, Bit: 0, Value: 0}
	mem := f.Inject(ram.NewWOM(64, 4))
	d, err := DiagnoseCells(PaperWOMScheme3(), mem)
	if err != nil {
		t.Fatal(err)
	}
	// The corrupted first-iteration TDB is no longer an order-2
	// recurrence... unless the fault was unexcited in iteration 1, in
	// which case the suspects still pinpoint it.
	if d.Complexity == 2 && !d.Detected() {
		t.Errorf("neither complexity nor suspects flagged the fault")
	}
}

func TestDiagnoseBOM(t *testing.T) {
	f := fault.SAF{Cell: 30, Bit: 0, Value: 1}
	mem := f.Inject(ram.NewBOM(96))
	d, err := DiagnoseCells(PaperBOMScheme3(), mem)
	if err != nil {
		t.Fatal(err)
	}
	p := d.PrimarySuspect()
	if p == nil || p.Addr != 30 {
		t.Errorf("BOM SAF at 30: primary suspect %v", p)
	}
}

func TestDiagnoseCouplingPointsNearPair(t *testing.T) {
	// Coupling victims that sit after their aggressor in ascending
	// order are only visible to the post-iteration read-back in a
	// descending iteration whose TDB makes the aggressor transition;
	// the 4-iteration scheme provides both descending polarities.
	f := fault.CFin{AggCell: 20, VicCell: 21, Up: true}
	mem := f.Inject(ram.NewWOM(64, 4))
	d, err := DiagnoseCells(StandardScheme4(PaperWOMConfig().Gen), mem)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Detected() {
		t.Fatal("coupling fault not detected by diagnosis")
	}
	p := d.PrimarySuspect()
	if p == nil || p.Addr < 19 || p.Addr > 22 {
		t.Errorf("coupling (20->21): primary suspect %v not near the pair", p)
	}
}

func TestCellReportString(t *testing.T) {
	r := CellReport{Addr: 5, BadBits: 0x4, Mismatches: 2, StuckAt: 1}
	if r.String() == "" {
		t.Error("empty report string")
	}
	r2 := CellReport{Addr: 5, StuckAt: -1}
	if r2.String() == "" {
		t.Error("empty report string for unknown stuck-at")
	}
}
