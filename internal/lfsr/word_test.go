package lfsr

import (
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

// TestPaperFig1bSequence checks the exact state evolution of the
// paper's worked example: g(x)=1+2x+2x^2 over GF(2^4), p(z)=1+z+z^4,
// seeded (0,1).  Figure 1b of the paper shows the cells
// 0, 1, 2, 6, ...F...; the full recurrence gives 0 1 2 6 8 F E ...
func TestPaperFig1bSequence(t *testing.T) {
	w := MustWord(PaperGenPoly(), []gf.Elem{0, 1})
	got := w.Sequence(17)
	want := []gf.Elem{0, 1, 2, 6, 8, 0xF, 0xE, 2, 0xB, 1, 7, 0xC, 5, 1, 8, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence[%d] = %X, want %X (full: %v)", i, uint32(got[i]), uint32(want[i]), got)
		}
	}
}

// TestPaperPeriod255 verifies the pseudo-ring property: the paper's
// automaton has period 255 = 16^2 - 1 (maximal), so a memory whose size
// is a multiple of 255 (plus the k seed cells) returns to Init.
func TestPaperPeriod255(t *testing.T) {
	w := MustWord(PaperGenPoly(), []gf.Elem{0, 1})
	if got := w.Period(0); got != 255 {
		t.Fatalf("period = %d, want 255", got)
	}
	// All nonzero states lie on the same maximal cycle.
	w2 := MustWord(PaperGenPoly(), []gf.Elem{0xF, 0xF})
	if got := w2.Period(0); got != 255 {
		t.Errorf("period from (F,F) = %d, want 255", got)
	}
}

func TestWordZeroStateFixed(t *testing.T) {
	w := MustWord(PaperGenPoly(), []gf.Elem{0, 0})
	if w.Step() != 0 {
		t.Error("zero state must step to zero")
	}
	if w.Period(0) != 1 {
		t.Error("zero state period != 1")
	}
}

func TestWordRunMatchesRepeatedStep(t *testing.T) {
	a := MustWord(PaperGenPoly(), []gf.Elem{3, 7})
	b := MustWord(PaperGenPoly(), []gf.Elem{3, 7})
	a.Run(37)
	for i := 0; i < 37; i++ {
		b.Step()
	}
	if !equalStates(a.State(), b.State()) {
		t.Error("Run != repeated Step")
	}
}

func TestWordSequenceDoesNotMutate(t *testing.T) {
	w := MustWord(PaperGenPoly(), []gf.Elem{0, 1})
	before := w.State()
	w.Sequence(50)
	if !equalStates(w.State(), before) {
		t.Error("Sequence mutated the register")
	}
	// Short sequences return the seed prefix.
	if s := w.Sequence(1); len(s) != 1 || s[0] != 0 {
		t.Errorf("Sequence(1) = %v", s)
	}
}

func TestWordSeed(t *testing.T) {
	w := MustWord(PaperGenPoly(), []gf.Elem{0, 1})
	if err := w.Seed([]gf.Elem{5, 9}); err != nil {
		t.Fatal(err)
	}
	if s := w.State(); s[0] != 5 || s[1] != 9 {
		t.Errorf("Seed not applied: %v", s)
	}
	if err := w.Seed([]gf.Elem{1}); err == nil {
		t.Error("short seed accepted")
	}
}

func TestWordStateIsCopy(t *testing.T) {
	w := MustWord(PaperGenPoly(), []gf.Elem{0, 1})
	s := w.State()
	s[0] = 0xF
	if w.State()[0] != 0 {
		t.Error("State() exposed internal slice")
	}
}

func TestNewGenPolyValidation(t *testing.T) {
	f := gf.NewField(4)
	if _, err := NewGenPoly(nil, []gf.Elem{1, 1}); err == nil {
		t.Error("nil field accepted")
	}
	if _, err := NewGenPoly(f, []gf.Elem{1}); err == nil {
		t.Error("degree-0 polynomial accepted")
	}
	if _, err := NewGenPoly(f, []gf.Elem{0, 1, 1}); err == nil {
		t.Error("zero a0 accepted")
	}
	if _, err := NewGenPoly(f, []gf.Elem{1, 1, 0}); err == nil {
		t.Error("zero leading coefficient accepted")
	}
	if _, err := NewGenPoly(f, []gf.Elem{1, 0x10}); err == nil {
		t.Error("out-of-field coefficient accepted")
	}
	g, err := NewGenPoly(f, []gf.Elem{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 2 || len(g.Taps()) != 2 {
		t.Errorf("K/Taps wrong")
	}
}

func TestGenPolyCoeffsCopied(t *testing.T) {
	f := gf.NewField(4)
	coeffs := []gf.Elem{1, 2, 2}
	g := MustGenPoly(f, coeffs)
	coeffs[1] = 7
	if g.Coeffs[1] != 2 {
		t.Error("GenPoly aliased caller slice")
	}
}

func TestGenPolyString(t *testing.T) {
	if got := PaperGenPoly().String(); got != "1 + 2x + 2x^2" {
		t.Errorf("String = %q, want the paper's notation", got)
	}
	f := gf.NewField(4)
	if got := MustGenPoly(f, []gf.Elem{1, 1}).String(); got != "1 + x" {
		t.Errorf("String = %q", got)
	}
	if got := MustGenPoly(f, []gf.Elem{3, 0, 1}).String(); got != "3 + x^2" {
		t.Errorf("String = %q", got)
	}
}

func TestBitOrientedAsDegenerateWord(t *testing.T) {
	// A word LFSR over GF(2) with g(x)=1+x+x^2 is a bit LFSR with
	// characteristic x^2+x+1 (period 3).
	f := gf.NewField(1)
	g := MustGenPoly(f, []gf.Elem{1, 1, 1})
	w := MustWord(g, []gf.Elem{1, 1})
	if got := w.Period(0); got != 3 {
		t.Errorf("period = %d, want 3", got)
	}
	seq := w.Sequence(9)
	want := []gf.Elem{1, 1, 0, 1, 1, 0, 1, 1, 0}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", seq, want)
		}
	}
}

func TestPeriodCap(t *testing.T) {
	w := MustWord(PaperGenPoly(), []gf.Elem{0, 1})
	if got := w.Period(10); got != 0 {
		t.Errorf("capped period search should fail, got %d", got)
	}
}

func TestQuickPeriodDividesGroupOrder(t *testing.T) {
	g := PaperGenPoly()
	prop := func(a, b uint8) bool {
		s := []gf.Elem{gf.Elem(a & 0xF), gf.Elem(b & 0xF)}
		w := MustWord(g, s)
		p := w.Period(0)
		if allZero(s) {
			return p == 1
		}
		return p != 0 && 255%p == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickSuperposition(t *testing.T) {
	// LFSRs are linear: the orbit of s1+s2 is the sum of orbits.
	g := PaperGenPoly()
	f := g.Field
	prop := func(a1, b1, a2, b2 uint8) bool {
		s1 := []gf.Elem{gf.Elem(a1 & 0xF), gf.Elem(b1 & 0xF)}
		s2 := []gf.Elem{gf.Elem(a2 & 0xF), gf.Elem(b2 & 0xF)}
		sum := []gf.Elem{f.Add(s1[0], s2[0]), f.Add(s1[1], s2[1])}
		w1, w2, ws := MustWord(g, s1), MustWord(g, s2), MustWord(g, sum)
		w1.Run(13)
		w2.Run(13)
		ws.Run(13)
		got := ws.State()
		for i := range got {
			if got[i] != f.Add(w1.State()[i], w2.State()[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
