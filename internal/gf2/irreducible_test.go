package gf2

import "testing"

func TestIsIrreducibleKnown(t *testing.T) {
	irreducible := []Poly{
		2,     // x
		3,     // x+1
		7,     // x^2+x+1
		0xB,   // x^3+x+1
		0xD,   // x^3+x^2+1
		0x13,  // x^4+x+1 (paper)
		0x19,  // x^4+x^3+1
		0x1F,  // x^4+x^3+x^2+x+1
		0x25,  // x^5+x^2+1
		0x11B, // AES polynomial x^8+x^4+x^3+x+1
		0x11D,
	}
	for _, p := range irreducible {
		if !IsIrreducible(p) {
			t.Errorf("%v (%#x) should be irreducible", p, uint64(p))
		}
	}
	reducible := []Poly{
		0,    // zero
		1,    // unit
		4,    // x^2
		5,    // (x+1)^2
		6,    // x(x+1)
		9,    // (x+1)(x^2+x+1)
		0xF,  // (x+1)(x^3+x^2+1)... even weight anyway
		0x11, // x^4+1 = (x+1)^4
		0x15, // x^4+x^2+1 = (x^2+x+1)^2
		0x1B, // divisible by x+1? weight 4 -> yes
	}
	for _, p := range reducible {
		if IsIrreducible(p) {
			t.Errorf("%v (%#x) should be reducible", p, uint64(p))
		}
	}
}

func TestIrreduciblesCountMatchesFormula(t *testing.T) {
	for k := 1; k <= 12; k++ {
		got := uint64(len(Irreducibles(k)))
		want := CountIrreducibles(k)
		if got != want {
			t.Errorf("degree %d: enumerated %d irreducibles, formula says %d", k, got, want)
		}
	}
}

func TestCountIrreduciblesKnownValues(t *testing.T) {
	// OEIS A001037 (starting at k=1): 2, 1, 2, 3, 6, 9, 18, 30, 56, 99
	want := []uint64{2, 1, 2, 3, 6, 9, 18, 30, 56, 99}
	for i, w := range want {
		if got := CountIrreducibles(i + 1); got != w {
			t.Errorf("CountIrreducibles(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestIrreduciblesProductCheck(t *testing.T) {
	// Every listed irreducible of degree 4 must divide x^16 - x and be
	// coprime to all others.
	irr := Irreducibles(4)
	x16x := PowMod(X, 16, Poly(1)<<20) // x^16 un-reduced within capacity
	_ = x16x
	for i, p := range irr {
		// x^(2^4) ≡ x mod p
		if frobeniusPower(4, p) != X.Mod(p) {
			t.Errorf("%v does not divide x^16-x", p)
		}
		for j, q := range irr {
			if i != j && GCD(p, q) != 1 {
				t.Errorf("distinct irreducibles %v,%v share a factor", p, q)
			}
		}
	}
}

func TestFirstIrreducible(t *testing.T) {
	cases := map[int]Poly{
		1: 2,    // x
		2: 7,    // x^2+x+1
		3: 0xB,  // x^3+x+1
		4: 0x13, // x^4+x+1
		8: 0x11B,
	}
	for k, want := range cases {
		if got := FirstIrreducible(k); got != want {
			t.Errorf("FirstIrreducible(%d) = %#x, want %#x", k, uint64(got), uint64(want))
		}
	}
}

func TestMoebius(t *testing.T) {
	want := map[int]int{1: 1, 2: -1, 3: -1, 4: 0, 5: -1, 6: 1, 7: -1, 8: 0, 9: 0, 10: 1, 12: 0, 30: -1}
	for n, w := range want {
		if got := moebius(n); got != w {
			t.Errorf("moebius(%d) = %d, want %d", n, got, w)
		}
	}
}

func TestPrimeFactorsInt(t *testing.T) {
	cases := map[int][]int{
		2:  {2},
		12: {2, 3},
		30: {2, 3, 5},
		49: {7},
		97: {97},
	}
	for n, want := range cases {
		got := primeFactorsInt(n)
		if len(got) != len(want) {
			t.Errorf("primeFactorsInt(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("primeFactorsInt(%d) = %v, want %v", n, got, want)
			}
		}
	}
}
