// Package analyzertest is a minimal offline stand-in for
// golang.org/x/tools/go/analysis/analysistest: it loads a fixture
// package from a testdata directory with go/parser, type-checks it
// against the standard library via the source importer (no network, no
// export data), runs an analyzer, and compares the diagnostics against
// analysistest-style "// want" expectations.
//
// Only the subset the repo's analyzers need is implemented: no facts,
// no suggested-fix application, no multi-package fixtures.  Expectation
// syntax matches analysistest: a comment
//
//	// want "regexp" "another regexp"
//
// on a line requires each regexp to match one diagnostic reported on
// that line, and every diagnostic must be claimed by an expectation.
package analyzertest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads the fixture package at dir/src/<pkgpath>, applies the
// analyzer, and reports any mismatch between diagnostics and the
// fixture's "// want" comments as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	RunAll(t, dir, pkgpath, a)
}

// RunAll applies several analyzers to one fixture package and checks
// their combined diagnostics against the fixture's want comments —
// for fixtures that seed one violation per analyzer of a suite.
func RunAll(t *testing.T, dir, pkgpath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	for _, a := range analyzers {
		if len(a.Requires) > 0 {
			t.Fatalf("analyzertest: analyzer %s has Requires; this harness does not run dependencies", a.Name)
		}
	}
	pkgdir := filepath.Join(dir, "src", pkgpath)
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analyzertest: parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analyzertest: no Go files in %s", pkgdir)
	}

	info := &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:       make(map[ast.Node]*types.Scope),
		Instances:    make(map[*ast.Ident]types.Instance),
		FileVersions: make(map[*ast.File]string),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, _ := conf.Check(pkgpath, fset, files, info)
	if len(typeErrs) > 0 {
		for _, err := range typeErrs {
			t.Errorf("analyzertest: type error: %v", err)
		}
		t.FailNow()
	}

	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   map[*analysis.Analyzer]any{},
			Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("analyzertest: analyzer %s: %v", a.Name, err)
		}
	}

	checkExpectations(t, fset, files, diags)
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkExpectations cross-checks diagnostics against want comments.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string]map[int][]*expectation) // filename -> line -> expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, re := range parseWants(t, pos, text[i+len("// want "):]) {
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*expectation)
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, exp := range wants[pos.Filename][pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	type miss struct {
		file string
		line int
		re   string
	}
	var misses []miss
	for file, lines := range wants {
		for line, exps := range lines {
			for _, exp := range exps {
				if !exp.matched {
					misses = append(misses, miss{file, line, exp.re.String()})
				}
			}
		}
	}
	sort.Slice(misses, func(i, j int) bool {
		if misses[i].file != misses[j].file {
			return misses[i].file < misses[j].file
		}
		return misses[i].line < misses[j].line
	})
	for _, m := range misses {
		t.Errorf("%s:%d: expected diagnostic matching %q, got none", m.file, m.line, m.re)
	}
}

// parseWants extracts the quoted regexps of one want comment.
func parseWants(t *testing.T, pos token.Position, s string) []*regexp.Regexp {
	t.Helper()
	var out []*regexp.Regexp
	for {
		s = strings.TrimLeft(s, " \t")
		if s == "" || !strings.HasPrefix(s, "\"") && !strings.HasPrefix(s, "`") {
			break
		}
		quote := s[0]
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern: %s", pos, s)
		}
		lit := s[:end+1]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			t.Fatalf("%s: bad want regexp %s: %v", pos, unq, err)
		}
		out = append(out, re)
		s = s[end+1:]
	}
	return out
}
