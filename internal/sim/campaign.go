package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// BatchSize is the number of machines simulated per lane word — one
// per bit.  A replay pass simulates BatchSize machines per lane word
// of its program (Program.BatchFaults), i.e. 64 for the classic
// single-word configuration and 256/512 for wide-lane programs.
const BatchSize = 64

// Batchable reports whether every fault of the slice supports batch
// injection, i.e. whether the whole universe can take the bit-parallel
// path.
func Batchable(faults []fault.Fault) bool {
	for _, f := range faults {
		if _, ok := f.(fault.BatchInjector); !ok {
			return false
		}
	}
	return true
}

// shard partitions the view's faults into batchFaults-machine batches
// (64 per lane word of the replay target) distributed across workers
// goroutines (0 = GOMAXPROCS) with an atomic cursor.  Each goroutine
// calls newWorker once for its private replay function (the compiled
// path hangs a reusable Arena off it, returned through the done hook)
// and then replays one batch per cursor claim, the verdicts landing in
// a per-worker multi-word detection mask (det[j/64] bit j%64 reports
// batch fault j).  Subset views gather each batch's fault headers into
// a per-worker scratch and scatter the detection mask back by view
// position — the lane remap that lets cross-test fault dropping replay
// only survivors; full views replay backing subslices directly, as
// before.  detected[i] reports view fault i; every batch writes a
// disjoint slice segment, so the result is deterministic regardless of
// the worker count.  A failing batch raises a shared stop flag so the
// remaining workers short-circuit instead of completing their batches
// uselessly.  The returned worker count is the effective one after
// clamping to the batch count — what execution reports must cite, not
// the requested value.
//
// Cancellation is cooperative at batch granularity: each claim checks
// ctx (one non-blocking channel receive — free against the nil Done of
// context.Background, and never inside the replay kernel).  On
// cancellation every worker drains after its in-flight batch, the
// partial detected slice is returned as computed so far, and the error
// is ctx.Err() — callers distinguish interruption from replay failure
// by errors.Is(err, context.Canceled/DeadlineExceeded).
//
//faultsim:hotpath
func shard(ctx context.Context, v fault.View, workers, batchFaults int, newWorker func() (replay func(batch []fault.Fault, det []uint64) error, done func())) ([]bool, int, error) {
	n := v.Len()
	batches := (n + batchFaults - 1) / batchFaults
	maskWords := batchFaults / BatchSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > batches {
		workers = batches
	}
	detected := make([]bool, n) //faultsim:alloc-ok one result slice per shard call, amortized over the segment
	reg := telemetry.Active()
	ctxDone := ctx.Done()
	var cursor atomic.Int64
	var stop atomic.Bool
	errs := make([]error, workers) //faultsim:alloc-ok one slot per worker at startup
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { //faultsim:alloc-ok worker startup: one goroutine and closure per worker
			defer wg.Done() //faultsim:alloc-ok worker-lifetime defer
			replay, done := newWorker()
			if done != nil {
				defer done() //faultsim:alloc-ok worker-lifetime defer
			}
			det := make([]uint64, maskWords) //faultsim:alloc-ok per-worker detection mask, reused by every batch
			var scratch []fault.Fault
			if !v.Full() {
				scratch = make([]fault.Fault, 0, batchFaults) //faultsim:alloc-ok per-worker scratch, reused by every batch
			}
			// Telemetry: counters accumulate in the plain Local and flush
			// into the padded per-worker slot once per batch; with no
			// registry attached the whole path is one nil check per batch.
			var tw *telemetry.Worker
			var tl telemetry.Local
			if reg != nil {
				tw = reg.Worker(w)
			}
			for {
				b := int(cursor.Add(1)) - 1
				if b >= batches || stop.Load() {
					return
				}
				select {
				case <-ctxDone:
					return
				default:
				}
				lo := b * batchFaults
				hi := lo + batchFaults
				if hi > n {
					hi = n
				}
				var t0 time.Time
				if tw != nil {
					t0 = time.Now()
				}
				err := replay(v.Batch(scratch, lo, hi), det)
				if tw != nil {
					tl.KernelNanos += uint64(time.Since(t0))
					tl.Batches++
					tl.Faults += uint64(hi - lo)
					tl.Reps += uint64(hi - lo)
					reg.Flush(tw, &tl)
				}
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				for i := lo; i < hi; i++ {
					j := i - lo
					detected[i] = det[j>>6]>>(uint(j)&63)&1 == 1
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, workers, err
		}
	}
	if err := ctx.Err(); err != nil {
		return detected, workers, err
	}
	return detected, workers, nil
}

// Shards replays the trace over the whole fault universe with the
// per-batch interpreter (ReplayBatch), which rebuilds the machine array
// for every batch.  It is the PR 1 reference path; ShardsCompiled is
// the allocation-free fast path.  The int result is the effective
// worker count after clamping to the batch count.
func Shards(ctx context.Context, tr *Trace, faults []fault.Fault, workers int) ([]bool, int, error) {
	return ShardsView(ctx, tr, fault.Span(faults), workers)
}

// ShardsView is Shards over an index-view of the fault slice:
// detected[i] reports view fault i, so a session replaying only the
// survivors of earlier tests passes the narrowed view instead of
// rebuilding fault slices.
func ShardsView(ctx context.Context, tr *Trace, v fault.View, workers int) ([]bool, int, error) {
	return shard(ctx, v, workers, BatchSize, func() (func([]fault.Fault, []uint64) error, func()) {
		return func(batch []fault.Fault, det []uint64) error {
			mask, err := ReplayBatch(tr, batch)
			det[0] = mask
			return err
		}, nil
	})
}

// ShardsCompiled replays a compiled program over the whole fault
// universe.  Each worker owns one reusable Arena, so steady-state
// batches allocate nothing.  The int result is the effective worker
// count after clamping to the batch count.
func ShardsCompiled(ctx context.Context, p *Program, faults []fault.Fault, workers int) ([]bool, int, error) {
	return ShardsCompiledView(ctx, p, fault.Span(faults), workers, nil)
}

// ShardsCompiledView is ShardsCompiled over an index-view of the fault
// slice, optionally drawing worker arenas from a pool so a session's
// consecutive programs reuse them (nil builds fresh arenas).
func ShardsCompiledView(ctx context.Context, p *Program, v fault.View, workers int, arenas *ArenaPool) ([]bool, int, error) {
	return shard(ctx, v, workers, p.BatchFaults(), func() (func([]fault.Fault, []uint64) error, func()) {
		a := arenas.Get(p)
		return func(batch []fault.Fault, det []uint64) error {
			return p.ReplayInto(a, batch, det)
		}, func() { arenas.Put(a) }
	})
}
