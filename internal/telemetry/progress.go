package telemetry

import "time"

// Progress is one live campaign-progress sample, delivered through the
// OnProgress callback while a stage runs.
type Progress struct {
	// Stage labels the running stage (the runner name).
	Stage string
	// Done is the number of faults with verdicts so far in this stage;
	// Total the number the stage will present (<= 0 when unknown —
	// an inexact streaming Count).
	Done, Total int64
	// HighWater is the highest universe index delivered so far — the
	// resume point of an index-addressable streaming source.
	HighWater int64
	// Survivors is the session's current undetected-fault count, -1
	// until the session layer has reported one.
	Survivors int64
	// Elapsed is the stage's wall time so far.
	Elapsed time.Duration
	// FaultsPerSec is the stage throughput so far (presented faults).
	FaultsPerSec float64
	// ETA extrapolates the remaining stage time from the rate so far;
	// negative when unknown (no Total, or nothing done yet).
	ETA time.Duration
}

// Estimate computes throughput and remaining time from a done/total
// fault count and the elapsed wall time.  ETA is -1 when it cannot be
// known: nothing done yet, or no (exact) total.  Exposed for the
// resumable-source ETA tests and any custom progress renderer.
func Estimate(done, total int64, elapsed time.Duration) (faultsPerSec float64, eta time.Duration) {
	if elapsed > 0 && done > 0 {
		faultsPerSec = float64(done) / elapsed.Seconds()
	}
	if done <= 0 || total <= 0 {
		return faultsPerSec, -1
	}
	if done >= total {
		return faultsPerSec, 0
	}
	rem := float64(total-done) / float64(done)
	return faultsPerSec, time.Duration(rem * float64(elapsed))
}

// StageReport is one completed campaign stage's execution summary,
// delivered through the OnStage callback: what the coverage layer puts
// in EngineStats, plus the per-worker time split the sink-contention
// question needs.
type StageReport struct {
	// Universe and Stage label the session's universe and the runner.
	Universe, Stage string
	// Engine is the strategy that actually ran ("compiled", "bitpar",
	// "oracle" — fallbacks included).
	Engine string
	// Entered / Detected / Survivors are the stage's fault bookkeeping
	// (survivors are session-cumulative).
	Entered, Detected, Survivors int
	// Elapsed and FaultsPerSec are the stage's wall time and
	// throughput over presented faults.
	Elapsed      time.Duration
	FaultsPerSec float64
	// CollapseRatio is simulated representatives per presented fault.
	CollapseRatio float64
	// CacheHit reports the compiled program came from the cache.
	CacheHit bool
	// KernelTime, SinkWait and SourceWait split each worker's stage
	// time: inside the replay kernel, waiting on the serialized sink,
	// and claiming chunks from the source (streaming stages only for
	// the latter two).  Indexed by worker slot.
	KernelTime, SinkWait, SourceWait []time.Duration
}

// stageState is the progress baseline of the active stage.
type stageState struct {
	label      string
	total      int64
	start      time.Time
	baseFaults uint64
}

// OnProgress installs fn as the progress callback, invoked from worker
// flush paths at most once per every (every <= 0 emits on every
// flush — the tests' mode).  Install before attaching the registry.
func (r *Registry) OnProgress(every time.Duration, fn func(Progress)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.progressFn = fn
	r.everyNanos = int64(every)
	r.mu.Unlock()
	r.hasProgress.Store(fn != nil)
}

// OnStage installs fn as the completed-stage callback (the session
// layer invokes StageDone).  Install before attaching the registry.
func (r *Registry) OnStage(fn func(StageReport)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.stageFn = fn
	r.mu.Unlock()
}

// BeginStage marks a new campaign stage as the progress scope: done
// counts restart from the current flush totals, the high-water mark
// resets, and total is the fault count the stage will present (<= 0
// when unknown).
func (r *Registry) BeginStage(label string, total int64) {
	if r == nil {
		return
	}
	st := &stageState{
		label:      label,
		total:      total,
		start:      r.now(),
		baseFaults: r.Snapshot().Faults,
	}
	r.highWater.Store(0)
	r.stage.Store(st)
	r.lastEmit.Store(st.start.UnixNano())
}

// StageDone reports a completed stage to the OnStage callback, if any.
func (r *Registry) StageDone(rep StageReport) {
	if r == nil {
		return
	}
	r.mu.Lock()
	fn := r.stageFn
	r.mu.Unlock()
	if fn != nil {
		fn(rep)
	}
}

// noteFlush is the emission gate, called by Flush: when a progress
// callback is installed and the cadence interval has passed, exactly
// one flusher wins the CAS and emits.
func (r *Registry) noteFlush() {
	if !r.hasProgress.Load() {
		return
	}
	now := r.now().UnixNano()
	last := r.lastEmit.Load()
	if now-last < r.everyNanos {
		return
	}
	if !r.lastEmit.CompareAndSwap(last, now) {
		return
	}
	r.emit()
}

// emit builds one Progress sample and delivers it.
func (r *Registry) emit() {
	st := r.stage.Load()
	if st == nil {
		return
	}
	r.mu.Lock()
	fn := r.progressFn
	r.mu.Unlock()
	if fn == nil {
		return
	}
	done := int64(r.Snapshot().Faults - st.baseFaults)
	elapsed := r.now().Sub(st.start)
	fps, eta := Estimate(done, st.total, elapsed)
	fn(Progress{
		Stage:        st.label,
		Done:         done,
		Total:        st.total,
		HighWater:    r.highWater.Load(),
		Survivors:    r.survivors.Load(),
		Elapsed:      elapsed,
		FaultsPerSec: fps,
		ETA:          eta,
	})
}
