package gf2

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders p in the ascending-power notation used by the paper,
// e.g. Poly(0b10011).String() == "1 + z + z^4".  The zero polynomial is
// "0".  The indeterminate is written "z" to match the paper's p(z).
func (p Poly) String() string { return p.Format("z") }

// Format renders p with the given indeterminate name in ascending
// powers, e.g. Format("x") yields "1 + x + x^4".
func (p Poly) Format(ind string) string {
	if p == 0 {
		return "0"
	}
	var terms []string
	for i := 0; i <= p.Deg(); i++ {
		if p.Coeff(i) == 0 {
			continue
		}
		switch i {
		case 0:
			terms = append(terms, "1")
		case 1:
			terms = append(terms, ind)
		default:
			terms = append(terms, ind+"^"+strconv.Itoa(i))
		}
	}
	return strings.Join(terms, " + ")
}

// Parse parses a polynomial over GF(2) from either a term expression
// such as "1 + z + z^4" (any single-letter indeterminate, '+'-separated,
// whitespace ignored, '*' allowed as in "z*z" is NOT supported — use
// powers) or a hexadecimal/binary/decimal literal accepted by
// strconv.ParseUint with base auto-detection ("0x13", "0b10011", "19").
// Duplicate terms cancel, matching GF(2) addition.
func Parse(s string) (Poly, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("gf2: empty polynomial string")
	}
	// Try a numeric literal first.
	if v, err := strconv.ParseUint(t, 0, 64); err == nil {
		return Poly(v), nil
	}
	var p Poly
	for _, raw := range strings.Split(t, "+") {
		term := strings.TrimSpace(raw)
		if term == "" {
			return 0, fmt.Errorf("gf2: empty term in %q", s)
		}
		deg, err := parseTerm(term)
		if err != nil {
			return 0, fmt.Errorf("gf2: %v in %q", err, s)
		}
		p = p.Add(1 << uint(deg)) // duplicates cancel
	}
	return p, nil
}

// MustParse is like Parse but panics on error; it is intended for
// package-level constants and tests.
func MustParse(s string) Poly {
	p, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return p
}

// parseTerm parses a single term ("1", "z", "x^4") and returns its degree.
func parseTerm(term string) (int, error) {
	if term == "1" {
		return 0, nil
	}
	// Single letter indeterminate.
	ind := rune(term[0])
	if !isLetter(ind) {
		return 0, fmt.Errorf("bad term %q", term)
	}
	rest := term[1:]
	if rest == "" {
		return 1, nil
	}
	if !strings.HasPrefix(rest, "^") {
		return 0, fmt.Errorf("bad term %q", term)
	}
	d, err := strconv.Atoi(strings.TrimSpace(rest[1:]))
	if err != nil || d < 0 || d > MaxDegree {
		return 0, fmt.Errorf("bad exponent in term %q", term)
	}
	return d, nil
}

func isLetter(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}
