package repro

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/prt"
	"repro/internal/ram"
)

func TestSelfTestFacade(t *testing.T) {
	mem := NewWOM(256, 4)
	pass, err := SelfTest(mem)
	if err != nil || !pass {
		t.Fatalf("clean self-test: pass=%v err=%v", pass, err)
	}
	bad := fault.SAF{Cell: 77, Bit: 1, Value: 1}.Inject(NewWOM(256, 4))
	pass, err = SelfTest(bad)
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Error("faulty memory passed self-test")
	}
}

func TestDefaultSchemeWidths(t *testing.T) {
	for _, m := range []int{1, 4, 8} {
		s := DefaultScheme(m)
		if len(s.Iters) == 0 {
			t.Errorf("m=%d: empty scheme", m)
		}
	}
}

func TestMarchLibraryExposed(t *testing.T) {
	lib := MarchLibrary()
	if len(lib) < 8 {
		t.Errorf("library has %d algorithms", len(lib))
	}
}

func TestStandardFaultUniverseFacade(t *testing.T) {
	u := StandardFaultUniverse(16, 4, 5, 1)
	if u.Len() == 0 {
		t.Error("empty universe")
	}
}

func TestPaperConfigsExposed(t *testing.T) {
	if PaperWOMConfig().Gen.Field.M() != 4 {
		t.Error("paper WOM config wrong field")
	}
	if PaperBOMConfig().Gen.Field.M() != 1 {
		t.Error("paper BOM config wrong field")
	}
}

// --- experiment harness smoke tests: every table must build and carry
// the expected headline values ---

func TestExperimentFig1a(t *testing.T) {
	out := ExperimentFig1a(16).String()
	for _, want := range []string{"Fig.1a", "Init", "Fin*"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1a table missing %q", want)
		}
	}
}

func TestExperimentFig1b(t *testing.T) {
	out := ExperimentFig1b(257).String()
	for _, want := range []string{"period", "255", "true ((n-2) mod 255 = 0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig1b table missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentFig2(t *testing.T) {
	out := ExperimentFig2([]int{64, 256}).String()
	if !strings.Contains(out, "1.50") && !strings.Contains(out, "1.51") {
		t.Errorf("Fig2 table missing the 3n/2n ratio:\n%s", out)
	}
}

func TestExperimentSingleCellHeadline(t *testing.T) {
	out := ExperimentSingleCell(24).String()
	// The 3-iteration rows must be at 100% everywhere.
	lines := strings.Split(out, "\n")
	found := 0
	for _, l := range lines {
		if strings.Contains(l, "  3  ") || strings.Contains(l, "\t3\t") ||
			(strings.Contains(l, " 3 ") && strings.Contains(l, "100.0%")) {
			if strings.Count(l, "100.0%") >= 5 {
				found++
			}
		}
	}
	if found < 2 {
		t.Errorf("expected both geometries at 100%% for 3 iterations:\n%s", out)
	}
}

func TestExperimentBISTOverheadHeadline(t *testing.T) {
	out := ExperimentBISTOverhead().String()
	if !strings.Contains(out, "true") {
		t.Errorf("overhead never crossed 2^-20:\n%s", out)
	}
}

func TestExperimentMarkovHeadline(t *testing.T) {
	out := ExperimentMarkov().String()
	if !strings.Contains(out, "0.996094") {
		t.Errorf("m=4 one-iteration detection missing:\n%s", out)
	}
}

func TestExperimentMultiplierSynthesis(t *testing.T) {
	out := ExperimentMultiplierSynthesis().String()
	if !strings.Contains(out, "GF(2^8) total") {
		t.Errorf("aggregate row missing:\n%s", out)
	}
}

// TestSignatureRunnersRideTheCompiledEngine is the PR's acceptance
// property: the E15 MISR-compressed runner, the compressed BIST
// runner and the E16 SISR workload all execute on EngineCompiled
// (Stats proves it — no silent oracle fallback) with detection tallies
// byte-identical to the per-fault oracle.
func TestSignatureRunnersRideTheCompiledEngine(t *testing.T) {
	const n = 32
	womU := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 4)}
	womMk := func() ram.Memory { return ram.NewWOM(n, 4) }
	bomU := fault.Universe{Name: "coupling", Faults: fault.CouplingUniverse(fault.AdjacentPairs(n))}
	bomMk := func() ram.Memory { return ram.NewBOM(n) }
	cases := []struct {
		r  coverage.Runner
		u  fault.Universe
		mk coverage.MemoryFactory
	}{
		{misrCompressedRunner{n: n}, womU, womMk},
		{coverage.BISTRunner(prt.PaperWOMScheme3(), 0), womU, womMk},
		{sisrRunner{w: 4}, bomU, bomMk},
		{sisrRunner{exact: true}, bomU, bomMk},
	}
	for _, tc := range cases {
		got := coverage.CampaignEngine(tc.r, tc.u, tc.mk, 4, coverage.EngineCompiled)
		if got.Stats == nil || got.Stats.Engine != coverage.EngineCompiled {
			t.Errorf("%s: Stats = %+v, want the compiled engine (no fallback)", tc.r.Name(), got.Stats)
		}
		oracle := coverage.CampaignEngine(tc.r, tc.u, tc.mk, 4, coverage.EngineOracle)
		got.Stats, oracle.Stats = nil, nil
		if !reflect.DeepEqual(got, oracle) {
			t.Errorf("%s: compiled %+v != oracle %+v", tc.r.Name(), got, oracle)
		}
	}
}

func TestAllExperimentsBuild(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep is slow")
	}
	tables := AllExperiments()
	if len(tables) != 17 {
		t.Fatalf("expected 17 experiment tables, got %d", len(tables))
	}
	for _, tb := range tables {
		if tb.String() == "" || len(tb.Rows) == 0 {
			t.Errorf("empty experiment table %q", tb.Title)
		}
	}
}
