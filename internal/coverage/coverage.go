// Package coverage runs fault-injection campaigns: a test algorithm ×
// a fault universe → per-class detection statistics.  It is the engine
// behind the quantitative experiments (E4, E5, E6, E9, E10) comparing
// pseudo-ring testing with the March baselines.
package coverage

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
)

// Runner is a memory test algorithm under evaluation.
type Runner interface {
	// Name labels the algorithm in reports.
	Name() string
	// Run executes the test on mem and reports whether a fault was
	// detected and how many memory operations were spent.
	Run(mem ram.Memory) (detected bool, ops uint64)
}

// MemoryFactory builds a fresh fault-free memory for each trial.
type MemoryFactory func() ram.Memory

// ClassStat is the per-fault-class tally.
type ClassStat struct {
	Total    int
	Detected int
}

// Ratio returns the detection ratio (0 when the class is empty).
func (c ClassStat) Ratio() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Total)
}

// Result aggregates one campaign.
type Result struct {
	Runner   string
	Universe string
	Total    int
	Detected int
	ByClass  map[fault.Class]ClassStat
	// OpsCleanRun is the operation count of the algorithm on a
	// fault-free memory (the test length).
	OpsCleanRun uint64
	// FalsePositive is set when the algorithm flags a fault-free
	// memory — a broken configuration.
	FalsePositive bool
}

// Coverage returns the overall detection ratio.
func (r Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Classes returns the classes present, in canonical order.
func (r Result) Classes() []fault.Class {
	var out []fault.Class
	for c := range r.ByClass {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Campaign injects every fault of the universe into a fresh memory and
// runs the algorithm, fanning trials across workers goroutines
// (0 = GOMAXPROCS).  Results are deterministic regardless of the
// worker count.
func Campaign(r Runner, u fault.Universe, mk MemoryFactory, workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := Result{
		Runner:   r.Name(),
		Universe: u.Name,
		Total:    len(u.Faults),
		ByClass:  make(map[fault.Class]ClassStat),
	}
	// Clean baseline.
	cleanDetected, cleanOps := r.Run(mk())
	res.OpsCleanRun = cleanOps
	res.FalsePositive = cleanDetected

	detected := make([]bool, len(u.Faults))
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range ch {
				mem := u.Faults[idx].Inject(mk())
				d, _ := r.Run(mem)
				detected[idx] = d
			}
		}()
	}
	for i := range u.Faults {
		ch <- i
	}
	close(ch)
	wg.Wait()

	for i, f := range u.Faults {
		cs := res.ByClass[f.Class()]
		cs.Total++
		if detected[i] {
			cs.Detected++
			res.Detected++
		}
		res.ByClass[f.Class()] = cs
	}
	return res
}

// Sum aggregates the detected/total counts over several fault classes.
func Sum(byClass map[fault.Class]ClassStat, classes ...fault.Class) (detected, total int) {
	for _, c := range classes {
		s := byClass[c]
		detected += s.Detected
		total += s.Total
	}
	return detected, total
}

// Compare runs several algorithms over the same universe.
func Compare(runners []Runner, u fault.Universe, mk MemoryFactory, workers int) []Result {
	out := make([]Result, len(runners))
	for i, r := range runners {
		out[i] = Campaign(r, u, mk, workers)
	}
	return out
}

// --- runner adapters ---

type marchRunner struct {
	test        march.Test
	backgrounds []ram.Word
}

// MarchRunner adapts a March algorithm; backgrounds nil means the
// single all-zero background.
func MarchRunner(t march.Test, backgrounds []ram.Word) Runner {
	if len(backgrounds) == 0 {
		backgrounds = []ram.Word{0}
	}
	return marchRunner{test: t, backgrounds: backgrounds}
}

func (m marchRunner) Name() string { return m.test.Name }

func (m marchRunner) Run(mem ram.Memory) (bool, uint64) {
	r := march.RunBackgrounds(m.test, mem, m.backgrounds)
	return r.Detected, r.Ops
}

type prtRunner struct{ scheme prt.Scheme }

// PRTRunner adapts a pseudo-ring scheme.
func PRTRunner(s prt.Scheme) Runner { return prtRunner{scheme: s} }

func (p prtRunner) Name() string { return p.scheme.Name }

func (p prtRunner) Run(mem ram.Memory) (bool, uint64) {
	r, err := p.scheme.Run(mem)
	if err != nil {
		panic(fmt.Sprintf("coverage: scheme %s: %v", p.scheme.Name, err))
	}
	return r.Detected, r.Ops
}

type bitSlicedRunner struct {
	name string
	cfgs []prt.BitSlicedConfig
}

// BitSlicedRunner adapts a bit-sliced lane scheme.
func BitSlicedRunner(name string, cfgs []prt.BitSlicedConfig) Runner {
	return bitSlicedRunner{name: name, cfgs: cfgs}
}

func (b bitSlicedRunner) Name() string { return b.name }

func (b bitSlicedRunner) Run(mem ram.Memory) (bool, uint64) {
	r, err := prt.RunBitSlicedScheme(b.cfgs, mem)
	if err != nil {
		panic(fmt.Sprintf("coverage: bit-sliced %s: %v", b.name, err))
	}
	return r.Detected, r.Ops
}

type dualPortRunner struct {
	name string
	run  func(mp *ram.MultiPort) (bool, uint64, error)
}

// DualPortRunner adapts a dual-port scheme; the faulty memory is
// wrapped with a two-port front end.
func DualPortRunner(name string, run func(mp *ram.MultiPort) (bool, uint64, error)) Runner {
	return dualPortRunner{name: name, run: run}
}

func (d dualPortRunner) Name() string { return d.name }

func (d dualPortRunner) Run(mem ram.Memory) (bool, uint64) {
	mp := ram.NewMultiPortOn(mem, 2)
	det, cycles, err := d.run(mp)
	if err != nil {
		panic(fmt.Sprintf("coverage: dual-port %s: %v", d.name, err))
	}
	return det, cycles
}
