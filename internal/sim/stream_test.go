package sim

import (
	"context"
	"sort"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
)

// collectSink gathers chunk verdicts back into universe order so the
// streaming drivers can be compared position for position against the
// materialized shard drivers.
type collectSink struct {
	det  map[int]bool
	seen int
}

func newCollectSink() *collectSink { return &collectSink{det: make(map[int]bool)} }

func (c *collectSink) sink(_, _ int, idx []int, faults []fault.Fault, det []bool) {
	for i := range idx {
		if _, dup := c.det[idx[i]]; dup {
			panic("universe index delivered twice")
		}
		c.det[idx[i]] = det[i]
		c.seen++
	}
}

func (c *collectSink) indices() []int {
	out := make([]int, 0, len(c.det))
	for i := range c.det {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

func TestStreamDriversMatchShardDrivers(t *testing.T) {
	const n = 33
	tr := recordMarch(t, march.MarchCMinus(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StandardUniverse(n, 1, 6, 9).Faults
	ctx := context.Background()
	wantDet, _, err := ShardsCompiled(ctx, p, faults, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 100, 4096} {
		for _, collapse := range []bool{false, true} {
			cs := newCollectSink()
			_, reps, err := ShardsCompiledStream(ctx, p, fault.SliceSource(faults),
				StreamConfig{Chunk: chunk, Workers: 3, Collapse: collapse}, cs.sink)
			if err != nil {
				t.Fatal(err)
			}
			if cs.seen != len(faults) {
				t.Fatalf("chunk=%d collapse=%v: %d verdicts, want %d", chunk, collapse, cs.seen, len(faults))
			}
			// Collapsing is chunk-local, so single-fault chunks cannot
			// shrink; larger chunks must (SA0/SA1 pairs are adjacent in
			// the universe order).
			if collapse && chunk > 1 && reps >= len(faults) {
				t.Errorf("chunk=%d: collapsing simulated %d reps for %d faults", chunk, reps, len(faults))
			}
			for i := range faults {
				if cs.det[i] != wantDet[i] {
					t.Fatalf("chunk=%d collapse=%v fault %d: stream %v, shard %v",
						chunk, collapse, i, cs.det[i], wantDet[i])
				}
			}
		}
		// The interpreter path agrees too.
		cs := newCollectSink()
		if _, _, err := ShardsStream(ctx, tr, fault.SliceSource(faults),
			StreamConfig{Chunk: chunk, Workers: 3}, cs.sink); err != nil {
			t.Fatal(err)
		}
		for i := range faults {
			if cs.det[i] != wantDet[i] {
				t.Fatalf("bitpar chunk=%d fault %d: stream %v, shard %v", chunk, i, cs.det[i], wantDet[i])
			}
		}
	}
}

func TestStreamDropFilter(t *testing.T) {
	const n = 17
	tr := recordMarch(t, march.MATSPlus(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.SingleCellUniverse(n, 1)
	drop := fault.NewBitSet(len(faults))
	for i := range faults {
		if i%3 == 0 {
			drop.Set(i)
		}
	}
	cs := newCollectSink()
	if _, _, err := ShardsCompiledStream(context.Background(), p, fault.SliceSource(faults),
		StreamConfig{Chunk: 5, Workers: 2, Drop: drop, Collapse: true}, cs.sink); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := range faults {
		if i%3 != 0 {
			want++
		}
	}
	if cs.seen != want {
		t.Fatalf("presented %d faults, want %d", cs.seen, want)
	}
	for _, i := range cs.indices() {
		if i%3 == 0 {
			t.Fatalf("dropped fault %d was presented", i)
		}
	}
	// Verdicts of the survivors equal the full replay's.
	full, _, err := ShardsCompiled(context.Background(), p, faults, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range cs.det {
		if d != full[i] {
			t.Fatalf("fault %d: filtered verdict %v, full %v", i, d, full[i])
		}
	}
}

// failInjector is a fault that refuses batch injection, forcing the
// replay error path.
type failInjector struct{ fault.Fault }

func TestStreamErrorStops(t *testing.T) {
	const n = 16
	tr := recordMarch(t, march.MATSPlus(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.SingleCellUniverse(n, 1)
	faults[37] = failInjector{faults[37]} // strips the BatchInjector capability
	ctx := context.Background()
	cfg := StreamConfig{Chunk: 8, Workers: 2}
	cs := newCollectSink()
	_, _, err = ShardsCompiledStream(ctx, p, fault.SliceSource(faults), cfg, cs.sink)
	if err == nil {
		t.Fatal("driver swallowed a batch-injection error")
	}
	var discard ChunkSink = func(int, int, []int, []fault.Fault, []bool) {}
	if _, _, err := ShardsStream(ctx, tr, fault.SliceSource(faults), cfg, discard); err == nil {
		t.Fatal("interpreter driver swallowed a batch-injection error")
	}
	// A trace with no detection points is rejected like the
	// materialized drivers reject it.
	if _, _, err := ShardsStream(ctx, &Trace{Size: n, Width: 1}, fault.SliceSource(faults[:1]),
		StreamConfig{Chunk: 8, Workers: 1}, discard); err == nil {
		t.Fatal("unreplayable trace accepted")
	}
}
