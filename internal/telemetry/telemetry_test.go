package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestSnapshotAggregation: per-worker flushes land in the right rows
// and the snapshot sums them.
func TestSnapshotAggregation(t *testing.T) {
	r := NewRegistry()
	w0, w1 := r.Worker(0), r.Worker(1)
	r.Flush(w0, &Local{Faults: 10, Reps: 8, Batches: 1, KernelNanos: 1000})
	r.Flush(w0, &Local{Faults: 5, Chunks: 1, SinkWaitNanos: 200, SinkNanos: 300})
	r.Flush(w1, &Local{Faults: 7, Reps: 7, SourceWaitNanos: 400})
	r.CacheLookup(true)
	r.CacheLookup(false)
	r.CacheLookup(false)
	r.ArenaGet(true)
	r.ArenaGet(false)
	r.CollapseDelta(100, 60)

	s := r.Snapshot()
	if s.Faults != 22 || s.Reps != 15 || s.Batches != 1 || s.Chunks != 1 {
		t.Errorf("sums: %+v", s)
	}
	if s.Kernel != 1000 || s.SinkWait != 200 || s.Sink != 300 || s.SourceWait != 400 {
		t.Errorf("durations: %+v", s)
	}
	if len(s.Workers) != 2 {
		t.Fatalf("worker rows: %d", len(s.Workers))
	}
	if s.Workers[0].Faults != 15 || s.Workers[1].Faults != 7 {
		t.Errorf("per-worker faults: %d, %d", s.Workers[0].Faults, s.Workers[1].Faults)
	}
	if s.CacheHits != 1 || s.CacheMisses != 2 {
		t.Errorf("cache: hits=%d misses=%d", s.CacheHits, s.CacheMisses)
	}
	if s.ArenaReuse != 1 || s.ArenaFresh != 1 {
		t.Errorf("arena: reuse=%d fresh=%d", s.ArenaReuse, s.ArenaFresh)
	}
	if s.CollapseIn != 100 || s.CollapseOut != 60 {
		t.Errorf("collapse: %d/%d", s.CollapseIn, s.CollapseOut)
	}
	if got := s.CollapseRatio(); got != 0.6 {
		t.Errorf("collapse ratio = %v", got)
	}
	if m := s.Metrics(); m["faults_presented"] != 22 || m["workers"] != 2 {
		t.Errorf("metrics: %v", m)
	}
}

// TestFlushZeroesLocal: Flush must reset the worker-local accumulator
// so the next batch starts clean.
func TestFlushZeroesLocal(t *testing.T) {
	r := NewRegistry()
	w := r.Worker(0)
	l := Local{Faults: 3, KernelNanos: 9}
	r.Flush(w, &l)
	if l != (Local{}) {
		t.Errorf("local not zeroed: %+v", l)
	}
}

// TestSnapshotSub: per-stage deltas line up worker for worker, and
// rows the previous snapshot lacks are taken whole.
func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	w0 := r.Worker(0)
	r.Flush(w0, &Local{Faults: 10, KernelNanos: 100})
	before := r.Snapshot()
	r.Flush(w0, &Local{Faults: 4, KernelNanos: 50})
	w1 := r.Worker(1) // appears only after the baseline snapshot
	r.Flush(w1, &Local{Faults: 6})
	r.CacheLookup(false)

	d := r.Snapshot().Sub(before)
	if d.Faults != 10 || d.Kernel != 50 {
		t.Errorf("delta sums: faults=%d kernel=%d", d.Faults, d.Kernel)
	}
	if len(d.Workers) != 2 || d.Workers[0].Faults != 4 || d.Workers[1].Faults != 6 {
		t.Errorf("delta rows: %+v", d.Workers)
	}
	if d.CacheMisses != 1 {
		t.Errorf("delta cache misses = %d", d.CacheMisses)
	}
}

// TestNilRegistry: every method is a no-op on a nil receiver — the
// detached-instrumentation mode call sites rely on.
func TestNilRegistry(t *testing.T) {
	var r *Registry
	if w := r.Worker(3); w != nil {
		t.Error("nil registry returned a worker slot")
	}
	r.Flush(nil, &Local{Faults: 1})
	r.CacheLookup(true)
	r.ArenaGet(false)
	r.CollapseDelta(5, 3)
	r.ObserveIndex(9)
	r.ReportSurvivors(1)
	r.BeginStage("x", 10)
	r.StageDone(StageReport{})
	r.OnProgress(time.Second, func(Progress) { t.Error("callback on nil registry") })
	r.OnStage(func(StageReport) { t.Error("stage callback on nil registry") })
	if s := r.Snapshot(); s.Faults != 0 || len(s.Workers) != 0 {
		t.Errorf("nil snapshot: %+v", s)
	}
}

// TestEstimate: the ETA math, including its unknowns.
func TestEstimate(t *testing.T) {
	fps, eta := Estimate(100, 400, time.Second)
	if fps != 100 {
		t.Errorf("faults/s = %v", fps)
	}
	if eta != 3*time.Second {
		t.Errorf("eta = %v, want 3s", eta)
	}
	if _, eta := Estimate(0, 400, time.Second); eta >= 0 {
		t.Errorf("nothing done: eta = %v, want negative", eta)
	}
	if _, eta := Estimate(100, 0, time.Second); eta >= 0 {
		t.Errorf("unknown total: eta = %v, want negative", eta)
	}
	if _, eta := Estimate(400, 400, time.Second); eta != 0 {
		t.Errorf("complete: eta = %v, want 0", eta)
	}
	if fps, _ := Estimate(100, 400, 0); fps != 0 {
		t.Errorf("zero elapsed: faults/s = %v", fps)
	}
}

// TestProgressCadence: with a fake clock, emissions happen exactly
// when the cadence interval has elapsed — not on every flush.
func TestProgressCadence(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	var got []Progress
	r.OnProgress(time.Second, func(p Progress) { got = append(got, p) })
	r.ReportSurvivors(42)
	r.BeginStage("stage-a", 100)
	w := r.Worker(0)

	r.Flush(w, &Local{Faults: 10}) // same instant as BeginStage: suppressed
	if len(got) != 0 {
		t.Fatalf("emitted %d samples with no time elapsed", len(got))
	}
	now = now.Add(400 * time.Millisecond)
	r.Flush(w, &Local{Faults: 10}) // 0.4s since baseline: still suppressed
	if len(got) != 0 {
		t.Fatalf("emitted before the cadence interval")
	}
	now = now.Add(700 * time.Millisecond)
	r.ObserveIndex(19)
	r.Flush(w, &Local{Faults: 5}) // 1.1s: one emission
	if len(got) != 1 {
		t.Fatalf("emissions after interval = %d, want 1", len(got))
	}
	p := got[0]
	if p.Stage != "stage-a" || p.Done != 25 || p.Total != 100 {
		t.Errorf("sample: %+v", p)
	}
	if p.Survivors != 42 || p.HighWater != 19 {
		t.Errorf("survivors/highwater: %+v", p)
	}
	if p.Elapsed != 1100*time.Millisecond {
		t.Errorf("elapsed = %v", p.Elapsed)
	}
	now = now.Add(100 * time.Millisecond)
	r.Flush(w, &Local{Faults: 5}) // 0.1s after the last emission: suppressed
	if len(got) != 1 {
		t.Fatalf("re-emitted inside the interval")
	}
}

// TestProgressEveryFlush: every <= 0 emits on every flush — the mode
// tests use to observe each sample.
func TestProgressEveryFlush(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { now = now.Add(time.Millisecond); return now })
	var n int
	r.OnProgress(0, func(Progress) { n++ })
	r.BeginStage("s", 10)
	w := r.Worker(0)
	for i := 0; i < 5; i++ {
		r.Flush(w, &Local{Faults: 1})
	}
	if n != 5 {
		t.Errorf("emissions = %d, want 5", n)
	}
}

// TestBeginStageResetsBaseline: Done counts restart per stage and the
// high-water mark resets.
func TestBeginStageResetsBaseline(t *testing.T) {
	r := NewRegistry()
	now := time.Unix(0, 0)
	r.SetClock(func() time.Time { now = now.Add(time.Millisecond); return now })
	var last Progress
	r.OnProgress(0, func(p Progress) { last = p })
	w := r.Worker(0)

	r.BeginStage("first", 50)
	r.ObserveIndex(40)
	r.Flush(w, &Local{Faults: 30})
	if last.Done != 30 || last.HighWater != 40 {
		t.Fatalf("first stage: %+v", last)
	}
	r.BeginStage("second", 50)
	r.Flush(w, &Local{Faults: 10})
	if last.Stage != "second" || last.Done != 10 {
		t.Errorf("second stage baseline: %+v", last)
	}
	if last.HighWater != 0 {
		t.Errorf("high water not reset: %d", last.HighWater)
	}
}

// TestStageDone delivers through the OnStage callback.
func TestStageDone(t *testing.T) {
	r := NewRegistry()
	var got StageReport
	r.OnStage(func(rep StageReport) { got = rep })
	r.StageDone(StageReport{Stage: "m", Engine: "compiled", Entered: 9})
	if got.Stage != "m" || got.Engine != "compiled" || got.Entered != 9 {
		t.Errorf("stage report: %+v", got)
	}
}

// TestRegistryRace hammers one registry from many writer goroutines
// while snapshot readers and progress emissions run concurrently —
// the -race guard for the whole counter design.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	r.OnProgress(0, func(Progress) {}) // emit on every flush
	r.BeginStage("race", 1<<20)
	const writers = 8
	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		writersWG.Add(1)
		go func(id int) {
			defer writersWG.Done()
			w := r.Worker(id)
			var l Local
			for j := 0; j < 500; j++ {
				l.Faults += 64
				l.Reps += 60
				l.KernelNanos += 10
				r.Flush(w, &l)
				r.ObserveIndex(int64(id*500 + j))
				r.CacheLookup(j%2 == 0)
				r.ArenaGet(j%3 == 0)
				r.CollapseDelta(64, 60)
				r.ReportSurvivors(int64(j))
			}
		}(i)
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	readerWG.Wait()
	s := r.Snapshot()
	if want := uint64(writers * 500 * 64); s.Faults != want {
		t.Errorf("faults = %d, want %d", s.Faults, want)
	}
	if len(s.Workers) != writers {
		t.Errorf("worker rows = %d", len(s.Workers))
	}
}
