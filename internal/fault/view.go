package fault

// View is a cheap subset of a fault slice: no fault instances are
// copied, only the shared backing slice plus a subset description.
// The campaign session layer narrows a universe test after test
// (cross-test fault dropping) through views instead of rebuilding
// fault slices.  Two implementations exist: the index view returned by
// Span/Where (a []int32 of kept positions) and BitView (a survivor
// bitmap plus rank directory — N bits however small the subset).
type View interface {
	// Len returns the number of faults in the view.
	Len() int
	// At returns the fault at view position i.
	At(i int) Fault
	// Index maps view position i to its position in the backing slice.
	Index(i int) int
	// Full reports whether the view spans its whole backing slice
	// without indirection.
	Full() bool
	// Batch returns view positions [lo, hi) as a contiguous fault
	// slice: the backing subslice directly for a full view (zero
	// copying — the common first-stage case), otherwise the headers
	// gathered into scratch (grown as needed).  Replay drivers pass a
	// per-worker scratch so steady-state batches allocate nothing.
	Batch(scratch []Fault, lo, hi int) []Fault
	// Where returns the sub-view of positions the predicate keeps,
	// composed onto the same backing slice (indices remain positions in
	// the original slice, so detection scatter stays exact across
	// chained narrowing).
	Where(keep func(i int) bool) View
}

// sliceView is the index implementation of View: the backing slice
// plus an optional position list (nil = the whole slice).
type sliceView struct {
	faults []Fault
	idx    []int32 // positions into faults; nil = the whole slice
}

// Span returns the identity view over the whole slice.
func Span(faults []Fault) View { return sliceView{faults: faults} }

// Len implements View.
func (v sliceView) Len() int {
	if v.idx != nil {
		return len(v.idx)
	}
	return len(v.faults)
}

// At implements View.
func (v sliceView) At(i int) Fault {
	if v.idx != nil {
		return v.faults[v.idx[i]]
	}
	return v.faults[i]
}

// Index implements View.
func (v sliceView) Index(i int) int {
	if v.idx != nil {
		return int(v.idx[i])
	}
	return i
}

// Full implements View.
func (v sliceView) Full() bool { return v.idx == nil }

// Batch implements View.
func (v sliceView) Batch(scratch []Fault, lo, hi int) []Fault {
	if v.idx == nil {
		return v.faults[lo:hi]
	}
	scratch = scratch[:0]
	for _, j := range v.idx[lo:hi] {
		scratch = append(scratch, v.faults[j])
	}
	return scratch
}

// Where implements View.
func (v sliceView) Where(keep func(i int) bool) View {
	n := v.Len()
	idx := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if keep(i) {
			idx = append(idx, int32(v.Index(i)))
		}
	}
	return sliceView{faults: v.faults, idx: idx}
}
