// Package seeded carries one deliberate violation per analyzer.  The
// selftest runs the whole suite over it and fails if any seeded finding
// goes unreported — a canary against an analyzer silently losing its
// teeth (a bad marker-scanner change, an over-broad exemption).  CI
// also copies this file into a scratch module and asserts that
// `go vet -vettool=faultvet` exits non-zero on it.
//
//faultsim:deterministic
package seeded

import (
	"context"
	"os"
)

// HotAppend grows a slice on a marked hot path without a preallocation
// or a justification.
//
//faultsim:hotpath
func HotAppend(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i) // want `hotpath: append may grow the backing array`
	}
	return dst
}

// WideReplay allocates a per-group detection scratch inside a marked
// wide-kernel batch loop — the regression the wide-lane kernels must
// never reintroduce (per-batch buffers belong on the arena, sized once
// at construction).
//
//faultsim:hotpath
func WideReplay(lanes [][]uint64, groups int) uint64 {
	var sig uint64
	for _, batch := range lanes {
		det := make([]uint64, groups) // want `hotpath: make allocates`
		for g := 0; g < groups && g < len(batch); g++ {
			det[g] |= batch[g]
			sig ^= det[g]
		}
	}
	return sig
}

// RangeTally iterates a map in a deterministic scope with no ordered
// justification.
func RangeTally(m map[string]int) int {
	total := 0
	for _, v := range m { // want `deterministic: map iteration order is randomized`
		total += v
	}
	return total
}

// Persist discards a Sync error on a durable write path.
//
//faultsim:durable
func Persist(f *os.File, b []byte) error {
	if _, err := f.Write(b); err != nil {
		return err
	}
	f.Sync() // want `syncerr: error result of \(\*os\.File\)\.Sync is discarded on the durable write path`
	return f.Close()
}

// Reseed manufactures a root context although the caller handed one in.
func Reseed(ctx context.Context) context.Context {
	return context.Background() // want `ctxflow: context.Background inside a function with a context parameter; pass the caller's context`
}
