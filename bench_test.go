package repro

// Benchmark harness: one benchmark per paper artefact (figure /
// quantitative claim), regenerating the corresponding table.  Each
// bench prints its table once (so `go test -bench=.` reproduces the
// whole evaluation) and then measures the underlying computation.
//
// Ablation benches at the bottom time the design alternatives called
// out in DESIGN.md §6.

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
	"repro/internal/report"
	"repro/internal/telemetry"
	"repro/internal/xorsynth"
)

var printOnce sync.Map

func printTable(key string, build func() *report.Table) {
	once, _ := printOnce.LoadOrStore(key, new(sync.Once))
	once.(*sync.Once).Do(func() {
		build().Render(os.Stdout)
		fmt.Println()
	})
}

// --- E1: Figure 1a ---

func BenchmarkFig1aBOMPiIteration(b *testing.B) {
	printTable("fig1a", func() *report.Table { return ExperimentFig1a(16) })
	cfg := prt.PaperBOMConfig()
	mem := ram.NewBOM(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prt.MustRunIteration(cfg, mem)
	}
}

// --- E2: Figure 1b ---

func BenchmarkFig1bWOMPiIteration(b *testing.B) {
	printTable("fig1b", func() *report.Table { return ExperimentFig1b(257) })
	cfg := prt.PaperWOMConfig()
	mem := ram.NewWOM(257, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prt.MustRunIteration(cfg, mem)
	}
}

// --- E3: Figure 2 ---

func BenchmarkFig2DualPortPRT(b *testing.B) {
	printTable("fig2", func() *report.Table { return ExperimentFig2([]int{64, 256, 1024}) })
	cfg := prt.PaperWOMConfig()
	dp := ram.NewDualPort(1024, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prt.RunDualPort(cfg, dp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: §3 single-cell coverage table ---

func BenchmarkTableSingleCellCoverage(b *testing.B) {
	printTable("e4", func() *report.Table { return ExperimentSingleCell(48) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentSingleCell(24)
	}
}

// --- E5: §3 coupling coverage table ---

func BenchmarkTableCouplingCoverage(b *testing.B) {
	printTable("e5", func() *report.Table { return ExperimentCoupling(48) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentCoupling(16)
	}
}

// --- E6: PRT vs March ---

func BenchmarkTablePRTvsMarch(b *testing.B) {
	printTable("e6", func() *report.Table { return ExperimentPRTvsMarch(48, 4) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentPRTvsMarch(16, 4)
	}
}

// --- E7: §4 BIST overhead ---

func BenchmarkTableBISTOverhead(b *testing.B) {
	printTable("e7", func() *report.Table { return ExperimentBISTOverhead() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentBISTOverhead()
	}
}

// --- E8: §3 Markov resolution ---

func BenchmarkTableMarkovResolution(b *testing.B) {
	printTable("e8", func() *report.Table { return ExperimentMarkov() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentMarkov()
	}
}

// --- E9: §2 intra-word, parallel vs random lanes ---

func BenchmarkTableIntraWord(b *testing.B) {
	printTable("e9", func() *report.Table { return ExperimentIntraWord(32, 4) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentIntraWord(8, 4)
	}
}

// --- E10: §3 quality factors ---

func BenchmarkTableQualityFactors(b *testing.B) {
	printTable("e10", func() *report.Table { return ExperimentQualityFactors(48) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentQualityFactors(16)
	}
}

// --- E11: §2 multiplier synthesis ---

func BenchmarkTableMultiplierSynthesis(b *testing.B) {
	printTable("e11", func() *report.Table { return ExperimentMultiplierSynthesis() })
	f := gf.NewField(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = xorsynth.SurveyField(f)
	}
}

// --- E12: extension — NPSF coverage ---

func BenchmarkTableNPSF(b *testing.B) {
	printTable("e12", func() *report.Table { return ExperimentNPSF(64, 8) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentNPSF(16, 4)
	}
}

// --- E13: extension — data retention ---

func BenchmarkTableRetention(b *testing.B) {
	printTable("e13", func() *report.Table { return ExperimentRetention(48) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentRetention(16)
	}
}

// --- ablation benches (DESIGN.md §6) ---

// BenchmarkGFMulStrategies compares the log/antilog-table multiply with
// the shift-and-add fallback.
func BenchmarkGFMulStrategies(b *testing.B) {
	f := gf.NewField(8)
	b.Run("table", func(b *testing.B) {
		var acc gf.Elem = 1
		for i := 0; i < b.N; i++ {
			acc = f.Mul(acc|1, 0x53)
		}
		sink = uint64(acc)
	})
	b.Run("shift-add", func(b *testing.B) {
		var acc gf.Elem = 1
		for i := 0; i < b.N; i++ {
			acc = f.MulNoTable(acc|1, 0x53)
		}
		sink = uint64(acc)
	})
}

// BenchmarkLFSRForms compares Fibonacci and Galois bit-LFSR stepping.
func BenchmarkLFSRForms(b *testing.B) {
	for _, form := range []lfsr.Form{lfsr.Fibonacci, lfsr.Galois} {
		b.Run(form.String(), func(b *testing.B) {
			reg := lfsr.MustBit(0x11D, form, 1)
			for i := 0; i < b.N; i++ {
				reg.Step()
			}
			sink = reg.State()
		})
	}
}

// BenchmarkPiIterationThroughput measures cells/second of the walk
// itself across memory sizes.
func BenchmarkPiIterationThroughput(b *testing.B) {
	for _, n := range []int{256, 4096, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := prt.PaperWOMConfig()
			mem := ram.NewWOM(n, 4)
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				prt.MustRunIteration(cfg, mem)
			}
		})
	}
}

// BenchmarkMarchAlgorithms times the baseline March library.
func BenchmarkMarchAlgorithms(b *testing.B) {
	for _, t := range []march.Test{march.MATSPlus(), march.MarchCMinus(), march.MarchB()} {
		b.Run(t.Name, func(b *testing.B) {
			mem := ram.NewBOM(4096)
			for i := 0; i < b.N; i++ {
				_ = march.Run(t, mem, 0)
			}
		})
	}
}

// BenchmarkCSESynthesis times multiplier synthesis with and without
// common-subexpression elimination.
func BenchmarkCSESynthesis(b *testing.B) {
	f := gf.NewField(8)
	m := f.ConstMulMatrix(0xB7)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = uint64(xorsynth.Naive(m).GateCount())
		}
	})
	b.Run("cse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = uint64(xorsynth.CSE(m).GateCount())
		}
	})
}

// BenchmarkSignatureVsVerify compares the per-run cost of the paper's
// pure signature scheme with the verify/capture-augmented scheme.
func BenchmarkSignatureVsVerify(b *testing.B) {
	gen := prt.PaperWOMConfig().Gen
	full := prt.StandardScheme3(gen)
	sig := full.SignatureOnly()
	mem := ram.NewWOM(4096, 4)
	b.Run("signature", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sig.MustRun(mem)
		}
	})
	b.Run("verify+capture", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = full.MustRun(mem)
		}
	})
}

// BenchmarkCampaign compares the three coverage engines on the
// acceptance workload: bit-oriented SAF+CF campaigns under March C-.
// The oracle re-runs the full algorithm per fault; bitpar replays the
// recorded trace per 64-fault batch, rebuilding the machine array each
// time; compiled lowers the trace once and replays it allocation-free
// over per-worker arenas with width-1 kernels and fault collapsing.
// The 1K size keeps the oracle comparable; the 64K size is the
// production regime (the oracle would take hours there) with coupling
// pairs sampled to bound the universe.  The custom metric is faults
// simulated per second.
func BenchmarkCampaign(b *testing.B) {
	r := coverage.MarchRunner(march.MarchCMinus(), nil)
	for _, bc := range []struct {
		n       int
		pairs   func(n int) []fault.CouplingPair
		engines []coverage.Engine
	}{
		{1024, fault.AdjacentPairs,
			[]coverage.Engine{coverage.EngineOracle, coverage.EngineBitParallel, coverage.EngineCompiled}},
		{65536, func(n int) []fault.CouplingPair { return fault.SamplePairs(n, 1, 2048, 1) },
			[]coverage.Engine{coverage.EngineBitParallel, coverage.EngineCompiled}},
	} {
		n := bc.n
		u := fault.Universe{Name: "saf+cf", Faults: append(
			fault.SingleCellUniverse(n, 1),
			fault.CouplingUniverse(bc.pairs(n))...)}
		mk := func() ram.Memory { return ram.NewBOM(n) }
		for _, engine := range bc.engines {
			b.Run(fmt.Sprintf("n=%d/%s", n, engine), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := coverage.CampaignEngine(r, u, mk, 0, engine)
					sink = uint64(res.Detected)
				}
				b.ReportMetric(float64(u.Len())*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
			})
		}
		// Wide-lane variants of the compiled engine: the same campaign
		// replayed 256 and 512 machines per batch.  The fault set, the
		// program and the verdicts are identical (property-tested) — only
		// the arena geometry changes, so the faults/s delta against
		// n=.../compiled is pure batch-width amortization.
		for _, machines := range []int{256, 512} {
			lanes := machines / 64
			b.Run(fmt.Sprintf("n=%d/compiled/lanes=%d", n, machines), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p := coverage.Plan{
						Runners: []coverage.Runner{r}, Universe: u, Memory: mk,
						Engine: coverage.EngineCompiled, LaneWords: lanes,
					}
					sink = uint64(p.Run().Results[0].Detected)
				}
				b.ReportMetric(float64(u.Len())*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
			})
		}
	}
}

// BenchmarkCampaignPRT measures the same comparison for a pseudo-ring
// scheme, whose recurrence writes exercise the affine replay path.
func BenchmarkCampaignPRT(b *testing.B) {
	const n = 256
	u := fault.Universe{Name: "saf+cf", Faults: append(
		fault.SingleCellUniverse(n, 4),
		fault.CouplingUniverse(fault.AdjacentPairs(n))...)}
	mk := func() ram.Memory { return ram.NewWOM(n, 4) }
	r := coverage.PRTRunner(prt.StandardScheme3(prt.PaperWOMConfig().Gen))
	for _, engine := range []coverage.Engine{coverage.EngineOracle, coverage.EngineBitParallel, coverage.EngineCompiled} {
		b.Run(fmt.Sprintf("n=%d/%s", n, engine), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := coverage.CampaignEngine(r, u, mk, 0, engine)
				sink = uint64(res.Detected)
			}
			b.ReportMetric(float64(u.Len())*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
		})
	}
}

// BenchmarkSession measures the campaign session layer on an
// E10-style multi-runner workload: five March algorithms over one
// bit-oriented SAF+CF universe.  "independent" is the pre-session
// structure — back-to-back CampaignEngine runs, each re-recording,
// re-compiling and re-simulating the full universe.  "session" runs
// the same five campaigns as one Plan (shared program cache + arena
// pool, no dropping — results byte-identical to independent runs).
// "session+drop" adds cross-test fault dropping with cheapest-first
// ordering: each fault is simulated only until some test detects it,
// which is where the bulk of the speedup lives.  The custom metric is
// (logical) faults/s over the full universe × runner count, so the
// three modes are directly comparable.
func BenchmarkSession(b *testing.B) {
	const n = 1024
	u := fault.Universe{Name: "saf+cf", Faults: append(
		fault.SingleCellUniverse(n, 1),
		fault.CouplingUniverse(fault.AdjacentPairs(n))...)}
	mk := func() ram.Memory { return ram.NewBOM(n) }
	runners := []coverage.Runner{
		coverage.MarchRunner(march.MATSPlus(), nil),
		coverage.MarchRunner(march.MarchX(), nil),
		coverage.MarchRunner(march.MarchY(), nil),
		coverage.MarchRunner(march.MarchCMinus(), nil),
		coverage.MarchRunner(march.MarchB(), nil),
	}
	logical := float64(u.Len() * len(runners))
	b.Run(fmt.Sprintf("n=%d/independent", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var det int
			for _, r := range runners {
				res := coverage.CampaignEngine(r, u, mk, 0, coverage.EngineCompiled)
				det += res.Detected
			}
			sink = uint64(det)
		}
		b.ReportMetric(logical*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
	})
	session := func(drop bool) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := coverage.Plan{
					Runners: runners, Universe: u, Memory: mk,
					Engine: coverage.EngineCompiled, Drop: drop,
					Order: coverage.OrderCheapestFirst,
					Cache: coverage.SharedProgramCache(),
				}
				sink = uint64(p.Run().Cumulative.Detected)
			}
			b.ReportMetric(logical*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
		}
	}
	b.Run(fmt.Sprintf("n=%d/session", n), session(false))
	b.Run(fmt.Sprintf("n=%d/session+drop", n), session(true))
}

// BenchmarkStreamingCampaign measures the bounded-memory streaming
// path: an exhaustive coupling universe (every ordered cell pair of a
// 256-cell bit-oriented array × 12 sub-types = 783,360 instances,
// fault.FullCouplingSource) pulled through the compiled engine in
// chunks.  Resident fault storage is O(chunk × workers) — the
// memory-guard test in internal/coverage asserts it — so the chunk
// sweep shows chunk size is a memory knob, not a throughput knob.
// The custom metric is faults simulated per second.
func BenchmarkStreamingCampaign(b *testing.B) {
	const n = 256
	src := fault.FullCouplingSource(n)
	count, _ := src.Count()
	st := &fault.Stream{Name: "cf-exhaustive", Source: src}
	mk := func() ram.Memory { return ram.NewBOM(n) }
	r := coverage.MarchRunner(march.MarchCMinus(), nil)
	for _, chunk := range []int{512, 8192} {
		b.Run(fmt.Sprintf("n=%d/chunk=%d", n, chunk), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := coverage.CampaignStream(r, st, mk, 0, chunk)
				sink = uint64(res.Detected)
			}
			b.ReportMetric(float64(count)*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
		})
	}
}

// BenchmarkCampaignParallel gates parallel scaling on the streaming
// compiled path: the exhaustive coupling universe of
// BenchmarkStreamingCampaign swept across worker counts at the wide
// 256-machine batch width.  Two metrics per sub-bench: faults/s (the
// scaling curve — workers=4 should hold ≥0.6× linear over workers=1 on
// a ≥4-core machine) and sinkwait/worker, the mean fraction of a
// worker's wall time spent blocked acquiring the serialized chunk
// sink.  The workers=16 row exists for the latter: oversubscribed
// workers quantify how far the single-lock sink design is from
// becoming the bottleneck (see README "Scaling" for measured shares).
//
// The unnamed-sink rows pin Sink explicitly: the historical baseline
// rows force SinkOrdered (SinkAuto now picks the unordered path for
// exactly this plan shape, which would silently change what they
// measure), and the sink=unordered rows measure the per-worker-sink
// path that removes the lock — their sinkwait/worker is structurally
// zero, and their faults/s at 16+ workers is the scaling headline the
// CI per-benchmark regression gate holds.
func BenchmarkCampaignParallel(b *testing.B) {
	const n = 256
	src := fault.FullCouplingSource(n)
	count, _ := src.Count()
	st := &fault.Stream{Name: "cf-exhaustive", Source: src}
	mk := func() ram.Memory { return ram.NewBOM(n) }
	r := coverage.MarchRunner(march.MarchCMinus(), nil)
	run := func(name string, workers int, mode coverage.SinkMode) {
		b.Run(name, func(b *testing.B) {
			// A registry is attached so the per-worker sink-wait split is
			// captured; BenchmarkTelemetryOverhead bounds its cost at ~2%.
			telemetry.SetActive(telemetry.NewRegistry())
			defer telemetry.SetActive(nil)
			b.ReportAllocs()
			var shareSum float64
			var shareN int
			for i := 0; i < b.N; i++ {
				p := coverage.Plan{
					Runners: []coverage.Runner{r}, Stream: st,
					Memory: mk, Workers: workers,
					Engine: coverage.EngineCompiled, LaneWords: 4,
					Cache: coverage.SharedProgramCache(),
					Sink:  mode,
				}
				res := p.Run().Results[0]
				sink = uint64(res.Detected)
				for _, s := range res.Stats.SinkWaitShares() {
					shareSum += s
					shareN++
				}
			}
			b.ReportMetric(float64(count)*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
			if shareN > 0 {
				b.ReportMetric(shareSum/float64(shareN), "sinkwait/worker")
			}
		})
	}
	workerSet := []int{1, 2, 4, 16}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 && g != 16 {
		workerSet = append(workerSet, g)
	}
	for _, workers := range workerSet {
		run(fmt.Sprintf("n=%d/lanes=256/workers=%d", n, workers), workers, coverage.SinkOrdered)
	}
	unorderedSet := []int{16, 32}
	if g := runtime.GOMAXPROCS(0); g != 16 && g != 32 {
		unorderedSet = append(unorderedSet, g)
	}
	for _, workers := range unorderedSet {
		run(fmt.Sprintf("n=%d/lanes=256/sink=unordered/workers=%d", n, workers), workers, coverage.SinkUnordered)
	}
}

// BenchmarkTelemetryOverhead guards the "near-free when detached,
// cheap when attached" telemetry contract on the hottest path: the
// compiled engine over the 1K acceptance universe.  "off" runs with no
// registry attached (one nil pointer load per batch); "on" attaches a
// registry with no progress callback, so every batch also flushes its
// worker-local counters into the padded atomic slots.  The two
// sub-benches should stay within ~2% of each other.
func BenchmarkTelemetryOverhead(b *testing.B) {
	const n = 1024
	u := fault.Universe{Name: "saf+cf", Faults: append(
		fault.SingleCellUniverse(n, 1),
		fault.CouplingUniverse(fault.AdjacentPairs(n))...)}
	mk := func() ram.Memory { return ram.NewBOM(n) }
	r := coverage.MarchRunner(march.MarchCMinus(), nil)
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := coverage.CampaignEngine(r, u, mk, 0, coverage.EngineCompiled)
			sink = uint64(res.Detected)
		}
		b.ReportMetric(float64(u.Len())*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
	}
	b.Run(fmt.Sprintf("n=%d/off", n), func(b *testing.B) {
		telemetry.SetActive(nil)
		run(b)
	})
	b.Run(fmt.Sprintf("n=%d/on", n), func(b *testing.B) {
		telemetry.SetActive(telemetry.NewRegistry())
		defer telemetry.SetActive(nil)
		run(b)
	})
}

var sink uint64

// --- E14: ablation — ring vs plain iterations ---

func BenchmarkTableRingMode(b *testing.B) {
	printTable("e14", func() *report.Table { return ExperimentRingMode([]int{64, 255, 257}) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentRingMode([]int{32})
	}
}

// --- E15: ablation — MISR-compressed verify ---

func BenchmarkTableMISRCompression(b *testing.B) {
	printTable("e15", func() *report.Table { return ExperimentMISR(64) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentMISR(24)
	}
}

// --- E16: scaled — BIST signature aliasing ---

func BenchmarkTableMISRAliasing(b *testing.B) {
	printTable("e16", func() *report.Table {
		return ExperimentMISRAliasing([]int{64, 256}, []int{1, 2, 4, 8, 16})
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentMISRAliasing([]int{32}, []int{4})
	}
}

// --- E17: streaming — exhaustive coupling escapes ---

func BenchmarkTableExhaustiveCoupling(b *testing.B) {
	printTable("e17", func() *report.Table { return ExperimentExhaustiveCoupling([]int{48, 96}, 64) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ExperimentExhaustiveCoupling([]int{32}, 32)
	}
}

// BenchmarkCampaignObserver measures the signature-observer replay
// path: the E16 BIST workload (π-walk + read-back compressed into a
// 4-bit SISR, detection purely by signature compare) over a
// bit-oriented SAF+CF universe, per engine.  The compiled engine folds
// the 64-machine accumulator difference once per word op, so the
// observer costs O(w) XORs on top of the width-1 kernel.
func BenchmarkCampaignObserver(b *testing.B) {
	const n = 1024
	u := fault.Universe{Name: "saf+cf", Faults: append(
		fault.SingleCellUniverse(n, 1),
		fault.CouplingUniverse(fault.SamplePairs(n, 1, 512, 3))...)}
	mk := func() ram.Memory { return ram.NewBOM(n) }
	r := sisrRunner{w: 4}
	for _, engine := range []coverage.Engine{coverage.EngineOracle, coverage.EngineBitParallel, coverage.EngineCompiled} {
		b.Run(fmt.Sprintf("n=%d/%s", n, engine), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := coverage.CampaignEngine(r, u, mk, 0, engine)
				sink = uint64(res.Detected)
			}
			b.ReportMetric(float64(u.Len())*float64(b.N)/b.Elapsed().Seconds(), "faults/s")
		})
	}
}
