// Package bist models the built-in self-test hardware that the paper's
// §4 adds to a RAM for pseudo-ring testing: converted address counters,
// the constant-multiplier XOR network, the word-wide XOR adders, the
// Fin/Fin* comparator and a small control FSM.
//
// The package provides two things:
//
//   - a gate-equivalent Budget for the PRT logic, used to reproduce the
//     paper's claim that the hardware overhead relative to the memory
//     capacity is below 2^-20 for large arrays (experiment E7), and
//   - a cycle-stepped Controller FSM that drives a ram.Memory through a
//     π-test iteration one clock at a time, demonstrating that the
//     logic the budget counts is sufficient to run the test.
package bist

import (
	"fmt"
	"math"

	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/xorsynth"
)

// GateModel converts structural elements into gate equivalents (a
// 2-input NAND counts as 1).  The defaults follow common standard-cell
// accounting: a D flip-flop ≈ 4 gates, an XOR ≈ 2, a ROM bit ≈ 0.25.
type GateModel struct {
	FF     float64
	XOR    float64
	Gate   float64 // generic 2-input gate
	ROMBit float64
}

// DefaultGateModel returns the accounting constants used by the
// experiments.
func DefaultGateModel() GateModel {
	return GateModel{FF: 4, XOR: 2, Gate: 1, ROMBit: 0.25}
}

// Budget itemises the PRT BIST logic.
type Budget struct {
	FFs      int // flip-flops (counters, state, control)
	XORs     int // XOR gates (multipliers, adders, comparator)
	Gates    int // other combinational gates (OR tree, FSM decode)
	ROMBits  int // seed / expected-signature storage
	Ports    int
	WordBits int
}

// GateEquivalents returns the budget weighted by the model.
func (b Budget) GateEquivalents(m GateModel) float64 {
	return float64(b.FFs)*m.FF + float64(b.XORs)*m.XOR +
		float64(b.Gates)*m.Gate + float64(b.ROMBits)*m.ROMBit
}

// String gives a one-line summary.
func (b Budget) String() string {
	return fmt.Sprintf("FF=%d XOR=%d gates=%d ROM=%db", b.FFs, b.XORs, b.Gates, b.ROMBits)
}

// Params describes the memory and automaton the BIST is built for.
type Params struct {
	// N is the number of cells, M the word width.
	N, M int
	// Gen is the automaton; its taps fix the multiplier network.
	Gen lfsr.GenPoly
	// Ports is the number of memory ports (1 for the O(3n) scheme, 2
	// for the Fig. 2 scheme — the paper converts *the existing address
	// registers* into counters, so extra ports do not add counters,
	// only the second counter's increment logic).
	Ports int
	// Iterations is the number of π-iterations the controller sequences
	// (it only affects the iteration counter width).
	Iterations int
}

// ForPRT itemises the PRT BIST for the given parameters, synthesising
// the constant multipliers with CSE (the paper's §2 "optimal scheme of
// multiplication by a constant").
func ForPRT(p Params) (Budget, error) {
	if p.N < 2 || p.M < 1 {
		return Budget{}, fmt.Errorf("bist: bad geometry %dx%d", p.N, p.M)
	}
	if p.Gen.Field == nil || p.Gen.Field.M() != p.M {
		return Budget{}, fmt.Errorf("bist: generator field does not match word width")
	}
	if p.Ports < 1 {
		return Budget{}, fmt.Errorf("bist: ports must be >= 1")
	}
	if p.Iterations < 1 {
		p.Iterations = 3
	}
	k := p.Gen.K()
	addrBits := bitsFor(p.N)

	var b Budget
	b.Ports = p.Ports
	b.WordBits = p.M

	// Address counters: the paper converts the existing address
	// registers into counters — the *overhead* is the increment logic
	// (one half-adder per bit) plus one offset register per automaton
	// stage to address the k trailing cells.
	b.Gates += p.Ports * addrBits // increment carry chain
	b.FFs += k * addrBits         // trailing-cell address offsets

	// Constant multipliers ×a_j, CSE-optimised XOR-only networks.
	f := p.Gen.Field
	for _, a := range p.Gen.Taps() {
		nl := xorsynth.CSE(f.ConstMulMatrix(gf.Elem(a)))
		b.XORs += nl.GateCount()
	}
	// Word adders combining the k products (k-1 adds of m XORs each).
	if k > 1 {
		b.XORs += (k - 1) * p.M
	}
	// Data staging: in the single-port scheme the k read operands are
	// staged in registers; the dual-port scheme stages one.
	stage := k
	if p.Ports >= 2 {
		stage = 1
	}
	b.FFs += stage * p.M

	// Comparator Fin vs Fin*: k·m XNORs plus an OR reduction tree.
	b.XORs += k * p.M
	if k*p.M > 1 {
		b.Gates += k*p.M - 1
	}

	// Seed and expected-signature storage for every iteration.
	b.ROMBits += 2 * p.Iterations * k * p.M

	// Control: FSM state register, iteration counter, handshake decode.
	b.FFs += 4 + bitsFor(p.Iterations)
	b.Gates += 16

	return b, nil
}

// OverheadRatio returns gate-equivalents divided by the memory bit
// capacity n*m — the paper's "ponder of the hardware overhead in
// comparison with the memory capacity".
func OverheadRatio(b Budget, n, m int, gm GateModel) float64 {
	return b.GateEquivalents(gm) / (float64(n) * float64(m))
}

// Log2Ratio returns log2 of the overhead ratio (the paper states the
// bound as 2^-20).
func Log2Ratio(b Budget, n, m int, gm GateModel) float64 {
	return math.Log2(OverheadRatio(b, n, m, gm))
}

func bitsFor(n int) int {
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}
