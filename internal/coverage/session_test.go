package coverage

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/sim"
)

// The session property (the PR's acceptance criterion): fault dropping
// is semantics-preserving.  For every replay-safe runner pair and
// universe in the regression set, on all three engines:
//
//  1. an undropped session's per-runner Results (and verdict vectors)
//     are byte-identical to independent CampaignEngine runs;
//  2. a dropped session never changes the verdict of any fault it
//     simulates — every non-dropped verdict equals the independent
//     run's verdict, and every dropped fault was detected by an
//     earlier-executed stage;
//  3. the session-level cumulative result is byte-identical with
//     dropping on or off, in both execution orders.

func sessionRunnerPairs() [][]Runner {
	gen := prt.PaperWOMConfig().Gen
	bgs := march.DataBackgrounds(4)
	return [][]Runner{
		{MarchRunner(march.MATSPlus(), bgs), MarchRunner(march.MarchCMinus(), bgs)},
		{PRTRunner(prt.StandardScheme3(gen).SignatureOnly()), PRTRunner(prt.StandardScheme3(gen))},
		{MarchRunner(march.MarchX(), bgs), PRTRunner(prt.StandardScheme4(gen))},
		{BISTRunner(prt.PaperWOMScheme3(), 0), PRTRunner(prt.StandardScheme3(gen))},
	}
}

func assertSessionSemantics(t *testing.T, runners []Runner, u fault.Universe, mk MemoryFactory, engine Engine) {
	t.Helper()
	plan := func(rs []Runner, drop bool, order Order) *Session {
		p := Plan{
			Runners: rs, Universe: u, Memory: mk, Workers: 4,
			Engine: engine, Drop: drop, Order: order, KeepVectors: true,
		}
		return p.Run()
	}
	indep := make([]Result, len(runners))
	indepVec := make([][]Verdict, len(runners))
	for i, r := range runners {
		s := plan([]Runner{r}, false, OrderAsGiven)
		indep[i] = s.Results[0]
		indep[i].Stats = nil
		indepVec[i] = s.Vectors[0]
	}

	// 1. Undropped session == independent campaigns, byte for byte.
	off := plan(runners, false, OrderAsGiven)
	for i, r := range runners {
		got := off.Results[i]
		got.Stats = nil
		if !reflect.DeepEqual(got, indep[i]) {
			t.Errorf("%s on %s [%s]: undropped session differs from independent run\nsession: %+v\nindep:   %+v",
				r.Name(), u.Name, engine, got, indep[i])
		}
		if !reflect.DeepEqual(off.Vectors[i], indepVec[i]) {
			t.Errorf("%s on %s [%s]: undropped verdict vector differs from independent run", r.Name(), u.Name, engine)
		}
	}

	// 2+3. Dropping preserves simulated verdicts and the cumulative
	// result, whatever the execution order.
	for _, order := range []Order{OrderAsGiven, OrderCheapestFirst} {
		on := plan(runners, true, order)
		if !reflect.DeepEqual(on.Cumulative, off.Cumulative) {
			t.Errorf("%s [%s, order %d]: cumulative result changed under dropping\ndrop: %+v\nfull: %+v",
				u.Name, engine, order, on.Cumulative, off.Cumulative)
		}
		execPos := make(map[int]int, len(on.Stages))
		for pos, st := range on.Stages {
			execPos[st.RunnerIndex] = pos
		}
		for k, r := range runners {
			vec := on.Vectors[k]
			simulated, detected := 0, 0
			for i, verdict := range vec {
				switch verdict {
				case VerdictDropped:
					justified := false
					for j := range runners {
						if execPos[j] < execPos[k] && on.Vectors[j][i] == VerdictDetected {
							justified = true
							break
						}
					}
					if !justified {
						t.Fatalf("%s on %s [%s]: fault %d dropped without an earlier detection", r.Name(), u.Name, engine, i)
					}
				default:
					simulated++
					if verdict == VerdictDetected {
						detected++
					}
					if verdict != indepVec[k][i] {
						t.Fatalf("%s on %s [%s]: dropping changed the verdict of fault %d (session %d, independent %d)",
							r.Name(), u.Name, engine, i, verdict, indepVec[k][i])
					}
				}
			}
			if res := on.Results[k]; res.Total != simulated || res.Detected != detected {
				t.Errorf("%s on %s [%s]: dropped Result tallies %d/%d, vector says %d/%d",
					r.Name(), u.Name, engine, res.Detected, res.Total, detected, simulated)
			}
		}
	}
}

func TestSessionDroppingSemanticsPreserving(t *testing.T) {
	engines := []Engine{EngineOracle, EngineBitParallel, EngineCompiled}
	universes := womUniverses(16, 4)
	if testing.Short() {
		universes = universes[:2] // single-cell + stuck-open keep -race fast
	}
	for _, engine := range engines {
		for _, runners := range sessionRunnerPairs() {
			for _, u := range universes {
				assertSessionSemantics(t, runners, u, womFactory(16, 4), engine)
			}
		}
	}
}

// TestSessionCheapestFirstOrdersByCleanOps: the planner's schedule is
// ascending clean-run length while Results stay in runner order.
func TestSessionCheapestFirstOrdersByCleanOps(t *testing.T) {
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(16, 1)}
	runners := []Runner{
		MarchRunner(march.MarchB(), nil),      // 17n
		MarchRunner(march.MATSPlus(), nil),    // 5n
		MarchRunner(march.MarchCMinus(), nil), // 10n
	}
	p := Plan{Runners: runners, Universe: u, Memory: bomFactory(16), Workers: 2, Order: OrderCheapestFirst}
	s := p.Run()
	if len(s.Stages) != 3 {
		t.Fatalf("%d stages", len(s.Stages))
	}
	for i := 1; i < len(s.Stages); i++ {
		prev := s.Results[s.Stages[i-1].RunnerIndex].OpsCleanRun
		cur := s.Results[s.Stages[i].RunnerIndex].OpsCleanRun
		if prev > cur {
			t.Errorf("stage %d (%d ops) ran before stage %d (%d ops)", i-1, prev, i, cur)
		}
	}
	if s.Results[0].Runner != "March B" || s.Results[1].Runner != "MATS+" {
		t.Errorf("Results not in runner order: %s, %s", s.Results[0].Runner, s.Results[1].Runner)
	}
}

// TestSessionStagesReportSurvivors: the stage report carries the
// session-ordered coverage progression, and under dropping each
// stage's Entered equals the previous stage's Survivors.
func TestSessionStagesReportSurvivors(t *testing.T) {
	const n = 24
	u := fault.StandardUniverse(n, 1, 6, 9)
	runners := []Runner{
		MarchRunner(march.MATSPlus(), nil),
		MarchRunner(march.MarchCMinus(), nil),
	}
	p := Plan{Runners: runners, Universe: u, Memory: bomFactory(n), Workers: 2, Drop: true}
	s := p.Run()
	if s.Stages[0].Entered != u.Len() {
		t.Errorf("first stage entered %d, want the full universe %d", s.Stages[0].Entered, u.Len())
	}
	if s.Stages[1].Entered != s.Stages[0].Survivors {
		t.Errorf("stage 2 entered %d, stage 1 left %d survivors", s.Stages[1].Entered, s.Stages[0].Survivors)
	}
	if s.Stages[0].Survivors >= u.Len() {
		t.Error("MATS+ dropped nothing — dropping is not happening")
	}
	if got := s.Stages[len(s.Stages)-1].Survivors; got != u.Len()-s.Cumulative.Detected {
		t.Errorf("final survivors %d != universe %d - cumulative %d", got, u.Len(), s.Cumulative.Detected)
	}
	if s.FormatStages() == "" {
		t.Error("empty stage format")
	}
}

// TestSessionProgramCache: a second run of the same plan hits the
// cache (no re-recording) and returns byte-identical results.
func TestSessionProgramCache(t *testing.T) {
	const n = 16
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 4)}
	cache := sim.NewProgramCache()
	gen := prt.PaperWOMConfig().Gen
	p := Plan{
		Runners: []Runner{
			MarchRunner(march.MarchCMinus(), march.DataBackgrounds(4)),
			PRTRunner(prt.StandardScheme3(gen)),
		},
		Universe: u, Memory: womFactory(n, 4), Workers: 2, Cache: cache,
	}
	first := p.Run()
	for _, st := range first.Stages {
		if st.CacheHit {
			t.Errorf("stage %s hit a cold cache", st.Runner)
		}
	}
	second := p.Run()
	for _, st := range second.Stages {
		if !st.CacheHit {
			t.Errorf("stage %s missed a warm cache", st.Runner)
		}
	}
	for i := range first.Results {
		first.Results[i].Stats, second.Results[i].Stats = nil, nil
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Error("cached session results differ from the recording run")
	}
	if hits, _, entries := cacheStats(cache); hits < 2 || entries != 2 {
		t.Errorf("cache stats: hits=%d entries=%d", hits, entries)
	}
}

func cacheStats(c *sim.ProgramCache) (uint64, uint64, int) { return c.Stats() }

// TestSessionCacheKeyDistinguishesConfigurations is the E10 trap: two
// schemes sharing a display name but differing in configuration must
// not share a cached program.
func TestSessionCacheKeyDistinguishesConfigurations(t *testing.T) {
	const n = 16
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 1)}
	f1 := prt.PaperBOMConfig().Gen
	a := prt.StandardScheme3(f1)
	b := prt.StandardScheme3(f1)
	it0 := b.Iters[0]
	it0.Trajectory = prt.Descending
	b.Iters[0] = it0
	// Same name, different schedule.
	if a.Name != b.Name {
		t.Fatal("test premise broken: names differ")
	}
	ra, rb := PRTRunner(a), PRTRunner(b)
	ka := ra.(TraceKeyer).TraceKey()
	kb := rb.(TraceKeyer).TraceKey()
	if ka == kb {
		t.Fatal("TraceKey failed to distinguish configurations sharing a name")
	}
	cache := sim.NewProgramCache()
	mk := bomFactory(n)
	resA := (&Plan{Runners: []Runner{ra}, Universe: u, Memory: mk, Workers: 2, Cache: cache}).Run().Results[0]
	resB := (&Plan{Runners: []Runner{rb}, Universe: u, Memory: mk, Workers: 2, Cache: cache}).Run().Results[0]
	wantB := CampaignEngine(rb, u, mk, 2, EngineCompiled)
	resB.Stats, wantB.Stats, resA.Stats = nil, nil, nil
	if !reflect.DeepEqual(resB, wantB) {
		t.Errorf("cached campaign corrupted by a name collision:\n got %+v\nwant %+v", resB, wantB)
	}
	_ = resA
}

// TestCompareBackwardCompatible: with the defaults, Compare's rows are
// byte-identical to independent Campaigns (the experiment tables'
// contract).
func TestCompareBackwardCompatible(t *testing.T) {
	const n = 16
	u := fault.StandardUniverse(n, 1, 4, 2)
	runners := []Runner{
		MarchRunner(march.MATSPlus(), nil),
		MarchRunner(march.MarchY(), nil),
	}
	got := Compare(runners, u, bomFactory(n), 2)
	for i, r := range runners {
		want := Campaign(r, u, bomFactory(n), 2)
		a, b := got[i], want
		a.Stats, b.Stats = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("Compare[%d] differs from Campaign:\n got %+v\nwant %+v", i, a, b)
		}
	}
}

// TestSessionObserverFiresForMultiRunnerPlans only.
func TestSessionObserverFiresForMultiRunnerPlans(t *testing.T) {
	var seen []*Session
	SetSessionObserver(func(_ *Plan, s *Session) { seen = append(seen, s) })
	defer SetSessionObserver(nil)
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(8, 1)}
	Campaign(MarchRunner(march.MATSPlus(), nil), u, bomFactory(8), 1)
	if len(seen) != 0 {
		t.Fatal("observer fired for a single-runner campaign")
	}
	Compare([]Runner{
		MarchRunner(march.MATSPlus(), nil),
		MarchRunner(march.MarchCMinus(), nil),
	}, u, bomFactory(8), 1)
	if len(seen) != 1 {
		t.Fatalf("observer fired %d times for one comparison session", len(seen))
	}
}
