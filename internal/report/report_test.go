package report

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tb := New("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 22.5)
	out := tb.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("line count %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "alpha  1") {
		t.Errorf("row misaligned: %q", lines[3])
	}
	if !strings.Contains(lines[4], "22.50") {
		t.Errorf("float not formatted: %q", lines[4])
	}
}

func TestRenderNoTitle(t *testing.T) {
	tb := New("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "##") {
		t.Error("unexpected title marker")
	}
}

func TestCSV(t *testing.T) {
	tb := New("t", "a", "b")
	tb.AddRowf("plain", "with,comma")
	tb.AddRowf("quo\"te", "multi\nline")
	var b strings.Builder
	tb.CSV(&b)
	out := b.String()
	if !strings.Contains(out, "a,b") {
		t.Error("missing header row")
	}
	if !strings.Contains(out, "\"with,comma\"") {
		t.Error("comma cell not quoted")
	}
	if !strings.Contains(out, "\"quo\"\"te\"") {
		t.Error("quote not escaped")
	}
}

func TestJSONL(t *testing.T) {
	tb := New("E6 — \"quoted\"", "algorithm", "coverage")
	tb.AddRowf("March C-", "100.0%")
	tb.AddRowf("PRT-3", "99.8%", "spurious-extra-cell")
	tb.AddRowf("short")
	var b strings.Builder
	tb.JSONL(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("line count %d: %q", len(lines), b.String())
	}
	for i, line := range lines {
		var obj map[string]string
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d not valid JSON: %v (%q)", i, err, line)
		}
		if obj["table"] != `E6 — "quoted"` {
			t.Errorf("line %d table = %q", i, obj["table"])
		}
	}
	var first map[string]string
	_ = json.Unmarshal([]byte(lines[0]), &first)
	if first["algorithm"] != "March C-" || first["coverage"] != "100.0%" {
		t.Errorf("row fields wrong: %v", first)
	}
	var second map[string]string
	_ = json.Unmarshal([]byte(lines[1]), &second)
	if len(second) != 3 { // table + 2 headers; the extra cell has no key
		t.Errorf("extra cell leaked: %v", second)
	}
	var third map[string]string
	_ = json.Unmarshal([]byte(lines[2]), &third)
	if _, ok := third["coverage"]; ok {
		t.Errorf("missing cell invented a value: %v", third)
	}
}

// TestCSVRoundTrip: a standards-compliant CSV reader must recover
// every cell byte for byte, whatever separators, quotes or line breaks
// the cells contain — the emitter's actual contract, stronger than
// spot-checking the quoting.
func TestCSVRoundTrip(t *testing.T) {
	tb := New("t", "a", "b", "c")
	rows := [][]string{
		{"plain", "with,comma", "tr,icky\"end"},
		{"quo\"te", "multi\nline", "cr\rcell"},
		{"", "\"\"", ",\n\r\","},
	}
	for _, r := range rows {
		tb.AddRowf(r...)
	}
	var b strings.Builder
	tb.CSV(&b)
	rd := csv.NewReader(strings.NewReader(b.String()))
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v\n%q", err, b.String())
	}
	want := append([][]string{{"a", "b", "c"}}, rows...)
	if len(got) != len(want) {
		t.Fatalf("parsed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			cell := want[i][j]
			// encoding/csv normalizes \r\n inside quoted cells to \n; a
			// lone \r survives only as part of that normalization, so
			// compare against the normalized form.
			cell = strings.ReplaceAll(cell, "\r\n", "\n")
			if got[i][j] != cell {
				t.Errorf("record %d cell %d: %q, want %q", i, j, got[i][j], cell)
			}
		}
	}
}

// TestJSONLSpecialCharacters: quotes, backslashes, newlines and other
// control characters in cells and headers must survive a JSON parse.
func TestJSONLSpecialCharacters(t *testing.T) {
	tb := New("title \"q\" \\ \n end", "col,1", "col\n2")
	tb.AddRowf("a\"b\\c", "line1\nline2\ttab\rcr")
	var b strings.Builder
	tb.JSONL(&b)
	line := strings.TrimSuffix(b.String(), "\n")
	if strings.Contains(line, "\n") {
		t.Fatalf("JSONL record spans lines: %q", line)
	}
	var obj map[string]string
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		t.Fatalf("emitted JSONL does not parse: %v (%q)", err, line)
	}
	if obj["table"] != "title \"q\" \\ \n end" {
		t.Errorf("title corrupted: %q", obj["table"])
	}
	if obj["col,1"] != "a\"b\\c" || obj["col\n2"] != "line1\nline2\ttab\rcr" {
		t.Errorf("cells corrupted: %v", obj)
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 2) != "50.0%" {
		t.Errorf("Percent = %q", Percent(1, 2))
	}
	if Percent(3, 0) != "n/a" {
		t.Errorf("Percent(3,0) = %q", Percent(3, 0))
	}
	if Percent(7640, 7640) != "100.0%" {
		t.Errorf("full percent = %q", Percent(7640, 7640))
	}
}

func TestRowsShorterThanHeaders(t *testing.T) {
	tb := New("t", "a", "b", "c")
	tb.AddRowf("only")
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Error("short row dropped")
	}
}
