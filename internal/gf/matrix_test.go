package gf

import (
	"testing"
	"testing/quick"
)

func TestIdentityMatrix(t *testing.T) {
	id := IdentityMatrix(4)
	for x := uint32(0); x < 16; x++ {
		if id.Apply(x) != x {
			t.Fatalf("identity.Apply(%x) = %x", x, id.Apply(x))
		}
	}
	if id.Rank() != 4 || !id.Invertible() {
		t.Errorf("identity rank/invertibility wrong")
	}
}

func TestBitMatrixGetSet(t *testing.T) {
	m := NewBitMatrix(3)
	m.Set(0, 2, 1)
	m.Set(1, 1, 1)
	m.Set(2, 0, 1)
	if m.Get(0, 2) != 1 || m.Get(0, 0) != 0 {
		t.Errorf("Get/Set broken")
	}
	// Anti-diagonal reverses bit order: 0b001 -> 0b100.
	if m.Apply(0b001) != 0b100 || m.Apply(0b110) != 0b011 {
		t.Errorf("anti-diagonal Apply wrong")
	}
	m.Set(0, 2, 0)
	if m.Get(0, 2) != 0 {
		t.Errorf("Set clear broken")
	}
}

func TestMatrixMulMatchesComposition(t *testing.T) {
	f := NewField(4)
	a := f.ConstMulMatrix(7)
	b := f.ConstMulMatrix(5)
	ab := a.Mul(b)
	for x := uint32(0); x < 16; x++ {
		if ab.Apply(x) != a.Apply(b.Apply(x)) {
			t.Fatalf("matrix product != composition at %x", x)
		}
	}
	// Matrix of 7*5 = Mul(7,5) must equal the product matrix.
	c := f.ConstMulMatrix(f.Mul(7, 5))
	if !ab.Equal(c) {
		t.Errorf("M_7 * M_5 != M_{7*5}")
	}
}

func TestMatrixAdd(t *testing.T) {
	f := NewField(4)
	a := f.ConstMulMatrix(3)
	b := f.ConstMulMatrix(5)
	sum := a.Add(b)
	c := f.ConstMulMatrix(3 ^ 5) // additivity of the representation
	if !sum.Equal(c) {
		t.Errorf("M_3 + M_5 != M_{3+5}")
	}
}

func TestConstMulMatrixAgainstField(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8} {
		f := NewField(m)
		for c := Elem(0); c <= f.Mask(); c++ {
			mat := f.ConstMulMatrix(c)
			for x := Elem(0); x <= f.Mask(); x++ {
				if got, want := Elem(mat.Apply(uint32(x))), f.Mul(c, x); got != want {
					t.Fatalf("GF(2^%d): M_%x(%x) = %x, want %x", m, c, x, got, want)
				}
			}
			if m > 4 && c > 20 {
				break // spot-check larger fields
			}
		}
	}
}

func TestConstMulMatrixInvertibility(t *testing.T) {
	f := NewField(4)
	if f.ConstMulMatrix(0).Rank() != 0 {
		t.Errorf("M_0 should be the zero matrix")
	}
	for c := Elem(1); c < 16; c++ {
		if !f.ConstMulMatrix(c).Invertible() {
			t.Errorf("M_%x should be invertible (nonzero constant)", c)
		}
	}
}

func TestFrobeniusMatrix(t *testing.T) {
	f := NewField(8)
	fr := f.FrobeniusMatrix()
	for x := Elem(0); x < 256; x++ {
		if Elem(fr.Apply(uint32(x))) != f.Mul(x, x) {
			t.Fatalf("Frobenius matrix wrong at %x", x)
		}
	}
	// Frobenius iterated m times is the identity.
	p := fr
	for i := 1; i < f.M(); i++ {
		p = p.Mul(fr)
	}
	if !p.Equal(IdentityMatrix(f.M())) {
		t.Errorf("Frobenius^m != identity")
	}
}

func TestRank(t *testing.T) {
	m := NewBitMatrix(3)
	// Rows: 110, 011, 101 -> row1+row2 = 101 = row3, rank 2.
	m.Rows[0] = 0b011
	m.Rows[1] = 0b110
	m.Rows[2] = 0b101
	if got := m.Rank(); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
	if m.Invertible() {
		t.Errorf("singular matrix reported invertible")
	}
}

func TestMatrixString(t *testing.T) {
	id := IdentityMatrix(2)
	if got := id.String(); got != "10\n01" {
		t.Errorf("String() = %q", got)
	}
}

func TestElemFromBits(t *testing.T) {
	f := NewField(4)
	if _, err := f.ElemFromBits(0xF); err != nil {
		t.Errorf("0xF should be valid in GF(16)")
	}
	if _, err := f.ElemFromBits(0x10); err == nil {
		t.Errorf("0x10 should be rejected in GF(16)")
	}
}

func TestQuickApplyLinear(t *testing.T) {
	f := NewField(8)
	mat := f.ConstMulMatrix(0xB7)
	prop := func(a, b uint32) bool {
		x, y := a&0xFF, b&0xFF
		return mat.Apply(x^y) == mat.Apply(x)^mat.Apply(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
