package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseLineBenchResult(t *testing.T) {
	e, ok := parseLine("BenchmarkCampaign/n=1024/oracle-8  1  123456 ns/op  9.5e+04 faults/s  160 B/op  3 allocs/op")
	if !ok {
		t.Fatal("benchmark line not parsed")
	}
	if e.Name != "Campaign/n=1024/oracle" {
		t.Errorf("name = %q, want Campaign/n=1024/oracle", e.Name)
	}
	if e.Iterations != 1 {
		t.Errorf("iterations = %d", e.Iterations)
	}
	if e.Metrics["ns/op"] != 123456 {
		t.Errorf("ns/op = %v", e.Metrics["ns/op"])
	}
	if e.Metrics["faults/s"] != 9.5e4 {
		t.Errorf("faults/s = %v, scientific notation mis-parsed", e.Metrics["faults/s"])
	}
	if e.Metrics["allocs/op"] != 3 {
		t.Errorf("allocs/op = %v", e.Metrics["allocs/op"])
	}
}

func TestParseLineSuffixStripping(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		// The plain GOMAXPROCS suffix goes.
		{"BenchmarkCampaign-8  10  5 ns/op", "Campaign"},
		// A sub-benchmark whose last segment legitimately ends in
		// -<digits> keeps it once the GOMAXPROCS suffix is stripped.
		{"BenchmarkObserver/w-2-8  10  5 ns/op", "Observer/w-2"},
		// A -<digits> tail in an earlier segment is part of the name.
		{"BenchmarkFoo-4/bar  10  5 ns/op", "Foo-4/bar"},
		// A last segment that is nothing but -<digits> is a name, not a
		// GOMAXPROCS suffix (go test never emits a bare dash segment).
		{"BenchmarkFoo/-8  10  5 ns/op", "Foo/-8"},
		// Non-numeric tails survive.
		{"BenchmarkFoo/bar-x  10  5 ns/op", "Foo/bar-x"},
		// Scientific notation in the iteration position is rejected,
		// not mis-parsed.
	}
	for _, tc := range cases {
		e, ok := parseLine(tc.in)
		if !ok {
			t.Errorf("%q: not parsed", tc.in)
			continue
		}
		if e.Name != tc.want {
			t.Errorf("%q: name = %q, want %q", tc.in, e.Name, tc.want)
		}
	}
}

func TestMissingNames(t *testing.T) {
	mk := func(names ...string) []Entry {
		out := make([]Entry, len(names))
		for i, n := range names {
			out[i] = Entry{Name: n}
		}
		return out
	}
	baseline := mk("Campaign/n=1024/oracle", "Session/n=1024/session+drop", "CampaignPRT/n=256/compiled")
	// Identical sets: clean.
	missing, added := missingNames(baseline, mk("CampaignPRT/n=256/compiled", "Session/n=1024/session+drop", "Campaign/n=1024/oracle"))
	if len(missing) != 0 || len(added) != 0 {
		t.Fatalf("identical sets: missing=%v added=%v", missing, added)
	}
	// A rename shows up as one missing + one added, sorted.
	missing, added = missingNames(baseline, mk("Campaign/n=1024/oracle", "Session/n=1024/renamed", "CampaignPRT/n=256/compiled"))
	if !reflect.DeepEqual(missing, []string{"Session/n=1024/session+drop"}) {
		t.Errorf("missing = %v", missing)
	}
	if !reflect.DeepEqual(added, []string{"Session/n=1024/renamed"}) {
		t.Errorf("added = %v", added)
	}
	// A pure addition is allowed (no missing names).
	missing, added = missingNames(baseline, append(mk("Extra/new"), baseline...))
	if len(missing) != 0 || !reflect.DeepEqual(added, []string{"Extra/new"}) {
		t.Errorf("pure addition: missing=%v added=%v", missing, added)
	}
}

func TestCompareEntries(t *testing.T) {
	old := []Entry{
		{Name: "Campaign/n=1024/compiled", Metrics: map[string]float64{"ns/op": 1000, "faults/s": 2e6, "zero": 0}},
		{Name: "Gone/only-in-old", Metrics: map[string]float64{"ns/op": 5}},
	}
	cur := []Entry{
		// Out of sorted order on purpose: the report must sort by name.
		{Name: "New/only-in-current", Metrics: map[string]float64{"ns/op": 7}},
		{Name: "Campaign/n=1024/compiled", Metrics: map[string]float64{"ns/op": 1100, "faults/s": 1.8e6, "zero": 3, "allocs/op": 2}},
	}
	lines := compareEntries(old, cur)
	want := []string{
		"  Campaign/n=1024/compiled: faults/s -10.0%, ns/op +10.0%, zero n/a",
	}
	if !reflect.DeepEqual(lines, want) {
		t.Errorf("compareEntries = %q, want %q", lines, want)
	}
	// No shared names at all: an empty report, not a crash.
	if lines := compareEntries(old[1:], cur[:1]); len(lines) != 0 {
		t.Errorf("disjoint sets: %q", lines)
	}
}

func TestParseThreshold(t *testing.T) {
	for in, want := range map[string]float64{
		"0.5": 0.5, "50%": 0.5, "1": 1, "100%": 1, "0.02": 0.02, "2%": 0.02,
	} {
		got, err := parseThreshold(in)
		if err != nil || got != want {
			t.Errorf("parseThreshold(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "0", "0%", "-0.5", "1.5", "150%", "abc", "%"} {
		if _, err := parseThreshold(in); err == nil {
			t.Errorf("parseThreshold(%q): expected an error", in)
		}
	}
}

func TestRegressions(t *testing.T) {
	old := []Entry{
		{Name: "A", Metrics: map[string]float64{"faults/s": 1e6}},
		{Name: "B", Metrics: map[string]float64{"faults/s": 1e6}},
		{Name: "C", Metrics: map[string]float64{"faults/s": 1e6}},
		{Name: "NoRate", Metrics: map[string]float64{"ns/op": 10}},
		{Name: "ZeroOld", Metrics: map[string]float64{"faults/s": 0}},
	}
	cur := []Entry{
		// Sorted-output check: listed out of order on purpose.
		{Name: "C", Metrics: map[string]float64{"faults/s": 2e6}},  // improvement
		{Name: "A", Metrics: map[string]float64{"faults/s": 3e5}},  // -70%: over a 50% limit
		{Name: "B", Metrics: map[string]float64{"faults/s": 6e5}},  // -40%: under it
		{Name: "NoRate", Metrics: map[string]float64{"ns/op": 99}}, // no faults/s either side
		{Name: "ZeroOld", Metrics: map[string]float64{"faults/s": 5}},
		{Name: "OnlyNew", Metrics: map[string]float64{"faults/s": 1}},
	}
	lines := regressions(old, cur, 0.5, nil)
	if len(lines) != 1 || !strings.Contains(lines[0], "A:") || !strings.Contains(lines[0], "-70.0%") {
		t.Errorf("regressions = %q, want exactly A at -70.0%%", lines)
	}
	// A tighter threshold catches B too; exactly-at-threshold does not
	// trip (the gate is strictly greater-than).
	if lines := regressions(old, cur, 0.3, nil); len(lines) != 2 {
		t.Errorf("threshold 0.3: %q, want A and B", lines)
	}
	if lines := regressions(old, cur, 0.4, nil); len(lines) != 1 {
		t.Errorf("threshold 0.4 (B sits exactly at -40%%): %q, want only A", lines)
	}
	if lines := regressions(old, cur, 0.9, nil); len(lines) != 0 {
		t.Errorf("generous threshold: %q, want none", lines)
	}
}

func TestParsePerBench(t *testing.T) {
	rules, err := parsePerBench("Parallel/n=256=0.3,Session=40%")
	if err != nil {
		t.Fatalf("parsePerBench: %v", err)
	}
	if len(rules) != 2 || rules[0].threshold != 0.3 || rules[1].threshold != 0.4 {
		t.Fatalf("rules = %+v", rules)
	}
	// The regex keeps its own '='s: only the last one splits.
	if !rules[0].re.MatchString("CampaignParallel/n=256/sink=unordered/w=16") {
		t.Error("rule 0 regex lost its '=' (split on the wrong '=')")
	}
	if rules[0].re.MatchString("CampaignParallel/n=1024") {
		t.Error("rule 0 regex matches the wrong n")
	}
	for _, in := range []string{
		"",              // empty entry
		"NoThreshold",   // no '=' at all
		"Bench=",        // empty threshold
		"=0.5",          // empty regex
		"Bench=1.5",     // threshold out of (0, 1]
		"Bench=abc",     // non-numeric threshold
		"a(=0.5",        // regex does not compile
		"Good=0.5,Bad=", // one bad entry poisons the list
	} {
		if _, err := parsePerBench(in); err == nil {
			t.Errorf("parsePerBench(%q): expected an error", in)
		}
	}
}

func TestThresholdFor(t *testing.T) {
	rules, err := parsePerBench("Parallel=0.2,Campaign=0.7")
	if err != nil {
		t.Fatal(err)
	}
	// First match wins, even when a later rule also matches.
	if got := thresholdFor("CampaignParallel/n=256", 0.5, rules); got != 0.2 {
		t.Errorf("first-match threshold = %v, want 0.2", got)
	}
	if got := thresholdFor("Campaign/n=1024", 0.5, rules); got != 0.7 {
		t.Errorf("override threshold = %v, want 0.7", got)
	}
	// No match falls back to the global; a zero global means ungated.
	if got := thresholdFor("Session/n=1024", 0.5, rules); got != 0.5 {
		t.Errorf("fallback threshold = %v, want 0.5", got)
	}
	if got := thresholdFor("Session/n=1024", 0, rules); got != 0 {
		t.Errorf("ungated threshold = %v, want 0", got)
	}
}

func TestRegressionsPerBench(t *testing.T) {
	old := []Entry{
		{Name: "CampaignParallel/n=256/w=16", Metrics: map[string]float64{"faults/s": 1e6}},
		{Name: "Session/n=1024", Metrics: map[string]float64{"faults/s": 1e6}},
	}
	cur := []Entry{
		{Name: "CampaignParallel/n=256/w=16", Metrics: map[string]float64{"faults/s": 7e5}}, // -30%
		{Name: "Session/n=1024", Metrics: map[string]float64{"faults/s": 7e5}},              // -30%
	}
	rules, err := parsePerBench("Parallel/n=256=0.2")
	if err != nil {
		t.Fatal(err)
	}
	// The override holds Parallel to 20% while the global 50% lets the
	// same-sized Session drop pass.
	lines := regressions(old, cur, 0.5, rules)
	if len(lines) != 1 || !strings.Contains(lines[0], "CampaignParallel") {
		t.Errorf("override gate: %q, want only CampaignParallel", lines)
	}
	// Overrides without a global gate only what they match.
	lines = regressions(old, cur, 0, rules)
	if len(lines) != 1 || !strings.Contains(lines[0], "CampaignParallel") {
		t.Errorf("override-only gate: %q, want only CampaignParallel", lines)
	}
	// A loose override can also exempt a benchmark from a tight global.
	loose, err := parsePerBench("Parallel=90%")
	if err != nil {
		t.Fatal(err)
	}
	lines = regressions(old, cur, 0.2, loose)
	if len(lines) != 1 || !strings.Contains(lines[0], "Session") {
		t.Errorf("loosening override: %q, want only Session", lines)
	}
}

func TestParseLineRejectsNonBenchLines(t *testing.T) {
	for _, in := range []string{
		"",
		"PASS",
		"ok  \trepro\t1.234s",
		"goos: linux",
		"## E15 (ablation) — exact verify vs MISR-compressed verify",
		"BenchmarkBroken notanumber 5 ns/op",
		"BenchmarkNoMetrics 10",
		"BenchmarkOddFields 10 5", // metric value without a unit
	} {
		if _, ok := parseLine(in); ok {
			t.Errorf("%q: unexpectedly parsed", in)
		}
	}
}
