package markov

import (
	"fmt"
	"math"
)

// PRTModel parameterises the π-test detection chain.
type PRTModel struct {
	// M is the word width, K the automaton stage count: a random
	// surviving error state aliases the signature with probability
	// 2^-(M·K).
	M, K int
	// PExcite is the per-iteration probability that the test data
	// background excites the fault (1 for faults the "specific TDB"
	// provably excites, ~0.5 per iteration for value-conditioned
	// coupling faults under a random background).
	PExcite float64
}

// AliasProbability returns 2^-(m·k), the signature escape probability
// for an excited fault whose error reaches the comparison as a
// uniformly random nonzero state.
func (p PRTModel) AliasProbability() float64 {
	return math.Pow(2, -float64(p.M*p.K))
}

// Chain builds the 4-state absorbing chain over one π-iteration:
//
//	Dormant  -- PExcite --> Excited        (background hits the fault)
//	Excited  -- 1-alias --> Detected       (signature mismatch)
//	Excited  --   alias --> Dormant        (aliased; retry next iteration)
//	Detected, Escaped absorbing
//
// Escaped is reached only from Dormant when the model is truncated —
// the infinite-horizon chain absorbs in Detected with probability 1
// whenever PExcite > 0, which is exactly the paper's "high resolution"
// statement; finite-iteration truncation is what DetectionProbability
// quantifies.
func (p PRTModel) Chain() (*Chain, error) {
	if p.PExcite < 0 || p.PExcite > 1 {
		return nil, fmt.Errorf("markov: PExcite %g out of range", p.PExcite)
	}
	if p.M < 1 || p.K < 1 {
		return nil, fmt.Errorf("markov: bad geometry m=%d k=%d", p.M, p.K)
	}
	alias := p.AliasProbability()
	states := []string{"Dormant", "Excited", "Detected", "Escaped"}
	mat := [][]float64{
		{1 - p.PExcite, p.PExcite, 0, 0},
		{alias, 0, 1 - alias, 0},
		{0, 0, 1, 0},
		{0, 0, 0, 1},
	}
	return NewChain(states, mat)
}

// DetectionProbability returns the probability that the fault is
// detected within the given number of π-iterations, starting dormant.
// Each iteration is two chain steps (excitation, then signature).
func (p PRTModel) DetectionProbability(iterations int) (float64, error) {
	c, err := p.Chain()
	if err != nil {
		return 0, err
	}
	d := c.PointMass(c.Index("Dormant"))
	d = c.Distribution(d, 2*iterations)
	return d[c.Index("Detected")], nil
}

// IterationsFor returns the least iteration count whose detection
// probability reaches target (e.g. 0.999).  Returns 0 and an error when
// the model cannot reach the target (PExcite == 0).
func (p PRTModel) IterationsFor(target float64) (int, error) {
	if p.PExcite <= 0 {
		return 0, fmt.Errorf("markov: unreachable target with PExcite=0")
	}
	for it := 1; it <= 10000; it++ {
		d, err := p.DetectionProbability(it)
		if err != nil {
			return 0, err
		}
		if d >= target {
			return it, nil
		}
	}
	return 0, fmt.Errorf("markov: target %g not reached within 10000 iterations", target)
}

// EventualDetection returns the infinite-horizon absorption probability
// in Detected starting from Dormant (1 whenever PExcite > 0 — the
// chain's only leak is the Escaped state, which is unreachable).
func (p PRTModel) EventualDetection() (float64, error) {
	c, err := p.Chain()
	if err != nil {
		return 0, err
	}
	abs, err := c.AbsorptionProbabilities()
	if err != nil {
		return 0, err
	}
	return abs[c.Index("Dormant")][c.Index("Detected")], nil
}
