// Package gf implements the extension fields GF(2^m) used by
// word-oriented pseudo-ring testing.
//
// A Field is constructed from an irreducible modulus p(z) over GF(2)
// (see package gf2).  Field elements are represented as Elem, an
// unsigned integer whose bit j is the coefficient of z^j; the value
// therefore ranges over [0, 2^m).  For m <= 16 the field precomputes
// discrete log/antilog tables keyed to a generator, making Mul/Div/Inv
// O(1); for larger m it falls back to shift-and-add reduction.
//
// The paper's worked example is GF(2^4) with p(z) = 1 + z + z^4, which
// NewField(4) reproduces exactly.
package gf

import (
	"fmt"

	"repro/internal/gf2"
)

// Elem is an element of GF(2^m), with bit j the coefficient of z^j.
type Elem uint32

// MaxM is the largest supported extension degree.
const MaxM = 32

// tableMaxM bounds the extension degree for which log/antilog tables
// are materialised (2^16 entries of 4 bytes each is still small).
const tableMaxM = 16

// Field is a concrete GF(2^m).  The zero value is not usable; construct
// with NewField or NewFieldPoly.  A Field is immutable after
// construction and safe for concurrent use.
type Field struct {
	m    int      // extension degree
	p    gf2.Poly // irreducible modulus p(z), degree m
	mask Elem     // 2^m - 1
	gen  Elem     // a multiplicative generator (primitive element)

	// log/exp tables; nil when m > tableMaxM.
	// exp has 2*(2^m-1) entries so Mul can skip one modular reduction.
	log []uint32
	exp []Elem
}

// NewField returns GF(2^m) over the repository default modulus
// gf2.DefaultModulus(m) (a primitive polynomial, so z itself generates
// the multiplicative group).  It panics if m is outside [1, MaxM].
func NewField(m int) *Field {
	f, err := NewFieldPoly(gf2.DefaultModulus(m))
	if err != nil {
		panic(err) // unreachable: default moduli are irreducible
	}
	return f
}

// NewFieldPoly returns GF(2^m) with modulus p, where m = p.Deg().
// It returns an error if p is not irreducible or m is out of range.
func NewFieldPoly(p gf2.Poly) (*Field, error) {
	m := p.Deg()
	if m < 1 || m > MaxM {
		return nil, fmt.Errorf("gf: modulus degree %d out of range [1,%d]", m, MaxM)
	}
	if !gf2.IsIrreducible(p) {
		return nil, fmt.Errorf("gf: modulus %v is not irreducible", p)
	}
	f := &Field{m: m, p: p, mask: Elem(1)<<uint(m) - 1}
	if m <= tableMaxM {
		f.buildTables()
	}
	f.gen = f.findGenerator()
	return f, nil
}

// M returns the extension degree m.
func (f *Field) M() int { return f.m }

// Modulus returns the field modulus p(z).
func (f *Field) Modulus() gf2.Poly { return f.p }

// Size returns the number of field elements, 2^m.
func (f *Field) Size() int { return int(f.mask) + 1 }

// Mask returns 2^m - 1, the all-ones element.
func (f *Field) Mask() Elem { return f.mask }

// Generator returns a primitive element of the multiplicative group.
// When the modulus is primitive (the default), this is z itself (Elem 2)
// except in GF(2) where it is 1.
func (f *Field) Generator() Elem { return f.gen }

// Contains reports whether v is a valid element of the field.
func (f *Field) Contains(v Elem) bool { return v <= f.mask }

// check panics if v is not a field element; internal guard used by the
// arithmetic entry points so corrupt values fail loudly.
func (f *Field) check(v Elem) {
	if v > f.mask {
		panic(fmt.Sprintf("gf: value %#x outside GF(2^%d)", uint32(v), f.m))
	}
}

// Add returns a + b (XOR).
func (f *Field) Add(a, b Elem) Elem {
	f.check(a)
	f.check(b)
	return a ^ b
}

// Sub returns a - b; identical to Add in characteristic 2.
func (f *Field) Sub(a, b Elem) Elem { return f.Add(a, b) }

// Mul returns the product a*b mod p(z).
func (f *Field) Mul(a, b Elem) Elem {
	f.check(a)
	f.check(b)
	if f.log != nil {
		if a == 0 || b == 0 {
			return 0
		}
		return f.exp[uint64(f.log[a])+uint64(f.log[b])]
	}
	return f.mulShiftAdd(a, b)
}

// mulShiftAdd is the table-free multiply used for large m (and by the
// ablation bench comparing multiply strategies).
func (f *Field) mulShiftAdd(a, b Elem) Elem {
	return Elem(gf2.MulMod(gf2.Poly(a), gf2.Poly(b), f.p))
}

// MulNoTable returns a*b using shift-and-add reduction regardless of
// whether tables exist.  Exposed for the multiply-strategy ablation.
func (f *Field) MulNoTable(a, b Elem) Elem {
	f.check(a)
	f.check(b)
	return f.mulShiftAdd(a, b)
}

// Inv returns the multiplicative inverse of a.  It panics if a is 0.
func (f *Field) Inv(a Elem) Elem {
	f.check(a)
	if a == 0 {
		panic("gf: inverse of zero")
	}
	if f.log != nil {
		n := uint32(f.mask) // group order 2^m - 1
		return f.exp[(n-f.log[a])%n]
	}
	// a^(2^m - 2) by square-and-multiply.
	return f.Pow(a, uint64(f.mask)-1)
}

// Div returns a / b.  It panics if b is 0.
func (f *Field) Div(a, b Elem) Elem { return f.Mul(a, f.Inv(b)) }

// Pow returns a^e (a^0 = 1, including 0^0 = 1 by convention).
func (f *Field) Pow(a Elem, e uint64) Elem {
	f.check(a)
	r := Elem(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			r = f.Mul(r, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return r
}

// Order returns the multiplicative order of a (the least e>0 with
// a^e = 1).  It panics if a is 0.
func (f *Field) Order(a Elem) uint64 {
	f.check(a)
	if a == 0 {
		panic("gf: order of zero")
	}
	group := uint64(f.mask)
	if group == 0 {
		return 1
	}
	e := group
	primes, _ := gf2.Factor64(group)
	for _, q := range primes {
		for e%q == 0 && f.Pow(a, e/q) == 1 {
			e /= q
		}
	}
	return e
}

// Trace returns the absolute trace Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1)),
// an element of GF(2) returned as 0 or 1.
func (f *Field) Trace(a Elem) Elem {
	f.check(a)
	t := a
	s := a
	for i := 1; i < f.m; i++ {
		s = f.Mul(s, s)
		t ^= s
	}
	return t & 1
}

// buildTables fills the log/exp tables by walking powers of z.  If z is
// not a generator (non-primitive modulus) a true generator is found by
// scanning; tables are keyed to it.
func (f *Field) buildTables() {
	n := int(f.mask) // 2^m - 1
	if n == 0 {
		return // GF(2): tables are pointless
	}
	g := f.scanGenerator()
	f.log = make([]uint32, n+1)
	f.exp = make([]Elem, 2*n)
	v := Elem(1)
	for i := 0; i < n; i++ {
		f.exp[i] = v
		f.exp[i+n] = v
		f.log[v] = uint32(i)
		v = f.mulShiftAdd(v, g)
	}
	if v != 1 {
		panic("gf: generator scan failed to close the cycle")
	}
}

// scanGenerator finds the smallest multiplicative generator by direct
// order checks using shift-add multiplication (tables not yet built).
func (f *Field) scanGenerator() Elem {
	group := uint64(f.mask)
	if group <= 1 {
		return 1
	}
	primes, _ := gf2.Factor64(group)
candidates:
	for c := Elem(2); c <= f.mask; c++ {
		for _, q := range primes {
			if f.powShiftAdd(c, group/q) == 1 {
				continue candidates
			}
		}
		return c
	}
	panic("gf: no generator found (modulus not irreducible?)")
}

func (f *Field) powShiftAdd(a Elem, e uint64) Elem {
	r := Elem(1)
	for e > 0 {
		if e&1 == 1 {
			r = f.mulShiftAdd(r, a)
		}
		a = f.mulShiftAdd(a, a)
		e >>= 1
	}
	return r
}

// findGenerator returns the cached generator used for tables, or scans
// when tables are disabled.
func (f *Field) findGenerator() Elem {
	if f.exp != nil {
		return f.exp[1]
	}
	return f.scanGenerator()
}

// String describes the field, e.g. "GF(2^4) mod 1 + z + z^4".
func (f *Field) String() string {
	return fmt.Sprintf("GF(2^%d) mod %v", f.m, f.p)
}

// FormatElem renders v as a hexadecimal literal padded to the field
// width, e.g. "0x3" in GF(2^4), matching the paper's Fig. 1b labels.
func (f *Field) FormatElem(v Elem) string {
	digits := (f.m + 3) / 4
	return fmt.Sprintf("%0*X", digits, uint32(v))
}

// PolyOf returns v viewed as a polynomial in z.
func PolyOf(v Elem) gf2.Poly { return gf2.Poly(v) }
