// Package report renders the experiment tables of the reproduction as
// aligned text and CSV.  It is deliberately tiny: every bench and CLI
// funnels its rows through Table so the output format is uniform.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a pre-formatted row.
func (t *Table) AddRowf(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// widths returns the column widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len([]rune(c)) > w[i] {
				w[i] = len([]rune(c))
			}
		}
	}
	return w
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	widths := t.widths()
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(widths))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// CSV writes the table as comma-separated values (quoted when needed).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

func pad(s string, width int) string {
	n := width - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// Percent formats a ratio as "97.3%".
func Percent(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
