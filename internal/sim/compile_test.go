package sim

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
)

// recordWOM captures a width-m March trace (data backgrounds exercise
// every bit) on a fresh WOM.
func recordWOM(t *testing.T, test march.Test, n, m int) *Trace {
	t.Helper()
	tr, detected, ops := Record(ram.NewWOM(n, m), func(mem ram.Memory) (bool, uint64) {
		r := march.RunBackgrounds(test, mem, march.DataBackgrounds(m))
		return r.Detected, r.Ops
	})
	if detected || ops == 0 {
		t.Fatalf("bad clean run: detected=%v ops=%d", detected, ops)
	}
	return tr
}

// recordPRT captures a pseudo-ring trace, whose recurrence writes
// exercise the affine instruction path.
func recordPRT(t *testing.T, n, m int) *Trace {
	t.Helper()
	s := prt.StandardScheme3(prt.PaperWOMConfig().Gen)
	tr, detected, ops := Record(ram.NewWOM(n, m), func(mem ram.Memory) (bool, uint64) {
		r, err := s.Run(mem)
		if err != nil {
			t.Fatal(err)
		}
		return r.Detected, r.Ops
	})
	if detected || ops == 0 {
		t.Fatalf("bad clean run: detected=%v ops=%d", detected, ops)
	}
	if tr.MaxBack == 0 {
		t.Fatal("PRT trace has no affine writes — annotation lost?")
	}
	return tr
}

// recordObserver captures a signature-observer trace on a width-m WOM:
// literal TDB writes (no affine recurrences), every read-back folded
// into a GF(2^m) MISR observer, one compare point, no checked reads —
// the minimal signature-BIST shape.  Being non-affine, it is also the
// shape whose detection depends entirely on the fold/observe path (and
// exercises the folded-bit gating of trace-conditioned collapsing).
func recordObserver(t *testing.T, n, m int) *Trace {
	t.Helper()
	f := gf.NewField(m)
	alpha := f.Generator()
	step := f.ConstMulMatrix(alpha).Rows
	tap := gf.IdentityMatrix(m).Rows
	tr, detected, ops := Record(ram.NewWOM(n, m), func(mem ram.Memory) (bool, uint64) {
		var ops uint64
		for a := 0; a < n; a++ {
			mem.Write(a, ram.Word(gf.Elem(a)&f.Mask()))
			ops++
		}
		var sig, want gf.Elem
		for a := 0; a < n; a++ {
			v := gf.Elem(mem.Read(a))
			ram.AnnotateFold(mem, 0, step, tap)
			ops++
			sig = f.Add(f.Mul(alpha, sig), v)
			want = f.Add(f.Mul(alpha, want), gf.Elem(a)&f.Mask())
		}
		ram.AnnotateObserved(mem, 0)
		return sig != want, ops
	})
	if detected || ops == 0 {
		t.Fatalf("bad clean run: detected=%v ops=%d", detected, ops)
	}
	if tr.Checked != 0 || tr.Observes != 1 || len(tr.Observers) != 1 || tr.Observers[0] != m {
		t.Fatalf("observer trace mis-annotated: checked=%d observes=%d observers=%v",
			tr.Checked, tr.Observes, tr.Observers)
	}
	if !tr.Replayable() {
		t.Fatal("observer-only trace must be replayable")
	}
	return tr
}

// assertCompiledMatchesReplayBatch is the kernel-equivalence property:
// for every 64-fault batch of the universe, Program.Replay through a
// reused arena must return the exact detection mask of the existing
// per-batch interpreter.
func assertCompiledMatchesReplayBatch(t *testing.T, tr *Trace, faults []fault.Fault) {
	t.Helper()
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(p)
	for lo := 0; lo < len(faults); lo += BatchSize {
		hi := lo + BatchSize
		if hi > len(faults) {
			hi = len(faults)
		}
		want, err := ReplayBatch(tr, faults[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Replay(a, faults[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("batch [%d:%d): compiled mask %064b\n              interpreter %064b", lo, hi, got, want)
		}
	}
}

func TestCompiledKernelWidth1MatchesInterpreter(t *testing.T) {
	const n = 24
	tr := recordMarch(t, march.MarchB(), n)
	u := fault.StandardUniverse(n, 1, 8, 3)
	assertCompiledMatchesReplayBatch(t, tr, u.Faults)
}

func TestCompiledKernelGenericMatchesInterpreter(t *testing.T) {
	const n, m = 24, 4
	tr := recordWOM(t, march.MarchCMinus(), n, m)
	u := fault.StandardUniverse(n, m, 8, 5)
	assertCompiledMatchesReplayBatch(t, tr, u.Faults)
}

func TestCompiledKernelAffineMatchesInterpreter(t *testing.T) {
	const n, m = 17, 4
	tr := recordPRT(t, n, m)
	u := fault.StandardUniverse(n, m, 8, 7)
	assertCompiledMatchesReplayBatch(t, tr, u.Faults)
}

// TestCompiledKernelObserverMatchesInterpreter: both kernels must fold
// the per-lane accumulator differences exactly as the interpreter does,
// for the width-1 and the generic kernel.
func TestCompiledKernelObserverMatchesInterpreter(t *testing.T) {
	for _, m := range []int{1, 4} {
		const n = 24
		tr := recordObserver(t, n, m)
		u := fault.StandardUniverse(n, m, 8, 9)
		assertCompiledMatchesReplayBatch(t, tr, u.Faults)
	}
}

// TestCompileTrimsSuffix: ops after the last checked read cannot affect
// detection, so the compiler drops them — and replay of the trimmed
// program must still match the interpreter on the untrimmed trace.
func TestCompileTrimsSuffix(t *testing.T) {
	const n = 16
	tr := recordMarch(t, march.MATSPlus(), n)
	trailing := 0 // ops the recorded trace already has past its last check
	for i := len(tr.Ops) - 1; i >= 0; i-- {
		if tr.Ops[i].Kind == ram.OpRead && tr.Ops[i].Checked {
			break
		}
		trailing++
	}
	// Append a write-and-unchecked-read tail, as a non-annotating
	// executor epilogue would leave.
	tail := []Op{
		{Kind: ram.OpWrite, Addr: 0, Data: 1},
		{Kind: ram.OpRead, Addr: 0, Data: 1},
		{Kind: ram.OpWrite, Addr: n - 1, Data: 0},
	}
	tr.Ops = append(tr.Ops, tail...)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := trailing + len(tail); p.TrimmedOps() != want {
		t.Fatalf("TrimmedOps = %d, want %d", p.TrimmedOps(), want)
	}
	// Each fused super-op swallowed two trace ops into one instruction.
	if p.Ops()+p.FusedOps() != len(tr.Ops)-trailing-len(tail) {
		t.Fatalf("Ops+FusedOps = %d+%d, want %d", p.Ops(), p.FusedOps(), len(tr.Ops)-trailing-len(tail))
	}
	assertCompiledMatchesReplayBatch(t, tr, fault.SingleCellUniverse(n, 1))
}

func TestCompileRejectsUnannotatedTrace(t *testing.T) {
	tr := &Trace{Size: 4, Width: 1, Init: make([]ram.Word, 4), Ops: []Op{
		{Kind: ram.OpWrite, Addr: 0, Data: 1},
		{Kind: ram.OpRead, Addr: 0, Data: 1},
	}}
	if _, err := Compile(tr, 1); err == nil {
		t.Fatal("expected an error for a trace with no checked reads")
	}
}

// TestReplaySteadyStateAllocatesNothing is the zero-allocation
// regression gate: once an arena has warmed (hook-table capacity grown,
// pool populated), replaying a batch must not allocate a single heap
// object, for both the width-1 and the generic kernel and across every
// hook-installing fault model.
func TestReplaySteadyStateAllocatesNothing(t *testing.T) {
	cases := []struct {
		name   string
		tr     *Trace
		faults []fault.Fault
	}{
		{"width1", recordMarch(t, march.MarchCMinus(), 32),
			fault.StandardUniverse(32, 1, 8, 11).Faults[:BatchSize]},
		{"generic", recordWOM(t, march.MarchCMinus(), 32, 4),
			fault.StandardUniverse(32, 4, 8, 11).Faults[:BatchSize]},
		{"affine", recordPRT(t, 17, 4),
			fault.StandardUniverse(17, 4, 8, 11).Faults[:BatchSize]},
		{"observer1", recordObserver(t, 32, 1),
			fault.StandardUniverse(32, 1, 8, 11).Faults[:BatchSize]},
		{"observerN", recordObserver(t, 32, 4),
			fault.StandardUniverse(32, 4, 8, 11).Faults[:BatchSize]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Compile(tc.tr, 1)
			if err != nil {
				t.Fatal(err)
			}
			a := NewArena(p)
			if _, err := p.Replay(a, tc.faults); err != nil { // warm-up
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := p.Replay(a, tc.faults); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state replay allocates %.1f objects per batch, want 0", allocs)
			}
		})
	}
}

// TestArenaResetRestoresExactState: a batch that dirties cells and
// installs hooks must leave no residue observable by the next batch —
// replaying batch A, then B, then A again must reproduce A's mask.
func TestArenaResetRestoresExactState(t *testing.T) {
	const n = 16
	tr := recordMarch(t, march.MarchCMinus(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(p)
	u := fault.StandardUniverse(n, 1, 8, 13).Faults
	batchA, batchB := u[:BatchSize], u[BatchSize:2*BatchSize]
	first, err := p.Replay(a, batchA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Replay(a, batchB); err != nil {
		t.Fatal(err)
	}
	again, err := p.Replay(a, batchA)
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatalf("arena reset leaks state: first %064b, again %064b", first, again)
	}
}

func TestShardsCompiledMatchesAcrossWorkerCounts(t *testing.T) {
	const n = 32
	tr := recordMarch(t, march.MarchB(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.SingleCellUniverse(n, 1) // 128 faults = 2 batches
	var ref []bool
	for _, workers := range []int{1, 3, 8} {
		got, _, err := ShardsCompiled(context.Background(), p, faults, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("workers=%d: fault %d differs from single-worker result", workers, i)
			}
		}
	}
}

// TestShardsPropagateBatchErrors: a fault that cannot be batch-injected
// sits in a later batch; both drivers must surface the error (and the
// stop flag keeps other workers from churning through the remainder).
func TestShardsPropagateBatchErrors(t *testing.T) {
	const n = 32
	tr := recordMarch(t, march.MarchB(), n)
	faults := fault.SingleCellUniverse(n, 1) // 2 batches
	faults[BatchSize+3] = alienFault{}       // second batch fails injection
	if _, _, err := Shards(context.Background(), tr, faults, 2); err == nil {
		t.Fatal("Shards must propagate a failing batch")
	}
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ShardsCompiled(context.Background(), p, faults, 2); err == nil {
		t.Fatal("ShardsCompiled must propagate a failing batch")
	}
}
