// The selftest is the suite's canary: the seeded fixture plants one
// known violation per analyzer, and this test fails if any of them
// stops being reported.  A green tree-wide `go vet -vettool=faultvet`
// is only meaningful while this stays red on the seeded package.
package selftest_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/deterministic"
	"repro/internal/analysis/hotpathalloc"
	"repro/internal/analysis/syncerr"
)

func TestSeededViolationsAreCaught(t *testing.T) {
	_, file, _, _ := runtime.Caller(0)
	testdata := filepath.Join(filepath.Dir(file), "testdata")
	analyzertest.RunAll(t, testdata, "seeded",
		hotpathalloc.Analyzer,
		deterministic.Analyzer,
		ctxflow.Analyzer,
		syncerr.Analyzer,
	)
}
