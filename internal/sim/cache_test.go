package sim

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/ram"
)

// compilePrograms builds the regression set of compiled programs with
// deliberately different shapes: width-1 vs width-4, with and without
// read-history rings (affine recurrence writes), with and without
// fold-accumulator state, and different sizes.
func shapePrograms(t *testing.T) []*Program {
	t.Helper()
	traces := []*Trace{
		recordMarch(t, march.MarchCMinus(), 24), // width 1, no history, no observers
		recordWOM(t, march.MarchB(), 16, 4),     // width 4
		recordPRT(t, 17, 4),                     // width 4, history ring (affine writes)
		recordObserver(t, 24, 1),                // width 1, 1-bit fold accumulator
		recordObserver(t, 12, 4),                // width 4, 4-bit fold accumulator
	}
	progs := make([]*Program, len(traces))
	for i, tr := range traces {
		p, err := Compile(tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		progs[i] = p
	}
	return progs
}

// TestArenaRetargetAcrossProgramShapes is the cross-program reuse
// regression: one arena retargeted across compiled programs of
// different shapes (widths, fold-accumulator counts, history lengths,
// sizes) must reproduce the detection mask of a fresh arena for every
// program — in both directions of every program pair, so neither
// growing nor shrinking any buffer leaks state.
func TestArenaRetargetAcrossProgramShapes(t *testing.T) {
	progs := shapePrograms(t)
	batchFor := func(p *Program) []fault.Fault {
		u := fault.StandardUniverse(p.Size(), p.Width(), 4, 21).Faults
		if len(u) > BatchSize {
			u = u[:BatchSize]
		}
		return u
	}
	want := make([]uint64, len(progs))
	for i, p := range progs {
		m, err := p.Replay(NewArena(p), batchFor(p))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}
	for i := range progs {
		for j := range progs {
			if i == j {
				continue
			}
			shared := NewArena(progs[i])
			if _, err := progs[i].Replay(shared, batchFor(progs[i])); err != nil {
				t.Fatal(err)
			}
			shared.Retarget(progs[j])
			got, err := progs[j].Replay(shared, batchFor(progs[j]))
			if err != nil {
				t.Fatal(err)
			}
			if got != want[j] {
				t.Errorf("programs %d→%d: retargeted arena mask %064b, fresh %064b", i, j, got, want[j])
			}
			// And back again: shrink/regrow must be just as clean.
			shared.Retarget(progs[i])
			back, err := progs[i].Replay(shared, batchFor(progs[i]))
			if err != nil {
				t.Fatal(err)
			}
			if back != want[i] {
				t.Errorf("programs %d→%d→%d: round-trip mask %064b, fresh %064b", i, j, i, back, want[i])
			}
		}
	}
}

// TestReplayRejectsForeignArena: an arena must be explicitly
// retargeted before replaying a different program.
func TestReplayRejectsForeignArena(t *testing.T) {
	progs := shapePrograms(t)
	a := NewArena(progs[0])
	if _, err := progs[1].Replay(a, []fault.Fault{fault.SAF{Cell: 0, Value: 1}}); err == nil {
		t.Fatal("replay through a foreign arena must error")
	}
}

// TestArenaPoolRetargets: pooled arenas come back bound to the
// requested program, whatever they last ran.
func TestArenaPoolRetargets(t *testing.T) {
	progs := shapePrograms(t)
	var pool ArenaPool
	a := pool.Get(progs[0])
	pool.Put(a)
	b := pool.Get(progs[2])
	if b != a {
		t.Fatal("pool did not recycle the arena")
	}
	if _, err := progs[2].Replay(b, []fault.Fault{fault.SAF{Cell: 0, Value: 1}}); err != nil {
		t.Fatalf("pooled arena not retargeted: %v", err)
	}
	// A nil pool stays functional and simply builds fresh arenas.
	var np *ArenaPool
	c := np.Get(progs[1])
	if _, err := progs[1].Replay(c, []fault.Fault{fault.SAF{Cell: 0, Value: 1}}); err != nil {
		t.Fatal(err)
	}
	np.Put(c)
}

// TestShardsViewMatchesFullRun: subset replay must return, per view
// position, exactly the full run's verdict at that universe index —
// for the interpreter and the compiled engine (pooled and unpooled).
func TestShardsViewMatchesFullRun(t *testing.T) {
	const n = 48
	tr := recordMarch(t, march.MATSPlus(), n) // imperfect coverage: mixed verdicts
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StandardUniverse(n, 1, 8, 17).Faults
	ctx := context.Background()
	full, _, err := ShardsCompiled(ctx, p, faults, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A ragged subset crossing batch boundaries.
	v := fault.Span(faults).Where(func(i int) bool { return i%3 != 1 })
	var pool ArenaPool
	for name, run := range map[string]func() ([]bool, int, error){
		"bitpar":        func() ([]bool, int, error) { return ShardsView(ctx, tr, v, 3) },
		"compiled":      func() ([]bool, int, error) { return ShardsCompiledView(ctx, p, v, 3, nil) },
		"compiled+pool": func() ([]bool, int, error) { return ShardsCompiledView(ctx, p, v, 3, &pool) },
	} {
		got, _, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != v.Len() {
			t.Fatalf("%s: %d verdicts for a %d-fault view", name, len(got), v.Len())
		}
		for i := range got {
			if got[i] != full[v.Index(i)] {
				t.Errorf("%s: view fault %d (universe %d) = %v, full run says %v",
					name, i, v.Index(i), got[i], full[v.Index(i)])
			}
		}
	}
}

// TestProgramCacheRoundTrip covers hit/miss accounting and the
// init-hash discrimination of the key.
func TestProgramCacheRoundTrip(t *testing.T) {
	tr := recordMarch(t, march.MarchCMinus(), 16)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewProgramCache()
	k := ProgramKey{Runner: "march:{...}", Size: 16, Width: 1, InitHash: InitHash(ram.NewBOM(16))}
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, &CachedProgram{Prog: p, CleanOps: 160})
	e, ok := c.Get(k)
	if !ok || e.Prog != p || e.CleanOps != 160 {
		t.Fatalf("cache round-trip lost the entry: %+v ok=%v", e, ok)
	}
	hits, misses, entries := c.Stats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Errorf("stats = %d/%d/%d, want 1/1/1", hits, misses, entries)
	}
	// A different initial image is a different key.
	dirty := ram.NewBOM(16)
	dirty.Write(3, 1)
	k2 := k
	k2.InitHash = InitHash(dirty)
	if k2 == k {
		t.Fatal("init hash failed to distinguish memory images")
	}
	if _, ok := c.Get(k2); ok {
		t.Fatal("differing init image must miss")
	}
	// A nil cache is inert.
	var nc *ProgramCache
	if _, ok := nc.Get(k); ok {
		t.Fatal("nil cache hit")
	}
	nc.Put(k, e)
}

// TestProgramCacheBounded: the cache evicts rather than grow without
// bound.
func TestProgramCacheBounded(t *testing.T) {
	tr := recordMarch(t, march.MarchCMinus(), 8)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := NewProgramCache()
	for i := 0; i < 4*cacheCap; i++ {
		c.Put(ProgramKey{Runner: "r", Size: i}, &CachedProgram{Prog: p})
	}
	if _, _, entries := c.Stats(); entries > cacheCap {
		t.Fatalf("cache grew to %d entries (cap %d)", entries, cacheCap)
	}
}
