package checkpoint

import (
	"bytes"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleState() *State {
	return &State{
		SpecHash:   Hash("universe", "runner-a", "runner-b", "compiled", "drop"),
		Seed:       42,
		Size:       1024,
		Width:      4,
		Label:      "-exp E17 -seed 42",
		UniverseN:  9000,
		StageNames: []string{"MATS+", "March C-"},
		Done: []StageRecord{{
			Runner: "MATS+", RunnerIndex: 1,
			Entered: 9000, Detected: 7000, Survivors: 2000,
			ByClass: []ClassTally{{Class: 0, Total: 4000, Detected: 3500}, {Class: 2, Total: 5000, Detected: 3500}},
		}},
		Cur: StageRecord{
			Runner: "March C-", RunnerIndex: 0,
			Entered: 400, Detected: 300,
			ByClass: []ClassTally{{Class: 0, Total: 400, Detected: 300}},
		},
		HighWater: 4096,
		Universe:  []ClassTally{{Class: 0, Total: 4000, Detected: 3600}, {Class: 2, Total: 5000, Detected: 3700}},
		Bits:      []uint64{0xdeadbeef, 0, ^uint64(0), 1},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleState()
	got, err := Decode(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mutated the state:\n got %+v\nwant %+v", got, want)
	}
	// Determinism: same state, same bytes.
	if !bytes.Equal(want.Encode(), want.Encode()) {
		t.Fatal("encoding is not deterministic")
	}
	// A minimal (fresh, pre-first-chunk) state round-trips too.
	min := &State{UniverseN: -1, StageNames: []string{"only"}}
	got, err = Decode(min.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, min) {
		t.Fatalf("minimal round trip: got %+v want %+v", got, min)
	}
}

// TestDecodeRejectsCorruption is the satellite's corrupt-file test:
// every single-bit flip and every truncation of a valid file must be
// rejected (almost always by the checksum; a flip inside the CRC
// trailer itself is caught by the same comparison), never decoded into
// a plausible-but-wrong state.
func TestDecodeRejectsCorruption(t *testing.T) {
	b := sampleState().Encode()
	for i := range b {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), b...)
			mut[i] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("flipped bit %d of byte %d: decode accepted the corrupt file", bit, i)
			}
		}
	}
	for n := 0; n < len(b); n++ {
		if _, err := Decode(b[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorrupt", n, err)
		}
	}
	// Trailing garbage is also a corruption, not an extension point.
	if _, err := Decode(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("decode accepted trailing garbage")
	}
}

func TestDecodeRejectsForeignVersion(t *testing.T) {
	b := sampleState().Encode()
	// Patch the version field (right after the magic) and recompute the
	// checksum so only the version mismatches.
	b[len(magic)]++
	body := b[:len(b)-4]
	e := &enc{b: append([]byte(nil), body...)}
	e.u32(crc32.Checksum(body, castagnoli))
	if _, err := Decode(e.b); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestMatches(t *testing.T) {
	s := sampleState()
	if !s.Matches(s.SpecHash, 1024, 4, 42) {
		t.Fatal("state does not match its own identity")
	}
	for name, ok := range map[string]bool{
		"spec":  s.Matches(s.SpecHash+1, 1024, 4, 42),
		"size":  s.Matches(s.SpecHash, 512, 4, 42),
		"width": s.Matches(s.SpecHash, 1024, 1, 42),
		"seed":  s.Matches(s.SpecHash, 1024, 4, 7),
	} {
		if ok {
			t.Errorf("mismatched %s accepted", name)
		}
	}
}

func TestHashDisambiguatesAdjacentFields(t *testing.T) {
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Fatal("field boundaries alias in the spec hash")
	}
	if Hash("a") == Hash("a", "") {
		t.Fatal("empty trailing field aliases")
	}
}

func TestWriteAtomicAndLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.fckp")
	want := sampleState()
	if err := WriteAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("load mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Overwrite leaves no temp litter behind.
	want.HighWater++
	if err := WriteAtomic(path, want); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "campaign.fckp" {
		t.Fatalf("directory litter after overwrite: %v", ents)
	}
	// A missing file is a plain error, not a panic.
	if _, err := Load(filepath.Join(dir, "absent.fckp")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	// A truncated file on disk surfaces ErrCorrupt through Load.
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// WriteAtomic returns — rather than panics on or drops — every failure
// on its durability chain.  A missing parent directory is the portably
// provokable one; the fsync-after-rename failures share the same
// return path.
func TestWriteAtomicReportsFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "no", "such", "dir", "c.fckp")
	if err := WriteAtomic(path, sampleState()); err == nil {
		t.Fatal("WriteAtomic into a missing directory succeeded")
	}
}
