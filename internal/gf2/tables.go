package gf2

import "sync"

// DefaultModulus returns the default field modulus p(z) used throughout
// the repository for GF(2^m): the numerically smallest primitive
// polynomial of degree m.  For m = 4 this is 1 + z + z^4 (0x13), the
// modulus used in the paper's worked example.
//
// The result is cached; concurrent callers are safe.
func DefaultModulus(m int) Poly {
	if m < 1 || m > 32 {
		panic("gf2: DefaultModulus degree out of range [1,32]")
	}
	moduliMu.Lock()
	defer moduliMu.Unlock()
	if p, ok := moduli[m]; ok {
		return p
	}
	p := FirstPrimitive(m)
	moduli[m] = p
	return p
}

var (
	moduliMu sync.Mutex
	moduli   = map[int]Poly{
		// Pre-seeded entries double as documentation of the well-known
		// low-degree primitive trinomials/pentanomials; DefaultModulus
		// verifies nothing here — the test suite asserts each equals
		// FirstPrimitive(m).
		1: 0x3,   // 1 + z
		2: 0x7,   // 1 + z + z^2
		3: 0xB,   // 1 + z + z^3
		4: 0x13,  // 1 + z + z^4   (paper's p(z))
		5: 0x25,  // 1 + z^2 + z^5
		6: 0x43,  // 1 + z + z^6
		7: 0x83,  // 1 + z + z^7
		8: 0x11D, // 1 + z^2 + z^3 + z^4 + z^8
	}
)
