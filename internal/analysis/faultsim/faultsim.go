// Package faultsim implements the marker-comment conventions shared by
// the repo's custom go/analysis analyzers (cmd/faultvet).
//
// Invariant scopes are declared with marker comments:
//
//	//faultsim:hotpath        zero-allocation replay path (hotpathalloc)
//	//faultsim:deterministic  output must not depend on map/select/clock
//	                          nondeterminism (deterministic)
//	//faultsim:durable        checkpoint/durable write path: fsync/close/
//	                          rename errors must be checked (syncerr)
//
// A marker in a function declaration's doc comment scopes that one
// function (including any function literals nested in its body); a
// marker in the file header — any comment group that ends before the
// file's first declaration — scopes every function in the file.
//
// Individual findings are waived with suppression comments placed on
// the offending line or on the line immediately above it, each
// requiring a non-empty justification string:
//
//	//faultsim:alloc-ok <why this allocation is acceptable>
//	//faultsim:ordered "<why this order/clock use is deterministic>"
//	//faultsim:ambient <why this context storage is audited>
//
// A suppression with no justification does not suppress: the analyzer
// reports the original finding plus the missing justification, so a
// bare waiver can never silence a diagnostic.
package faultsim

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Marker and suppression names (the text after "//faultsim:").
const (
	Hotpath       = "hotpath"
	Deterministic = "deterministic"
	Durable       = "durable"

	AllocOK = "alloc-ok"
	Ordered = "ordered"
	Ambient = "ambient"
)

const prefix = "//faultsim:"

// Suppression is one parsed waiver comment.
type Suppression struct {
	Name   string // alloc-ok, ordered, ambient
	Reason string // justification text, quotes stripped; may be empty
}

type lineKey struct {
	file string
	line int
}

// Info is the per-pass marker index: which files and functions carry
// which scope markers, and where suppression comments sit.
type Info struct {
	fset      *token.FileSet
	fileMarks map[*ast.File]map[string]bool
	supp      map[lineKey][]Suppression
}

// Collect scans every file of the pass for faultsim markers and
// suppressions.  Analyzers call it once at the top of their run
// function.
func Collect(pass *analysis.Pass) *Info {
	in := &Info{
		fset:      pass.Fset,
		fileMarks: make(map[*ast.File]map[string]bool),
		supp:      make(map[lineKey][]Suppression),
	}
	for _, f := range pass.Files {
		firstDecl := token.Pos(-1)
		if len(f.Decls) > 0 {
			firstDecl = f.Decls[0].Pos()
		}
		for _, cg := range f.Comments {
			fileScope := firstDecl == token.Pos(-1) || cg.End() < firstDecl
			for _, c := range cg.List {
				name, arg, ok := parse(c.Text)
				if !ok {
					continue
				}
				switch name {
				case Hotpath, Deterministic, Durable:
					if fileScope {
						in.markFile(f, name)
					}
				case AllocOK, Ordered, Ambient:
					pos := pass.Fset.Position(c.Pos())
					k := lineKey{pos.Filename, pos.Line}
					in.supp[k] = append(in.supp[k], Suppression{Name: name, Reason: arg})
				}
			}
		}
	}
	return in
}

func (in *Info) markFile(f *ast.File, name string) {
	m := in.fileMarks[f]
	if m == nil {
		m = make(map[string]bool)
		in.fileMarks[f] = m
	}
	m[name] = true
}

// parse splits a "//faultsim:name justification" comment.  Only line
// comments participate; anything not starting with the prefix is not a
// marker.
func parse(text string) (name, arg string, ok bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	name, arg, _ = strings.Cut(rest, " ")
	arg = strings.TrimSpace(arg)
	// A quoted justification is accepted with or without the quotes.
	if len(arg) >= 2 && arg[0] == '"' && arg[len(arg)-1] == '"' {
		arg = arg[1 : len(arg)-1]
	}
	return strings.TrimSpace(name), arg, name != ""
}

// FileMarked reports whether the file carries a file-scope marker.
func (in *Info) FileMarked(f *ast.File, name string) bool {
	return in.fileMarks[f][name]
}

// FuncMarked reports whether the function is in scope for the marker:
// either its doc comment carries it or its file does.
func (in *Info) FuncMarked(f *ast.File, fn *ast.FuncDecl, name string) bool {
	if in.fileMarks[f][name] {
		return true
	}
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if n, _, ok := parse(c.Text); ok && n == name {
			return true
		}
	}
	return false
}

// Suppressed looks for a suppression of the given name covering pos:
// on the same line or the line immediately above.  It returns the
// justification and whether a suppression comment was found at all;
// callers must treat (found && reason == "") as a finding of its own —
// a waiver without a justification suppresses nothing.
func (in *Info) Suppressed(pos token.Pos, name string) (reason string, found bool) {
	p := in.fset.Position(pos)
	for _, line := range [2]int{p.Line, p.Line - 1} {
		for _, s := range in.supp[lineKey{p.Filename, line}] {
			if s.Name == name {
				return s.Reason, true
			}
		}
	}
	return "", false
}

// Report emits a diagnostic for a finding unless a suppression with a
// non-empty justification covers it.  The suppression name is the
// analyzer's waiver keyword; findings with an empty-justification
// waiver get an augmented message so the bare waiver is itself the
// thing to fix.
func (in *Info) Report(pass *analysis.Pass, pos token.Pos, suppName, format string, args ...any) {
	reason, found := in.Suppressed(pos, suppName)
	if found && reason != "" {
		return
	}
	msg := format
	if len(args) > 0 {
		msg = fmt.Sprintf(format, args...)
	}
	if found {
		msg += " (//faultsim:" + suppName + " requires a justification string)"
	}
	pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}
