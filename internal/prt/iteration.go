package prt

import (
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/ram"
)

// IterationResult reports one π-test iteration.
type IterationResult struct {
	// Fin is the observed final automaton state, oldest first.  In
	// plain mode these are the last k cells of the trajectory; in Ring
	// mode they are the first k cells after the wrap-around rewrite.
	Fin []gf.Elem
	// FinStar is the a-priori expectation computed on the virtual
	// (affine) LFSR model.
	FinStar []gf.Elem
	// Detected is true when the signature check (Fin vs Fin*) or the
	// optional Verify pass failed.
	Detected bool
	// SignatureMiss is true when specifically Fin != Fin*.
	SignatureMiss bool
	// VerifyMismatches counts cells failing the optional read-back
	// pass (0 when Verify is off).
	VerifyMismatches int
	// StaleMismatches counts pre-rewrite reads that disagreed with the
	// expected carried-over contents (0 when CaptureStale is off).
	StaleMismatches int
	// RingClosed reports Fin == Init, the paper's pseudo-ring property.
	RingClosed bool
	// Ops counts memory operations (reads + writes) performed.
	Ops uint64
}

// RunIteration executes one π-test iteration on mem.
//
// The iteration writes the k seed values into the first k cells of the
// trajectory, then for each further cell performs k reads (the k
// previous cells) and one write (the recurrence value), and finally
// re-reads the final k cells as the observed Fin.  For k = 2 this is
// the paper's {c(r_i, r_{i+1}, w_{i+2} = r_i ⊕ r_{i+1})} sub-iteration
// with time complexity O(3n).
//
// Crucially the recurrence inputs are read back from the memory at
// every step — not carried in registers — so the walking automaton is
// emulated by the memory's own cells and any stored error keeps
// propagating toward Fin.
//
// In Ring mode the walk continues for k extra steps, re-writing the
// seed cells through the recurrence (the automaton closes the ring,
// n steps in total); Fin is then the first k cells.
func RunIteration(cfg Config, mem ram.Memory) (IterationResult, error) {
	if err := cfg.Validate(mem.Size(), mem.Width()); err != nil {
		return IterationResult{}, err
	}
	f := cfg.Gen.Field
	k := cfg.Gen.K()
	n := mem.Size()
	addr := cfg.Addresses(n)
	taps := cfg.Gen.Taps() // a₁ … a_k
	var res IterationResult

	// When running on a trace recorder, describe each recurrence write
	// as the affine map of the k preceding reads so the bit-parallel
	// replay preserves error propagation through the walking automaton.
	var tapRows [][]uint32
	var backPlain, backStale []int
	if _, tracing := mem.(ram.TraceAnnotator); tracing {
		tapRows = make([][]uint32, k)
		backPlain = make([]int, k)
		backStale = make([]int, k)
		for j := 1; j <= k; j++ {
			tapRows[j-1] = mulRows(f, taps[j-1])
			backPlain[j-1] = k - j + 1
			backStale[j-1] = k - j + 2
		}
	}

	capture := cfg.CaptureStale && cfg.StaleExpect != nil
	// Phase 1: seed Init into the first k cells of the trajectory
	// (capturing their stale contents first when configured).
	for i := 0; i < k; i++ {
		if capture {
			stale := gf.Elem(mem.Read(addr[i]))
			ram.AnnotateChecked(mem)
			res.Ops++
			if stale != cfg.StaleExpect[addr[i]] {
				res.StaleMismatches++
			}
		}
		mem.Write(addr[i], ram.Word(cfg.Seed[i]))
		res.Ops++
	}
	// Phase 2: walk the automaton through the array (and around the
	// ring in Ring mode).
	steps := n
	if cfg.Ring {
		steps = n + k
	}
	for i := k; i < steps; i++ {
		next := cfg.Offset
		// next = q ⊕ Σ_{j=1..k} a_j · c_{i-j}, all inputs read now.
		for j := 1; j <= k; j++ {
			v := gf.Elem(mem.Read(addr[(i-j)%n]))
			res.Ops++
			next = f.Add(next, f.Mul(taps[j-1], v))
		}
		target := addr[i%n]
		staleHere := capture && i < n
		if staleHere {
			stale := gf.Elem(mem.Read(target))
			ram.AnnotateChecked(mem)
			res.Ops++
			if stale != cfg.StaleExpect[target] {
				res.StaleMismatches++
			}
		}
		mem.Write(target, ram.Word(next))
		if tapRows != nil {
			if staleHere {
				ram.AnnotateLinear(mem, backStale, tapRows, ram.Word(cfg.Offset))
			} else {
				ram.AnnotateLinear(mem, backPlain, tapRows, ram.Word(cfg.Offset))
			}
		}
		res.Ops++
	}
	// Phase 3: observe Fin (oldest first) and compare with the model.
	finBase := n - k // plain mode: last k cells
	if cfg.Ring {
		finBase = n // wrap: cells addr[0..k-1] hold S_n
	}
	res.Fin = make([]gf.Elem, k)
	for i := 0; i < k; i++ {
		res.Fin[i] = gf.Elem(mem.Read(addr[(finBase+i)%n]))
		ram.AnnotateChecked(mem)
		res.Ops++
	}
	finStar, err := lfsr.AffineJumpAhead(cfg.Gen, cfg.Offset, cfg.Seed, uint64(steps-k))
	if err != nil {
		return res, err
	}
	res.FinStar = finStar
	res.SignatureMiss = !elemsEqual(res.Fin, res.FinStar)
	res.Detected = res.SignatureMiss || res.StaleMismatches > 0
	res.RingClosed = elemsEqual(res.Fin, cfg.Seed)

	// Phase 4 (optional): full read-back verification against the TDB.
	if cfg.Verify {
		mm, ops := verifyPass(cfg, mem, addr, steps)
		res.VerifyMismatches = mm
		res.Ops += ops
		if mm > 0 {
			res.Detected = true
		}
	}
	return res, nil
}

// verifyPass re-reads every cell and compares with the expected TDB.
func verifyPass(cfg Config, mem ram.Memory, addr []int, steps int) (mismatches int, ops uint64) {
	want := expectedContents(cfg, len(addr), steps)
	for i := 0; i < len(addr); i++ {
		got := gf.Elem(mem.Read(addr[i]))
		ram.AnnotateChecked(mem)
		ops++
		if got != want[i] {
			mismatches++
		}
	}
	return mismatches, ops
}

// mulRows returns the GF(2) matrix of multiplication by c as row
// bitmasks: bit s of rows[r] is set when bit r of c·2^s is 1, i.e.
// bit r of (c·v) = XOR over set bits s of v of (rows[r] >> s & 1) —
// the gf.BitMatrix row convention.
func mulRows(f *gf.Field, c gf.Elem) []uint32 {
	return f.ConstMulMatrix(c).Rows
}

// ExpectedFinalContents returns the fault-free post-iteration cell
// contents indexed by address — the StaleExpect input of a following
// CaptureStale iteration.
func ExpectedFinalContents(cfg Config, n int) []gf.Elem {
	addr := cfg.Addresses(n)
	steps := n
	if cfg.Ring {
		steps = n + cfg.Gen.K()
	}
	byPos := expectedContents(cfg, n, steps)
	out := make([]gf.Elem, n)
	for i, a := range addr {
		out[a] = byPos[i]
	}
	return out
}

// expectedContents returns the fault-free cell contents (indexed by
// trajectory position) after an iteration of the given step count.
func expectedContents(cfg Config, n, steps int) []gf.Elem {
	a := lfsr.MustAffine(cfg.Gen, cfg.Offset, cfg.Seed)
	seq := a.Sequence(steps)
	out := make([]gf.Elem, n)
	copy(out, seq[:n])
	// Ring mode overwrote the first steps-n cells with the wrapped
	// values u_n … u_{steps-1}.
	for i := n; i < steps; i++ {
		out[i-n] = seq[i]
	}
	return out
}

// MustRunIteration is RunIteration but panics on configuration errors.
func MustRunIteration(cfg Config, mem ram.Memory) IterationResult {
	r, err := RunIteration(cfg, mem)
	if err != nil {
		panic(err)
	}
	return r
}

// RingCloses predicts, from the automaton model alone, whether a
// fault-free π-iteration over n cells returns to Init: in plain mode
// n-k, in Ring mode n, must be a multiple of the orbit period.
func RingCloses(cfg Config, n int) bool {
	a := lfsr.MustAffine(cfg.Gen, cfg.Offset, cfg.Seed)
	p := a.Period(0)
	if p == 0 {
		return false
	}
	steps := uint64(n - cfg.Gen.K())
	if cfg.Ring {
		steps = uint64(n)
	}
	return steps%p == 0
}

// ExpectedSequence returns the fault-free TDB the iteration writes
// into the first count cells of the trajectory (the cell values of
// Fig. 1).
func ExpectedSequence(cfg Config, count int) []gf.Elem {
	a := lfsr.MustAffine(cfg.Gen, cfg.Offset, cfg.Seed)
	return a.Sequence(count)
}

// Verify performs a standalone full-readback check of a memory that
// has just completed a plain (non-ring) iteration, returning the
// number of mismatching cells.  Equivalent to running with
// Config.Verify set, split out for callers that want the two phases
// separately.
func Verify(cfg Config, mem ram.Memory) (mismatches int, ops uint64, err error) {
	if err := cfg.Validate(mem.Size(), mem.Width()); err != nil {
		return 0, 0, err
	}
	n := mem.Size()
	steps := n
	if cfg.Ring {
		steps = n + cfg.Gen.K()
	}
	mm, o := verifyPass(cfg, mem, cfg.Addresses(n), steps)
	return mm, o, nil
}

func elemsEqual(a, b []gf.Elem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FormatState renders an automaton state like "(0,1)" with hex digits.
func FormatState(f *gf.Field, s []gf.Elem) string {
	out := "("
	for i, v := range s {
		if i > 0 {
			out += ","
		}
		out += f.FormatElem(v)
	}
	return out + ")"
}
