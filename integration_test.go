package repro

// Cross-module integration tests: each exercises a full pipeline that
// no single package covers on its own.

import (
	"testing"

	"repro/internal/bist"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/march"
	"repro/internal/markov"
	"repro/internal/prt"
	"repro/internal/ram"
	"repro/internal/xorsynth"
)

// TestPipelineSynthesisToController verifies the complete hardware
// story: the multiplier netlists synthesised for the automaton's taps
// compute exactly the products the controller FSM uses, and the FSM
// reproduces the reference executor on the same faulty memory.
func TestPipelineSynthesisToController(t *testing.T) {
	cfg := prt.PaperWOMConfig()
	f := cfg.Gen.Field

	// 1. Synthesise the tap multipliers and check them against the
	// field on all inputs.
	for _, a := range cfg.Gen.Taps() {
		nl := xorsynth.ConstMultiplier(f, a)
		for x := gf.Elem(0); x <= f.Mask(); x++ {
			if gf.Elem(nl.Eval(uint32(x))) != f.Mul(a, x) {
				t.Fatalf("netlist for tap %x disagrees with field at %x", a, x)
			}
		}
	}

	// 2. Budget the engine and sanity-check the scale.
	budget, err := bist.ForPRT(bist.Params{N: 256, M: 4, Gen: cfg.Gen, Ports: 1, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if budget.XORs == 0 {
		t.Fatal("no XOR gates budgeted")
	}

	// 3. Drive a faulty memory through the FSM and through the
	// reference executor; both must detect and leave identical state.
	mkFaulty := func() ram.Memory {
		return fault.SAF{Cell: 97, Bit: 3, Value: 1}.Inject(ram.NewWOM(256, 4))
	}
	memA := mkFaulty()
	ctl, err := bist.NewController(cfg, memA)
	if err != nil {
		t.Fatal(err)
	}
	fsmPass := ctl.Run()

	memB := mkFaulty()
	ref := prt.MustRunIteration(cfg, memB)
	if fsmPass != !ref.SignatureMiss {
		t.Errorf("FSM pass=%v, reference signature ok=%v", fsmPass, !ref.SignatureMiss)
	}
	if !ram.Equal(memA, memB) {
		t.Error("FSM and reference left different memory images")
	}
}

// TestPipelineDetectDiagnoseRepair runs the full field flow: a fault
// is detected by the production scheme, localised by the diagnosis
// pass, "repaired" by remapping the cell, and the memory then passes.
func TestPipelineDetectDiagnoseRepair(t *testing.T) {
	n := 96
	defectCell := 41
	mkBroken := func() ram.Memory {
		return fault.SAF{Cell: defectCell, Bit: 1, Value: 0}.Inject(ram.NewWOM(n, 4))
	}

	// Detect.
	pass, err := SelfTest(mkBroken())
	if err != nil {
		t.Fatal(err)
	}
	if pass {
		t.Fatal("defect not detected")
	}

	// Diagnose.
	diag, err := prt.DiagnoseCells(prt.PaperWOMScheme3(), mkBroken())
	if err != nil {
		t.Fatal(err)
	}
	suspect := diag.PrimarySuspect()
	if suspect == nil || suspect.Addr != defectCell {
		t.Fatalf("diagnosis pointed at %v, defect is %d", suspect, defectCell)
	}

	// Repair: remap the bad cell onto a spare (simulated with an
	// address-translation wrapper) and retest.
	repaired := remap{Memory: mkBroken(), from: suspect.Addr, spare: ram.NewWOM(1, 4)}
	pass, err = SelfTest(repaired)
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Error("repaired memory still fails")
	}
}

// remap redirects one address to a spare cell — a minimal redundancy
// model for the repair test.
type remap struct {
	ram.Memory
	from  int
	spare *ram.WOM
}

func (r remap) Read(addr int) ram.Word {
	if addr == r.from {
		return r.spare.Read(0)
	}
	return r.Memory.Read(addr)
}

func (r remap) Write(addr int, v ram.Word) {
	if addr == r.from {
		r.spare.Write(0, v)
		return
	}
	r.Memory.Write(addr, v)
}

// TestMarkovPredictsCampaign cross-validates the analytic model
// against simulation: for always-excited single-bit storage faults the
// measured per-iteration detection of the signature-only scheme must
// be at least the chain's prediction minus sampling slack.
func TestMarkovPredictsCampaign(t *testing.T) {
	n := 64
	gen := prt.PaperWOMConfig().Gen
	// SAF universe excited in iteration 2 by construction (complement
	// TDB): run the 2-iteration signature-only scheme; every fault is
	// excited at least once, so detection should be ≈ 1 - alias.
	u := fault.Universe{Name: "saf", Faults: fault.SingleCellUniverse(n, 4)}
	res := coverage.Campaign(
		coverage.PRTRunner(prt.StandardScheme4(gen).Truncate(2).SignatureOnly()),
		u, func() ram.Memory { return ram.NewWOM(n, 4) }, 0)
	saf := res.ByClass[fault.ClassSAF]
	model := markov.PRTModel{M: 4, K: 2, PExcite: 1}
	predicted, err := model.DetectionProbability(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := saf.Ratio(); got < predicted-0.05 {
		t.Errorf("measured SAF detection %.4f below Markov prediction %.4f", got, predicted)
	}
}

// TestBerlekampMasseyClosesTheLoop: the TDB written by the memory walk
// (not the model!) synthesises back to the configured generator.
func TestBerlekampMasseyClosesTheLoop(t *testing.T) {
	cfg := prt.PaperWOMConfig()
	mem := ram.NewWOM(80, 4)
	prt.MustRunIteration(cfg, mem)
	seq := make([]gf.Elem, 80)
	for i := range seq {
		seq[i] = gf.Elem(mem.Read(i))
	}
	rec, l, err := lfsr.BerlekampMassey(cfg.Gen.Field, seq)
	if err != nil {
		t.Fatal(err)
	}
	if l != 2 || rec.Coeffs[1] != 2 || rec.Coeffs[2] != 2 {
		t.Errorf("recovered %v (L=%d), want the paper generator", rec, l)
	}
}

// TestMarchAndPRTAgreeOnCleanliness: across random geometries, both
// families must agree that an uninjected memory is clean.
func TestMarchAndPRTAgreeOnCleanliness(t *testing.T) {
	for _, n := range []int{17, 32, 63, 128} {
		for _, m := range []int{1, 4, 8} {
			var mem ram.Memory
			if m == 1 {
				mem = ram.NewBOM(n)
			} else {
				mem = ram.NewWOM(n, m)
			}
			mr := march.RunBackgrounds(march.MarchCMinus(), mem, march.DataBackgrounds(m))
			if mr.Detected {
				t.Errorf("March C- false positive at n=%d m=%d", n, m)
			}
			pass, err := SelfTest(mem)
			if err != nil {
				t.Fatal(err)
			}
			if !pass {
				t.Errorf("PRT false positive at n=%d m=%d", n, m)
			}
		}
	}
}
