package hotpathalloc_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/hotpathalloc"
)

func TestHotpathAlloc(t *testing.T) {
	analyzertest.Run(t, "testdata", hotpathalloc.Analyzer, "a")
}
