package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// This file is the streaming campaign layer: the fault universe is
// pulled from a fault.Source in fixed-size chunks instead of being
// materialized as one slice, so a campaign's resident fault storage is
// O(chunk × workers) — the universe size stops being a memory bound
// and becomes pure simulation time.  Each worker owns one reusable
// chunk buffer (plus, on the compiled path, its arena); chunks are
// claimed from the source under a mutex, replayed as program-width
// batches (64 machines per lane word), and the per-chunk verdicts
// handed to a sink callback.  On the ordered path the driver
// serializes sink calls behind one mutex, so sinks need no locking of
// their own; on the unordered path (ShardsCompiledUnordered) each
// worker owns a private sink and delivers lock-free — the caller
// merges the per-worker sinks once after the drain.
// Chunk completion order is scheduling-dependent, but every chunk is
// keyed by its universe index range, so any order-insensitive sink
// (tallies, bitmaps) observes deterministic results — and an
// order-sensitive one (the checkpoint layer's contiguous-cut tracker)
// can reorder on the [base, base+n) keys it is handed.

// DefaultChunk is the fault count pulled per chunk when the caller
// passes chunk <= 0: large enough to amortize the per-chunk costs
// (source lock, collapse map, sink call) over thousands of batches,
// small enough that a worker's resident faults stay ~100s of KB.
const DefaultChunk = 8192

// ChunkSink receives one completed chunk: the chunk claimed universe
// indices [base, base+n) from the source, and faults[i] (universe
// fault idx[i]) got verdict detected[i].  Chunks whose faults were all
// drop-filtered are still delivered (with empty slices), so a sink
// always observes every claimed index range exactly once — the
// invariant checkpoint cuts are built on.  The driver serializes sink
// calls; the slices are reused for the next chunk, so sinks must not
// retain them.
type ChunkSink func(base, n int, idx []int, faults []fault.Fault, detected []bool)

// StreamConfig parameterizes one streaming shard run.
type StreamConfig struct {
	// Chunk is the faults-per-pull (<= 0 selects DefaultChunk).
	Chunk int
	// Workers caps the worker goroutines (<= 0 selects GOMAXPROCS).
	Workers int
	// Drop skips faults whose universe index is set (nil keeps
	// everything) — the survivor filter of cross-test fault dropping.
	Drop *fault.BitSet
	// Base is the universe index of the source's current position.  A
	// fresh source streams from 0; a checkpoint resume Skips the source
	// past the completed prefix and sets Base to the skip count so
	// delivered indices stay universe-absolute.
	Base int
	// Collapse enables chunk-local structural fault collapsing
	// (ShardsCompiledStream only).
	Collapse bool
	// Arenas optionally pools the per-worker arenas
	// (ShardsCompiledStream only; nil builds fresh ones).
	Arenas *ArenaPool
}

func (c StreamConfig) chunkSize() int {
	if c.Chunk <= 0 {
		return DefaultChunk
	}
	return c.Chunk
}

func (c StreamConfig) workerCount() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// StreamShard drives a streaming campaign over a generic replay
// function: workers pull chunks from src, skip faults filtered by
// cfg.Drop, replay the rest in 64-fault batches through their private
// replay function (det[0] receives the batch's detection mask), and
// deliver verdicts to sink.  It returns the worker count and how many
// faults were simulated (after drop filtering; collapsing on the
// compiled wrapper reduces it further).
//
// Cancellation is cooperative at batch granularity: ctx is checked on
// every chunk claim and between the chunk's batches, an interrupted
// chunk is abandoned without reaching the sink (the sink only ever
// sees complete chunks), workers drain, and the error is ctx.Err().
func StreamShard(ctx context.Context, src fault.Source, cfg StreamConfig,
	newWorker func() (replay func(batch []fault.Fault, det []uint64) error, done func()),
	sink ChunkSink) (int, int, error) {
	return streamShard(ctx, src, cfg, nil, BatchSize, newWorker, sharedSink(sink), true)
}

// sharedSink adapts a single serialized sink to the per-worker sink
// factory shape of the generalized driver.
func sharedSink(sink ChunkSink) func(worker int) ChunkSink {
	return func(int) ChunkSink { return sink } //faultsim:alloc-ok one closure per drive call
}

// ShardsStream replays a recorded trace over a streaming universe with
// the per-batch interpreter — the reference streaming path, mirroring
// Shards.
func ShardsStream(ctx context.Context, tr *Trace, src fault.Source, cfg StreamConfig, sink ChunkSink) (int, int, error) {
	return streamShard(ctx, src, cfg, nil, BatchSize, func() (func([]fault.Fault, []uint64) error, func()) {
		return func(batch []fault.Fault, det []uint64) error {
			mask, err := ReplayBatch(tr, batch)
			det[0] = mask
			return err
		}, nil
	}, sharedSink(sink), true)
}

// ShardsCompiledStream replays a compiled program over a streaming
// universe: one arena per worker, reused across every batch of every
// chunk (optionally drawn from cfg.Arenas).  When cfg.Collapse is true
// each chunk is structurally collapsed before replay and the
// representative verdicts expanded back chunk-locally, so collapsing
// never needs the whole universe in memory either.
func ShardsCompiledStream(ctx context.Context, p *Program, src fault.Source, cfg StreamConfig, sink ChunkSink) (int, int, error) {
	return shardsCompiled(ctx, p, src, cfg, sharedSink(sink), true)
}

// ShardsCompiledUnordered is ShardsCompiledStream without the sink
// serialization: sinkFor(w) builds one private sink per worker, and
// each worker delivers its chunks to its own sink with no locking and
// no cross-worker ordering.  This removes the single-consumer
// bottleneck of the serialized path (per-worker sink-wait time is
// identically zero) for campaigns whose sinks are order-insensitive
// and mergeable — worker-local tallies and detection bitmaps, OR'd
// together once after the drivers drain.  Within one worker, chunks
// still arrive in claim order and every claimed index range is
// delivered exactly once across all sinks, so a merged result is
// deterministic whatever the scheduling.  Sinks needing a global
// order (checkpoint prefix cuts, live progress over the frontier)
// must stay on ShardsCompiledStream.
func ShardsCompiledUnordered(ctx context.Context, p *Program, src fault.Source, cfg StreamConfig, sinkFor func(worker int) ChunkSink) (int, int, error) {
	return shardsCompiled(ctx, p, src, cfg, sinkFor, false)
}

func shardsCompiled(ctx context.Context, p *Program, src fault.Source, cfg StreamConfig, sinkFor func(worker int) ChunkSink, serialize bool) (int, int, error) {
	var sum *fault.TraceSummary
	if cfg.Collapse {
		s := p.Summary()
		sum = &s
	}
	arenas := cfg.Arenas
	return streamShard(ctx, src, cfg, sum, p.BatchFaults(), func() (func([]fault.Fault, []uint64) error, func()) {
		a := arenas.Get(p)
		return func(batch []fault.Fault, det []uint64) error {
			return p.ReplayInto(a, batch, det)
		}, func() { arenas.Put(a) }
	}, sinkFor, serialize)
}

// streamShard is the shared driver; sum non-nil enables per-chunk
// structural collapsing; batchFaults is the machines per replay pass
// (the replay function's det buffer gets one word per 64).  sinkFor
// builds worker w's sink once at worker startup; with serialize the
// calls across all workers are additionally interlocked behind one
// mutex (the ordered ChunkSink contract), without it each worker
// calls its own sink lock-free (the unordered path).
//
//faultsim:hotpath
func streamShard(ctx context.Context, src fault.Source, cfg StreamConfig, sum *fault.TraceSummary, batchFaults int,
	newWorker func() (func([]fault.Fault, []uint64) error, func()),
	sinkFor func(worker int) ChunkSink, serialize bool) (int, int, error) {
	chunk := cfg.chunkSize()
	workers := cfg.workerCount()
	drop := cfg.Drop
	ctxDone := ctx.Done()
	var (
		srcMu     sync.Mutex
		base      = cfg.Base
		exhausted bool
		sinkMu    sync.Mutex
		stop      atomic.Bool
		reps      atomic.Int64
	)
	// pull claims the next chunk (its universe base index and length)
	// under the source lock; ok is false once the stream is drained.
	pull := func(buf []fault.Fault) (b, n int, ok bool) { //faultsim:alloc-ok one closure per streamShard call
		srcMu.Lock()
		defer srcMu.Unlock() //faultsim:alloc-ok open-coded defer, once per chunk claim, not per fault
		if exhausted {
			return 0, 0, false
		}
		n, more := src.Next(buf)
		b = base
		base += n
		if !more {
			exhausted = true
		}
		return b, n, true
	}
	errs := make([]error, workers) //faultsim:alloc-ok one slot per worker at startup
	reg := telemetry.Active()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { //faultsim:alloc-ok worker startup: one goroutine and closure per worker
			defer wg.Done() //faultsim:alloc-ok worker-lifetime defer
			sink := sinkFor(w)
			replay, done := newWorker()
			if done != nil {
				defer done() //faultsim:alloc-ok worker-lifetime defer
			}
			buf := make([]fault.Fault, chunk)             //faultsim:alloc-ok per-worker chunk buffer, reused for every chunk
			idx := make([]int, chunk)                     //faultsim:alloc-ok per-worker chunk buffer, reused for every chunk
			det := make([]bool, chunk)                    //faultsim:alloc-ok per-worker chunk buffer, reused for every chunk
			repDet := make([]bool, chunk)                 //faultsim:alloc-ok per-worker chunk buffer, reused for every chunk
			mask := make([]uint64, batchFaults/BatchSize) //faultsim:alloc-ok per-worker detection mask, reused for every batch
			// Telemetry: worker-local counters, flushed into the padded
			// per-worker slot once per chunk.  The source-claim and
			// sink-acquire waits are timed separately from the kernel so a
			// scaling run can see exactly where a worker's wall time goes.
			var tw *telemetry.Worker
			var tl telemetry.Local
			if reg != nil {
				tw = reg.Worker(w)
			}
			for !stop.Load() {
				// Cooperative cancellation, checked once per chunk claim: an
				// in-flight chunk is abandoned before its sink delivery, so
				// the universe prefix the sink has seen stays consistent.
				select {
				case <-ctxDone:
					reg.Flush(tw, &tl)
					return
				default:
				}
				var t0 time.Time
				if tw != nil {
					t0 = time.Now()
				}
				b, n, ok := pull(buf)
				if tw != nil {
					tl.SourceWaitNanos += uint64(time.Since(t0))
				}
				if !ok {
					reg.Flush(tw, &tl)
					return
				}
				faults := buf[:n]
				ids := idx[:0]
				if drop != nil {
					kept := faults[:0]
					for i, f := range faults {
						if !drop.Get(b + i) {
							kept = append(kept, f)
							ids = append(ids, b+i)
						}
					}
					faults = kept
				} else {
					for i := range faults {
						ids = append(ids, b+i)
					}
				}
				// Per-chunk collapsing: equivalence classes are computed
				// among the chunk's survivors only and expanded back before
				// the chunk leaves the worker — nothing outlives the chunk.
				r := faults
				var col fault.Collapsed
				if sum != nil && len(faults) > 0 {
					col = fault.Collapse(faults, sum)
					r = col.Reps
				}
				reps.Add(int64(len(r)))
				rd := repDet[:len(r)]
				failed := false
				if tw != nil {
					t0 = time.Now()
				}
				for lo := 0; lo < len(r); lo += batchFaults {
					select {
					case <-ctxDone:
						// Abandon the chunk mid-replay: none of its verdicts
						// reach the sink, so cancellation costs at most one
						// batch of latency and never a torn chunk.
						reg.Flush(tw, &tl)
						return
					default:
					}
					hi := lo + batchFaults
					if hi > len(r) {
						hi = len(r)
					}
					err := replay(r[lo:hi], mask)
					if err != nil {
						errs[w] = err
						stop.Store(true)
						failed = true
						break
					}
					for i := lo; i < hi; i++ {
						j := i - lo
						rd[i] = mask[j>>6]>>(uint(j)&63)&1 == 1
					}
				}
				if tw != nil {
					tl.KernelNanos += uint64(time.Since(t0))
					tl.Batches += uint64((len(r) + batchFaults - 1) / batchFaults)
					tl.Reps += uint64(len(r))
				}
				if failed {
					reg.Flush(tw, &tl)
					return
				}
				d := det[:len(faults)]
				if sum != nil && len(faults) > 0 {
					col.ExpandInto(d, rd)
				} else {
					copy(d, rd)
				}
				if serialize {
					if tw != nil {
						t0 = time.Now()
					}
					sinkMu.Lock()
					if tw != nil {
						tl.SinkWaitNanos += uint64(time.Since(t0))
						t0 = time.Now()
					}
					sink(b, n, ids, faults, d)
					sinkMu.Unlock()
				} else {
					// Unordered delivery: worker-private sink, no lock, no
					// wait — sink-wait time is identically zero by design.
					if tw != nil {
						t0 = time.Now()
					}
					sink(b, n, ids, faults, d)
				}
				if tw != nil {
					tl.SinkNanos += uint64(time.Since(t0))
					tl.Chunks++
					tl.Faults += uint64(len(faults))
					reg.ObserveIndex(int64(b + n))
					reg.Flush(tw, &tl)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return workers, int(reps.Load()), err
		}
	}
	if err := ctx.Err(); err != nil {
		return workers, int(reps.Load()), err
	}
	return workers, int(reps.Load()), nil
}
