package lfsr

import (
	"testing"

	"repro/internal/gf"
)

func TestCompanionMatchesStep(t *testing.T) {
	g := PaperGenPoly()
	c := Companion(g)
	w := MustWord(g, []gf.Elem{0, 1})
	v := []gf.Elem{0, 1}
	for i := 0; i < 300; i++ {
		w.Step()
		v = c.Apply(v)
		if !equalStates(w.State(), v) {
			t.Fatalf("companion diverged at step %d: %v vs %v", i, w.State(), v)
		}
	}
}

func TestCompanionOrderIsPeriod(t *testing.T) {
	c := Companion(PaperGenPoly())
	if got := c.Order(255); got != 255 {
		t.Errorf("companion order = %d, want 255", got)
	}
}

func TestCompanionDetNonzero(t *testing.T) {
	c := Companion(PaperGenPoly())
	// det of the 2x2 companion equals the weight on the oldest slot (a_k
	// up to sign); it must be nonzero for an invertible automaton.
	if c.Det() == 0 {
		t.Error("companion matrix singular")
	}
}

func TestJumpAhead(t *testing.T) {
	g := PaperGenPoly()
	for _, n := range []uint64{0, 1, 2, 17, 254, 255, 1000} {
		w := MustWord(g, []gf.Elem{0, 1})
		w.Run(int(n))
		jumped, err := JumpAhead(g, []gf.Elem{0, 1}, n)
		if err != nil {
			t.Fatal(err)
		}
		if !equalStates(w.State(), jumped) {
			t.Errorf("JumpAhead(%d) = %v, want %v", n, jumped, w.State())
		}
	}
	if _, err := JumpAhead(g, []gf.Elem{1}, 3); err == nil {
		t.Error("short state accepted")
	}
}

func TestJumpAheadFullPeriodIsIdentity(t *testing.T) {
	g := PaperGenPoly()
	c := Companion(g).Pow(255)
	if !c.IsIdentity() {
		t.Error("C^255 != I for the paper automaton")
	}
	if Companion(g).Pow(0).IsIdentity() != true {
		t.Error("C^0 must be identity")
	}
}

func TestMatrixAlgebra(t *testing.T) {
	f := gf.NewField(4)
	id := Identity(f, 3)
	if !id.IsIdentity() || id.Det() != 1 {
		t.Error("identity properties wrong")
	}
	c := Companion(MustGenPoly(f, []gf.Elem{1, 2, 0, 1})) // k=3
	if c.K != 3 {
		t.Fatalf("companion size wrong")
	}
	if !c.Mul(id).Equal(c) || !id.Mul(c).Equal(c) {
		t.Error("identity not neutral")
	}
	// Associativity spot check.
	c2 := c.Mul(c)
	if !c2.Mul(c).Equal(c.Mul(c2)) {
		t.Error("matrix multiplication not associative")
	}
	// Pow consistency.
	if !c.Pow(3).Equal(c.Mul(c).Mul(c)) {
		t.Error("Pow(3) != c*c*c")
	}
}

func TestSingularDet(t *testing.T) {
	f := gf.NewField(4)
	z := NewMatrix(f, 2)
	if z.Det() != 0 {
		t.Error("zero matrix det != 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("Order of singular matrix did not panic")
		}
	}()
	z.Order(255)
}

func TestMatrixString(t *testing.T) {
	f := gf.NewField(4)
	id := Identity(f, 2)
	if got := id.String(); got != "1 0\n0 1" {
		t.Errorf("String = %q", got)
	}
}

func TestOrderWrongBound(t *testing.T) {
	c := Companion(PaperGenPoly())
	// 7 is not a multiple of the order 255: must return 0.
	if got := c.Order(7); got != 0 {
		t.Errorf("Order with wrong bound = %d, want 0", got)
	}
}
