package a

import "context"

// In a test file Background is allowed — tests own their lifetimes.
func helperForTests(n int) error {
	return callee(context.Background(), n)
}

// ...unless the function takes a context; then the caller's must flow.
func testCtxDropped(ctx context.Context, n int) error {
	return callee(context.Background(), n) // want `ctxflow: context.Background inside a function with a context parameter; pass the caller's context`
}
