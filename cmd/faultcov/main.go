// Command faultcov regenerates the paper's evaluation: every figure
// and quantitative claim as a table (the same output as
// `go test -bench=.` produces, without the timing).
//
// Usage:
//
//	faultcov                 # all experiments (compiled engine)
//	faultcov -exp e6         # one experiment; -exp '?' lists the ids
//	faultcov -csv            # CSV output
//	faultcov -engine oracle  # per-fault reference engine
//	faultcov -workers 4      # fixed campaign worker count
//	faultcov -collapse=false # simulate the full universe, uncollapsed
//
// The experiment catalogue is defined once in this file (the order
// slice below) and the -exp help text is generated from it, so the two
// cannot drift apart as experiments are added.
//
// The -engine flag selects the campaign execution strategy: "compiled"
// (default) lowers the recorded test trace into a flat instruction
// program replayed allocation-free over per-worker arenas with
// structural fault collapsing; "bitpar" is the per-batch trace
// interpreter; "oracle" re-runs the full algorithm once per injected
// fault.  All three produce identical tables — including the
// signature-compressed (MISR/BIST) rows, whose aliasing the compiled
// engine's observers replay exactly; the oracle is the reference the
// replay engines are property-tested against.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro"
	"repro/internal/coverage"
	"repro/internal/report"
)

// experiments is the catalogue, in presentation order.  The -exp flag
// help and the unknown-id error are both generated from it.
type experiment struct {
	id    string
	build func() *report.Table
}

func catalogue() []experiment {
	return []experiment{
		{"fig1a", func() *report.Table { return repro.ExperimentFig1a(16) }},
		{"fig1b", func() *report.Table { return repro.ExperimentFig1b(257) }},
		{"fig2", func() *report.Table { return repro.ExperimentFig2([]int{64, 256, 1024}) }},
		{"e4", func() *report.Table { return repro.ExperimentSingleCell(48) }},
		{"e5", func() *report.Table { return repro.ExperimentCoupling(48) }},
		{"e6", func() *report.Table { return repro.ExperimentPRTvsMarch(48, 4) }},
		{"e7", repro.ExperimentBISTOverhead},
		{"e8", repro.ExperimentMarkov},
		{"e9", func() *report.Table { return repro.ExperimentIntraWord(32, 4) }},
		{"e10", func() *report.Table { return repro.ExperimentQualityFactors(48) }},
		{"e11", repro.ExperimentMultiplierSynthesis},
		{"e12", func() *report.Table { return repro.ExperimentNPSF(64, 8) }},
		{"e13", func() *report.Table { return repro.ExperimentRetention(48) }},
		{"e14", func() *report.Table { return repro.ExperimentRingMode([]int{64, 255, 257}) }},
		{"e15", func() *report.Table { return repro.ExperimentMISR(64) }},
		{"e16", func() *report.Table {
			return repro.ExperimentMISRAliasing([]int{64, 256}, []int{1, 2, 4, 8, 16})
		}},
	}
}

func main() {
	exps := catalogue()
	order := make([]string, len(exps))
	byID := make(map[string]func() *report.Table, len(exps))
	for i, e := range exps {
		order[i] = e.id
		byID[e.id] = e.build
	}
	ids := strings.Join(order, ", ")

	exp := flag.String("exp", "all", fmt.Sprintf("experiment id: %s or all", ids))
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	engine := flag.String("engine", "compiled", "campaign engine: compiled (arena replay), bitpar (per-batch interpreter) or oracle (one run per fault)")
	workers := flag.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS)")
	collapse := flag.Bool("collapse", true, "collapse equivalent faults before simulation (compiled engine)")
	flag.Parse()

	eng, err := coverage.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultcov: %v\n", err)
		os.Exit(2)
	}
	coverage.SetDefaultEngine(eng)
	coverage.SetDefaultWorkers(*workers)
	coverage.SetCollapse(*collapse)

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	if !*csv {
		fmt.Printf("# engine=%s workers=%d collapse=%v\n\n", eng, effWorkers, *collapse)
	}

	id := strings.ToLower(*exp)
	var tables []*report.Table
	if id == "all" {
		for _, k := range order {
			tables = append(tables, byID[k]())
		}
	} else {
		f, ok := byID[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "faultcov: unknown experiment %q (choose from %s)\n", *exp, ids)
			os.Exit(2)
		}
		tables = append(tables, f())
	}
	for _, t := range tables {
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Render(os.Stdout)
		}
		fmt.Println()
	}
}
