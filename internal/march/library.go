package march

// Canonical March algorithms, as catalogued by van de Goor (the
// paper's reference [1]).  Complexities are in operations per cell.

// MATS is the 4n Modified Algorithmic Test Sequence:
// {c(w0); c(r0,w1); c(r1)}.  Detects SAF only.
func MATS() Test {
	return Test{Name: "MATS", Elems: []Element{
		{Any, []Op{W(0)}},
		{Any, []Op{R(0), W(1)}},
		{Any, []Op{R(1)}},
	}}
}

// MATSPlus is the 5n MATS+: {c(w0); ⇑(r0,w1); ⇓(r1,w0)}.  Detects SAF
// and AF.
func MATSPlus() Test {
	return Test{Name: "MATS+", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1)}},
		{Down, []Op{R(1), W(0)}},
	}}
}

// MATSPlusPlus is the 6n MATS++: {c(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}.
// Detects SAF, AF and TF.
func MATSPlusPlus() Test {
	return Test{Name: "MATS++", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1)}},
		{Down, []Op{R(1), W(0), R(0)}},
	}}
}

// MarchX is the 6n March X: {c(w0); ⇑(r0,w1); ⇓(r1,w0); c(r0)}.
// Detects SAF, AF, TF and CFin.
func MarchX() Test {
	return Test{Name: "March X", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1)}},
		{Down, []Op{R(1), W(0)}},
		{Any, []Op{R(0)}},
	}}
}

// MarchY is the 8n March Y: {c(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); c(r0)}.
// Adds linked-TF coverage over March X.
func MarchY() Test {
	return Test{Name: "March Y", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1), R(1)}},
		{Down, []Op{R(1), W(0), R(0)}},
		{Any, []Op{R(0)}},
	}}
}

// MarchCMinus is the 10n March C-:
// {c(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); c(r0)}.
// Detects SAF, AF, TF, CFin, CFid, CFst — the workhorse of production
// memory test.
func MarchCMinus() Test {
	return Test{Name: "March C-", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1)}},
		{Up, []Op{R(1), W(0)}},
		{Down, []Op{R(0), W(1)}},
		{Down, []Op{R(1), W(0)}},
		{Any, []Op{R(0)}},
	}}
}

// MarchA is the 15n March A:
// {c(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}.
// The example algorithm quoted (abbreviated) in the paper's §1.
func MarchA() Test {
	return Test{Name: "March A", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1), W(0), W(1)}},
		{Up, []Op{R(1), W(0), W(1)}},
		{Down, []Op{R(1), W(0), W(1), W(0)}},
		{Down, []Op{R(0), W(1), W(0)}},
	}}
}

// MarchB is the 17n March B:
// {c(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}.
func MarchB() Test {
	return Test{Name: "March B", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1), R(1), W(0), R(0), W(1)}},
		{Up, []Op{R(1), W(0), W(1)}},
		{Down, []Op{R(1), W(0), W(1), W(0)}},
		{Down, []Op{R(0), W(1), W(0)}},
	}}
}

// MarchU is the 13n March U:
// {c(w0); ⇑(r0,w1,r1,w0); ⇑(r0,w1); ⇓(r1,w0,r0,w1); ⇓(r1,w0)}.
func MarchU() Test {
	return Test{Name: "March U", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1), R(1), W(0)}},
		{Up, []Op{R(0), W(1)}},
		{Down, []Op{R(1), W(0), R(0), W(1)}},
		{Down, []Op{R(1), W(0)}},
	}}
}

// MarchLR is the 14n March LR (without BDS):
// {c(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); c(r0)}.
func MarchLR() Test {
	return Test{Name: "March LR", Elems: []Element{
		{Any, []Op{W(0)}},
		{Down, []Op{R(0), W(1)}},
		{Up, []Op{R(1), W(0), R(0), W(1)}},
		{Up, []Op{R(1), W(0)}},
		{Up, []Op{R(0), W(1), R(1), W(0)}},
		{Any, []Op{R(0)}},
	}}
}

// MarchSS is the 22n March SS (Hamdioui et al.), targeting the full
// simple static fault space including read-destructive faults:
// {c(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0);
//
//	⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); c(r0)}.
func MarchSS() Test {
	return Test{Name: "March SS", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), R(0), W(0), R(0), W(1)}},
		{Up, []Op{R(1), R(1), W(1), R(1), W(0)}},
		{Down, []Op{R(0), R(0), W(0), R(0), W(1)}},
		{Down, []Op{R(1), R(1), W(1), R(1), W(0)}},
		{Any, []Op{R(0)}},
	}}
}

// MarchLA is the 22n March LA (van de Goor/Al-Ars), targeting linked
// faults:
// {c(w0); ⇑(r0,w1,w0,w1,r1); ⇑(r1,w0,w1,w0,r0);
//
//	⇓(r0,w1,w0,w1,r1); ⇓(r1,w0,w1,w0,r0); ⇓(r0)}.
func MarchLA() Test {
	return Test{Name: "March LA", Elems: []Element{
		{Any, []Op{W(0)}},
		{Up, []Op{R(0), W(1), W(0), W(1), R(1)}},
		{Up, []Op{R(1), W(0), W(1), W(0), R(0)}},
		{Down, []Op{R(0), W(1), W(0), W(1), R(1)}},
		{Down, []Op{R(1), W(0), W(1), W(0), R(0)}},
		{Down, []Op{R(0)}},
	}}
}

// Library returns the full algorithm catalogue in increasing
// complexity order.
func Library() []Test {
	return []Test{
		MATS(), MATSPlus(), MATSPlusPlus(),
		MarchX(), MarchY(), MarchCMinus(),
		MarchU(), MarchLR(), MarchA(), MarchB(),
		MarchSS(), MarchLA(),
	}
}

// ByName returns the library algorithm with the given name, or false.
func ByName(name string) (Test, bool) {
	for _, t := range Library() {
		if t.Name == name {
			return t, true
		}
	}
	return Test{}, false
}
