// The trace compiler.  Compilation must be deterministic: compiled
// programs are cached process-wide by trace identity, and the collapse
// rules and checkpoint spec hashes are derived from compiler output,
// so the same trace must lower to the same instruction stream on every
// run.
//
//faultsim:deterministic

package sim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/fault"
	"repro/internal/ram"
)

// This file is the trace compiler: Trace.Ops — a per-op tree of kinds,
// annotations and Linear/Fold pointers — is lowered once per campaign
// into a flat instruction stream the replay kernels execute with no
// per-op decoding beyond a six-way opcode dispatch.  Compilation
// pre-resolves everything the generic replay loop recomputes per batch:
//
//   - lane offsets (cell*width) per instruction;
//   - clean data and expected checked-read values, expanded from Words
//     into broadcast lane words in one shared pool;
//   - affine recurrence writes, flattened into (back, dst, mask) terms;
//   - signature folds and observer compare points, resolved to offsets
//     into a per-arena accumulator buffer with their GF(2) matrices
//     deduplicated in one shared row pool;
//   - the trace suffix after the last detection point (checked read or
//     observer compare), which is trimmed: ops past the final
//     comparison cannot affect detection.

// Instruction opcodes, stored in the top three bits of instr.opAddr.
// The read-like opcodes (<= opFold) and write-like opcodes share their
// kernel prologue, so the ordering is load-bearing.  opCheckWrite is
// the fused super-op (read + check + literal write on one cell) and is
// dispatched explicitly before the read/write split.
const (
	opRead       uint32 = iota // plain read: sense + hooks + history
	opCheck                    // checked read: opRead + comparison against lanes
	opFold                     // read folded into a signature observer (side table)
	opWrite                    // broadcast write of a literal clean value
	opAffine                   // write recomputed from earlier reads (GF(2)-affine)
	opObserve                  // observer compare point (no memory access)
	opCheckWrite               // fused checked read + literal write of one cell

	opShift  = 29
	addrMask = 1<<opShift - 1
)

// Lane-width configuration: a program simulates laneWords*64 machines
// per batch.  1 word is the classic 64-machine batch; 4 and 8 words
// (256/512 machines) amortize per-op dispatch, hook-flag checks and
// per-batch arena resets over wider lane blocks.
const MaxLaneWords = 8

// ValidLaneWords reports whether w is a supported lane width (in
// 64-machine words).
func ValidLaneWords(w int) bool { return w == 1 || w == 4 || w == 8 }

// LaneWordsForMachines maps a machines-per-batch count (64, 256, 512 —
// the unit user-facing knobs speak) to lane words.
func LaneWordsForMachines(machines int) (int, error) {
	if machines%BatchSize != 0 || !ValidLaneWords(machines/BatchSize) {
		return 0, fmt.Errorf("sim: unsupported lane width %d machines (want 64, 256 or 512)", machines)
	}
	return machines / BatchSize, nil
}

// instr is one compiled operation, packed to 16 bytes so large traces
// stream through cache.  opAddr carries the opcode in its top three
// bits and the cell index below.  lane indexes the program's lanePool
// (width words): the expected value for opCheck, the literal data for
// opWrite, the affine offset for opAffine.  terms[t0:t0+tn] are the
// affine terms of an opAffine.  A fused opCheckWrite keeps the
// expected value in lane and reuses t0 (free: fused ops are never
// affine) as the lanePool offset of the literal write data.
type instr struct {
	opAddr uint32
	lane   int32 // offset into lanePool
	t0, tn int32
}

// Width-1 instruction packing: the whole operation fits one uint32 —
// opcode in the top three bits, the single data/expected bit below it,
// the cell in the low 28 bits — quartering the instruction stream the
// width-1 kernel pulls through cache.  Affine ops keep their terms in
// a side table (aff1) consumed in program order; folds and observes
// consume the shared folds/observes tables, also in program order, and
// fused opCheckWrite ops pull their write bit from the fus1 side table
// (the packed word only has room for the expected bit).
const (
	w1DataShift = 28
	w1AddrMask  = 1<<w1DataShift - 1
)

// affEntry is the side-table record of one width-1 affine write.
type affEntry struct {
	t0, tn int32
}

// foldRec is the side-table record of one signature fold, consumed in
// program order by both kernels: acc is the observer's offset into the
// arena's accumulator buffer, bits its width, step/tap offsets into
// the shared row pool, and checked carries an AnnotateChecked that
// coincides with the fold.
type foldRec struct {
	acc, bits int32
	step, tap int32
	checked   bool
}

// obsRec is the side-table record of one observer compare point.
type obsRec struct {
	acc, bits int32
}

// affTerm is one flattened affine contribution: source-read bits
// selected by mask, from the read back steps ago, XORed into output
// row dst.
type affTerm struct {
	back int32
	dst  int32
	mask uint32
}

// Program is a compiled trace, shared read-only by all replay workers
// of a campaign; per-worker mutable state lives in Arena.
type Program struct {
	size    int
	width   int
	maxBack int

	// laneWords is the lane-block width W in 64-machine words: every
	// cell-bit owns W consecutive lane words, one batch simulates W*64
	// machines.  Lane group g (machines [g*64, g*64+64)) is word g of
	// each block, so each group in isolation has exactly the classic
	// 64-lane shape the fault-model hooks were written against.
	laneWords int

	code     []instr
	terms    []affTerm
	lanePool []uint64

	// Width-1 specialization: one packed uint32 per op plus the affine
	// side table; empty for wider memories.
	code1 []uint32
	aff1  []affEntry

	// fus1 holds the write bits of width-1 fused opCheckWrite ops,
	// consumed in program order (the packed word carries only the
	// expected bit).
	fus1  []uint8
	fused int // fused super-op count

	// Observer state layout: folds/observes are consumed in program
	// order by the kernels, rowPool holds the deduplicated step/tap
	// matrices, accWords sizes the arena's accumulator buffer and
	// obsBits its widest-observer scratch.
	folds    []foldRec
	observes []obsRec
	rowPool  []uint32
	accWords int
	obsBits  int

	// initLanes is the pre-run memory expanded to broadcast lane words;
	// arenas restore dirtied cells from it between batches.
	initLanes []uint64

	trimmed int // trace ops dropped after the last detection point
	affine  bool
	// dense marks traces that write most of the array (full-array test
	// algorithms): per-cell dirty tracking would record nearly every
	// cell, so arenas skip it and restore wholesale between batches.
	dense bool
	// expect holds per cell-bit the checked-read polarity sets plus the
	// fault.ExpectFolded flag for bits feeding a signature observer;
	// see fault.TraceSummary.
	expect []uint8
}

// Size returns the number of memory cells.
func (p *Program) Size() int { return p.size }

// Width returns the cell width in bits.
func (p *Program) Width() int { return p.width }

// Ops returns the compiled instruction count.
func (p *Program) Ops() int { return len(p.code) }

// LaneWords returns the lane-block width W in 64-machine words.
func (p *Program) LaneWords() int { return p.laneWords }

// BatchFaults returns the machines simulated per replay pass:
// laneWords*64.
func (p *Program) BatchFaults() int { return p.laneWords * BatchSize }

// FusedOps returns how many read-check-write sequences the compiler
// collapsed into fused super-ops.
func (p *Program) FusedOps() int { return p.fused }

// TrimmedOps returns how many trailing trace ops the compiler dropped
// because no checked read follows them.
func (p *Program) TrimmedOps() int { return p.trimmed }

// Summary exposes the trace properties structural fault collapsing may
// condition on.
func (p *Program) Summary() fault.TraceSummary {
	return fault.TraceSummary{Width: p.width, Affine: p.affine, Expect: p.expect}
}

// appendLanes expands w into width broadcast lane words appended to the
// pool and returns their offset.
func (p *Program) appendLanes(w ram.Word) int32 {
	off := int32(len(p.lanePool))
	for b := 0; b < p.width; b++ {
		var l uint64
		if w>>uint(b)&1 == 1 {
			l = ^uint64(0)
		}
		p.lanePool = append(p.lanePool, l)
	}
	return off
}

// Compile lowers a recorded trace into a Program simulating
// laneWords*64 machines per batch (laneWords of 1, 4 or 8).  It fails
// on traces replay would also reject: no detection points (checked
// reads or observer compares), an affine write referencing a read that
// never happened, or a fold/observe of an unregistered observer.
//
// Besides lowering, the compiler fuses each March-style
// read-check-write sequence — a checked, unfolded read immediately
// followed by a literal write of the same cell — into one opCheckWrite
// super-op: one dispatch, one lane load, one compare, one store, where
// the unfused stream pays two of each.
func Compile(tr *Trace, laneWords int) (*Program, error) {
	if !ValidLaneWords(laneWords) {
		return nil, fmt.Errorf("sim: unsupported lane width %d words (want 1, 4 or 8)", laneWords)
	}
	if !tr.Replayable() {
		return nil, fmt.Errorf("sim: trace has no checked reads or observer compares — the runner does not annotate for replay")
	}
	last := -1
	for i := range tr.Ops {
		if (tr.Ops[i].Kind == ram.OpRead && tr.Ops[i].Checked) || tr.Ops[i].Kind == OpObserve {
			last = i
		}
	}
	ops := tr.Ops[:last+1]

	p := &Program{
		size:      tr.Size,
		width:     tr.Width,
		maxBack:   tr.MaxBack,
		laneWords: laneWords,
		code:      make([]instr, 0, len(ops)),
		trimmed:   len(tr.Ops) - len(ops),
		expect:    make([]uint8, tr.Size*tr.Width),
	}
	// Observer accumulator layout: one contiguous arena buffer, offsets
	// in registration order.
	obsOff := make([]int32, len(tr.Observers))
	for id, bits := range tr.Observers {
		obsOff[id] = int32(p.accWords)
		p.accWords += bits
		if bits > p.obsBits {
			p.obsBits = bits
		}
	}
	rowIndex := make(map[string]int32)
	internRows := func(rows []uint32) int32 {
		key := string(rowKey(rows))
		if off, ok := rowIndex[key]; ok {
			return off
		}
		off := int32(len(p.rowPool))
		p.rowPool = append(p.rowPool, rows...)
		rowIndex[key] = off
		return off
	}
	// initLanes layout (as for Arena.lanes): cell blocks of
	// laneWords*width words, word (c*laneWords+g)*width+b holding lane
	// group g of bit b — each group's block is contiguous per cell, so
	// the 64-lane hook adapters address their group with one offset.
	p.initLanes = make([]uint64, tr.Size*tr.Width*laneWords)
	for c, w := range tr.Init {
		for b := 0; b < tr.Width; b++ {
			if w>>uint(b)&1 == 1 {
				for g := 0; g < laneWords; g++ {
					p.initLanes[(c*laneWords+g)*tr.Width+b] = ^uint64(0)
				}
			}
		}
	}

	limit := addrMask
	if tr.Width == 1 {
		limit = w1AddrMask
	}
	if tr.Size > limit {
		return nil, fmt.Errorf("sim: %d cells exceed the compiler's %d-cell address space", tr.Size, limit)
	}
	written := make([]bool, tr.Size)
	distinct := 0
	reads := 0
	for i := 0; i < len(ops); i++ {
		op := &ops[i]
		// Op fusion: a checked, unfolded read immediately followed by a
		// literal write of the same cell — the inner step of every March
		// element — collapses into one opCheckWrite super-op.  The read
		// still counts toward affine back distances and pushes history;
		// the write still counts toward dense-trace detection.
		if op.Kind == ram.OpRead && op.Checked && op.Fold == nil && i+1 < len(ops) {
			if nxt := &ops[i+1]; nxt.Kind == ram.OpWrite && nxt.Lin == nil && nxt.Addr == op.Addr {
				in := instr{opAddr: uint32(op.Addr) | opCheckWrite<<opShift}
				in.lane = p.appendLanes(op.Data)
				in.t0 = p.appendLanes(nxt.Data)
				for b := 0; b < tr.Width; b++ {
					p.expect[op.Addr*tr.Width+b] |= 1 << uint(op.Data>>uint(b)&1)
				}
				reads++
				if !written[nxt.Addr] {
					written[nxt.Addr] = true
					distinct++
				}
				p.code = append(p.code, in)
				p.fused++
				i++
				continue
			}
		}
		in := instr{opAddr: uint32(op.Addr)}
		switch {
		case op.Kind == OpObserve:
			if op.Addr < 0 || op.Addr >= len(tr.Observers) || tr.Observers[op.Addr] == 0 {
				return nil, fmt.Errorf("sim: observe of unregistered observer %d", op.Addr)
			}
			in.opAddr = uint32(op.Addr) | opObserve<<opShift
			p.observes = append(p.observes, obsRec{
				acc: obsOff[op.Addr], bits: int32(tr.Observers[op.Addr]),
			})
		case op.Kind == ram.OpRead && op.Fold != nil:
			f := op.Fold
			if f.Obs < 0 || f.Obs >= len(tr.Observers) || tr.Observers[f.Obs] != len(f.Step) {
				return nil, fmt.Errorf("sim: fold into unregistered observer %d", f.Obs)
			}
			in.opAddr |= opFold << opShift
			in.lane = p.appendLanes(op.Data)
			p.folds = append(p.folds, foldRec{
				acc:     obsOff[f.Obs],
				bits:    int32(len(f.Step)),
				step:    internRows(f.Step),
				tap:     internRows(f.Tap),
				checked: op.Checked,
			})
			for b := 0; b < tr.Width; b++ {
				if op.Checked {
					p.expect[op.Addr*tr.Width+b] |= 1 << uint(op.Data>>uint(b)&1)
				}
				for _, m := range f.Tap {
					if m>>uint(b)&1 == 1 {
						// The bit feeds a signature register: flag it so
						// trace-conditioned fault collapsing cannot pair
						// polarities whose fold streams differ.
						p.expect[op.Addr*tr.Width+b] |= fault.ExpectFolded
						break
					}
				}
			}
			reads++
		case op.Kind == ram.OpRead:
			if op.Checked {
				in.opAddr |= opCheck << opShift
				in.lane = p.appendLanes(op.Data)
				for b := 0; b < tr.Width; b++ {
					p.expect[op.Addr*tr.Width+b] |= 1 << uint(op.Data>>uint(b)&1)
				}
			}
			reads++
		case op.Lin == nil:
			in.opAddr |= opWrite << opShift
			in.lane = p.appendLanes(op.Data)
		default:
			in.opAddr |= opAffine << opShift
			p.affine = true
			in.lane = p.appendLanes(op.Lin.Offset)
			in.t0 = int32(len(p.terms))
			for j, back := range op.Lin.Back {
				if back > reads {
					return nil, fmt.Errorf("sim: linear write references read %d back but only %d reads recorded", back, reads)
				}
				for r, m := range op.Lin.Rows[j] {
					if m != 0 {
						p.terms = append(p.terms, affTerm{back: int32(back), dst: int32(r), mask: m})
					}
				}
			}
			in.tn = int32(len(p.terms)) - in.t0
		}
		if op.Kind == ram.OpWrite && !written[op.Addr] {
			written[op.Addr] = true
			distinct++
		}
		p.code = append(p.code, in)
	}
	p.dense = 2*distinct >= tr.Size
	if tr.Width == 1 {
		p.pack1()
	}
	return p, nil
}

// rowKey serialises a row-mask matrix for deduplication in the shared
// row pool (folds of one observer typically repeat the same step/tap
// matrices thousands of times).
func rowKey(rows []uint32) []byte {
	b := make([]byte, 4*len(rows))
	for i, r := range rows {
		binary.LittleEndian.PutUint32(b[4*i:], r)
	}
	return b
}

// pack1 builds the width-1 instruction stream from the compiled (and
// fused) code: the data/expected bit rides in the instruction word
// (recovered from the instruction's lanePool entry — width 1, so one
// broadcast word per entry), affine term windows in a side table,
// fused write bits in fus1; folds and observes consume the shared side
// tables in program order.
func (p *Program) pack1() {
	p.code1 = make([]uint32, 0, len(p.code))
	bit := func(off int32) uint32 { return uint32(p.lanePool[off] & 1) }
	for i := range p.code {
		in := &p.code[i]
		oa := in.opAddr
		switch in.opAddr >> opShift {
		case opRead, opObserve:
			// No data bit: a plain read senses whatever is stored, an
			// observe touches no memory.
		case opAffine:
			oa |= bit(in.lane) << w1DataShift
			p.aff1 = append(p.aff1, affEntry{t0: in.t0, tn: in.tn})
		case opCheckWrite:
			oa |= bit(in.lane) << w1DataShift
			p.fus1 = append(p.fus1, uint8(p.lanePool[in.t0]&1))
		default: // opCheck, opFold, opWrite
			oa |= bit(in.lane) << w1DataShift
		}
		p.code1 = append(p.code1, oa)
	}
}
