package a

import "os"

// No marker on this file or function: a read path may defer Close
// without a finding.
func readAll(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, st.Size())
	_, err = f.Read(buf)
	return buf, err
}
