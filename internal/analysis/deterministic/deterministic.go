// Package deterministic defines an analyzer that flags sources of
// nondeterminism in code marked //faultsim:deterministic — trace
// compilation, structural collapsing, checkpoint encoding, sink
// folding and report emission, whose byte-identical-output contracts
// (streaming ≡ materialized ≡ resumed) are otherwise guarded only by
// runtime property tests.
package deterministic

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/faultsim"
)

const doc = `flag nondeterminism in //faultsim:deterministic functions

In a function marked //faultsim:deterministic (or any function of a
file whose header carries the marker), the following are reported:
range over a map (iteration order is randomized), calls to time.Now /
time.Since / time.Until (wall-clock values leaking into results), the
process-seeded global math/rand and math/rand/v2 top-level functions
(explicitly seeded *rand.Rand instances are fine), and select
statements with two or more communication cases (the runtime picks a
ready case uniformly at random).  A select with one communication case
plus default — the non-blocking cancellation poll — is allowed.  Waive
an individual finding with a justification:
"//faultsim:ordered \"<why this is deterministic anyway>\"".`

// Analyzer is the deterministic analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "deterministic",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	info := faultsim.Collect(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !info.FuncMarked(f, fn, faultsim.Deterministic) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				check(pass, info, n)
				return true
			})
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, info *faultsim.Info, n ast.Node) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		t := pass.TypesInfo.TypeOf(n.X)
		if t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				info.Report(pass, n.Pos(), faultsim.Ordered,
					"deterministic: map iteration order is randomized")
			}
		}
	case *ast.SelectStmt:
		comm := 0
		for _, cl := range n.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
				comm++
			}
		}
		if comm >= 2 {
			info.Report(pass, n.Pos(), faultsim.Ordered,
				"deterministic: select with %d communication cases resolves randomly when several are ready", comm)
		}
	case *ast.CallExpr:
		fn := calleeFunc(pass, n)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		// Package-level functions only: methods on explicitly seeded
		// *rand.Rand values (and time.Time values) are deterministic.
		if fn.Type().(*types.Signature).Recv() != nil {
			return
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				info.Report(pass, n.Pos(), faultsim.Ordered,
					"deterministic: time.%s feeds wall-clock state into a deterministic path", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			// Constructors (rand.New, rand.NewSource, rand.NewPCG, ...)
			// build explicitly seeded generators and are the fix, not the
			// problem; everything else draws from the process-seeded
			// global source.
			if strings.HasPrefix(fn.Name(), "New") {
				return
			}
			info.Report(pass, n.Pos(), faultsim.Ordered,
				"deterministic: global %s.%s is process-seeded; use an explicitly seeded rand.New(rand.NewSource(seed))", fn.Pkg().Name(), fn.Name())
		}
	}
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
