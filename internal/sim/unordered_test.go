package sim

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
)

// The unordered driver must deliver every universe index exactly once
// across all per-worker sinks, with verdicts identical to the
// serialized path — the merge of worker-private sinks is then a pure
// union.
func TestUnorderedMatchesOrdered(t *testing.T) {
	const n = 41
	tr := recordMarch(t, march.MATSPlus(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StandardUniverse(n, 1, 6, 9).Faults
	ctx := context.Background()
	wantDet, _, err := ShardsCompiled(ctx, p, faults, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 100, 4096} {
		for _, collapse := range []bool{false, true} {
			const workers = 4
			sinks := make([]*collectSink, workers)
			_, _, err := ShardsCompiledUnordered(ctx, p, fault.SliceSource(faults),
				StreamConfig{Chunk: chunk, Workers: workers, Collapse: collapse},
				func(w int) ChunkSink {
					sinks[w] = newCollectSink()
					return sinks[w].sink
				})
			if err != nil {
				t.Fatal(err)
			}
			merged := newCollectSink()
			for w, cs := range sinks {
				if cs == nil {
					t.Fatalf("chunk=%d: sink factory never called for worker %d", chunk, w)
				}
				for i, d := range cs.det {
					if _, dup := merged.det[i]; dup {
						t.Fatalf("chunk=%d: universe index %d delivered to two workers", chunk, i)
					}
					merged.det[i] = d
					merged.seen++
				}
			}
			if merged.seen != len(faults) {
				t.Fatalf("chunk=%d collapse=%v: %d verdicts, want %d", chunk, collapse, merged.seen, len(faults))
			}
			for i := range faults {
				if merged.det[i] != wantDet[i] {
					t.Fatalf("chunk=%d collapse=%v fault %d: unordered %v, shard %v",
						chunk, collapse, i, merged.det[i], wantDet[i])
				}
			}
		}
	}
}

// With a drop filter the unordered path must skip exactly the dropped
// indices, like the serialized path.
func TestUnorderedDropFilter(t *testing.T) {
	const n = 24
	tr := recordMarch(t, march.MarchCMinus(), n)
	p, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StandardUniverse(n, 1, 4, 5).Faults
	drop := fault.NewBitSet(len(faults))
	for i := 0; i < len(faults); i += 3 {
		drop.Set(i)
	}
	sinks := make([]*collectSink, 3)
	_, _, err = ShardsCompiledUnordered(context.Background(), p, fault.SliceSource(faults),
		StreamConfig{Chunk: 11, Workers: 3, Drop: drop},
		func(w int) ChunkSink {
			sinks[w] = newCollectSink()
			return sinks[w].sink
		})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for _, cs := range sinks {
		for i := range cs.det {
			if drop.Get(i) {
				t.Fatalf("dropped index %d was delivered", i)
			}
			seen++
		}
	}
	if want := len(faults) - drop.Count(); seen != want {
		t.Fatalf("delivered %d survivors, want %d", seen, want)
	}
}
