// Structural fault collapsing.  Collapse must be deterministic: the
// streaming drivers collapse chunk-locally on every run and the
// equivalence property tests byte-compare collapsed campaigns against
// full ones, so class representatives may not depend on iteration
// order.
//
//faultsim:deterministic

package fault

import "repro/internal/telemetry"

// Structural fault collapsing: before a campaign simulates a universe,
// faults that provably produce the same detection outcome are grouped
// into equivalence classes, one representative per class is simulated,
// and the representative's result is expanded back over the class.
// Every rule here is an exact equivalence — never a dominance
// heuristic — so collapsed campaigns are byte-identical to full ones
// (the engine-equivalence property tests assert this).
//
// Two rule families exist:
//
//   - trace-independent structural rules: value-identical duplicates;
//     bridging faults, whose wired-AND/OR behaviour is symmetric in the
//     two bridged bits (BF{a~b} ≡ BF{b~a}); and degenerate "benign"
//     instances that behave exactly like a fault-free memory (NPSF
//     with an incomplete neighbourhood, self-aliasing decoder faults,
//     self-bridged bits).
//
//   - trace-conditioned rules, enabled by a TraceSummary from the trace
//     compiler: when the trace has no affine recurrence writes, read
//     values feed nothing but the checked-read comparators and the
//     signature observers, so a stuck-at fault is detected exactly when
//     some checked read of its cell expects the opposite polarity or
//     the bit's error pattern survives an observer.  If checked reads
//     expect both polarities of a bit, SA0 and SA1 on that bit are both
//     detected and collapse to a single representative; if neither
//     polarity is checked AND the bit never feeds a signature observer,
//     both are undetected and also collapse.  A folded-but-unchecked
//     bit stays uncollapsed: SA0 and SA1 inject different error
//     patterns into the register and may alias differently.

// TraceSummary captures the replay-relevant properties of a recorded
// test trace that trace-conditioned collapsing rules rely on.  It is
// produced by the trace compiler (sim.(*Program).Summary); passing nil
// to Collapse restricts it to the trace-independent rules.
type TraceSummary struct {
	// Width is the memory's cell width in bits.
	Width int
	// Affine reports whether any write derives from earlier reads.
	// When true, read errors propagate between cells and per-cell
	// detection reasoning is unsound, so the SAF rule is disabled.
	Affine bool
	// Expect[cell*Width+bit] is the set of polarities checked reads
	// expect of that stored bit: bit 0 set when some checked read
	// expects 0, bit 1 when some checked read expects 1; ExpectFolded
	// set when a read of the bit feeds a signature observer.
	Expect []uint8
}

// ExpectFolded flags a TraceSummary.Expect bit that feeds a signature
// observer via a fold annotation.
const ExpectFolded uint8 = 1 << 2

// Collapsed is the result of collapsing a fault universe.
type Collapsed struct {
	// Reps holds one representative per equivalence class, in first-
	// occurrence order of the original universe.
	Reps []Fault
	// Map[i] is the index into Reps whose simulation result decides
	// fault i of the original universe.
	Map []int
}

// Expand maps per-representative detection results back onto the full
// universe.
func (c *Collapsed) Expand(rep []bool) []bool {
	out := make([]bool, len(c.Map))
	for i, r := range c.Map {
		out[i] = rep[r]
	}
	return out
}

// ExpandInto is Expand into a caller-provided buffer of len(Map) —
// the streaming drivers' per-chunk expansion, which reuses one worker
// buffer across every chunk of a campaign.
//
//faultsim:hotpath
func (c *Collapsed) ExpandInto(dst, rep []bool) {
	for i, r := range c.Map {
		dst[i] = rep[r]
	}
}

// Saved returns how many simulations collapsing avoids.
func (c *Collapsed) Saved() int { return len(c.Map) - len(c.Reps) }

// benignKey is the shared equivalence class of faults that behave
// exactly like a fault-free memory; its representative is always
// reported undetected (a clean machine never diverges from the
// recorded clean trace).
type benignKey struct{}

// safPairKey groups SA0/SA1 on one bit when the trace makes their
// outcomes provably identical.
type safPairKey struct{ cell, bit int }

// Collapse partitions the universe into exact equivalence classes.
// sum, when non-nil, enables the trace-conditioned rules; the caller
// must have produced it from the same trace the representatives will be
// simulated against.
func Collapse(faults []Fault, sum *TraceSummary) Collapsed {
	return CollapseView(Span(faults), sum)
}

// CollapseView is Collapse over a view: the equivalence classes are
// computed among the view's faults only (Map is indexed by view
// position), so collapsing composes with cross-test fault dropping —
// a representative whose class died out of the survivor set is not
// simulated, and Expand still scatters results back per view position.
func CollapseView(v View, sum *TraceSummary) Collapsed {
	n := v.Len()
	col := Collapsed{Map: make([]int, n)}
	index := make(map[any]int, n)
	for i := 0; i < n; i++ {
		f := v.At(i)
		key := collapseKey(f, sum)
		if r, ok := index[key]; ok {
			col.Map[i] = r
			continue
		}
		r := len(col.Reps)
		col.Reps = append(col.Reps, f)
		index[key] = r
		col.Map[i] = r
	}
	telemetry.Active().CollapseDelta(n, len(col.Reps))
	return col
}

// collapseKey computes the equivalence-class key of a fault.  Faults
// with equal keys must be detected identically by any replay of the
// summarised trace.  The default key is the fault value itself, which
// collapses exact duplicates and nothing else.
func collapseKey(f Fault, sum *TraceSummary) any {
	switch t := f.(type) {
	case SAF:
		if sum != nil && !sum.Affine {
			idx := t.Cell*sum.Width + t.Bit
			if t.Bit < sum.Width && idx >= 0 && idx < len(sum.Expect) {
				// With both polarities checked, SA0 and SA1 are both
				// detected (the observers cannot un-detect a diverging
				// checked read); with neither polarity checked and the
				// bit feeding no observer, both are undetected.  A
				// folded bit without full checked coverage must stay
				// split: the two polarities fold different error
				// patterns and may alias differently.
				e := sum.Expect[idx]
				if p := e & 3; p == 3 || (p == 0 && e&ExpectFolded == 0) {
					return safPairKey{t.Cell, t.Bit}
				}
			}
		}
		return t
	case BF:
		if t.CellA == t.CellB && t.BitA == t.BitB {
			return benignKey{} // x wired with itself is x
		}
		if t.CellA > t.CellB || (t.CellA == t.CellB && t.BitA > t.BitB) {
			t.CellA, t.CellB = t.CellB, t.CellA
			t.BitA, t.BitB = t.BitB, t.BitA
		}
		return t
	case AF:
		if t.Kind != AFNone && t.Addr == t.Target {
			return benignKey{} // self-alias / self-multi is the identity
		}
		return t
	case SNPSF:
		if !t.Nb.Complete() {
			return benignKey{} // incomplete neighbourhood never matches
		}
		return t
	case ANPSF:
		if !t.Nb.Complete() {
			return benignKey{} // a missing neighbour blocks every firing
		}
		return t
	}
	return f
}
