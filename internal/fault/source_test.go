package fault

import (
	"testing"
)

// Every streaming builder must reproduce its materialized constructor
// exactly: same count, same faults, same order — whatever the pull
// granularity — and must be resumable (Reset rewinds).

func sourceCases() []struct {
	name string
	src  Source
	want []Fault
} {
	pairs := append(AdjacentPairs(9), SamplePairs(9, 4, 6, 3)...)
	return []struct {
		name string
		src  Source
		want []Fault
	}{
		{"single-cell", SingleCellSource(7, 4), SingleCellUniverse(7, 4)},
		{"stuck-open", StuckOpenSource(11), StuckOpenUniverse(11)},
		{"retention", RetentionSource(5, 3, 64), RetentionUniverse(5, 3, 64)},
		{"decoder", DecoderSource(9), DecoderUniverse(9)},
		{"coupling", CouplingSource(pairs), CouplingUniverse(pairs)},
		{"intra-word", IntraWordSource(6, 4), IntraWordUniverse(6, 4)},
		{"npsf", NPSFSource(30, 6, 3), NPSFUniverse(30, 6, 3)},
		{"anpsf", ANPSFSource(30, 6, 5), ANPSFUniverse(30, 6, 5)},
		{"slice", SliceSource(StuckOpenUniverse(4)), StuckOpenUniverse(4)},
		{"concat", ConcatSource(StuckOpenSource(3), DecoderSource(4)),
			append(StuckOpenUniverse(3), DecoderUniverse(4)...)},
	}
}

func drain(t *testing.T, s Source, chunk int) []Fault {
	t.Helper()
	var out []Fault
	buf := make([]Fault, chunk)
	for {
		n, ok := s.Next(buf)
		out = append(out, buf[:n]...)
		if !ok {
			break
		}
		if n == 0 {
			t.Fatal("source stalled: Next returned (0, true)")
		}
	}
	return out
}

func TestSourcesMatchMaterializedConstructors(t *testing.T) {
	for _, tc := range sourceCases() {
		n, exact := tc.src.Count()
		if !exact || n != len(tc.want) {
			t.Errorf("%s: Count = (%d, %v), want (%d, true)", tc.name, n, exact, len(tc.want))
		}
		for _, chunk := range []int{1, 7, 4096} {
			tc.src.Reset()
			got := drain(t, tc.src, chunk)
			if len(got) != len(tc.want) {
				t.Fatalf("%s chunk=%d: %d faults, want %d", tc.name, chunk, len(got), len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("%s chunk=%d: fault %d = %v, want %v", tc.name, chunk, i, got[i], tc.want[i])
				}
			}
		}
		// Reset mid-stream rewinds to the first fault.
		tc.src.Reset()
		buf := make([]Fault, 3)
		tc.src.Next(buf)
		tc.src.Reset()
		if n, _ := tc.src.Next(buf[:1]); n != 1 || buf[0] != tc.want[0] {
			t.Errorf("%s: Reset did not rewind (got %v)", tc.name, buf[0])
		}
	}
}

// Skip must be equivalent to discarding n faults via Next — the
// resume-seek contract — for every source shape, seek point and
// straddling pattern, including clamping past the end.
func TestSkipMatchesNextDiscard(t *testing.T) {
	for _, tc := range sourceCases() {
		n := len(tc.want)
		for _, skip := range []int{0, 1, 3, n / 2, n - 1, n, n + 7} {
			tc.src.Reset()
			got := tc.src.Skip(skip)
			want := skip
			if want > n {
				want = n
			}
			if got != want {
				t.Errorf("%s: Skip(%d) = %d, want %d", tc.name, skip, got, want)
				continue
			}
			rest := drain(t, tc.src, 5)
			if len(rest) != n-want {
				t.Fatalf("%s: %d faults after Skip(%d), want %d", tc.name, len(rest), skip, n-want)
			}
			for i, f := range rest {
				if f != tc.want[want+i] {
					t.Fatalf("%s: fault %d after Skip(%d) = %v, want %v", tc.name, i, skip, f, tc.want[want+i])
				}
			}
		}
		// Skip composes: two partial seeks equal one.
		if len(tc.want) >= 4 {
			tc.src.Reset()
			tc.src.Skip(1)
			tc.src.Skip(2)
			buf := make([]Fault, 1)
			if k, _ := tc.src.Next(buf); k != 1 || buf[0] != tc.want[3] {
				t.Errorf("%s: Skip(1)+Skip(2) landed on %v, want %v", tc.name, buf[0], tc.want[3])
			}
		}
		// A Skip that straddles concatenated parts must cross them (the
		// concat case lands mid-second-part above); negative n is a no-op.
		tc.src.Reset()
		if k := tc.src.Skip(-5); k != 0 {
			t.Errorf("%s: Skip(-5) = %d, want 0", tc.name, k)
		}
	}
}

func TestFullCouplingSourceExhaustive(t *testing.T) {
	const n = 5
	src := FullCouplingSource(n)
	count, exact := src.Count()
	if want := n * (n - 1) * 12; !exact || count != want {
		t.Fatalf("Count = (%d, %v), want (%d, true)", count, exact, want)
	}
	faults := Collect(src)
	// Every ordered (aggressor, victim) pair appears exactly 12 times,
	// with the per-pair sub-type order of CouplingUniverse.
	seen := make(map[[2]int]int)
	for _, f := range faults {
		switch c := f.(type) {
		case CFin:
			seen[[2]int{c.AggCell, c.VicCell}]++
		case CFid:
			seen[[2]int{c.AggCell, c.VicCell}]++
		case CFst:
			seen[[2]int{c.AggCell, c.VicCell}]++
		case BF:
			seen[[2]int{c.CellA, c.CellB}]++
		default:
			t.Fatalf("unexpected fault type %T", f)
		}
	}
	for a := 0; a < n; a++ {
		for v := 0; v < n; v++ {
			want := 12
			if a == v {
				want = 0
			}
			if seen[[2]int{a, v}] != want {
				t.Errorf("pair (%d,%d): %d faults, want %d", a, v, seen[[2]int{a, v}], want)
			}
		}
	}
	// The sub-type expansion matches CouplingUniverse's for the same
	// pair.
	want := CouplingUniverse([]CouplingPair{{AggCell: 0, VicCell: 1}})
	for i := 0; i < 12; i++ {
		if faults[i] != want[i] {
			t.Errorf("sub-type %d: %v, want %v", i, faults[i], want[i])
		}
	}
}

func TestBitSet(t *testing.T) {
	b := NewBitSet(100)
	for _, i := range []int{0, 63, 64, 99} {
		if b.Get(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 3 {
		t.Fatalf("Clear failed: get=%v count=%d", b.Get(64), b.Count())
	}
	// Growth beyond the initial capacity; reads past the end are false.
	b.Set(1000)
	if !b.Get(1000) || b.Get(5000) {
		t.Fatal("grown Set/OOB Get wrong")
	}
	c := b.Clone()
	c.Clear(0)
	if !b.Get(0) || c.Get(0) {
		t.Fatal("Clone not independent")
	}
}

func TestBitViewMatchesWhere(t *testing.T) {
	faults := SingleCellUniverse(10, 1) // 40 faults
	keep := func(i int) bool { return i%3 != 1 }
	want := Span(faults).Where(keep)
	bits := NewBitSet(len(faults))
	for i := range faults {
		if keep(i) {
			bits.Set(i)
		}
	}
	v := NewBitView(faults, bits)
	if v.Full() || v.Len() != want.Len() {
		t.Fatalf("bitview: full=%v len=%d want %d", v.Full(), v.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if v.At(i) != want.At(i) || v.Index(i) != want.Index(i) {
			t.Fatalf("position %d: At=%v Index=%d, want At=%v Index=%d",
				i, v.At(i), v.Index(i), want.At(i), want.Index(i))
		}
	}
	scratch := make([]Fault, 0, 8)
	for lo := 0; lo < v.Len(); lo += 7 {
		hi := lo + 7
		if hi > v.Len() {
			hi = v.Len()
		}
		got := v.Batch(scratch, lo, hi)
		ref := want.Batch(nil, lo, hi)
		if len(got) != len(ref) {
			t.Fatalf("batch [%d,%d): len %d want %d", lo, hi, len(got), len(ref))
		}
		for j := range got {
			if got[j] != ref[j] {
				t.Fatalf("batch [%d,%d) pos %d: %v want %v", lo, hi, j, got[j], ref[j])
			}
		}
	}
	// Where composes onto the original backing indices.
	sub := v.Where(func(i int) bool { return i%2 == 0 })
	wantSub := want.Where(func(i int) bool { return i%2 == 0 })
	if sub.Len() != wantSub.Len() {
		t.Fatalf("where len %d want %d", sub.Len(), wantSub.Len())
	}
	for i := 0; i < sub.Len(); i++ {
		if sub.Index(i) != wantSub.Index(i) {
			t.Fatalf("where pos %d: index %d want %d", i, sub.Index(i), wantSub.Index(i))
		}
	}
	// The view snapshots the bitmap: clearing a bit afterwards does not
	// move it.
	bits.Clear(v.Index(0))
	if v.Len() != want.Len() {
		t.Fatal("BitView tracked a post-construction BitSet mutation")
	}
}

func TestBitViewFullAliasesBacking(t *testing.T) {
	faults := StuckOpenUniverse(70)
	bits := NewBitSet(len(faults))
	for i := range faults {
		bits.Set(i)
	}
	v := NewBitView(faults, bits)
	if !v.Full() || v.Len() != len(faults) {
		t.Fatalf("full bitview: full=%v len=%d", v.Full(), v.Len())
	}
	b := v.Batch(nil, 3, 9)
	if len(b) != 6 || &b[0] != &faults[3] {
		t.Error("full BitView Batch must alias the backing slice")
	}
	// Bits beyond the backing slice are ignored.
	bits.Set(len(faults) + 5)
	if NewBitView(faults, bits).Len() != len(faults) {
		t.Error("out-of-range bit counted")
	}
}
