package lfsr

import (
	"fmt"

	"repro/internal/gf"
)

// BerlekampMassey computes the shortest LFSR over the field f that
// generates the sequence seq, returning it as a GenPoly in the
// repository's recurrence convention
//
//	u_t = a₁·u_{t-1} ⊕ … ⊕ a_k·u_{t-k}
//
// together with the linear complexity k.  An all-zero sequence has
// complexity 0 and returns the trivial polynomial g(x) = 1 with K()==0
// semantics expressed as (GenPoly{}, 0, nil... ) — callers should check
// k before using the generator.
//
// In this reproduction Berlekamp–Massey serves as the diagnosis tool:
// the fault-free π-test TDB has linear complexity exactly k, so any
// increase reveals that a fault disturbed the recurrence (and the
// synthesised polynomial localises how).
func BerlekampMassey(f *gf.Field, seq []gf.Elem) (gen GenPoly, complexity int, err error) {
	if f == nil {
		return GenPoly{}, 0, fmt.Errorf("lfsr: nil field")
	}
	for _, v := range seq {
		if !f.Contains(v) {
			return GenPoly{}, 0, fmt.Errorf("lfsr: sequence value %#x outside %v", uint32(v), f)
		}
	}
	n := len(seq)
	// Connection polynomial C(x) = 1 + c1 x + ... with the convention
	// that Σ_j c_j s_{i-j} = 0 (c0 = 1).
	c := make([]gf.Elem, n+1)
	b := make([]gf.Elem, n+1)
	c[0], b[0] = 1, 1
	L := 0
	m := 1
	var bCoef gf.Elem = 1
	for i := 0; i < n; i++ {
		// Discrepancy d = s_i + Σ_{j=1..L} c_j s_{i-j}.
		d := seq[i]
		for j := 1; j <= L; j++ {
			if c[j] != 0 && i-j >= 0 {
				d = f.Add(d, f.Mul(c[j], seq[i-j]))
			}
		}
		if d == 0 {
			m++
			continue
		}
		if 2*L <= i {
			// Save C before update.
			tmp := make([]gf.Elem, len(c))
			copy(tmp, c)
			scale := f.Mul(d, f.Inv(bCoef))
			for j := 0; j+m <= n; j++ {
				if b[j] != 0 {
					c[j+m] = f.Add(c[j+m], f.Mul(scale, b[j]))
				}
			}
			L = i + 1 - L
			copy(b, tmp)
			bCoef = d
			m = 1
		} else {
			scale := f.Mul(d, f.Inv(bCoef))
			for j := 0; j+m <= n; j++ {
				if b[j] != 0 {
					c[j+m] = f.Add(c[j+m], f.Mul(scale, b[j]))
				}
			}
			m++
		}
	}
	if L == 0 {
		return GenPoly{}, 0, nil
	}
	// Convert the connection polynomial to the GenPoly convention:
	// s_i = Σ_{j=1..L} c_j s_{i-j} (over char 2, the sign vanishes).
	coeffs := make([]gf.Elem, L+1)
	coeffs[0] = 1
	for j := 1; j <= L; j++ {
		coeffs[j] = c[j]
	}
	if coeffs[L] == 0 {
		// The recurrence does not genuinely reach depth L (can happen
		// on short prefixes); pad the leading tap with the value that
		// keeps GenPoly valid while preserving the recurrence on the
		// observed window: use the connection polynomial as-is but
		// trim trailing zeros.
		last := L
		for last > 0 && coeffs[last] == 0 {
			last--
		}
		if last == 0 {
			return GenPoly{}, 0, nil
		}
		coeffs = coeffs[:last+1]
	}
	g, err := NewGenPoly(f, coeffs)
	if err != nil {
		return GenPoly{}, 0, err
	}
	return g, L, nil
}

// LinearComplexity returns just the linear complexity of the sequence.
func LinearComplexity(f *gf.Field, seq []gf.Elem) (int, error) {
	_, l, err := BerlekampMassey(f, seq)
	return l, err
}
