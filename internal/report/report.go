// Package report renders the experiment tables of the reproduction as
// aligned text and CSV.  It is deliberately tiny: every bench and CLI
// funnels its rows through Table so the output format is uniform.
package report

// Emitters must be deterministic: CI byte-diffs survivor tables across
// resumed and uninterrupted runs, so row/column order may not depend
// on map iteration or clocks.
//
//faultsim:deterministic

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a simple rectangular text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowf appends a pre-formatted row.
func (t *Table) AddRowf(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// widths returns the column widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len([]rune(h))
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len([]rune(c)) > w[i] {
				w[i] = len([]rune(c))
			}
		}
	}
	return w
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	widths := t.widths()
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(widths))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// JSONL writes the table as JSON Lines — one object per row, with a
// "table" field carrying the title and one field per column in column
// order — so downstream tooling consumes experiment rows without
// scraping aligned text.  Missing cells are omitted; cells beyond the
// header count are dropped (they have no key).
func (t *Table) JSONL(w io.Writer) {
	for _, row := range t.Rows {
		var b strings.Builder
		b.WriteString(`{"table":`)
		b.Write(jsonString(t.Title))
		for i, h := range t.Headers {
			if i >= len(row) {
				break
			}
			b.WriteByte(',')
			b.Write(jsonString(h))
			b.WriteByte(':')
			b.Write(jsonString(row[i]))
		}
		b.WriteByte('}')
		fmt.Fprintln(w, b.String())
	}
}

// jsonString renders s as a JSON string literal.
func jsonString(s string) []byte {
	out, err := json.Marshal(s)
	if err != nil { // strings cannot fail to marshal
		panic(err)
	}
	return out
}

// CSV writes the table as comma-separated values (quoted when needed).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	parts := make([]string, len(cells))
	for i, c := range cells {
		// RFC 4180 quoting: a cell containing a separator, a quote or a
		// line break (either CR or LF) is wrapped in quotes with inner
		// quotes doubled; anything else passes through verbatim.
		if strings.ContainsAny(c, ",\"\n\r") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		parts[i] = c
	}
	fmt.Fprintln(w, strings.Join(parts, ","))
}

func pad(s string, width int) string {
	n := width - len([]rune(s))
	if n <= 0 {
		return s
	}
	return s + strings.Repeat(" ", n)
}

// Percent formats a ratio as "97.3%".
func Percent(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
