package a

import (
	"math/rand"
	"sort"
	"time"
)

var Sink any

// marked exhibits each nondeterminism source once.
//
//faultsim:deterministic
func marked(m map[int]int, a, b chan int) int {
	total := 0
	for k, v := range m { // want `deterministic: map iteration order is randomized`
		total += k + v
	}
	t0 := time.Now()             // want `deterministic: time.Now feeds wall-clock state into a deterministic path`
	total += int(time.Since(t0)) // want `deterministic: time.Since feeds wall-clock state into a deterministic path`
	total += rand.Intn(10)       // want `deterministic: global rand.Intn is process-seeded; use an explicitly seeded rand.New\(rand.NewSource\(seed\)\)`
	select {                     // want `deterministic: select with 2 communication cases resolves randomly when several are ready`
	case v := <-a:
		total += v
	case v := <-b:
		total += v
	}
	return total
}

// seededOK: methods on an explicitly seeded generator are fine, and a
// single-channel select with default (the cancellation poll) is the
// allowed non-blocking form.
//
//faultsim:deterministic
func seededOK(seed int64, done chan struct{}) int {
	rng := rand.New(rand.NewSource(seed))
	total := rng.Intn(10)
	select {
	case <-done:
		return -1
	default:
	}
	return total
}

// orderedOK shows the waiver: ranging a map is fine when the result is
// order-insensitive or sorted afterwards — but only with a
// justification string.
//
//faultsim:deterministic
func orderedOK(m map[int]int) []int {
	out := make([]int, 0, len(m))
	//faultsim:ordered "keys are sorted below before emission"
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	//faultsim:ordered
	for k := range m { // want `deterministic: map iteration order is randomized \(//faultsim:ordered requires a justification string\)`
		out = append(out, k)
	}
	return out[:len(m)]
}

// unmarked is out of scope: no findings.
func unmarked(m map[int]int) int {
	total := rand.Intn(10)
	for k := range m {
		total += k
	}
	return total + int(time.Now().Unix())
}
