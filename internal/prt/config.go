// Package prt implements pseudo-ring testing (PRT), the paper's
// primary contribution: a RAM self-test in which the memory array
// emulates a linear automaton over a Galois field.
//
// A π-test iteration (Eq. 1 of the paper) seeds the first k cells of
// the traversal with the automaton's initial state Init, then for each
// subsequent cell reads the k previous cells and writes the recurrence
// combination
//
//	c_{i+k} = a₁·c_{i+k-1} ⊕ … ⊕ a_k·c_i      (aⱼ ∈ GF(2^m))
//
// so the test data background generates itself out of the memory's own
// contents ("testing memory by its own components").  At the end, the
// observed final state Fin (the last k cells) is compared with the
// a-priori prediction Fin* obtained from the virtual LFSR; any
// difference signals a fault.
//
// The package provides single-port iterations with ascending,
// descending and random trajectories, multi-iteration schemes (the
// paper's 3-iteration full-coverage recipe), bit-sliced parallel
// automatons for intra-word faults, and the dual-port scheme of Fig. 2
// with 2n-cycle complexity.
package prt

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/lfsr"
)

// Trajectory is the order in which a π-iteration visits memory cells —
// the third of the paper's §3 quality factors (after polynomial
// structure and initial values).
type Trajectory int

const (
	// Ascending visits addresses 0, 1, …, n-1.
	Ascending Trajectory = iota
	// Descending visits addresses n-1, n-2, …, 0.
	Descending
	// Random visits addresses in a deterministic pseudo-random
	// permutation derived from Config.PermSeed.
	Random
	// RandomReversed visits the Random permutation of the same PermSeed
	// backwards (the mirror of a Random trajectory).
	RandomReversed
)

func (t Trajectory) String() string {
	switch t {
	case Ascending:
		return "ascending"
	case Descending:
		return "descending"
	case Random:
		return "random"
	case RandomReversed:
		return "random-reversed"
	default:
		return fmt.Sprintf("Trajectory(%d)", int(t))
	}
}

// Config describes one π-test iteration.
type Config struct {
	// Gen is the generator polynomial g(x) of the virtual automaton;
	// it fixes the field GF(2^m) and the register length k.
	Gen lfsr.GenPoly
	// Seed is the automaton's initial state Init (length k).  Seed[0]
	// is written to the first cell of the trajectory.
	Seed []gf.Elem
	// Offset is the affine constant q added to every recurrence value
	// (0 for the plain linear automaton).  Offset = 2^m-1 with a
	// complemented seed generates the bitwise complement of the plain
	// TDB — the paper's "specific TDB" needs both backgrounds so every
	// bit of every cell is exercised at 0 and at 1.
	Offset gf.Elem
	// Trajectory selects the address order.
	Trajectory Trajectory
	// PermSeed parameterises the Random trajectory's permutation.
	PermSeed int64
	// Ring selects wrap-around mode: the walk continues past the last
	// cell and re-writes the first k cells through the recurrence, so
	// the automaton travels the array as a closed ring (n steps total)
	// and Fin is read back from the seed cells.  The paper's ring
	// closure condition is then n ≡ 0 (mod period) exactly.
	Ring bool
	// Verify adds a full read-back pass after the walk comparing every
	// cell against the expected TDB (n extra reads).  The plain
	// signature check compares only Fin with Fin*; Verify removes the
	// aliasing blind spot for victims the walk never re-reads.
	Verify bool
	// CaptureStale adds a pre-read of every target cell before it is
	// rewritten, compared against StaleExpect (one extra read per
	// cell).  This is the transparent-BIST refinement of the π-test:
	// corruption left behind by a previous iteration (e.g. a coupling
	// victim the walk already passed) is observed at its rewrite
	// instead of being silently destroyed.  Ignored when StaleExpect is
	// nil.
	CaptureStale bool
	// StaleExpect, indexed by ADDRESS, is the expected pre-iteration
	// content of every cell (normally the previous iteration's
	// predicted final contents).  Resolved automatically by Scheme.Run.
	StaleExpect []gf.Elem
	// MirrorOf, when > 0, marks this iteration as the mirror of the
	// scheme iteration with 0-based index MirrorOf-1 (build it with the
	// Mirrored helper): it regenerates exactly the same per-cell TDB
	// but walks the trajectory in the opposite direction, using the
	// reciprocal recurrence and the end state as seed.  The concrete
	// Config is resolved against the memory size by Scheme.Run /
	// MirrorConfig; a Config with MirrorOf > 0 cannot be run directly.
	// The zero value means a plain iteration.
	MirrorOf int
}

// Mirrored returns a placeholder Config to be resolved by Scheme.Run
// as the direction-reversed twin of iteration index idx (0-based).
func Mirrored(idx int, verify bool) Config {
	return Config{MirrorOf: idx + 1, Verify: verify}
}

// mirrorTarget returns the 0-based mirrored iteration index, or -1.
func (c Config) mirrorTarget() int { return c.MirrorOf - 1 }

// Validate checks the configuration against a memory of n cells and
// width bits.
func (c Config) Validate(n, width int) error {
	if c.MirrorOf > 0 {
		return fmt.Errorf("prt: mirrored config not resolved (run it through a Scheme)")
	}
	if c.Gen.Field == nil {
		return fmt.Errorf("prt: config has no generator polynomial")
	}
	if c.Gen.Field.M() != width {
		return fmt.Errorf("prt: field GF(2^%d) does not match memory width %d",
			c.Gen.Field.M(), width)
	}
	k := c.Gen.K()
	if len(c.Seed) != k {
		return fmt.Errorf("prt: seed length %d != k=%d", len(c.Seed), k)
	}
	for _, v := range c.Seed {
		if !c.Gen.Field.Contains(v) {
			return fmt.Errorf("prt: seed value %#x outside field", uint32(v))
		}
	}
	if !c.Gen.Field.Contains(c.Offset) {
		return fmt.Errorf("prt: offset %#x outside field", uint32(c.Offset))
	}
	if n < k+1 {
		return fmt.Errorf("prt: memory of %d cells too small for k=%d", n, k)
	}
	switch c.Trajectory {
	case Ascending, Descending, Random, RandomReversed:
	default:
		return fmt.Errorf("prt: unknown trajectory %d", int(c.Trajectory))
	}
	return nil
}

// Addresses returns the cell visit order for a memory of n cells.
func (c Config) Addresses(n int) []int {
	out := make([]int, n)
	switch c.Trajectory {
	case Descending:
		for i := range out {
			out[i] = n - 1 - i
		}
	case Random, RandomReversed:
		for i := range out {
			out[i] = i
		}
		r := permRNG{s: uint64(c.PermSeed)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D}
		for i := n - 1; i > 0; i-- {
			j := r.intn(i + 1)
			out[i], out[j] = out[j], out[i]
		}
		if c.Trajectory == RandomReversed {
			for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
		}
	default: // Ascending
		for i := range out {
			out[i] = i
		}
	}
	return out
}

// String summarises the configuration.
func (c Config) String() string {
	return fmt.Sprintf("π[g=%v seed=%v %v]", c.Gen, c.Seed, c.Trajectory)
}

// permRNG is a xorshift64* generator for trajectory permutations,
// deterministic across platforms.
type permRNG struct{ s uint64 }

func (r *permRNG) next() uint64 {
	if r.s == 0 {
		r.s = 1
	}
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545F4914F6CDD1D
}

func (r *permRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// PaperBOMConfig returns the bit-oriented example configuration:
// g(x) = 1 + x + x² over GF(2), seed (1,1), ascending — the Fig. 1a
// setting (TDB 1,1,0,1,1,0,…).
func PaperBOMConfig() Config {
	f := gf.NewField(1)
	return Config{
		Gen:  lfsr.MustGenPoly(f, []gf.Elem{1, 1, 1}),
		Seed: []gf.Elem{1, 1},
	}
}

// PaperWOMConfig returns the paper's worked word-oriented example:
// g(x) = 1 + 2x + 2x² over GF(2⁴) with p(z) = 1 + z + z⁴, seed (0,1),
// ascending — the Fig. 1b setting (TDB 0,1,2,6,8,F,…; period 255).
func PaperWOMConfig() Config {
	return Config{
		Gen:  lfsr.PaperGenPoly(),
		Seed: []gf.Elem{0, 1},
	}
}
