package gf2

// IsIrreducible reports whether p is irreducible over GF(2) using
// Rabin's test: p of degree k is irreducible iff
//
//	x^(2^k)  ≡ x (mod p), and
//	gcd(x^(2^(k/q)) - x, p) = 1 for every prime q dividing k.
//
// Constant polynomials and the zero polynomial are not irreducible; the
// degree-1 polynomials x and x+1 are.
func IsIrreducible(p Poly) bool {
	k := p.Deg()
	if k <= 0 {
		return false
	}
	if k == 1 {
		return true
	}
	// Any polynomial with zero constant term is divisible by x.
	if p.Coeff(0) == 0 {
		return false
	}
	// An even coefficient weight means p(1)=0, i.e. divisible by x+1.
	if p.Weight()%2 == 0 {
		return false
	}
	// Rabin: for each prime q | k, gcd(x^(2^(k/q)) + x, p) must be 1.
	for _, q := range primeFactorsInt(k) {
		h := frobeniusPower(k/q, p) // x^(2^(k/q)) mod p
		if GCD(h.Add(X.Mod(p)), p) != One {
			return false
		}
	}
	// And x^(2^k) ≡ x (mod p).
	return frobeniusPower(k, p) == X.Mod(p)
}

// frobeniusPower returns x^(2^t) mod p by repeated squaring of x.
func frobeniusPower(t int, p Poly) Poly {
	r := X.Mod(p)
	for i := 0; i < t; i++ {
		r = MulMod(r, r, p)
	}
	return r
}

// primeFactorsInt returns the distinct prime factors of n (n >= 1) in
// ascending order.
func primeFactorsInt(n int) []int {
	var f []int
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			f = append(f, d)
			for n%d == 0 {
				n /= d
			}
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	return f
}

// Irreducibles returns all irreducible polynomials of exactly degree k
// in ascending numeric order.  It is intended for small k (the count
// grows like 2^k/k); k must be between 1 and 24.
func Irreducibles(k int) []Poly {
	if k < 1 || k > 24 {
		panic("gf2: Irreducibles degree out of range [1,24]")
	}
	var out []Poly
	lo := Poly(1) << uint(k)
	hi := Poly(1) << uint(k+1)
	for p := lo; p < hi; p++ {
		if IsIrreducible(p) {
			out = append(out, p)
		}
	}
	return out
}

// FirstIrreducible returns the numerically smallest irreducible
// polynomial of degree k.
func FirstIrreducible(k int) Poly {
	if k < 1 || k > MaxDegree {
		panic("gf2: FirstIrreducible degree out of range")
	}
	lo := Poly(1) << uint(k)
	hi := Poly(1)<<uint(k+1) - 1
	for p := lo; ; p++ {
		if IsIrreducible(p) {
			return p
		}
		if p == hi {
			panic("gf2: no irreducible polynomial found (unreachable)")
		}
	}
}

// CountIrreducibles returns the number of monic irreducible polynomials
// of degree k over GF(2), computed by the necklace-counting formula
//
//	N(k) = (1/k) * Σ_{d|k} μ(k/d) 2^d .
func CountIrreducibles(k int) uint64 {
	if k < 1 || k > 62 {
		panic("gf2: CountIrreducibles degree out of range")
	}
	var sum int64
	for d := 1; d <= k; d++ {
		if k%d != 0 {
			continue
		}
		mu := moebius(k / d)
		if mu == 0 {
			continue
		}
		sum += int64(mu) * int64(uint64(1)<<uint(d))
	}
	return uint64(sum) / uint64(k)
}

// moebius returns the Möbius function μ(n).
func moebius(n int) int {
	if n == 1 {
		return 1
	}
	mu := 1
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			n /= d
			if n%d == 0 {
				return 0 // square factor
			}
			mu = -mu
		}
	}
	if n > 1 {
		mu = -mu
	}
	return mu
}
