// Package repair implements built-in redundancy analysis (BIRA): the
// consumer of the self-test diagnosis.  A memory array with spare rows
// and spare columns (on the same row-major grid geometry as the NPSF
// models) is repaired by remapping every defective cell into a spare;
// the classical result is that optimal allocation is NP-hard, so the
// industry-standard "must-repair + greedy most-failures" heuristic is
// implemented.
//
// The repaired memory is again a ram.Memory, so it can be re-verified
// by running the self-test once more — the flow exercised by the
// repository's integration tests and the poweron example.
package repair

import (
	"fmt"
	"sort"

	"repro/internal/ram"
)

// Geometry describes the physical grid of an array: Rows × Cols cells,
// cell address = row*Cols + col.
type Geometry struct {
	Rows, Cols int
}

// Size returns the cell count.
func (g Geometry) Size() int { return g.Rows * g.Cols }

// Validate checks the geometry against a memory size.
func (g Geometry) Validate(n int) error {
	if g.Rows < 1 || g.Cols < 1 {
		return fmt.Errorf("repair: bad geometry %dx%d", g.Rows, g.Cols)
	}
	if g.Size() != n {
		return fmt.Errorf("repair: geometry %dx%d does not cover %d cells", g.Rows, g.Cols, n)
	}
	return nil
}

// RC returns the row/column of an address.
func (g Geometry) RC(addr int) (row, col int) { return addr / g.Cols, addr % g.Cols }

// Addr returns the address of a row/column.
func (g Geometry) Addr(row, col int) int { return row*g.Cols + col }

// Allocation is the outcome of redundancy analysis.
type Allocation struct {
	// RepairRows and RepairCols list the grid rows/columns replaced by
	// spares.
	RepairRows []int
	RepairCols []int
	// Unrepairable lists defective cells left uncovered (allocation
	// failed); empty means full repair.
	Unrepairable []int
}

// OK reports whether every defect was covered.
func (a Allocation) OK() bool { return len(a.Unrepairable) == 0 }

// Allocate runs must-repair followed by greedy allocation: defects,
// given as cell addresses, are covered by at most spareRows row
// replacements and spareCols column replacements.
//
// Must-repair: a row with more defects than the remaining spare
// columns *must* take a spare row (and symmetrically); the rule is
// iterated to fixpoint.  Remaining defects are covered greedily by
// whichever line (row or column) still contains the most defects.
func Allocate(g Geometry, defects []int, spareRows, spareCols int) Allocation {
	var alloc Allocation
	remaining := map[int]bool{}
	for _, d := range defects {
		remaining[d] = true
	}
	usedRow := map[int]bool{}
	usedCol := map[int]bool{}

	cover := func() {
		for d := range remaining {
			r, c := g.RC(d)
			if usedRow[r] || usedCol[c] {
				delete(remaining, d)
			}
		}
	}
	rowCount := func() map[int]int {
		m := map[int]int{}
		for d := range remaining {
			r, _ := g.RC(d)
			m[r]++
		}
		return m
	}
	colCount := func() map[int]int {
		m := map[int]int{}
		for d := range remaining {
			_, c := g.RC(d)
			m[c]++
		}
		return m
	}

	// Must-repair to fixpoint: one line per round, counts recomputed
	// after every cover so later decisions see the true residue.
	// Deterministic: the highest-count qualifying line wins, ties to
	// the lowest index.
	for {
		sparesRowLeft := spareRows - len(alloc.RepairRows)
		sparesColLeft := spareCols - len(alloc.RepairCols)
		r, rCnt := maxLine(rowCount())
		c, cCnt := maxLine(colCount())
		switch {
		case sparesRowLeft > 0 && rCnt > sparesColLeft && rCnt >= cCnt:
			usedRow[r] = true
			alloc.RepairRows = append(alloc.RepairRows, r)
		case sparesColLeft > 0 && cCnt > sparesRowLeft:
			usedCol[c] = true
			alloc.RepairCols = append(alloc.RepairCols, c)
		case sparesRowLeft > 0 && rCnt > sparesColLeft:
			usedRow[r] = true
			alloc.RepairRows = append(alloc.RepairRows, r)
		default:
			goto greedy
		}
		cover()
	}
greedy:

	// Greedy: repeatedly take the line with the most remaining defects.
	for len(remaining) > 0 {
		bestRow, bestRowCnt := maxLine(rowCount())
		bestCol, bestColCnt := maxLine(colCount())
		rowsLeft := spareRows - len(alloc.RepairRows)
		colsLeft := spareCols - len(alloc.RepairCols)
		switch {
		case bestRowCnt >= bestColCnt && bestRowCnt > 0 && rowsLeft > 0:
			usedRow[bestRow] = true
			alloc.RepairRows = append(alloc.RepairRows, bestRow)
		case bestColCnt > 0 && colsLeft > 0:
			usedCol[bestCol] = true
			alloc.RepairCols = append(alloc.RepairCols, bestCol)
		case bestRowCnt > 0 && rowsLeft > 0:
			usedRow[bestRow] = true
			alloc.RepairRows = append(alloc.RepairRows, bestRow)
		default:
			// Out of spares.
			for d := range remaining {
				alloc.Unrepairable = append(alloc.Unrepairable, d)
			}
			sort.Ints(alloc.Unrepairable)
			remaining = nil
		}
		cover()
	}
	sort.Ints(alloc.RepairRows)
	sort.Ints(alloc.RepairCols)
	return alloc
}

// maxLine returns the index with the highest count (ties: lowest
// index); (-1, 0) when the map is empty.
func maxLine(counts map[int]int) (idx, cnt int) {
	idx = -1
	for i, c := range counts {
		if c > cnt || (c == cnt && idx >= 0 && i < idx) {
			idx, cnt = i, c
		}
	}
	return idx, cnt
}

// Apply wraps mem with the allocation: accesses to repaired rows and
// columns are redirected into fresh spare storage.  The wrapper keeps
// mem's geometry.
func Apply(mem ram.Memory, g Geometry, alloc Allocation) (ram.Memory, error) {
	if err := g.Validate(mem.Size()); err != nil {
		return nil, err
	}
	r := &repaired{
		Memory: mem,
		g:      g,
		rows:   map[int]*ram.WOM{},
		cols:   map[int]*ram.WOM{},
	}
	for _, row := range alloc.RepairRows {
		if row < 0 || row >= g.Rows {
			return nil, fmt.Errorf("repair: row %d out of grid", row)
		}
		r.rows[row] = ram.NewWOM(g.Cols, mem.Width())
	}
	for _, col := range alloc.RepairCols {
		if col < 0 || col >= g.Cols {
			return nil, fmt.Errorf("repair: column %d out of grid", col)
		}
		r.cols[col] = ram.NewWOM(g.Rows, mem.Width())
	}
	return r, nil
}

type repaired struct {
	ram.Memory
	g    Geometry
	rows map[int]*ram.WOM
	cols map[int]*ram.WOM
}

func (r *repaired) Read(addr int) ram.Word {
	row, col := r.g.RC(addr)
	if s, ok := r.rows[row]; ok {
		return s.Read(col)
	}
	if s, ok := r.cols[col]; ok {
		return s.Read(row)
	}
	return r.Memory.Read(addr)
}

func (r *repaired) Write(addr int, v ram.Word) {
	row, col := r.g.RC(addr)
	if s, ok := r.rows[row]; ok {
		s.Write(col, v)
		return
	}
	if s, ok := r.cols[col]; ok {
		s.Write(row, v)
		return
	}
	r.Memory.Write(addr, v)
}
