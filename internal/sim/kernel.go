// The compiled replay kernels: every function in this file is on the
// zero-allocation hot path (AllocsPerRun-enforced at runtime,
// hotpathalloc-enforced at vet time).
//
//faultsim:hotpath

package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
)

// Replay simulates up to 64 faults against a classic single-word
// (laneWords == 1) compiled program using the arena's reusable buffers
// and returns the detection mask (bit l set when machine l detected),
// exactly as ReplayBatch does for the uncompiled trace.  Steady-state
// calls allocate nothing: the arena restores only the cells the
// previous batch dirtied and recycles its hook objects through the
// fault pool.  Wide programs use ReplayInto.
func (p *Program) Replay(a *Arena, faults []fault.Fault) (uint64, error) {
	if p.laneWords != 1 {
		//faultsim:alloc-ok cold error path, never taken by a well-formed campaign
		return 0, fmt.Errorf("sim: Replay is the 64-machine entry point; a %d-word program needs ReplayInto", p.laneWords)
	}
	var det [1]uint64
	if err := p.ReplayInto(a, faults, det[:]); err != nil {
		return 0, err
	}
	return det[0], nil
}

// ReplayInto simulates up to laneWords*64 faults against the compiled
// program and fills det (one word per lane group, len == LaneWords())
// with the detection masks: bit l of det[g] is set when machine g*64+l
// detected.  Fault i rides lane i%64 of group i/64, so verdicts are
// positional exactly as in Replay.  Steady-state calls allocate
// nothing, as for Replay.
func (p *Program) ReplayInto(a *Arena, faults []fault.Fault, det []uint64) error {
	W := p.laneWords
	if len(det) != W {
		//faultsim:alloc-ok cold error path, never taken by a well-formed campaign
		return fmt.Errorf("sim: detection buffer has %d words, the program's lane width is %d", len(det), W)
	}
	for g := range det {
		det[g] = 0
	}
	if len(faults) == 0 {
		return nil
	}
	if a.p != p {
		//faultsim:alloc-ok cold error path, never taken by a well-formed campaign
		return fmt.Errorf("sim: arena belongs to a different program")
	}
	a.reset()
	if err := a.inject(faults); err != nil {
		return err
	}
	// full[g] masks the populated lanes of group g: detection updates
	// are ANDed with it, and the kernels early-exit when every group's
	// detected word reaches it (idle groups are vacuously done at 0).
	var fullArr [MaxLaneWords]uint64
	full := fullArr[:W]
	n := len(faults)
	for g := range full {
		switch {
		case n >= (g+1)*BatchSize:
			full[g] = ^uint64(0)
		case n > g*BatchSize:
			full[g] = uint64(1)<<uint(n-g*BatchSize) - 1
		}
	}
	switch {
	case W == 1 && p.width == 1:
		det[0] = p.run1(a, full[0])
	case W == 1:
		det[0] = p.runN(a, full[0])
	case p.width == 1:
		p.run1W(a, det, full)
	default:
		p.runNW(a, det, full)
	}
	return nil
}

// allDetected reports whether every populated lane of every group has
// detected — the wide kernels' early-exit test.
func allDetected(det, full []uint64) bool {
	for g := range det {
		if det[g] != full[g] {
			return false
		}
	}
	return true
}

// Kernel structure, shared by both widths: the operation clock lives in
// a register and is flushed to the arena only around hook invocations
// (the only readers, via fault.LaneMemory.Clock); cells without hooks
// take branch-free sense/store paths guarded by the one-byte flag
// table; the read-history ring is addressed by a wrapping cursor
// instead of a modulo.  The pass returns as soon as every machine of
// the batch has detected.

// run1 is the width-1 kernel for bit-oriented memories: one lane word
// per cell, no per-bit inner loops anywhere on the hot path, and the
// whole instruction — opcode, data bit, cell — in a single uint32, so
// even 1M-cell traces stream 4 bytes per op.
func (p *Program) run1(a *Arena, full uint64) uint64 {
	var detected uint64
	slots, hpos, affPos, foldPos, obsPos, fusPos := p.maxBack, 0, 0, 0, 0, 0
	lanes, hist, flags := a.lanes, a.hist, a.flags
	hasEvery := a.everyN != 0
	track := !p.dense // dense traces restore wholesale, skip marking
	clock := a.clock
	for _, oa := range p.code1 {
		op := oa >> opShift
		if op == opCheckWrite {
			// Fused super-op: one dispatch for a March element's
			// read-check-write of one cell — sense (+hooks/history),
			// compare, then store, with the clock ticking once per fused
			// memory operation.
			cell := int(oa & w1AddrMask)
			clock++
			v := lanes[cell]
			if flags[cell]&flagRead != 0 || hasEvery {
				a.clock = clock
				a.val[0] = v
				for _, h := range a.readHooks[cell] {
					h.OnRead(a, cell, a.val)
				}
				for _, h := range a.everyRead[0] {
					h.OnRead(a, cell, a.val)
				}
				v = a.val[0]
			}
			if slots > 0 {
				hist[hpos] = v
				if hpos++; hpos == slots {
					hpos = 0
				}
			}
			clean := uint64(0) - uint64(oa>>w1DataShift&1)
			detected |= (v ^ clean) & full
			if detected == full {
				break // every machine has detected
			}
			d := uint64(0) - uint64(p.fus1[fusPos])
			fusPos++
			clock++
			if flags[cell]&flagWrite != 0 {
				a.clock = clock
				a.data[0] = d
				hooks := a.writeHooks[cell]
				for _, h := range hooks {
					h.PreWrite(a, cell, a.data)
				}
				a.markDirty(cell)
				lanes[cell] = a.data[0]
				for _, h := range hooks {
					h.PostWrite(a, cell, a.data)
				}
			} else {
				if track {
					a.markDirty(cell)
				}
				lanes[cell] = d
			}
			continue
		}
		if op == opObserve {
			// Compare point: no memory access, no clock tick — the
			// machine diverges iff its accumulated signature diff is
			// nonzero.
			ob := &p.observes[obsPos]
			obsPos++
			var d uint64
			for _, w := range a.acc[ob.acc : ob.acc+ob.bits] {
				d |= w
			}
			detected |= d & full
			if detected == full {
				break
			}
			continue
		}
		cell := int(oa & w1AddrMask)
		clock++
		if op <= opFold {
			v := lanes[cell]
			if flags[cell]&flagRead != 0 || hasEvery {
				a.clock = clock
				a.val[0] = v
				for _, h := range a.readHooks[cell] {
					h.OnRead(a, cell, a.val)
				}
				for _, h := range a.everyRead[0] {
					h.OnRead(a, cell, a.val)
				}
				v = a.val[0]
			}
			if slots > 0 {
				hist[hpos] = v
				if hpos++; hpos == slots {
					hpos = 0
				}
			}
			if op != opRead {
				clean := uint64(0) - uint64(oa>>w1DataShift&1) // broadcast the expected bit
				d := v ^ clean
				if op == opCheck {
					detected |= d & full
					if detected == full {
						break // every machine has detected
					}
					continue
				}
				// opFold: acc ← step·acc ⊕ tap·diff, per lane.
				fr := &p.folds[foldPos]
				foldPos++
				if fr.checked {
					detected |= d & full
					if detected == full {
						break
					}
				}
				step := p.rowPool[fr.step : fr.step+fr.bits]
				tap := p.rowPool[fr.tap : fr.tap+fr.bits]
				av := a.acc[fr.acc : fr.acc+fr.bits]
				scr := a.obsScr
				for r := range av {
					var nv uint64
					for m := step[r]; m != 0; m &= m - 1 {
						nv ^= av[bits.TrailingZeros32(m)]
					}
					if tap[r]&1 != 0 {
						nv ^= d
					}
					scr[r] = nv
				}
				copy(av, scr[:len(av)])
			}
			continue
		}
		d := uint64(0) - uint64(oa>>w1DataShift&1)
		if op == opAffine {
			e := &p.aff1[affPos]
			affPos++
			for _, t := range p.terms[e.t0 : e.t0+e.tn] {
				if t.mask&1 != 0 {
					s := hpos - int(t.back)
					if s < 0 {
						s += slots
					}
					d ^= hist[s]
				}
			}
		}
		if flags[cell]&flagWrite != 0 {
			a.clock = clock
			a.data[0] = d
			hooks := a.writeHooks[cell]
			for _, h := range hooks {
				h.PreWrite(a, cell, a.data)
			}
			a.markDirty(cell)
			lanes[cell] = a.data[0]
			for _, h := range hooks {
				h.PostWrite(a, cell, a.data)
			}
		} else {
			if track {
				a.markDirty(cell)
			}
			lanes[cell] = d
		}
	}
	a.clock = clock
	return detected
}

// runN is the generic kernel for word-oriented memories (width >= 2).
func (p *Program) runN(a *Arena, full uint64) uint64 {
	w := p.width
	var detected uint64
	slots, hpos, foldPos, obsPos := p.maxBack, 0, 0, 0
	flags := a.flags
	hasEvery := a.everyN != 0
	track := !p.dense // dense traces restore wholesale, skip marking
	clock := a.clock
	for i := range p.code {
		in := &p.code[i]
		cell := int(in.opAddr & addrMask)
		op := in.opAddr >> opShift
		if op == opCheckWrite {
			// Fused super-op: sense (+hooks/history), compare, store.
			base := cell * w
			clock++
			val := a.val
			copy(val, a.lanes[base:base+w])
			if flags[cell]&flagRead != 0 || hasEvery {
				a.clock = clock
				for _, h := range a.readHooks[cell] {
					h.OnRead(a, cell, val)
				}
				for _, h := range a.everyRead[0] {
					h.OnRead(a, cell, val)
				}
			}
			if slots > 0 {
				copy(a.hist[hpos*w:hpos*w+w], val)
				if hpos++; hpos == slots {
					hpos = 0
				}
			}
			clean := p.lanePool[in.lane : int(in.lane)+w]
			var diff uint64
			for b := 0; b < w; b++ {
				diff |= val[b] ^ clean[b]
			}
			detected |= diff & full
			if detected == full {
				break // every machine has detected
			}
			clock++
			data := a.data
			copy(data, p.lanePool[in.t0:int(in.t0)+w])
			if flags[cell]&flagWrite != 0 {
				a.clock = clock
				hooks := a.writeHooks[cell]
				for _, h := range hooks {
					h.PreWrite(a, cell, data)
				}
				a.markDirty(cell)
				copy(a.lanes[base:base+w], data)
				for _, h := range hooks {
					h.PostWrite(a, cell, data)
				}
			} else {
				if track {
					a.markDirty(cell)
				}
				copy(a.lanes[base:base+w], data)
			}
			continue
		}
		if op == opObserve {
			// Compare point: no memory access, no clock tick.
			ob := &p.observes[obsPos]
			obsPos++
			var d uint64
			for _, wv := range a.acc[ob.acc : ob.acc+ob.bits] {
				d |= wv
			}
			detected |= d & full
			if detected == full {
				break
			}
			continue
		}
		base := cell * w
		clock++
		if op <= opFold {
			val := a.val
			copy(val, a.lanes[base:base+w])
			if flags[cell]&flagRead != 0 || hasEvery {
				a.clock = clock
				for _, h := range a.readHooks[cell] {
					h.OnRead(a, cell, val)
				}
				for _, h := range a.everyRead[0] {
					h.OnRead(a, cell, val)
				}
			}
			if slots > 0 {
				copy(a.hist[hpos*w:hpos*w+w], val)
				if hpos++; hpos == slots {
					hpos = 0
				}
			}
			if op == opCheck {
				clean := p.lanePool[in.lane : int(in.lane)+w]
				var diff uint64
				for b := 0; b < w; b++ {
					diff |= val[b] ^ clean[b]
				}
				detected |= diff & full
				if detected == full {
					break // every machine has detected
				}
			} else if op == opFold {
				// acc ← step·acc ⊕ tap·diff, per lane.
				fr := &p.folds[foldPos]
				foldPos++
				clean := p.lanePool[in.lane : int(in.lane)+w]
				diff := a.diff
				var any uint64
				for b := 0; b < w; b++ {
					diff[b] = val[b] ^ clean[b]
					any |= diff[b]
				}
				if fr.checked {
					detected |= any & full
					if detected == full {
						break
					}
				}
				step := p.rowPool[fr.step : fr.step+fr.bits]
				tap := p.rowPool[fr.tap : fr.tap+fr.bits]
				av := a.acc[fr.acc : fr.acc+fr.bits]
				for r := range av {
					var nv uint64
					for m := step[r]; m != 0; m &= m - 1 {
						nv ^= av[bits.TrailingZeros32(m)]
					}
					for m := tap[r]; m != 0; m &= m - 1 {
						nv ^= diff[bits.TrailingZeros32(m)]
					}
					a.obsScr[r] = nv
				}
				copy(av, a.obsScr[:len(av)])
			}
			continue
		}
		data := a.data
		copy(data, p.lanePool[in.lane:int(in.lane)+w])
		if op == opAffine {
			for _, t := range p.terms[in.t0 : in.t0+in.tn] {
				s := hpos - int(t.back)
				if s < 0 {
					s += slots
				}
				src := a.hist[s*w:]
				for rm := t.mask; rm != 0; rm &= rm - 1 {
					data[t.dst] ^= src[bits.TrailingZeros32(rm)]
				}
			}
		}
		if flags[cell]&flagWrite != 0 {
			a.clock = clock
			hooks := a.writeHooks[cell]
			for _, h := range hooks {
				h.PreWrite(a, cell, data)
			}
			a.markDirty(cell)
			copy(a.lanes[base:base+w], data)
			for _, h := range hooks {
				h.PostWrite(a, cell, data)
			}
		} else {
			if track {
				a.markDirty(cell)
			}
			copy(a.lanes[base:base+w], data)
		}
	}
	a.clock = clock
	return detected
}

// senseHooked runs the read hooks of every lane group over a sensed
// wide value (val laid out [group][bit], group g's block val[g*w:
// (g+1)*w]) — each group's hooks see only their own 64-lane block
// through the group view, so the single-word fault-model hook
// implementations run unmodified.
func (a *Arena) senseHooked(cell int, val []uint64, clock uint64) {
	p := a.p
	W, w := p.laneWords, p.width
	a.clock = clock
	ht := cell * W
	for g := 0; g < W; g++ {
		vg := val[g*w : (g+1)*w]
		for _, h := range a.readHooks[ht+g] {
			h.OnRead(&a.views[g], cell, vg)
		}
		for _, h := range a.everyRead[g] {
			h.OnRead(&a.views[g], cell, vg)
		}
	}
}

// storeHooked stores a wide write value (data laid out [group][bit])
// into a write-hooked cell, running each group's Pre/PostWrite hooks
// around that group's 64-lane store.  Groups are independent — a hook
// only touches its own group's lane words — so the per-group sequence
// is equivalent to the classic single-group pre/store/post order.
func (a *Arena) storeHooked(cell int, data []uint64, clock uint64) {
	p := a.p
	W, w := p.laneWords, p.width
	a.clock = clock
	a.markDirty(cell)
	ht := cell * W
	base := ht * w
	for g := 0; g < W; g++ {
		hooks := a.writeHooks[ht+g]
		dg := data[g*w : (g+1)*w]
		for _, h := range hooks {
			h.PreWrite(&a.views[g], cell, dg)
		}
		copy(a.lanes[base+g*w:base+(g+1)*w], dg)
		for _, h := range hooks {
			h.PostWrite(&a.views[g], cell, dg)
		}
	}
}

// run1W is the wide width-1 kernel (laneWords > 1): run1 with a W-word
// lane block per cell — sense, compare, fold and store inner loops all
// run over W words, amortizing dispatch, flag checks and history
// bookkeeping over W*64 machines.
func (p *Program) run1W(a *Arena, det, full []uint64) {
	W := p.laneWords
	slots, hpos, affPos, foldPos, obsPos, fusPos := p.maxBack, 0, 0, 0, 0, 0
	lanes, hist, flags := a.lanes, a.hist, a.flags
	hasEvery := a.everyN != 0
	track := !p.dense // dense traces restore wholesale, skip marking
	clock := a.clock
	for _, oa := range p.code1 {
		op := oa >> opShift
		if op == opObserve {
			// Compare point: no memory access, no clock tick.
			ob := &p.observes[obsPos]
			obsPos++
			accBase := int(ob.acc) * W
			nb := int(ob.bits)
			for g := 0; g < W; g++ {
				var d uint64
				for r := 0; r < nb; r++ {
					d |= a.acc[accBase+r*W+g]
				}
				det[g] |= d & full[g]
			}
			if allDetected(det, full) {
				break
			}
			continue
		}
		cell := int(oa & w1AddrMask)
		base := cell * W
		clock++
		if op <= opFold || op == opCheckWrite {
			var v []uint64
			if flags[cell]&flagRead != 0 || hasEvery {
				v = a.val[:W]
				copy(v, lanes[base:base+W])
				a.senseHooked(cell, v, clock)
			} else {
				// No hooks can perturb the sense: read the lane block in
				// place, no scratch copy.
				v = lanes[base : base+W]
			}
			if slots > 0 {
				copy(hist[hpos*W:hpos*W+W], v)
				if hpos++; hpos == slots {
					hpos = 0
				}
			}
			if op == opRead {
				continue
			}
			clean := uint64(0) - uint64(oa>>w1DataShift&1) // broadcast the expected bit
			if op == opCheck || op == opCheckWrite {
				for g := 0; g < W; g++ {
					det[g] |= (v[g] ^ clean) & full[g]
				}
				if allDetected(det, full) {
					break // every machine has detected
				}
				if op == opCheck {
					continue
				}
				// Fused write half.
				d := uint64(0) - uint64(p.fus1[fusPos])
				fusPos++
				clock++
				if flags[cell]&flagWrite == 0 {
					if track {
						a.markDirty(cell)
					}
					for g := 0; g < W; g++ {
						lanes[base+g] = d
					}
				} else {
					data := a.data[:W]
					for g := range data {
						data[g] = d
					}
					a.storeHooked(cell, data, clock)
				}
				continue
			}
			// opFold: acc ← step·acc ⊕ tap·diff, per lane group.
			fr := &p.folds[foldPos]
			foldPos++
			diff := a.diff[:W]
			for g := 0; g < W; g++ {
				diff[g] = v[g] ^ clean
				if fr.checked {
					det[g] |= diff[g] & full[g]
				}
			}
			if fr.checked && allDetected(det, full) {
				break
			}
			step := p.rowPool[fr.step : fr.step+fr.bits]
			tap := p.rowPool[fr.tap : fr.tap+fr.bits]
			nb := int(fr.bits)
			av := a.acc[int(fr.acc)*W : int(fr.acc)*W+nb*W]
			scr := a.obsScr[:nb*W]
			for r := 0; r < nb; r++ {
				for g := 0; g < W; g++ {
					var nv uint64
					for m := step[r]; m != 0; m &= m - 1 {
						nv ^= av[bits.TrailingZeros32(m)*W+g]
					}
					if tap[r]&1 != 0 {
						nv ^= diff[g]
					}
					scr[r*W+g] = nv
				}
			}
			copy(av, scr)
			continue
		}
		d := uint64(0) - uint64(oa>>w1DataShift&1)
		if op == opWrite {
			if flags[cell]&flagWrite == 0 {
				if track {
					a.markDirty(cell)
				}
				for g := 0; g < W; g++ {
					lanes[base+g] = d
				}
			} else {
				data := a.data[:W]
				for g := range data {
					data[g] = d
				}
				a.storeHooked(cell, data, clock)
			}
			continue
		}
		// opAffine: per-group data diverges through the history terms.
		e := &p.aff1[affPos]
		affPos++
		data := a.data[:W]
		for g := range data {
			data[g] = d
		}
		for _, t := range p.terms[e.t0 : e.t0+e.tn] {
			if t.mask&1 != 0 {
				s := hpos - int(t.back)
				if s < 0 {
					s += slots
				}
				hb := hist[s*W : s*W+W]
				for g := 0; g < W; g++ {
					data[g] ^= hb[g]
				}
			}
		}
		if flags[cell]&flagWrite == 0 {
			if track {
				a.markDirty(cell)
			}
			copy(lanes[base:base+W], data)
		} else {
			a.storeHooked(cell, data, clock)
		}
	}
	a.clock = clock
}

// runNW is the wide generic kernel (width >= 2, laneWords > 1): cell
// blocks are laneWords*width words laid out [group][bit], and every
// per-bit inner loop of runN gains a lane-group dimension.
func (p *Program) runNW(a *Arena, det, full []uint64) {
	W, w := p.laneWords, p.width
	ww := W * w // words per cell block
	slots, hpos, foldPos, obsPos := p.maxBack, 0, 0, 0
	flags := a.flags
	hasEvery := a.everyN != 0
	track := !p.dense // dense traces restore wholesale, skip marking
	clock := a.clock
	for i := range p.code {
		in := &p.code[i]
		cell := int(in.opAddr & addrMask)
		op := in.opAddr >> opShift
		if op == opObserve {
			// Compare point: no memory access, no clock tick.
			ob := &p.observes[obsPos]
			obsPos++
			accBase := int(ob.acc) * W
			nb := int(ob.bits)
			for g := 0; g < W; g++ {
				var d uint64
				for r := 0; r < nb; r++ {
					d |= a.acc[accBase+r*W+g]
				}
				det[g] |= d & full[g]
			}
			if allDetected(det, full) {
				break
			}
			continue
		}
		base := cell * ww
		clock++
		if op <= opFold || op == opCheckWrite {
			val := a.val[:ww]
			copy(val, a.lanes[base:base+ww])
			if flags[cell]&flagRead != 0 || hasEvery {
				a.senseHooked(cell, val, clock)
			}
			if slots > 0 {
				copy(a.hist[hpos*ww:hpos*ww+ww], val)
				if hpos++; hpos == slots {
					hpos = 0
				}
			}
			if op == opRead {
				continue
			}
			clean := p.lanePool[in.lane : int(in.lane)+w]
			if op == opCheck || op == opCheckWrite {
				for g := 0; g < W; g++ {
					gb := g * w
					var diff uint64
					for b := 0; b < w; b++ {
						diff |= val[gb+b] ^ clean[b]
					}
					det[g] |= diff & full[g]
				}
				if allDetected(det, full) {
					break // every machine has detected
				}
				if op == opCheck {
					continue
				}
				// Fused write half.
				clock++
				data := a.data[:ww]
				src := p.lanePool[in.t0 : int(in.t0)+w]
				for g := 0; g < W; g++ {
					copy(data[g*w:(g+1)*w], src)
				}
				if flags[cell]&flagWrite == 0 {
					if track {
						a.markDirty(cell)
					}
					copy(a.lanes[base:base+ww], data)
				} else {
					a.storeHooked(cell, data, clock)
				}
				continue
			}
			// opFold: acc ← step·acc ⊕ tap·diff, per lane group.
			fr := &p.folds[foldPos]
			foldPos++
			diff := a.diff[:ww]
			for g := 0; g < W; g++ {
				gb := g * w
				var any uint64
				for b := 0; b < w; b++ {
					diff[gb+b] = val[gb+b] ^ clean[b]
					any |= diff[gb+b]
				}
				if fr.checked {
					det[g] |= any & full[g]
				}
			}
			if fr.checked && allDetected(det, full) {
				break
			}
			step := p.rowPool[fr.step : fr.step+fr.bits]
			tap := p.rowPool[fr.tap : fr.tap+fr.bits]
			nb := int(fr.bits)
			av := a.acc[int(fr.acc)*W : int(fr.acc)*W+nb*W]
			scr := a.obsScr[:nb*W]
			for r := 0; r < nb; r++ {
				for g := 0; g < W; g++ {
					var nv uint64
					for m := step[r]; m != 0; m &= m - 1 {
						nv ^= av[bits.TrailingZeros32(m)*W+g]
					}
					for m := tap[r]; m != 0; m &= m - 1 {
						nv ^= diff[g*w+bits.TrailingZeros32(m)]
					}
					scr[r*W+g] = nv
				}
			}
			copy(av, scr)
			continue
		}
		data := a.data[:ww]
		src := p.lanePool[in.lane : int(in.lane)+w]
		for g := 0; g < W; g++ {
			copy(data[g*w:(g+1)*w], src)
		}
		if op == opAffine {
			for _, t := range p.terms[in.t0 : in.t0+in.tn] {
				s := hpos - int(t.back)
				if s < 0 {
					s += slots
				}
				hb := a.hist[s*ww:]
				for g := 0; g < W; g++ {
					gb := g * w
					for rm := t.mask; rm != 0; rm &= rm - 1 {
						data[gb+int(t.dst)] ^= hb[gb+bits.TrailingZeros32(rm)]
					}
				}
			}
		}
		if flags[cell]&flagWrite == 0 {
			if track {
				a.markDirty(cell)
			}
			copy(a.lanes[base:base+ww], data)
		} else {
			a.storeHooked(cell, data, clock)
		}
	}
	a.clock = clock
}
