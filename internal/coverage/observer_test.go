package coverage

import (
	"testing"

	"repro/internal/bist"
	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/prt"
	"repro/internal/ram"
)

// These tests pin down the signature-observer replay path: MISR/BIST
// detection must run on the compiled engine with exact aliasing
// semantics — byte-identical to the oracle even for multi-error
// patterns that cancel in the register, which the checked-read
// over-approximation would miscount as detected.

// pairFault composes two batchable faults into one injected defect
// (both on the same machine lane), the shape needed to build error
// patterns that alias in a signature register.
type pairFault struct{ a, b fault.BatchInjector }

func (p pairFault) Class() fault.Class { return p.a.Class() }

func (p pairFault) String() string { return p.a.String() + "+" + p.b.String() }

func (p pairFault) Inject(m ram.Memory) ram.Memory { return p.b.Inject(p.a.Inject(m)) }

func (p pairFault) BatchInject(reg fault.HookRegistry, lane int) {
	p.a.BatchInject(reg, lane)
	p.b.BatchInject(reg, lane)
}

// misrReadbackRunner writes an all-ones background and detects purely
// by comparing a w-bit SISR compression of the read-back against the
// prediction.  checked deliberately mis-annotates the folded reads as
// checked reads instead — the over-approximation whose wrongness the
// cancellation test demonstrates.
type misrReadbackRunner struct {
	w       int
	checked bool
}

func (r misrReadbackRunner) Name() string { return "misr-readback" }

// ReplaySafe implements ReplaySafe.
func (misrReadbackRunner) ReplaySafe() {}

func (r misrReadbackRunner) Run(mem ram.Memory) (bool, uint64) {
	f := gf.NewField(r.w)
	sig, err := bist.NewMISR(f, 0)
	if err != nil {
		panic(err)
	}
	pred, err := bist.NewMISR(f, 0)
	if err != nil {
		panic(err)
	}
	step, _ := sig.FoldMatrices()
	tap := make([]uint32, r.w)
	tap[0] = 1
	var ops uint64
	n := mem.Size()
	for a := 0; a < n; a++ {
		mem.Write(a, 1)
		ops++
	}
	for a := 0; a < n; a++ {
		v := gf.Elem(mem.Read(a))
		if r.checked {
			ram.AnnotateChecked(mem)
		} else {
			ram.AnnotateFold(mem, 0, step, tap)
		}
		ops++
		sig.Feed(v & 1)
		pred.Feed(1)
	}
	if !r.checked {
		ram.AnnotateObserved(mem, 0)
	}
	return sig.Signature() != pred.Signature(), ops
}

// TestObserverReplayReproducesMISRCancellation is the aliasing
// exactness regression: a double stuck-at whose two read-back errors
// sit ord(α) = 2^w-1 cells apart contributes α^(j-i) = 1 times the
// same error twice, cancelling in the register — the oracle reports it
// undetected and the observer replay must agree, with collapsing on
// and off, while also keeping the SA0/SA1 split that a folded (but
// unchecked) bit demands of the collapser.
func TestObserverReplayReproducesMISRCancellation(t *testing.T) {
	const n, w = 8, 2 // GF(2^2): ord(α) = 3
	u := fault.Universe{Name: "alias", Faults: []fault.Fault{
		// Errors 3 apart: cancels, undetected.
		pairFault{fault.SAF{Cell: 2, Value: 0}, fault.SAF{Cell: 5, Value: 0}},
		// Errors 2 apart: α² ≠ 1, detected.
		pairFault{fault.SAF{Cell: 2, Value: 0}, fault.SAF{Cell: 4, Value: 0}},
		// Single error: never aliases, detected.
		fault.SAF{Cell: 3, Value: 0},
		// SA1 on the all-ones background is invisible — and must not be
		// collapsed onto SA0 just because no read of the cell is
		// checked: the bit feeds the register.
		fault.SAF{Cell: 3, Value: 1},
	}}
	mk := bomFactory(n)
	r := misrReadbackRunner{w: w}

	oracle := CampaignEngine(r, u, mk, 1, EngineOracle)
	if oracle.FalsePositive {
		t.Fatal("clean run detected")
	}
	if oracle.Detected != 2 {
		t.Fatalf("oracle detected %d of %d, want 2 (the aliased pair and SA1 escape)",
			oracle.Detected, oracle.Total)
	}
	assertEngineEquivalence(t, r, u, mk)

	got := CampaignEngine(r, u, mk, 1, EngineCompiled)
	if got.Stats == nil || got.Stats.Engine != EngineCompiled {
		t.Fatalf("observer campaign did not run on the compiled engine: %+v", got.Stats)
	}

	// The checked-read over-approximation calls every diverging read a
	// detection, wrongly flagging the aliased pair (and SA1's oracle
	// outcome no longer matches its replay) — the reason compressed
	// comparators must use fold/observe annotations.
	wrong := CampaignEngine(misrReadbackRunner{w: w, checked: true}, u, mk, 1, EngineCompiled)
	if wrong.Detected != 3 {
		t.Fatalf("checked-read replay detected %d, want 3 (over-approximation flags the aliased pair)",
			wrong.Detected)
	}
}

// TestEngineEquivalenceObserverRunners extends the engine-equivalence
// property to the signature-observer runners: the compressed BIST
// controller over full scheme iterations.
func TestEngineEquivalenceObserverRunners(t *testing.T) {
	gen := prt.PaperWOMConfig().Gen
	for _, n := range []int{17, 33} {
		r := BISTRunner(prt.StandardScheme3(gen), 0)
		for _, u := range womUniverses(n, 4) {
			assertEngineEquivalence(t, r, u, womFactory(n, 4))
		}
	}
}

func TestEngineEquivalenceMISRReadback(t *testing.T) {
	for _, n := range []int{16, 33} {
		for _, w := range []int{1, 4} {
			r := misrReadbackRunner{w: w}
			for _, u := range []fault.Universe{
				{Name: "single-cell", Faults: fault.SingleCellUniverse(n, 1)},
				{Name: "coupling", Faults: fault.CouplingUniverse(fault.AdjacentPairs(n))},
			} {
				assertEngineEquivalence(t, r, u, bomFactory(n))
			}
		}
	}
}

// TestStatsReportEffectiveWorkers: a one-batch universe must report
// the clamped worker count, not the requested pool size.
func TestStatsReportEffectiveWorkers(t *testing.T) {
	const n = 16 // 64 single-cell faults = one 64-machine batch
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 1)}
	r := misrReadbackRunner{w: 4}
	res := CampaignEngine(r, u, bomFactory(n), 8, EngineCompiled)
	if res.Stats == nil || res.Stats.Engine != EngineCompiled {
		t.Fatalf("Stats = %+v", res.Stats)
	}
	if res.Stats.Workers != 1 {
		t.Errorf("compiled Workers = %d, want the effective 1", res.Stats.Workers)
	}
	o := CampaignEngine(r, u, bomFactory(n), 8, EngineOracle)
	if o.Stats == nil || o.Stats.Engine != EngineOracle {
		t.Fatalf("oracle Stats = %+v", o.Stats)
	}
	if o.Stats.Workers != 8 {
		t.Errorf("oracle Workers = %d, want 8 (64 faults keep the pool busy)", o.Stats.Workers)
	}
}

// unannotatedReplaySafe claims ReplaySafe but records no annotations,
// so its trace is not replayable and the campaign must fall back.
type unannotatedReplaySafe struct{}

func (unannotatedReplaySafe) Name() string { return "unannotated" }

func (unannotatedReplaySafe) ReplaySafe() {}

func (unannotatedReplaySafe) Run(mem ram.Memory) (bool, uint64) {
	mem.Write(0, 1)
	return mem.Read(0) != 1, 2
}

// falsePositiveReplaySafe detects on a fault-free memory, breaking the
// checked-read criterion, so the campaign must fall back.
type falsePositiveReplaySafe struct{}

func (falsePositiveReplaySafe) Name() string { return "false-positive" }

func (falsePositiveReplaySafe) ReplaySafe() {}

func (falsePositiveReplaySafe) Run(mem ram.Memory) (bool, uint64) {
	mem.Read(0)
	ram.AnnotateChecked(mem)
	return true, 1
}

// TestOracleFallbackVisibleInStats: when a replay-safe runner cannot
// actually replay, the silent oracle fallback must be visible in
// Stats instead of leaving the requested engine's label standing.
func TestOracleFallbackVisibleInStats(t *testing.T) {
	const n = 8
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 1)}
	for _, tc := range []struct {
		name string
		r    Runner
	}{
		{"non-replayable trace", unannotatedReplaySafe{}},
		{"false-positive clean run", falsePositiveReplaySafe{}},
	} {
		res := CampaignEngine(tc.r, u, bomFactory(n), 4, EngineCompiled)
		if res.Stats == nil {
			t.Fatalf("%s: Stats nil on oracle fallback", tc.name)
		}
		if res.Stats.Engine != EngineOracle {
			t.Errorf("%s: Stats.Engine = %v, want oracle", tc.name, res.Stats.Engine)
		}
		if res.Stats.Workers < 1 {
			t.Errorf("%s: Workers = %d", tc.name, res.Stats.Workers)
		}
	}
}
