package bist

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/prt"
	"repro/internal/ram"
)

// State is the controller FSM state.
type State int

// FSM states of the PRT BIST controller.
const (
	StateIdle State = iota
	StateSeed
	StateReadOps // reading the k recurrence operands
	StateWrite   // writing the recurrence value
	StateFinRead // reading back the final window
	StateCompare // comparing Fin with Fin*
	StateDone
	StateFail
)

func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateSeed:
		return "seed"
	case StateReadOps:
		return "read"
	case StateWrite:
		return "write"
	case StateFinRead:
		return "fin-read"
	case StateCompare:
		return "compare"
	case StateDone:
		return "done"
	case StateFail:
		return "fail"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Controller is a cycle-stepped model of the on-chip PRT engine: one
// memory operation (or one compare) per Step call, mirroring the
// hardware the Budget accounts for.  It executes a single signature
// π-iteration; the multi-iteration sequencing is a trivial outer loop
// (see RunAll).
type Controller struct {
	cfg   prt.Config
	mem   ram.Memory
	state State

	addr    []int
	k       int
	pos     int // current trajectory position
	operand int // which of the k operands is being read
	acc     gf.Elem
	fin     []gf.Elem
	finStar []gf.Elem
	finPos  int

	// Cycles counts Step calls since reset.
	Cycles uint64
}

// NewController builds a controller for one iteration of cfg on mem.
// Ring and Verify/CaptureStale options are not modelled by the FSM
// (the budget covers the plain signature engine).
func NewController(cfg prt.Config, mem ram.Memory) (*Controller, error) {
	if cfg.Ring || cfg.Verify || cfg.CaptureStale {
		return nil, fmt.Errorf("bist: controller models the plain signature iteration only")
	}
	if err := cfg.Validate(mem.Size(), mem.Width()); err != nil {
		return nil, err
	}
	finStar, err := lfsr.AffineJumpAhead(cfg.Gen, cfg.Offset, cfg.Seed, uint64(mem.Size()-cfg.Gen.K()))
	if err != nil {
		return nil, err
	}
	c := &Controller{
		cfg:     cfg,
		mem:     mem,
		state:   StateSeed,
		addr:    cfg.Addresses(mem.Size()),
		k:       cfg.Gen.K(),
		fin:     make([]gf.Elem, 0, cfg.Gen.K()),
		finStar: finStar,
	}
	return c, nil
}

// State returns the current FSM state.
func (c *Controller) State() State { return c.state }

// Done reports whether the FSM reached a terminal state.
func (c *Controller) Done() bool { return c.state == StateDone || c.state == StateFail }

// Failed reports whether the signature comparison failed.
func (c *Controller) Failed() bool { return c.state == StateFail }

// Step advances one clock: exactly one memory operation or one
// comparison per call.
func (c *Controller) Step() {
	if c.Done() {
		return
	}
	c.Cycles++
	f := c.cfg.Gen.Field
	taps := c.cfg.Gen.Taps()
	n := c.mem.Size()
	switch c.state {
	case StateSeed:
		c.mem.Write(c.addr[c.pos], ram.Word(c.cfg.Seed[c.pos]))
		c.pos++
		if c.pos == c.k {
			c.state = StateReadOps
			c.operand = 0
			c.acc = c.cfg.Offset
		}
	case StateReadOps:
		// Read operand c_{pos-1-operand} (most recent first).
		v := gf.Elem(c.mem.Read(c.addr[c.pos-1-c.operand]))
		c.acc = f.Add(c.acc, f.Mul(taps[c.operand], v))
		c.operand++
		if c.operand == c.k {
			c.state = StateWrite
		}
	case StateWrite:
		c.mem.Write(c.addr[c.pos], ram.Word(c.acc))
		c.pos++
		if c.pos == n {
			c.state = StateFinRead
			c.finPos = 0
		} else {
			c.state = StateReadOps
			c.operand = 0
			c.acc = c.cfg.Offset
		}
	case StateFinRead:
		c.fin = append(c.fin, gf.Elem(c.mem.Read(c.addr[n-c.k+c.finPos])))
		c.finPos++
		if c.finPos == c.k {
			c.state = StateCompare
		}
	case StateCompare:
		for i := range c.fin {
			if c.fin[i] != c.finStar[i] {
				c.state = StateFail
				return
			}
		}
		c.state = StateDone
	}
}

// Run steps the FSM to completion and returns whether the iteration
// passed (signature matched).
func (c *Controller) Run() bool {
	for !c.Done() {
		c.Step()
	}
	return c.state == StateDone
}

// Fin returns the observed final window (after completion).
func (c *Controller) Fin() []gf.Elem { return append([]gf.Elem(nil), c.fin...) }

// RunAll sequences the controller over every iteration of a scheme's
// resolved configurations, returning pass/fail and total cycles.
// Mirror placeholders are resolved against the memory size; the
// verify/capture options are stripped (the FSM models the signature
// engine the Budget prices).
func RunAll(s prt.Scheme, mem ram.Memory) (pass bool, cycles uint64, err error) {
	pass = true
	resolved := make([]prt.Config, len(s.Iters))
	for i, cfg := range s.Iters {
		if t := cfg.MirrorOf - 1; t >= 0 {
			m, err := prt.MirrorConfig(resolved[t], mem.Size())
			if err != nil {
				return false, cycles, err
			}
			cfg = m
		}
		cfg.Verify = false
		cfg.CaptureStale = false
		cfg.StaleExpect = nil
		resolved[i] = cfg
		ctl, err := NewController(cfg, mem)
		if err != nil {
			return false, cycles, err
		}
		ok := ctl.Run()
		cycles += ctl.Cycles
		if !ok {
			pass = false
		}
	}
	return pass, cycles, nil
}
