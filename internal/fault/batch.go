// Batch-injection hooks: the OnRead/PreWrite/PostWrite implementations
// below run inside the replay kernels' per-operation loops, so the
// whole file is on the zero-allocation hot path.
//
//faultsim:hotpath

package fault

import (
	"repro/internal/ram"
)

// This file is the batch-injection capability layer used by the
// bit-parallel fault-simulation engine (package sim).  The engine
// simulates up to 64 faulty machines at once: each cell-bit of the
// memory is a uint64 "lane word" whose bit l holds that bit's value in
// machine l.  Because every campaign injects exactly one fault per
// machine, the hooks installed for different lanes operate on disjoint
// lane bits and never interact — exactly mirroring the single-fault
// decorator wrappers of Inject.
//
// The interfaces live here (not in sim) so the fault models can
// describe their own batched semantics without an import cycle: sim
// imports fault, and fault only needs ram.

// LaneMemory is the bit-sliced storage of up to 64 simultaneously
// simulated machines.
type LaneMemory interface {
	// Size returns the number of cells.
	Size() int
	// Width returns the cell width in bits.
	Width() int
	// StoredLane returns the lane word of stored bit (cell, bit): bit
	// l of the result is machine l's stored value of that cell-bit.
	StoredLane(cell, bit int) uint64
	// SetStoredLane replaces, for the machines selected by mask, the
	// stored bit (cell, bit) with the corresponding bits of value.
	SetStoredLane(cell, bit int, value, mask uint64)
	// Clock returns the number of memory operations performed so far,
	// including the one currently executing — the op counter the DRF
	// decay model ticks on.
	Clock() uint64
}

// WriteHook intercepts writes to a hooked cell.  data[b] is the lane
// word of bit b of the value being written (identical across machines
// for literal stimuli, per-machine for replayed recurrence writes).
// PreWrite runs before the engine stores data; PostWrite runs after,
// so a hook can capture pre-write state and then patch its own
// machine's outcome.
type WriteHook interface {
	PreWrite(m LaneMemory, cell int, data []uint64)
	PostWrite(m LaneMemory, cell int, data []uint64)
}

// ReadHook adjusts the sensed value of a read.  val[b] is the lane
// word of bit b about to be returned; hooks mutate their own machine's
// lane bits in place.
type ReadHook interface {
	OnRead(m LaneMemory, cell int, val []uint64)
}

// HookRegistry is the machine array as seen by BatchInject: lane
// storage plus hook registration.
type HookRegistry interface {
	LaneMemory
	// OnWriteTo runs h around every write to cell.
	OnWriteTo(cell int, h WriteHook)
	// OnReadOf runs h on every read of cell.
	OnReadOf(cell int, h ReadHook)
	// OnEveryRead runs h on every read of any cell (the stuck-open
	// sense-amplifier model needs to observe the full read stream).
	OnEveryRead(h ReadHook)
}

// BatchInjector is the batch-simulation capability: a fault that can
// install its behaviour for one machine lane of a bit-parallel array.
// All concrete fault types of this package implement it; the installed
// hooks reproduce the corresponding Inject wrapper exactly.
type BatchInjector interface {
	Fault
	BatchInject(reg HookRegistry, lane int)
}

// PooledInjector is the allocation-free variant of BatchInjector used
// by the compiled replay engine: hook objects are drawn from a
// per-worker Pool instead of the heap, so steady-state batches allocate
// nothing.  A nil pool degrades to plain allocation.  All concrete
// fault types of this package implement it.
type PooledInjector interface {
	BatchInjector
	BatchInjectPooled(reg HookRegistry, lane int, p *Pool)
}

// laneWord assembles machine lane's bits of cell into a Word.
func laneWord(m LaneMemory, cell, lane int) ram.Word {
	var w ram.Word
	for b := 0; b < m.Width(); b++ {
		w |= ram.Word(m.StoredLane(cell, b)>>uint(lane)&1) << uint(b)
	}
	return w
}

// setLaneWord writes machine lane's bits of cell from w.
func setLaneWord(m LaneMemory, cell, lane int, w ram.Word) {
	mask := uint64(1) << uint(lane)
	for b := 0; b < m.Width(); b++ {
		m.SetStoredLane(cell, b, uint64(w>>uint(b)&1)<<uint(lane), mask)
	}
}

// dataWord assembles machine lane's bits of a data lane slice.
func dataWord(data []uint64, lane int) ram.Word {
	var w ram.Word
	for b, d := range data {
		w |= ram.Word(d>>uint(lane)&1) << uint(b)
	}
	return w
}

// --- SAF ---

type safHook struct {
	bit   int
	force uint64 // lane-positioned stuck value
	mask  uint64
}

func (h *safHook) PreWrite(LaneMemory, int, []uint64) {}

func (h *safHook) PostWrite(m LaneMemory, cell int, _ []uint64) {
	m.SetStoredLane(cell, h.bit, h.force, h.mask)
}

// BatchInject implements BatchInjector.
func (f SAF) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.  The stored bit is
// forced at install time (power-on) and re-forced after every write, so
// reads — which sense the stored lane — always observe the stuck value.
func (f SAF) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	mask := uint64(1) << uint(lane)
	var force uint64
	if f.Value&1 == 1 {
		force = mask
	}
	reg.SetStoredLane(f.Cell, f.Bit, force, mask)
	h := p.newSAF()
	h.bit, h.force, h.mask = f.Bit, force, mask
	reg.OnWriteTo(f.Cell, h)
}

// --- TF ---

type tfHook struct {
	bit  int
	up   bool
	mask uint64
	old  uint64
}

func (h *tfHook) PreWrite(m LaneMemory, cell int, _ []uint64) {
	h.old = m.StoredLane(cell, h.bit) & h.mask
}

func (h *tfHook) PostWrite(m LaneMemory, cell int, data []uint64) {
	nb := data[h.bit] & h.mask
	if h.up && h.old == 0 && nb != 0 {
		m.SetStoredLane(cell, h.bit, 0, h.mask) // rise blocked
	} else if !h.up && h.old != 0 && nb == 0 {
		m.SetStoredLane(cell, h.bit, h.mask, h.mask) // fall blocked
	}
}

// BatchInject implements BatchInjector.
func (f TF) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f TF) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	h := p.newTF()
	h.bit, h.up, h.mask = f.Bit, f.Up, uint64(1)<<uint(lane)
	reg.OnWriteTo(f.Cell, h)
}

// --- SOF ---

type sofHook struct {
	cell     int
	lane     int
	mask     uint64
	lastRead ram.Word
	saved    ram.Word
}

func (h *sofHook) PreWrite(m LaneMemory, cell int, _ []uint64) {
	h.saved = laneWord(m, cell, h.lane)
}

func (h *sofHook) PostWrite(m LaneMemory, cell int, _ []uint64) {
	setLaneWord(m, cell, h.lane, h.saved) // write lost
}

func (h *sofHook) OnRead(m LaneMemory, cell int, val []uint64) {
	if cell == h.cell {
		// The disconnected cell returns the previous sensed value.
		for b := range val {
			val[b] = val[b]&^h.mask | uint64(h.lastRead>>uint(b)&1)<<uint(h.lane)
		}
		return
	}
	var w ram.Word
	for b, d := range val {
		w |= ram.Word(d>>uint(h.lane)&1) << uint(b)
	}
	h.lastRead = w
}

// BatchInject implements BatchInjector.
func (f SOF) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f SOF) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	h := p.newSOF()
	h.cell, h.lane, h.mask = f.Cell, lane, uint64(1)<<uint(lane)
	reg.OnWriteTo(f.Cell, h)
	reg.OnEveryRead(h)
}

// --- DRF ---

type drfHook struct {
	bit       int
	decay     uint64 // lane-positioned decay value
	mask      uint64
	delay     uint64
	lastWrite uint64
}

func (h *drfHook) PreWrite(LaneMemory, int, []uint64) {}

func (h *drfHook) PostWrite(m LaneMemory, _ int, _ []uint64) {
	h.lastWrite = m.Clock()
}

func (h *drfHook) OnRead(m LaneMemory, cell int, val []uint64) {
	if m.Clock()-h.lastWrite > h.delay {
		val[h.bit] = val[h.bit]&^h.mask | h.decay
		m.SetStoredLane(cell, h.bit, h.decay, h.mask) // the charge is really gone
	}
}

// BatchInject implements BatchInjector.
func (f DRF) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f DRF) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	mask := uint64(1) << uint(lane)
	var decay uint64
	if f.Decay&1 == 1 {
		decay = mask
	}
	h := p.newDRF()
	h.bit, h.decay, h.mask, h.delay = f.Bit, decay, mask, f.Delay
	reg.OnWriteTo(f.Cell, h)
	reg.OnReadOf(f.Cell, h)
}

// --- AF ---

type afHook struct {
	f    AF
	lane int
	mask uint64
	old  ram.Word
}

func (h *afHook) PreWrite(m LaneMemory, cell int, _ []uint64) {
	if h.f.Kind != AFMulti {
		h.old = laneWord(m, cell, h.lane)
	}
}

func (h *afHook) PostWrite(m LaneMemory, cell int, data []uint64) {
	switch h.f.Kind {
	case AFNone:
		setLaneWord(m, cell, h.lane, h.old) // write lost
	case AFAlias:
		setLaneWord(m, cell, h.lane, h.old) // own cell untouched…
		setLaneWord(m, h.f.Target, h.lane, dataWord(data, h.lane))
	default: // AFMulti: both cells written
		setLaneWord(m, h.f.Target, h.lane, dataWord(data, h.lane))
	}
}

func (h *afHook) OnRead(m LaneMemory, _ int, val []uint64) {
	switch h.f.Kind {
	case AFNone:
		for b := range val {
			val[b] &^= h.mask // discharged bit lines
		}
	case AFAlias:
		for b := range val {
			val[b] = val[b]&^h.mask | m.StoredLane(h.f.Target, b)&h.mask
		}
	default: // AFMulti: wired-OR of both activated cells
		for b := range val {
			val[b] |= m.StoredLane(h.f.Target, b) & h.mask
		}
	}
}

// BatchInject implements BatchInjector.
func (f AF) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f AF) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	h := p.newAF()
	h.f, h.lane, h.mask = f, lane, uint64(1)<<uint(lane)
	reg.OnWriteTo(f.Addr, h)
	reg.OnReadOf(f.Addr, h)
}

// --- CFin ---

type cfinHook struct {
	f    CFin
	mask uint64
	old  uint64
}

func (h *cfinHook) PreWrite(m LaneMemory, cell int, _ []uint64) {
	h.old = m.StoredLane(cell, h.f.AggBit) & h.mask
}

func (h *cfinHook) PostWrite(m LaneMemory, _ int, data []uint64) {
	nb := data[h.f.AggBit] & h.mask
	if !laneTriggered(h.old, nb, h.f.Up) {
		return
	}
	// Intra-word and inter-word collapse to the same patch: after the
	// broadcast store the victim bit holds the just-written (or still
	// stored) value, and the coupling inverts it.
	cur := m.StoredLane(h.f.VicCell, h.f.VicBit)
	m.SetStoredLane(h.f.VicCell, h.f.VicBit, ^cur, h.mask)
}

// BatchInject implements BatchInjector.
func (f CFin) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f CFin) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	h := p.newCFin()
	h.f, h.mask = f, uint64(1)<<uint(lane)
	reg.OnWriteTo(f.AggCell, h)
}

// --- CFid ---

type cfidHook struct {
	f     CFid
	force uint64 // lane-positioned forced value
	mask  uint64
	old   uint64
}

func (h *cfidHook) PreWrite(m LaneMemory, cell int, _ []uint64) {
	h.old = m.StoredLane(cell, h.f.AggBit) & h.mask
}

func (h *cfidHook) PostWrite(m LaneMemory, _ int, data []uint64) {
	nb := data[h.f.AggBit] & h.mask
	if laneTriggered(h.old, nb, h.f.Up) {
		m.SetStoredLane(h.f.VicCell, h.f.VicBit, h.force, h.mask)
	}
}

// BatchInject implements BatchInjector.
func (f CFid) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f CFid) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	mask := uint64(1) << uint(lane)
	var force uint64
	if f.Value&1 == 1 {
		force = mask
	}
	h := p.newCFid()
	h.f, h.force, h.mask = f, force, mask
	reg.OnWriteTo(f.AggCell, h)
}

// --- CFst ---

type cfstHook struct {
	f     CFst
	force uint64
	mask  uint64
}

func (h *cfstHook) OnRead(m LaneMemory, _ int, val []uint64) {
	agg := m.StoredLane(h.f.AggCell, h.f.AggBit) & h.mask
	active := agg != 0
	if h.f.AggValue&1 == 0 {
		active = !active
	}
	if active {
		val[h.f.VicBit] = val[h.f.VicBit]&^h.mask | h.force
	}
}

// BatchInject implements BatchInjector.
func (f CFst) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.  The forcing is level-
// sensitive and applied to the sensed value only, as in the Inject
// wrapper.
func (f CFst) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	mask := uint64(1) << uint(lane)
	var force uint64
	if f.Value&1 == 1 {
		force = mask
	}
	h := p.newCFst()
	h.f, h.force, h.mask = f, force, mask
	reg.OnReadOf(f.VicCell, h)
}

// --- BF ---

type bfHook struct {
	f    BF
	mask uint64
}

func (h *bfHook) OnRead(m LaneMemory, cell int, val []uint64) {
	a := m.StoredLane(h.f.CellA, h.f.BitA) & h.mask
	b := m.StoredLane(h.f.CellB, h.f.BitB) & h.mask
	var wired uint64
	if h.f.And {
		wired = a & b
	} else {
		wired = a | b
	}
	if cell == h.f.CellA {
		val[h.f.BitA] = val[h.f.BitA]&^h.mask | wired
	}
	if cell == h.f.CellB {
		val[h.f.BitB] = val[h.f.BitB]&^h.mask | wired
	}
}

// BatchInject implements BatchInjector.
func (f BF) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f BF) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	h := p.newBF()
	h.f, h.mask = f, uint64(1)<<uint(lane)
	reg.OnReadOf(f.CellA, h)
	if f.CellB != f.CellA {
		reg.OnReadOf(f.CellB, h)
	}
}

// --- SNPSF ---

type snpsfHook struct {
	f     SNPSF
	force uint64
	mask  uint64
}

func (h *snpsfHook) OnRead(m LaneMemory, _ int, val []uint64) {
	order := [4]int{h.f.Nb.N, h.f.Nb.E, h.f.Nb.S, h.f.Nb.W}
	for i, c := range order {
		want := uint64(h.f.Pattern>>uint(i)) & 1
		if c < 0 {
			return // incomplete neighbourhood never matches
		}
		if (m.StoredLane(c, 0)&h.mask != 0) != (want == 1) {
			return
		}
	}
	val[0] = val[0]&^h.mask | h.force
}

// BatchInject implements BatchInjector.
func (f SNPSF) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f SNPSF) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	mask := uint64(1) << uint(lane)
	var force uint64
	if f.Value&1 == 1 {
		force = mask
	}
	h := p.newSNPSF()
	h.f, h.force, h.mask = f, force, mask
	reg.OnReadOf(f.Nb.Base, h)
}

// --- ANPSF ---

type anpsfHook struct {
	f     ANPSF
	force uint64
	mask  uint64
	old   uint64
}

func (h *anpsfHook) PreWrite(m LaneMemory, cell int, _ []uint64) {
	h.old = m.StoredLane(cell, 0) & h.mask
}

func (h *anpsfHook) PostWrite(m LaneMemory, _ int, data []uint64) {
	nb := data[0] & h.mask
	if !laneTriggered(h.old, nb, h.f.Up) {
		return
	}
	order := [4]int{h.f.Nb.N, h.f.Nb.E, h.f.Nb.S, h.f.Nb.W}
	for i, c := range order {
		if i == h.f.Trigger {
			continue
		}
		want := uint64(h.f.Pattern>>uint(i)) & 1
		if c < 0 || (m.StoredLane(c, 0)&h.mask != 0) != (want == 1) {
			return
		}
	}
	m.SetStoredLane(h.f.Nb.Base, 0, h.force, h.mask)
}

// BatchInject implements BatchInjector.
func (f ANPSF) BatchInject(reg HookRegistry, lane int) { f.BatchInjectPooled(reg, lane, nil) }

// BatchInjectPooled implements PooledInjector.
func (f ANPSF) BatchInjectPooled(reg HookRegistry, lane int, p *Pool) {
	order := [4]int{f.Nb.N, f.Nb.E, f.Nb.S, f.Nb.W}
	trig := order[f.Trigger]
	if trig < 0 {
		return // no trigger neighbour: the fault never fires
	}
	mask := uint64(1) << uint(lane)
	var force uint64
	if f.Value&1 == 1 {
		force = mask
	}
	h := p.newANPSF()
	h.f, h.force, h.mask = f, force, mask
	reg.OnWriteTo(trig, h)
}

// laneTriggered reports whether a single machine's old→new bit pair
// (both already masked to the machine's lane) is the watched
// transition.
func laneTriggered(old, new uint64, up bool) bool {
	if up {
		return old == 0 && new != 0
	}
	return old != 0 && new == 0
}
