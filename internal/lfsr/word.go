package lfsr

import (
	"fmt"

	"repro/internal/gf"
)

// GenPoly is the paper's generator polynomial g(x) = a₀ + a₁x + … + a_k x^k
// with coefficients in GF(2^m).  Coeffs[i] is a_i; a₀ must be nonzero
// (the paper uses a₀ = 1) and a_k must be nonzero (it fixes the stage
// count k).  The associated recurrence is
//
//	u_t = a₁·u_{t-1} ⊕ a₂·u_{t-2} ⊕ … ⊕ a_k·u_{t-k}.
type GenPoly struct {
	Field  *gf.Field
	Coeffs []gf.Elem
}

// NewGenPoly validates and returns a generator polynomial.
func NewGenPoly(f *gf.Field, coeffs []gf.Elem) (GenPoly, error) {
	if f == nil {
		return GenPoly{}, fmt.Errorf("lfsr: nil field")
	}
	if len(coeffs) < 2 {
		return GenPoly{}, fmt.Errorf("lfsr: generator polynomial needs degree >= 1 (got %d coefficients)", len(coeffs))
	}
	for _, c := range coeffs {
		if !f.Contains(c) {
			return GenPoly{}, fmt.Errorf("lfsr: coefficient %#x outside %v", uint32(c), f)
		}
	}
	if coeffs[0] == 0 {
		return GenPoly{}, fmt.Errorf("lfsr: a0 must be nonzero (non-singular automaton)")
	}
	if coeffs[len(coeffs)-1] == 0 {
		return GenPoly{}, fmt.Errorf("lfsr: leading coefficient must be nonzero")
	}
	cp := make([]gf.Elem, len(coeffs))
	copy(cp, coeffs)
	return GenPoly{Field: f, Coeffs: cp}, nil
}

// MustGenPoly is NewGenPoly but panics on error.
func MustGenPoly(f *gf.Field, coeffs []gf.Elem) GenPoly {
	g, err := NewGenPoly(f, coeffs)
	if err != nil {
		panic(err)
	}
	return g
}

// PaperGenPoly returns the paper's worked example: g(x) = 1 + 2x + 2x²
// over GF(2⁴) with p(z) = 1 + z + z⁴.
func PaperGenPoly() GenPoly {
	return MustGenPoly(gf.NewField(4), []gf.Elem{1, 2, 2})
}

// K returns the register length (degree of g).
func (g GenPoly) K() int { return len(g.Coeffs) - 1 }

// Taps returns the recurrence weights (a₁ … a_k).
func (g GenPoly) Taps() []gf.Elem { return g.Coeffs[1:] }

// String renders g in the paper's notation, e.g. "1 + 2x + 2x^2".
func (g GenPoly) String() string {
	s := ""
	for i, c := range g.Coeffs {
		if c == 0 {
			continue
		}
		if s != "" {
			s += " + "
		}
		switch {
		case i == 0:
			s += fmt.Sprintf("%X", uint32(c))
		case i == 1 && c == 1:
			s += "x"
		case i == 1:
			s += fmt.Sprintf("%Xx", uint32(c))
		case c == 1:
			s += fmt.Sprintf("x^%d", i)
		default:
			s += fmt.Sprintf("%Xx^%d", uint32(c), i)
		}
	}
	if s == "" {
		return "0"
	}
	return s
}

// Word is a word-oriented LFSR over GF(2^m): the virtual automaton of
// the pseudo-ring test.  Its state window holds the k most recent
// sequence values (state[0] oldest … state[k-1] newest).
type Word struct {
	gen   GenPoly
	state []gf.Elem
}

// NewWord returns a word LFSR for g seeded with init (length k;
// state[0] is the oldest value, i.e. the first cell written).
func NewWord(g GenPoly, init []gf.Elem) (*Word, error) {
	if len(init) != g.K() {
		return nil, fmt.Errorf("lfsr: seed length %d != k=%d", len(init), g.K())
	}
	for _, v := range init {
		if !g.Field.Contains(v) {
			return nil, fmt.Errorf("lfsr: seed value %#x outside %v", uint32(v), g.Field)
		}
	}
	w := &Word{gen: g, state: make([]gf.Elem, g.K())}
	copy(w.state, init)
	return w, nil
}

// MustWord is NewWord but panics on error.
func MustWord(g GenPoly, init []gf.Elem) *Word {
	w, err := NewWord(g, init)
	if err != nil {
		panic(err)
	}
	return w
}

// K returns the register length.
func (w *Word) K() int { return w.gen.K() }

// Gen returns the generator polynomial.
func (w *Word) Gen() GenPoly { return w.gen }

// State returns a copy of the state window (oldest first).
func (w *Word) State() []gf.Elem {
	out := make([]gf.Elem, len(w.state))
	copy(out, w.state)
	return out
}

// Seed replaces the state window (oldest first).
func (w *Word) Seed(init []gf.Elem) error {
	if len(init) != w.K() {
		return fmt.Errorf("lfsr: seed length %d != k=%d", len(init), w.K())
	}
	copy(w.state, init)
	return nil
}

// Next computes the next sequence value u_t from the current window
// without advancing.
func (w *Word) Next() gf.Elem {
	f := w.gen.Field
	k := w.K()
	var acc gf.Elem
	// u_t = Σ_{j=1..k} a_j · u_{t-j}; u_{t-j} is state[k-j].
	for j := 1; j <= k; j++ {
		acc = f.Add(acc, f.Mul(w.gen.Coeffs[j], w.state[k-j]))
	}
	return acc
}

// Step advances one clock and returns the value shifted in.
func (w *Word) Step() gf.Elem {
	v := w.Next()
	copy(w.state, w.state[1:])
	w.state[len(w.state)-1] = v
	return v
}

// Run advances n clocks and returns the final state window.
func (w *Word) Run(n int) []gf.Elem {
	for i := 0; i < n; i++ {
		w.Step()
	}
	return w.State()
}

// Sequence returns the first n values of the full sequence including
// the seed window: u_0 … u_{n-1}, without mutating w.
func (w *Word) Sequence(n int) []gf.Elem {
	cp := MustWord(w.gen, w.State())
	out := make([]gf.Elem, 0, n)
	out = append(out, cp.state...)
	if n <= len(out) {
		return out[:n]
	}
	for len(out) < n {
		out = append(out, cp.Step())
	}
	return out
}

// Period returns the period of the state cycle containing the current
// state, by Brent's cycle-detection (bounded memory).  The all-zero
// state has period 1.  maxSteps caps the search; 0 means the group
// bound (2^m)^k - 1 is used.  It returns 0 if no cycle is found within
// the cap (cannot happen with the group bound on a true LFSR).
func (w *Word) Period(maxSteps uint64) uint64 {
	if maxSteps == 0 {
		maxSteps = groupBound(w.gen.Field.M(), w.K())
	}
	if allZero(w.state) {
		return 1
	}
	// Brent: find the power-of-two window containing the period.
	tortoise := MustWord(w.gen, w.State())
	hare := MustWord(w.gen, w.State())
	var power, lam uint64 = 1, 0
	hare.Step()
	lam = 1
	for !equalStates(tortoise.state, hare.state) {
		if power == lam {
			tortoise.Seed(hare.State())
			power *= 2
			lam = 0
		}
		hare.Step()
		lam++
		if lam > maxSteps {
			return 0
		}
	}
	return lam
}

// groupBound returns (2^m)^k - 1 saturating at MaxUint64.
func groupBound(m, k int) uint64 {
	bits := m * k
	if bits >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(bits) - 1
}

func allZero(s []gf.Elem) bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

func equalStates(a, b []gf.Elem) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
