package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// BatchSize is the number of machines simulated per replay pass — one
// per bit of the lane words.
const BatchSize = 64

// Batchable reports whether every fault of the slice supports batch
// injection, i.e. whether the whole universe can take the bit-parallel
// path.
func Batchable(faults []fault.Fault) bool {
	for _, f := range faults {
		if _, ok := f.(fault.BatchInjector); !ok {
			return false
		}
	}
	return true
}

// shard partitions faults into 64-machine batches distributed across
// workers goroutines (0 = GOMAXPROCS) with an atomic cursor.  Each
// goroutine calls newWorker once for its private replay function (the
// compiled path hangs a reusable Arena off it) and then replays one
// batch per cursor claim.  detected[i] reports fault faults[i]; every
// batch writes a disjoint slice segment, so the result is deterministic
// regardless of the worker count.  A failing batch raises a shared stop
// flag so the remaining workers short-circuit instead of completing
// their batches uselessly.  The returned worker count is the effective
// one after clamping to the batch count — what execution reports must
// cite, not the requested value.
func shard(faults []fault.Fault, workers int, newWorker func() func(batch []fault.Fault) (uint64, error)) ([]bool, int, error) {
	batches := (len(faults) + BatchSize - 1) / BatchSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > batches {
		workers = batches
	}
	detected := make([]bool, len(faults))
	var cursor atomic.Int64
	var stop atomic.Bool
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			replay := newWorker()
			for {
				b := int(cursor.Add(1)) - 1
				if b >= batches || stop.Load() {
					return
				}
				lo := b * BatchSize
				hi := lo + BatchSize
				if hi > len(faults) {
					hi = len(faults)
				}
				mask, err := replay(faults[lo:hi])
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				for i := lo; i < hi; i++ {
					detected[i] = mask>>uint(i-lo)&1 == 1
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, workers, err
		}
	}
	return detected, workers, nil
}

// Shards replays the trace over the whole fault universe with the
// per-batch interpreter (ReplayBatch), which rebuilds the machine array
// for every batch.  It is the PR 1 reference path; ShardsCompiled is
// the allocation-free fast path.  The int result is the effective
// worker count after clamping to the batch count.
func Shards(tr *Trace, faults []fault.Fault, workers int) ([]bool, int, error) {
	return shard(faults, workers, func() func([]fault.Fault) (uint64, error) {
		return func(batch []fault.Fault) (uint64, error) {
			return ReplayBatch(tr, batch)
		}
	})
}

// ShardsCompiled replays a compiled program over the whole fault
// universe.  Each worker owns one reusable Arena, so steady-state
// batches allocate nothing.  The int result is the effective worker
// count after clamping to the batch count.
func ShardsCompiled(p *Program, faults []fault.Fault, workers int) ([]bool, int, error) {
	return shard(faults, workers, func() func([]fault.Fault) (uint64, error) {
		a := NewArena(p)
		return func(batch []fault.Fault) (uint64, error) {
			return p.Replay(a, batch)
		}
	})
}
