package syncerr_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/syncerr"
)

func TestSyncerr(t *testing.T) {
	analyzertest.Run(t, "testdata", syncerr.Analyzer, "a")
}
