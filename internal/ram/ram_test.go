package ram

import (
	"testing"
	"testing/quick"
)

func TestWOMBasic(t *testing.T) {
	m := NewWOM(16, 4)
	if m.Size() != 16 || m.Width() != 4 {
		t.Fatalf("geometry wrong: %d x %d", m.Size(), m.Width())
	}
	for a := 0; a < 16; a++ {
		if m.Read(a) != 0 {
			t.Fatalf("cell %d not zero-initialised", a)
		}
	}
	m.Write(3, 0xA)
	if m.Read(3) != 0xA {
		t.Errorf("readback = %x", m.Read(3))
	}
	// Writes are masked to the cell width.
	m.Write(4, 0x1F)
	if m.Read(4) != 0xF {
		t.Errorf("width mask not applied: %x", m.Read(4))
	}
}

func TestWOMPanicsOutOfRange(t *testing.T) {
	m := NewWOM(8, 4)
	for _, f := range []func(){
		func() { m.Read(8) },
		func() { m.Read(-1) },
		func() { m.Write(8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNewWOMValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewWOM(0, 4) },
		func() { NewWOM(-2, 4) },
		func() { NewWOM(4, 0) },
		func() { NewWOM(4, 33) },
		func() { NewBOM(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid geometry accepted")
				}
			}()
			f()
		}()
	}
}

func TestBOMBasic(t *testing.T) {
	b := NewBOM(130) // crosses a word boundary in the packed storage
	if b.Size() != 130 || b.Width() != 1 {
		t.Fatalf("geometry wrong")
	}
	for _, a := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		b.Write(a, 1)
		if b.Read(a) != 1 {
			t.Errorf("bit %d not set", a)
		}
		b.Write(a, 0)
		if b.Read(a) != 0 {
			t.Errorf("bit %d not cleared", a)
		}
		// Only the low bit of the data matters.
		b.Write(a, 2)
		if b.Read(a) != 0 {
			t.Errorf("bit %d took high data bits", a)
		}
	}
}

func TestBOMIndependence(t *testing.T) {
	b := NewBOM(256)
	b.Write(100, 1)
	for a := 0; a < 256; a++ {
		want := Word(0)
		if a == 100 {
			want = 1
		}
		if b.Read(a) != want {
			t.Fatalf("cell %d disturbed by write to 100", a)
		}
	}
}

func TestFillCheckerboardSnapshot(t *testing.T) {
	m := NewWOM(8, 4)
	Fill(m, 0xF)
	for a := 0; a < 8; a++ {
		if m.Read(a) != 0xF {
			t.Fatalf("Fill failed at %d", a)
		}
	}
	Checkerboard(m, 0x5)
	for a := 0; a < 8; a++ {
		want := Word(0x5)
		if a&1 == 1 {
			want = 0xA
		}
		if m.Read(a) != want {
			t.Fatalf("Checkerboard wrong at %d: %x", a, m.Read(a))
		}
	}
	snap := Snapshot(m)
	Fill(m, 0)
	Restore(m, snap)
	for a := 0; a < 8; a++ {
		if m.Read(a) != snap[a] {
			t.Fatalf("Restore failed at %d", a)
		}
	}
}

func TestEqual(t *testing.T) {
	a, b := NewWOM(4, 4), NewWOM(4, 4)
	if !Equal(a, b) {
		t.Error("fresh memories should be equal")
	}
	b.Write(2, 1)
	if Equal(a, b) {
		t.Error("differing contents reported equal")
	}
	if Equal(NewWOM(4, 4), NewWOM(5, 4)) || Equal(NewWOM(4, 4), NewWOM(4, 5)) {
		t.Error("differing geometry reported equal")
	}
}

func TestRestoreLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Restore with wrong length did not panic")
		}
	}()
	Restore(NewWOM(4, 4), make([]Word, 5))
}

func TestStats(t *testing.T) {
	s := NewStats(NewWOM(8, 4))
	s.Write(0, 3)
	s.Write(1, 4)
	_ = s.Read(0)
	if s.Reads != 1 || s.Writes != 2 || s.Ops() != 3 {
		t.Errorf("counters wrong: %+v", s)
	}
	if s.Size() != 8 || s.Width() != 4 {
		t.Errorf("delegation wrong")
	}
	s.Reset()
	if s.Ops() != 0 {
		t.Errorf("Reset failed")
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace(NewWOM(8, 4), 0)
	tr.Write(2, 7)
	if got := tr.Read(2); got != 7 {
		t.Fatalf("read = %d", got)
	}
	if len(tr.Accesses) != 2 {
		t.Fatalf("trace length = %d", len(tr.Accesses))
	}
	if tr.Accesses[0].String() != "w[2]=7" || tr.Accesses[1].String() != "r[2]=7" {
		t.Errorf("trace rendering: %v", tr.Accesses)
	}
	if tr.Size() != 8 || tr.Width() != 4 {
		t.Errorf("delegation wrong")
	}
}

func TestTraceLimit(t *testing.T) {
	tr := NewTrace(NewWOM(8, 4), 2)
	for i := 0; i < 5; i++ {
		tr.Write(0, Word(i))
	}
	if len(tr.Accesses) != 2 || tr.Dropped != 3 {
		t.Errorf("limit not enforced: %d kept, %d dropped", len(tr.Accesses), tr.Dropped)
	}
}

func TestQuickWOMLastWriteWins(t *testing.T) {
	m := NewWOM(64, 8)
	prop := func(addr uint8, v1, v2 Word) bool {
		a := int(addr) % 64
		m.Write(a, v1)
		m.Write(a, v2)
		return m.Read(a) == v2&0xFF
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBOMMatchesWOM1(t *testing.T) {
	// A BOM must behave exactly like a width-1 WOM under any op sequence.
	bom := NewBOM(128)
	wom := NewWOM(128, 1)
	prop := func(ops []uint16) bool {
		for _, op := range ops {
			a := int(op>>2) % 128
			switch op & 3 {
			case 0, 1:
				if bom.Read(a) != wom.Read(a) {
					return false
				}
			case 2:
				bom.Write(a, 0)
				wom.Write(a, 0)
			case 3:
				bom.Write(a, 1)
				wom.Write(a, 1)
			}
		}
		return Equal(bom, wom)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
