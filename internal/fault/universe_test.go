package fault

import (
	"testing"

	"repro/internal/ram"
)

func TestSingleCellUniverseSize(t *testing.T) {
	u := SingleCellUniverse(16, 4)
	if len(u) != 4*16*4 {
		t.Fatalf("size = %d, want 256", len(u))
	}
	// Class split: half SAF, half TF.
	saf, tf := 0, 0
	for _, f := range u {
		switch f.Class() {
		case ClassSAF:
			saf++
		case ClassTF:
			tf++
		default:
			t.Fatalf("unexpected class %v", f.Class())
		}
	}
	if saf != tf || saf != 128 {
		t.Errorf("split = %d SAF / %d TF", saf, tf)
	}
}

func TestStuckOpenRetentionDecoderUniverses(t *testing.T) {
	if got := len(StuckOpenUniverse(10)); got != 10 {
		t.Errorf("SOF universe = %d", got)
	}
	if got := len(RetentionUniverse(4, 4, 100)); got != 32 {
		t.Errorf("DRF universe = %d", got)
	}
	if got := len(DecoderUniverse(8)); got != 24 {
		t.Errorf("AF universe = %d", got)
	}
}

func TestDecoderUniverseNeedsTwoCells(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DecoderUniverse(1) did not panic")
		}
	}()
	DecoderUniverse(1)
}

func TestSamplePairsProperties(t *testing.T) {
	pairs := SamplePairs(32, 4, 50, 42)
	if len(pairs) != 50 {
		t.Fatalf("pair count = %d", len(pairs))
	}
	seen := map[CouplingPair]bool{}
	for _, p := range pairs {
		if p.AggCell == p.VicCell {
			t.Errorf("intra-cell pair sampled: %+v", p)
		}
		if p.AggCell < 0 || p.AggCell >= 32 || p.VicCell < 0 || p.VicCell >= 32 {
			t.Errorf("cell out of range: %+v", p)
		}
		if p.AggBit < 0 || p.AggBit >= 4 || p.VicBit < 0 || p.VicBit >= 4 {
			t.Errorf("bit out of range: %+v", p)
		}
		if seen[p] {
			t.Errorf("duplicate pair: %+v", p)
		}
		seen[p] = true
	}
}

func TestSamplePairsDeterministic(t *testing.T) {
	a := SamplePairs(32, 4, 20, 7)
	b := SamplePairs(32, 4, 20, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic for equal seeds")
		}
	}
	c := SamplePairs(32, 4, 20, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical samples")
	}
}

func TestAdjacentPairs(t *testing.T) {
	pairs := AdjacentPairs(4)
	if len(pairs) != 6 {
		t.Fatalf("adjacent pairs = %d, want 6", len(pairs))
	}
	// Both directions for (0,1).
	if pairs[0].AggCell != 0 || pairs[0].VicCell != 1 || pairs[1].AggCell != 1 || pairs[1].VicCell != 0 {
		t.Errorf("direction coverage wrong: %+v", pairs[:2])
	}
}

func TestCouplingUniverseExpansion(t *testing.T) {
	u := CouplingUniverse([]CouplingPair{{AggCell: 0, VicCell: 1}})
	if len(u) != 12 {
		t.Fatalf("expansion = %d faults per pair, want 12", len(u))
	}
	byClass := map[Class]int{}
	for _, f := range u {
		byClass[f.Class()]++
	}
	if byClass[ClassCFin] != 2 || byClass[ClassCFid] != 4 || byClass[ClassCFst] != 4 || byClass[ClassBF] != 2 {
		t.Errorf("class split wrong: %v", byClass)
	}
}

func TestIntraWordUniverse(t *testing.T) {
	u := IntraWordUniverse(2, 4)
	// Per cell: 4*3 ordered pairs * 6 faults = 72; two cells = 144.
	if len(u) != 144 {
		t.Fatalf("intra-word universe = %d, want 144", len(u))
	}
	for _, f := range u {
		if f.Class() != ClassIWCF {
			t.Fatalf("non-IWCF fault in intra-word universe: %v", f)
		}
	}
}

func TestIntraWordNeedsWidth2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntraWordUniverse with m=1 did not panic")
		}
	}()
	IntraWordUniverse(4, 1)
}

func TestStandardUniverse(t *testing.T) {
	u := StandardUniverse(16, 4, 10, 1)
	if u.Len() == 0 {
		t.Fatal("empty standard universe")
	}
	classes := u.ByClass()
	for _, c := range []Class{ClassSAF, ClassTF, ClassSOF, ClassAF, ClassCFin, ClassCFid, ClassCFst, ClassBF, ClassIWCF} {
		if len(classes[c]) == 0 {
			t.Errorf("standard universe missing class %v", c)
		}
	}
	// All faults must be injectable into a suitable memory without
	// panicking and the wrapper must keep geometry.
	for _, f := range u.Faults[:50] {
		m := f.Inject(ram.NewWOM(16, 4))
		if m.Size() != 16 || m.Width() != 4 {
			t.Fatalf("injected wrapper changed geometry for %v", f)
		}
	}
}

func TestBOMStandardUniverseSkipsIntraWord(t *testing.T) {
	u := StandardUniverse(16, 1, 0, 1)
	if len(u.ByClass()[ClassIWCF]) != 0 {
		t.Error("BOM universe should have no intra-word faults")
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	r := newRNG(0) // zero seed must still work
	for i := 0; i < 1000; i++ {
		v := r.intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("intn(0) did not panic")
		}
	}()
	r.intn(0)
}

func TestEveryFaultIsDetectableBySomeSequence(t *testing.T) {
	// Sanity: each fault in a small universe must change observable
	// behaviour under SOME access sequence (write 0s, write 1s, read
	// back with interleaving).  This guards against injectors that are
	// accidentally transparent.
	n, m := 8, 2
	u := StandardUniverse(n, m, 4, 3)
	for _, f := range u.Faults {
		if f.Class() == ClassDRF {
			continue // needs idle time, exercised separately
		}
		if !observable(f, n, m) {
			t.Errorf("fault %v is not observable by the probe sequence", f)
		}
	}
}

// observable runs faulty and golden memories in lockstep through a
// probing sequence over several data backgrounds (uniform and
// checkerboard — coupling faults such as CFid<up;0> require the victim
// to hold the complement of the aggressor) and reports whether any
// read diverged.
func observable(f Fault, n, m int) bool {
	faulty := f.Inject(ram.NewWOM(n, m))
	golden := ram.NewWOM(n, m)
	mask := ram.Word(1)<<uint(m) - 1
	divergence := false

	write := func(a int, v ram.Word) {
		faulty.Write(a, v)
		golden.Write(a, v)
	}
	read := func(a int) {
		if faulty.Read(a) != golden.Read(a) {
			divergence = true
		}
	}
	// Background value for address a: uniform or checkerboard.
	backgrounds := []func(a int) ram.Word{
		func(int) ram.Word { return 0 },
		func(int) ram.Word { return mask },
		func(a int) ram.Word {
			if a&1 == 0 {
				return 0
			}
			return mask
		},
		func(a int) ram.Word {
			if a&1 == 0 {
				return mask
			}
			return 0
		},
		func(a int) ram.Word { return 0x5 & mask },
		func(a int) ram.Word { return 0xA & mask },
	}
	for _, bg := range backgrounds {
		for a := 0; a < n; a++ {
			write(a, bg(a))
		}
		for a := 0; a < n; a++ {
			read(a)
		}
		// Ascending read-invert-read.
		for a := 0; a < n; a++ {
			read(a)
			write(a, ^bg(a)&mask)
			read(a)
		}
		// Descending read-restore-read.
		for a := n - 1; a >= 0; a-- {
			read(a)
			write(a, bg(a))
			read(a)
		}
	}
	return divergence
}
