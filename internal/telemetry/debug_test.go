package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestMetricsHandler: the /metrics document is a flat JSON object
// carrying the snapshot.
func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Flush(r.Worker(0), &Local{Faults: 12, Reps: 11})
	r.CacheLookup(true)

	rec := httptest.NewRecorder()
	MetricsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var m map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics document: %v", err)
	}
	if m["faults_presented"] != 12 || m["faults_simulated"] != 11 || m["program_cache_hits"] != 1 {
		t.Errorf("metrics: %v", m)
	}
}

// TestServeDebug: the opt-in endpoint binds, serves /metrics, and
// routes the pprof index.
func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Flush(r.Worker(0), &Local{Faults: 3})
	addr, err := ServeDebug("127.0.0.1:0", r)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if m["faults_presented"] != 3 {
		t.Errorf("metrics over HTTP: %v", m)
	}
	pp, err := http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status %d", pp.StatusCode)
	}
}
