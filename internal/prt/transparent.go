package prt

import (
	"fmt"

	"repro/internal/ram"
)

// Transparent (in-field, content-preserving) self-test: periodic PRT
// of a memory that is live in a system.  The walk destroys the array
// contents, so the transparent runner snapshots the payload first,
// runs the scheme, restores the payload, and then re-verifies the
// restoration through the memory's own read path — a failed restore
// (e.g. a stuck cell corrupting the written-back payload) is itself a
// detection.
//
// This is the pragmatic reading of periodic self-test for the paper's
// technique; true signature-transparent BIST (deriving the TDB from
// the existing contents) is incompatible with the π-test's
// requirement of a predictable seed, which is why the snapshot
// approach is used.

// TransparentResult reports a content-preserving scheme run.
type TransparentResult struct {
	// SchemeResult is the embedded test outcome.
	SchemeResult
	// RestoreErrors counts cells whose read-back after restoration
	// differed from the saved payload (counts towards Detected).
	RestoreErrors int
}

// TransparentRun executes the scheme on mem while preserving its
// contents.  The payload is held in host memory during the test
// (mirroring the on-chip row buffer or external staging a real
// implementation would use).
func TransparentRun(s Scheme, mem ram.Memory) (TransparentResult, error) {
	var out TransparentResult
	payload := ram.Snapshot(mem)

	res, err := s.Run(mem)
	if err != nil {
		return out, fmt.Errorf("prt: transparent run: %w", err)
	}
	out.SchemeResult = res

	// Restore and re-verify through the device under test.
	ram.Restore(mem, payload)
	mask := ram.Word(1)<<uint(mem.Width()) - 1
	for a, want := range payload {
		if mem.Read(a) != want&mask {
			out.RestoreErrors++
		}
	}
	if out.RestoreErrors > 0 {
		out.Detected = true
	}
	return out, nil
}
