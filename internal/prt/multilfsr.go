package prt

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/ram"
)

// Multi-LFSR PRT for the "QuadPort DSE family" (§4 of the paper): with
// four independent ports, two virtual automatons sweep the two halves
// of the array concurrently — each half runs the Fig. 2 two-cycle
// pipeline on its own port pair, halving the iteration again to ≈n
// cycles (vs 2n dual-port, 3n single-port).

// MultiLFSRResult reports a quad-port double-automaton iteration.
type MultiLFSRResult struct {
	// FinLow/FinHigh are the observed final windows of the two halves.
	FinLow, FinHigh []gf.Elem
	// StarLow/StarHigh are the predictions.
	StarLow, StarHigh []gf.Elem
	// Detected is true when either signature fails.
	Detected bool
	// Cycles is the number of memory cycles consumed (≈ n).
	Cycles uint64
}

// RunQuadPort executes one π-test iteration with two automatons on a
// memory with at least four ports.  Both automatons use cfg's
// generator; the low half keeps cfg's seed, the high half uses the
// complement-rotated seed so the two halves carry distinct TDBs.
// cfg's trajectory is applied per half (ascending/descending within
// the half).
func RunQuadPort(cfg Config, mp *ram.MultiPort) (MultiLFSRResult, error) {
	var res MultiLFSRResult
	if mp.Ports() < 4 {
		return res, fmt.Errorf("prt: quad-port scheme needs >= 4 ports, have %d", mp.Ports())
	}
	if cfg.Gen.K() != 2 {
		return res, fmt.Errorf("prt: quad-port scheme requires k=2, got %d", cfg.Gen.K())
	}
	if err := cfg.Validate(mp.Size(), mp.Width()); err != nil {
		return res, err
	}
	n := mp.Size()
	half := n / 2
	if half < 3 {
		return res, fmt.Errorf("prt: memory too small to split (%d cells)", n)
	}
	f := cfg.Gen.Field
	taps := cfg.Gen.Taps()

	// Address plans for the two halves.
	lowCfg := cfg
	highCfg := cfg
	highSeed := make([]gf.Elem, len(cfg.Seed))
	for i, v := range cfg.Seed {
		highSeed[len(highSeed)-1-i] = v ^ f.Mask()
	}
	highCfg.Seed = highSeed
	lowAddr := lowCfg.Addresses(half)
	highAddr := make([]int, n-half)
	for i := range highAddr {
		highAddr[i] = half + i
	}
	if cfg.Trajectory == Descending {
		for i, j := 0, len(highAddr)-1; i < j; i, j = i+1, j-1 {
			highAddr[i], highAddr[j] = highAddr[j], highAddr[i]
		}
	}

	start := mp.Cycles
	idle := func() []ram.PortOp {
		ops := make([]ram.PortOp, mp.Ports())
		for i := range ops {
			ops[i] = ram.Idle()
		}
		return ops
	}

	// Seed both halves in one cycle (4 writes on 4 ports).
	ops := idle()
	ops[0] = ram.WriteOp(lowAddr[0], ram.Word(lowCfg.Seed[0]))
	ops[1] = ram.WriteOp(lowAddr[1], ram.Word(lowCfg.Seed[1]))
	ops[2] = ram.WriteOp(highAddr[0], ram.Word(highCfg.Seed[0]))
	ops[3] = ram.WriteOp(highAddr[1], ram.Word(highCfg.Seed[1]))
	mp.Cycle(ops)

	// Pipelined walk: each 2-cycle step advances BOTH automatons.
	stepsLow := len(lowAddr)
	stepsHigh := len(highAddr)
	maxSteps := stepsLow
	if stepsHigh > maxSteps {
		maxSteps = stepsHigh
	}
	nextVal := func(vals []ram.Word, off gf.Elem) gf.Elem {
		v := off
		v = f.Add(v, f.Mul(taps[0], gf.Elem(vals[1])))
		v = f.Add(v, f.Mul(taps[1], gf.Elem(vals[0])))
		return v
	}
	for i := 2; i < maxSteps; i++ {
		// Cycle 1: simultaneous operand reads for both halves.
		ops = idle()
		if i < stepsLow {
			ops[0] = ram.ReadOp(lowAddr[i-2])
			ops[1] = ram.ReadOp(lowAddr[i-1])
		}
		if i < stepsHigh {
			ops[2] = ram.ReadOp(highAddr[i-2])
			ops[3] = ram.ReadOp(highAddr[i-1])
		}
		vals := mp.Cycle(ops)
		// Cycle 2: both writes.
		ops = idle()
		if i < stepsLow {
			ops[0] = ram.WriteOp(lowAddr[i], ram.Word(nextVal(vals[0:2], cfg.Offset)))
		}
		if i < stepsHigh {
			ops[2] = ram.WriteOp(highAddr[i], ram.Word(nextVal(vals[2:4], cfg.Offset)))
		}
		mp.Cycle(ops)
	}

	// Observe both Fins in one final cycle.
	ops = idle()
	ops[0] = ram.ReadOp(lowAddr[stepsLow-2])
	ops[1] = ram.ReadOp(lowAddr[stepsLow-1])
	ops[2] = ram.ReadOp(highAddr[stepsHigh-2])
	ops[3] = ram.ReadOp(highAddr[stepsHigh-1])
	vals := mp.Cycle(ops)
	res.FinLow = []gf.Elem{gf.Elem(vals[0]), gf.Elem(vals[1])}
	res.FinHigh = []gf.Elem{gf.Elem(vals[2]), gf.Elem(vals[3])}

	var err error
	res.StarLow, err = lfsr.AffineJumpAhead(cfg.Gen, cfg.Offset, lowCfg.Seed, uint64(stepsLow-2))
	if err != nil {
		return res, err
	}
	res.StarHigh, err = lfsr.AffineJumpAhead(cfg.Gen, cfg.Offset, highCfg.Seed, uint64(stepsHigh-2))
	if err != nil {
		return res, err
	}
	res.Detected = !elemsEqual(res.FinLow, res.StarLow) || !elemsEqual(res.FinHigh, res.StarHigh)
	res.Cycles = mp.Cycles - start
	return res, nil
}

// QuadPortScheme3 runs the 3-iteration standard scheme through the
// quad-port double-automaton executor.
func QuadPortScheme3(g lfsr.GenPoly, mp *ram.MultiPort) (detected bool, cycles uint64, err error) {
	s := StandardScheme3(g)
	resolved := make([]Config, len(s.Iters))
	for i, cfg := range s.Iters {
		if t := cfg.mirrorTarget(); t >= 0 {
			m, err := MirrorConfig(resolved[t], mp.Size()/2)
			if err != nil {
				return detected, cycles, err
			}
			cfg = m
		}
		cfg.Verify = false
		cfg.CaptureStale = false
		resolved[i] = cfg
		r, err := RunQuadPort(cfg, mp)
		if err != nil {
			return detected, cycles, fmt.Errorf("prt: quad-port iteration %d: %w", i+1, err)
		}
		cycles += r.Cycles
		if r.Detected {
			detected = true
		}
	}
	return detected, cycles, nil
}
