package prt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/ram"
)

func runCoverage(t *testing.T, s Scheme, faults []fault.Fault, mk func() ram.Memory) map[fault.Class][2]int {
	t.Helper()
	byClass := map[fault.Class][2]int{}
	for _, f := range faults {
		mem := f.Inject(mk())
		r, err := s.Run(mem)
		if err != nil {
			t.Fatalf("scheme failed on %v: %v", f, err)
		}
		c := byClass[f.Class()]
		c[1]++
		if r.Detected {
			c[0]++
		}
		byClass[f.Class()] = c
	}
	return byClass
}

func assertFull(t *testing.T, cov map[fault.Class][2]int, classes ...fault.Class) {
	t.Helper()
	for _, cl := range classes {
		c := cov[cl]
		if c[0] != c[1] {
			t.Errorf("%v coverage %d/%d, want 100%%", cl, c[0], c[1])
		}
	}
}

func ratio(c [2]int) float64 { return float64(c[0]) / float64(c[1]) }

// TestSchemeCleanMemoryNoFalsePositives: every scheme variant must pass
// on a fault-free memory of assorted sizes.
func TestSchemeCleanMemoryNoFalsePositives(t *testing.T) {
	for _, n := range []int{8, 33, 64, 257} {
		for _, s := range []Scheme{
			PaperBOMScheme3(), StandardScheme4(PaperBOMConfig().Gen),
			ExtendedScheme(PaperBOMConfig().Gen, 2),
			PaperBOMScheme3().SignatureOnly(),
		} {
			mem := ram.NewBOM(n)
			r, err := s.Run(mem)
			if err != nil {
				t.Fatalf("%s on n=%d: %v", s.Name, n, err)
			}
			if r.Detected {
				t.Errorf("%s false positive on clean BOM n=%d (it %d)", s.Name, n, r.DetectedAt)
			}
		}
		for _, s := range []Scheme{
			PaperWOMScheme3(), StandardScheme4(PaperWOMConfig().Gen),
			ExtendedScheme(PaperWOMConfig().Gen, 3),
		} {
			mem := ram.NewWOM(n, 4)
			r, err := s.Run(mem)
			if err != nil {
				t.Fatalf("%s on n=%d: %v", s.Name, n, err)
			}
			if r.Detected {
				t.Errorf("%s false positive on clean WOM n=%d (it %d)", s.Name, n, r.DetectedAt)
			}
		}
	}
}

// TestPaperClaimSingleCellCoverage reproduces the §3 claim for
// single-cell faults: all SAF are detected by 2 iterations and all TF
// by 3 (bit- and word-oriented alike).
func TestPaperClaimSingleCellCoverage(t *testing.T) {
	n := 64
	bomGen := PaperBOMConfig().Gen

	covB2 := runCoverage(t, StandardScheme4(bomGen).Truncate(2),
		fault.SingleCellUniverse(n, 1), func() ram.Memory { return ram.NewBOM(n) })
	assertFull(t, covB2, fault.ClassSAF)

	covB3 := runCoverage(t, PaperBOMScheme3(),
		fault.SingleCellUniverse(n, 1), func() ram.Memory { return ram.NewBOM(n) })
	assertFull(t, covB3, fault.ClassSAF, fault.ClassTF)

	covW3 := runCoverage(t, PaperWOMScheme3(),
		fault.SingleCellUniverse(n, 4), func() ram.Memory { return ram.NewWOM(n, 4) })
	assertFull(t, covW3, fault.ClassSAF, fault.ClassTF)
}

// TestPRT3FullClassCoverage pins the classes that PRT-3 covers
// completely on the standard universe: SAF, TF, AF, CFin and BF.
func TestPRT3FullClassCoverage(t *testing.T) {
	n := 48
	uni := fault.StandardUniverse(n, 4, 10, 5)
	cov := runCoverage(t, PaperWOMScheme3(), uni.Faults,
		func() ram.Memory { return ram.NewWOM(n, 4) })
	assertFull(t, cov, fault.ClassSAF, fault.ClassTF, fault.ClassAF,
		fault.ClassCFin, fault.ClassBF)
	// SOF is covered for word-oriented arrays at 3 iterations.
	assertFull(t, cov, fault.ClassSOF)
}

// TestCoverageMonotoneInIterations reproduces the shape of the §3
// claim: detection is monotone in the iteration count and the bulk of
// the universe needs at least 3 iterations (1 iteration is far from
// sufficient).
func TestCoverageMonotoneInIterations(t *testing.T) {
	n := 48
	uni := fault.StandardUniverse(n, 4, 10, 5)
	g := PaperWOMConfig().Gen
	var prev float64
	var at1, at3 float64
	for it := 1; it <= 4; it++ {
		cov := runCoverage(t, StandardScheme4(g).Truncate(it), uni.Faults,
			func() ram.Memory { return ram.NewWOM(n, 4) })
		det, tot := 0, 0
		for _, c := range cov {
			det += c[0]
			tot += c[1]
		}
		r := float64(det) / float64(tot)
		if r < prev {
			t.Errorf("coverage not monotone: %.3f after %.3f at it=%d", r, prev, it)
		}
		prev = r
		if it == 1 {
			at1 = r
		}
		if it == 3 {
			at3 = r
		}
	}
	if at1 > 0.5 {
		t.Errorf("one iteration already covers %.1f%% — expected far less", 100*at1)
	}
	if at3 < 0.7 {
		t.Errorf("three iterations cover only %.1f%%", 100*at3)
	}
}

// TestExtendedSchemeReaches100OnBOM: two phase blocks (8 iterations)
// detect the complete standard universe of a bit-oriented memory.
func TestExtendedSchemeReaches100OnBOM(t *testing.T) {
	n := 64
	uni := fault.StandardUniverse(n, 1, 20, 5)
	cov := runCoverage(t, ExtendedScheme(PaperBOMConfig().Gen, 2), uni.Faults,
		func() ram.Memory { return ram.NewBOM(n) })
	for cl, c := range cov {
		if c[0] != c[1] {
			t.Errorf("%v: %d/%d at 2 blocks", cl, c[0], c[1])
		}
	}
}

// TestExtendedSchemeWOMInterWord: four blocks cover every inter-word
// class of the word-oriented universe completely.
func TestExtendedSchemeWOMInterWord(t *testing.T) {
	if testing.Short() {
		t.Skip("long campaign")
	}
	n := 48
	uni := fault.StandardUniverse(n, 4, 10, 5)
	cov := runCoverage(t, ExtendedScheme(PaperWOMConfig().Gen, 4), uni.Faults,
		func() ram.Memory { return ram.NewWOM(n, 4) })
	assertFull(t, cov, fault.ClassSAF, fault.ClassTF, fault.ClassSOF,
		fault.ClassAF, fault.ClassCFin, fault.ClassCFid, fault.ClassCFst,
		fault.ClassBF)
	// Intra-word faults are the remaining gap (handled by the
	// bit-sliced random-lane scheme, see E9).
	if ratio(cov[fault.ClassIWCF]) < 0.9 {
		t.Errorf("IWCF coverage %.2f below 0.9", ratio(cov[fault.ClassIWCF]))
	}
}

// TestSignatureOnlyWeaker: the ablation — removing read-back and stale
// capture strictly reduces coverage of coupling faults.
func TestSignatureOnlyWeaker(t *testing.T) {
	n := 48
	pairs := fault.AdjacentPairs(n)
	uni := fault.CouplingUniverse(pairs)
	full := runCoverage(t, PaperWOMScheme3(), uni,
		func() ram.Memory { return ram.NewWOM(n, 4) })
	sig := runCoverage(t, PaperWOMScheme3().SignatureOnly(), uni,
		func() ram.Memory { return ram.NewWOM(n, 4) })
	fullDet, sigDet := 0, 0
	for cl := range full {
		fullDet += full[cl][0]
		sigDet += sig[cl][0]
	}
	if sigDet >= fullDet {
		t.Errorf("signature-only (%d) should detect fewer than full (%d)", sigDet, fullDet)
	}
}

func TestSchemeOpsPerCell(t *testing.T) {
	// PRT-3 with k=2: 3 iterations × (2 reads + 1 write + 1 capture +
	// 1 verify) = 15 ops per cell.
	if got := PaperWOMScheme3().OpsPerCell(); got != 15 {
		t.Errorf("PRT-3 ops/cell = %d, want 15", got)
	}
	if got := PaperWOMScheme3().SignatureOnly().OpsPerCell(); got != 9 {
		t.Errorf("PRT-3/sig ops/cell = %d, want 9 (the paper's 3n per iteration)", got)
	}
}

func TestSchemeTruncate(t *testing.T) {
	s := StandardScheme4(PaperWOMConfig().Gen)
	if len(s.Truncate(2).Iters) != 2 {
		t.Error("Truncate(2) wrong")
	}
	if len(s.Truncate(10).Iters) != 4 {
		t.Error("Truncate beyond length should clamp")
	}
}

func TestSchemeDetectedAt(t *testing.T) {
	n := 48
	f := fault.SAF{Cell: 10, Bit: 0, Value: 1}
	mem := f.Inject(ram.NewWOM(n, 4))
	r := PaperWOMScheme3().MustRun(mem)
	if !r.Detected || r.DetectedAt < 1 || r.DetectedAt > 3 {
		t.Errorf("DetectedAt = %d", r.DetectedAt)
	}
	if r.Ops == 0 || len(r.PerIteration) != 3 {
		t.Errorf("result bookkeeping wrong: %+v", r)
	}
}

func TestMirrorBadIndex(t *testing.T) {
	s := Scheme{Name: "bad", Iters: []Config{Mirrored(0, true)}}
	if _, err := s.Run(ram.NewWOM(16, 4)); err == nil {
		t.Error("self/forward mirror accepted")
	}
}

func TestMustRunPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustRun did not panic")
		}
	}()
	Scheme{Name: "bad", Iters: []Config{{}}}.MustRun(ram.NewWOM(16, 4))
}

// TestMirrorConfigTDBIdentical: the mirror writes exactly the same
// value to every address as the source iteration, in reverse order.
func TestMirrorConfigTDBIdentical(t *testing.T) {
	n := 40
	for _, src := range []Config{
		PaperWOMConfig(),
		{Gen: PaperWOMConfig().Gen, Seed: []gf.Elem{1, 0xE}, Offset: 0xF, Trajectory: Descending},
		{Gen: PaperWOMConfig().Gen, Seed: []gf.Elem{5, 9}, Trajectory: Random, PermSeed: 11},
	} {
		mir, err := MirrorConfig(src, n)
		if err != nil {
			t.Fatal(err)
		}
		a := ram.NewWOM(n, 4)
		b := ram.NewWOM(n, 4)
		MustRunIteration(src, a)
		res := MustRunIteration(mir, b)
		if res.Detected {
			t.Errorf("mirror iteration detected on clean memory")
		}
		if !ram.Equal(a, b) {
			t.Errorf("mirror TDB differs from source TDB")
		}
		// And the orders are exact reverses.
		sa := src.Addresses(n)
		ma := mir.Addresses(n)
		for i := range sa {
			if sa[i] != ma[n-1-i] {
				t.Fatalf("mirror trajectory is not the reverse")
			}
		}
	}
}

func TestMirrorConfigErrors(t *testing.T) {
	if _, err := MirrorConfig(Config{MirrorOf: 1}, 16); err == nil {
		t.Error("mirroring a placeholder accepted")
	}
	ring := PaperWOMConfig()
	ring.Ring = true
	if _, err := MirrorConfig(ring, 16); err == nil {
		t.Error("mirroring a ring iteration accepted")
	}
	if _, err := MirrorConfig(Config{}, 16); err == nil {
		t.Error("mirroring an invalid config accepted")
	}
}

func TestMirrorConfigGF2(t *testing.T) {
	n := 32
	src := PaperBOMConfig()
	mir, err := MirrorConfig(src, n)
	if err != nil {
		t.Fatal(err)
	}
	a := ram.NewBOM(n)
	b := ram.NewBOM(n)
	MustRunIteration(src, a)
	MustRunIteration(mir, b)
	if !ram.Equal(a, b) {
		t.Errorf("GF(2) mirror TDB differs")
	}
}
