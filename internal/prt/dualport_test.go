package prt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/ram"
)

// TestFig2DualPortCycles pins the paper's §4 complexity claim: the
// two-term dual-port scheme finishes a π-iteration in 2n cycles
// (2(n-2)+2 exactly), versus 3n single-port operations.
func TestFig2DualPortCycles(t *testing.T) {
	for _, n := range []int{16, 64, 256} {
		dp := ram.NewDualPort(n, 4)
		res, err := RunDualPort(PaperWOMConfig(), dp)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Errorf("n=%d: fault-free detection", n)
		}
		want := uint64(2*(n-2) + 2)
		if res.Cycles != want {
			t.Errorf("n=%d: cycles = %d, want %d (≈2n)", n, res.Cycles, want)
		}
	}
}

// TestDualPortSameTDB: the dual-port walk leaves the same memory image
// as the single-port iteration.
func TestDualPortSameTDB(t *testing.T) {
	n := 64
	dp := ram.NewDualPort(n, 4)
	if _, err := RunDualPort(PaperWOMConfig(), dp); err != nil {
		t.Fatal(err)
	}
	sp := ram.NewWOM(n, 4)
	MustRunIteration(PaperWOMConfig(), sp)
	if !ram.Equal(dp.Backing(), sp) {
		t.Error("dual-port TDB differs from single-port TDB")
	}
}

// TestDualPortWorksOnQuadPort: the Fig. 2 scheme runs unchanged on a
// memory with more than two ports (the "QuadPort DSE family").
func TestDualPortWorksOnQuadPort(t *testing.T) {
	qp := ram.NewQuadPort(32, 4)
	res, err := RunDualPort(PaperWOMConfig(), qp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("fault-free detection on quad port")
	}
}

// TestDualPortDetectsInjectedFaults: faults injected into the backing
// array are caught by the dual-port 3-iteration scheme exactly like in
// the single-port case.
func TestDualPortDetectsInjectedFaults(t *testing.T) {
	n := 32
	g := PaperWOMConfig().Gen
	for _, f := range []fault.Fault{
		fault.SAF{Cell: 7, Bit: 0, Value: 1},
		fault.SAF{Cell: 0, Bit: 3, Value: 0},
		fault.TF{Cell: 12, Bit: 1, Up: true},
		fault.TF{Cell: 30, Bit: 2, Up: false},
		// Note: AFalias and AFmulti escape the pure-signature dual-port
		// pipeline — their misrouted writes stay consistent with the
		// walk's own reads, so no automaton value is ever wrong.  The
		// single-port verify/capture passes catch them (see E4);
		// AFnone below is signature-visible because its reads float.
		fault.AF{Kind: fault.AFNone, Addr: 4},
	} {
		faulty := ram.NewMultiPortOn(f.Inject(ram.NewWOM(n, 4)), 2)
		det, _, err := DualPortScheme3(g, faulty)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("dual-port scheme missed %v", f)
		}
	}
	// Clean run must pass.
	clean := ram.NewDualPort(n, 4)
	det, cycles, err := DualPortScheme3(g, clean)
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("clean dual-port scheme detected")
	}
	wantCycles := 3 * uint64(2*(n-2)+2)
	if cycles != wantCycles {
		t.Errorf("scheme cycles = %d, want %d", cycles, wantCycles)
	}
}

func TestDualPortErrors(t *testing.T) {
	dp := ram.NewDualPort(16, 4)
	// Width mismatch: a GF(2) generator on a 4-bit memory.
	bad := PaperBOMConfig()
	if _, err := RunDualPort(bad, dp); err == nil {
		t.Error("width mismatch accepted")
	}
	// k != 2 is rejected (Fig. 2 is the two-term scheme).
	f4 := gf.NewField(4)
	g3 := lfsr.MustGenPoly(f4, []gf.Elem{1, 2, 0, 1})
	bad3 := Config{Gen: g3, Seed: []gf.Elem{1, 0, 1}}
	if _, err := RunDualPort(bad3, dp); err == nil {
		t.Error("k=3 accepted by the Fig.2 scheme")
	}
	// Single-port memory is rejected.
	sp := ram.NewMultiPort(16, 4, 1)
	if _, err := RunDualPort(PaperWOMConfig(), sp); err == nil {
		t.Error("single-port memory accepted")
	}
}
