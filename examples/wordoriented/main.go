// Wordoriented walks through the paper's Figure 1b example in detail:
// the virtual automaton g(x) = 1 + 2x + 2x² over GF(2⁴) with
// p(z) = 1 + z + z⁴ generates the test data background 0,1,2,6,8,F,…
// through the memory's own cells, closes the pseudo-ring at period
// 255, and predicts Fin* analytically.
package main

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/prt"
	"repro/internal/ram"
)

func main() {
	cfg := prt.PaperWOMConfig()
	f := cfg.Gen.Field
	fmt.Printf("field: %v\n", f)
	fmt.Printf("g(x):  %v  (k = %d stages)\n", cfg.Gen, cfg.Gen.K())

	// The virtual automaton on its own.
	w := lfsr.MustWord(cfg.Gen, cfg.Seed)
	fmt.Print("LFSR sequence: ")
	for _, v := range w.Sequence(16) {
		fmt.Printf("%s ", f.FormatElem(v))
	}
	fmt.Printf("...\nperiod: %d (maximal: 16² - 1)\n\n", w.Period(0))

	// The same automaton emulated by the memory array: n = 257 so the
	// walk takes exactly 255 steps and the ring closes (Fin == Init).
	mem := ram.NewWOM(257, 4)
	res := prt.MustRunIteration(cfg, mem)
	fmt.Printf("memory TDB:    ")
	for i := 0; i < 16; i++ {
		fmt.Printf("%s ", f.FormatElem(gf.Elem(mem.Read(i))))
	}
	fmt.Println("...")
	fmt.Printf("Init = %s, Fin = %s, Fin* = %s\n",
		prt.FormatState(f, cfg.Seed), prt.FormatState(f, res.Fin), prt.FormatState(f, res.FinStar))
	fmt.Printf("ring closed: %v  ((n-k) mod period = %d)\n", res.RingClosed, (257-2)%255)
	fmt.Printf("operations: %d  (≈3n, the paper's O(3n))\n\n", res.Ops)

	// Fin* can be predicted without simulation via companion-matrix
	// jump-ahead — this is how the BIST knows the expected signature.
	finStar, err := lfsr.JumpAhead(cfg.Gen, cfg.Seed, 255)
	if err != nil {
		panic(err)
	}
	fmt.Printf("jump-ahead Fin* over 255 steps: %s\n", prt.FormatState(f, finStar))

	// Wrap-around ring mode: the automaton re-enters the seed cells, so
	// closure needs n ≡ 0 (mod 255) exactly.
	ringCfg := cfg
	ringCfg.Ring = true
	ringMem := ram.NewWOM(255, 4)
	ringRes := prt.MustRunIteration(ringCfg, ringMem)
	fmt.Printf("ring mode (n=255): closed=%v detected=%v\n", ringRes.RingClosed, ringRes.Detected)
}
