package coverage

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// This file is the streaming session executor: a Plan whose Stream
// field is set runs its stages over a fault.Source pulled in bounded
// chunks (sim.ShardsStream / sim.ShardsCompiledStream / a chunked
// oracle), so session memory is O(Chunk × Workers) fault instances
// plus one bit per universe fault — the universe size stops being a
// memory bound.  Cross-test fault dropping is held as the cumulative
// detection bitmap: a later stage skips every fault some earlier stage
// already caught, exactly as the materialized executor's BitView path,
// and the streaming property tests assert byte-identical Results
// between the two executors for every universe family, engine and
// chunk size.
//
// Everything else — stage preparation, the program cache, ordering,
// engine fallbacks — is shared with the materialized executor.  The
// replay engines additionally require every streamed fault to support
// batch injection (all built-in fault models do); the per-fault oracle
// path has no such constraint.

// defaultChunk is the chunk size streaming sessions use when
// Plan.Chunk <= 0 (the faultcov -chunk flag); its own zero value
// defers to sim.DefaultChunk.
var defaultChunk atomic.Int32

// SetDefaultChunk fixes the faults-per-pull of streaming sessions
// invoked with Chunk <= 0 (n <= 0 restores sim.DefaultChunk).
func SetDefaultChunk(n int) { defaultChunk.Store(int32(n)) }

// DefaultChunk returns the effective default chunk size.
func DefaultChunk() int {
	if n := int(defaultChunk.Load()); n > 0 {
		return n
	}
	return sim.DefaultChunk
}

// CampaignStream runs a single-runner campaign over a streaming
// universe on the default engine — the bounded-memory analogue of
// Campaign.  chunk <= 0 selects the package default.  One divergence
// from Campaign: the replay engines require every streamed fault to
// support batch injection (all built-in fault models do) and fail
// loudly otherwise — a streaming session cannot probe the whole
// universe up front the way the materialized executor does before
// falling back to the oracle.  Universes of custom non-batchable
// faults must select EngineOracle explicitly.
func CampaignStream(r Runner, s *fault.Stream, mk MemoryFactory, workers, chunk int) Result {
	p := Plan{
		Runners: []Runner{r}, Stream: s, Chunk: chunk,
		Memory: mk, Workers: workers, Engine: DefaultEngine(),
		Cache: SharedProgramCache(),
	}
	return p.Run().Results[0]
}

// CompareStream is Compare over a streaming universe: one session,
// shared program cache, dropping per the process default.
func CompareStream(runners []Runner, s *fault.Stream, mk MemoryFactory, workers, chunk int) []Result {
	p := Plan{
		Runners: runners, Stream: s, Chunk: chunk,
		Memory: mk, Workers: workers, Engine: DefaultEngine(),
		Drop: DefaultDrop(), Cache: SharedProgramCache(),
	}
	return p.Run().Results
}

// runStream executes a streaming session.
func (p *Plan) runStream() *Session {
	workers := p.Workers
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	chunk := p.Chunk
	if chunk <= 0 {
		chunk = DefaultChunk()
	}
	src := p.Stream.Source
	count, exactCount := src.Count() // capacity hint; bitmaps grow if it is low

	// Stage preparation and ordering are shared with the materialized
	// executor.  Streamed faults are assumed batch-injectable (checked
	// per batch by the replay drivers, which fail loudly otherwise).
	stages := make([]*stage, len(p.Runners))
	for i, r := range p.Runners {
		stages[i] = p.prepareStage(r, i, true)
	}
	order := p.executionOrder(stages)

	s := &Session{Results: make([]Result, len(p.Runners))}
	if p.KeepVectors {
		s.Vectors = make([][]Verdict, len(p.Runners))
	}
	cum := fault.NewBitSet(count)
	cumDetected := 0
	classTotal := make(map[fault.Class]int)
	classDet := make(map[fault.Class]int)
	arenas := &sim.ArenaPool{}
	reg := telemetry.Active()
	universeN := -1 // presented count of the first executed stage = |universe|
	for _, st := range order {
		// The survivor filter for this stage is the cumulative detection
		// bitmap so far, snapshotted: the sink below keeps updating cum
		// while workers read the snapshot.
		var stageDrop *fault.BitSet
		if p.Drop && cumDetected > 0 {
			stageDrop = cum.Clone()
		}
		res := Result{
			Runner:        st.runner.Name(),
			Universe:      p.Stream.Name,
			ByClass:       make(map[fault.Class]ClassStat),
			OpsCleanRun:   st.cleanOps,
			FalsePositive: st.falsePositive,
		}
		var vec []Verdict
		if s.Vectors != nil {
			vec = make([]Verdict, count)
			if stageDrop != nil {
				for i := range vec {
					vec[i] = VerdictDropped
				}
			}
		}
		tallyUniverse := universeN < 0
		vecFill := VerdictUndetected
		if stageDrop != nil {
			vecFill = VerdictDropped // what undelivered positions mean this stage
		}
		sink := func(idx []int, faults []fault.Fault, det []bool) {
			for i, f := range faults {
				c := f.Class()
				cs := res.ByClass[c]
				cs.Total++
				res.Total++
				u := idx[i]
				for vec != nil && u >= len(vec) { // inexact Count undershot
					vec = append(vec, vecFill)
				}
				if det[i] {
					cs.Detected++
					res.Detected++
					if !cum.Get(u) {
						cum.Set(u)
						cumDetected++
						classDet[c]++
					}
					if vec != nil {
						vec[u] = VerdictDetected
					}
				} else if vec != nil {
					vec[u] = VerdictUndetected
				}
				res.ByClass[c] = cs
				if tallyUniverse {
					classTotal[c]++
				}
			}
			// Live survivor count for the progress line: the sink runs
			// serialized, so cumDetected is coherent here.
			if reg != nil && exactCount {
				reg.ReportSurvivors(int64(count - cumDetected))
			}
		}
		src.Reset()
		var before telemetry.Snapshot
		if reg != nil {
			before = reg.Snapshot()
			// The stage will present the universe minus what earlier
			// stages already detected (the drop filter); an inexact Count
			// leaves the progress total unknown.
			total := int64(0)
			if exactCount {
				total = int64(count)
				if stageDrop != nil {
					total -= int64(cumDetected)
				}
			}
			reg.BeginStage(st.runner.Name(), total)
		}
		t0 := time.Now()
		stats := p.detectStream(st, src, chunk, workers, stageDrop, arenas, sink)
		finishStage(stats, st, res.Total, time.Since(t0), reg, before)
		res.Stats = stats
		if tallyUniverse {
			universeN = res.Total
		}
		s.Results[st.index] = res
		if vec != nil {
			// Normalize to the enumerated universe size: an inexact Count
			// may have over-allocated (phantom trailing entries) or
			// undershot past the last delivered index (undelivered faults
			// keep this stage's fill meaning).
			for len(vec) < universeN {
				vec = append(vec, vecFill)
			}
			vec = vec[:universeN]
		}
		if s.Vectors != nil {
			s.Vectors[st.index] = vec
		}
		s.Stages = append(s.Stages, StageStat{
			Runner:      st.runner.Name(),
			RunnerIndex: st.index,
			Entered:     res.Total,
			Detected:    res.Detected,
			Survivors:   universeN - cumDetected,
			CacheHit:    st.cacheHit,
			Stats:       stats,
		})
		if reg != nil {
			reg.ReportSurvivors(int64(universeN - cumDetected))
			p.reportStage(reg, s.Stages[len(s.Stages)-1])
		}
	}
	if universeN < 0 {
		universeN = 0
	}

	cumRes := Result{
		Runner:   p.sessionName(),
		Universe: p.Stream.Name,
		Total:    universeN,
		Detected: cumDetected,
		ByClass:  make(map[fault.Class]ClassStat),
	}
	for c, total := range classTotal {
		cumRes.ByClass[c] = ClassStat{Total: total, Detected: classDet[c]}
	}
	sumCleanRuns(stages, &cumRes)
	s.Cumulative = cumRes

	p.notifyObserver(s)
	return s
}

// detectStream runs one stage over the source and returns the engine
// report; verdicts flow to the sink chunk by chunk.
func (p *Plan) detectStream(st *stage, src fault.Source, chunk, workers int, drop *fault.BitSet, arenas *sim.ArenaPool, sink sim.ChunkSink) *EngineStats {
	switch {
	case st.prog != nil:
		w, reps, err := sim.ShardsCompiledStream(st.prog, src, chunk, workers, drop, CollapseEnabled(), arenas, sink)
		if err != nil {
			panic(fmt.Sprintf("coverage: compiled streaming replay of %s on %s: %v", st.runner.Name(), p.Stream.Name, err))
		}
		return &EngineStats{
			Engine:     EngineCompiled,
			Workers:    w,
			Reps:       reps,
			ProgramOps: st.prog.Ops(),
			TrimmedOps: st.prog.TrimmedOps(),
		}
	case st.tr != nil:
		w, reps, err := sim.ShardsStream(st.tr, src, chunk, workers, drop, sink)
		if err != nil {
			panic(fmt.Sprintf("coverage: bitpar streaming replay of %s on %s: %v", st.runner.Name(), p.Stream.Name, err))
		}
		return &EngineStats{Engine: EngineBitParallel, Workers: w, Reps: reps}
	default:
		// Chunked oracle: the generic driver pulls and filters chunks,
		// the replay closure runs the full algorithm once per fault.
		w, reps, err := sim.StreamShard(src, chunk, workers, drop, func() (func([]fault.Fault) (uint64, error), func()) {
			return func(batch []fault.Fault) (uint64, error) {
				var mask uint64
				for i, f := range batch {
					if d, _ := st.runner.Run(f.Inject(p.Memory())); d {
						mask |= 1 << uint(i)
					}
				}
				return mask, nil
			}, nil
		}, sink)
		if err != nil {
			panic(fmt.Sprintf("coverage: oracle streaming of %s on %s: %v", st.runner.Name(), p.Stream.Name, err))
		}
		return &EngineStats{Engine: EngineOracle, Workers: w, Reps: reps}
	}
}
