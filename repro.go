// Package repro is a production-quality Go reproduction of
// "New Schemes for Self-Testing RAM" (Gh. Bodean, D. Bodean,
// A. Labunetz, DATE 2005): pseudo-ring testing (PRT) of bit- and
// word-oriented, single- and multi-port RAM by emulating a linear
// automaton over a Galois field with the memory's own cells.
//
// The root package is the downstream-facing facade: it re-exports the
// user-level types and bundles the experiment harness that regenerates
// every figure and quantitative claim of the paper (see EXPERIMENTS.md
// and bench_test.go).  The implementation lives in internal/:
//
//	internal/gf2      GF(2) polynomial arithmetic
//	internal/gf       GF(2^m) field towers
//	internal/xorsynth XOR-netlist synthesis of constant multipliers
//	internal/lfsr     bit/word/affine LFSR automaton models
//	internal/ram      memory models (BOM, WOM, multi-port)
//	internal/fault    van de Goor fault models and universes
//	internal/march    March test framework and algorithm library
//	internal/prt      the π-test engine (the paper's contribution)
//	internal/bist     BIST hardware budget and controller FSM
//	internal/markov   Markov-chain detection analysis
//	internal/coverage fault-injection campaign engine
//	internal/report   table rendering
//
// # Quickstart
//
//	mem := repro.NewWOM(1024, 4)              // 1024 cells × 4 bits
//	pass, err := repro.SelfTest(mem)          // 3-iteration PRT
//
// See examples/ for runnable programs.
package repro

import (
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
)

// Memory is the RAM model under test (see NewBOM/NewWOM/NewDualPort).
type Memory = ram.Memory

// Word is a memory cell value.
type Word = ram.Word

// Scheme is a multi-iteration pseudo-ring test.
type Scheme = prt.Scheme

// Fault is an injectable memory fault.
type Fault = fault.Fault

// NewBOM returns an n-cell bit-oriented memory.
func NewBOM(n int) Memory { return ram.NewBOM(n) }

// NewWOM returns an n-cell memory of m-bit words.
func NewWOM(n, m int) Memory { return ram.NewWOM(n, m) }

// NewDualPort returns a two-port memory of n cells × m bits.
func NewDualPort(n, m int) *ram.MultiPort { return ram.NewDualPort(n, m) }

// SelfTest runs the default 3-iteration pseudo-ring scheme for the
// memory's geometry and reports whether it passed.
func SelfTest(mem Memory) (bool, error) { return core.SelfTest(mem) }

// DefaultScheme returns the production PRT scheme for an m-bit word
// (m = 1 selects the bit-oriented automaton).
func DefaultScheme(m int) Scheme {
	if m == 1 {
		return core.DefaultBOMScheme()
	}
	return core.DefaultWOMScheme(m)
}

// PaperWOMConfig returns the paper's Fig. 1b configuration
// (g(x)=1+2x+2x² over GF(2⁴), p(z)=1+z+z⁴, seed (0,1)).
func PaperWOMConfig() prt.Config { return prt.PaperWOMConfig() }

// PaperBOMConfig returns the Fig. 1a bit-oriented configuration.
func PaperBOMConfig() prt.Config { return prt.PaperBOMConfig() }

// MarchLibrary returns the classical March algorithm catalogue used as
// the baseline family.
func MarchLibrary() []march.Test { return march.Library() }

// StandardFaultUniverse builds the evaluation fault universe for an
// n×m memory (all single-cell, stuck-open and decoder faults, adjacent
// coupling pairs plus `samples` random long-distance pairs, and — for
// m ≥ 2 — all intra-word pairs).
func StandardFaultUniverse(n, m, samples int, seed int64) fault.Universe {
	return fault.StandardUniverse(n, m, samples, seed)
}
