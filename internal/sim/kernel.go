// The compiled replay kernels: every function in this file is on the
// zero-allocation hot path (AllocsPerRun-enforced at runtime,
// hotpathalloc-enforced at vet time).
//
//faultsim:hotpath

package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
)

// Replay simulates up to 64 faults against the compiled program using
// the arena's reusable buffers and returns the detection mask (bit l
// set when machine l detected), exactly as ReplayBatch does for the
// uncompiled trace.  Steady-state calls allocate nothing: the arena
// restores only the cells the previous batch dirtied and recycles its
// hook objects through the fault pool.
func (p *Program) Replay(a *Arena, faults []fault.Fault) (uint64, error) {
	if len(faults) == 0 {
		return 0, nil
	}
	if a.p != p {
		//faultsim:alloc-ok cold error path, never taken by a well-formed campaign
		return 0, fmt.Errorf("sim: arena belongs to a different program")
	}
	a.reset()
	if err := a.inject(faults); err != nil {
		return 0, err
	}
	full := ^uint64(0)
	if len(faults) < BatchSize {
		full = uint64(1)<<uint(len(faults)) - 1
	}
	if p.width == 1 {
		return p.run1(a, full), nil
	}
	return p.runN(a, full), nil
}

// Kernel structure, shared by both widths: the operation clock lives in
// a register and is flushed to the arena only around hook invocations
// (the only readers, via fault.LaneMemory.Clock); cells without hooks
// take branch-free sense/store paths guarded by the one-byte flag
// table; the read-history ring is addressed by a wrapping cursor
// instead of a modulo.  The pass returns as soon as every machine of
// the batch has detected.

// run1 is the width-1 kernel for bit-oriented memories: one lane word
// per cell, no per-bit inner loops anywhere on the hot path, and the
// whole instruction — opcode, data bit, cell — in a single uint32, so
// even 1M-cell traces stream 4 bytes per op.
func (p *Program) run1(a *Arena, full uint64) uint64 {
	var detected uint64
	slots, hpos, affPos, foldPos, obsPos := p.maxBack, 0, 0, 0, 0
	lanes, hist, flags := a.lanes, a.hist, a.flags
	hasEvery := len(a.everyRead) != 0
	track := !p.dense // dense traces restore wholesale, skip marking
	clock := a.clock
	for _, oa := range p.code1 {
		op := oa >> opShift
		if op == opObserve {
			// Compare point: no memory access, no clock tick — the
			// machine diverges iff its accumulated signature diff is
			// nonzero.
			ob := &p.observes[obsPos]
			obsPos++
			var d uint64
			for _, w := range a.acc[ob.acc : ob.acc+ob.bits] {
				d |= w
			}
			detected |= d & full
			if detected == full {
				break
			}
			continue
		}
		cell := int(oa & w1AddrMask)
		clock++
		if op <= opFold {
			v := lanes[cell]
			if flags[cell]&flagRead != 0 || hasEvery {
				a.clock = clock
				a.val[0] = v
				for _, h := range a.readHooks[cell] {
					h.OnRead(a, cell, a.val)
				}
				for _, h := range a.everyRead {
					h.OnRead(a, cell, a.val)
				}
				v = a.val[0]
			}
			if slots > 0 {
				hist[hpos] = v
				if hpos++; hpos == slots {
					hpos = 0
				}
			}
			if op != opRead {
				clean := uint64(0) - uint64(oa>>w1DataShift&1) // broadcast the expected bit
				d := v ^ clean
				if op == opCheck {
					detected |= d & full
					if detected == full {
						break // every machine has detected
					}
					continue
				}
				// opFold: acc ← step·acc ⊕ tap·diff, per lane.
				fr := &p.folds[foldPos]
				foldPos++
				if fr.checked {
					detected |= d & full
					if detected == full {
						break
					}
				}
				step := p.rowPool[fr.step : fr.step+fr.bits]
				tap := p.rowPool[fr.tap : fr.tap+fr.bits]
				av := a.acc[fr.acc : fr.acc+fr.bits]
				scr := a.obsScr
				for r := range av {
					var nv uint64
					for m := step[r]; m != 0; m &= m - 1 {
						nv ^= av[bits.TrailingZeros32(m)]
					}
					if tap[r]&1 != 0 {
						nv ^= d
					}
					scr[r] = nv
				}
				copy(av, scr[:len(av)])
			}
			continue
		}
		d := uint64(0) - uint64(oa>>w1DataShift&1)
		if op == opAffine {
			e := &p.aff1[affPos]
			affPos++
			for _, t := range p.terms[e.t0 : e.t0+e.tn] {
				if t.mask&1 != 0 {
					s := hpos - int(t.back)
					if s < 0 {
						s += slots
					}
					d ^= hist[s]
				}
			}
		}
		if flags[cell]&flagWrite != 0 {
			a.clock = clock
			a.data[0] = d
			hooks := a.writeHooks[cell]
			for _, h := range hooks {
				h.PreWrite(a, cell, a.data)
			}
			a.markDirty(cell)
			lanes[cell] = a.data[0]
			for _, h := range hooks {
				h.PostWrite(a, cell, a.data)
			}
		} else {
			if track {
				a.markDirty(cell)
			}
			lanes[cell] = d
		}
	}
	a.clock = clock
	return detected
}

// runN is the generic kernel for word-oriented memories (width >= 2).
func (p *Program) runN(a *Arena, full uint64) uint64 {
	w := p.width
	var detected uint64
	slots, hpos, foldPos, obsPos := p.maxBack, 0, 0, 0
	flags := a.flags
	hasEvery := len(a.everyRead) != 0
	track := !p.dense // dense traces restore wholesale, skip marking
	clock := a.clock
	for i := range p.code {
		in := &p.code[i]
		cell := int(in.opAddr & addrMask)
		op := in.opAddr >> opShift
		if op == opObserve {
			// Compare point: no memory access, no clock tick.
			ob := &p.observes[obsPos]
			obsPos++
			var d uint64
			for _, wv := range a.acc[ob.acc : ob.acc+ob.bits] {
				d |= wv
			}
			detected |= d & full
			if detected == full {
				break
			}
			continue
		}
		base := cell * w
		clock++
		if op <= opFold {
			val := a.val
			copy(val, a.lanes[base:base+w])
			if flags[cell]&flagRead != 0 || hasEvery {
				a.clock = clock
				for _, h := range a.readHooks[cell] {
					h.OnRead(a, cell, val)
				}
				for _, h := range a.everyRead {
					h.OnRead(a, cell, val)
				}
			}
			if slots > 0 {
				copy(a.hist[hpos*w:hpos*w+w], val)
				if hpos++; hpos == slots {
					hpos = 0
				}
			}
			if op == opCheck {
				clean := p.lanePool[in.lane : int(in.lane)+w]
				var diff uint64
				for b := 0; b < w; b++ {
					diff |= val[b] ^ clean[b]
				}
				detected |= diff & full
				if detected == full {
					break // every machine has detected
				}
			} else if op == opFold {
				// acc ← step·acc ⊕ tap·diff, per lane.
				fr := &p.folds[foldPos]
				foldPos++
				clean := p.lanePool[in.lane : int(in.lane)+w]
				diff := a.diff
				var any uint64
				for b := 0; b < w; b++ {
					diff[b] = val[b] ^ clean[b]
					any |= diff[b]
				}
				if fr.checked {
					detected |= any & full
					if detected == full {
						break
					}
				}
				step := p.rowPool[fr.step : fr.step+fr.bits]
				tap := p.rowPool[fr.tap : fr.tap+fr.bits]
				av := a.acc[fr.acc : fr.acc+fr.bits]
				for r := range av {
					var nv uint64
					for m := step[r]; m != 0; m &= m - 1 {
						nv ^= av[bits.TrailingZeros32(m)]
					}
					for m := tap[r]; m != 0; m &= m - 1 {
						nv ^= diff[bits.TrailingZeros32(m)]
					}
					a.obsScr[r] = nv
				}
				copy(av, a.obsScr[:len(av)])
			}
			continue
		}
		data := a.data
		copy(data, p.lanePool[in.lane:int(in.lane)+w])
		if op == opAffine {
			for _, t := range p.terms[in.t0 : in.t0+in.tn] {
				s := hpos - int(t.back)
				if s < 0 {
					s += slots
				}
				src := a.hist[s*w:]
				for rm := t.mask; rm != 0; rm &= rm - 1 {
					data[t.dst] ^= src[bits.TrailingZeros32(rm)]
				}
			}
		}
		if flags[cell]&flagWrite != 0 {
			a.clock = clock
			hooks := a.writeHooks[cell]
			for _, h := range hooks {
				h.PreWrite(a, cell, data)
			}
			a.markDirty(cell)
			copy(a.lanes[base:base+w], data)
			for _, h := range hooks {
				h.PostWrite(a, cell, data)
			}
		} else {
			if track {
				a.markDirty(cell)
			}
			copy(a.lanes[base:base+w], data)
		}
	}
	a.clock = clock
	return detected
}
