// Checkpoint glue for streaming sessions: contiguous-frontier folding
// must be deterministic (resumed sessions byte-compare against
// uninterrupted ones) and every checkpoint write sits on the durable
// path.
//
//faultsim:deterministic
//faultsim:durable

package coverage

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// This file is the durability glue of streaming sessions: periodic
// checkpoint writes from the serialized chunk sink, and resume.
//
// The consistency problem checkpointing has to solve is that chunks
// complete in scheduling order, not universe order, while a usable
// checkpoint must describe a prefix-closed cut ("everything below
// HighWater is done, nothing above it").  When a session checkpoints,
// the durable wrapper therefore folds chunk verdicts into the session
// accumulators only in contiguous universe order: a chunk arriving at
// the frontier is applied immediately (plus any buffered successors it
// unblocks), an out-of-order chunk is copied into a reorder buffer
// bounded by O(chunk × workers) — the most the drivers can have in
// flight.  The session accumulators are then themselves always a
// consistent cut, and a checkpoint is just their serialization; an
// interrupt at any instant loses only the buffered out-of-order tail,
// which the resumed run re-simulates.
//
// Resume is the mirror image: the source is Reset and Skip()ed past
// HighWater (O(1) for the index-addressable generator families), the
// shard driver's Base keeps delivered indices universe-absolute, and
// the cumulative detection bitmap doubles as the stage's drop filter.
// That filter is taken from the checkpoint — which already includes
// the current stage's own detections below HighWater — rather than
// from a stage-start snapshot as in an uninterrupted run; the two are
// equivalent because a contiguous cut guarantees every current-stage
// detection sits below HighWater, and no index below HighWater is ever
// presented again.

// DefaultCheckpointEvery is the checkpoint cadence (in universe faults
// of frontier advance) used when CheckpointConfig.Every <= 0: frequent
// enough that an interrupt loses at most ~1M faults (re-simulated in
// well under a second on the compiled engine), rare enough that the
// fsync+rename cost vanishes against simulation time.
const DefaultCheckpointEvery = 1 << 20

// CheckpointConfig enables durable checkpointing of a streaming
// session.
type CheckpointConfig struct {
	// Path is the checkpoint file (written atomically: temp + fsync +
	// rename).  Empty disables checkpointing.
	Path string
	// Every is the write cadence in universe faults of frontier
	// advance (<= 0 selects DefaultCheckpointEvery).  A final write
	// always happens at stage boundaries, on interrupt, and at session
	// completion regardless of cadence.
	Every int
	// Label is a human-readable summary of the invocation (CLI flags),
	// stored in the file for error messages; it does not participate in
	// resume matching.
	Label string
	// Seed is the sampling seed of the universe the session streams
	// (the faultcov -seed flag); resume refuses a checkpoint written
	// under a different seed.
	Seed int64
	// Resume, when non-nil, fast-forwards the session from the state:
	// completed stages are reconstructed from their records, the
	// in-flight stage seeks past its high-water mark.  The state must
	// match the plan's spec hash, geometry, seed and stage order — a
	// mismatch panics (resuming an unrelated checkpoint would silently
	// fabricate results).  CLIs validate first and refuse gracefully.
	Resume *checkpoint.State
}

// ambientCheckpoint/ambientResume are the process defaults behind
// SetDefaultCheckpoint/SetDefaultResume — the faultcov hook: flags are
// parsed once, and every streaming session the selected experiment
// runs picks them up without threading configuration through the
// experiment tables.  The resume state is consumed by the first
// session it matches; sessions it does not match run fresh (an
// experiment may run several differently-specified sessions, only one
// of which wrote the checkpoint).
var (
	ambientCheckpoint atomic.Pointer[CheckpointConfig]
	ambientResume     atomic.Pointer[checkpoint.State]
)

// SetDefaultCheckpoint installs cfg as the checkpoint configuration of
// streaming sessions whose Plan.Checkpoint is nil (nil uninstalls).
func SetDefaultCheckpoint(cfg *CheckpointConfig) { ambientCheckpoint.Store(cfg) }

// SetDefaultResume offers st to subsequently executed streaming
// sessions; the first session whose specification matches consumes it
// and resumes, all others run fresh.  nil clears the offer.
func SetDefaultResume(st *checkpoint.State) { ambientResume.Store(st) }

// DefaultResumePending reports whether a resume offer is still
// unconsumed — after a run it means no session matched the checkpoint,
// which a CLI should surface as an error rather than silently having
// recomputed everything.
func DefaultResumePending() bool { return ambientResume.Load() != nil }

// PlanIdentity returns the spec hash, geometry and stage execution
// order a streaming plan would stamp into its checkpoints — what a CLI
// needs to validate a loaded checkpoint up front (ValidateResume) and
// refuse gracefully instead of panicking mid-campaign.
func (p *Plan) PlanIdentity() (specHash uint64, size, width int, stageNames []string) {
	mem := p.Memory()
	names := make([]string, len(p.Runners))
	// OrderCheapestFirst sorts by measured clean-run cost, so identity
	// must prepare stages exactly as the executor will — the clean runs
	// land in the program cache and are not repeated by the session.
	stages := make([]*stage, len(p.Runners))
	for i, r := range p.Runners {
		stages[i] = p.prepareStage(r, i, true)
	}
	for i, st := range p.executionOrder(stages) {
		names[i] = st.runner.Name()
	}
	return p.specHash(), mem.Size(), mem.Width(), names
}

// specHash fingerprints the campaign specification: universe, runner
// identities (TraceKey when available — display names can collide
// across configurations), engine, dropping and ordering.  Chunk size
// and worker count are deliberately excluded: they affect scheduling,
// not results, so a resumed run may change them freely.
func (p *Plan) specHash() uint64 {
	parts := []string{
		"universe=" + p.Stream.Name,
		"engine=" + p.Engine.String(),
		fmt.Sprintf("drop=%t", p.Drop),
		fmt.Sprintf("order=%d", p.Order),
	}
	for _, r := range p.Runners {
		if tk, ok := r.(TraceKeyer); ok {
			parts = append(parts, "runner="+tk.TraceKey())
		} else {
			parts = append(parts, "runner="+r.Name())
		}
	}
	return checkpoint.Hash(parts...)
}

// validateResume checks a loaded state against the resuming session's
// identity.  A nil return means the state describes this exact
// campaign (including its partition range [partLo, partHi); -1 for
// unpartitioned) and can be applied.
func validateResume(rs *checkpoint.State, spec uint64, size, width int, seed int64, names []string, partLo, partHi int) error {
	if !rs.Matches(spec, size, width, seed) {
		return fmt.Errorf("coverage: checkpoint %q was written by a different campaign "+
			"(spec/geometry/seed mismatch: file has %dx%d seed %d)", rs.Label, rs.Size, rs.Width, rs.Seed)
	}
	fileLo, fileHi := rs.PartitionLo, rs.PartitionHi
	if fileHi < 0 {
		fileLo, fileHi = 0, -1
	}
	if fileLo != int64(partLo) || fileHi != int64(partHi) {
		return fmt.Errorf("coverage: checkpoint %q covers universe range [%d, %d), this session runs [%d, %d) (partition mismatch)",
			rs.Label, fileLo, fileHi, partLo, partHi)
	}
	if len(rs.StageNames) != len(names) {
		return fmt.Errorf("coverage: checkpoint %q has %d stages, plan has %d", rs.Label, len(rs.StageNames), len(names))
	}
	for i, n := range names {
		if rs.StageNames[i] != n {
			return fmt.Errorf("coverage: checkpoint %q stage %d is %q, plan runs %q", rs.Label, i, rs.StageNames[i], n)
		}
	}
	if len(rs.Done) > len(names) {
		return fmt.Errorf("coverage: checkpoint %q records %d completed stages of %d", rs.Label, len(rs.Done), len(names))
	}
	for _, rec := range rs.Done {
		if int(rec.RunnerIndex) < 0 || int(rec.RunnerIndex) >= len(names) {
			return fmt.Errorf("coverage: checkpoint %q stage record indexes runner %d of %d", rs.Label, rec.RunnerIndex, len(names))
		}
	}
	if rs.Complete && len(rs.Done) != len(names) {
		return fmt.Errorf("coverage: checkpoint %q marked complete with %d of %d stages done", rs.Label, len(rs.Done), len(names))
	}
	return nil
}

// ValidateResume reports whether the state can resume this plan —
// the CLI's up-front refusal path (the in-session validation panics,
// treating a mismatched explicit Resume as a programmer error).
func (p *Plan) ValidateResume(rs *checkpoint.State, seed int64) error {
	spec, size, width, names := p.PlanIdentity()
	partLo, partHi := 0, -1
	if idx, cnt := p.partitionSpec(); cnt > 0 {
		if n, exact := p.Stream.Source.Count(); exact {
			partLo, partHi = fault.PartitionRange(n, idx-1, cnt)
		}
	}
	return validateResume(rs, spec, size, width, seed, names, partLo, partHi)
}

// pendingChunk is one out-of-order chunk parked in the reorder buffer:
// private copies, since the driver reuses the sink's slices.
type pendingChunk struct {
	n      int
	idx    []int
	faults []fault.Fault
	det    []bool
}

// durable is one streaming session's checkpoint state machine.  All
// mutation happens inside the serialized sink or between stages, so it
// needs no locking of its own.
type durable struct {
	cfg   CheckpointConfig
	every int
	spec  uint64
	size  int32
	width int32

	pending   map[int]pendingChunk
	frontier  int // universe index: everything below is folded
	lastWrite int

	// snap builds the current-stage state at a given high-water mark;
	// assigned by the executor at each stage's start.
	snap func(highWater int) *checkpoint.State
}

func newDurable(cfg CheckpointConfig, spec uint64, size, width int) *durable {
	every := cfg.Every
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	return &durable{cfg: cfg, every: every, spec: spec, size: int32(size), width: int32(width)}
}

// beginStage resets the fold frontier for a stage starting (or
// resuming) at universe index base.
func (d *durable) beginStage(base int) {
	d.pending = make(map[int]pendingChunk)
	d.frontier = base
	d.lastWrite = base
}

// wrap returns a ChunkSink that folds chunks into inner in contiguous
// universe order, buffering out-of-order arrivals, and writes a
// checkpoint whenever the frontier has advanced a full cadence.
func (d *durable) wrap(inner sim.ChunkSink) sim.ChunkSink {
	return func(base, n int, idx []int, faults []fault.Fault, det []bool) {
		if base != d.frontier {
			d.pending[base] = pendingChunk{
				n:      n,
				idx:    append([]int(nil), idx...),
				faults: append([]fault.Fault(nil), faults...),
				det:    append([]bool(nil), det...),
			}
			return
		}
		inner(base, n, idx, faults, det)
		d.frontier += n
		for {
			pc, ok := d.pending[d.frontier]
			if !ok {
				break
			}
			delete(d.pending, d.frontier)
			inner(d.frontier, pc.n, pc.idx, pc.faults, pc.det)
			d.frontier += pc.n
		}
		if d.frontier-d.lastWrite >= d.every {
			d.write(d.snap(d.frontier))
		}
	}
}

// flush writes the current stage's state at the fold frontier — the
// interrupt path's final checkpoint.
func (d *durable) flush() {
	if d.snap != nil {
		d.write(d.snap(d.frontier))
	}
}

// write persists st atomically.  A failing write panics: checkpointing
// was explicitly requested, and silently continuing without durability
// is worse than stopping — the campaign is resumable up to the last
// successful write.
func (d *durable) write(st *checkpoint.State) {
	t0 := time.Now() //faultsim:ordered telemetry timing only; never reaches emitted results
	if err := checkpoint.WriteAtomic(d.cfg.Path, st); err != nil {
		panic(fmt.Sprintf("coverage: checkpoint write: %v", err))
	}
	telemetry.Active().CheckpointWrite(time.Since(t0)) //faultsim:ordered telemetry timing only
	d.lastWrite = d.frontier
}

// resultTallies converts a Result's per-class map to the checkpoint's
// sorted representation.
func resultTallies(m map[fault.Class]ClassStat) []checkpoint.ClassTally {
	out := make([]checkpoint.ClassTally, 0, len(m))
	for c, s := range m { //faultsim:ordered order-insensitive accumulation; sorted below
		out = append(out, checkpoint.ClassTally{Class: int32(c), Total: int64(s.Total), Detected: int64(s.Detected)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// classTallies converts the session's universe class tallies to the
// checkpoint's sorted representation.
func classTallies(total, det map[fault.Class]int) []checkpoint.ClassTally {
	out := make([]checkpoint.ClassTally, 0, len(total))
	for c, t := range total { //faultsim:ordered order-insensitive accumulation; sorted below
		out = append(out, checkpoint.ClassTally{Class: int32(c), Total: int64(t), Detected: int64(det[c])})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

// tallyMaps is the inverse of classTallies: seed the session's
// universe class maps from a checkpoint.
func tallyMaps(ts []checkpoint.ClassTally, total, det map[fault.Class]int) {
	for _, t := range ts {
		total[fault.Class(t.Class)] = int(t.Total)
		det[fault.Class(t.Class)] = int(t.Detected)
	}
}

// applyTallies seeds a Result's per-class map from a stage record.
func applyTallies(ts []checkpoint.ClassTally, m map[fault.Class]ClassStat) {
	for _, t := range ts {
		m[fault.Class(t.Class)] = ClassStat{Total: int(t.Total), Detected: int(t.Detected)}
	}
}
