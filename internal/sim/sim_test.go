package sim

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/ram"
)

// recordMarch captures a March test's trace on a fresh BOM.
func recordMarch(t *testing.T, test march.Test, n int) *Trace {
	t.Helper()
	tr, detected, ops := Record(ram.NewBOM(n), func(m ram.Memory) (bool, uint64) {
		r := march.Run(test, m, 0)
		return r.Detected, r.Ops
	})
	if detected {
		t.Fatalf("clean run of %s detected a fault", test.Name)
	}
	if ops == 0 || len(tr.Ops) == 0 {
		t.Fatalf("empty trace")
	}
	return tr
}

func TestRecorderCapturesAnnotatedStream(t *testing.T) {
	const n = 8
	test := march.MarchCMinus()
	tr := recordMarch(t, test, n)
	if tr.Size != n || tr.Width != 1 {
		t.Fatalf("trace geometry %dx%d, want %dx1", tr.Size, tr.Width, n)
	}
	if got, want := len(tr.Ops), test.OpsPerCell()*n; got != want {
		t.Fatalf("recorded %d ops, want %d", got, want)
	}
	reads := 0
	for _, op := range tr.Ops {
		if op.Kind == ram.OpRead {
			reads++
			if !op.Checked {
				t.Fatalf("March read at addr %d not annotated as checked", op.Addr)
			}
		}
	}
	if tr.Checked != reads {
		t.Fatalf("Checked=%d, want %d", tr.Checked, reads)
	}
	if !tr.Replayable() {
		t.Fatalf("annotated trace not replayable")
	}
}

func TestReplayBatchDetectsExactlyTheOracleFaults(t *testing.T) {
	const n = 16
	test := march.MATSPlus() // detects all SAF, not all TF
	tr := recordMarch(t, test, n)
	faults := fault.SingleCellUniverse(n, 1)
	mask, err := ReplayBatch(tr, faults[:64])
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range faults[:64] {
		mem := f.Inject(ram.NewBOM(n))
		want := march.Run(test, mem, 0).Detected
		if got := mask>>uint(i)&1 == 1; got != want {
			t.Errorf("fault %s: replay detected=%v oracle=%v", f, got, want)
		}
	}
}

func TestReplayBatchPartialBatch(t *testing.T) {
	const n = 8
	tr := recordMarch(t, march.MarchCMinus(), n)
	faults := []fault.Fault{
		fault.SAF{Cell: 2, Bit: 0, Value: 1},
		fault.SAF{Cell: 5, Bit: 0, Value: 0},
		fault.TF{Cell: 3, Bit: 0, Up: true},
	}
	mask, err := ReplayBatch(tr, faults)
	if err != nil {
		t.Fatal(err)
	}
	if mask != 0b111 {
		t.Fatalf("detection mask %03b, want 111 (March C- covers SAF and TF)", mask)
	}
}

func TestReplayRejectsUnannotatedTrace(t *testing.T) {
	// A hand-built trace with no checked reads must be refused rather
	// than silently reporting zero coverage.
	tr := &Trace{Size: 4, Width: 1, Init: make([]ram.Word, 4), Ops: []Op{
		{Kind: ram.OpWrite, Addr: 0, Data: 1},
		{Kind: ram.OpRead, Addr: 0, Data: 1},
	}}
	if _, err := ReplayBatch(tr, []fault.Fault{fault.SAF{Cell: 0, Value: 0}}); err == nil {
		t.Fatal("expected an error for a trace with no checked reads")
	}
}

// alienFault implements fault.Fault but not fault.BatchInjector.
type alienFault struct{}

func (alienFault) Class() fault.Class             { return fault.ClassSAF }
func (alienFault) Inject(m ram.Memory) ram.Memory { return m }
func (alienFault) String() string                 { return "alien" }

func TestBatchableDetectsForeignFaults(t *testing.T) {
	ok := []fault.Fault{fault.SAF{}, fault.TF{}, fault.SOF{}, fault.DRF{},
		fault.AF{}, fault.CFin{}, fault.CFid{}, fault.CFst{}, fault.BF{},
		fault.SNPSF{}, fault.ANPSF{}}
	if !Batchable(ok) {
		t.Fatal("all built-in fault models should be batchable")
	}
	if Batchable(append(ok, alienFault{})) {
		t.Fatal("a fault without BatchInject must disable the fast path")
	}
	if _, err := ReplayBatch(&Trace{Checked: 1, Width: 1, Size: 1, Init: []ram.Word{0}},
		[]fault.Fault{alienFault{}}); err == nil {
		t.Fatal("ReplayBatch must refuse non-batchable faults")
	}
}

func TestShardsMatchesReplayBatchAcrossWorkerCounts(t *testing.T) {
	const n = 32
	tr := recordMarch(t, march.MarchB(), n)
	faults := fault.SingleCellUniverse(n, 1) // 128 faults = 2 batches
	var ref []bool
	for _, workers := range []int{1, 3, 8} {
		got, _, err := Shards(context.Background(), tr, faults, workers)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("workers=%d: fault %d differs from single-worker result", workers, i)
			}
		}
	}
}
