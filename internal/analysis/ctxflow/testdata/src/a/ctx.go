package a

import (
	"context"
	"sync/atomic"
)

// good: context first, flows to the callee.
func good(ctx context.Context, n int) error {
	return callee(ctx, n)
}

func callee(ctx context.Context, n int) error { return ctx.Err() }

// misplaced: context is not the first parameter.
func misplaced(n int, ctx context.Context) error { // want `ctxflow: context.Context must be the first parameter`
	return ctx.Err()
}

// stored: contexts must not hide in struct fields.
type stored struct {
	ctx context.Context // want `ctxflow: struct field stores a context.Context; contexts must flow through call parameters`
	n   int
}

// wrapped: generic wrappers do not launder the storage.
type wrapped struct {
	ctx atomic.Pointer[context.Context] // want `ctxflow: struct field stores a context.Context; contexts must flow through call parameters`
}

// ambientHook is the audited exception: a waiver with a justification.
type ambientHook struct {
	ctx context.Context //faultsim:ambient audited ambient-default hook; cleared by SetDefaultContext(nil)
}

var pkgCtx context.Context // want `ctxflow: package variable stores a context.Context; contexts must flow through call parameters`

//faultsim:ambient audited process-wide default installed once by the CLI
var ambientCtx atomic.Pointer[context.Context]

// fresh: library code must receive its context.
func fresh(n int) error {
	ctx := context.Background() // want `ctxflow: context.Background outside main/tests; accept a context from the caller`
	return callee(ctx, n)
}

// dropped: a fresh context inside a ctx-taking function breaks the
// cancellation chain even where Background is otherwise allowed.
func dropped(ctx context.Context, n int) error {
	return callee(context.TODO(), n) // want `ctxflow: context.TODO inside a function with a context parameter; pass the caller's context`
}

// literalScope: function literals are resolved against their own
// signature, not the enclosing function's.
func literalScope(ctx context.Context) func() error {
	return func() error { // no ctx param here, but package is not main: still flagged
		c := context.Background() // want `ctxflow: context.Background outside main/tests; accept a context from the caller`
		return callee(c, 0)
	}
}

var _ = pkgCtx
var _ = ambientCtx
