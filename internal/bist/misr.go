package bist

import (
	"fmt"

	"repro/internal/gf"
)

// MISR is a word-wide multiple-input signature register over GF(2^m):
// each Feed folds a data word into the running signature via
//
//	S ← α·S ⊕ d
//
// with α a fixed nonzero multiplier (the field generator by default).
// It is the hardware-cheap alternative to the per-read comparator of
// the verify pass: all n read-back words compress into one m-bit
// signature, at the cost of an aliasing probability of ≈2^-m for a
// random error burst (quantified by markov.PRTModel).  Because α ≠ 0
// the map is injective per step, so any SINGLE wrong word always
// changes the final signature — only multi-word error patterns can
// alias.
type MISR struct {
	f     *gf.Field
	alpha gf.Elem
	state gf.Elem
	fed   uint64
}

// NewMISR returns a signature register over f with multiplier alpha
// (0 selects the field generator).
func NewMISR(f *gf.Field, alpha gf.Elem) (*MISR, error) {
	if f == nil {
		return nil, fmt.Errorf("bist: nil field")
	}
	if alpha == 0 {
		alpha = f.Generator()
	}
	if !f.Contains(alpha) || alpha == 0 {
		return nil, fmt.Errorf("bist: bad MISR multiplier %#x", uint32(alpha))
	}
	return &MISR{f: f, alpha: alpha}, nil
}

// Reset clears the signature.
func (m *MISR) Reset() { m.state, m.fed = 0, 0 }

// Feed folds one data word.
func (m *MISR) Feed(d gf.Elem) {
	m.state = m.f.Add(m.f.Mul(m.alpha, m.state), d)
	m.fed++
}

// FeedAll folds a slice of words.
func (m *MISR) FeedAll(ds []gf.Elem) {
	for _, d := range ds {
		m.Feed(d)
	}
}

// Signature returns the current signature.
func (m *MISR) Signature() gf.Elem { return m.state }

// FoldMatrices returns the GF(2) row-mask matrices of one fold step
// S ← α·S ⊕ d in the form the replay observer annotation
// (ram.TraceAnnotator.AnnotateFold) consumes: step is the α-multiply
// on the m accumulator bits, tap the identity injection of the m-bit
// data word.  Both are freshly allocated and safe to retain.
func (m *MISR) FoldMatrices() (step, tap []uint32) {
	step = append([]uint32(nil), m.f.ConstMulMatrix(m.alpha).Rows...)
	tap = append([]uint32(nil), gf.IdentityMatrix(m.f.M()).Rows...)
	return step, tap
}

// Fed returns the number of words folded since the last reset.
func (m *MISR) Fed() uint64 { return m.fed }

// Predict computes, without a register, the signature of the given
// word stream: Σ α^(n-1-i)·d_i.
func Predict(f *gf.Field, alpha gf.Elem, ds []gf.Elem) (gf.Elem, error) {
	r, err := NewMISR(f, alpha)
	if err != nil {
		return 0, err
	}
	r.FeedAll(ds)
	return r.Signature(), nil
}

// AliasFreeDistance returns the number of trailing words over which a
// single-word error can NEVER alias: infinite in exact arithmetic
// (α is invertible), expressed here as the stream length itself — the
// function exists to document the single-error guarantee and is used
// by tests.
func (m *MISR) AliasFreeDistance() uint64 { return m.fed }

// CancellingPair returns two error values (e1 at position i, e2 at
// position j > i, positions counted from the start of an n-word
// stream) that alias to the same signature — the constructive witness
// that multi-word errors can escape MISR compression.  Any e1 ≠ 0
// works: e2 = α^(j-i)·e1 superimposed later cancels... specifically
// the pair (e1 at i) and (α^(j-i)·e1 at j) produce equal contributions
// when XORed into both streams, so e2 is returned such that injecting
// e1 at i and e2 at j leaves the signature unchanged.
func (m *MISR) CancellingPair(e1 gf.Elem, i, j, n int) (gf.Elem, error) {
	if e1 == 0 || i < 0 || j <= i || j >= n {
		return 0, fmt.Errorf("bist: bad cancelling pair request")
	}
	// Contribution of an error e at position p is α^(n-1-p)·e.
	// Want α^(n-1-i)·e1 = α^(n-1-j)·e2  ⇒  e2 = α^(j-i)·e1.
	return m.f.Mul(m.f.Pow(m.alpha, uint64(j-i)), e1), nil
}
