// Package ram provides behavioural models of the random-access
// memories targeted by pseudo-ring testing: bit-oriented (BOM) and
// word-oriented (WOM) arrays with one, two or four ports.
//
// These models stand in for the physical arrays of the paper (see
// DESIGN.md §3): a test algorithm only observes read values and write
// effects, so a functional model plus the fault-injection layers of
// package fault reproduces the behaviour the paper's analysis relies
// on.  Multi-port models give same-cycle semantics (all reads observe
// the pre-cycle state) which is what makes the Fig. 2 dual-port scheme
// finish in 2n cycles.
package ram

import "fmt"

// Word is a memory cell value.  Cells narrower than 32 bits use the low
// bits; models mask writes to the cell width.
type Word uint32

// Memory is a single-port random-access memory of Size() cells, each
// Width() bits wide.  Implementations panic on out-of-range addresses —
// an address bug in a test algorithm is a programming error, not a
// modelled fault (decoder faults are modelled in package fault).
type Memory interface {
	Read(addr int) Word
	Write(addr int, v Word)
	Size() int
	Width() int
}

// WOM is a word-oriented memory: n cells of m bits (1 <= m <= 32).
// The zero value is unusable; construct with NewWOM.
type WOM struct {
	cells []Word
	width int
	mask  Word
}

// NewWOM returns an n-cell memory of m-bit words, initialised to zero.
func NewWOM(n, m int) *WOM {
	if n < 1 {
		panic(fmt.Sprintf("ram: size %d must be positive", n))
	}
	if m < 1 || m > 32 {
		panic(fmt.Sprintf("ram: width %d out of range [1,32]", m))
	}
	return &WOM{
		cells: make([]Word, n),
		width: m,
		mask:  Word(1)<<uint(m) - 1,
	}
}

// Read returns the value of the addressed cell.
func (w *WOM) Read(addr int) Word { return w.cells[addr] }

// Write stores v (masked to the cell width) at addr.
func (w *WOM) Write(addr int, v Word) { w.cells[addr] = v & w.mask }

// Size returns the number of cells.
func (w *WOM) Size() int { return len(w.cells) }

// Width returns the cell width in bits.
func (w *WOM) Width() int { return w.width }

// BOM is a bit-oriented memory: n one-bit cells, bit-packed.  It is the
// m=1 special case of the paper's memory taxonomy with storage matching
// a real bit array.
type BOM struct {
	bits []uint64
	n    int
}

// NewBOM returns an n-cell bit-oriented memory initialised to zero.
func NewBOM(n int) *BOM {
	if n < 1 {
		panic(fmt.Sprintf("ram: size %d must be positive", n))
	}
	return &BOM{bits: make([]uint64, (n+63)/64), n: n}
}

// Read returns the addressed bit (0 or 1).
func (b *BOM) Read(addr int) Word {
	if addr < 0 || addr >= b.n {
		panic(fmt.Sprintf("ram: address %d out of range [0,%d)", addr, b.n))
	}
	return Word(b.bits[addr>>6] >> uint(addr&63) & 1)
}

// Write stores the low bit of v at addr.
func (b *BOM) Write(addr int, v Word) {
	if addr < 0 || addr >= b.n {
		panic(fmt.Sprintf("ram: address %d out of range [0,%d)", addr, b.n))
	}
	if v&1 == 1 {
		b.bits[addr>>6] |= 1 << uint(addr&63)
	} else {
		b.bits[addr>>6] &^= 1 << uint(addr&63)
	}
}

// Size returns the number of cells.
func (b *BOM) Size() int { return b.n }

// Width returns 1.
func (b *BOM) Width() int { return 1 }

// --- helpers shared by tests, examples and the campaign engine ---

// Fill writes v to every cell of m.
func Fill(m Memory, v Word) {
	for a := 0; a < m.Size(); a++ {
		m.Write(a, v)
	}
}

// Checkerboard writes alternating v, ^v patterns (masked) — the classic
// data background used by word-oriented March tests.
func Checkerboard(m Memory, v Word) {
	mask := Word(1)<<uint(m.Width()) - 1
	for a := 0; a < m.Size(); a++ {
		if a&1 == 0 {
			m.Write(a, v&mask)
		} else {
			m.Write(a, ^v&mask)
		}
	}
}

// Snapshot copies the full contents of m.
func Snapshot(m Memory) []Word {
	out := make([]Word, m.Size())
	for a := range out {
		out[a] = m.Read(a)
	}
	return out
}

// Restore writes the snapshot back into m; lengths must match.
func Restore(m Memory, snap []Word) {
	if len(snap) != m.Size() {
		panic("ram: snapshot length mismatch")
	}
	for a, v := range snap {
		m.Write(a, v)
	}
}

// Equal reports whether two memories have identical size, width and
// contents.
func Equal(a, b Memory) bool {
	if a.Size() != b.Size() || a.Width() != b.Width() {
		return false
	}
	for i := 0; i < a.Size(); i++ {
		if a.Read(i) != b.Read(i) {
			return false
		}
	}
	return true
}
