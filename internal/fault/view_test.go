package fault

import "testing"

func TestViewSpanIsIdentity(t *testing.T) {
	faults := SingleCellUniverse(4, 1)
	v := Span(faults)
	if !v.Full() || v.Len() != len(faults) {
		t.Fatalf("span: full=%v len=%d want %d", v.Full(), v.Len(), len(faults))
	}
	for i := range faults {
		if v.At(i) != faults[i] || v.Index(i) != i {
			t.Fatalf("position %d: At=%v Index=%d", i, v.At(i), v.Index(i))
		}
	}
	// Full-view batches are backing subslices, not copies.
	b := v.Batch(nil, 3, 7)
	if len(b) != 4 || &b[0] != &faults[3] {
		t.Error("full-view Batch must alias the backing slice")
	}
}

func TestViewWhereComposes(t *testing.T) {
	faults := SingleCellUniverse(8, 1) // 32 faults
	even := Span(faults).Where(func(i int) bool { return i%2 == 0 })
	if even.Full() || even.Len() != 16 {
		t.Fatalf("even view: full=%v len=%d", even.Full(), even.Len())
	}
	// Second narrowing: indices must stay positions in the ORIGINAL
	// slice (0, 4, 8, ...), not positions in the intermediate view.
	fourth := even.Where(func(i int) bool { return i%2 == 0 })
	if fourth.Len() != 8 {
		t.Fatalf("fourth view len = %d", fourth.Len())
	}
	for i := 0; i < fourth.Len(); i++ {
		if want := 4 * i; fourth.Index(i) != want || fourth.At(i) != faults[want] {
			t.Fatalf("position %d: Index=%d want %d", i, fourth.Index(i), want)
		}
	}
	scratch := make([]Fault, 0, 4)
	b := fourth.Batch(scratch, 2, 5)
	if len(b) != 3 || b[0] != faults[8] || b[2] != faults[16] {
		t.Fatalf("gathered batch wrong: %v", b)
	}
}

// TestCollapseViewMatchesCollapseOnSubset: collapsing a view must
// equal collapsing the materialised subset — same representatives,
// same map, exact expansion.
func TestCollapseViewMatchesCollapseOnSubset(t *testing.T) {
	faults := SingleCellUniverse(6, 1)
	faults = append(faults, faults[:4]...) // duplicates collapse
	v := Span(faults).Where(func(i int) bool { return i%3 != 0 })
	gathered := make([]Fault, 0, v.Len())
	for i := 0; i < v.Len(); i++ {
		gathered = append(gathered, v.At(i))
	}
	got := CollapseView(v, nil)
	want := Collapse(gathered, nil)
	if len(got.Reps) != len(want.Reps) || len(got.Map) != len(want.Map) {
		t.Fatalf("shape differs: got %d reps/%d map, want %d/%d",
			len(got.Reps), len(got.Map), len(want.Reps), len(want.Map))
	}
	for i := range want.Reps {
		if got.Reps[i] != want.Reps[i] {
			t.Errorf("rep %d: %v != %v", i, got.Reps[i], want.Reps[i])
		}
	}
	for i := range want.Map {
		if got.Map[i] != want.Map[i] {
			t.Errorf("map %d: %d != %d", i, got.Map[i], want.Map[i])
		}
	}
	// Expansion stays per view position.
	rep := make([]bool, len(got.Reps))
	for i := range rep {
		rep[i] = i%2 == 0
	}
	a, b := got.Expand(rep), want.Expand(rep)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("expanded %d differs", i)
		}
	}
}

// TestCollapseViewDropsDeadRepresentatives: a class whose every member
// left the view contributes no representative.
func TestCollapseViewDropsDeadRepresentatives(t *testing.T) {
	faults := []Fault{
		SAF{Cell: 0, Bit: 0, Value: 0},
		SAF{Cell: 0, Bit: 0, Value: 0}, // duplicate of 0
		SAF{Cell: 1, Bit: 0, Value: 1},
	}
	full := Collapse(faults, nil)
	if len(full.Reps) != 2 {
		t.Fatalf("full collapse reps = %d, want 2", len(full.Reps))
	}
	v := Span(faults).Where(func(i int) bool { return i == 2 })
	col := CollapseView(v, nil)
	if len(col.Reps) != 1 || col.Reps[0] != faults[2] {
		t.Fatalf("dead class not dropped: reps = %v", col.Reps)
	}
}
