package ctxflow_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxflow.Analyzer, "a")
}
