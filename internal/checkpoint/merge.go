// Merging per-partition checkpoints into the single-process state.
// Merge output is deterministic: the same inputs (in any order) always
// produce the same merged bytes, and merging the final checkpoints of
// a fully partitioned run reproduces the unpartitioned run's final
// checkpoint exactly — the property the distributed-campaign tests
// byte-diff.
//
//faultsim:deterministic

package checkpoint

import (
	"errors"
	"fmt"
	"sort"
)

// Merge refusal errors.  Each failure mode is a distinct sentinel so
// callers (and tests) can tell a spec mismatch from a bad tiling.
var (
	// ErrMergeIncomplete reports a merge input whose session did not
	// run to completion — partial partitions have no well-defined
	// merged result.
	ErrMergeIncomplete = errors.New("checkpoint: merge input is not a complete run")
	// ErrMergeSpec reports merge inputs that disagree on the campaign
	// specification fingerprint, memory geometry, or sampling seed.
	ErrMergeSpec = errors.New("checkpoint: merge inputs disagree on campaign spec/geometry/seed")
	// ErrMergeStages reports merge inputs whose stage sets diverged —
	// different stage names, order, or runner bindings.
	ErrMergeStages = errors.New("checkpoint: merge inputs disagree on stage set")
	// ErrMergeOverlap reports partition ranges that overlap.
	ErrMergeOverlap = errors.New("checkpoint: partition ranges overlap")
	// ErrMergeGap reports partition ranges that leave part of the
	// universe uncovered.
	ErrMergeGap = errors.New("checkpoint: partition ranges leave a gap")
)

// Merge combines the final checkpoints of a partitioned campaign into
// the state the equivalent single-process run would have written.
// Every input must be Complete and written by the same campaign
// specification (spec hash, geometry, seed, stage set); the partition
// ranges must tile the universe exactly — first range starting at 0,
// each next range starting where the previous ended.  Tallies are
// summed, detection bitmaps OR'd (partitions cover disjoint index
// ranges, so the union is exact), and the merged state is marked
// full-universe.  A single full-universe input merges to itself.
func Merge(states []*State) (*State, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("%w: no inputs", ErrMergeGap)
	}
	ref := states[0]
	for i, s := range states {
		if !s.Complete {
			return nil, fmt.Errorf("%w (input %d: %q)", ErrMergeIncomplete, i, s.Label)
		}
		if !s.Matches(ref.SpecHash, int(ref.Size), int(ref.Width), ref.Seed) {
			return nil, fmt.Errorf("%w (input %d: %q)", ErrMergeSpec, i, s.Label)
		}
		if err := sameStages(ref, s); err != nil {
			return nil, fmt.Errorf("%w (input %d: %q)", err, i, s.Label)
		}
	}
	// Validate the tiling on the sorted ranges.
	order := make([]*State, len(states))
	copy(order, states)
	sort.SliceStable(order, func(i, j int) bool {
		li, _, _ := order[i].PartitionRange()
		lj, _, _ := order[j].PartitionRange()
		return li < lj
	})
	var next int64
	for _, s := range order {
		lo, hi, _ := s.PartitionRange()
		if hi-lo != s.UniverseN {
			return nil, fmt.Errorf("%w (input %q covers [%d,%d) but enumerated %d faults)",
				ErrMergeGap, s.Label, lo, hi, s.UniverseN)
		}
		if lo < next {
			return nil, fmt.Errorf("%w ([%d,%d) begins before %d)", ErrMergeOverlap, lo, hi, next)
		}
		if lo > next {
			return nil, fmt.Errorf("%w ([%d,%d) uncovered)", ErrMergeGap, next, lo)
		}
		next = hi
	}
	out := &State{
		SpecHash:    ref.SpecHash,
		Seed:        ref.Seed,
		Size:        ref.Size,
		Width:       ref.Width,
		PartitionLo: 0,
		PartitionHi: -1,
		Label:       ref.Label,
		UniverseN:   next,
		StageNames:  append([]string(nil), ref.StageNames...),
		HighWater:   0,
		Complete:    true,
	}
	out.Done = make([]StageRecord, len(ref.Done))
	for si := range ref.Done {
		rec := StageRecord{
			Runner:      ref.Done[si].Runner,
			RunnerIndex: ref.Done[si].RunnerIndex,
		}
		var classes []ClassTally
		for _, s := range order {
			rec.Entered += s.Done[si].Entered
			rec.Detected += s.Done[si].Detected
			rec.Survivors += s.Done[si].Survivors
			classes = sumTallies(classes, s.Done[si].ByClass)
		}
		rec.ByClass = classes
		out.Done[si] = rec
	}
	var bits []uint64
	for _, s := range order {
		out.Universe = sumTallies(out.Universe, s.Universe)
		for len(bits) < len(s.Bits) {
			bits = append(bits, 0)
		}
		for i, w := range s.Bits {
			bits[i] |= w
		}
	}
	out.Bits = bits
	return out, nil
}

// sameStages checks that two states describe the same stage set: same
// stage names in the same order, and — for complete states — the same
// runner bindings per completed stage.
func sameStages(a, b *State) error {
	if len(a.StageNames) != len(b.StageNames) || len(a.Done) != len(b.Done) {
		return ErrMergeStages
	}
	for i := range a.StageNames {
		if a.StageNames[i] != b.StageNames[i] {
			return ErrMergeStages
		}
	}
	for i := range a.Done {
		if a.Done[i].Runner != b.Done[i].Runner || a.Done[i].RunnerIndex != b.Done[i].RunnerIndex {
			return ErrMergeStages
		}
	}
	return nil
}

// sumTallies folds src's per-class tallies into dst (both sorted by
// class), keeping the result sorted so merged states encode
// deterministically.
func sumTallies(dst, src []ClassTally) []ClassTally {
	for _, t := range src {
		i := sort.Search(len(dst), func(i int) bool { return dst[i].Class >= t.Class })
		if i < len(dst) && dst[i].Class == t.Class {
			dst[i].Total += t.Total
			dst[i].Detected += t.Detected
			continue
		}
		dst = append(dst, ClassTally{})
		copy(dst[i+1:], dst[i:])
		dst[i] = t
	}
	return dst
}
