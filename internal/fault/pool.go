// Hook-object recycling for the replay workers: get/Reset run between
// batches on the compiled fast path.
//
//faultsim:hotpath

package fault

// freelist recycles hook objects of one concrete type across batches.
// get returns a zeroed object, reusing a previously handed-out one when
// available; reset makes every object reusable again without freeing
// it.  Pointers handed out before a reset must no longer be used.
type freelist[T any] struct {
	items []*T
	used  int
}

func (l *freelist[T]) get() *T {
	if l.used < len(l.items) {
		h := l.items[l.used]
		l.used++
		var zero T
		*h = zero
		return h
	}
	//faultsim:alloc-ok free-list growth: only the first batches allocate; steady state reuses
	h := new(T)
	l.items = append(l.items, h) //faultsim:alloc-ok free-list growth, amortized to zero per batch
	l.used++
	return h
}

func (l *freelist[T]) reset() { l.used = 0 }

// Pool recycles the hook objects installed by BatchInjectPooled so that
// steady-state replay batches allocate nothing: the first batches grow
// the per-type free lists, later batches reuse them.  A Pool belongs to
// one replay worker and is not safe for concurrent use.  All methods
// tolerate a nil receiver by falling back to plain allocation, which
// lets the pooled and unpooled injection paths share one code path.
type Pool struct {
	saf   freelist[safHook]
	tf    freelist[tfHook]
	sof   freelist[sofHook]
	drf   freelist[drfHook]
	af    freelist[afHook]
	cfin  freelist[cfinHook]
	cfid  freelist[cfidHook]
	cfst  freelist[cfstHook]
	bf    freelist[bfHook]
	snpsf freelist[snpsfHook]
	anpsf freelist[anpsfHook]
}

// Reset recycles every hook handed out since the previous Reset.  The
// caller must have dropped all references to them (the machine array's
// hook tables are cleared alongside).
func (p *Pool) Reset() {
	p.saf.reset()
	p.tf.reset()
	p.sof.reset()
	p.drf.reset()
	p.af.reset()
	p.cfin.reset()
	p.cfid.reset()
	p.cfst.reset()
	p.bf.reset()
	p.snpsf.reset()
	p.anpsf.reset()
}

func (p *Pool) newSAF() *safHook {
	if p == nil {
		return new(safHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.saf.get()
}

func (p *Pool) newTF() *tfHook {
	if p == nil {
		return new(tfHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.tf.get()
}

func (p *Pool) newSOF() *sofHook {
	if p == nil {
		return new(sofHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.sof.get()
}

func (p *Pool) newDRF() *drfHook {
	if p == nil {
		return new(drfHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.drf.get()
}

func (p *Pool) newAF() *afHook {
	if p == nil {
		return new(afHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.af.get()
}

func (p *Pool) newCFin() *cfinHook {
	if p == nil {
		return new(cfinHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.cfin.get()
}

func (p *Pool) newCFid() *cfidHook {
	if p == nil {
		return new(cfidHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.cfid.get()
}

func (p *Pool) newCFst() *cfstHook {
	if p == nil {
		return new(cfstHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.cfst.get()
}

func (p *Pool) newBF() *bfHook {
	if p == nil {
		return new(bfHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.bf.get()
}

func (p *Pool) newSNPSF() *snpsfHook {
	if p == nil {
		return new(snpsfHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.snpsf.get()
}

func (p *Pool) newANPSF() *anpsfHook {
	if p == nil {
		return new(anpsfHook) //faultsim:alloc-ok nil-pool fallback: unpooled injection allocates by design
	}
	return p.anpsf.get()
}
