// Package core is the entry point to the paper's primary contribution.
//
// The pseudo-ring testing engine itself lives in the sibling packages
// (kept separate so each subsystem has a focused API):
//
//   - repro/internal/prt — π-test iterations, schemes, trajectories,
//     bit-sliced lane automatons, the dual-port Fig. 2 executor
//   - repro/internal/lfsr — the virtual linear/affine automaton models
//   - repro/internal/gf, repro/internal/gf2 — the Galois-field tower
//   - repro/internal/bist — the hardware budget and controller FSM
//
// core re-exports the user-facing types so downstream code can depend
// on a single import, and bundles the canonical constructors.
package core

import (
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/prt"
	"repro/internal/ram"
)

// Config is a π-test iteration configuration.
type Config = prt.Config

// Scheme is a multi-iteration PRT experiment.
type Scheme = prt.Scheme

// IterationResult reports one π-iteration.
type IterationResult = prt.IterationResult

// SchemeResult reports a full scheme run.
type SchemeResult = prt.SchemeResult

// Trajectory is the cell visit order.
type Trajectory = prt.Trajectory

// Trajectory values.
const (
	Ascending  = prt.Ascending
	Descending = prt.Descending
	Random     = prt.Random
)

// Memory is the RAM model under test.
type Memory = ram.Memory

// DefaultWOMScheme returns the production 3-iteration scheme for an
// m-bit word-oriented memory, built on the two-term generator
// g(x) = 1 + 2x + 2x² over GF(2^m) with the repository default modulus
// (for m = 4 this is exactly the paper's worked example).
func DefaultWOMScheme(m int) Scheme {
	f := gf.NewField(m)
	a := gf.Elem(2) % (f.Mask() + 1)
	if m == 1 {
		return prt.StandardScheme3(prt.PaperBOMConfig().Gen)
	}
	g := lfsr.MustGenPoly(f, []gf.Elem{1, a, a})
	return prt.StandardScheme3(g)
}

// DefaultBOMScheme returns the 3-iteration scheme for a bit-oriented
// memory (g(x) = 1 + x + x² over GF(2)).
func DefaultBOMScheme() Scheme {
	return prt.StandardScheme3(prt.PaperBOMConfig().Gen)
}

// SelfTest runs the default scheme matching the memory's width and
// reports whether the memory passed (no fault detected).
func SelfTest(mem Memory) (pass bool, err error) {
	var s Scheme
	if mem.Width() == 1 {
		s = DefaultBOMScheme()
	} else {
		s = DefaultWOMScheme(mem.Width())
	}
	r, err := s.Run(mem)
	if err != nil {
		return false, err
	}
	return !r.Detected, nil
}
