// This file's header carries the marker, so every function below is in
// scope without a per-function comment.
//
//faultsim:hotpath

package a

func fileScoped(n int) []int {
	return make([]int, n) // want `hotpath: make allocates`
}

func fileScopedClean(dst, src []int) int {
	return copy(dst, src)
}
