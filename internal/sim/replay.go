package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/ram"
)

// ReplayBatch simulates up to 64 faults against the trace in one
// bit-parallel pass and returns the detection mask: bit l is set when
// machine l (fault faults[l]) produced at least one checked read
// diverging from the recorded fault-free value, or reached a signature
// observer's compare point with a nonzero accumulated difference.  The
// pass stops early once every machine of the batch has detected.
//
// This is the per-batch interpreter: it decodes Trace.Ops as recorded
// and rebuilds the machine array per call.  The compiled pipeline
// (Compile + Arena + Program.Replay) is the allocation-free fast path;
// the kernels are property-tested batch-for-batch against this
// function, which stays as the readable reference.
func ReplayBatch(tr *Trace, faults []fault.Fault) (uint64, error) {
	if len(faults) == 0 {
		return 0, nil
	}
	if !tr.Replayable() {
		return 0, fmt.Errorf("sim: trace has no checked reads — the runner does not annotate for replay")
	}
	arr := NewArray(tr)
	if err := arr.Inject(faults); err != nil {
		return 0, err
	}

	full := ^uint64(0)
	if len(faults) < 64 {
		full = uint64(1)<<uint(len(faults)) - 1
	}

	// Ring of recent read lanes for affine recurrence writes: slot
	// (reads-back) mod len holds the back-th most recent read.
	var history [][]uint64
	if tr.MaxBack > 0 {
		history = make([][]uint64, tr.MaxBack)
		for i := range history {
			history[i] = make([]uint64, tr.Width)
		}
	}
	data := make([]uint64, tr.Width) // scratch for write lanes

	// Signature observers: accs[id] holds the per-lane faulty-minus-
	// clean accumulator difference, one lane word per accumulator bit.
	accs := make([][]uint64, len(tr.Observers))
	var accScratch []uint64
	for id, bits := range tr.Observers {
		accs[id] = make([]uint64, bits)
		if bits > len(accScratch) {
			accScratch = make([]uint64, bits)
		}
	}
	diff := make([]uint64, tr.Width) // scratch for fold differences

	var detected uint64
	reads := 0
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Kind == OpObserve {
			// Compare point: a machine whose accumulated signature
			// difference is nonzero diverges from the prediction.
			if op.Addr < 0 || op.Addr >= len(accs) {
				return 0, fmt.Errorf("sim: observe of unknown observer %d", op.Addr)
			}
			var d uint64
			for _, w := range accs[op.Addr] {
				d |= w
			}
			detected |= d & full
			if detected == full {
				break
			}
			continue
		}
		if op.Kind == ram.OpRead {
			val := arr.read(op.Addr)
			if history != nil {
				copy(history[reads%len(history)], val)
			}
			reads++
			if f := op.Fold; f != nil {
				if f.Obs < 0 || f.Obs >= len(accs) || len(accs[f.Obs]) != len(f.Step) {
					return 0, fmt.Errorf("sim: fold into unregistered observer %d", f.Obs)
				}
				for b := 0; b < tr.Width; b++ {
					var clean uint64
					if op.Data>>uint(b)&1 == 1 {
						clean = ^uint64(0)
					}
					diff[b] = val[b] ^ clean
				}
				acc := accs[f.Obs]
				for r := range acc {
					var nv uint64
					for m := f.Step[r]; m != 0; m &= m - 1 {
						nv ^= acc[bits.TrailingZeros32(m)]
					}
					for m := f.Tap[r]; m != 0; m &= m - 1 {
						nv ^= diff[bits.TrailingZeros32(m)]
					}
					accScratch[r] = nv
				}
				copy(acc, accScratch[:len(acc)])
			}
			if op.Checked {
				var d uint64
				for b := 0; b < tr.Width; b++ {
					var clean uint64
					if op.Data>>uint(b)&1 == 1 {
						clean = ^uint64(0)
					}
					d |= val[b] ^ clean
				}
				detected |= d & full
				if detected == full {
					break // every machine of the batch has detected
				}
			}
			continue
		}
		// Write: broadcast the literal clean value, or recompute the
		// affine recurrence from each machine's own earlier reads so
		// stored errors keep propagating exactly as in a real faulty
		// machine.
		if op.Lin == nil {
			for b := 0; b < tr.Width; b++ {
				if op.Data>>uint(b)&1 == 1 {
					data[b] = ^uint64(0)
				} else {
					data[b] = 0
				}
			}
		} else {
			lin := op.Lin
			for b := 0; b < tr.Width; b++ {
				if lin.Offset>>uint(b)&1 == 1 {
					data[b] = ^uint64(0)
				} else {
					data[b] = 0
				}
			}
			for j, back := range lin.Back {
				if back > reads {
					return 0, fmt.Errorf("sim: linear write references read %d back but only %d reads recorded", back, reads)
				}
				src := history[(reads-back)%len(history)]
				for r, rowMask := range lin.Rows[j] {
					for rm := rowMask; rm != 0; rm &= rm - 1 {
						data[r] ^= src[bits.TrailingZeros32(rm)]
					}
				}
			}
		}
		arr.write(op.Addr, data)
	}
	return detected & full, nil
}
