package ram

// TraceAnnotator is implemented by instrumented memories (the trace
// recorder of package sim) that capture an operation stream for later
// bit-parallel replay.  Test executors that know the semantics of
// their own operations call the annotation helpers below after each
// operation; on a plain Memory the helpers are no-ops, so executors
// behave identically whether or not they run instrumented.
//
// Two properties of an op stream matter for replay:
//
//   - which reads are *checked*, i.e. compared by the algorithm
//     against its fault-free expected value (a March rD op, a PRT
//     signature/verify/stale read).  On a fault-free memory the
//     expected value always equals the recorded clean read value, so a
//     replayed machine is detected exactly when one of its checked
//     reads diverges from the recorded value.
//   - how write data derives from earlier reads.  March stimuli are
//     literal (data-independent), but the π-test recurrence writes a
//     GF(2)-affine combination of the k preceding reads; replaying the
//     literal clean value would sever the error propagation that makes
//     pseudo-ring testing work.  AnnotateLinear captures the exact
//     affine map so the replay can recompute each faulty machine's
//     write from that machine's own (possibly corrupted) reads.
//   - which reads feed a *signature observer* (a MISR or serial
//     signature register) instead of a per-read comparator.  The
//     observer is a GF(2)-linear accumulator: each fold applies a
//     linear step to the accumulator and XORs in a linear map of the
//     read word, and a compare point tests the accumulator against the
//     algorithm's prediction.  Because the fold is affine, the
//     faulty-minus-clean accumulator difference evolves linearly in
//     the read differences, so replay reproduces signature aliasing
//     exactly: a machine detects at a compare point iff its
//     accumulated difference is nonzero — multi-error patterns that
//     cancel in the register escape, just as in hardware.
type TraceAnnotator interface {
	// AnnotateChecked marks the most recent read as compared against
	// its fault-free expected value.
	AnnotateChecked()
	// AnnotateLinear marks the most recent write as the GF(2)-affine
	// function of earlier reads:
	//
	//	bit r of data = bit r of offset XOR
	//	    XOR_{j, s : rows[j][r] has bit s set} (bit s of read_j)
	//
	// where read_j is the back[j]-th most recent read (back distances
	// are 1-based: back = 1 is the read immediately preceding the
	// write).  back and rows are parallel; the callee copies both.
	AnnotateLinear(back []int, rows [][]uint32, offset Word)
	// AnnotateFold marks the most recent read as folded into signature
	// observer obs (a small caller-chosen id):
	//
	//	acc ← step·acc ⊕ tap·read
	//
	// where step is the square GF(2) matrix applied to the accumulator
	// (bit s of step[r] set when accumulator bit s feeds new bit r —
	// the α-multiply of a MISR) and tap maps the read word's bits into
	// the fold (bit s of tap[r] set when read bit s feeds accumulator
	// bit r).  step and tap are parallel (one row per accumulator bit,
	// 1–32 bits); the callee copies both.  All folds into one observer
	// must agree on the accumulator width.
	AnnotateFold(obs int, step, tap []uint32)
	// AnnotateObserved marks a compare point for observer obs: the
	// algorithm compares the accumulator against its fault-free
	// prediction here.  On a clean run the prediction equals the
	// accumulated clean signature, so a replayed machine is detected
	// at the compare point exactly when its accumulator diverges.
	AnnotateObserved(obs int)
}

// AnnotateChecked marks the last read on mem as checked when mem
// records a trace; otherwise it is a no-op.
func AnnotateChecked(mem Memory) {
	if a, ok := mem.(TraceAnnotator); ok {
		a.AnnotateChecked()
	}
}

// AnnotateLinear marks the last write on mem as an affine function of
// earlier reads when mem records a trace; otherwise it is a no-op.
func AnnotateLinear(mem Memory, back []int, rows [][]uint32, offset Word) {
	if a, ok := mem.(TraceAnnotator); ok {
		a.AnnotateLinear(back, rows, offset)
	}
}

// AnnotateFold marks the last read on mem as folded into signature
// observer obs when mem records a trace; otherwise it is a no-op.
func AnnotateFold(mem Memory, obs int, step, tap []uint32) {
	if a, ok := mem.(TraceAnnotator); ok {
		a.AnnotateFold(obs, step, tap)
	}
}

// AnnotateObserved marks a compare point for observer obs when mem
// records a trace; otherwise it is a no-op.
func AnnotateObserved(mem Memory, obs int) {
	if a, ok := mem.(TraceAnnotator); ok {
		a.AnnotateObserved(obs)
	}
}
