package gf2

import (
	"testing"
	"testing/quick"
)

func TestStringKnown(t *testing.T) {
	cases := map[Poly]string{
		0:    "0",
		1:    "1",
		2:    "z",
		3:    "1 + z",
		0x13: "1 + z + z^4",
		0x25: "1 + z^2 + z^5",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("String(%#x) = %q, want %q", uint64(p), got, want)
		}
	}
}

func TestFormatIndeterminate(t *testing.T) {
	if got := Poly(0x7).Format("x"); got != "1 + x + x^2" {
		t.Errorf("Format = %q", got)
	}
}

func TestParseForms(t *testing.T) {
	cases := map[string]Poly{
		"1+z+z^4":       0x13,
		"1 + z + z^4":   0x13,
		"z^4 + z + 1":   0x13,
		"1+x+x^4":       0x13,
		"0x13":          0x13,
		"19":            19,
		"0b10011":       0x13,
		"z":             2,
		"1":             1,
		"z^2":           4,
		"z + z":         0, // duplicate terms cancel (GF(2))
		"1 + z + z + 1": 0,
	}
	for s, want := range cases {
		got, err := Parse(s)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("Parse(%q) = %#x, want %#x", s, uint64(got), uint64(want))
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "  ", "1++z", "z^", "z^-1", "2z", "z^99", "^4", "q4"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("not a poly")
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		p := Poly(a)
		q, err := Parse(p.String())
		return err == nil && q == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
