// Package ctxflow defines an analyzer enforcing the repo's
// context.Context discipline: cancellation is cooperative and flows
// caller-to-callee through every shard driver and session executor, so
// a context must be a first parameter, must not hide in struct fields
// or package variables (except the audited ambient-default hooks), and
// must never be silently replaced by a fresh context.Background().
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/faultsim"
)

const doc = `enforce context.Context flow discipline

Reported everywhere (no scope marker needed):
  - a context.Context parameter that is not the first parameter;
  - a struct field or package-level variable whose type mentions
    context.Context (storing a context detaches it from the caller's
    cancellation), unless waived with "//faultsim:ambient <why>" —
    reserved for the audited ambient-default hooks;
  - context.Background()/context.TODO() outside package main and
    _test.go files (library code must receive its context), unless
    waived with "//faultsim:ambient <why>";
  - context.Background()/context.TODO() inside any function that
    already has a context parameter, anywhere including main and
    tests: the caller's context must flow, not a fresh one.`

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	info := faultsim.Collect(pass)
	for _, f := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				checkGenDecl(pass, info, d)
			case *ast.FuncDecl:
				checkSignature(pass, d.Type)
				if d.Body != nil {
					checkBody(pass, info, d, isTest)
				}
			}
		}
	}
	return nil, nil
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// mentionsCtx reports whether the type expression syntactically
// references context.Context anywhere — catching both plain fields and
// wrappers like atomic.Pointer[context.Context].
func mentionsCtx(pass *analysis.Pass, e ast.Expr) (token.Pos, bool) {
	var at token.Pos
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Context" {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "context" {
			at, found = sel.Pos(), true
			return false
		}
		return true
	})
	return at, found
}

// checkGenDecl flags struct fields and package-level variables whose
// type mentions context.Context.
func checkGenDecl(pass *analysis.Pass, info *faultsim.Info, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			st, ok := s.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				if pos, ok := mentionsCtx(pass, field.Type); ok {
					info.Report(pass, pos, faultsim.Ambient,
						"ctxflow: struct field stores a context.Context; contexts must flow through call parameters")
				}
			}
		case *ast.ValueSpec:
			if d.Tok != token.VAR {
				continue
			}
			if s.Type != nil {
				if pos, ok := mentionsCtx(pass, s.Type); ok {
					info.Report(pass, pos, faultsim.Ambient,
						"ctxflow: package variable stores a context.Context; contexts must flow through call parameters")
					continue
				}
			}
		}
	}
}

// checkSignature flags a context.Context parameter that is not first.
func checkSignature(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	flat := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		t := pass.TypesInfo.TypeOf(field.Type)
		if t != nil && isCtxType(t) && flat > 0 {
			pass.Reportf(field.Type.Pos(), "ctxflow: context.Context must be the first parameter")
		}
		flat += n
	}
}

// hasCtxParam reports whether the function type declares a
// context.Context parameter.
func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t != nil && isCtxType(t) {
			return true
		}
	}
	return false
}

// checkBody walks one declared function, tracking nested function
// literals: Background/TODO calls are resolved against the innermost
// function's signature, and literals are also checked for misplaced
// context parameters.
func checkBody(pass *analysis.Pass, info *faultsim.Info, d *ast.FuncDecl, isTest bool) {
	isMain := pass.Pkg.Name() == "main"
	// ctxStack[len-1] tells whether the innermost enclosing function
	// has a context parameter.
	ctxStack := []bool{hasCtxParam(pass, d.Type)}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkSignature(pass, n.Type)
			ctxStack = append(ctxStack, hasCtxParam(pass, n.Type))
			ast.Inspect(n.Body, walk)
			ctxStack = ctxStack[:len(ctxStack)-1]
			return false
		case *ast.CallExpr:
			fn := callee(pass, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			if name := fn.Name(); name == "Background" || name == "TODO" {
				inCtxFunc := ctxStack[len(ctxStack)-1]
				if inCtxFunc {
					info.Report(pass, n.Pos(), faultsim.Ambient,
						"ctxflow: context.%s inside a function with a context parameter; pass the caller's context", name)
				} else if !isMain && !isTest {
					info.Report(pass, n.Pos(), faultsim.Ambient,
						"ctxflow: context.%s outside main/tests; accept a context from the caller", name)
				}
			}
		}
		return true
	}
	ast.Inspect(d.Body, walk)
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
