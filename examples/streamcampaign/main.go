// Streamcampaign: an exhaustive coupling-fault campaign in bounded
// memory.  The fault universe — every ordered aggressor→victim cell
// pair of a 256-cell bit-oriented RAM expanded into the full 12-fault
// coupling sub-type set, 783,360 instances — is never materialized:
// fault.FullCouplingSource generates it chunk by chunk and the
// streaming campaign engine (coverage.CampaignStream) retires each
// chunk before pulling the next, so resident fault storage is
// O(chunk × workers) however large the universe.  The reported escape
// counts are exact, not sampled estimates (experiment E17 scales the
// same comparison to millions of instances: faultcov -exp e17
// -exhaustive-cf).
package main

import (
	"fmt"

	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
)

func main() {
	const n, chunk = 256, 4096
	src := fault.FullCouplingSource(n)
	count, _ := src.Count()
	fmt.Printf("exhaustive CF universe: n=%d → %d fault instances, streamed in %d-fault chunks\n",
		n, count, chunk)
	mk := func() ram.Memory { return ram.NewBOM(n) }
	for _, r := range []coverage.Runner{
		coverage.PRTRunner(prt.StandardScheme3(prt.PaperBOMConfig().Gen)),
		coverage.MarchRunner(march.MarchCMinus(), nil),
	} {
		res := coverage.CampaignStream(r, &fault.Stream{Name: "cf-exhaustive", Source: src}, mk, 0, chunk)
		fmt.Printf("%-8s detected %d/%d (%.2f%%) — exact escapes: %d\n",
			r.Name(), res.Detected, res.Total, 100*res.Coverage(), res.Total-res.Detected)
	}
}
