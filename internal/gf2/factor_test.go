package gf2

import (
	"testing"
	"testing/quick"
)

func reassemble(factors []Poly, mults []int) Poly {
	p := One
	for i, f := range factors {
		for e := 0; e < mults[i]; e++ {
			p = p.Mul(f)
		}
	}
	return p
}

func TestFactorKnown(t *testing.T) {
	cases := []struct {
		p       Poly
		factors []Poly
		mults   []int
	}{
		{0x13, []Poly{0x13}, []int{1}},                      // irreducible
		{0x15, []Poly{0x7}, []int{2}},                       // (x^2+x+1)^2
		{0x6, []Poly{X, 0x3}, []int{1, 1}},                  // x(x+1)
		{0x9, []Poly{0x3, 0x7}, []int{1, 1}},                // (x+1)(x^2+x+1)
		{0x11, []Poly{0x3}, []int{4}},                       // (x+1)^4
		{Poly(0xB).Mul(0xD), []Poly{0xB, 0xD}, []int{1, 1}}, // two cubics
	}
	for _, c := range cases {
		fs, ms := Factor(c.p)
		if len(fs) != len(c.factors) {
			t.Errorf("Factor(%#x) = %v/%v, want %v/%v", uint64(c.p), fs, ms, c.factors, c.mults)
			continue
		}
		for i := range fs {
			if fs[i] != c.factors[i] || ms[i] != c.mults[i] {
				t.Errorf("Factor(%#x) = %v^%v, want %v^%v", uint64(c.p), fs, ms, c.factors, c.mults)
			}
		}
	}
}

func TestFactorExhaustiveSmall(t *testing.T) {
	// Every polynomial of degree 1..12 must reassemble from its factors,
	// and every factor must be irreducible.
	for p := Poly(2); p < 1<<13; p++ {
		fs, ms := Factor(p)
		if got := reassemble(fs, ms); got != p {
			t.Fatalf("Factor(%#x) does not reassemble: %v^%v -> %#x", uint64(p), fs, ms, uint64(got))
		}
		for _, f := range fs {
			if !IsIrreducible(f) {
				t.Fatalf("Factor(%#x) produced reducible factor %v", uint64(p), f)
			}
		}
	}
}

func TestFactorUnitAndZero(t *testing.T) {
	fs, ms := Factor(1)
	if len(fs) != 0 || len(ms) != 0 {
		t.Errorf("Factor(1) = %v^%v", fs, ms)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Factor(0) did not panic")
		}
	}()
	Factor(0)
}

func TestSqrt(t *testing.T) {
	for _, p := range []Poly{0x7, 0x13, 0xB5} {
		sq := p.Mul(p)
		if got := sqrt(sq); got != p {
			t.Errorf("sqrt(%v^2) = %v", p, got)
		}
	}
}

func TestOrderAnyIrreducibleAgrees(t *testing.T) {
	for _, p := range []Poly{0x7, 0xB, 0x13, 0x11B, 0x11D} {
		if OrderAny(p) != Order(p) {
			t.Errorf("OrderAny(%#x) = %d, Order = %d", uint64(p), OrderAny(p), Order(p))
		}
	}
}

func TestOrderAnyBruteForce(t *testing.T) {
	// Compare with direct computation x^e mod p for every p of degree
	// 2..9 with nonzero constant term.
	for p := Poly(5); p < 1<<10; p += 1 {
		if p.Coeff(0) == 0 || p.Deg() < 2 {
			continue
		}
		want := bruteOrder(p)
		if got := OrderAny(p); got != want {
			t.Fatalf("OrderAny(%#x) = %d, brute force %d", uint64(p), got, want)
		}
	}
}

func bruteOrder(p Poly) uint64 {
	v := X.Mod(p)
	e := uint64(1)
	for v != One {
		v = MulMod(v, X, p)
		e++
		if e > 1<<16 {
			panic("brute order runaway")
		}
	}
	return e
}

func TestOrderAnyComposite(t *testing.T) {
	// (x^2+x+1)(x^3+x+1): lcm(3,7) = 21.
	if got := OrderAny(Poly(0x7).Mul(0xB)); got != 21 {
		t.Errorf("order of product = %d, want 21", got)
	}
	// (x^2+x+1)^2: 3 * 2 = 6.
	if got := OrderAny(0x15); got != 6 {
		t.Errorf("order of square = %d, want 6", got)
	}
	// (x+1)^3: order of (x+1) is 1; multiplicity 3 -> 2^2 = 4.
	p := Poly(3).Mul(3).Mul(3)
	if got := OrderAny(p); got != 4 {
		t.Errorf("order of (x+1)^3 = %d, want 4", got)
	}
}

func TestOrderAnyPanics(t *testing.T) {
	for _, p := range []Poly{0x6, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("OrderAny(%#x) should panic", uint64(p))
				}
			}()
			OrderAny(p)
		}()
	}
}

func TestQuickFactorRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		p := Poly(a)
		if p == 0 {
			return true
		}
		fs, ms := Factor(p)
		return reassemble(fs, ms) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
