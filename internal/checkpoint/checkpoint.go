// The checkpoint format and its durable writer.  Encoding is
// deterministic (identical states must encode to identical bytes — the
// resume property tests diff final checkpoint files), and the write
// path is durable (fsync/close/rename errors are load-bearing).
//
//faultsim:deterministic
//faultsim:durable

package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
)

// magic identifies a checkpoint file; version gates the layout.  Bump
// the version on any layout change — Decode refuses other versions
// rather than misparsing them.
const (
	magic   = "FCKP"
	version = 2 // v2 added the partition range (PartitionLo/PartitionHi)
)

// castagnoli is the CRC-32C table used for the trailer checksum (the
// same polynomial storage systems use; hardware-accelerated on amd64
// and arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a checkpoint file whose bytes fail validation —
// truncated, bit-flipped (checksum mismatch), or structurally
// malformed.  A corrupt checkpoint is unusable but never fatal to a
// fresh run; callers should surface the error and refuse to resume.
var ErrCorrupt = errors.New("checkpoint: corrupt or truncated file")

// ErrVersion reports a checkpoint written by an incompatible layout
// version.
var ErrVersion = errors.New("checkpoint: unsupported format version")

// ClassTally is a per-fault-class (total, detected) pair.  Class is
// the fault.Class enum value; tallies are kept sorted by class so
// encoding is deterministic.
type ClassTally struct {
	Class    int32
	Total    int64
	Detected int64
}

// StageRecord is one session stage's accumulated outcome — complete
// for records under State.Done, partial (the contiguous prefix below
// State.HighWater) for State.Cur.
type StageRecord struct {
	// Runner is the stage's display name; RunnerIndex its position in
	// the plan's runner slice.
	Runner      string
	RunnerIndex int32
	// Entered counts the faults presented to the stage (post drop
	// filter), Detected how many it caught, Survivors the cumulative
	// undetected universe faults after the stage (meaningful for Done
	// records only).
	Entered   int64
	Detected  int64
	Survivors int64
	// ByClass is the stage's per-class presentation/detection tally,
	// sorted by class.
	ByClass []ClassTally
}

// State is a streaming campaign session's durable snapshot: everything
// needed to reconstruct the session's completed-stage results and
// fast-forward the in-flight stage to a consistent cut.  The cut
// invariant: every universe index below HighWater of the current stage
// has been fully accounted (tallies and detection bits), and no index
// at or above it has — the streaming executor folds chunk verdicts in
// contiguous order when checkpointing, so an interrupt never leaves a
// torn state.
//
// A State carries no timestamps: encoding the same campaign state
// always produces the same bytes, so the final checkpoints of an
// interrupted-then-resumed run and an uninterrupted run can be
// compared with a plain file diff.
type State struct {
	// SpecHash fingerprints the campaign specification (universe,
	// runner identities, engine, dropping, order); Seed, Size and Width
	// pin the sampling seed and memory geometry.  Resume refuses any
	// mismatch — a checkpoint is only meaningful against the exact
	// campaign that wrote it.
	SpecHash uint64
	Seed     int64
	Size     int32
	Width    int32
	// PartitionLo/PartitionHi are the universe index range [lo, hi)
	// this state covers when the session ran one partition of a
	// distributed campaign.  An unpartitioned (full-universe) state
	// writes the sentinel (0, -1): any negative PartitionHi means the
	// state spans [0, UniverseN).  Partition states are the inputs of
	// Merge; resume refuses a partition-range mismatch like any other
	// geometry mismatch.
	PartitionLo int64
	PartitionHi int64
	// Label is a human-readable summary of the writing invocation
	// (CLI flags), carried for error messages only — it is not part of
	// the match.
	Label string
	// UniverseN is the enumerated universe size, or -1 before the first
	// executed stage has completed (streaming sources may only estimate
	// their count up front).
	UniverseN int64
	// StageNames is the session's stage execution order (display
	// names); resume validates it against the resuming plan.
	StageNames []string
	// Done holds the completed stages, in execution order.
	Done []StageRecord
	// Cur is the in-flight stage's partial tally and HighWater the
	// universe index of its contiguous completion frontier.  Complete
	// marks a finished session (all stages in Done; Cur is zero).
	Cur       StageRecord
	HighWater int64
	Complete  bool
	// Universe is the per-class (total, detected) tally over the
	// enumerated universe prefix, counting each fault once however many
	// stages saw it; Bits is the cumulative detection bitmap (bit i set
	// = universe fault i detected by some stage), in fault.BitSet word
	// layout.
	Universe []ClassTally
	Bits     []uint64
}

// Hash fingerprints a campaign specification: FNV-1a over the parts,
// length-prefixed so adjacent fields cannot alias.
func Hash(parts ...string) uint64 {
	h := fnv.New64a()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	return h.Sum64()
}

// Matches reports whether the checkpoint was written by a campaign
// with this specification fingerprint, geometry and seed.
func (s *State) Matches(specHash uint64, size, width int, seed int64) bool {
	return s.SpecHash == specHash &&
		s.Size == int32(size) && s.Width == int32(width) && s.Seed == seed
}

// PartitionRange returns the universe index range [lo, hi) this state
// covers.  partitioned is false for a full-universe state (negative
// PartitionHi), in which case the range is [0, UniverseN).
func (s *State) PartitionRange() (lo, hi int64, partitioned bool) {
	if s.PartitionHi >= 0 {
		return s.PartitionLo, s.PartitionHi, true
	}
	return 0, s.UniverseN, false
}

// enc is a little-endian append-only encoder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) bool(v bool) {
	if v {
		e.b = append(e.b, 1)
	} else {
		e.b = append(e.b, 0)
	}
}
func (e *enc) tallies(ts []ClassTally) {
	e.u32(uint32(len(ts)))
	for _, t := range ts {
		e.u32(uint32(t.Class))
		e.i64(t.Total)
		e.i64(t.Detected)
	}
}
func (e *enc) stage(r StageRecord) {
	e.str(r.Runner)
	e.u32(uint32(r.RunnerIndex))
	e.i64(r.Entered)
	e.i64(r.Detected)
	e.i64(r.Survivors)
	e.tallies(r.ByClass)
}

// Encode serializes the state: magic, version, body, CRC-32C trailer
// over everything before it.  Identical states encode to identical
// bytes.
func (s *State) Encode() []byte {
	e := &enc{b: make([]byte, 0, 256+8*len(s.Bits))}
	e.b = append(e.b, magic...)
	e.u32(version)
	e.u64(s.SpecHash)
	e.i64(s.Seed)
	e.u32(uint32(s.Size))
	e.u32(uint32(s.Width))
	e.i64(s.PartitionLo)
	e.i64(s.PartitionHi)
	e.str(s.Label)
	e.i64(s.UniverseN)
	e.u32(uint32(len(s.StageNames)))
	for _, n := range s.StageNames {
		e.str(n)
	}
	e.u32(uint32(len(s.Done)))
	for _, r := range s.Done {
		e.stage(r)
	}
	e.stage(s.Cur)
	e.i64(s.HighWater)
	e.bool(s.Complete)
	e.tallies(s.Universe)
	e.u32(uint32(len(s.Bits)))
	for _, w := range s.Bits {
		e.u64(w)
	}
	e.u32(crc32.Checksum(e.b, castagnoli))
	return e.b
}

// dec is the bounds-checked little-endian reader; any overrun flips
// bad, and every accessor after that returns zero values, so Decode
// can parse optimistically and check once.
type dec struct {
	b   []byte
	pos int
	bad bool
}

func (d *dec) take(n int) []byte {
	if d.bad || n < 0 || d.pos+n > len(d.b) {
		d.bad = true
		return nil
	}
	v := d.b[d.pos : d.pos+n]
	d.pos += n
	return v
}
func (d *dec) u32() uint32 {
	if v := d.take(4); v != nil {
		return binary.LittleEndian.Uint32(v)
	}
	return 0
}
func (d *dec) u64() uint64 {
	if v := d.take(8); v != nil {
		return binary.LittleEndian.Uint64(v)
	}
	return 0
}
func (d *dec) i64() int64 { return int64(d.u64()) }
func (d *dec) str() string {
	n := d.u32()
	if n > math.MaxInt32 {
		d.bad = true
		return ""
	}
	return string(d.take(int(n)))
}
func (d *dec) bool() bool {
	if v := d.take(1); v != nil {
		return v[0] != 0
	}
	return false
}
func (d *dec) count() int {
	n := d.u32()
	// A count cannot exceed the remaining bytes (every element is at
	// least one byte); rejecting here keeps a flipped length field from
	// driving a huge allocation.
	if int64(n) > int64(len(d.b)-d.pos) {
		d.bad = true
		return 0
	}
	return int(n)
}
func (d *dec) tallies() []ClassTally {
	n := d.count()
	if d.bad || n == 0 {
		return nil
	}
	ts := make([]ClassTally, n)
	for i := range ts {
		ts[i] = ClassTally{Class: int32(d.u32()), Total: d.i64(), Detected: d.i64()}
	}
	return ts
}
func (d *dec) stage() StageRecord {
	return StageRecord{
		Runner:      d.str(),
		RunnerIndex: int32(d.u32()),
		Entered:     d.i64(),
		Detected:    d.i64(),
		Survivors:   d.i64(),
		ByClass:     d.tallies(),
	}
}

// Decode parses and validates an encoded state.  The checksum is
// verified first, so any truncation or bit flip anywhere in the file
// surfaces as ErrCorrupt before a single field is trusted.
func Decode(b []byte) (*State, error) {
	if len(b) < len(magic)+8 || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	body, trailer := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &dec{b: body, pos: len(magic)}
	if v := d.u32(); v != version {
		return nil, fmt.Errorf("%w: file version %d, this build reads %d", ErrVersion, v, version)
	}
	s := &State{
		SpecHash:    d.u64(),
		Seed:        d.i64(),
		Size:        int32(d.u32()),
		Width:       int32(d.u32()),
		PartitionLo: d.i64(),
		PartitionHi: d.i64(),
		Label:       d.str(),
	}
	s.UniverseN = d.i64()
	if n := d.count(); !d.bad {
		s.StageNames = make([]string, n)
		for i := range s.StageNames {
			s.StageNames[i] = d.str()
		}
	}
	if n := d.count(); !d.bad && n > 0 {
		s.Done = make([]StageRecord, n)
		for i := range s.Done {
			s.Done[i] = d.stage()
		}
	}
	s.Cur = d.stage()
	s.HighWater = d.i64()
	s.Complete = d.bool()
	s.Universe = d.tallies()
	if n := d.count(); !d.bad && n > 0 {
		s.Bits = make([]uint64, n)
		for i := range s.Bits {
			s.Bits[i] = d.u64()
		}
	}
	if d.bad || d.pos != len(body) {
		return nil, fmt.Errorf("%w: malformed body", ErrCorrupt)
	}
	return s, nil
}

// WriteAtomic durably replaces path with the encoded state: the bytes
// go to a temp file in the same directory, are fsynced, and renamed
// over path, so a crash at any instant leaves either the previous
// checkpoint or the new one — never a torn file.  The directory entry
// is then fsynced as well, and every error on that chain is returned:
// checkpointing was explicitly requested, and a dropped fsync error
// would let the caller believe a cut is durable when the kernel may
// still lose the rename in a crash.
func WriteAtomic(path string, s *State) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(s.Encode())
	if werr == nil {
		werr = tmp.Sync()
	}
	// Close after a failed write/sync can only add detail, never mask:
	// the first error of the chain is the one reported.
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("checkpoint: %w", werr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Durability contract: the rename above is durable only once the
	// containing directory's entry is on stable storage.  A failure
	// anywhere on this path is a real durability loss — the previous
	// checkpoint may reappear after a crash — so it is returned, not
	// logged and forgotten; the campaign is still resumable from the
	// last checkpoint that succeeded.
	df, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir for fsync: %w", err)
	}
	serr := df.Sync()
	cerr := df.Close()
	if serr != nil {
		return fmt.Errorf("checkpoint: fsync dir after rename: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("checkpoint: close dir: %w", cerr)
	}
	return nil
}

// Load reads and decodes the checkpoint at path.
func Load(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return s, nil
}
