// Neighborhood pattern-sensitive fault universes: enumeration order is
// part of the checkpoint contract.
//
//faultsim:deterministic

package fault

import (
	"fmt"

	"repro/internal/ram"
)

// Neighbourhood pattern sensitive faults (NPSF) complete the van de
// Goor taxonomy: the base cell misbehaves when its physical
// neighbourhood (the von Neumann cross N/E/S/W on the cell grid) holds
// a specific pattern.  The memory's physical geometry is modelled as a
// row-major grid of the given width.
//
// Two sub-types are implemented, both on bit 0 of the cells (NPSF is a
// bit-array concept; word-oriented arrays interleave bits so logical
// neighbours differ per bit — the universes below stay bit-oriented as
// in the classical literature):
//
//   - SNPSF (static): while the neighbourhood matches the pattern,
//     reads of the base cell return Value.
//   - ANPSF (active): a watched transition of one neighbour, while the
//     remaining three match the pattern, forces the base cell to Value.

// Neighbourhood is the four von Neumann neighbours of a base cell on a
// row-major grid; entries are -1 when outside the array (edge cells).
type Neighbourhood struct {
	Base       int
	N, E, S, W int
}

// GridNeighbourhood computes the neighbourhood of base on a grid of
// the given width (cells laid out row-major).
func GridNeighbourhood(base, n, width int) Neighbourhood {
	if width < 1 {
		panic("fault: grid width must be positive")
	}
	row, col := base/width, base%width
	nb := Neighbourhood{Base: base, N: -1, E: -1, S: -1, W: -1}
	if row > 0 {
		nb.N = base - width
	}
	if base+width < n {
		nb.S = base + width
	}
	if col > 0 {
		nb.W = base - 1
	}
	if col < width-1 && base+1 < n {
		nb.E = base + 1
	}
	return nb
}

// cells returns the in-array neighbours.
func (nb Neighbourhood) cells() []int {
	var out []int
	for _, c := range []int{nb.N, nb.E, nb.S, nb.W} {
		if c >= 0 {
			out = append(out, c)
		}
	}
	return out
}

// Complete reports whether all four neighbours exist (interior cell).
func (nb Neighbourhood) Complete() bool {
	return nb.N >= 0 && nb.E >= 0 && nb.S >= 0 && nb.W >= 0
}

// SNPSF is a static neighbourhood pattern sensitive fault: while the
// four neighbours' bit 0 match Pattern (bit i of Pattern = required
// value of the i-th neighbour in N,E,S,W order), reads of the base
// cell's bit 0 return Value.
type SNPSF struct {
	Nb      Neighbourhood
	Pattern ram.Word // 4 bits, N=bit0 E=bit1 S=bit2 W=bit3
	Value   ram.Word
}

// Class implements Fault (reported as its own class).
func (f SNPSF) Class() Class { return ClassNPSF }

func (f SNPSF) String() string {
	return fmt.Sprintf("SNPSF<%04b;%d>@c%d", uint32(f.Pattern), f.Value&1, f.Nb.Base)
}

// Inject implements Fault.
func (f SNPSF) Inject(base ram.Memory) ram.Memory {
	return &snpsfMem{Memory: base, f: f}
}

type snpsfMem struct {
	ram.Memory
	f SNPSF
}

func (m *snpsfMem) patternActive() bool {
	order := []int{m.f.Nb.N, m.f.Nb.E, m.f.Nb.S, m.f.Nb.W}
	for i, c := range order {
		want := m.f.Pattern >> uint(i) & 1
		if c < 0 {
			return false // incomplete neighbourhood never matches
		}
		if m.Memory.Read(c)&1 != want {
			return false
		}
	}
	return true
}

func (m *snpsfMem) Read(addr int) ram.Word {
	v := m.Memory.Read(addr)
	if addr == m.f.Nb.Base && m.patternActive() {
		v = setBit(v, 0, m.f.Value)
	}
	return v
}

// ANPSF is an active neighbourhood pattern sensitive fault: a Up/Down
// transition of bit 0 of the Trigger neighbour (index 0..3 = N,E,S,W),
// while the other three neighbours match Pattern, forces bit 0 of the
// base cell to Value.
type ANPSF struct {
	Nb      Neighbourhood
	Trigger int      // which neighbour transitions (0..3 = N,E,S,W)
	Up      bool     // watched transition direction
	Pattern ram.Word // required values of the other three (same bit layout)
	Value   ram.Word
}

// Class implements Fault.
func (f ANPSF) Class() Class { return ClassNPSF }

func (f ANPSF) String() string {
	return fmt.Sprintf("ANPSF<t%d,%s;%d>@c%d", f.Trigger, arrow(f.Up), f.Value&1, f.Nb.Base)
}

// Inject implements Fault.
func (f ANPSF) Inject(base ram.Memory) ram.Memory {
	return &anpsfMem{Memory: base, f: f}
}

type anpsfMem struct {
	ram.Memory
	f ANPSF
}

func (m *anpsfMem) Write(addr int, v ram.Word) {
	order := []int{m.f.Nb.N, m.f.Nb.E, m.f.Nb.S, m.f.Nb.W}
	trig := order[m.f.Trigger]
	if addr != trig || trig < 0 {
		m.Memory.Write(addr, v)
		return
	}
	old := m.Memory.Read(addr)
	fire := triggered(old&1, v&1, m.f.Up)
	if fire {
		// The other three neighbours must match the pattern.
		for i, c := range order {
			if i == m.f.Trigger {
				continue
			}
			if c < 0 || m.Memory.Read(c)&1 != m.f.Pattern>>uint(i)&1 {
				fire = false
				break
			}
		}
	}
	m.Memory.Write(addr, v)
	if fire {
		b := m.Memory.Read(m.f.Nb.Base)
		m.Memory.Write(m.f.Nb.Base, setBit(b, 0, m.f.Value))
	}
}

// NPSFUniverse enumerates static NPSF faults for every interior cell
// of an n-cell array with the given grid width: all 16 neighbourhood
// patterns × forced values 0/1 would be 32 per cell; to keep campaign
// sizes workable the patterns are subsampled with stride (1 = all).
func NPSFUniverse(n, width, stride int) []Fault {
	return Collect(NPSFSource(n, width, stride))
}

// ANPSFUniverse enumerates active NPSF faults: per interior cell, each
// of the four neighbours as trigger, both directions, with the
// complementary pattern subsampled by stride.
func ANPSFUniverse(n, width, stride int) []Fault {
	return Collect(ANPSFSource(n, width, stride))
}
