package fault

import (
	"testing"
)

func TestCollapseDeduplicatesIdenticalFaults(t *testing.T) {
	faults := []Fault{
		SAF{Cell: 3, Bit: 1, Value: 1},
		TF{Cell: 2, Up: true},
		SAF{Cell: 3, Bit: 1, Value: 1}, // duplicate of 0
		TF{Cell: 2, Up: true},          // duplicate of 1
	}
	col := Collapse(faults, nil)
	if len(col.Reps) != 2 {
		t.Fatalf("got %d representatives, want 2", len(col.Reps))
	}
	want := []int{0, 1, 0, 1}
	for i, r := range col.Map {
		if r != want[i] {
			t.Errorf("Map[%d] = %d, want %d", i, r, want[i])
		}
	}
}

func TestCollapseBridgingSymmetry(t *testing.T) {
	a := BF{CellA: 2, BitA: 1, CellB: 7, BitB: 0, And: true}
	b := BF{CellA: 7, BitA: 0, CellB: 2, BitB: 1, And: true} // mirrored
	c := BF{CellA: 7, BitA: 0, CellB: 2, BitB: 1, And: false}
	col := Collapse([]Fault{a, b, c}, nil)
	if len(col.Reps) != 2 {
		t.Fatalf("got %d representatives, want 2 (mirrored AND-bridges collapse)", len(col.Reps))
	}
	if col.Map[0] != col.Map[1] {
		t.Errorf("mirrored bridges map to distinct reps %d, %d", col.Map[0], col.Map[1])
	}
	if col.Map[2] == col.Map[0] {
		t.Error("AND and OR bridges must stay distinct")
	}
}

func TestCollapseBenignFaults(t *testing.T) {
	edge := GridNeighbourhood(0, 36, 6) // corner: N and W missing
	if edge.Complete() {
		t.Fatal("test premise broken: corner neighbourhood is complete")
	}
	interior := GridNeighbourhood(7, 36, 6)
	faults := []Fault{
		SNPSF{Nb: edge, Pattern: 5, Value: 1},               // never matches
		ANPSF{Nb: edge, Trigger: 0, Up: true, Value: 1},     // trigger missing
		AF{Kind: AFAlias, Addr: 4, Target: 4},               // self-alias = identity
		BF{CellA: 3, BitA: 2, CellB: 3, BitB: 2},            // self-bridge = identity
		SNPSF{Nb: interior, Pattern: 5, Value: 1},           // real
		ANPSF{Nb: interior, Trigger: 0, Up: true, Value: 1}, // real
	}
	col := Collapse(faults, nil)
	if len(col.Reps) != 3 {
		t.Fatalf("got %d representatives, want 3 (one benign class + two real faults)", len(col.Reps))
	}
	benign := col.Map[0]
	for i := 1; i <= 3; i++ {
		if col.Map[i] != benign {
			t.Errorf("fault %d not in the benign class", i)
		}
	}
	if col.Map[4] == benign || col.Map[5] == benign {
		t.Error("interior NPSF faults wrongly classified benign")
	}
}

func TestCollapseSAFPairingUnderSummary(t *testing.T) {
	// Width-1 summary: cell 0 sees both polarities checked, cell 1 only
	// polarity 1, cell 2 none.
	sum := &TraceSummary{Width: 1, Expect: []uint8{0b11, 0b10, 0b00}}
	faults := []Fault{
		SAF{Cell: 0, Value: 0}, SAF{Cell: 0, Value: 1}, // both detected → pair
		SAF{Cell: 1, Value: 0}, SAF{Cell: 1, Value: 1}, // outcomes differ → keep apart
		SAF{Cell: 2, Value: 0}, SAF{Cell: 2, Value: 1}, // both undetected → pair
	}
	col := Collapse(faults, sum)
	if len(col.Reps) != 4 {
		t.Fatalf("got %d representatives, want 4", len(col.Reps))
	}
	if col.Map[0] != col.Map[1] {
		t.Error("SA0/SA1 on a both-polarity bit must collapse")
	}
	if col.Map[2] == col.Map[3] {
		t.Error("SA0/SA1 on a single-polarity bit must stay apart")
	}
	if col.Map[4] != col.Map[5] {
		t.Error("SA0/SA1 on an unchecked bit must collapse")
	}

	// The same universe under an affine trace must not pair at all.
	sum.Affine = true
	if col := Collapse(faults, sum); len(col.Reps) != 6 {
		t.Fatalf("affine trace: got %d representatives, want 6 (SAF rule disabled)", len(col.Reps))
	}
}

func TestCollapseSAFPairingFoldedGate(t *testing.T) {
	// Cell 0: unchecked but feeding a signature observer — SA0 and SA1
	// fold different error patterns and may alias differently, so they
	// must stay split.  Cell 1: both polarities checked AND folded —
	// both are detected by the checked reads whatever the register
	// does, so they still pair.
	sum := &TraceSummary{Width: 1, Expect: []uint8{ExpectFolded, 0b11 | ExpectFolded}}
	faults := []Fault{
		SAF{Cell: 0, Value: 0}, SAF{Cell: 0, Value: 1},
		SAF{Cell: 1, Value: 0}, SAF{Cell: 1, Value: 1},
	}
	col := Collapse(faults, sum)
	if len(col.Reps) != 3 {
		t.Fatalf("got %d representatives, want 3", len(col.Reps))
	}
	if col.Map[0] == col.Map[1] {
		t.Error("SA0/SA1 on a folded unchecked bit must stay apart")
	}
	if col.Map[2] != col.Map[3] {
		t.Error("SA0/SA1 on a both-polarity checked bit must pair even when folded")
	}
}

func TestCollapsedExpand(t *testing.T) {
	col := Collapsed{
		Reps: []Fault{SAF{}, TF{}},
		Map:  []int{0, 1, 0, 1, 1},
	}
	got := col.Expand([]bool{true, false})
	want := []bool{true, false, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Expand[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if col.Saved() != 3 {
		t.Fatalf("Saved = %d, want 3", col.Saved())
	}
}
