// Package gf2 implements arithmetic on polynomials over GF(2), the
// two-element Galois field.
//
// A polynomial is represented by a Poly, a 64-bit unsigned integer in
// which bit i holds the coefficient of x^i.  The zero value is the zero
// polynomial.  This representation caps the degree at 63, which is ample
// for the pseudo-ring-testing reproduction: field moduli p(z) up to
// GF(2^32) and LFSR characteristic polynomials g(x) of small degree.
//
// The package provides ring arithmetic (addition, multiplication,
// Euclidean division, GCD), modular arithmetic (MulMod, PowMod),
// irreducibility and primitivity tests, multiplicative order computation,
// and a table of default irreducible/primitive moduli for each extension
// degree used by the rest of the repository.
package gf2

import "math/bits"

// Poly is a polynomial over GF(2).  Bit i is the coefficient of x^i,
// e.g. Poly(0b10011) is x^4 + x + 1.
type Poly uint64

// Common small polynomials.
const (
	// Zero is the zero polynomial.
	Zero Poly = 0
	// One is the constant polynomial 1.
	One Poly = 1
	// X is the monomial x.
	X Poly = 2
)

// MaxDegree is the largest representable degree.
const MaxDegree = 63

// Deg returns the degree of p.  By convention the degree of the zero
// polynomial is -1.
func (p Poly) Deg() int {
	if p == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(p))
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p == 0 }

// Coeff returns the coefficient of x^i (0 or 1).  Out-of-range indices
// yield 0.
func (p Poly) Coeff(i int) uint {
	if i < 0 || i > MaxDegree {
		return 0
	}
	return uint(p>>uint(i)) & 1
}

// SetCoeff returns a copy of p with the coefficient of x^i set to c&1.
// Out-of-range indices return p unchanged.
func (p Poly) SetCoeff(i int, c uint) Poly {
	if i < 0 || i > MaxDegree {
		return p
	}
	if c&1 == 1 {
		return p | 1<<uint(i)
	}
	return p &^ (1 << uint(i))
}

// Weight returns the number of non-zero coefficients of p.
func (p Poly) Weight() int { return bits.OnesCount64(uint64(p)) }

// Add returns p + q.  Over GF(2), addition and subtraction coincide with
// XOR.
func (p Poly) Add(q Poly) Poly { return p ^ q }

// Sub returns p - q, identical to Add over GF(2).
func (p Poly) Sub(q Poly) Poly { return p ^ q }

// MulX returns p * x^k.  The result must fit in 64 bits; overflowing
// coefficients are silently discarded, so callers multiplying large
// polynomials should bound degrees beforehand.
func (p Poly) MulX(k int) Poly {
	if k <= 0 {
		return p
	}
	if k > MaxDegree {
		return 0
	}
	return p << uint(k)
}

// Mul returns the product p*q.  The degrees must satisfy
// p.Deg()+q.Deg() <= MaxDegree or high coefficients are lost; use MulMod
// for modular products of large operands.
func (p Poly) Mul(q Poly) Poly {
	var r Poly
	a, b := uint64(p), uint64(q)
	for b != 0 {
		if b&1 == 1 {
			r ^= Poly(a)
		}
		a <<= 1
		b >>= 1
	}
	return r
}

// DivMod returns the quotient and remainder of p divided by q.
// It panics if q is the zero polynomial.
func (p Poly) DivMod(q Poly) (quo, rem Poly) {
	if q == 0 {
		panic("gf2: division by zero polynomial")
	}
	dq := q.Deg()
	rem = p
	for rem.Deg() >= dq {
		shift := rem.Deg() - dq
		quo ^= 1 << uint(shift)
		rem ^= q << uint(shift)
	}
	return quo, rem
}

// Mod returns p mod q.
func (p Poly) Mod(q Poly) Poly {
	_, r := p.DivMod(q)
	return r
}

// Div returns the quotient of p divided by q.
func (p Poly) Div(q Poly) Poly {
	d, _ := p.DivMod(q)
	return d
}

// GCD returns the greatest common divisor of p and q.  The result of
// GCD(0,0) is 0.
func GCD(p, q Poly) Poly {
	for q != 0 {
		p, q = q, p.Mod(q)
	}
	return p
}

// MulMod returns p*q mod f without intermediate overflow, provided
// f.Deg() <= 63.  It panics if f is zero.
func MulMod(p, q, f Poly) Poly {
	if f == 0 {
		panic("gf2: MulMod modulus is zero")
	}
	p = p.Mod(f)
	q = q.Mod(f)
	df := f.Deg()
	var r Poly
	for q != 0 {
		if q&1 == 1 {
			r ^= p
		}
		q >>= 1
		p <<= 1
		if p.Deg() == df {
			p ^= f
		}
	}
	return r
}

// PowMod returns p^e mod f using square-and-multiply.
func PowMod(p Poly, e uint64, f Poly) Poly {
	if f == 0 {
		panic("gf2: PowMod modulus is zero")
	}
	r := One.Mod(f)
	base := p.Mod(f)
	for e > 0 {
		if e&1 == 1 {
			r = MulMod(r, base, f)
		}
		base = MulMod(base, base, f)
		e >>= 1
	}
	return r
}

// Derivative returns the formal derivative of p.  Over GF(2) only odd
// powers survive: d/dx x^i = i*x^(i-1) = x^(i-1) when i is odd.
func (p Poly) Derivative() Poly {
	var r Poly
	for i := 1; i <= p.Deg(); i += 2 {
		if p.Coeff(i) == 1 {
			r = r.SetCoeff(i-1, 1)
		}
	}
	return r
}

// Reverse returns the reciprocal polynomial x^deg(p) * p(1/x).
// The reciprocal of an irreducible polynomial is irreducible, and the
// reciprocal of a primitive polynomial is primitive.
func (p Poly) Reverse() Poly {
	d := p.Deg()
	if d <= 0 {
		return p
	}
	var r Poly
	for i := 0; i <= d; i++ {
		if p.Coeff(i) == 1 {
			r = r.SetCoeff(d-i, 1)
		}
	}
	return r
}

// Eval evaluates p at the point v in GF(2) (v taken mod 2).
func (p Poly) Eval(v uint) uint {
	if v&1 == 0 {
		// Only the constant term matters at 0.
		return uint(p) & 1
	}
	// p(1) is the parity of the coefficient weight.
	return uint(p.Weight()) & 1
}
