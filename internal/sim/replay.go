package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/ram"
)

// ReplayBatch simulates up to 64 faults against the trace in one
// bit-parallel pass and returns the detection mask: bit l is set when
// machine l (fault faults[l]) produced at least one checked read
// diverging from the recorded fault-free value.  The pass stops early
// once every machine of the batch has detected.
//
// This is the per-batch interpreter: it decodes Trace.Ops as recorded
// and rebuilds the machine array per call.  The compiled pipeline
// (Compile + Arena + Program.Replay) is the allocation-free fast path;
// the kernels are property-tested batch-for-batch against this
// function, which stays as the readable reference.
func ReplayBatch(tr *Trace, faults []fault.Fault) (uint64, error) {
	if len(faults) == 0 {
		return 0, nil
	}
	if !tr.Replayable() {
		return 0, fmt.Errorf("sim: trace has no checked reads — the runner does not annotate for replay")
	}
	arr := NewArray(tr)
	if err := arr.Inject(faults); err != nil {
		return 0, err
	}

	full := ^uint64(0)
	if len(faults) < 64 {
		full = uint64(1)<<uint(len(faults)) - 1
	}

	// Ring of recent read lanes for affine recurrence writes: slot
	// (reads-back) mod len holds the back-th most recent read.
	var history [][]uint64
	if tr.MaxBack > 0 {
		history = make([][]uint64, tr.MaxBack)
		for i := range history {
			history[i] = make([]uint64, tr.Width)
		}
	}
	data := make([]uint64, tr.Width) // scratch for write lanes

	var detected uint64
	reads := 0
	for i := range tr.Ops {
		op := &tr.Ops[i]
		if op.Kind == ram.OpRead {
			val := arr.read(op.Addr)
			if history != nil {
				copy(history[reads%len(history)], val)
			}
			reads++
			if op.Checked {
				var diff uint64
				for b := 0; b < tr.Width; b++ {
					var clean uint64
					if op.Data>>uint(b)&1 == 1 {
						clean = ^uint64(0)
					}
					diff |= val[b] ^ clean
				}
				detected |= diff & full
				if detected == full {
					break // every machine of the batch has detected
				}
			}
			continue
		}
		// Write: broadcast the literal clean value, or recompute the
		// affine recurrence from each machine's own earlier reads so
		// stored errors keep propagating exactly as in a real faulty
		// machine.
		if op.Lin == nil {
			for b := 0; b < tr.Width; b++ {
				if op.Data>>uint(b)&1 == 1 {
					data[b] = ^uint64(0)
				} else {
					data[b] = 0
				}
			}
		} else {
			lin := op.Lin
			for b := 0; b < tr.Width; b++ {
				if lin.Offset>>uint(b)&1 == 1 {
					data[b] = ^uint64(0)
				} else {
					data[b] = 0
				}
			}
			for j, back := range lin.Back {
				if back > reads {
					return 0, fmt.Errorf("sim: linear write references read %d back but only %d reads recorded", back, reads)
				}
				src := history[(reads-back)%len(history)]
				for r, rowMask := range lin.Rows[j] {
					for rm := rowMask; rm != 0; rm &= rm - 1 {
						data[r] ^= src[bits.TrailingZeros32(rm)]
					}
				}
			}
		}
		arr.write(op.Addr, data)
	}
	return detected & full, nil
}
