package markov

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(nil, nil); err == nil {
		t.Error("empty chain accepted")
	}
	if _, err := NewChain([]string{"a"}, [][]float64{{0.5}}); err == nil {
		t.Error("non-stochastic row accepted")
	}
	if _, err := NewChain([]string{"a", "b"}, [][]float64{{1, 0}}); err == nil {
		t.Error("missing row accepted")
	}
	if _, err := NewChain([]string{"a"}, [][]float64{{1, 0}}); err == nil {
		t.Error("ragged row accepted")
	}
	if _, err := NewChain([]string{"a", "b"}, [][]float64{{1.5, -0.5}, {0, 1}}); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestStepAndDistribution(t *testing.T) {
	// Two-state chain: a->b with prob 1, b absorbing.
	c := MustChain([]string{"a", "b"}, [][]float64{{0, 1}, {0, 1}})
	d := c.Distribution(c.PointMass(0), 1)
	if !almost(d[1], 1) {
		t.Errorf("distribution after 1 step: %v", d)
	}
	if c.Index("b") != 1 || c.Index("zz") != -1 {
		t.Error("Index wrong")
	}
	if !c.IsAbsorbing(1) || c.IsAbsorbing(0) {
		t.Error("absorbing detection wrong")
	}
}

func TestGamblersRuinAbsorption(t *testing.T) {
	// Fair gambler's ruin on {0,1,2,3} with absorbing 0 and 3:
	// from state 1, P(absorb at 3) = 1/3; from 2, 2/3.
	c := MustChain(
		[]string{"0", "1", "2", "3"},
		[][]float64{
			{1, 0, 0, 0},
			{0.5, 0, 0.5, 0},
			{0, 0.5, 0, 0.5},
			{0, 0, 0, 1},
		})
	abs, err := c.AbsorptionProbabilities()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(abs[1][3], 1.0/3) || !almost(abs[1][0], 2.0/3) {
		t.Errorf("from 1: %v", abs[1])
	}
	if !almost(abs[2][3], 2.0/3) {
		t.Errorf("from 2: %v", abs[2])
	}
	// Expected steps: from 1 -> 2 steps, from 2 -> 2 steps.
	steps, err := c.ExpectedStepsToAbsorption()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(steps[1], 2) || !almost(steps[2], 2) {
		t.Errorf("expected steps: %v", steps)
	}
}

func TestAbsorptionNoAbsorbingStates(t *testing.T) {
	c := MustChain([]string{"a", "b"}, [][]float64{{0, 1}, {1, 0}})
	if _, err := c.AbsorptionProbabilities(); err == nil {
		t.Error("chain without absorbing states accepted")
	}
}

func TestInvert(t *testing.T) {
	a := [][]float64{{2, 0}, {0, 4}}
	inv, err := invert(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(inv[0][0], 0.5) || !almost(inv[1][1], 0.25) {
		t.Errorf("inverse wrong: %v", inv)
	}
	if _, err := invert([][]float64{{1, 1}, {1, 1}}); err == nil {
		t.Error("singular matrix inverted")
	}
	// Requires pivoting.
	b := [][]float64{{0, 1}, {1, 0}}
	binv, err := invert(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(binv[0][1], 1) || !almost(binv[1][0], 1) {
		t.Errorf("pivot inverse wrong: %v", binv)
	}
}

// --- PRT model ---

func TestAliasProbability(t *testing.T) {
	if !almost((PRTModel{M: 4, K: 2}).AliasProbability(), 1.0/256) {
		t.Error("alias probability wrong for m=4,k=2")
	}
	if !almost((PRTModel{M: 1, K: 2}).AliasProbability(), 0.25) {
		t.Error("alias probability wrong for m=1,k=2")
	}
}

func TestDetectionProbabilityMonotone(t *testing.T) {
	p := PRTModel{M: 4, K: 2, PExcite: 0.5}
	prev := 0.0
	for it := 1; it <= 10; it++ {
		d, err := p.DetectionProbability(it)
		if err != nil {
			t.Fatal(err)
		}
		if d <= prev {
			t.Errorf("detection not increasing at it=%d: %g <= %g", it, d, prev)
		}
		prev = d
	}
	if prev < 0.99 {
		t.Errorf("10 iterations reach only %g", prev)
	}
}

func TestDetectionProbabilityDeterministicExcitation(t *testing.T) {
	// PExcite=1: after one iteration the fault is detected unless it
	// aliased: P = (1 - 2^-(mk)).
	p := PRTModel{M: 4, K: 2, PExcite: 1}
	d, err := p.DetectionProbability(1)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(d, 1-1.0/256) {
		t.Errorf("one-iteration detection = %g, want %g", d, 1-1.0/256)
	}
}

// TestPaperThreeIterationResolution quantifies the §3 statement: with
// the specific TDB (PExcite=1) the word-oriented automaton reaches
// 0.999999+ detection within 3 iterations.
func TestPaperThreeIterationResolution(t *testing.T) {
	p := PRTModel{M: 4, K: 2, PExcite: 1}
	d, err := p.DetectionProbability(3)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.99999 {
		t.Errorf("3-iteration detection = %g", d)
	}
	it, err := p.IterationsFor(0.999)
	if err != nil || it > 2 {
		t.Errorf("iterations for 0.999 = %d (err %v)", it, err)
	}
	// The bit-oriented automaton (m=1) needs more iterations: its alias
	// probability is 1/4.
	pb := PRTModel{M: 1, K: 2, PExcite: 1}
	itb, err := pb.IterationsFor(0.999)
	if err != nil || itb <= it {
		t.Errorf("BOM iterations = %d should exceed WOM %d", itb, it)
	}
}

func TestEventualDetectionIsOne(t *testing.T) {
	for _, p := range []PRTModel{
		{M: 1, K: 2, PExcite: 0.1},
		{M: 4, K: 2, PExcite: 0.9},
		{M: 8, K: 3, PExcite: 0.5},
	} {
		d, err := p.EventualDetection()
		if err != nil {
			t.Fatal(err)
		}
		if !almost(d, 1) {
			t.Errorf("%+v: eventual detection %g != 1", p, d)
		}
	}
}

func TestPRTModelValidation(t *testing.T) {
	if _, err := (PRTModel{M: 0, K: 2, PExcite: 1}).Chain(); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := (PRTModel{M: 4, K: 2, PExcite: 2}).Chain(); err == nil {
		t.Error("bad probability accepted")
	}
	if _, err := (PRTModel{M: 4, K: 2, PExcite: 0}).IterationsFor(0.9); err == nil {
		t.Error("unreachable target accepted")
	}
}
