package prt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/ram"
)

// TestFig1bWOMIteration reproduces the paper's Figure 1b: the π-test
// iteration writes the TDB 0,1,2,6,8,F,… into a word-oriented memory
// and the signature check passes on a fault-free array.
func TestFig1bWOMIteration(t *testing.T) {
	cfg := PaperWOMConfig()
	mem := ram.NewWOM(32, 4)
	res := MustRunIteration(cfg, mem)
	if res.Detected {
		t.Fatalf("fault-free iteration detected a fault: Fin=%v Fin*=%v", res.Fin, res.FinStar)
	}
	want := []gf.Elem{0, 1, 2, 6, 8, 0xF, 0xE, 2, 0xB, 1}
	for i, w := range want {
		if got := gf.Elem(mem.Read(i)); got != w {
			t.Errorf("cell %d = %X, want %X (Fig. 1b)", i, uint32(got), uint32(w))
		}
	}
}

// TestFig1aBOMIteration reproduces Figure 1a: the bit-oriented
// automaton g(x)=1+x+x² fills the array with the period-3 TDB.
func TestFig1aBOMIteration(t *testing.T) {
	cfg := PaperBOMConfig()
	mem := ram.NewBOM(16)
	res := MustRunIteration(cfg, mem)
	if res.Detected {
		t.Fatalf("fault-free BOM iteration detected a fault")
	}
	// Seed (1,1): TDB = 1,1,0 repeating.
	for i := 0; i < 16; i++ {
		want := ram.Word(1)
		if i%3 == 2 {
			want = 0
		}
		if mem.Read(i) != want {
			t.Errorf("cell %d = %d, want %d", i, mem.Read(i), want)
		}
	}
}

// TestRingClosure verifies the paper's pseudo-ring property: with the
// period-255 automaton, Fin == Init exactly when the step count is a
// multiple of 255.
func TestRingClosure(t *testing.T) {
	cfg := PaperWOMConfig()
	// Plain mode: n-k steps; closes for n = 255+2.
	mem := ram.NewWOM(257, 4)
	res := MustRunIteration(cfg, mem)
	if !res.RingClosed {
		t.Errorf("ring did not close for n=257 (n-k=255): Fin=%v", res.Fin)
	}
	if !RingCloses(cfg, 257) {
		t.Errorf("RingCloses(257) = false")
	}
	// A size off the period must not close.
	mem2 := ram.NewWOM(256, 4)
	res2 := MustRunIteration(cfg, mem2)
	if res2.RingClosed {
		t.Errorf("ring closed for n=256")
	}
	if RingCloses(cfg, 256) {
		t.Errorf("RingCloses(256) = true")
	}
	// Detection still passes in both cases (fault-free).
	if res.Detected || res2.Detected {
		t.Errorf("fault-free detection")
	}
}

// TestRingModeClosure: in wrap-around mode the automaton takes exactly
// n steps, so the closure condition is n ≡ 0 (mod 255) — the paper's
// "memory array size is multiple by the period of LFSR".
func TestRingModeClosure(t *testing.T) {
	cfg := PaperWOMConfig()
	cfg.Ring = true
	mem := ram.NewWOM(255, 4)
	res := MustRunIteration(cfg, mem)
	if res.Detected {
		t.Fatalf("fault-free ring iteration detected: Fin=%v Fin*=%v", res.Fin, res.FinStar)
	}
	if !res.RingClosed {
		t.Errorf("ring mode did not close for n=255")
	}
	if !RingCloses(cfg, 255) || RingCloses(cfg, 254) {
		t.Errorf("RingCloses predicate wrong in ring mode")
	}
}

// TestIterationOpsComplexity pins the paper's O(3n) claim: a plain
// signature iteration with k=2 costs 3 ops per cell up to O(k) edge
// terms.
func TestIterationOpsComplexity(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024} {
		cfg := PaperWOMConfig()
		mem := ram.NewWOM(n, 4)
		res := MustRunIteration(cfg, mem)
		// k seed writes + (n-k)(k reads + 1 write) + k Fin reads.
		want := uint64(2 + 3*(n-2) + 2)
		if res.Ops != want {
			t.Errorf("n=%d: ops = %d, want %d (≈3n)", n, res.Ops, want)
		}
	}
}

func TestVerifyCleanAndCorrupt(t *testing.T) {
	cfg := PaperWOMConfig()
	mem := ram.NewWOM(64, 4)
	MustRunIteration(cfg, mem)
	mm, ops, err := Verify(cfg, mem)
	if err != nil || mm != 0 {
		t.Fatalf("clean verify: %d mismatches, err %v", mm, err)
	}
	if ops != 64 {
		t.Errorf("verify ops = %d", ops)
	}
	// Corrupt one cell the signature cannot see (middle of the array).
	mem.Write(10, mem.Read(10)^1)
	mm, _, err = Verify(cfg, mem)
	if err != nil || mm != 1 {
		t.Errorf("corrupt verify: %d mismatches, err %v", mm, err)
	}
}

func TestVerifyInsideIteration(t *testing.T) {
	cfg := PaperWOMConfig()
	cfg.Verify = true
	mem := ram.NewWOM(64, 4)
	res := MustRunIteration(cfg, mem)
	if res.Detected || res.VerifyMismatches != 0 {
		t.Errorf("clean memory failed verify: %+v", res)
	}
	// Ops: 3n-2 + n verify reads.
	want := uint64(2+3*(64-2)+2) + 64
	if res.Ops != want {
		t.Errorf("ops with verify = %d, want %d", res.Ops, want)
	}
}

func TestCaptureStaleDetectsLeftoverCorruption(t *testing.T) {
	cfg := PaperWOMConfig()
	n := 64
	mem := ram.NewWOM(n, 4)
	MustRunIteration(cfg, mem)
	// Corrupt a mid-array cell after the iteration (as a coupling
	// victim would be).
	mem.Write(20, mem.Read(20)^0x3)
	// A second iteration without capture destroys the evidence...
	mem2 := ram.NewWOM(n, 4)
	MustRunIteration(cfg, mem2)
	mem2.Write(20, mem2.Read(20)^0x3)
	plain := cfg
	res := MustRunIteration(plain, mem2)
	if res.Detected {
		t.Fatalf("plain iteration unexpectedly saw the stale corruption")
	}
	// ...but a capture iteration observes it at the rewrite.
	capture := cfg
	capture.CaptureStale = true
	capture.StaleExpect = ExpectedFinalContents(cfg, n)
	res2 := MustRunIteration(capture, mem)
	if !res2.Detected || res2.StaleMismatches != 1 {
		t.Errorf("capture iteration missed stale corruption: %+v", res2)
	}
}

func TestExpectedFinalContents(t *testing.T) {
	cfg := PaperWOMConfig()
	n := 40
	mem := ram.NewWOM(n, 4)
	MustRunIteration(cfg, mem)
	want := ExpectedFinalContents(cfg, n)
	for a := 0; a < n; a++ {
		if gf.Elem(mem.Read(a)) != want[a] {
			t.Fatalf("predicted contents wrong at %d", a)
		}
	}
	// Descending iteration: prediction must be address-indexed.
	cfgD := cfg
	cfgD.Trajectory = Descending
	memD := ram.NewWOM(n, 4)
	MustRunIteration(cfgD, memD)
	wantD := ExpectedFinalContents(cfgD, n)
	for a := 0; a < n; a++ {
		if gf.Elem(memD.Read(a)) != wantD[a] {
			t.Fatalf("descending predicted contents wrong at %d", a)
		}
	}
}

func TestTrajectories(t *testing.T) {
	n := 32
	for _, tr := range []Trajectory{Ascending, Descending, Random, RandomReversed} {
		cfg := PaperWOMConfig()
		cfg.Trajectory = tr
		cfg.PermSeed = 7
		addr := cfg.Addresses(n)
		seen := make([]bool, n)
		for _, a := range addr {
			if a < 0 || a >= n || seen[a] {
				t.Fatalf("%v: bad permutation %v", tr, addr)
			}
			seen[a] = true
		}
		mem := ram.NewWOM(n, 4)
		res := MustRunIteration(cfg, mem)
		if res.Detected {
			t.Errorf("%v: fault-free detection", tr)
		}
	}
}

func TestRandomReversedIsReverse(t *testing.T) {
	a := Config{Trajectory: Random, PermSeed: 3}.Addresses(16)
	b := Config{Trajectory: RandomReversed, PermSeed: 3}.Addresses(16)
	for i := range a {
		if a[i] != b[len(b)-1-i] {
			t.Fatal("RandomReversed is not the exact reverse")
		}
	}
}

func TestRandomTrajectoryDeterministicPerSeed(t *testing.T) {
	a := Config{Trajectory: Random, PermSeed: 5}.Addresses(64)
	b := Config{Trajectory: Random, PermSeed: 5}.Addresses(64)
	c := Config{Trajectory: Random, PermSeed: 6}.Addresses(64)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed gave different permutations")
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical permutations")
	}
}

func TestConfigValidation(t *testing.T) {
	good := PaperWOMConfig()
	if err := good.Validate(64, 4); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(c Config) Config
		n, w int
	}{
		{"width mismatch", func(c Config) Config { return c }, 64, 8},
		{"short seed", func(c Config) Config { c.Seed = c.Seed[:1]; return c }, 64, 4},
		{"seed out of field", func(c Config) Config { c.Seed = []gf.Elem{0x10, 0}; return c }, 64, 4},
		{"offset out of field", func(c Config) Config { c.Offset = 0x10; return c }, 64, 4},
		{"memory too small", func(c Config) Config { return c }, 2, 4},
		{"bad trajectory", func(c Config) Config { c.Trajectory = Trajectory(9); return c }, 64, 4},
		{"unresolved mirror", func(c Config) Config { c.MirrorOf = 1; return c }, 64, 4},
	}
	for _, c := range cases {
		cfg := c.mut(good)
		if err := cfg.Validate(c.n, c.w); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if err := (Config{}).Validate(64, 4); err == nil {
		t.Error("zero config accepted")
	}
}

func TestStringHelpers(t *testing.T) {
	if Ascending.String() != "ascending" || Trajectory(9).String() == "" {
		t.Error("Trajectory strings wrong")
	}
	cfg := PaperWOMConfig()
	if cfg.String() == "" {
		t.Error("Config.String empty")
	}
	f := gf.NewField(4)
	if got := FormatState(f, []gf.Elem{0, 0xF}); got != "(0,F)" {
		t.Errorf("FormatState = %q", got)
	}
}

func TestExpectedSequenceMatchesPaper(t *testing.T) {
	seq := ExpectedSequence(PaperWOMConfig(), 6)
	want := []gf.Elem{0, 1, 2, 6, 8, 0xF}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("sequence %v != Fig.1b prefix %v", seq, want)
		}
	}
}

// TestRingModeDetectsFaults: the wrap-around executor keeps the
// detection property (errors propagate around the ring into the
// re-written seed cells).
func TestRingModeDetectsFaults(t *testing.T) {
	cfg := PaperWOMConfig()
	cfg.Ring = true
	for _, f := range []fault.Fault{
		fault.SAF{Cell: 0, Bit: 0, Value: 0},
		fault.SAF{Cell: 100, Bit: 3, Value: 1},
		fault.SAF{Cell: 254, Bit: 1, Value: 1},
	} {
		mem := f.Inject(ram.NewWOM(255, 4))
		res := MustRunIteration(cfg, mem)
		// Single iterations miss unexcited stuck values; run the
		// complement as well before judging.
		if !res.Detected {
			comp := cfg
			comp.Offset = 0xF
			comp.Seed = []gf.Elem{cfg.Seed[0] ^ 0xF, cfg.Seed[1] ^ 0xF}
			res2 := MustRunIteration(comp, mem)
			if !res2.Detected {
				t.Errorf("ring iterations missed %v", f)
			}
		}
	}
}

// TestSchemeOnWideWords exercises the full scheme machinery on wider
// fields (m = 8 and m = 12) to guard against width-4 assumptions.
func TestSchemeOnWideWords(t *testing.T) {
	for _, m := range []int{8, 12} {
		f := gf.NewField(m)
		g := lfsr.MustGenPoly(f, []gf.Elem{1, 2, 2})
		s := StandardScheme4(g)
		mem := ram.NewWOM(70, m)
		res, err := s.Run(mem)
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if res.Detected {
			t.Errorf("m=%d: false positive", m)
		}
		// And a stuck fault is caught.
		bad := fault.SAF{Cell: 33, Bit: m - 1, Value: 1}.Inject(ram.NewWOM(70, m))
		res2, err := s.Run(bad)
		if err != nil {
			t.Fatal(err)
		}
		if !res2.Detected {
			t.Errorf("m=%d: stuck MSB missed", m)
		}
	}
}

// TestRandomTrajectorySchemeDetects: schemes built on random
// trajectories (and their mirrored reversals) keep the detection
// property.
func TestRandomTrajectorySchemeDetects(t *testing.T) {
	g := PaperWOMConfig().Gen
	seed1 := []gf.Elem{1, 0}
	// Both TDB polarities are needed to excite arbitrary stuck values;
	// the complement runs on the same permutation, the mirror reverses
	// it.
	s := Scheme{Name: "PRT-rand", Iters: []Config{
		{Gen: g, Seed: seed1, Trajectory: Random, PermSeed: 3, Verify: true},
		{Gen: g, Seed: []gf.Elem{1 ^ 0xF, 0 ^ 0xF}, Offset: 0xF,
			Trajectory: Random, PermSeed: 3, Verify: true},
		Mirrored(0, true),
	}}
	clean := ram.NewWOM(64, 4)
	res, err := s.Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Fatal("random-trajectory scheme false positive")
	}
	bad := fault.SAF{Cell: 20, Bit: 1, Value: 1}.Inject(ram.NewWOM(64, 4))
	res2, err := s.Run(bad)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Detected {
		t.Error("random-trajectory scheme missed a stuck cell")
	}
}
