package prt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ram"
)

func TestQuadPortCleanAndCycles(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		qp := ram.NewQuadPort(n, 4)
		res, err := RunQuadPort(PaperWOMConfig(), qp)
		if err != nil {
			t.Fatal(err)
		}
		if res.Detected {
			t.Errorf("n=%d: fault-free detection (FinLow=%v StarLow=%v FinHigh=%v StarHigh=%v)",
				n, res.FinLow, res.StarLow, res.FinHigh, res.StarHigh)
		}
		// 1 seed cycle + 2(n/2 - 2) walk cycles + 1 fin cycle ≈ n.
		want := uint64(1 + 2*(n/2-2) + 1)
		if res.Cycles != want {
			t.Errorf("n=%d: cycles = %d, want %d (≈n)", n, res.Cycles, want)
		}
	}
}

// TestQuadPortHalvesDualPort pins the §4 progression: the multi-LFSR
// quad-port iteration costs ~n cycles, half the dual-port 2n and a
// third of the single-port 3n.
func TestQuadPortHalvesDualPort(t *testing.T) {
	n := 512
	qp := ram.NewQuadPort(n, 4)
	qRes, err := RunQuadPort(PaperWOMConfig(), qp)
	if err != nil {
		t.Fatal(err)
	}
	dp := ram.NewDualPort(n, 4)
	dRes, err := RunDualPort(PaperWOMConfig(), dp)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dRes.Cycles) / float64(qRes.Cycles)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("dual/quad cycle ratio = %.2f, want ≈2", ratio)
	}
}

func TestQuadPortDetectsFaults(t *testing.T) {
	n := 128
	g := PaperWOMConfig().Gen
	for _, f := range []fault.Fault{
		fault.SAF{Cell: 10, Bit: 1, Value: 1},  // low half
		fault.SAF{Cell: 100, Bit: 2, Value: 0}, // high half
		fault.TF{Cell: 70, Bit: 0, Up: true},
	} {
		mp := ram.NewMultiPortOn(f.Inject(ram.NewWOM(n, 4)), 4)
		det, cycles, err := QuadPortScheme3(g, mp)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("quad-port scheme missed %v", f)
		}
		if cycles == 0 {
			t.Error("no cycles counted")
		}
	}
	// Clean memory passes.
	mp := ram.NewQuadPort(n, 4)
	det, _, err := QuadPortScheme3(g, mp)
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Error("clean quad-port scheme detected")
	}
}

func TestQuadPortHalvesCarryDistinctTDB(t *testing.T) {
	n := 64
	qp := ram.NewQuadPort(n, 4)
	if _, err := RunQuadPort(PaperWOMConfig(), qp); err != nil {
		t.Fatal(err)
	}
	// The low and high halves must not hold identical sequences (the
	// high seed is complement-rotated).
	same := true
	for i := 0; i < n/2; i++ {
		if qp.Backing().Read(i) != qp.Backing().Read(n/2+i) {
			same = false
			break
		}
	}
	if same {
		t.Error("both halves carry the same TDB")
	}
}

func TestQuadPortValidation(t *testing.T) {
	if _, err := RunQuadPort(PaperWOMConfig(), ram.NewDualPort(64, 4)); err == nil {
		t.Error("dual-port memory accepted")
	}
	if _, err := RunQuadPort(PaperWOMConfig(), ram.NewQuadPort(4, 4)); err == nil {
		t.Error("tiny memory accepted")
	}
	bad := PaperBOMConfig() // width mismatch
	if _, err := RunQuadPort(bad, ram.NewQuadPort(64, 4)); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestQuadPortDescending(t *testing.T) {
	cfg := PaperWOMConfig()
	cfg.Trajectory = Descending
	qp := ram.NewQuadPort(64, 4)
	res, err := RunQuadPort(cfg, qp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected {
		t.Error("descending quad-port false positive")
	}
}
