package coverage

import (
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// TestStageTimingAllEngines: the always-on EngineStats timing fields
// are populated whichever engine actually ran — the three requested
// strategies and the silent oracle fallback alike — with no telemetry
// registry attached.
func TestStageTimingAllEngines(t *testing.T) {
	const n = 16
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 1)}
	r := MarchRunner(march.MarchCMinus(), nil)
	for _, engine := range []Engine{EngineOracle, EngineBitParallel, EngineCompiled} {
		res := CampaignEngine(r, u, bomFactory(n), 2, engine)
		if res.Stats == nil {
			t.Fatalf("%v: Stats nil", engine)
		}
		if res.Stats.Elapsed <= 0 {
			t.Errorf("%v: Elapsed = %v", engine, res.Stats.Elapsed)
		}
		if res.Stats.FaultsPerSec <= 0 {
			t.Errorf("%v: FaultsPerSec = %v", engine, res.Stats.FaultsPerSec)
		}
		if cr := res.Stats.CollapseRatio; cr <= 0 || cr > 1 {
			t.Errorf("%v: CollapseRatio = %v", engine, cr)
		}
	}
	// The oracle fallback path (a replay-safe runner whose trace cannot
	// actually replay) flows through the same stage timing.
	res := CampaignEngine(unannotatedReplaySafe{}, u, bomFactory(n), 2, EngineCompiled)
	if res.Stats == nil || res.Stats.Engine != EngineOracle {
		t.Fatalf("fallback Stats = %+v", res.Stats)
	}
	if res.Stats.Elapsed <= 0 || res.Stats.FaultsPerSec <= 0 {
		t.Errorf("fallback timing: elapsed=%v faults/s=%v", res.Stats.Elapsed, res.Stats.FaultsPerSec)
	}
}

// TestSessionTelemetryDetail: with a registry attached, a materialized
// session populates the registry-gated EngineStats detail (per-worker
// kernel time, cache accounting) and delivers one StageReport per
// stage through OnStage.
func TestSessionTelemetryDetail(t *testing.T) {
	const n = 32
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 1)}
	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var reports []telemetry.StageReport
	reg.OnStage(func(rep telemetry.StageReport) {
		mu.Lock()
		reports = append(reports, rep)
		mu.Unlock()
	})
	telemetry.SetActive(reg)
	defer telemetry.SetActive(nil)

	p := Plan{
		Runners:  []Runner{MarchRunner(march.MarchCMinus(), nil), MarchRunner(march.MATSPlus(), nil)},
		Universe: u, Memory: bomFactory(n), Workers: 2,
		Engine: EngineCompiled, Cache: sim.NewProgramCache(),
	}
	s := p.Run()
	for _, st := range s.Stages {
		if st.Stats.Elapsed <= 0 || st.Stats.FaultsPerSec <= 0 {
			t.Errorf("%s: timing %v / %v", st.Runner, st.Stats.Elapsed, st.Stats.FaultsPerSec)
		}
		if len(st.Stats.KernelTime) == 0 {
			t.Errorf("%s: no per-worker kernel time with registry attached", st.Runner)
		}
		if st.Stats.CacheMisses != 1 {
			t.Errorf("%s: cold-cache stage CacheMisses = %d", st.Runner, st.Stats.CacheMisses)
		}
	}
	if len(reports) != len(s.Stages) {
		t.Fatalf("stage reports = %d, want %d", len(reports), len(s.Stages))
	}
	for _, rep := range reports {
		if rep.Universe != "single" || rep.Engine != "compiled" {
			t.Errorf("report labels: %+v", rep)
		}
		if rep.Entered != u.Len() || rep.Elapsed <= 0 {
			t.Errorf("report body: %+v", rep)
		}
	}

	snap := reg.Snapshot()
	if snap.Faults != uint64(2*u.Len()) {
		t.Errorf("registry faults = %d, want %d", snap.Faults, 2*u.Len())
	}
	if snap.CacheMisses != 2 {
		t.Errorf("cache misses = %d, want 2 (one per cold stage)", snap.CacheMisses)
	}
}

// TestStreamTelemetryDetail: a streaming session fills the sink-wait
// and source-wait splits (the 16-worker contention question), computes
// sink-wait shares, and reports its stages.
func TestStreamTelemetryDetail(t *testing.T) {
	reg := telemetry.NewRegistry()
	var mu sync.Mutex
	var reports []telemetry.StageReport
	reg.OnStage(func(rep telemetry.StageReport) {
		mu.Lock()
		reports = append(reports, rep)
		mu.Unlock()
	})
	telemetry.SetActive(reg)
	defer telemetry.SetActive(nil)

	src := fault.FullCouplingSource(9)
	st := &fault.Stream{Name: "cf-exhaustive", Source: src}
	res := CampaignStream(MarchRunner(march.MarchCMinus(), nil), st, bomFactory(9), 2, 64)
	if res.Stats == nil || res.Stats.Elapsed <= 0 || res.Stats.FaultsPerSec <= 0 {
		t.Fatalf("streaming Stats = %+v", res.Stats)
	}
	if got := len(res.Stats.SinkWait); got == 0 || got > res.Stats.Workers {
		t.Errorf("SinkWait rows = %d of %d workers", got, res.Stats.Workers)
	}
	shares := res.Stats.SinkWaitShares()
	if len(shares) != len(res.Stats.SinkWait) {
		t.Errorf("SinkWaitShares rows = %d", len(shares))
	}
	for i, sh := range shares {
		if sh < 0 || sh > 1 {
			t.Errorf("worker %d sink-wait share = %v", i, sh)
		}
	}
	if len(reports) != 1 || reports[0].Universe != "cf-exhaustive" {
		t.Fatalf("stage reports: %+v", reports)
	}
	if len(reports[0].SinkWait) != len(res.Stats.SinkWait) {
		t.Errorf("report sink-wait rows = %d", len(reports[0].SinkWait))
	}
}

// TestSinkWaitSharesDetached: without a registry there is no per-worker
// detail, and the shares helper reports that as nil rather than
// fabricating zeros.
func TestSinkWaitSharesDetached(t *testing.T) {
	src := fault.FullCouplingSource(9)
	st := &fault.Stream{Name: "cf-exhaustive", Source: src}
	res := CampaignStream(MarchRunner(march.MarchCMinus(), nil), st, bomFactory(9), 2, 64)
	if res.Stats == nil {
		t.Fatal("Stats nil")
	}
	if res.Stats.SinkWait != nil {
		t.Errorf("detached run has per-worker SinkWait: %v", res.Stats.SinkWait)
	}
	if shares := res.Stats.SinkWaitShares(); shares != nil {
		t.Errorf("detached SinkWaitShares = %v, want nil", shares)
	}
	if res.Stats.Elapsed <= 0 {
		t.Errorf("always-on Elapsed missing: %v", res.Stats.Elapsed)
	}
}
