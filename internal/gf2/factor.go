package gf2

import "sort"

// Factorisation machinery for polynomials over GF(2): squarefree
// decomposition, distinct-degree factorisation and equal-degree
// splitting (deterministic trace method).  The headline consumer is
// OrderAny, which computes the period of an LFSR whose characteristic
// polynomial is *not* irreducible — the paper's quality factor 1
// (polynomial structure) in full generality.

// Factor returns the complete factorisation of p as irreducible
// factors with multiplicities, sorted by (degree, value).  p must be
// nonzero; Factor(1) returns no factors.
func Factor(p Poly) (factors []Poly, mults []int) {
	if p == 0 {
		panic("gf2: Factor of zero polynomial")
	}
	work := map[Poly]int{}
	var rec func(q Poly, mult int)
	rec = func(q Poly, mult int) {
		if q.Deg() < 1 {
			return
		}
		// Pull out the content of x first.
		for q.Coeff(0) == 0 {
			work[X] += mult
			q >>= 1
		}
		if q.Deg() < 1 {
			return
		}
		// Squarefree split: gcd(q, q') isolates repeated factors.
		d := q.Derivative()
		if d == 0 {
			// q = r(x)^2 over GF(2): take the square root and recurse.
			rec(sqrt(q), 2*mult)
			return
		}
		g := GCD(q, d)
		if g.Deg() > 0 {
			rec(g, mult)
			rec(q.Div(g), mult)
			return
		}
		// q squarefree: distinct-degree then equal-degree.
		for _, f := range factorSquarefree(q) {
			work[f] += mult
		}
	}
	rec(p, 1)

	for f := range work {
		factors = append(factors, f)
	}
	sort.Slice(factors, func(i, j int) bool {
		if factors[i].Deg() != factors[j].Deg() {
			return factors[i].Deg() < factors[j].Deg()
		}
		return factors[i] < factors[j]
	})
	mults = make([]int, len(factors))
	for i, f := range factors {
		mults[i] = work[f]
	}
	return factors, mults
}

// sqrt returns the square root of a polynomial that is a perfect
// square over GF(2) (all exponents even): sqrt(Σ x^(2i)) = Σ x^i.
func sqrt(p Poly) Poly {
	var r Poly
	for i := 0; i <= p.Deg(); i += 2 {
		if p.Coeff(i) == 1 {
			r = r.SetCoeff(i/2, 1)
		}
	}
	return r
}

// factorSquarefree factors a squarefree polynomial with nonzero
// constant term into irreducibles.
func factorSquarefree(q Poly) []Poly {
	var out []Poly
	// Distinct-degree: strip factors of degree d by
	// gcd(q, x^(2^d) - x).
	rem := q
	h := X.Mod(rem) // x^(2^d) mod rem, updated per d
	for d := 1; rem.Deg() >= 1; d++ {
		if 2*d > rem.Deg() {
			// What remains is irreducible.
			out = append(out, rem)
			break
		}
		h = MulMod(h, h, rem) // h = x^(2^d) mod rem
		g := GCD(h.Add(X.Mod(rem)), rem)
		if g.Deg() > 0 {
			out = append(out, equalDegreeSplit(g, d)...)
			rem = rem.Div(g)
			h = h.Mod(rem)
		}
		if rem.Deg() == 0 {
			break
		}
	}
	return out
}

// equalDegreeSplit splits a product of distinct irreducibles, all of
// degree d, into its factors using the deterministic GF(2) trace
// method: for successive basis polynomials b, the trace map
// T(b) = b + b^2 + b^4 + … + b^(2^(kd-1)) mod f takes values 0/1 on
// each factor's residue field, and gcd(f, T(b)) separates them.
func equalDegreeSplit(f Poly, d int) []Poly {
	if f.Deg() == d {
		return []Poly{f}
	}
	n := f.Deg()
	for bdeg := 1; bdeg < n; bdeg++ {
		b := Poly(1) << uint(bdeg) // monomial x^bdeg
		// Trace over GF(2^d)-relative extension: sum of b^(2^(i·?)) —
		// over GF(2) the absolute trace T(b) = Σ_{i<n? } b^(2^i) with
		// n the degree of f restricted per factor; using the absolute
		// trace to GF(2) of the degree-d factors: Σ_{i=0}^{d-1} b^(2^i).
		t := Poly(0)
		pow := b.Mod(f)
		for i := 0; i < d; i++ {
			t = t.Add(pow)
			pow = MulMod(pow, pow, f)
		}
		g := GCD(t, f)
		if g.Deg() > 0 && g.Deg() < f.Deg() {
			left := equalDegreeSplit(g, d)
			right := equalDegreeSplit(f.Div(g), d)
			return append(left, right...)
		}
		g1 := GCD(t.Add(One), f)
		if g1.Deg() > 0 && g1.Deg() < f.Deg() {
			left := equalDegreeSplit(g1, d)
			right := equalDegreeSplit(f.Div(g1), d)
			return append(left, right...)
		}
	}
	// Should be unreachable for valid inputs.
	return []Poly{f}
}

// OrderAny returns the multiplicative order of x modulo p for any p
// with nonzero constant term (p need not be irreducible): the period
// of an LFSR with characteristic polynomial p, maximised over initial
// states.  For p = Π f_i^{e_i} the order is
//
//	lcm_i( Order(f_i) ) · 2^ceil(log2 max_i e_i) .
func OrderAny(p Poly) uint64 {
	if p.Coeff(0) == 0 {
		panic("gf2: OrderAny requires nonzero constant term")
	}
	if p.Deg() < 1 {
		panic("gf2: OrderAny requires degree >= 1")
	}
	factors, mults := Factor(p)
	l := uint64(1)
	maxMult := 1
	for i, f := range factors {
		l = lcm64(l, Order(f))
		if mults[i] > maxMult {
			maxMult = mults[i]
		}
	}
	// Multiplicity e multiplies the order by the least power of 2 >= e.
	for pow := 1; pow < maxMult; pow *= 2 {
		l *= 2
	}
	return l
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm64(a, b uint64) uint64 { return a / gcd64(a, b) * b }
