package sim

import (
	"sync"

	"repro/internal/ram"
	"repro/internal/telemetry"
)

// ProgramCache memoizes compiled replay programs across campaigns, so
// repeated sweeps (a factor grid re-running the same test, size sweeps
// through the same sizes, multi-experiment CLI runs, benchmark
// iterations) record and compile each trace once.  Programs are
// immutable once compiled (all per-replay state lives in Arena), so a
// cached program is shared freely between campaigns and workers.
//
// The key's Runner string is the caller's responsibility: it must
// uniquely determine the operation schedule and annotations the runner
// produces on a memory of the keyed geometry (see coverage.TraceKeyer
// — a display name is NOT enough when distinct configurations share
// one).  Size, Width and InitHash pin the memory geometry and pre-run
// contents the trace was recorded against.
type ProgramCache struct {
	mu     sync.Mutex
	m      map[ProgramKey]*CachedProgram
	hits   uint64
	misses uint64
}

// ProgramKey identifies one (runner, memory geometry, lane width)
// triple.
type ProgramKey struct {
	// Runner uniquely identifies the test algorithm's full
	// configuration (not merely its display name).
	Runner string
	// Size and Width are the memory geometry.
	Size, Width int
	// Lanes is the program's lane width in 64-machine words: programs
	// compiled at different widths have different arena geometries and
	// must not share a cache entry.
	Lanes int
	// InitHash fingerprints the pre-run memory contents.
	InitHash uint64
}

// CachedProgram is one cache entry: the compiled program plus the
// clean-run metadata a campaign result reports.  Only fault-free
// (non-false-positive) recordings are cached.
type CachedProgram struct {
	Prog     *Program
	CleanOps uint64
}

// cacheCap bounds the entry count; eviction is arbitrary (map order),
// which is fine for the sweep workloads the cache exists for — they
// cycle through a small set of runners.
const cacheCap = 128

// NewProgramCache returns an empty cache.
func NewProgramCache() *ProgramCache { return &ProgramCache{} }

// Get returns the entry for k, if cached.
func (c *ProgramCache) Get(k ProgramKey) (*CachedProgram, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	e, ok := c.m[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	telemetry.Active().CacheLookup(ok)
	return e, ok
}

// Put stores an entry for k, evicting an arbitrary entry at capacity.
func (c *ProgramCache) Put(k ProgramKey, e *CachedProgram) {
	if c == nil || e == nil || e.Prog == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[ProgramKey]*CachedProgram)
	}
	if _, exists := c.m[k]; !exists && len(c.m) >= cacheCap {
		for victim := range c.m {
			delete(c.m, victim)
			break
		}
	}
	c.m[k] = e
}

// Stats reports lookup hits, misses and the current entry count.
func (c *ProgramCache) Stats() (hits, misses uint64, entries int) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.m)
}

// InitHash fingerprints a memory's pre-run contents (FNV-1a over every
// word) for the program-cache key: two factories producing the same
// geometry but different initial images must not share a trace.
func InitHash(mem ram.Memory) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	n := mem.Size()
	for a := 0; a < n; a++ {
		mix(uint64(mem.Read(a)))
	}
	return h
}
