package lfsr

import (
	"fmt"

	"repro/internal/gf"
)

// Matrix is a small dense k×k matrix over GF(2^m), used for the
// companion-matrix model of the word LFSR and for jump-ahead.
type Matrix struct {
	Field *gf.Field
	K     int
	A     [][]gf.Elem // row major
}

// NewMatrix returns the zero k×k matrix over f.
func NewMatrix(f *gf.Field, k int) Matrix {
	if k < 1 {
		panic("lfsr: matrix dimension must be positive")
	}
	a := make([][]gf.Elem, k)
	for i := range a {
		a[i] = make([]gf.Elem, k)
	}
	return Matrix{Field: f, K: k, A: a}
}

// Identity returns the k×k identity over f.
func Identity(f *gf.Field, k int) Matrix {
	m := NewMatrix(f, k)
	for i := 0; i < k; i++ {
		m.A[i][i] = 1
	}
	return m
}

// Companion returns the state-transition matrix of the word LFSR with
// generator polynomial g, acting on the state window (oldest first):
//
//	(u_{t-k+1}, …, u_t)  =  C · (u_{t-k}, …, u_{t-1})ᵀ
//
// Row i<k-1 shifts; the last row holds the recurrence weights.
func Companion(g GenPoly) Matrix {
	k := g.K()
	m := NewMatrix(g.Field, k)
	for i := 0; i < k-1; i++ {
		m.A[i][i+1] = 1
	}
	// u_t = Σ_{j=1..k} a_j u_{t-j}; u_{t-j} sits at window index k-j.
	for j := 1; j <= k; j++ {
		m.A[k-1][k-j] = g.Coeffs[j]
	}
	return m
}

// Apply multiplies the matrix by the column vector v.
func (m Matrix) Apply(v []gf.Elem) []gf.Elem {
	if len(v) != m.K {
		panic("lfsr: vector length mismatch")
	}
	f := m.Field
	out := make([]gf.Elem, m.K)
	for i := 0; i < m.K; i++ {
		var acc gf.Elem
		for j := 0; j < m.K; j++ {
			if m.A[i][j] != 0 && v[j] != 0 {
				acc = f.Add(acc, f.Mul(m.A[i][j], v[j]))
			}
		}
		out[i] = acc
	}
	return out
}

// Mul returns the matrix product m*n.
func (m Matrix) Mul(n Matrix) Matrix {
	if m.K != n.K {
		panic("lfsr: matrix dimension mismatch")
	}
	f := m.Field
	out := NewMatrix(f, m.K)
	for i := 0; i < m.K; i++ {
		for j := 0; j < m.K; j++ {
			var acc gf.Elem
			for l := 0; l < m.K; l++ {
				if m.A[i][l] != 0 && n.A[l][j] != 0 {
					acc = f.Add(acc, f.Mul(m.A[i][l], n.A[l][j]))
				}
			}
			out.A[i][j] = acc
		}
	}
	return out
}

// Pow returns m^e by square-and-multiply (m⁰ = identity).
func (m Matrix) Pow(e uint64) Matrix {
	r := Identity(m.Field, m.K)
	base := m
	for e > 0 {
		if e&1 == 1 {
			r = r.Mul(base)
		}
		base = base.Mul(base)
		e >>= 1
	}
	return r
}

// Equal reports whether two matrices over the same field are equal.
func (m Matrix) Equal(n Matrix) bool {
	if m.K != n.K {
		return false
	}
	for i := range m.A {
		for j := range m.A[i] {
			if m.A[i][j] != n.A[i][j] {
				return false
			}
		}
	}
	return true
}

// IsIdentity reports whether m is the identity matrix.
func (m Matrix) IsIdentity() bool { return m.Equal(Identity(m.Field, m.K)) }

// Det returns the determinant via fraction-free Gaussian elimination
// over the field.
func (m Matrix) Det() gf.Elem {
	f := m.Field
	k := m.K
	a := make([][]gf.Elem, k)
	for i := range a {
		a[i] = append([]gf.Elem(nil), m.A[i]...)
	}
	det := gf.Elem(1)
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return 0
		}
		if pivot != col {
			a[pivot], a[col] = a[col], a[pivot]
			// Row swap negates the determinant; in characteristic 2 the
			// sign is irrelevant.
		}
		det = f.Mul(det, a[col][col])
		inv := f.Inv(a[col][col])
		for r := col + 1; r < k; r++ {
			if a[r][col] == 0 {
				continue
			}
			factor := f.Mul(a[r][col], inv)
			for c := col; c < k; c++ {
				a[r][c] = f.Add(a[r][c], f.Mul(factor, a[col][c]))
			}
		}
	}
	return det
}

// Order returns the multiplicative order of the matrix (least e>0 with
// m^e = I), provided the order divides bound; it panics if m is
// singular and returns 0 if no divisor of bound works.  For a companion
// matrix of an LFSR over GF(2^m) with k stages, bound = (2^m)^k - 1
// always works when the characteristic polynomial is irreducible; for
// reducible polynomials use lcm-style bounds or the sequence Period.
func (m Matrix) Order(bound uint64) uint64 {
	if m.Det() == 0 {
		panic("lfsr: order of singular matrix")
	}
	if !m.Pow(bound).IsIdentity() {
		return 0
	}
	e := bound
	primes, _ := factor64(bound)
	for _, q := range primes {
		for e%q == 0 && m.Pow(e/q).IsIdentity() {
			e /= q
		}
	}
	return e
}

func factor64(n uint64) (primes []uint64, exps []int) {
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			e := 0
			for n%d == 0 {
				n /= d
				e++
			}
			primes = append(primes, d)
			exps = append(exps, e)
		}
	}
	if n > 1 {
		primes = append(primes, n)
		exps = append(exps, 1)
	}
	return
}

// String renders the matrix with hexadecimal entries.
func (m Matrix) String() string {
	s := ""
	for i := 0; i < m.K; i++ {
		for j := 0; j < m.K; j++ {
			if j > 0 {
				s += " "
			}
			s += m.Field.FormatElem(m.A[i][j])
		}
		if i < m.K-1 {
			s += "\n"
		}
	}
	return s
}

// JumpAhead returns the LFSR state after n steps from state, computed
// in O(k³ log n) field operations via matrix exponentiation — the
// a-priori estimation of Fin* the paper relies on.
func JumpAhead(g GenPoly, state []gf.Elem, n uint64) ([]gf.Elem, error) {
	if len(state) != g.K() {
		return nil, fmt.Errorf("lfsr: state length %d != k=%d", len(state), g.K())
	}
	c := Companion(g).Pow(n)
	return c.Apply(state), nil
}
