package lfsr

import (
	"testing"

	"repro/internal/gf"
)

func TestBMRecoversPaperAutomaton(t *testing.T) {
	// The Fig. 1b sequence must synthesise back to g(x)=1+2x+2x^2 with
	// linear complexity 2.
	g := PaperGenPoly()
	seq := MustWord(g, []gf.Elem{0, 1}).Sequence(40)
	rec, L, err := BerlekampMassey(g.Field, seq)
	if err != nil {
		t.Fatal(err)
	}
	if L != 2 {
		t.Fatalf("linear complexity = %d, want 2", L)
	}
	if rec.K() != 2 || rec.Coeffs[1] != 2 || rec.Coeffs[2] != 2 {
		t.Errorf("recovered generator %v, want 1+2x+2x^2", rec)
	}
	// And the recovered automaton regenerates the sequence.
	reseq := MustWord(rec, seq[:2]).Sequence(40)
	for i := range seq {
		if reseq[i] != seq[i] {
			t.Fatalf("regenerated sequence diverges at %d", i)
		}
	}
}

func TestBMRecoversBitLFSR(t *testing.T) {
	f := gf.NewField(1)
	g := MustGenPoly(f, []gf.Elem{1, 1, 0, 1}) // 1+x+x^3... wait taps
	seq := MustWord(g, []gf.Elem{1, 0, 0}).Sequence(30)
	rec, L, err := BerlekampMassey(f, seq)
	if err != nil {
		t.Fatal(err)
	}
	if L != 3 {
		t.Fatalf("complexity = %d, want 3", L)
	}
	reseq := MustWord(rec, seq[:L]).Sequence(30)
	for i := range seq {
		if reseq[i] != seq[i] {
			t.Fatalf("regeneration diverges at %d", i)
		}
	}
}

func TestBMZeroSequence(t *testing.T) {
	f := gf.NewField(4)
	_, L, err := BerlekampMassey(f, make([]gf.Elem, 20))
	if err != nil || L != 0 {
		t.Errorf("zero sequence complexity = %d err=%v", L, err)
	}
}

func TestBMEmptySequence(t *testing.T) {
	f := gf.NewField(4)
	_, L, err := BerlekampMassey(f, nil)
	if err != nil || L != 0 {
		t.Errorf("empty sequence complexity = %d err=%v", L, err)
	}
}

func TestBMCorruptionRaisesComplexity(t *testing.T) {
	// Flipping one value of an order-2 sequence must raise the linear
	// complexity above 2 — the diagnosis signal.
	g := PaperGenPoly()
	seq := MustWord(g, []gf.Elem{0, 1}).Sequence(60)
	seq[30] ^= 0x5
	L, err := LinearComplexity(g.Field, seq)
	if err != nil {
		t.Fatal(err)
	}
	if L <= 2 {
		t.Errorf("corrupted sequence complexity = %d, want > 2", L)
	}
}

func TestBMValidation(t *testing.T) {
	if _, _, err := BerlekampMassey(nil, nil); err == nil {
		t.Error("nil field accepted")
	}
	f := gf.NewField(4)
	if _, _, err := BerlekampMassey(f, []gf.Elem{0x10}); err == nil {
		t.Error("out-of-field value accepted")
	}
}

func TestBMRandomSequencesRegenerate(t *testing.T) {
	// For arbitrary sequences, the synthesised LFSR must regenerate the
	// full input (the defining property of Berlekamp-Massey).
	f := gf.NewField(4)
	rng := uint64(12345)
	next := func() gf.Elem {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return gf.Elem(rng & 0xF)
	}
	for trial := 0; trial < 20; trial++ {
		seq := make([]gf.Elem, 24)
		for i := range seq {
			seq[i] = next()
		}
		gen, L, err := BerlekampMassey(f, seq)
		if err != nil {
			t.Fatal(err)
		}
		if L == 0 {
			continue
		}
		if L >= len(seq) {
			continue // complexity too close to window to verify
		}
		if gen.K() > L {
			t.Fatalf("generator longer than complexity: %d > %d", gen.K(), L)
		}
		// Regenerate using the first gen.K() values as seed.
		k := gen.K()
		reseq := MustWord(gen, seq[:k]).Sequence(len(seq))
		// BM guarantees regeneration when 2L <= len(seq).
		if 2*L <= len(seq) {
			for i := range seq {
				if reseq[i] != seq[i] {
					t.Fatalf("trial %d: diverges at %d (L=%d k=%d)", trial, i, L, k)
				}
			}
		}
	}
}
