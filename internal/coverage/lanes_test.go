package coverage

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/march"
	"repro/internal/prt"
)

// The lane-width property (this PR's acceptance criterion): the lane
// width is pure throughput plumbing — a session at 4 or 8 lane words
// produces Results, verdict vectors and cumulative tallies
// byte-identical to the single-word session, for every universe
// family, on all three engines (the non-compiled engines must simply
// ignore the knob), with dropping on and off.

func TestLaneWidthEquivalence(t *testing.T) {
	gen := prt.PaperWOMConfig().Gen
	bgs := march.DataBackgrounds(4)
	runners := []Runner{
		MarchRunner(march.MATSPlus(), bgs),
		PRTRunner(prt.StandardScheme3(gen)),
	}
	engines := []Engine{EngineOracle, EngineBitParallel, EngineCompiled}
	universes := womUniverses(16, 4)
	if testing.Short() {
		engines = engines[2:] // only the compiled engine reads the knob
		universes = universes[:2]
	}
	for _, engine := range engines {
		for _, u := range universes {
			for _, drop := range []bool{false, true} {
				run := func(lanes int) *Session {
					p := Plan{
						Runners: runners, Universe: u, Memory: womFactory(16, 4),
						Workers: 4, Engine: engine, Drop: drop, KeepVectors: true,
						LaneWords: lanes,
					}
					return p.Run()
				}
				want := run(1)
				for _, lanes := range []int{4, 8} {
					label := fmt.Sprintf("%s [%s drop=%v lanes=%d]", u.Name, engine, drop, lanes)
					got := run(lanes)
					assertSessionsEqual(t, label, want, got)
					if engine == EngineCompiled {
						st := got.Stages[0].Stats
						if st.LaneWords != lanes {
							t.Errorf("%s: Stats.LaneWords = %d, want %d", label, st.LaneWords, lanes)
						}
						if st.FusedOps == 0 {
							t.Errorf("%s: march stage compiled with no fused super-ops", label)
						}
					}
				}
			}
		}
	}
}

// TestLaneWidthStreamingResumeEquivalence interrupts a wide streaming
// session mid-stage and resumes it: the resumed wide run must be
// byte-identical to an uninterrupted single-word run — the checkpoint
// cut logic never sees lane geometry, only universe indices.
func TestLaneWidthStreamingResumeEquivalence(t *testing.T) {
	fam := streamFamilies()[0] // single-cell: small and fully replayable
	count, _ := fam.src.Count()
	chunk := count/16 + 1
	dir := t.TempDir()
	mkPlan := func(src fault.Source, lanes int, path string, rs *checkpoint.State) *Plan {
		return &Plan{
			Runners: fam.runners,
			Stream:  &fault.Stream{Name: fam.name, Source: src},
			Chunk:   chunk, Memory: fam.mk, Workers: 4,
			Engine: EngineCompiled, Drop: true, LaneWords: lanes,
			Checkpoint: &CheckpointConfig{
				Path: path, Every: chunk, Label: "lanes", Seed: 7, Resume: rs,
			},
		}
	}

	want := mkPlan(fam.src, 1, filepath.Join(dir, "ref.fckp"), nil).Run()
	if want.Interrupted {
		t.Fatal("reference run reports interrupted")
	}

	for _, lanes := range []int{4, 8} {
		label := fmt.Sprintf("lanes=%d", lanes)
		file := filepath.Join(dir, fmt.Sprintf("wide%d.fckp", lanes))
		ctx, cancel := context.WithCancel(context.Background())
		cs := &cancelSource{Source: fam.src, cancel: cancel, cancelAtNext: 4}
		part := mkPlan(cs, lanes, file, nil).RunContext(ctx)
		cancel()
		assertWellFormed(t, label, part)

		rs, err := checkpoint.Load(file)
		if err != nil {
			t.Fatalf("%s: loading the interrupt checkpoint: %v", label, err)
		}
		got := mkPlan(fam.src, lanes, file, rs).Run()
		if got.Interrupted {
			t.Fatalf("%s: resumed run reports interrupted", label)
		}
		assertSessionsEqual(t, label, want, got)
	}
}

// TestDefaultLaneWordsKnob: the process default resolves exactly like
// the other campaign knobs — plan value wins, unset defers to the
// default, invalid restores 1.
func TestDefaultLaneWordsKnob(t *testing.T) {
	defer SetDefaultLaneWords(0)
	if DefaultLaneWords() != 1 {
		t.Fatalf("zero-value default = %d, want 1", DefaultLaneWords())
	}
	SetDefaultLaneWords(4)
	if DefaultLaneWords() != 4 {
		t.Fatalf("after SetDefaultLaneWords(4): %d", DefaultLaneWords())
	}
	p := &Plan{}
	if p.laneWords() != 4 {
		t.Fatalf("unset plan resolves %d, want the default 4", p.laneWords())
	}
	p.LaneWords = 8
	if p.laneWords() != 8 {
		t.Fatalf("explicit plan resolves %d, want 8", p.laneWords())
	}
	SetDefaultLaneWords(-3)
	if DefaultLaneWords() != 1 {
		t.Fatalf("invalid default resolves %d, want 1", DefaultLaneWords())
	}

	// The default is what cache keys and compilation actually consume:
	// a session run under the knob reports the width in its stats.
	SetDefaultLaneWords(4)
	u := womUniverses(16, 4)[0]
	s := (&Plan{
		Runners:  []Runner{MarchRunner(march.MATSPlus(), march.DataBackgrounds(4))},
		Universe: u, Memory: womFactory(16, 4), Engine: EngineCompiled,
	}).Run()
	if got := s.Stages[0].Stats.LaneWords; got != 4 {
		t.Fatalf("session under SetDefaultLaneWords(4) compiled at %d words", got)
	}
	if !reflect.DeepEqual(s.Cumulative.ByClass, s.Results[0].ByClass) {
		t.Fatal("single-runner session cumulative disagrees with its only result")
	}
}
