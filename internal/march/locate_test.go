package march

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ram"
)

func TestFailingAddressesCleanMemory(t *testing.T) {
	if got := FailingAddresses(MarchCMinus(), ram.NewBOM(32), nil); len(got) != 0 {
		t.Errorf("clean memory produced failing addresses %v", got)
	}
}

func TestFailingAddressesLocalisesExactly(t *testing.T) {
	// Multiple stuck cells: the failing set must be exactly those
	// cells, with no propagation halo.
	defects := []int{3, 17, 30}
	mem := ram.Memory(ram.NewBOM(32))
	for _, d := range defects {
		mem = fault.SAF{Cell: d, Bit: 0, Value: 1}.Inject(mem)
	}
	got := FailingAddresses(MarchCMinus(), mem, nil)
	if len(got) != len(defects) {
		t.Fatalf("failing set %v, want %v", got, defects)
	}
	for i := range defects {
		if got[i] != defects[i] {
			t.Fatalf("failing set %v, want %v", got, defects)
		}
	}
}

func TestFailingAddressesWordOriented(t *testing.T) {
	mem := fault.SAF{Cell: 9, Bit: 2, Value: 0}.Inject(ram.NewWOM(32, 4))
	got := FailingAddresses(MarchCMinus(), mem, DataBackgrounds(4))
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("failing set %v, want [9]", got)
	}
}

func TestFailingAddressesCouplingNamesVictim(t *testing.T) {
	mem := fault.CFin{AggCell: 5, VicCell: 11, Up: true}.Inject(ram.NewBOM(32))
	got := FailingAddresses(MarchCMinus(), mem, nil)
	if len(got) == 0 {
		t.Fatal("coupling fault not localised")
	}
	// The victim cell is the one that reads wrong.
	found := false
	for _, a := range got {
		if a == 11 {
			found = true
		}
	}
	if !found {
		t.Errorf("victim 11 not in failing set %v", got)
	}
}

func TestSortInts(t *testing.T) {
	s := []int{5, 1, 4, 1, 3}
	sortInts(s)
	want := []int{1, 1, 3, 4, 5}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sortInts = %v", s)
		}
	}
	sortInts(nil) // must not panic
}
