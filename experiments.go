package repro

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/bist"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/march"
	"repro/internal/markov"
	"repro/internal/prt"
	"repro/internal/ram"
	"repro/internal/report"
	"repro/internal/xorsynth"
)

// This file implements the experiment harness: one function per paper
// artefact (figure or quantitative claim), each returning a
// report.Table with the rows the paper's evaluation corresponds to.
// bench_test.go wraps each in a Benchmark; cmd/faultcov prints them.

// sampleSeedOverride, when nonzero, replaces the per-experiment
// default seeds of every sampled coupling-pair draw (the faultcov
// -seed flag), so sampled tables are reproducible on demand under a
// caller-chosen seed.
var sampleSeedOverride atomic.Int64

// SetSampleSeed overrides the sampled-pair seeds used by the
// experiment harness (fault.SamplePairs / fault.StandardUniverse call
// sites); 0 restores the per-experiment defaults.
func SetSampleSeed(seed int64) { sampleSeedOverride.Store(seed) }

// SampleSeed resolves the seed a sampled draw should use: the process
// override when set, the experiment's default otherwise.
func SampleSeed(def int64) int64 {
	if s := sampleSeedOverride.Load(); s != 0 {
		return s
	}
	return def
}

// ExperimentFig1a regenerates Figure 1a: the bit-oriented π-iteration
// state evolution (TDB) and the ring-closure check.
func ExperimentFig1a(n int) *report.Table {
	cfg := prt.PaperBOMConfig()
	mem := ram.NewBOM(n)
	res := prt.MustRunIteration(cfg, mem)
	t := report.New(
		fmt.Sprintf("Fig.1a — BOM π-iteration, g(x)=1+x+x^2, seed (1,1), n=%d", n),
		"cell", "value")
	show := n
	if show > 12 {
		show = 12
	}
	for i := 0; i < show; i++ {
		t.AddRow(i, mem.Read(i))
	}
	f := cfg.Gen.Field
	t.AddRowf("Init", prt.FormatState(f, cfg.Seed))
	t.AddRowf("Fin", prt.FormatState(f, res.Fin))
	t.AddRowf("Fin*", prt.FormatState(f, res.FinStar))
	t.AddRowf("ring closed", fmt.Sprintf("%v (period 3, (n-2) mod 3 = %d)", res.RingClosed, (n-2)%3))
	return t
}

// ExperimentFig1b regenerates Figure 1b: the word-oriented iteration
// over GF(2^4) with g(x)=1+2x+2x^2, p(z)=1+z+z^4 — the TDB
// 0,1,2,6,8,F,… and the period-255 pseudo-ring.
func ExperimentFig1b(n int) *report.Table {
	cfg := prt.PaperWOMConfig()
	f := cfg.Gen.Field
	mem := ram.NewWOM(n, 4)
	res := prt.MustRunIteration(cfg, mem)
	t := report.New(
		fmt.Sprintf("Fig.1b — WOM π-iteration, g(x)=1+2x+2x^2 over GF(2^4), p(z)=1+z+z^4, n=%d", n),
		"cell", "value(hex)")
	show := n
	if show > 16 {
		show = 16
	}
	for i := 0; i < show; i++ {
		t.AddRowf(fmt.Sprintf("%d", i), f.FormatElem(gf.Elem(mem.Read(i))))
	}
	w := lfsr.MustWord(cfg.Gen, cfg.Seed)
	t.AddRowf("period", fmt.Sprintf("%d", w.Period(0)))
	t.AddRowf("Init", prt.FormatState(f, cfg.Seed))
	t.AddRowf("Fin", prt.FormatState(f, res.Fin))
	t.AddRowf("Fin*", prt.FormatState(f, res.FinStar))
	t.AddRowf("ring closed", fmt.Sprintf("%v ((n-2) mod 255 = %d)", res.RingClosed, (n-2)%255))
	return t
}

// ExperimentFig2 regenerates the Fig. 2 / §4 comparison: dual-port
// cycles (2n) versus single-port operations (3n) across array sizes.
func ExperimentFig2(sizes []int) *report.Table {
	t := report.New("Fig.2 / §4 — dual-port PRT: 2n cycles vs 3n single-port ops",
		"n", "1P ops", "2P cycles", "ratio", "both pass")
	for _, n := range sizes {
		cfg := prt.PaperWOMConfig()
		cfgSig := cfg // plain signature iteration
		sp := ram.NewWOM(n, 4)
		spRes := prt.MustRunIteration(cfgSig, sp)
		dp := ram.NewDualPort(n, 4)
		dpRes, err := prt.RunDualPort(cfg, dp)
		if err != nil {
			panic(err)
		}
		t.AddRow(n, spRes.Ops, dpRes.Cycles,
			float64(spRes.Ops)/float64(dpRes.Cycles),
			!spRes.Detected && !dpRes.Detected)
	}
	return t
}

// ExperimentSingleCell regenerates the §3 single-cell claim (E4):
// coverage of SAF/TF/SOF/AF per iteration count, for BOM and WOM.
func ExperimentSingleCell(n int) *report.Table {
	t := report.New(
		fmt.Sprintf("§3 (E4) — single-cell fault coverage vs π-iterations, n=%d", n),
		"memory", "iters", "SAF", "TF", "SOF", "AF", "total")
	type geom struct {
		label string
		m     int
		gen   lfsr.GenPoly
		mk    coverage.MemoryFactory
	}
	geoms := []geom{
		{"BOM", 1, prt.PaperBOMConfig().Gen, func() ram.Memory { return ram.NewBOM(n) }},
		{"WOM m=4", 4, prt.PaperWOMConfig().Gen, func() ram.Memory { return ram.NewWOM(n, 4) }},
	}
	for _, g := range geoms {
		var faults []fault.Fault
		faults = append(faults, fault.SingleCellUniverse(n, g.m)...)
		faults = append(faults, fault.StuckOpenUniverse(n)...)
		faults = append(faults, fault.DecoderUniverse(n)...)
		u := fault.Universe{Name: "single-cell", Faults: faults}
		// One campaign session per geometry: the four truncations share
		// the universe, so the session layer can drop cross-test.
		runners := make([]coverage.Runner, 4)
		for it := 1; it <= 4; it++ {
			runners[it-1] = coverage.PRTRunner(prt.StandardScheme4(g.gen).Truncate(it))
		}
		for it, res := range coverage.Compare(runners, u, g.mk, 0) {
			t.AddRowf(g.label, fmt.Sprintf("%d", it+1),
				report.Percent(res.ByClass[fault.ClassSAF].Detected, res.ByClass[fault.ClassSAF].Total),
				report.Percent(res.ByClass[fault.ClassTF].Detected, res.ByClass[fault.ClassTF].Total),
				report.Percent(res.ByClass[fault.ClassSOF].Detected, res.ByClass[fault.ClassSOF].Total),
				report.Percent(res.ByClass[fault.ClassAF].Detected, res.ByClass[fault.ClassAF].Total),
				report.Percent(res.Detected, res.Total))
		}
	}
	return t
}

// ExperimentCoupling regenerates the §3 multi-cell claim (E5):
// coupling fault coverage versus iteration count and extended phase
// blocks.
func ExperimentCoupling(n int) *report.Table {
	t := report.New(
		fmt.Sprintf("§3 (E5) — coupling fault coverage vs iterations, WOM m=4, n=%d", n),
		"scheme", "iters", "CFin", "CFid", "CFst", "BF", "total")
	gen := prt.PaperWOMConfig().Gen
	pairs := fault.AdjacentPairs(n)
	pairs = append(pairs, fault.SamplePairs(n, 4, 20, SampleSeed(7))...)
	u := fault.Universe{Name: "coupling", Faults: fault.CouplingUniverse(pairs)}
	mk := func() ram.Memory { return ram.NewWOM(n, 4) }
	// All seven schemes ride one session over the shared universe.
	type row struct {
		name  string
		iters int
	}
	var rows []row
	var runners []coverage.Runner
	for it := 1; it <= 4; it++ {
		rows = append(rows, row{"PRT", it})
		runners = append(runners, coverage.PRTRunner(prt.StandardScheme4(gen).Truncate(it)))
	}
	for _, blocks := range []int{2, 3, 4} {
		rows = append(rows, row{fmt.Sprintf("PRT-x%d", blocks), 4 * blocks})
		runners = append(runners, coverage.PRTRunner(prt.ExtendedScheme(gen, blocks)))
	}
	for i, res := range coverage.Compare(runners, u, mk, 0) {
		t.AddRowf(rows[i].name, fmt.Sprintf("%d", rows[i].iters),
			report.Percent(res.ByClass[fault.ClassCFin].Detected, res.ByClass[fault.ClassCFin].Total),
			report.Percent(res.ByClass[fault.ClassCFid].Detected, res.ByClass[fault.ClassCFid].Total),
			report.Percent(res.ByClass[fault.ClassCFst].Detected, res.ByClass[fault.ClassCFst].Total),
			report.Percent(res.ByClass[fault.ClassBF].Detected, res.ByClass[fault.ClassBF].Total),
			report.Percent(res.Detected, res.Total))
	}
	return t
}

// ExperimentPRTvsMarch regenerates the op-count/coverage comparison
// (E6): the classical March algorithms against PRT schemes on the
// standard universe.
func ExperimentPRTvsMarch(n, m int) *report.Table {
	t := report.New(
		fmt.Sprintf("§3/§4 (E6) — PRT vs March: ops and coverage, n=%d m=%d", n, m),
		"algorithm", "ops/cell", "ops(clean)", "coverage", "SAF", "TF", "CF*", "AF")
	u := fault.StandardUniverse(n, m, 10, SampleSeed(5))
	mk := func() ram.Memory { return ram.NewWOM(n, m) }
	bgs := march.DataBackgrounds(m)

	runners := []coverage.Runner{
		coverage.MarchRunner(march.MATSPlus(), bgs),
		coverage.MarchRunner(march.MarchX(), bgs),
		coverage.MarchRunner(march.MarchY(), bgs),
		coverage.MarchRunner(march.MarchCMinus(), bgs),
		coverage.MarchRunner(march.MarchA(), bgs),
		coverage.MarchRunner(march.MarchB(), bgs),
	}
	gen := prt.PaperWOMConfig().Gen
	if m != 4 {
		f := gf.NewField(m)
		gen = lfsr.MustGenPoly(f, []gf.Elem{1, 2 % (f.Mask() + 1), 2 % (f.Mask() + 1)})
	}
	prtRunners := []coverage.Runner{
		coverage.PRTRunner(prt.StandardScheme3(gen).SignatureOnly()),
		coverage.PRTRunner(prt.StandardScheme3(gen)),
		coverage.PRTRunner(prt.StandardScheme4(gen)),
		coverage.PRTRunner(prt.ExtendedScheme(gen, 2)),
	}
	opsPerCell := map[string]int{}
	for _, r := range []march.Test{march.MATSPlus(), march.MarchX(), march.MarchY(), march.MarchCMinus(), march.MarchA(), march.MarchB()} {
		opsPerCell[r.Name] = r.OpsPerCell() * len(bgs)
	}
	opsPerCell["PRT-3/sig"] = prt.StandardScheme3(gen).SignatureOnly().OpsPerCell()
	opsPerCell["PRT-3"] = prt.StandardScheme3(gen).OpsPerCell()
	opsPerCell["PRT-4"] = prt.StandardScheme4(gen).OpsPerCell()
	opsPerCell["PRT-x2"] = prt.ExtendedScheme(gen, 2).OpsPerCell()

	for _, res := range coverage.Compare(append(runners, prtRunners...), u, mk, 0) {
		cfDet, cfTot := coverage.Sum(res.ByClass,
			fault.ClassCFin, fault.ClassCFid, fault.ClassCFst, fault.ClassBF, fault.ClassIWCF)
		t.AddRowf(res.Runner,
			fmt.Sprintf("%dn", opsPerCell[res.Runner]),
			fmt.Sprintf("%d", res.OpsCleanRun),
			report.Percent(res.Detected, res.Total),
			report.Percent(res.ByClass[fault.ClassSAF].Detected, res.ByClass[fault.ClassSAF].Total),
			report.Percent(res.ByClass[fault.ClassTF].Detected, res.ByClass[fault.ClassTF].Total),
			report.Percent(cfDet, cfTot),
			report.Percent(res.ByClass[fault.ClassAF].Detected, res.ByClass[fault.ClassAF].Total))
	}
	return t
}

// ExperimentBISTOverhead regenerates the §4 overhead claim (E7): the
// gate-equivalent budget relative to memory capacity across sizes,
// crossing the paper's 2^-20 bound.
func ExperimentBISTOverhead() *report.Table {
	t := report.New("§4 (E7) — BIST hardware overhead vs capacity (bound 2^-20)",
		"cells", "bits", "gate-eq", "ratio", "log2(ratio)", "<2^-20")
	gm := bist.DefaultGateModel()
	for _, logN := range []int{10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30} {
		n := 1 << uint(logN)
		p := bist.Params{N: n, M: 4, Gen: lfsr.PaperGenPoly(), Ports: 1, Iterations: 3}
		b, err := bist.ForPRT(p)
		if err != nil {
			panic(err)
		}
		ratio := bist.OverheadRatio(b, n, 4, gm)
		t.AddRowf(
			fmt.Sprintf("2^%d", logN),
			fmt.Sprintf("2^%d", logN+2),
			fmt.Sprintf("%.0f", b.GateEquivalents(gm)),
			fmt.Sprintf("%.2e", ratio),
			fmt.Sprintf("%.1f", math.Log2(ratio)),
			fmt.Sprintf("%v", ratio < math.Pow(2, -20)))
	}
	return t
}

// ExperimentMarkov regenerates the §3 resolution analysis (E8): the
// Markov-chain detection probability of the π-test per iteration
// count for several word widths.
func ExperimentMarkov() *report.Table {
	t := report.New("§3 (E8) — Markov-chain π-test resolution (k=2)",
		"m", "alias 2^-(mk)", "P(det) it=1", "it=2", "it=3", "it=5", "iters→99.9%")
	for _, m := range []int{1, 4, 8, 16} {
		p := markov.PRTModel{M: m, K: 2, PExcite: 1}
		row := []string{fmt.Sprintf("%d", m), fmt.Sprintf("%.2e", p.AliasProbability())}
		for _, it := range []int{1, 2, 3, 5} {
			d, err := p.DetectionProbability(it)
			if err != nil {
				panic(err)
			}
			row = append(row, fmt.Sprintf("%.6f", d))
		}
		it, err := p.IterationsFor(0.999)
		if err != nil {
			panic(err)
		}
		row = append(row, fmt.Sprintf("%d", it))
		t.AddRowf(row...)
	}
	return t
}

// ExperimentIntraWord regenerates the §2 intra-word comparison (E9):
// parallel versus random bit-lane trajectories, plus the word-automaton
// scheme, on the intra-word coupling universe.
func ExperimentIntraWord(n, m int) *report.Table {
	t := report.New(
		fmt.Sprintf("§2 (E9) — intra-word faults: parallel vs random lanes, n=%d m=%d", n, m),
		"scheme", "iters", "IWCF coverage")
	u := fault.Universe{Name: "intra-word", Faults: fault.IntraWordUniverse(n, m)}
	mk := func() ram.Memory { return ram.NewWOM(n, m) }
	// Eleven runners, one universe, one session.
	var runners []coverage.Runner
	var iterLabels []string
	for _, mode := range []prt.LaneMode{prt.ParallelLanes, prt.RandomLanes} {
		for _, iters := range []int{1, 3, 6, 8} {
			runners = append(runners, coverage.BitSlicedRunner(
				fmt.Sprintf("bit-sliced/%v", mode),
				prt.BitSlicedScheme(m, mode, iters)))
			iterLabels = append(iterLabels, fmt.Sprintf("%d", iters))
		}
	}
	gen := prt.PaperWOMConfig().Gen
	for _, blocks := range []int{1, 2, 4} {
		runners = append(runners, coverage.PRTRunner(prt.ExtendedScheme(gen, blocks)))
		iterLabels = append(iterLabels, fmt.Sprintf("%d", 4*blocks))
	}
	for i, res := range coverage.Compare(runners, u, mk, 0) {
		t.AddRowf(res.Runner, iterLabels[i],
			report.Percent(res.Detected, res.Total))
	}
	return t
}

// ExperimentQualityFactors regenerates the §3 three-factor study
// (E10): polynomial structure, initial values and trajectory, varied
// one at a time against the signature-only baseline.
func ExperimentQualityFactors(n int) *report.Table {
	t := report.New(
		fmt.Sprintf("§3 (E10) — quality factors of the π-test (signature-only, 3 iterations), BOM n=%d", n),
		"factor", "setting", "coverage")
	u := fault.StandardUniverse(n, 1, 10, SampleSeed(3))
	mk := func() ram.Memory { return ram.NewBOM(n) }
	f1 := gf.NewField(1)

	// The factor grid shares one universe: collect every variant and
	// run them as one session (names collide across settings — "PRT-3/
	// sig" appears nine times — which is exactly why the program cache
	// keys on configuration, not name).
	type variant struct{ factor, setting string }
	var labels []variant
	var runners []coverage.Runner
	run := func(factor, setting string, s prt.Scheme) {
		labels = append(labels, variant{factor, setting})
		runners = append(runners, coverage.PRTRunner(s.SignatureOnly()))
	}
	// Factor 1: polynomial structure.  (Ordered slices, not maps — the
	// table row order must be deterministic across runs.)
	gens := []struct {
		name string
		g    lfsr.GenPoly
	}{
		{"g=1+x+x^2 (period 3)", lfsr.MustGenPoly(f1, []gf.Elem{1, 1, 1})},
		{"g=1+x+x^3 (period 7)", lfsr.MustGenPoly(f1, []gf.Elem{1, 1, 0, 1})},
		{"g=1+x+x^4 (period 15)", lfsr.MustGenPoly(f1, []gf.Elem{1, 1, 0, 0, 1})},
	}
	for _, e := range gens {
		run("polynomial", e.name, prt.StandardScheme3(e.g))
	}
	// Factor 2: initial values (seed phases of the same automaton).
	g := lfsr.MustGenPoly(f1, []gf.Elem{1, 1, 1})
	seeds := []struct {
		name string
		seed []gf.Elem
	}{
		{"seed (1,0)", []gf.Elem{1, 0}},
		{"seed (1,1)", []gf.Elem{1, 1}},
		{"seed (0,1)", []gf.Elem{0, 1}},
	}
	for _, e := range seeds {
		s := prt.StandardScheme3(g)
		it0 := s.Iters[0]
		it0.Seed = e.seed
		s.Iters[0] = it0
		run("initial values", e.name, s)
	}
	// Factor 3: trajectory of the first iteration.
	for _, e := range []struct {
		name string
		tr   prt.Trajectory
	}{
		{"ascending", prt.Ascending},
		{"descending", prt.Descending},
		{"random", prt.Random},
	} {
		s := prt.StandardScheme3(g)
		it0 := s.Iters[0]
		it0.Trajectory = e.tr
		it0.PermSeed = 11
		s.Iters[0] = it0
		run("trajectory", e.name, s)
	}
	for i, res := range coverage.Compare(runners, u, mk, 0) {
		t.AddRowf(labels[i].factor, labels[i].setting, report.Percent(res.Detected, res.Total))
	}
	return t
}

// ExperimentMultiplierSynthesis regenerates the §2 constant-multiplier
// claim (E11): XOR gate counts before/after CSE for every constant of
// GF(2^4), plus the GF(2^8) aggregate.
func ExperimentMultiplierSynthesis() *report.Table {
	t := report.New("§2 (E11) — constant multiplier synthesis, GF(2^4) mod 1+z+z^4",
		"constant", "naive XORs", "CSE XORs", "saved", "depth")
	f4 := gf.NewField(4)
	for _, c := range xorsynth.SurveyField(f4) {
		t.AddRowf(
			f4.FormatElem(c.Constant),
			fmt.Sprintf("%d", c.NaiveGates),
			fmt.Sprintf("%d", c.CSEGates),
			fmt.Sprintf("%d", c.Saved()),
			fmt.Sprintf("%d", c.CSEDepth))
	}
	f8 := gf.NewField(8)
	naive, cse := 0, 0
	for _, c := range xorsynth.SurveyField(f8) {
		naive += c.NaiveGates
		cse += c.CSEGates
	}
	t.AddRowf("GF(2^8) total", fmt.Sprintf("%d", naive), fmt.Sprintf("%d", cse),
		fmt.Sprintf("%d", naive-cse), "-")
	return t
}

// ExperimentNPSF is extension experiment E12: neighbourhood pattern
// sensitive fault coverage of PRT versus the March baselines on a
// bit-oriented array with the given grid width.  Neither family
// targets NPSF explicitly; the varied pseudo-ring TDB activates many
// neighbourhood patterns as a side effect.
func ExperimentNPSF(n, width int) *report.Table {
	t := report.New(
		fmt.Sprintf("E12 (extension) — NPSF coverage, BOM n=%d grid width %d", n, width),
		"algorithm", "SNPSF", "ANPSF", "total")
	snpsf := fault.Universe{Name: "snpsf", Faults: fault.NPSFUniverse(n, width, 1)}
	anpsf := fault.Universe{Name: "anpsf", Faults: fault.ANPSFUniverse(n, width, 2)}
	mk := func() ram.Memory { return ram.NewBOM(n) }
	gen := prt.PaperBOMConfig().Gen
	runners := []coverage.Runner{
		coverage.MarchRunner(march.MarchCMinus(), nil),
		coverage.MarchRunner(march.MarchSS(), nil),
		coverage.PRTRunner(prt.StandardScheme3(gen)),
		coverage.PRTRunner(prt.ExtendedScheme(gen, 3)),
	}
	// One session per universe; rows zip the two.
	resS := coverage.Compare(runners, snpsf, mk, 0)
	resA := coverage.Compare(runners, anpsf, mk, 0)
	for i := range runners {
		rs, ra := resS[i], resA[i]
		t.AddRowf(rs.Runner,
			report.Percent(rs.Detected, rs.Total),
			report.Percent(ra.Detected, ra.Total),
			report.Percent(rs.Detected+ra.Detected, rs.Total+ra.Total))
	}
	return t
}

// ExperimentRetention is extension experiment E13: data-retention
// (DRF) coverage as a function of the decay delay relative to the test
// length.  A fault whose retention time exceeds the whole test escapes
// any algorithm without an explicit pause, reproducing why production
// flows insert delay elements.
func ExperimentRetention(n int) *report.Table {
	t := report.New(
		fmt.Sprintf("E13 (extension) — data retention faults vs decay delay, WOM m=4 n=%d", n),
		"decay delay (ops)", "PRT-3", "March C-")
	mk := func() ram.Memory { return ram.NewWOM(n, 4) }
	gen := prt.PaperWOMConfig().Gen
	prtR := coverage.PRTRunner(prt.StandardScheme3(gen))
	marchR := coverage.MarchRunner(march.MarchCMinus(), march.DataBackgrounds(4))
	for _, delay := range []uint64{64, 256, 1024, 4096, 1 << 20} {
		u := fault.Universe{
			Name:   "drf",
			Faults: fault.RetentionUniverse(n, 4, delay),
		}
		rs := coverage.Compare([]coverage.Runner{prtR, marchR}, u, mk, 0)
		t.AddRowf(fmt.Sprintf("%d", delay),
			report.Percent(rs[0].Detected, rs[0].Total),
			report.Percent(rs[1].Detected, rs[1].Total))
	}
	return t
}

// ExperimentRingMode is ablation experiment E14: plain (Fin = last k
// cells) versus wrap-around ring iterations across array sizes,
// reporting closure and single-iteration coverage on the single-cell
// universe.  The ring costs k extra steps and changes the closure
// condition from (n-k) ≡ 0 to n ≡ 0 (mod period).
func ExperimentRingMode(sizes []int) *report.Table {
	t := report.New("E14 (ablation) — plain vs ring iterations, WOM m=4",
		"n", "mode", "ring closes", "ops", "1-iter coverage")
	for _, n := range sizes {
		u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 4)}
		mk := func() ram.Memory { return ram.NewWOM(n, 4) }
		for _, ring := range []bool{false, true} {
			cfg := prt.PaperWOMConfig()
			cfg.Ring = ring
			mode := "plain"
			if ring {
				mode = "ring"
			}
			s := prt.Scheme{Name: "PRT-1/" + mode, Iters: []prt.Config{cfg}}
			res := coverage.Campaign(coverage.PRTRunner(s), u, mk, 0)
			t.AddRowf(fmt.Sprintf("%d", n), mode,
				fmt.Sprintf("%v", prt.RingCloses(cfg, n)),
				fmt.Sprintf("%d", res.OpsCleanRun),
				report.Percent(res.Detected, res.Total))
		}
	}
	return t
}

// ExperimentMISR is ablation experiment E15: the exact per-read
// comparator of the verify pass versus MISR signature compression of
// the same read-back stream, on the single-cell universe.  MISR costs
// one m-bit register instead of n comparisons; the measured coverage
// difference quantifies the aliasing the markov model predicts
// (≈2^-m for random multi-error patterns; single-cell faults never
// produce a lone-error alias, so the gap is small).  Both compressed
// rows run on the compiled replay engine: their signature comparisons
// are recorded as observer annotations, so aliasing replays exactly.
func ExperimentMISR(n int) *report.Table {
	t := report.New(
		fmt.Sprintf("E15 (ablation) — exact verify vs MISR-compressed verify, WOM m=4 n=%d", n),
		"checker", "coverage (single-cell universe)")
	u := fault.Universe{Name: "single", Faults: fault.SingleCellUniverse(n, 4)}
	mk := func() ram.Memory { return ram.NewWOM(n, 4) }

	rs := coverage.Compare([]coverage.Runner{
		coverage.PRTRunner(prt.PaperWOMScheme3()),
		misrCompressedRunner{n: n},
		coverage.BISTRunner(prt.PaperWOMScheme3(), 0),
	}, u, mk, 0)
	t.AddRowf("exact comparator", report.Percent(rs[0].Detected, rs[0].Total))
	t.AddRowf("MISR-compressed", report.Percent(rs[1].Detected, rs[1].Total))
	t.AddRowf("BIST controller (compressed)", report.Percent(rs[2].Detected, rs[2].Total))
	return t
}

// misrCompressedRunner runs the 3-iteration scheme with signature-only
// detection plus a MISR compression of each iteration's read-back
// stream compared against the compressed prediction.
type misrCompressedRunner struct{ n int }

func (misrCompressedRunner) Name() string { return "PRT-3/misr" }

// ReplaySafe implements coverage.ReplaySafe: the scheme's stimuli are
// annotated affine recurrences, its Fin checks are checked reads, and
// the MISR read-back is annotated as a signature observer, so the
// replay engines reproduce the compressed detection — aliasing
// included — exactly.
func (misrCompressedRunner) ReplaySafe() {}

// TraceKey implements coverage.TraceKeyer: n is the runner's entire
// configuration.
func (r misrCompressedRunner) TraceKey() string {
	return fmt.Sprintf("misr-compressed:n=%d", r.n)
}

func (r misrCompressedRunner) Run(mem ram.Memory) (bool, uint64) {
	gen := prt.PaperWOMConfig().Gen
	f := gen.Field
	s := prt.PaperWOMScheme3().SignatureOnly()
	res, err := s.Run(mem)
	if err != nil {
		panic(err)
	}
	detected := res.Detected
	ops := res.Ops
	// Compress a final read-back of the last iteration's TDB.  The
	// last scheme iteration is the mirror of iteration 1, so the
	// expected contents equal iteration 1's TDB by construction.
	cfg := s.Iters[0]
	want := prt.ExpectedSequence(cfg, mem.Size())
	sig, err := bist.NewMISR(f, 0)
	if err != nil {
		panic(err)
	}
	step, tap := sig.FoldMatrices()
	const obs = 0
	for a := 0; a < mem.Size(); a++ {
		v := gf.Elem(mem.Read(a))
		ram.AnnotateFold(mem, obs, step, tap)
		ops++
		sig.Feed(v)
	}
	ram.AnnotateObserved(mem, obs)
	sigWant, err := bist.Predict(f, 0, want)
	if err != nil {
		panic(err)
	}
	if sig.Signature() != sigWant {
		detected = true
	}
	return detected, ops
}

// ExperimentMISRAliasing is scaled experiment E16: observed signature
// aliasing versus the markov model's 2^-w prediction, sweeping memory
// size × signature width.  A bit-oriented π-test walk (the paper's
// g = 1+x+x² automaton) plus a full read-back produce one fixed read
// stream per fault; the stream is observed two ways with identical
// excitation: an exact per-read comparator (the detection upper
// bound), and the §4 BIST observer — a w-bit serial signature register
// over GF(2^w) compressing every read, compared once against the
// model's prediction.  Errors that propagate through the walking
// automaton contribute many corrupted reads, so multi-error patterns
// are common, and the fraction of exact-detected faults the register
// misses is the observed aliasing, which the markov model puts at 2^-w
// for a random surviving error (single-read errors never alias, which
// is why the observed rate sits below the bound).  Every campaign here
// rides the compiled observer replay.
func ExperimentMISRAliasing(sizes, widths []int) *report.Table {
	t := report.New("E16 (scaled) — BIST signature aliasing: observed escape rate vs the 2^-w model",
		"n", "w", "exact", "sisr", "detected(exact)", "escaped", "observed", "2^-w")
	for _, n := range sizes {
		pairs := fault.AdjacentPairs(n)
		pairs = append(pairs, fault.SamplePairs(n, 1, 48, SampleSeed(5))...)
		u := fault.Universe{Name: "coupling", Faults: fault.CouplingUniverse(pairs)}
		mk := func() ram.Memory { return ram.NewBOM(n) }
		// One session per size: the exact comparator and every register
		// width observe the same universe.  Dropping is pinned off (not
		// Compare's global default): the escape rate below subtracts
		// sisr.Detected from exact.Detected, which is only meaningful
		// when every runner sees the full universe unconditionally.
		runners := []coverage.Runner{sisrRunner{exact: true}}
		for _, w := range widths {
			runners = append(runners, sisrRunner{w: w})
		}
		p := coverage.Plan{
			Runners: runners, Universe: u, Memory: mk,
			Engine: coverage.DefaultEngine(), Cache: coverage.SharedProgramCache(),
		}
		rs := p.Run().Results
		exact := rs[0]
		for i, w := range widths {
			sisr := rs[i+1]
			escaped := exact.Detected - sisr.Detected
			observed := 0.0
			if exact.Detected > 0 {
				observed = float64(escaped) / float64(exact.Detected)
			}
			model := markov.PRTModel{M: w, K: 1, PExcite: 1}
			t.AddRowf(fmt.Sprintf("%d", n), fmt.Sprintf("%d", w),
				report.Percent(exact.Detected, exact.Total),
				report.Percent(sisr.Detected, sisr.Total),
				fmt.Sprintf("%d", exact.Detected),
				fmt.Sprintf("%d", escaped),
				fmt.Sprintf("%.4f", observed),
				fmt.Sprintf("%.4f", model.AliasProbability()))
		}
	}
	return t
}

// sisrRunner is the E16 workload: one bit-oriented π-walk (seed,
// recurrence writes reading their operands back from the memory, then
// a full read-back), with every read observed either exactly or
// through a w-bit serial signature register.  Both modes execute the
// identical operation schedule, so they excite faults identically and
// differ only in the observer.  It is replay-safe: recurrence writes
// are annotated affine maps, exact reads are checked reads, and the
// compressed stream is a signature observer with one compare point.
type sisrRunner struct {
	exact bool
	w     int // signature width (compressed mode)
}

func (r sisrRunner) Name() string {
	if r.exact {
		return "π-walk/exact"
	}
	return fmt.Sprintf("π-walk/sisr-w%d", r.w)
}

// ReplaySafe implements coverage.ReplaySafe.
func (sisrRunner) ReplaySafe() {}

// TraceKey implements coverage.TraceKeyer: the mode and register width
// are the runner's entire configuration.
func (r sisrRunner) TraceKey() string {
	return fmt.Sprintf("sisr:w=%d,exact=%t", r.w, r.exact)
}

func (r sisrRunner) Run(mem ram.Memory) (bool, uint64) {
	cfg := prt.PaperBOMConfig()
	f := cfg.Gen.Field
	taps := cfg.Gen.Taps()
	k := cfg.Gen.K()
	n := mem.Size()
	// Ascending trajectory: address == trajectory position, so the
	// clean TDB indexed by address is the automaton sequence itself.
	want := prt.ExpectedSequence(cfg, n)

	var detected bool
	var ops uint64
	var sig, pred *bist.MISR
	var step, tap []uint32
	const obs = 0
	if !r.exact {
		fw := gf.NewField(r.w)
		var err error
		if sig, err = bist.NewMISR(fw, 0); err != nil {
			panic(err)
		}
		if pred, err = bist.NewMISR(fw, 0); err != nil {
			panic(err)
		}
		step, _ = sig.FoldMatrices()
		tap = make([]uint32, r.w)
		tap[0] = 1 // the single read bit feeds accumulator bit 0
	}
	observe := func(v, wantV gf.Elem) {
		if r.exact {
			ram.AnnotateChecked(mem)
			if v != wantV {
				detected = true
			}
			return
		}
		ram.AnnotateFold(mem, obs, step, tap)
		sig.Feed(v & 1)
		pred.Feed(wantV & 1)
	}

	// Replay annotation of the recurrence writes: read order is
	// c_{i-1} then c_{i-2}, so tap a_j applies to the read k-j+1 back.
	var linBack []int
	var linRows [][]uint32
	if _, tracing := mem.(ram.TraceAnnotator); tracing {
		linBack = make([]int, k)
		linRows = make([][]uint32, k)
		for j := 1; j <= k; j++ {
			linBack[j-1] = k - j + 1
			linRows[j-1] = f.ConstMulMatrix(taps[j-1]).Rows
		}
	}

	for i := 0; i < k; i++ {
		mem.Write(i, ram.Word(cfg.Seed[i]))
		ops++
	}
	for i := k; i < n; i++ {
		next := cfg.Offset
		for j := 1; j <= k; j++ {
			v := gf.Elem(mem.Read(i - j))
			ops++
			observe(v, want[i-j])
			next = f.Add(next, f.Mul(taps[j-1], v))
		}
		mem.Write(i, ram.Word(next))
		if linBack != nil {
			ram.AnnotateLinear(mem, linBack, linRows, ram.Word(cfg.Offset))
		}
		ops++
	}
	for a := 0; a < n; a++ {
		v := gf.Elem(mem.Read(a))
		ops++
		observe(v, want[a])
	}
	if !r.exact {
		ram.AnnotateObserved(mem, obs)
		if sig.Signature() != pred.Signature() {
			detected = true
		}
	}
	return detected, ops
}

// ExperimentExhaustiveCoupling is streaming experiment E17: exact
// escape counts over the exhaustive two-cell coupling universe versus
// the sampled-pair estimates the harness (like the paper's evaluation)
// otherwise relies on.  For each memory size the full population —
// every ordered aggressor→victim cell pair expanded into the 12-fault
// sub-type set, n·(n-1)·12 instances — streams through the campaign
// engine in bounded chunks (fault.FullCouplingSource), so the exact
// escape count is computed without ever materializing the universe;
// the sampled row replays the classical methodology (uniform random
// pairs, escape rate extrapolated to the population) against the same
// algorithm.  The difference between the extrapolated and the exact
// count is the sampling error the streaming path eliminates.  At the
// -exhaustive-cf sizes the exact column covers universes of millions
// of instances — memory-infeasible for the materialized path, pure
// simulation time for the streaming one.
func ExperimentExhaustiveCoupling(sizes []int, samples int) *report.Table {
	t := report.New(
		"E17 (streaming) — exhaustive CF escape counts vs sampled estimates, BOM",
		"n", "CF universe", "algorithm", "sampled pairs", "sampled escape rate", "est. escapes", "exact escapes", "est. error")
	gen := prt.PaperBOMConfig().Gen
	runners := []coverage.Runner{
		coverage.PRTRunner(prt.StandardScheme3(gen)),
		coverage.MarchRunner(march.MarchCMinus(), nil),
	}
	for _, n := range sizes {
		mk := func() ram.Memory { return ram.NewBOM(n) }
		full := fault.FullCouplingSource(n)
		count, _ := full.Count()
		sampled := fault.Universe{
			Name:   "cf-sampled",
			Faults: fault.CouplingUniverse(fault.SamplePairs(n, 1, samples, SampleSeed(11))),
		}
		for _, r := range runners {
			sres := coverage.Campaign(r, sampled, mk, 0)
			rate := 1 - sres.Coverage()
			est := rate * float64(count)
			xres := coverage.CampaignStream(r, &fault.Stream{Name: "cf-exhaustive", Source: full}, mk, 0, 0)
			exact := xres.Total - xres.Detected
			errCol := "n/a"
			if exact > 0 {
				errCol = fmt.Sprintf("%+.1f%%", 100*(est-float64(exact))/float64(exact))
			}
			t.AddRowf(
				fmt.Sprintf("%d", n),
				fmt.Sprintf("%d", count),
				r.Name(),
				fmt.Sprintf("%d", samples),
				fmt.Sprintf("%.4f", rate),
				fmt.Sprintf("%.0f", est),
				fmt.Sprintf("%d", exact),
				errCol)
		}
	}
	return t
}

// AllExperiments returns every experiment table with default
// parameters — the full regeneration pass used by cmd/faultcov and the
// benches.
func AllExperiments() []*report.Table {
	return []*report.Table{
		ExperimentFig1a(16),
		ExperimentFig1b(257),
		ExperimentFig2([]int{64, 256, 1024}),
		ExperimentSingleCell(48),
		ExperimentCoupling(48),
		ExperimentPRTvsMarch(48, 4),
		ExperimentBISTOverhead(),
		ExperimentMarkov(),
		ExperimentIntraWord(32, 4),
		ExperimentQualityFactors(48),
		ExperimentMultiplierSynthesis(),
		ExperimentNPSF(64, 8),
		ExperimentRetention(48),
		ExperimentRingMode([]int{64, 255, 257}),
		ExperimentMISR(64),
		ExperimentMISRAliasing([]int{64, 256}, []int{1, 2, 4, 8, 16}),
		ExperimentExhaustiveCoupling([]int{48, 96}, 64),
	}
}
