// Package fault models the functional memory fault classes the paper
// evaluates pseudo-ring testing against, following the taxonomy of
// van de Goor ("Testing Semiconductor Memories", the paper's [1]):
//
//   - SAF: stuck-at-0/1 cell (bit) faults
//   - TF: transition faults (a bit cannot rise ↑ or cannot fall ↓)
//   - SOF: stuck-open cells (reads return the previous sensed value)
//   - DRF: data-retention faults (a bit decays after a delay)
//   - AF: address-decoder faults (no access, aliased access, multi access)
//   - CFin/CFid/CFst: inversion / idempotent / state coupling faults
//   - BF: AND/OR bridging faults
//   - intra-word coupling (aggressor and victim bits in the same cell),
//     the WOM-specific class §2 of the paper targets with parallel
//     bit automatons
//
// Every fault knows how to inject itself into a fresh memory via
// Inject, which wraps a base ram.Memory with a behavioural decorator.
// Injection never mutates the base model's semantics for other cells,
// so campaigns can reuse one golden model per worker.
package fault

import (
	"fmt"

	"repro/internal/ram"
)

// Class identifies the functional fault model of a Fault.
type Class int

// Fault classes, van de Goor taxonomy.
const (
	ClassSAF Class = iota
	ClassTF
	ClassSOF
	ClassDRF
	ClassAF
	ClassCFin
	ClassCFid
	ClassCFst
	ClassBF
	ClassIWCF // intra-word coupling
	ClassNPSF // neighbourhood pattern sensitive
	numClasses
)

// Classes lists all classes in declaration order.
func Classes() []Class {
	out := make([]Class, numClasses)
	for i := range out {
		out[i] = Class(i)
	}
	return out
}

func (c Class) String() string {
	switch c {
	case ClassSAF:
		return "SAF"
	case ClassTF:
		return "TF"
	case ClassSOF:
		return "SOF"
	case ClassDRF:
		return "DRF"
	case ClassAF:
		return "AF"
	case ClassCFin:
		return "CFin"
	case ClassCFid:
		return "CFid"
	case ClassCFst:
		return "CFst"
	case ClassBF:
		return "BF"
	case ClassIWCF:
		return "IWCF"
	case ClassNPSF:
		return "NPSF"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Fault is a single injectable memory fault.
type Fault interface {
	// Class returns the functional fault model.
	Class() Class
	// Inject wraps base with the fault's behaviour.  The wrapper shares
	// storage with base.
	Inject(base ram.Memory) ram.Memory
	// String describes the fault instance, e.g. "SAF1@c17.b2".
	String() string
}

// bit returns bit b of v.
func bit(v ram.Word, b int) ram.Word { return v >> uint(b) & 1 }

// setBit returns v with bit b set to x&1.
func setBit(v ram.Word, b int, x ram.Word) ram.Word {
	if x&1 == 1 {
		return v | 1<<uint(b)
	}
	return v &^ (1 << uint(b))
}

// --- SAF ---

// SAF is a stuck-at fault: bit Bit of cell Cell always reads Value and
// ignores writes.
type SAF struct {
	Cell  int
	Bit   int
	Value ram.Word // 0 or 1
}

// Class implements Fault.
func (f SAF) Class() Class { return ClassSAF }

func (f SAF) String() string {
	return fmt.Sprintf("SAF%d@c%d.b%d", f.Value&1, f.Cell, f.Bit)
}

// Inject implements Fault.
func (f SAF) Inject(base ram.Memory) ram.Memory {
	// Force the stored value immediately: a physical stuck-at defect
	// holds the node at the faulty level from power-on.
	base.Write(f.Cell, setBit(base.Read(f.Cell), f.Bit, f.Value))
	return &safMem{Memory: base, f: f}
}

type safMem struct {
	ram.Memory
	f SAF
}

func (m *safMem) Read(addr int) ram.Word {
	v := m.Memory.Read(addr)
	if addr == m.f.Cell {
		v = setBit(v, m.f.Bit, m.f.Value)
	}
	return v
}

func (m *safMem) Write(addr int, v ram.Word) {
	if addr == m.f.Cell {
		v = setBit(v, m.f.Bit, m.f.Value)
	}
	m.Memory.Write(addr, v)
}

// --- TF ---

// TF is a transition fault: bit Bit of cell Cell cannot make the Up
// (0→1) transition when Up is true, or cannot make the 1→0 transition
// when Up is false.  The failed transition leaves the old value.
type TF struct {
	Cell int
	Bit  int
	Up   bool
}

// Class implements Fault.
func (f TF) Class() Class { return ClassTF }

func (f TF) String() string {
	dir := "up"
	if !f.Up {
		dir = "down"
	}
	return fmt.Sprintf("TF%s@c%d.b%d", dir, f.Cell, f.Bit)
}

// Inject implements Fault.
func (f TF) Inject(base ram.Memory) ram.Memory {
	return &tfMem{Memory: base, f: f}
}

type tfMem struct {
	ram.Memory
	f TF
}

func (m *tfMem) Write(addr int, v ram.Word) {
	if addr == m.f.Cell {
		old := m.Memory.Read(addr)
		ob, nb := bit(old, m.f.Bit), bit(v, m.f.Bit)
		if m.f.Up && ob == 0 && nb == 1 {
			v = setBit(v, m.f.Bit, 0) // rise blocked
		}
		if !m.f.Up && ob == 1 && nb == 0 {
			v = setBit(v, m.f.Bit, 1) // fall blocked
		}
	}
	m.Memory.Write(addr, v)
}

// --- SOF ---

// SOF is a stuck-open fault: cell Cell is disconnected.  A read of the
// cell returns the previous value sensed by the read amplifier (the
// last value read from any cell); writes to the cell are lost.
type SOF struct {
	Cell int
}

// Class implements Fault.
func (f SOF) Class() Class { return ClassSOF }

func (f SOF) String() string { return fmt.Sprintf("SOF@c%d", f.Cell) }

// Inject implements Fault.
func (f SOF) Inject(base ram.Memory) ram.Memory {
	return &sofMem{Memory: base, f: f}
}

type sofMem struct {
	ram.Memory
	f        SOF
	lastRead ram.Word
}

func (m *sofMem) Read(addr int) ram.Word {
	if addr == m.f.Cell {
		return m.lastRead
	}
	v := m.Memory.Read(addr)
	m.lastRead = v
	return v
}

func (m *sofMem) Write(addr int, v ram.Word) {
	if addr == m.f.Cell {
		return // write lost
	}
	m.Memory.Write(addr, v)
}

// --- DRF ---

// DRF is a data-retention fault: bit Bit of cell Cell leaks to Decay
// once Delay memory operations elapse since the cell was last written.
type DRF struct {
	Cell  int
	Bit   int
	Decay ram.Word // value the bit decays to
	Delay uint64   // operations before decay
}

// Class implements Fault.
func (f DRF) Class() Class { return ClassDRF }

func (f DRF) String() string {
	return fmt.Sprintf("DRF->%d@c%d.b%d/%d", f.Decay&1, f.Cell, f.Bit, f.Delay)
}

// Inject implements Fault.
func (f DRF) Inject(base ram.Memory) ram.Memory {
	return &drfMem{Memory: base, f: f}
}

type drfMem struct {
	ram.Memory
	f         DRF
	clock     uint64
	lastWrite uint64
}

func (m *drfMem) decayed() bool { return m.clock-m.lastWrite > m.f.Delay }

func (m *drfMem) Read(addr int) ram.Word {
	m.clock++
	v := m.Memory.Read(addr)
	if addr == m.f.Cell && m.decayed() {
		v = setBit(v, m.f.Bit, m.f.Decay)
		m.Memory.Write(addr, v) // the charge is really gone
	}
	return v
}

func (m *drfMem) Write(addr int, v ram.Word) {
	m.clock++
	if addr == m.f.Cell {
		m.lastWrite = m.clock
	}
	m.Memory.Write(addr, v)
}

// --- AF ---

// AFKind selects the address-decoder fault class (van de Goor's four
// decoder fault types, reduced to their functional effect).
type AFKind int

const (
	// AFNone: the address activates no cell — reads sense the
	// discharged bit line (logic 0) and writes are lost.
	AFNone AFKind = iota
	// AFAlias: the address activates another cell instead of its own;
	// the victim cell becomes unreachable and the target doubly mapped.
	AFAlias
	// AFMulti: the address activates its own cell and an additional one
	// simultaneously; reads sense the wired-OR of both.
	AFMulti
)

func (k AFKind) String() string {
	switch k {
	case AFNone:
		return "none"
	case AFAlias:
		return "alias"
	case AFMulti:
		return "multi"
	default:
		return fmt.Sprintf("AFKind(%d)", int(k))
	}
}

// AF is an address-decoder fault at address Addr.  Target is the other
// cell involved for AFAlias and AFMulti.
type AF struct {
	Kind   AFKind
	Addr   int
	Target int
}

// Class implements Fault.
func (f AF) Class() Class { return ClassAF }

func (f AF) String() string {
	switch f.Kind {
	case AFNone:
		return fmt.Sprintf("AFnone@a%d", f.Addr)
	case AFAlias:
		return fmt.Sprintf("AFalias@a%d->c%d", f.Addr, f.Target)
	default:
		return fmt.Sprintf("AFmulti@a%d+c%d", f.Addr, f.Target)
	}
}

// Inject implements Fault.
func (f AF) Inject(base ram.Memory) ram.Memory {
	return &afMem{Memory: base, f: f}
}

type afMem struct {
	ram.Memory
	f AF
}

func (m *afMem) Read(addr int) ram.Word {
	if addr != m.f.Addr {
		return m.Memory.Read(addr)
	}
	switch m.f.Kind {
	case AFNone:
		return 0 // discharged bit lines
	case AFAlias:
		return m.Memory.Read(m.f.Target)
	default: // AFMulti: wired-OR of both activated cells
		return m.Memory.Read(addr) | m.Memory.Read(m.f.Target)
	}
}

func (m *afMem) Write(addr int, v ram.Word) {
	if addr != m.f.Addr {
		m.Memory.Write(addr, v)
		return
	}
	switch m.f.Kind {
	case AFNone:
		// lost
	case AFAlias:
		m.Memory.Write(m.f.Target, v)
	default: // AFMulti: both cells written
		m.Memory.Write(addr, v)
		m.Memory.Write(m.f.Target, v)
	}
}
