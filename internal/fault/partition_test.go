package fault

import (
	"reflect"
	"testing"
)

// A SubSource must be indistinguishable from slicing the collected
// stream, and Partition's ranges must tile the universe exactly —
// including when the k views share one underlying source.

func faultsEqual(a, b []Fault) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func TestSubSourceMatchesSlicing(t *testing.T) {
	for _, tc := range sourceCases() {
		total := len(tc.want)
		ranges := [][2]int{
			{0, total},
			{0, 0},
			{total, total},
			{0, total / 2},
			{total / 2, total},
			{total / 3, 2 * total / 3},
			{1, total - 1},
			{0, total + 100}, // clamped to the exact count
		}
		for _, r := range ranges {
			lo, hi := r[0], r[1]
			if hi < lo {
				continue
			}
			sub := SubSource(tc.src, lo, hi)
			wantHi := hi
			if wantHi > total {
				wantHi = total
			}
			want := tc.want[lo:wantHi]
			if n, exact := sub.Count(); !exact || n != len(want) {
				t.Errorf("%s[%d:%d): Count = (%d, %v), want (%d, true)",
					tc.name, lo, hi, n, exact, len(want))
			}
			for _, chunk := range []int{1, 7, 4096} {
				sub.Reset()
				got := drain(t, sub, chunk)
				if !faultsEqual(got, want) {
					t.Errorf("%s[%d:%d) chunk=%d: drained %d faults, want %d (or order differs)",
						tc.name, lo, hi, chunk, len(got), len(want))
				}
			}
		}
	}
}

func TestSubSourceSkipMatchesNext(t *testing.T) {
	for _, tc := range sourceCases() {
		total := len(tc.want)
		lo, hi := total/4, total-total/4
		for _, skip := range []int{0, 1, (hi - lo) / 2, hi - lo, hi - lo + 5} {
			sub := SubSource(tc.src, lo, hi)
			got := sub.Skip(skip)
			wantSkip := skip
			if wantSkip > hi-lo {
				wantSkip = hi - lo
			}
			if got != wantSkip {
				t.Errorf("%s: Skip(%d) = %d, want %d", tc.name, skip, got, wantSkip)
			}
			rest := drain(t, sub, 13)
			if !faultsEqual(rest, tc.want[lo+wantSkip:hi]) {
				t.Errorf("%s: stream after Skip(%d) diverges from slice [%d:%d)",
					tc.name, skip, lo+wantSkip, hi)
			}
		}
	}
}

func TestSubSourceResetRewinds(t *testing.T) {
	src := StuckOpenSource(32)
	sub := SubSource(src, 5, 25)
	first := drain(t, sub, 7)
	sub.Reset()
	second := drain(t, sub, 3)
	if !faultsEqual(first, second) {
		t.Fatal("Reset did not rewind the sub-source to its range start")
	}
}

func TestPartitionRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000, 12345} {
		for _, k := range []int{1, 2, 3, 7, 16} {
			prevHi, min, max := 0, n+1, -1
			for i := 0; i < k; i++ {
				lo, hi := PartitionRange(n, i, k)
				if lo != prevHi {
					t.Fatalf("n=%d k=%d i=%d: lo=%d, want %d (ranges must tile)", n, k, i, lo, prevHi)
				}
				if hi < lo {
					t.Fatalf("n=%d k=%d i=%d: hi=%d < lo=%d", n, k, i, hi, lo)
				}
				if sz := hi - lo; sz < min {
					min = sz
				} else if sz > max {
					max = sz
				}
				if sz := hi - lo; sz > max {
					max = sz
				}
				prevHi = hi
			}
			if prevHi != n {
				t.Fatalf("n=%d k=%d: ranges end at %d, want %d", n, k, prevHi, n)
			}
			if max >= 0 && max-min > 1 {
				t.Fatalf("n=%d k=%d: partition sizes spread %d..%d, want near-equal", n, k, min, max)
			}
		}
	}
}

func TestPartitionTilesUniverse(t *testing.T) {
	for _, tc := range sourceCases() {
		for _, k := range []int{1, 2, 3, 7} {
			parts := Partition(tc.src, k)
			var got []Fault
			for _, p := range parts {
				got = append(got, Collect(p)...)
			}
			if !faultsEqual(got, tc.want) {
				t.Errorf("%s k=%d: concatenated partitions diverge from the full stream", tc.name, k)
			}
		}
	}
}

// Partitions share one underlying source; interleaving pulls across
// them must still enumerate each range correctly, because SubSource
// re-seeks on every Next.
func TestPartitionSharedSourceInterleaved(t *testing.T) {
	src := NPSFSource(40, 8, 3)
	want := Collect(src)
	parts := Partition(src, 3)
	outs := make([][]Fault, len(parts))
	done := 0
	buf := make([]Fault, 5)
	live := make([]bool, len(parts))
	for i := range live {
		live[i] = true
	}
	for done < len(parts) {
		for i, p := range parts {
			if !live[i] {
				continue
			}
			n, ok := p.Next(buf)
			outs[i] = append(outs[i], buf[:n]...)
			if !ok {
				live[i] = false
				done++
			}
		}
	}
	var got []Fault
	for _, o := range outs {
		got = append(got, o...)
	}
	if !faultsEqual(got, want) {
		t.Fatal("interleaved pulls over shared-source partitions corrupted the enumeration")
	}
}

func TestBitSetOr(t *testing.T) {
	a, b := NewBitSet(10), NewBitSet(200)
	a.Set(3)
	a.Set(9)
	b.Set(9)
	b.Set(150)
	a.Or(b)
	for _, i := range []int{3, 9, 150} {
		if !a.Get(i) {
			t.Errorf("bit %d lost in Or", i)
		}
	}
	if a.Count() != 3 {
		t.Errorf("Count = %d, want 3", a.Count())
	}
	if got, want := len(a.Words()), len(b.Words()); got != want {
		t.Errorf("Or did not grow the receiver: %d words, want %d", got, want)
	}
	a.Or(nil)
	if a.Count() != 3 {
		t.Error("Or(nil) mutated the receiver")
	}
}
