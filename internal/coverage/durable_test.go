package coverage

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fault"
)

// The resume-equivalence property (this PR's acceptance criterion):
// for every universe family and all three engines, a session
// interrupted at an arbitrary point and resumed from its checkpoint
// produces Results byte-identical to an uninterrupted run — and the
// final checkpoint files of the two runs are byte-identical too (the
// format carries no timestamps).  Interrupt points cover the three
// qualitatively different cuts: before the first chunk, mid-stage, and
// at a stage boundary.

// cancelSource interposes on a Source to cancel a context at a chosen
// enumeration point: during the k-th chunk pull, or at the k-th Reset
// (stage starts).  Skip and Count pass through.
type cancelSource struct {
	fault.Source
	cancel        context.CancelFunc
	cancelAtNext  int // 1-based pull index; 0 disables
	cancelAtReset int // 1-based Reset index; 0 disables
	nexts, resets int
}

func (c *cancelSource) Next(dst []fault.Fault) (int, bool) {
	c.nexts++
	if c.nexts == c.cancelAtNext {
		c.cancel()
	}
	return c.Source.Next(dst)
}

func (c *cancelSource) Reset() {
	c.resets++
	if c.resets == c.cancelAtReset {
		c.cancel()
	}
	c.Source.Reset()
}

// assertWellFormed checks the partial-session contract: an interrupted
// session is tagged, its tallies are internally consistent, and no
// stage beyond the interrupted one was executed.
func assertWellFormed(t *testing.T, label string, s *Session) {
	t.Helper()
	if !s.Interrupted || !s.Cumulative.Interrupted {
		t.Fatalf("%s: cancelled session not tagged interrupted", label)
	}
	for i, r := range s.Results {
		if r.Detected > r.Total {
			t.Errorf("%s runner %d: detected %d > total %d", label, i, r.Detected, r.Total)
		}
		total, det := 0, 0
		for _, cs := range r.ByClass {
			total += cs.Total
			det += cs.Detected
		}
		if r.Runner != "" && (total != r.Total || det != r.Detected) {
			t.Errorf("%s runner %d: class tallies %d/%d disagree with totals %d/%d",
				label, i, det, total, r.Detected, r.Total)
		}
	}
	if n := len(s.Stages); n > 0 {
		last := s.Stages[n-1]
		if !s.Results[last.RunnerIndex].Interrupted {
			t.Errorf("%s: last executed stage's Result not tagged interrupted", label)
		}
	}
}

func TestResumeEquivalence(t *testing.T) {
	engines := []Engine{EngineOracle, EngineBitParallel, EngineCompiled}
	families := streamFamilies()
	if testing.Short() {
		engines = engines[1:]
		families = families[:3]
	}
	type mode struct {
		name          string
		preCancel     bool
		cancelAtNext  int
		cancelAtReset int
	}
	modes := []mode{
		{name: "pre-first-chunk", preCancel: true},
		{name: "mid-stage", cancelAtNext: 4},
		{name: "stage-boundary", cancelAtReset: 2},
	}
	for _, fam := range families {
		count, _ := fam.src.Count()
		chunk := count/16 + 1 // ~16 chunks per stage, so mid-stage cancels always leave work
		for _, engine := range engines {
			for _, m := range modes {
				label := fmt.Sprintf("%s [%s %s]", fam.name, engine, m.name)
				dir := t.TempDir()
				fileA := filepath.Join(dir, "ref.fckp")
				fileB := filepath.Join(dir, "interrupted.fckp")
				mkPlan := func(src fault.Source, path string, rs *checkpoint.State) *Plan {
					return &Plan{
						Runners: fam.runners,
						Stream:  &fault.Stream{Name: fam.name, Source: src},
						Chunk:   chunk, Memory: fam.mk, Workers: 4,
						Engine: engine, Drop: true,
						Checkpoint: &CheckpointConfig{
							Path: path, Every: chunk, Label: "prop", Seed: 7, Resume: rs,
						},
					}
				}

				want := mkPlan(fam.src, fileA, nil).Run()
				if want.Interrupted {
					t.Fatalf("%s: reference run reports interrupted", label)
				}

				ctx, cancel := context.WithCancel(context.Background())
				if m.preCancel {
					cancel()
				}
				cs := &cancelSource{
					Source: fam.src, cancel: cancel,
					cancelAtNext: m.cancelAtNext, cancelAtReset: m.cancelAtReset,
				}
				part := mkPlan(cs, fileB, nil).RunContext(ctx)
				cancel()
				assertWellFormed(t, label, part)

				rs, err := checkpoint.Load(fileB)
				if err != nil {
					t.Fatalf("%s: loading the interrupt checkpoint: %v", label, err)
				}
				got := mkPlan(fam.src, fileB, rs).Run()
				if got.Interrupted {
					t.Fatalf("%s: resumed run reports interrupted", label)
				}
				assertSessionsEqual(t, label, want, got)

				a, errA := os.ReadFile(fileA)
				b, errB := os.ReadFile(fileB)
				if errA != nil || errB != nil {
					t.Fatalf("%s: reading final checkpoints: %v / %v", label, errA, errB)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("%s: final checkpoint files differ between the uninterrupted and resumed runs", label)
				}
			}
		}
	}
}

// Resuming a checkpoint marked complete reconstructs the whole session
// from its records without re-simulating anything.
func TestResumeCompletedSession(t *testing.T) {
	fam := streamFamilies()[0]
	path := filepath.Join(t.TempDir(), "done.fckp")
	mkPlan := func(rs *checkpoint.State) *Plan {
		return &Plan{
			Runners: fam.runners,
			Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
			Chunk:   16, Memory: fam.mk, Workers: 4,
			Engine: EngineCompiled, Drop: true,
			Checkpoint: &CheckpointConfig{Path: path, Label: "done", Seed: 3, Resume: rs},
		}
	}
	want := mkPlan(nil).Run()
	rs, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Complete {
		t.Fatal("finished session's checkpoint not marked complete")
	}
	// Count pulls: a completed resume must touch the source zero times.
	cs := &cancelSource{Source: fam.src, cancel: func() {}}
	p := mkPlan(rs)
	p.Stream.Source = cs
	got := p.Run()
	if cs.nexts != 0 {
		t.Errorf("resuming a complete checkpoint pulled %d chunks, want 0", cs.nexts)
	}
	assertSessionsEqual(t, "complete-resume", want, got)
}

// Mismatched-resume safety: a checkpoint from a different campaign is
// refused by ValidateResume (the CLI path) and panics when forced in
// as an explicit Plan.Checkpoint.Resume (the programmer-error path).
func TestResumeMismatchRefused(t *testing.T) {
	fam := streamFamilies()[0]
	path := filepath.Join(t.TempDir(), "c.fckp")
	mkPlan := func(engine Engine, runners []Runner, rs *checkpoint.State) *Plan {
		return &Plan{
			Runners: runners,
			Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
			Chunk:   16, Memory: fam.mk, Workers: 4,
			Engine: engine, Drop: true,
			Checkpoint: &CheckpointConfig{Path: path, Label: "orig", Seed: 7, Resume: rs},
		}
	}
	mkPlan(EngineCompiled, fam.runners, nil).Run()
	rs, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mkPlan(EngineCompiled, fam.runners, nil).ValidateResume(rs, 7); err != nil {
		t.Fatalf("matching resume refused: %v", err)
	}
	if err := mkPlan(EngineCompiled, fam.runners, nil).ValidateResume(rs, 8); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := mkPlan(EngineBitParallel, fam.runners, nil).ValidateResume(rs, 7); err == nil {
		t.Error("engine (spec hash) mismatch accepted")
	}
	if err := mkPlan(EngineCompiled, fam.runners[:1], nil).ValidateResume(rs, 7); err == nil {
		t.Error("stage-list mismatch accepted")
	}
	other := &Plan{
		Runners: fam.runners,
		Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
		Memory:  womFactory(32, 4), Engine: EngineCompiled, Drop: true,
	}
	if err := other.ValidateResume(rs, 7); err == nil {
		t.Error("geometry mismatch accepted")
	}
	// A truncated file surfaces a load error before any of this runs.
	b, _ := os.ReadFile(path)
	trunc := filepath.Join(t.TempDir(), "trunc.fckp")
	if err := os.WriteFile(trunc, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Load(trunc); err == nil {
		t.Error("truncated checkpoint loaded")
	}
	// An ambient resume offer that matches nothing is ignored, not fatal.
	SetDefaultResume(rs)
	defer SetDefaultResume(nil)
	fresh := (&Plan{
		Runners: fam.runners[:1],
		Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
		Chunk:   16, Memory: fam.mk, Workers: 4, Engine: EngineCompiled,
		Checkpoint: &CheckpointConfig{Path: filepath.Join(t.TempDir(), "f.fckp"), Seed: 7},
	}).Run()
	if fresh.Interrupted || fresh.Results[0].Total == 0 {
		t.Error("session with a non-matching ambient resume did not run fresh")
	}
	// Forcing the mismatch in explicitly is a programmer error: panic.
	defer func() {
		if recover() == nil {
			t.Error("explicit mismatched Resume did not panic")
		}
	}()
	mkPlan(EngineBitParallel, fam.runners, rs).Run()
}

// KeepVectors holds per-fault verdict vectors that checkpoints do not
// persist; combining the two must fail loudly, not drop data.
func TestCheckpointRejectsKeepVectors(t *testing.T) {
	fam := streamFamilies()[0]
	defer func() {
		if recover() == nil {
			t.Error("KeepVectors + Checkpoint did not panic")
		}
	}()
	(&Plan{
		Runners: fam.runners,
		Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
		Memory:  fam.mk, Engine: EngineCompiled, KeepVectors: true,
		Checkpoint: &CheckpointConfig{Path: filepath.Join(t.TempDir(), "kv.fckp")},
	}).Run()
}

// TestCancellationHammer is the satellite race test: many concurrent
// streaming campaigns cancelled at staggered points must all drain
// their workers, return well-formed partial sessions, and leak no
// goroutines.  Run it under -race (the CI race job does).
func TestCancellationHammer(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 6
	}
	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Per-campaign source and plan: sources are stateful.
			fam := streamFamilies()[i%2]
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(time.Duration(i%7) * 150 * time.Microsecond)
				cancel()
			}()
			engines := []Engine{EngineOracle, EngineBitParallel, EngineCompiled}
			s := (&Plan{
				Runners: fam.runners,
				Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
				Chunk:   3, Memory: fam.mk, Workers: 3,
				Engine: engines[i%3], Drop: true,
			}).RunContext(ctx)
			for j, r := range s.Results {
				if r.Detected > r.Total {
					t.Errorf("campaign %d runner %d: detected %d > total %d", i, j, r.Detected, r.Total)
				}
			}
		}(i)
	}
	wg.Wait()
	// Workers must have drained: the goroutine count returns to (near)
	// baseline once the runtime reclaims finished goroutines.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutine leak after cancelled campaigns: %d running, baseline %d",
		runtime.NumGoroutine(), baseline)
}

// Materialized sessions honour cancellation too: a cancelled context
// yields a tagged, well-formed partial session.
func TestMaterializedCancellation(t *testing.T) {
	fam := streamFamilies()[0]
	u := fault.Universe{Name: fam.name, Faults: fault.Collect(fam.src)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, engine := range []Engine{EngineOracle, EngineBitParallel, EngineCompiled} {
		s := (&Plan{
			Runners: fam.runners, Universe: u, Memory: fam.mk,
			Workers: 4, Engine: engine,
		}).RunContext(ctx)
		assertWellFormed(t, fmt.Sprintf("materialized [%s]", engine), s)
		if len(s.Stages) != 1 {
			t.Errorf("[%s]: cancelled-before-start session ran %d stages, want 1", engine, len(s.Stages))
		}
	}
}
