package prt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ram"
)

func TestBitSlicedCleanMemory(t *testing.T) {
	for _, mode := range []LaneMode{ParallelLanes, RandomLanes} {
		for _, n := range []int{8, 64, 100} {
			mem := ram.NewWOM(n, 4)
			cfg := NewBitSliced(4, mode)
			cfg.Verify = true
			res, err := RunBitSliced(cfg, mem)
			if err != nil {
				t.Fatal(err)
			}
			if res.Detected {
				t.Errorf("%v n=%d: false positive", mode, n)
			}
			if len(res.LaneDetected) != 4 {
				t.Errorf("lane result length %d", len(res.LaneDetected))
			}
		}
	}
}

func TestBitSlicedParallelLanesAreLockStep(t *testing.T) {
	// In parallel mode every lane runs the same automaton with the same
	// seed, so each stored word has all bits equal.
	mem := ram.NewWOM(32, 4)
	cfg := NewBitSliced(4, ParallelLanes)
	if _, err := RunBitSliced(cfg, mem); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 32; a++ {
		v := mem.Read(a)
		if v != 0 && v != 0xF {
			t.Fatalf("cell %d = %x: lanes not in lock-step", a, v)
		}
	}
}

func TestBitSlicedRandomLanesDecorrelated(t *testing.T) {
	// Random mode must produce at least one word with mixed bits.
	mem := ram.NewWOM(64, 4)
	cfg := NewBitSliced(4, RandomLanes)
	if _, err := RunBitSliced(cfg, mem); err != nil {
		t.Fatal(err)
	}
	mixed := false
	for a := 0; a < 64; a++ {
		v := mem.Read(a)
		if v != 0 && v != 0xF {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Error("random lanes produced a fully correlated TDB")
	}
}

func TestBitSlicedLaneLocalisation(t *testing.T) {
	// A stuck-at-0 bit in lane 2 must flag lane 2 (and possibly only
	// it).  Cell 9 carries a 1 in the parallel TDB (1,1,0 repeating),
	// so stuck-at-0 is excited.
	f := fault.SAF{Cell: 9, Bit: 2, Value: 0}
	mem := f.Inject(ram.NewWOM(32, 4))
	cfg := NewBitSliced(4, ParallelLanes)
	cfg.Verify = true
	res, err := RunBitSliced(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || !res.LaneDetected[2] {
		t.Errorf("lane 2 fault not localised: %+v", res)
	}
}

// TestIntraWordParallelSaturatesRandomClimbs reproduces the paper's §2
// comparison (experiment E9): parallel trajectories are structurally
// blind to the idempotent intra-word faults that force the shared
// value, so their coverage saturates; random (decorrelated) lanes keep
// climbing with the iteration count.
func TestIntraWordParallelSaturatesRandomClimbs(t *testing.T) {
	n, m := 32, 4
	uni := fault.IntraWordUniverse(n, m)
	cov := func(mode LaneMode, iters int) float64 {
		cfgs := BitSlicedScheme(m, mode, iters)
		det := 0
		for _, f := range uni {
			mem := f.Inject(ram.NewWOM(n, m))
			r, err := RunBitSlicedScheme(cfgs, mem)
			if err != nil {
				t.Fatal(err)
			}
			if r.Detected {
				det++
			}
		}
		return float64(det) / float64(len(uni))
	}
	p3, p8 := cov(ParallelLanes, 3), cov(ParallelLanes, 8)
	r3, r8 := cov(RandomLanes, 3), cov(RandomLanes, 8)
	if p8 > p3+0.01 {
		t.Errorf("parallel coverage should saturate: %.3f -> %.3f", p3, p8)
	}
	if r8 <= r3 {
		t.Errorf("random coverage should climb: %.3f -> %.3f", r3, r8)
	}
	if r8 <= p8 {
		t.Errorf("random (%.3f) should beat parallel (%.3f) at 8 iterations", r8, p8)
	}
}

func TestBitSlicedValidation(t *testing.T) {
	cfg := NewBitSliced(4, ParallelLanes)
	if _, err := RunBitSliced(cfg, ram.NewWOM(16, 8)); err == nil {
		t.Error("width mismatch accepted")
	}
	if _, err := RunBitSliced(cfg, ram.NewWOM(2, 4)); err == nil {
		t.Error("tiny memory accepted")
	}
}

func TestBitSlicedSchemeMerging(t *testing.T) {
	n, m := 32, 4
	f := fault.SAF{Cell: 3, Bit: 1, Value: 0}
	mem := f.Inject(ram.NewWOM(n, m))
	res, err := RunBitSlicedScheme(BitSlicedScheme3(m, ParallelLanes), mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected || !res.LaneDetected[1] {
		t.Errorf("scheme merge lost detection: %+v", res)
	}
	if res.Ops == 0 {
		t.Error("ops not accumulated")
	}
}

func TestLaneModeString(t *testing.T) {
	if ParallelLanes.String() != "parallel" || RandomLanes.String() != "random" {
		t.Error("LaneMode strings wrong")
	}
}

func TestBitSlicedScheme3HasThreeIterations(t *testing.T) {
	cfgs := BitSlicedScheme3(8, RandomLanes)
	if len(cfgs) != 3 {
		t.Fatalf("scheme length %d", len(cfgs))
	}
	if cfgs[1].Trajectory != Descending {
		t.Error("second iteration should descend")
	}
}
