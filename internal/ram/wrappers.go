package ram

import "fmt"

// Stats wraps a Memory and counts operations.  The π-test complexity
// results (O(3n) single-port, 2n dual-port) are measured through it.
type Stats struct {
	Mem    Memory
	Reads  uint64
	Writes uint64
}

// NewStats returns a counting wrapper around mem.
func NewStats(mem Memory) *Stats { return &Stats{Mem: mem} }

// Read delegates and counts.
func (s *Stats) Read(addr int) Word {
	s.Reads++
	return s.Mem.Read(addr)
}

// Write delegates and counts.
func (s *Stats) Write(addr int, v Word) {
	s.Writes++
	s.Mem.Write(addr, v)
}

// Size delegates.
func (s *Stats) Size() int { return s.Mem.Size() }

// Width delegates.
func (s *Stats) Width() int { return s.Mem.Width() }

// Ops returns the total number of read+write operations.
func (s *Stats) Ops() uint64 { return s.Reads + s.Writes }

// Reset zeroes the counters.
func (s *Stats) Reset() { s.Reads, s.Writes = 0, 0 }

// OpKind distinguishes trace entries.
type OpKind int

const (
	// OpRead is a read access.
	OpRead OpKind = iota
	// OpWrite is a write access.
	OpWrite
)

func (k OpKind) String() string {
	if k == OpRead {
		return "r"
	}
	return "w"
}

// Access is one traced memory operation.
type Access struct {
	Kind OpKind
	Addr int
	Data Word // value read or written
}

// String renders the access in March-style shorthand, e.g. "r[5]=1".
func (a Access) String() string {
	return fmt.Sprintf("%s[%d]=%d", a.Kind, a.Addr, a.Data)
}

// Trace wraps a Memory and records every access up to Limit entries
// (0 = unlimited).  Used by the figure-regeneration code and by tests
// asserting exact access patterns.
type Trace struct {
	Mem      Memory
	Limit    int
	Accesses []Access
	Dropped  uint64
}

// NewTrace returns a tracing wrapper with the given entry limit.
func NewTrace(mem Memory, limit int) *Trace {
	return &Trace{Mem: mem, Limit: limit}
}

func (t *Trace) record(a Access) {
	if t.Limit > 0 && len(t.Accesses) >= t.Limit {
		t.Dropped++
		return
	}
	t.Accesses = append(t.Accesses, a)
}

// Read delegates and records.
func (t *Trace) Read(addr int) Word {
	v := t.Mem.Read(addr)
	t.record(Access{Kind: OpRead, Addr: addr, Data: v})
	return v
}

// Write delegates and records.
func (t *Trace) Write(addr int, v Word) {
	t.Mem.Write(addr, v)
	t.record(Access{Kind: OpWrite, Addr: addr, Data: v})
}

// Size delegates.
func (t *Trace) Size() int { return t.Mem.Size() }

// Width delegates.
func (t *Trace) Width() int { return t.Mem.Width() }
