package fault

import (
	"testing"

	"repro/internal/ram"
)

func TestSAFBehaviour(t *testing.T) {
	m := SAF{Cell: 3, Bit: 1, Value: 1}.Inject(ram.NewWOM(8, 4))
	// Stuck bit reads 1 regardless of writes.
	m.Write(3, 0x0)
	if m.Read(3)&0x2 == 0 {
		t.Error("stuck-at-1 bit read 0")
	}
	// Other bits of the cell still work.
	m.Write(3, 0x5)
	if got := m.Read(3); got != 0x7 { // 0x5 | stuck bit 1
		t.Errorf("read = %x, want 7", got)
	}
	// Other cells untouched.
	m.Write(4, 0xA)
	if m.Read(4) != 0xA {
		t.Error("neighbour cell corrupted")
	}
}

func TestSAF0Behaviour(t *testing.T) {
	m := SAF{Cell: 0, Bit: 0, Value: 0}.Inject(ram.NewBOM(4))
	m.Write(0, 1)
	if m.Read(0) != 0 {
		t.Error("stuck-at-0 bit read 1")
	}
}

func TestSAFForcesInitialValue(t *testing.T) {
	base := ram.NewWOM(4, 1)
	base.Write(2, 1)
	m := SAF{Cell: 2, Bit: 0, Value: 0}.Inject(base)
	// A physical SA0 drags the stored node low immediately.
	if base.Read(2) != 0 || m.Read(2) != 0 {
		t.Error("injection did not force the stored value")
	}
}

func TestTFBehaviour(t *testing.T) {
	// TF↑: cell cannot rise.
	m := TF{Cell: 1, Bit: 0, Up: true}.Inject(ram.NewBOM(4))
	m.Write(1, 1)
	if m.Read(1) != 0 {
		t.Error("TF↑ allowed a rise")
	}
	// Falling writes still work: preload via a down-fault-free path.
	m2 := TF{Cell: 1, Bit: 0, Up: false}.Inject(ram.NewBOM(4))
	m2.Write(1, 1) // rise OK
	if m2.Read(1) != 1 {
		t.Fatal("TF↓ blocked a rise")
	}
	m2.Write(1, 0) // fall blocked
	if m2.Read(1) != 1 {
		t.Error("TF↓ allowed a fall")
	}
	// Writing the same value is never a transition.
	m3 := TF{Cell: 0, Bit: 2, Up: true}.Inject(ram.NewWOM(4, 4))
	m3.Write(0, 0x0)
	if m3.Read(0) != 0 {
		t.Error("idempotent write disturbed TF cell")
	}
}

func TestSOFBehaviour(t *testing.T) {
	base := ram.NewWOM(8, 4)
	m := SOF{Cell: 2}.Inject(base)
	m.Write(1, 0x9)
	m.Write(2, 0xF) // lost
	if base.Read(2) != 0 {
		t.Error("SOF write reached the cell")
	}
	if got := m.Read(1); got != 0x9 {
		t.Fatalf("healthy read broken: %x", got)
	}
	// Read of the open cell returns the last sensed value (0x9).
	if got := m.Read(2); got != 0x9 {
		t.Errorf("SOF read = %x, want last sensed 0x9", got)
	}
	// And keeps returning the most recent sense.
	m.Write(3, 0x4)
	_ = m.Read(3)
	if got := m.Read(2); got != 0x4 {
		t.Errorf("SOF read = %x, want 0x4", got)
	}
}

func TestDRFBehaviour(t *testing.T) {
	m := DRF{Cell: 0, Bit: 0, Decay: 0, Delay: 3}.Inject(ram.NewBOM(4))
	m.Write(0, 1)
	if m.Read(0) != 1 { // 1 op since write: no decay
		t.Fatal("decayed too early")
	}
	_ = m.Read(1)
	_ = m.Read(1)
	// Now 4 ops since the write: decayed.
	if m.Read(0) != 0 {
		t.Error("DRF did not decay after delay")
	}
	// Rewriting restores the value and the timer.
	m.Write(0, 1)
	if m.Read(0) != 1 {
		t.Error("rewrite did not restore")
	}
}

func TestDRFDecayToOne(t *testing.T) {
	m := DRF{Cell: 1, Bit: 0, Decay: 1, Delay: 1}.Inject(ram.NewBOM(4))
	m.Write(1, 0)
	_ = m.Read(0)
	_ = m.Read(0)
	if m.Read(1) != 1 {
		t.Error("DRF->1 did not decay high")
	}
}

func TestAFNone(t *testing.T) {
	base := ram.NewWOM(8, 4)
	m := AF{Kind: AFNone, Addr: 5}.Inject(base)
	m.Write(5, 0xF)
	if base.Read(5) != 0 {
		t.Error("AFnone write reached the cell")
	}
	m.Write(1, 0x3)
	_ = m.Read(1)
	if got := m.Read(5); got != 0 {
		t.Errorf("AFnone read = %x, want discharged 0", got)
	}
}

func TestAFAlias(t *testing.T) {
	base := ram.NewWOM(8, 4)
	m := AF{Kind: AFAlias, Addr: 2, Target: 6}.Inject(base)
	m.Write(2, 0xA) // lands in cell 6
	if base.Read(6) != 0xA || base.Read(2) != 0 {
		t.Error("alias write misrouted")
	}
	if m.Read(2) != 0xA {
		t.Error("alias read misrouted")
	}
	// The target is also reachable through its own address.
	if m.Read(6) != 0xA {
		t.Error("target direct read broken")
	}
}

func TestAFMulti(t *testing.T) {
	base := ram.NewWOM(8, 4)
	m := AF{Kind: AFMulti, Addr: 1, Target: 4}.Inject(base)
	m.Write(1, 0x6) // writes both cells
	if base.Read(1) != 0x6 || base.Read(4) != 0x6 {
		t.Error("multi write did not fan out")
	}
	base.Write(4, 0x9)
	if got := m.Read(1); got != 0x6|0x9 {
		t.Errorf("multi read = %x, want wired-OR 0xF", got)
	}
}

func TestCFinInterWord(t *testing.T) {
	base := ram.NewBOM(8)
	m := CFin{AggCell: 2, VicCell: 5, Up: true}.Inject(base)
	m.Write(5, 1)
	m.Write(2, 1) // ↑ on aggressor flips victim
	if m.Read(5) != 0 {
		t.Error("CFin↑ did not invert victim")
	}
	m.Write(2, 0) // ↓ does not trigger the ↑ fault
	if m.Read(5) != 0 {
		t.Error("CFin↑ triggered on a fall")
	}
	m.Write(2, 1) // another rise flips again
	if m.Read(5) != 1 {
		t.Error("CFin↑ second inversion missing")
	}
}

func TestCFinIntraWord(t *testing.T) {
	f := CFin{AggCell: 3, AggBit: 0, VicCell: 3, VicBit: 2, Up: true}
	if f.Class() != ClassIWCF {
		t.Fatalf("intra-word CFin class = %v", f.Class())
	}
	m := f.Inject(ram.NewWOM(8, 4))
	// Writing 0b0101 raises bit0 (0->1): victim bit2 of the written
	// value is inverted -> stored 0b0001.
	m.Write(3, 0b0101)
	if got := m.Read(3); got != 0b0001 {
		t.Errorf("intra-word CFin stored %04b, want 0001", got)
	}
}

func TestCFidBehaviour(t *testing.T) {
	base := ram.NewBOM(8)
	m := CFid{AggCell: 0, VicCell: 1, Up: false, Value: 1}.Inject(base)
	m.Write(0, 1)
	m.Write(1, 0)
	m.Write(0, 0) // ↓ forces victim to 1
	if m.Read(1) != 1 {
		t.Error("CFid<↓;1> did not force victim")
	}
	// Re-triggering when already at the forced value is idempotent.
	m.Write(0, 1)
	m.Write(0, 0)
	if m.Read(1) != 1 {
		t.Error("CFid idempotence broken")
	}
}

func TestCFstBehaviour(t *testing.T) {
	base := ram.NewBOM(8)
	m := CFst{AggCell: 4, VicCell: 6, AggValue: 1, Value: 0}.Inject(base)
	m.Write(6, 1)
	if m.Read(6) != 1 {
		t.Fatal("victim disturbed while aggressor at 0")
	}
	m.Write(4, 1) // aggressor enters forcing state
	if m.Read(6) != 0 {
		t.Error("CFst<1;0> did not force victim low")
	}
	m.Write(4, 0)
	if m.Read(6) != 1 {
		t.Error("CFst forcing should be level-sensitive")
	}
}

func TestBFBehaviour(t *testing.T) {
	base := ram.NewBOM(8)
	or := BF{CellA: 0, CellB: 1, And: false}.Inject(base)
	or.Write(0, 1)
	or.Write(1, 0)
	if or.Read(0) != 1 || or.Read(1) != 1 {
		t.Error("BF-OR should read 1 on both ends")
	}
	base2 := ram.NewBOM(8)
	and := BF{CellA: 0, CellB: 1, And: true}.Inject(base2)
	and.Write(0, 1)
	and.Write(1, 0)
	if and.Read(0) != 0 || and.Read(1) != 0 {
		t.Error("BF-AND should read 0 on both ends")
	}
}

func TestFaultStrings(t *testing.T) {
	cases := map[string]Fault{
		"SAF1@c17.b2":               SAF{Cell: 17, Bit: 2, Value: 1},
		"TFup@c3.b0":                TF{Cell: 3, Up: true},
		"SOF@c9":                    SOF{Cell: 9},
		"DRF->0@c1.b0/100":          DRF{Cell: 1, Delay: 100},
		"AFnone@a4":                 AF{Kind: AFNone, Addr: 4},
		"AFalias@a4->c7":            AF{Kind: AFAlias, Addr: 4, Target: 7},
		"AFmulti@a4+c7":             AF{Kind: AFMulti, Addr: 4, Target: 7},
		"CFin<up>@c1.b0->c2.b0":     CFin{AggCell: 1, VicCell: 2, Up: true},
		"CFid<down;1>@c1.b0->c2.b0": CFid{AggCell: 1, VicCell: 2, Up: false, Value: 1},
		"CFst<1;0>@c1.b0->c2.b0":    CFst{AggCell: 1, VicCell: 2, AggValue: 1, Value: 0},
		"BFAND@c1.b0~c2.b0":         BF{CellA: 1, CellB: 2, And: true},
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestClassString(t *testing.T) {
	want := []string{"SAF", "TF", "SOF", "DRF", "AF", "CFin", "CFid", "CFst", "BF", "IWCF", "NPSF"}
	for i, w := range want {
		if got := Class(i).String(); got != w {
			t.Errorf("Class(%d) = %q, want %q", i, got, w)
		}
	}
	if len(Classes()) != len(want) {
		t.Errorf("Classes() length = %d", len(Classes()))
	}
}
