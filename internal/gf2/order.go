package gf2

// Factor64 returns the prime factorisation of n as parallel slices of
// primes and exponents, by trial division.  n must be >= 1; Factor64(1)
// returns empty slices.  Trial division is adequate for the magnitudes
// used here (orders up to 2^40 or so).
func Factor64(n uint64) (primes []uint64, exps []int) {
	for d := uint64(2); d*d <= n; d++ {
		if n%d == 0 {
			e := 0
			for n%d == 0 {
				n /= d
				e++
			}
			primes = append(primes, d)
			exps = append(exps, e)
		}
	}
	if n > 1 {
		primes = append(primes, n)
		exps = append(exps, 1)
	}
	return primes, exps
}

// Order returns the multiplicative order of x modulo p, i.e. the least
// e > 0 with x^e ≡ 1 (mod p).  p must be irreducible with nonzero
// constant term and degree k in [1,40]; the order then divides 2^k - 1.
//
// For an LFSR with characteristic polynomial p, Order(p) is the period
// of the nonzero state sequence.
func Order(p Poly) uint64 {
	k := p.Deg()
	if k < 1 || k > 40 {
		panic("gf2: Order degree out of range [1,40]")
	}
	if p.Coeff(0) == 0 {
		panic("gf2: Order requires nonzero constant term")
	}
	if !IsIrreducible(p) {
		panic("gf2: Order requires an irreducible polynomial")
	}
	group := uint64(1)<<uint(k) - 1
	if group == 1 {
		return 1 // degree 1: x ≡ 1 (mod x+1)
	}
	e := group
	primes, _ := Factor64(group)
	// Divide out each prime factor while the power still equals 1.
	for _, q := range primes {
		for e%q == 0 && PowMod(X, e/q, p) == One {
			e /= q
		}
	}
	return e
}

// IsPrimitive reports whether p is a primitive polynomial over GF(2):
// irreducible with the order of x equal to 2^deg(p) - 1.  A primitive
// polynomial generates a maximum-length LFSR sequence.
func IsPrimitive(p Poly) bool {
	k := p.Deg()
	if k < 1 || k > 40 {
		return false
	}
	if k == 1 {
		// x+1 is the only degree-1 irreducible with nonzero constant
		// term; GF(2)* is trivial, so it is primitive by convention.
		return p == 3
	}
	if !IsIrreducible(p) {
		return false
	}
	group := uint64(1)<<uint(k) - 1
	primes, _ := Factor64(group)
	for _, q := range primes {
		if PowMod(X, group/q, p) == One {
			return false
		}
	}
	return true
}

// FirstPrimitive returns the numerically smallest primitive polynomial
// of degree k, 1 <= k <= 40.
func FirstPrimitive(k int) Poly {
	if k < 1 || k > 40 {
		panic("gf2: FirstPrimitive degree out of range [1,40]")
	}
	lo := Poly(1) << uint(k)
	hi := Poly(1)<<uint(k+1) - 1
	for p := lo; ; p++ {
		if IsPrimitive(p) {
			return p
		}
		if p == hi {
			panic("gf2: no primitive polynomial found (unreachable)")
		}
	}
}
