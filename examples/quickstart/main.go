// Quickstart: self-test a simulated RAM with pseudo-ring testing, then
// break it and watch the test catch the defect.
package main

import (
	"fmt"

	"repro"
	"repro/internal/fault"
)

func main() {
	// A 1024-cell, 4-bit-word RAM (the paper's word-oriented case).
	mem := repro.NewWOM(1024, 4)

	pass, err := repro.SelfTest(mem)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fault-free memory: pass=%v\n", pass)

	// Inject a stuck-at-1 defect on bit 2 of cell 500 and retest.
	broken := fault.SAF{Cell: 500, Bit: 2, Value: 1}.Inject(repro.NewWOM(1024, 4))
	pass, err = repro.SelfTest(broken)
	if err != nil {
		panic(err)
	}
	fmt.Printf("memory with SAF1@c500.b2: pass=%v\n", pass)

	// The same API drives bit-oriented memories.
	bom := repro.NewBOM(4096)
	pass, _ = repro.SelfTest(bom)
	fmt.Printf("fault-free 4096-bit BOM: pass=%v\n", pass)
}
