package prt

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/lfsr"
)

// MirrorConfig builds the direction-reversed twin of src for a memory
// of n cells: an iteration that writes the exact same value into every
// cell as src does, but visits the cells in the opposite order.
//
// If src generates u_0 … u_{n-1} along its trajectory, the mirror
// generates v_s = u_{n-1-s} along the reversed trajectory.  The
// reversed sequence of an affine recurrence
//
//	u_t = a₁u_{t-1} ⊕ … ⊕ a_k u_{t-k} ⊕ q
//
// satisfies the reciprocal affine recurrence
//
//	v_s = (a_{k-1}/a_k)v_{s-1} ⊕ … ⊕ (a₁/a_k)v_{s-k+1} ⊕ (1/a_k)v_{s-k} ⊕ q/a_k
//
// seeded with (u_{n-1}, …, u_{n-k}) — i.e. src's final window reversed.
//
// Mirrors matter for the 3-iteration scheme: writing the same TDB in
// the opposite direction makes every bit of every cell repeat the
// transition it made when the TDB was first written (covering the
// remaining transition faults) while reversing the aggressor→victim
// order observed by coupling and decoder faults.
func MirrorConfig(src Config, n int) (Config, error) {
	if src.MirrorOf > 0 {
		return Config{}, fmt.Errorf("prt: cannot mirror a mirror placeholder")
	}
	if src.Ring {
		return Config{}, fmt.Errorf("prt: mirroring ring iterations is not supported")
	}
	if src.Gen.Field == nil {
		return Config{}, fmt.Errorf("prt: cannot mirror a config without a generator polynomial")
	}
	if err := src.Validate(n, src.Gen.Field.M()); err != nil {
		return Config{}, err
	}
	f := src.Gen.Field
	k := src.Gen.K()
	ak := src.Gen.Coeffs[k]
	inv := f.Inv(ak)

	coeffs := make([]gf.Elem, k+1)
	coeffs[0] = 1 // a0 is structural only; the recurrence uses taps 1..k
	for i := 1; i < k; i++ {
		coeffs[i] = f.Mul(src.Gen.Coeffs[k-i], inv)
	}
	coeffs[k] = inv
	gen, err := lfsr.NewGenPoly(f, coeffs)
	if err != nil {
		return Config{}, fmt.Errorf("prt: mirror generator: %w", err)
	}

	// Final window of src: (u_{n-k}, …, u_{n-1}); mirror seed is the
	// reverse.
	final, err := lfsr.AffineJumpAhead(src.Gen, src.Offset, src.Seed, uint64(n-k))
	if err != nil {
		return Config{}, err
	}
	seed := make([]gf.Elem, k)
	for i := range seed {
		seed[i] = final[k-1-i]
	}

	out := Config{
		Gen:        gen,
		Seed:       seed,
		Offset:     f.Mul(src.Offset, inv),
		Trajectory: reverseTrajectory(src.Trajectory),
		PermSeed:   src.PermSeed,
		Verify:     src.Verify,
	}
	return out, nil
}

// reverseTrajectory flips ascending/descending; a Random trajectory
// reverses by revisiting the same permutation backwards, which is
// expressed with the dedicated RandomReversed value.
func reverseTrajectory(t Trajectory) Trajectory {
	switch t {
	case Ascending:
		return Descending
	case Descending:
		return Ascending
	case Random:
		return RandomReversed
	case RandomReversed:
		return Random
	default:
		return Descending
	}
}
