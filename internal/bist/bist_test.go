package bist

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/lfsr"
	"repro/internal/prt"
	"repro/internal/ram"
)

func paperParams(n int) Params {
	return Params{N: n, M: 4, Gen: lfsr.PaperGenPoly(), Ports: 1, Iterations: 3}
}

func TestBudgetSanity(t *testing.T) {
	b, err := ForPRT(paperParams(1 << 10))
	if err != nil {
		t.Fatal(err)
	}
	if b.FFs <= 0 || b.XORs <= 0 || b.Gates <= 0 || b.ROMBits <= 0 {
		t.Errorf("budget has empty categories: %v", b)
	}
	ge := b.GateEquivalents(DefaultGateModel())
	// A k=2, m=4 engine is a few hundred gate equivalents.
	if ge < 50 || ge > 2000 {
		t.Errorf("gate equivalents %d-cell = %.0f, outside plausibility window", 1<<10, ge)
	}
}

func TestBudgetGrowsLogarithmically(t *testing.T) {
	small, _ := ForPRT(paperParams(1 << 10))
	big, _ := ForPRT(paperParams(1 << 28))
	gm := DefaultGateModel()
	// 18 extra address bits cost well under 3x the logic.
	if big.GateEquivalents(gm) > 3*small.GateEquivalents(gm) {
		t.Errorf("budget grows too fast: %.0f -> %.0f",
			small.GateEquivalents(gm), big.GateEquivalents(gm))
	}
}

// TestPaperOverheadClaim reproduces §4: the overhead ratio drops below
// 2^-20 once the array is large enough, and keeps shrinking with
// capacity.
func TestPaperOverheadClaim(t *testing.T) {
	gm := DefaultGateModel()
	var prev float64 = math.Inf(1)
	crossed := false
	for _, logN := range []int{10, 14, 18, 22, 26, 28, 30} {
		n := 1 << uint(logN)
		b, err := ForPRT(paperParams(n))
		if err != nil {
			t.Fatal(err)
		}
		r := OverheadRatio(b, n, 4, gm)
		if r >= prev {
			t.Errorf("overhead ratio not shrinking at n=2^%d: %g >= %g", logN, r, prev)
		}
		prev = r
		if r < math.Pow(2, -20) {
			crossed = true
		}
	}
	if !crossed {
		t.Errorf("overhead never crossed 2^-20 (last ratio %g)", prev)
	}
	// And Log2Ratio agrees.
	n := 1 << 30
	b, _ := ForPRT(paperParams(n))
	if Log2Ratio(b, n, 4, gm) >= -20 {
		t.Errorf("log2 ratio at 2^30 cells = %.1f, want < -20", Log2Ratio(b, n, 4, gm))
	}
}

func TestDualPortBudgetDelta(t *testing.T) {
	p1 := paperParams(1 << 20)
	p2 := p1
	p2.Ports = 2
	b1, _ := ForPRT(p1)
	b2, _ := ForPRT(p2)
	gm := DefaultGateModel()
	// The second port adds increment logic but removes an operand
	// latch; the budgets must stay within 2x of each other.
	r := b2.GateEquivalents(gm) / b1.GateEquivalents(gm)
	if r > 2 || r < 0.5 {
		t.Errorf("dual-port budget ratio %.2f implausible", r)
	}
}

func TestForPRTValidation(t *testing.T) {
	if _, err := ForPRT(Params{N: 1, M: 4, Gen: lfsr.PaperGenPoly(), Ports: 1}); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := ForPRT(Params{N: 64, M: 8, Gen: lfsr.PaperGenPoly(), Ports: 1}); err == nil {
		t.Error("field/width mismatch accepted")
	}
	if _, err := ForPRT(Params{N: 64, M: 4, Gen: lfsr.PaperGenPoly(), Ports: 0}); err == nil {
		t.Error("zero ports accepted")
	}
}

func TestBudgetString(t *testing.T) {
	b, _ := ForPRT(paperParams(256))
	if b.String() == "" {
		t.Error("empty budget string")
	}
}

// --- controller FSM ---

func TestControllerMatchesRunIteration(t *testing.T) {
	cfg := prt.PaperWOMConfig()
	n := 64
	memA := ram.NewWOM(n, 4)
	ctl, err := NewController(cfg, memA)
	if err != nil {
		t.Fatal(err)
	}
	if !ctl.Run() {
		t.Fatal("controller failed on clean memory")
	}
	memB := ram.NewWOM(n, 4)
	prt.MustRunIteration(cfg, memB)
	if !ram.Equal(memA, memB) {
		t.Error("controller TDB differs from reference executor")
	}
	// One memory op per cycle: k seeds + (n-k)(k+1) walk + k fin reads
	// + 1 compare.
	want := uint64(2 + (n-2)*3 + 2 + 1)
	if ctl.Cycles != want {
		t.Errorf("cycles = %d, want %d", ctl.Cycles, want)
	}
}

func TestControllerDetectsFault(t *testing.T) {
	cfg := prt.PaperWOMConfig()
	f := fault.SAF{Cell: 20, Bit: 0, Value: 1}
	mem := f.Inject(ram.NewWOM(64, 4))
	ctl, err := NewController(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Run() {
		t.Error("controller missed a stuck-at fault")
	}
	if !ctl.Failed() || ctl.State() != StateFail {
		t.Error("fail state not latched")
	}
	// Terminal states are absorbing.
	c0 := ctl.Cycles
	ctl.Step()
	if ctl.Cycles != c0 {
		t.Error("Step advanced after completion")
	}
}

func TestControllerRejectsExtendedModes(t *testing.T) {
	cfg := prt.PaperWOMConfig()
	cfg.Verify = true
	if _, err := NewController(cfg, ram.NewWOM(16, 4)); err == nil {
		t.Error("verify mode accepted")
	}
	cfg2 := prt.PaperWOMConfig()
	cfg2.Ring = true
	if _, err := NewController(cfg2, ram.NewWOM(16, 4)); err == nil {
		t.Error("ring mode accepted")
	}
	if _, err := NewController(prt.Config{}, ram.NewWOM(16, 4)); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestRunAllScheme(t *testing.T) {
	s := prt.StandardScheme3(lfsr.PaperGenPoly())
	pass, cycles, err := RunAll(s, ram.NewWOM(64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !pass {
		t.Error("clean memory failed")
	}
	if cycles == 0 {
		t.Error("no cycles counted")
	}
	// A stuck fault makes at least one iteration fail.
	f := fault.SAF{Cell: 5, Bit: 2, Value: 1}
	pass2, _, err := RunAll(s, f.Inject(ram.NewWOM(64, 4)))
	if err != nil {
		t.Fatal(err)
	}
	if pass2 {
		t.Error("scheme missed a stuck-at fault")
	}
}

func TestStateString(t *testing.T) {
	for s := StateIdle; s <= StateFail; s++ {
		if s.String() == "" {
			t.Errorf("state %d has no name", int(s))
		}
	}
	if State(99).String() == "" {
		t.Error("unknown state should format")
	}
}

func TestBitsFor(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 1024: 10, 1025: 11}
	for n, want := range cases {
		if got := bitsFor(n); got != want {
			t.Errorf("bitsFor(%d) = %d, want %d", n, got, want)
		}
	}
}
