// Index-range partitioning of streaming universes.  A SubSource is a
// pure index arithmetic view, so partitioned enumeration is as
// deterministic as the generators it wraps.
//
//faultsim:deterministic

package fault

// This file splits one fault universe into index ranges — the unit of
// distribution for multi-worker and multi-process campaigns.  A
// SubSource restricts any Source to [lo, hi); Partition cuts a source
// into k near-equal contiguous ranges that tile the universe exactly.
// Because every built-in source is index-addressable with O(1) Skip,
// a sub-source seek costs a Reset plus one Skip — partitioning a
// multi-billion-fault universe is free, and a partition's faults are
// byte-identical to the same index range of the unpartitioned stream.

// subSource is an index-range view [lo, hi) over an underlying
// source.  It re-seeks the underlying source (Reset + Skip) on every
// Next call, so several sub-sources may share one underlying source
// as long as calls are serialized — exactly the discipline the
// streaming drivers already impose (Next behind a source mutex).
type subSource struct {
	src    Source
	lo, hi int
	pos    int
}

// SubSource returns a view of src restricted to the index range
// [lo, hi): fault i of the view is fault lo+i of a freshly Reset src.
// When src reports an exact Count the range is clamped to it, so the
// view's own Count is exact; for estimated sources the view ends
// wherever the underlying stream does.  The view re-seeks src on each
// Next (O(1) for the index-addressable generator families), so
// multiple views over one shared source stay consistent under
// sequential use.  Panics if lo < 0 or hi < lo.
func SubSource(src Source, lo, hi int) Source {
	if lo < 0 || hi < lo {
		panic("fault: SubSource range must satisfy 0 <= lo <= hi")
	}
	if n, exact := src.Count(); exact {
		if hi > n {
			hi = n
		}
		if lo > n {
			lo = n
		}
	}
	return &subSource{src: src, lo: lo, hi: hi, pos: lo}
}

func (s *subSource) Next(dst []Fault) (int, bool) {
	rem := s.hi - s.pos
	if rem <= 0 {
		return 0, false
	}
	if len(dst) > rem {
		dst = dst[:rem]
	}
	s.src.Reset()
	if got := s.src.Skip(s.pos); got < s.pos {
		// Underlying stream ended before our position (estimated
		// Count); clamp the view.
		s.hi = s.pos
		return 0, false
	}
	total := 0
	for total < len(dst) {
		n, more := s.src.Next(dst[total:])
		total += n
		if !more {
			s.pos += total
			if s.pos < s.hi {
				s.hi = s.pos // underlying ended inside the range
			}
			return total, false
		}
	}
	s.pos += total
	return total, s.pos < s.hi
}

func (s *subSource) Count() (int, bool) {
	lo, hi := s.lo, s.hi
	n, exact := s.src.Count()
	if exact {
		if hi > n {
			hi = n
		}
		if lo > n {
			lo = n
		}
	}
	return hi - lo, exact
}

func (s *subSource) Reset() { s.pos = s.lo }

func (s *subSource) Skip(n int) int {
	if rem := s.hi - s.pos; n > rem {
		n = rem
	}
	if n < 0 {
		n = 0
	}
	s.pos += n
	return n
}

// PartitionRange returns the index range [lo, hi) of partition i of k
// over an n-fault universe: ranges tile [0, n) exactly and differ in
// size by at most one fault.  Panics unless 0 <= i < k and n >= 0.
func PartitionRange(n, i, k int) (lo, hi int) {
	if k <= 0 || i < 0 || i >= k || n < 0 {
		panic("fault: PartitionRange needs n >= 0 and 0 <= i < k")
	}
	return i * n / k, (i + 1) * n / k
}

// Partition splits src into k contiguous index-range views with
// near-equal sizes (PartitionRange).  The views share src — safe under
// sequential use because each re-seeks on Next — and their
// concatenation enumerates exactly the unpartitioned stream.  Panics
// if k < 1 or src does not report an exact Count (an estimated
// universe has no well-defined ranges to tile).
func Partition(src Source, k int) []Source {
	if k < 1 {
		panic("fault: Partition needs k >= 1")
	}
	n, exact := src.Count()
	if !exact {
		panic("fault: Partition requires a source with an exact Count")
	}
	parts := make([]Source, k)
	for i := range parts {
		lo, hi := PartitionRange(n, i, k)
		parts[i] = SubSource(src, lo, hi)
	}
	return parts
}
