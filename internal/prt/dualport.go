package prt

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/ram"
)

// DualPortResult reports a dual-port π-iteration (the Fig. 2 scheme).
type DualPortResult struct {
	Fin      []gf.Elem
	FinStar  []gf.Elem
	Detected bool
	// Cycles is the number of memory cycles consumed — the paper's §4
	// claim is 2n for the two-term scheme, versus 3n single-port
	// operations.
	Cycles uint64
}

// RunDualPort executes one π-test iteration on a two-port memory using
// the scheme of Fig. 2 of the paper, for a two-term generator
// polynomial (k = 2): in each step the two reads of the sub-iteration
// {r_i, r_{i+1}, w_{i+2}} are carried out *simultaneously* on the two
// ports, and the write takes the second cycle, giving 2 cycles per
// cell instead of 3 operations:
//
//	cycle 2t   : port A reads c_i        port B reads c_{i+1}
//	cycle 2t+1 : port A writes c_{i+2}   port B idle
//
// Only the Addresses trajectory of cfg is honoured; the generator and
// seed have the same roles as in RunIteration.
func RunDualPort(cfg Config, mp *ram.MultiPort) (DualPortResult, error) {
	if mp.Ports() < 2 {
		return DualPortResult{}, fmt.Errorf("prt: dual-port scheme needs >= 2 ports, have %d", mp.Ports())
	}
	if cfg.Gen.K() != 2 {
		return DualPortResult{}, fmt.Errorf("prt: Fig. 2 scheme requires a two-term g(x) (k=2), got k=%d", cfg.Gen.K())
	}
	if err := cfg.Validate(mp.Size(), mp.Width()); err != nil {
		return DualPortResult{}, err
	}
	f := cfg.Gen.Field
	taps := cfg.Gen.Taps() // a₁, a₂
	n := mp.Size()
	addr := cfg.Addresses(n)
	start := mp.Cycles
	var res DualPortResult

	idleOps := func() []ram.PortOp {
		ops := make([]ram.PortOp, mp.Ports())
		for i := range ops {
			ops[i] = ram.Idle()
		}
		return ops
	}

	// Seed both initial cells in one cycle — two ports, two writes.
	ops := idleOps()
	ops[0] = ram.WriteOp(addr[0], ram.Word(cfg.Seed[0]))
	ops[1] = ram.WriteOp(addr[1], ram.Word(cfg.Seed[1]))
	mp.Cycle(ops)

	for i := 2; i < n; i++ {
		// Cycle 1: simultaneous reads of the two predecessor cells.
		ops = idleOps()
		ops[0] = ram.ReadOp(addr[i-2])
		ops[1] = ram.ReadOp(addr[i-1])
		vals := mp.Cycle(ops)
		next := cfg.Offset
		next = f.Add(next, f.Mul(taps[0], gf.Elem(vals[1])))
		next = f.Add(next, f.Mul(taps[1], gf.Elem(vals[0])))
		// Cycle 2: write through port A.
		ops = idleOps()
		ops[0] = ram.WriteOp(addr[i], ram.Word(next))
		mp.Cycle(ops)
	}
	// Observe Fin with one final double-read cycle.
	ops = idleOps()
	ops[0] = ram.ReadOp(addr[n-2])
	ops[1] = ram.ReadOp(addr[n-1])
	vals := mp.Cycle(ops)
	res.Fin = []gf.Elem{gf.Elem(vals[0]), gf.Elem(vals[1])}

	finStar, err := lfsr.AffineJumpAhead(cfg.Gen, cfg.Offset, cfg.Seed, uint64(n-2))
	if err != nil {
		return res, err
	}
	res.FinStar = finStar
	res.Detected = !elemsEqual(res.Fin, res.FinStar)
	res.Cycles = mp.Cycles - start
	return res, nil
}

// DualPortScheme3 runs the 3-iteration standard scheme through the
// dual-port executor and merges detection.  Mirror placeholders are
// resolved against the memory size; the Verify/CaptureStale options of
// the single-port scheme do not apply (the Fig. 2 scheme is the pure
// signature pipeline).
func DualPortScheme3(g lfsr.GenPoly, mp *ram.MultiPort) (detected bool, cycles uint64, err error) {
	s := StandardScheme3(g)
	resolved := make([]Config, len(s.Iters))
	for i, cfg := range s.Iters {
		if t := cfg.mirrorTarget(); t >= 0 {
			m, err := MirrorConfig(resolved[t], mp.Size())
			if err != nil {
				return detected, cycles, fmt.Errorf("prt: dual-port iteration %d: %w", i+1, err)
			}
			cfg = m
		}
		cfg.Verify = false
		cfg.CaptureStale = false
		resolved[i] = cfg
		r, err := RunDualPort(cfg, mp)
		if err != nil {
			return detected, cycles, fmt.Errorf("prt: dual-port iteration %d: %w", i+1, err)
		}
		cycles += r.Cycles
		if r.Detected {
			detected = true
		}
	}
	return detected, cycles, nil
}
