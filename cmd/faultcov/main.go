// Command faultcov regenerates the paper's evaluation: every figure
// and quantitative claim as a table (the same output as
// `go test -bench=.` produces, without the timing).
//
// Usage:
//
//	faultcov                 # all experiments (compiled engine)
//	faultcov -exp e6         # one experiment; -exp '?' lists the ids
//	faultcov -format csv     # CSV output (-csv is the legacy alias)
//	faultcov -format json    # JSON Lines: one object per table row
//	faultcov -engine oracle  # per-fault reference engine
//	faultcov -workers 4      # fixed campaign worker count
//	faultcov -collapse=false # simulate the full universe, uncollapsed
//	faultcov -drop           # cross-test fault dropping in sessions
//	faultcov -session        # report survivors per session stage
//	faultcov -seed 99        # reseed the sampled coupling-pair draws
//	faultcov -chunk 65536    # faults per pull of streaming campaigns
//	faultcov -exp e17 -exhaustive-cf  # multi-million-fault exhaustive CF run
//	faultcov -progress       # live faults/s, ETA and survivors on stderr
//	faultcov -debug-addr :6060  # /metrics + /debug/pprof while running
//	faultcov -exp e17 -checkpoint run.fckp            # durable campaign
//	faultcov -exp e17 -checkpoint run.fckp -resume    # continue after a kill
//	faultcov -exp e17 -partition 2/3 -checkpoint p2.fckp  # one universe shard
//	faultcov -merge p1.fckp p2.fckp p3.fckp           # combine shard results
//
// -partition i/N restricts every streaming campaign session to the
// i-th of N near-equal index ranges of its fault universe, so N
// faultcov processes (or machines) can split one campaign.  It
// requires -checkpoint: the per-partition checkpoint file is the
// partition's output artifact.  -merge validates that the named
// checkpoint files are completed partitions of the same campaign
// (identical spec hash, seed and memory geometry; ranges tiling the
// universe with no gap or overlap), ORs their detection bitmaps, sums
// their tallies, and prints the combined result tables — byte-
// identical to the tables -merge prints for a single unpartitioned
// checkpoint of the same campaign.  With -checkpoint the merged state
// is also written to that file.
//
// -checkpoint makes the streaming campaign sessions durable: the
// session state (per-stage tallies, the cumulative detection bitmap
// and a high-water mark) is written atomically to the file every
// -checkpoint-every universe faults, at stage boundaries, on SIGINT/
// SIGTERM, and at completion.  A signal cancels the campaign
// cooperatively — in-flight work drains within one chunk, the final
// checkpoint is flushed, partial tables print, and faultcov exits with
// status 3.  -resume loads the checkpoint and fast-forwards the
// matching session past the work already done; a checkpoint written by
// a different campaign (spec, memory geometry or seed mismatch) or a
// corrupt file is refused up front.
//
// -progress attaches the telemetry registry and streams two kinds of
// stderr lines: periodic `# progress` lines during a stage (faults
// done, faults/s, ETA, survivors when known) and one `# stage` line
// after each stage (engine, elapsed, throughput, collapse ratio, and
// each worker's share of wall time spent blocked on the serialized
// streaming sink).  -debug-addr serves the same counters as JSON on
// /metrics plus the standard net/http/pprof profiles for the duration
// of the run; both flags cost nothing when absent (the engines check
// one nil pointer per batch).
//
// The experiment catalogue is defined once in this file (the order
// slice below) and the -exp help text is generated from it, so the two
// cannot drift apart as experiments are added.
//
// The -engine flag selects the campaign execution strategy: "compiled"
// (default) lowers the recorded test trace into a flat instruction
// program replayed allocation-free over per-worker arenas with
// structural fault collapsing; "bitpar" is the per-batch trace
// interpreter; "oracle" re-runs the full algorithm once per injected
// fault.  All three produce identical tables — including the
// signature-compressed (MISR/BIST) rows, whose aliasing the compiled
// engine's observers replay exactly; the oracle is the reference the
// replay engines are property-tested against.
//
// Experiments that compare several algorithms over one universe run as
// campaign sessions (coverage.Plan).  -drop enables cross-test fault
// dropping inside those sessions: once a fault is detected by one
// algorithm it is dropped from the rest, so later rows cover only the
// faults the preceding algorithms missed (the per-algorithm rows are
// then conditional on session order; defaults keep every row an
// independent full-universe campaign).  -session prints one summary
// line per session with the survivor count after each stage.
//
// E17 runs over streaming fault universes (fault.Source): the faults
// are generated in -chunk sized pulls instead of being materialized,
// so resident fault storage is O(chunk × workers) however large the
// universe.  -exhaustive-cf switches E17 to its full-scale sizes,
// where the exhaustive coupling universe exceeds two million fault
// instances — feasible only via the streaming path.
//
// -seed replaces the per-experiment default seeds of every sampled
// coupling-pair draw (E5, E6, E10, E16 and E17's sampled baseline);
// the effective seed is printed in the run header so sampled tables
// are reproducible on demand.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/checkpoint"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// experiments is the catalogue, in presentation order.  The -exp flag
// help and the unknown-id error are both generated from it.
type experiment struct {
	id    string
	build func() *report.Table
}

func catalogue() []experiment {
	return []experiment{
		{"fig1a", func() *report.Table { return repro.ExperimentFig1a(16) }},
		{"fig1b", func() *report.Table { return repro.ExperimentFig1b(257) }},
		{"fig2", func() *report.Table { return repro.ExperimentFig2([]int{64, 256, 1024}) }},
		{"e4", func() *report.Table { return repro.ExperimentSingleCell(48) }},
		{"e5", func() *report.Table { return repro.ExperimentCoupling(48) }},
		{"e6", func() *report.Table { return repro.ExperimentPRTvsMarch(48, 4) }},
		{"e7", repro.ExperimentBISTOverhead},
		{"e8", repro.ExperimentMarkov},
		{"e9", func() *report.Table { return repro.ExperimentIntraWord(32, 4) }},
		{"e10", func() *report.Table { return repro.ExperimentQualityFactors(48) }},
		{"e11", repro.ExperimentMultiplierSynthesis},
		{"e12", func() *report.Table { return repro.ExperimentNPSF(64, 8) }},
		{"e13", func() *report.Table { return repro.ExperimentRetention(48) }},
		{"e14", func() *report.Table { return repro.ExperimentRingMode([]int{64, 255, 257}) }},
		{"e15", func() *report.Table { return repro.ExperimentMISR(64) }},
		{"e16", func() *report.Table {
			return repro.ExperimentMISRAliasing([]int{64, 256}, []int{1, 2, 4, 8, 16})
		}},
		{"e17", func() *report.Table {
			// -exhaustive-cf scales the exhaustive coupling universes into
			// the millions (n=512 → 3.1M instances) — streaming only.
			if exhaustiveCFSizes {
				return repro.ExperimentExhaustiveCoupling([]int{64, 128, 256, 512}, 64)
			}
			return repro.ExperimentExhaustiveCoupling([]int{48, 96}, 64)
		}},
	}
}

// exhaustiveCFSizes is set by the -exhaustive-cf flag before the
// catalogue's build closures run.
var exhaustiveCFSizes bool

func main() {
	exps := catalogue()
	order := make([]string, len(exps))
	byID := make(map[string]func() *report.Table, len(exps))
	for i, e := range exps {
		order[i] = e.id
		byID[e.id] = e.build
	}
	ids := strings.Join(order, ", ")

	exp := flag.String("exp", "all", fmt.Sprintf("experiment id: %s or all", ids))
	format := flag.String("format", "text", "output format: text (aligned), csv, or json (JSON Lines, one object per row)")
	csv := flag.Bool("csv", false, "emit CSV (legacy alias for -format csv)")
	engine := flag.String("engine", "compiled", "campaign engine: compiled (arena replay), bitpar (per-batch interpreter) or oracle (one run per fault)")
	workers := flag.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS)")
	collapse := flag.Bool("collapse", true, "collapse equivalent faults before simulation (compiled engine)")
	drop := flag.Bool("drop", false, "cross-test fault dropping: later runners of a comparison session simulate only the faults earlier runners missed (their rows then cover survivors only)")
	session := flag.Bool("session", false, "print one summary line per campaign session with survivors after each stage")
	seed := flag.Int64("seed", 0, "seed for the sampled coupling-pair draws (0 = per-experiment defaults), printed in the run header")
	chunk := flag.Int("chunk", 0, "faults per pull of streaming campaigns (0 = the engine default)")
	lanes := flag.Int("lanes", 64, "machines simulated per compiled replay batch: 64, 256 or 512 (wide lanes trade arena size for per-pass throughput)")
	exhaustiveCF := flag.Bool("exhaustive-cf", false, "run E17 over the full-scale exhaustive coupling universes (millions of fault instances, streaming engine only)")
	progress := flag.Bool("progress", false, "stream live campaign progress (faults/s, ETA, survivors) and per-stage engine reports to stderr")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this address (e.g. :6060) for the duration of the run")
	checkpointPath := flag.String("checkpoint", "", "write streaming-campaign checkpoints atomically to this file (enables durable campaigns)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in universe faults (0 = the package default; requires -checkpoint)")
	resume := flag.Bool("resume", false, "resume the campaign from the -checkpoint file if it exists")
	partitionFlag := flag.String("partition", "", "run only one index-range shard of each streaming campaign, format i/N (1-based, N >= 2; requires -checkpoint; combine the shard checkpoints with -merge)")
	merge := flag.Bool("merge", false, "merge completed partition checkpoint files (the positional arguments) and print the combined result tables; -checkpoint writes the merged state to that file")
	flag.Parse()
	exhaustiveCFSizes = *exhaustiveCF

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "faultcov: "+format+"\n", args...)
		os.Exit(2)
	}
	// Up-front flag validation: a bad combination must refuse before any
	// campaign runs, not fail (or silently misbehave) hours in.
	explicit := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["chunk"] && *chunk < 1 {
		fail("-chunk must be at least 1 (got %d)", *chunk)
	}
	if *workers < 0 {
		fail("-workers must be non-negative (got %d)", *workers)
	}
	if explicit["checkpoint-every"] && *checkpointPath == "" {
		fail("-checkpoint-every requires -checkpoint")
	}
	if *checkpointEvery < 0 {
		fail("-checkpoint-every must be non-negative (got %d)", *checkpointEvery)
	}
	if *resume && *checkpointPath == "" {
		fail("-resume requires -checkpoint")
	}
	partIdx, partCnt := 0, 0
	if *partitionFlag != "" {
		if *merge {
			fail("-partition and -merge are mutually exclusive (run the partitions first, then merge their checkpoints)")
		}
		var ok bool
		partIdx, partCnt, ok = parsePartition(*partitionFlag)
		if !ok {
			fail("-partition wants i/N with integers 1 <= i <= N and N >= 2 (got %q); e.g. -partition 2/3", *partitionFlag)
		}
		if *checkpointPath == "" {
			fail("-partition requires -checkpoint: the per-partition checkpoint file is the shard's output (combine them with faultcov -merge)")
		}
	}
	if *merge && *resume {
		fail("-resume is meaningless with -merge (with -merge, -checkpoint names the output file)")
	}
	laneWords, err := sim.LaneWordsForMachines(*lanes)
	if err != nil {
		fail("-lanes: %v", err)
	}

	eng, err := coverage.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultcov: %v\n", err)
		os.Exit(2)
	}
	if *csv {
		*format = "csv"
	}
	switch *format {
	case "text", "csv", "json":
	default:
		fmt.Fprintf(os.Stderr, "faultcov: unknown format %q (want text, csv or json)\n", *format)
		os.Exit(2)
	}
	if *merge {
		mergeCheckpoints(flag.Args(), *checkpointPath, *format, fail)
		return
	}
	coverage.SetDefaultEngine(eng)
	coverage.SetDefaultWorkers(*workers)
	coverage.SetCollapse(*collapse)
	coverage.SetDefaultDrop(*drop)
	coverage.SetDefaultChunk(*chunk)
	coverage.SetDefaultLaneWords(laneWords)
	if partCnt > 0 {
		coverage.SetDefaultPartition(partIdx, partCnt)
	}
	repro.SetSampleSeed(*seed)

	// SIGINT/SIGTERM cancel the campaign context: in-flight stages drain
	// within a chunk, durable sessions flush a final checkpoint, and the
	// partial tables still print before the exit-3 report below.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	coverage.SetDefaultContext(ctx)

	resumeOffered := false
	if *checkpointPath != "" {
		coverage.SetDefaultCheckpoint(&coverage.CheckpointConfig{
			Path:  *checkpointPath,
			Every: *checkpointEvery,
			Label: fmt.Sprintf("faultcov -exp %s -engine %s -drop=%v -seed %d", strings.ToLower(*exp), eng, *drop, *seed),
			Seed:  *seed,
		})
		if *resume {
			st, err := checkpoint.Load(*checkpointPath)
			switch {
			case err == nil:
				// The full identity (spec hash, geometry, stage order) is
				// validated by the session that consumes the offer; the seed
				// is checkable right here, so refuse the obvious mismatch
				// before any simulation starts.
				if st.Seed != *seed {
					fail("-resume: checkpoint %q was written with seed %d, this run has seed %d", *checkpointPath, st.Seed, *seed)
				}
				coverage.SetDefaultResume(st)
				resumeOffered = true
				fmt.Fprintf(os.Stderr, "# resuming from %s (%q)\n", *checkpointPath, st.Label)
			case errors.Is(err, os.ErrNotExist):
				fmt.Fprintf(os.Stderr, "# no checkpoint at %s yet; starting fresh\n", *checkpointPath)
			default:
				fail("-resume: %v", err)
			}
		}
	}
	if *progress || *debugAddr != "" {
		reg := telemetry.NewRegistry()
		if *progress {
			reg.OnProgress(time.Second, func(p telemetry.Progress) {
				line := fmt.Sprintf("# progress %s: %d", p.Stage, p.Done)
				if p.Total > 0 {
					line += fmt.Sprintf("/%d (%.1f%%)", p.Total, 100*float64(p.Done)/float64(p.Total))
				}
				line += fmt.Sprintf(" faults, %s faults/s", coverage.FormatRate(p.FaultsPerSec))
				if p.ETA >= 0 {
					line += fmt.Sprintf(", ETA %s", p.ETA.Round(time.Second))
				}
				if p.Survivors >= 0 {
					line += fmt.Sprintf(", survivors %d", p.Survivors)
				}
				fmt.Fprintln(os.Stderr, line)
			})
			reg.OnStage(func(rep telemetry.StageReport) {
				line := fmt.Sprintf("# stage %s/%s [%s]: %d faults in %s, %s faults/s",
					rep.Universe, rep.Stage, rep.Engine, rep.Entered,
					coverage.FormatDuration(rep.Elapsed), coverage.FormatRate(rep.FaultsPerSec))
				if rep.CollapseRatio > 0 && rep.CollapseRatio < 1 {
					line += fmt.Sprintf(", collapse %.2f", rep.CollapseRatio)
				}
				if rep.CacheHit {
					line += ", cached program"
				}
				if len(rep.SinkWait) > 0 && rep.Elapsed > 0 {
					shares := make([]string, len(rep.SinkWait))
					for i, w := range rep.SinkWait {
						shares[i] = fmt.Sprintf("%.0f%%", 100*w.Seconds()/rep.Elapsed.Seconds())
					}
					line += fmt.Sprintf(", sink-wait/worker [%s]", strings.Join(shares, " "))
				}
				fmt.Fprintln(os.Stderr, line)
			})
		}
		telemetry.SetActive(reg)
		if *debugAddr != "" {
			addr, err := telemetry.ServeDebug(*debugAddr, reg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "faultcov: debug endpoint: %v\n", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "# debug endpoint on http://%s (/metrics, /debug/pprof)\n", addr)
		}
	}
	if *session {
		// Session lines go to stdout only in text mode; the csv/json
		// streams stay machine-readable, so the report moves to stderr.
		sessionOut := os.Stdout
		if *format != "text" {
			sessionOut = os.Stderr
		}
		coverage.SetSessionObserver(func(p *coverage.Plan, s *coverage.Session) {
			fmt.Fprintf(sessionOut, "# session %s [%s]: %s — cumulative %s\n",
				p.UniverseName(), eng, s.FormatStages(),
				report.Percent(s.Cumulative.Detected, s.Cumulative.Total))
		})
	}

	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	seedLabel := "default"
	if *seed != 0 {
		seedLabel = fmt.Sprintf("%d", *seed)
	}
	if *format == "text" {
		partLabel := ""
		if partCnt > 0 {
			partLabel = fmt.Sprintf(" partition=%d/%d", partIdx, partCnt)
		}
		fmt.Printf("# engine=%s workers=%d lanes=%d collapse=%v drop=%v seed=%s chunk=%d%s\n\n",
			eng, effWorkers, *lanes, *collapse, *drop, seedLabel, coverage.DefaultChunk(), partLabel)
	}

	id := strings.ToLower(*exp)
	var tables []*report.Table
	if id == "all" {
		for _, k := range order {
			tables = append(tables, byID[k]())
		}
	} else {
		f, ok := byID[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "faultcov: unknown experiment %q (choose from %s)\n", *exp, ids)
			os.Exit(2)
		}
		tables = append(tables, f())
	}
	for _, t := range tables {
		switch *format {
		case "csv":
			t.CSV(os.Stdout)
		case "json":
			t.JSONL(os.Stdout)
		default:
			t.Render(os.Stdout)
		}
		if *format != "json" {
			fmt.Println()
		}
	}

	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "# interrupted: tables above are partial; rerun with -checkpoint ... -resume to continue")
		os.Exit(3)
	}
	if resumeOffered && coverage.DefaultResumePending() {
		fmt.Fprintf(os.Stderr, "faultcov: checkpoint %s matched no campaign session of this run (wrong -exp or flags?)\n", *checkpointPath)
		os.Exit(1)
	}
}

// parsePartition parses the -partition flag's i/N shard selector.
// Only 1 <= i <= N with N >= 2 is a valid selector — N=1 is just an
// unpartitioned run, so it is refused rather than silently ignored.
func parsePartition(s string) (i, n int, ok bool) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, false
	}
	i, err1 := strconv.Atoi(s[:slash])
	n, err2 := strconv.Atoi(s[slash+1:])
	if err1 != nil || err2 != nil || n < 2 || i < 1 || i > n {
		return 0, 0, false
	}
	return i, n, true
}

// mergeCheckpoints is the -merge mode: load the named partition
// checkpoint files, combine them (checkpoint.Merge validates that they
// are completed shards of one campaign tiling its universe), print the
// combined result tables in the selected format, and — when outPath is
// set — write the merged state as a full-universe checkpoint.  The
// tables are rendered from the merged State alone, so merging N
// partition files and "merging" the single checkpoint of an
// unpartitioned run of the same campaign print byte-identical output.
func mergeCheckpoints(paths []string, outPath, format string, fail func(string, ...any)) {
	if len(paths) == 0 {
		fail("-merge needs the partition checkpoint files as arguments, e.g. faultcov -merge part1.fckp part2.fckp part3.fckp")
	}
	states := make([]*checkpoint.State, len(paths))
	for i, p := range paths {
		st, err := checkpoint.Load(p)
		if err != nil {
			fail("-merge: %s: %v", p, err)
		}
		states[i] = st
	}
	merged, err := checkpoint.Merge(states)
	if err != nil {
		fail("-merge: %v", err)
	}
	if outPath != "" {
		if err := checkpoint.WriteAtomic(outPath, merged); err != nil {
			fail("-merge: writing %s: %v", outPath, err)
		}
		fmt.Fprintf(os.Stderr, "# merged %d checkpoint(s) into %s\n", len(paths), outPath)
	}
	for _, t := range mergeTables(merged) {
		switch format {
		case "csv":
			t.CSV(os.Stdout)
		case "json":
			t.JSONL(os.Stdout)
		default:
			t.Render(os.Stdout)
		}
		if format != "json" {
			fmt.Println()
		}
	}
}

// mergeTables renders a merged State's result tables: the per-stage
// campaign outcome and the per-fault-class universe tally.  Everything
// comes from the State, so the output is deterministic.
func mergeTables(s *checkpoint.State) []*report.Table {
	stages := report.New(
		fmt.Sprintf("Merged campaign: %d universe faults, %d stage(s) [%s]", s.UniverseN, len(s.Done), s.Label),
		"stage", "entered", "detected", "coverage", "survivors")
	for _, r := range s.Done {
		stages.AddRow(r.Runner, r.Entered, r.Detected,
			report.Percent(int(r.Detected), int(r.Entered)), r.Survivors)
	}
	classes := report.New("Merged universe by fault class",
		"class", "total", "detected", "coverage")
	for _, ct := range s.Universe {
		classes.AddRow(fault.Class(ct.Class).String(), ct.Total, ct.Detected,
			report.Percent(int(ct.Detected), int(ct.Total)))
	}
	return []*report.Table{stages, classes}
}
