package march

import (
	"fmt"
	"strings"
)

// Parse reads a March algorithm from its textual notation, accepting
// both the paper's Unicode arrows and ASCII spellings:
//
//	{c(w0);⇑(r0,w1);⇓(r1,w0)}
//	{c(w0); up(r0,w1); down(r1,w0)}
//
// Whitespace is insignificant.  The outer braces are optional.
func Parse(name, s string) (Test, error) {
	t := Test{Name: name}
	body := strings.TrimSpace(s)
	body = strings.TrimPrefix(body, "{")
	body = strings.TrimSuffix(body, "}")
	if strings.TrimSpace(body) == "" {
		return t, fmt.Errorf("march: empty algorithm %q", s)
	}
	for _, chunk := range strings.Split(body, ";") {
		e, err := parseElement(chunk)
		if err != nil {
			return t, fmt.Errorf("march: %v in %q", err, s)
		}
		t.Elems = append(t.Elems, e)
	}
	if err := t.Validate(); err != nil {
		return t, err
	}
	return t, nil
}

// MustParse is Parse but panics on error.
func MustParse(name, s string) Test {
	t, err := Parse(name, s)
	if err != nil {
		panic(err)
	}
	return t
}

func parseElement(chunk string) (Element, error) {
	c := strings.TrimSpace(chunk)
	open := strings.IndexByte(c, '(')
	if open < 0 || !strings.HasSuffix(c, ")") {
		return Element{}, fmt.Errorf("element %q missing parentheses", chunk)
	}
	ord, err := parseOrder(strings.TrimSpace(c[:open]))
	if err != nil {
		return Element{}, err
	}
	e := Element{Order: ord}
	for _, tok := range strings.Split(c[open+1:len(c)-1], ",") {
		op, err := parseOp(strings.TrimSpace(tok))
		if err != nil {
			return Element{}, err
		}
		e.Ops = append(e.Ops, op)
	}
	return e, nil
}

func parseOrder(s string) (Order, error) {
	switch s {
	case "c", "C", "⇕", "b", "any", "":
		return Any, nil
	case "⇑", "up", "u", "^":
		return Up, nil
	case "⇓", "down", "d", "v":
		return Down, nil
	default:
		return Any, fmt.Errorf("unknown order %q", s)
	}
}

func parseOp(s string) (Op, error) {
	if len(s) != 2 {
		return Op{}, fmt.Errorf("bad op %q", s)
	}
	var read bool
	switch s[0] {
	case 'r', 'R':
		read = true
	case 'w', 'W':
		read = false
	default:
		return Op{}, fmt.Errorf("bad op %q", s)
	}
	switch s[1] {
	case '0':
		return Op{Read: read, D: 0}, nil
	case '1':
		return Op{Read: read, D: 1}, nil
	default:
		return Op{}, fmt.Errorf("bad data in op %q", s)
	}
}
