// Package hotpathalloc defines an analyzer that forbids alloc-inducing
// constructs in functions marked //faultsim:hotpath — the compiled
// replay kernels, the streaming chunk driver, and the arena reset
// paths, whose zero-allocation contract is otherwise guarded only by
// AllocsPerRun property tests on the fixtures they happen to cover.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/faultsim"
)

const doc = `forbid alloc-inducing constructs in //faultsim:hotpath functions

In a function marked //faultsim:hotpath (or any function of a file
whose header carries the marker), the following are reported: make and
new, slice/map composite literals, address-taken composite literals,
append to a slice not locally re-sliced to zero length, function
literals (closures), defer and go statements, fmt calls, string
concatenation and string([]byte) conversions, map reads/writes/deletes,
and conversions of non-pointer concrete values to interface types.
Pointer-to-interface conversions and constant-size array literals are
allowed (they do not allocate), as is the non-blocking
select{case <-done: default:} cancellation poll.  Waive an individual
finding with "//faultsim:alloc-ok <justification>" on the same or the
preceding line.`

// Analyzer is the hotpathalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	info := faultsim.Collect(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !info.FuncMarked(f, fn, faultsim.Hotpath) {
				continue
			}
			c := &checker{pass: pass, info: info}
			c.collectPrealloc(fn.Body)
			ast.Inspect(fn.Body, c.visit)
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
	info *faultsim.Info
	// prealloc holds local slice variables whose backing storage is
	// provably reused: anything assigned from a zero-length reslice
	// (v := buf[:0] and v = buf[:0]).  append to these grows into
	// retained capacity and is allowed.
	prealloc map[types.Object]bool
}

// collectPrealloc records locals assigned from x[:0]-style reslices
// anywhere in the body (the assignment dominates the append in every
// real hot loop; a stale entry only weakens the check for that one
// variable, never breaks compilation).
func (c *checker) collectPrealloc(body *ast.BlockStmt) {
	c.prealloc = make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isZeroReslice(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := c.objectOf(id); obj != nil {
					c.prealloc[obj] = true
				}
			}
		}
		return true
	})
}

func (c *checker) objectOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

// isZeroReslice matches s[:0] and s[:0:n].
func isZeroReslice(e ast.Expr) bool {
	sl, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || sl.Low != nil {
		return false
	}
	lit, ok := sl.High.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.info.Report(c.pass, pos, faultsim.AllocOK, format, args...)
}

func (c *checker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		c.call(n)
	case *ast.FuncLit:
		c.report(n.Pos(), "hotpath: function literal allocates a closure")
	case *ast.DeferStmt:
		c.report(n.Pos(), "hotpath: defer in hot path")
	case *ast.GoStmt:
		c.report(n.Pos(), "hotpath: go statement allocates a goroutine")
	case *ast.CompositeLit:
		c.composite(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				c.report(n.Pos(), "hotpath: address-taken composite literal escapes to the heap")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD && c.isString(n.X) {
			c.report(n.Pos(), "hotpath: string concatenation allocates")
		}
	case *ast.IndexExpr:
		if c.isMap(n.X) {
			c.report(n.Pos(), "hotpath: map access in hot path")
		}
	case *ast.RangeStmt:
		if c.isMap(n.X) {
			c.report(n.Pos(), "hotpath: map iteration in hot path")
		}
	}
	return true
}

func (c *checker) isString(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) isMap(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// composite reports slice and map literals; struct and array value
// literals are allowed (no allocation unless address-taken, which the
// UnaryExpr case catches).
func (c *checker) composite(n *ast.CompositeLit) {
	t := c.pass.TypesInfo.TypeOf(n)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		c.report(n.Pos(), "hotpath: slice literal allocates")
	case *types.Map:
		c.report(n.Pos(), "hotpath: map literal allocates")
	}
}

func (c *checker) call(n *ast.CallExpr) {
	tinfo := c.pass.TypesInfo
	// Type conversions: string(bytes) allocates; T(x) into an
	// interface type boxes non-pointer values.
	if tv, ok := tinfo.Types[n.Fun]; ok && tv.IsType() && len(n.Args) == 1 {
		to := tv.Type
		if b, ok := to.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 && !c.isString(n.Args[0]) {
			c.report(n.Pos(), "hotpath: string conversion allocates")
		}
		if _, ok := to.Underlying().(*types.Slice); ok && c.isString(n.Args[0]) {
			c.report(n.Pos(), "hotpath: string-to-slice conversion allocates")
		}
		if types.IsInterface(to.Underlying()) {
			c.ifaceArg(n.Args[0], to)
		}
		return
	}
	switch fun := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		if obj, ok := tinfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				c.report(n.Pos(), "hotpath: make allocates")
				return
			case "new":
				c.report(n.Pos(), "hotpath: new allocates")
				return
			case "append":
				c.checkAppend(n)
				return
			case "delete":
				c.report(n.Pos(), "hotpath: map delete in hot path")
				return
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := tinfo.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			c.report(n.Pos(), "hotpath: fmt.%s formats and allocates", obj.Name())
			return
		}
	}
	// Implicit interface conversions at call boundaries: a non-pointer
	// concrete argument passed to an interface parameter is boxed.
	sig, ok := tinfo.TypeOf(n.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range n.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if n.Ellipsis != token.NoPos {
				continue // a spread slice is passed as-is, no boxing
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt != nil && types.IsInterface(pt.Underlying()) {
			c.ifaceArg(arg, pt)
		}
	}
}

// ifaceArg reports arg when converting it to the interface type would
// box a non-pointer concrete value.  Pointers, interfaces, channels,
// maps, funcs and nil all fit in the interface data word without
// allocating.
func (c *checker) ifaceArg(arg ast.Expr, to types.Type) {
	tv, ok := c.pass.TypesInfo.Types[arg]
	if !ok || tv.IsNil() {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature, *types.Slice:
		// Slices are three words but their conversion still allocates;
		// keep slices reported.
		if _, isSlice := tv.Type.Underlying().(*types.Slice); !isSlice {
			return
		}
	}
	c.report(arg.Pos(), "hotpath: conversion of %s to interface %s allocates", types.TypeString(tv.Type, types.RelativeTo(c.pass.Pkg)), types.TypeString(to, types.RelativeTo(c.pass.Pkg)))
}

// checkAppend allows append into storage the function provably reuses
// (a local re-sliced to length zero, or a direct s[:0] argument) and
// reports everything else.
func (c *checker) checkAppend(n *ast.CallExpr) {
	if len(n.Args) == 0 {
		return
	}
	dst := ast.Unparen(n.Args[0])
	if isZeroReslice(dst) {
		return
	}
	if id, ok := dst.(*ast.Ident); ok {
		if obj := c.objectOf(id); obj != nil && c.prealloc[obj] {
			return
		}
	}
	c.report(n.Pos(), "hotpath: append may grow the backing array")
}
