// Poweron simulates the embedded use case that motivates the paper: a
// system-on-chip boots, self-tests every on-chip memory with
// pseudo-ring testing, maps out any failing array via the diagnosis
// pass, and later runs a transparent (content-preserving) in-field
// retest while the memories hold live data.
package main

import (
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/prt"
	"repro/internal/ram"
	"repro/internal/report"
)

// block describes one on-chip memory instance.
type block struct {
	name string
	n, m int
	mem  ram.Memory
}

func main() {
	// The SoC's memory map: one of the arrays left the fab broken.
	blocks := []block{
		{"boot-rom-shadow", 512, 8, ram.NewWOM(512, 8)},
		{"dcache-tags", 256, 4, ram.NewWOM(256, 4)},
		{"dcache-data", 1024, 8, ram.NewWOM(1024, 8)},
		{"dma-scratch", 128, 4,
			fault.MustParseSpec("tfup@77.2").Inject(ram.NewWOM(128, 4))},
		{"bitmap-flags", 2048, 1, ram.NewBOM(2048)},
	}

	fmt.Println("=== power-on self-test (PRT-3) ===")
	t := report.New("", "block", "geometry", "result", "suspect")
	anyFail := false
	for _, b := range blocks {
		scheme := schemeFor(b.m)
		res, err := scheme.Run(b.mem)
		if err != nil {
			panic(err)
		}
		verdict, suspect := "PASS", "-"
		if res.Detected {
			anyFail = true
			verdict = fmt.Sprintf("FAIL (it.%d)", res.DetectedAt)
			// Localise for the repair/redundancy flow.
			d, err := prt.DiagnoseCells(prt.StandardScheme4(scheme.Iters[0].Gen), freshLike(b))
			if err == nil && d.PrimarySuspect() != nil {
				suspect = d.PrimarySuspect().String()
			}
		}
		t.AddRowf(b.name, fmt.Sprintf("%d×%d", b.n, b.m), verdict, suspect)
	}
	t.Render(os.Stdout)

	// In-field periodic retest: the healthy arrays now hold live data
	// that must survive the test.
	fmt.Println("\n=== in-field transparent retest ===")
	live := ram.NewWOM(256, 4)
	for a := 0; a < 256; a++ {
		live.Write(a, ram.Word(a^0x5)&0xF)
	}
	res, err := prt.TransparentRun(prt.PaperWOMScheme3(), live)
	if err != nil {
		panic(err)
	}
	intact := true
	for a := 0; a < 256; a++ {
		if live.Read(a) != ram.Word(a^0x5)&0xF {
			intact = false
		}
	}
	fmt.Printf("dcache-tags: detected=%v payload intact=%v restore errors=%d\n",
		res.Detected, intact, res.RestoreErrors)

	if anyFail {
		fmt.Println("\nboot: dma-scratch mapped out, redundancy engaged")
	}
}

func schemeFor(m int) prt.Scheme {
	if m == 1 {
		return prt.PaperBOMScheme3()
	}
	if m == 4 {
		return prt.PaperWOMScheme3()
	}
	// Generic width: the same two-term structure over GF(2^m).
	f := gf.NewField(m)
	return prt.StandardScheme3(lfsr.MustGenPoly(f, []gf.Elem{1, 2, 2}))
}

// freshLike rebuilds the faulty block for a second (diagnostic) pass —
// in silicon the defect persists; in the model we re-inject it.
func freshLike(b block) ram.Memory {
	if b.name == "dma-scratch" {
		return fault.MustParseSpec("tfup@77.2").Inject(ram.NewWOM(b.n, b.m))
	}
	if b.m == 1 {
		return ram.NewBOM(b.n)
	}
	return ram.NewWOM(b.n, b.m)
}
