// Package lfsr implements linear feedback shift registers over GF(2)
// (bit-oriented) and over GF(2^m) (word-oriented).
//
// The word-oriented LFSR is the "virtual linear automaton" of the
// paper: a π-test iteration walks its state sequence through the memory
// array, and the expected final state Fin* is obtained by stepping the
// LFSR model the same number of times.  The recurrence convention
// matches the paper's generator polynomial g(x) = 1 + a₁x + … + a_k x^k:
//
//	u_t = a₁·u_{t-1} ⊕ a₂·u_{t-2} ⊕ … ⊕ a_k·u_{t-k}
//
// so the paper's g(x) = 1 + 2x + 2x² over GF(2⁴) produces the Fig. 1b
// sequence 0, 1, 2, 6, 8, F, … .
package lfsr

import (
	"fmt"

	"repro/internal/gf2"
)

// Form selects the feedback topology of a bit-oriented LFSR.
type Form int

const (
	// Fibonacci (external-XOR) form: taps feed a single XOR into the
	// serial input.
	Fibonacci Form = iota
	// Galois (internal-XOR) form: the output bit XORs into each tapped
	// stage.  Same sequence family, different per-step cost profile.
	Galois
)

func (f Form) String() string {
	switch f {
	case Fibonacci:
		return "Fibonacci"
	case Galois:
		return "Galois"
	default:
		return fmt.Sprintf("Form(%d)", int(f))
	}
}

// Bit is a bit-oriented LFSR with characteristic polynomial p(x) of
// degree k stored in the low k bits of state.  The zero state is a
// fixed point (as in hardware); seed with a nonzero value for maximal
// sequences.
type Bit struct {
	poly  gf2.Poly // characteristic polynomial, degree k
	k     int
	mask  uint64
	taps  uint64 // poly without the leading term
	form  Form
	state uint64
}

// NewBit returns a bit-oriented LFSR for the characteristic polynomial
// p (degree 1..63, nonzero constant term) in the given form, seeded
// with seed (masked to k bits).
func NewBit(p gf2.Poly, form Form, seed uint64) (*Bit, error) {
	k := p.Deg()
	if k < 1 || k > 63 {
		return nil, fmt.Errorf("lfsr: polynomial degree %d out of range [1,63]", k)
	}
	if p.Coeff(0) == 0 {
		return nil, fmt.Errorf("lfsr: polynomial %v has zero constant term (singular LFSR)", p)
	}
	if form != Fibonacci && form != Galois {
		return nil, fmt.Errorf("lfsr: unknown form %d", int(form))
	}
	b := &Bit{
		poly: p,
		k:    k,
		mask: 1<<uint(k) - 1,
		taps: uint64(p) & (1<<uint(k) - 1),
		form: form,
	}
	b.Seed(seed)
	return b, nil
}

// MustBit is NewBit but panics on error, for tests and constants.
func MustBit(p gf2.Poly, form Form, seed uint64) *Bit {
	b, err := NewBit(p, form, seed)
	if err != nil {
		panic(err)
	}
	return b
}

// K returns the register length (polynomial degree).
func (b *Bit) K() int { return b.k }

// Poly returns the characteristic polynomial.
func (b *Bit) Poly() gf2.Poly { return b.poly }

// State returns the current state (low k bits).
func (b *Bit) State() uint64 { return b.state }

// Seed sets the state to seed masked to k bits.
func (b *Bit) Seed(seed uint64) { b.state = seed & b.mask }

// Step advances one clock and returns the output bit (the bit shifted
// out of stage 0).
func (b *Bit) Step() uint64 {
	out := b.state & 1
	switch b.form {
	case Fibonacci:
		fb := parity64(b.state & b.taps)
		b.state = b.state>>1 | fb<<uint(b.k-1)
	case Galois:
		b.state >>= 1
		if out == 1 {
			b.state ^= uint64(b.poly) >> 1 // taps of the reciprocal structure
		}
	}
	return out
}

// Run advances n clocks and returns the final state.
func (b *Bit) Run(n int) uint64 {
	for i := 0; i < n; i++ {
		b.Step()
	}
	return b.state
}

// Output returns the next n output bits as a slice of 0/1 bytes,
// advancing the register.
func (b *Bit) Output(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(b.Step())
	}
	return out
}

// Period returns the period of the state cycle containing the current
// state, by stepping until the state recurs (at most 2^k-1 steps plus
// one).  The state is restored afterwards.  The zero state has period 1.
func (b *Bit) Period() uint64 {
	start := b.state
	if start == 0 {
		return 1
	}
	var n uint64
	for {
		b.Step()
		n++
		if b.state == start {
			return n
		}
	}
}

// MaxPeriod returns 2^k - 1, the period of a maximal-length (primitive
// polynomial) LFSR of this length.
func (b *Bit) MaxPeriod() uint64 { return b.mask }

func parity64(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}
