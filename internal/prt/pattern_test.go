package prt

import (
	"testing"

	"repro/internal/ram"
)

// TestEq1AccessPattern pins the exact memory access sequence of the
// paper's Eq. 1 sub-iteration {r_i, r_{i+1}, w_{i+2}}: for every step
// the two reads hit the two predecessor cells (most recent first, per
// the recurrence evaluation order) followed by one write to the next
// cell.  This guards the "memory's own components" property — the
// operands must be READ from the array at every step, never cached.
func TestEq1AccessPattern(t *testing.T) {
	n := 8
	tr := ram.NewTrace(ram.NewWOM(n, 4), 0)
	cfg := PaperWOMConfig()
	MustRunIteration(cfg, tr)

	var want []ram.Access
	// Seed writes.
	want = append(want,
		ram.Access{Kind: ram.OpWrite, Addr: 0},
		ram.Access{Kind: ram.OpWrite, Addr: 1},
	)
	// Walk: read i-1, read i-2, write i.
	for i := 2; i < n; i++ {
		want = append(want,
			ram.Access{Kind: ram.OpRead, Addr: i - 1},
			ram.Access{Kind: ram.OpRead, Addr: i - 2},
			ram.Access{Kind: ram.OpWrite, Addr: i},
		)
	}
	// Fin observation.
	want = append(want,
		ram.Access{Kind: ram.OpRead, Addr: n - 2},
		ram.Access{Kind: ram.OpRead, Addr: n - 1},
	)

	if len(tr.Accesses) != len(want) {
		t.Fatalf("access count %d, want %d", len(tr.Accesses), len(want))
	}
	for i, w := range want {
		got := tr.Accesses[i]
		if got.Kind != w.Kind || got.Addr != w.Addr {
			t.Fatalf("access %d = %v, want %s@%d", i, got, w.Kind, w.Addr)
		}
	}
}

// TestRingAccessPatternWraps checks that ring mode re-writes the seed
// cells through the recurrence at the end of the walk.
func TestRingAccessPatternWraps(t *testing.T) {
	n := 6
	tr := ram.NewTrace(ram.NewWOM(n, 4), 0)
	cfg := PaperWOMConfig()
	cfg.Ring = true
	MustRunIteration(cfg, tr)
	// The wrap steps write addresses 0 and 1 again after address n-1.
	var writes []int
	for _, a := range tr.Accesses {
		if a.Kind == ram.OpWrite {
			writes = append(writes, a.Addr)
		}
	}
	wantWrites := []int{0, 1, 2, 3, 4, 5, 0, 1}
	if len(writes) != len(wantWrites) {
		t.Fatalf("write sequence %v, want %v", writes, wantWrites)
	}
	for i := range wantWrites {
		if writes[i] != wantWrites[i] {
			t.Fatalf("write sequence %v, want %v", writes, wantWrites)
		}
	}
}

// TestCaptureAddsOnePreReadPerCell verifies the transparent capture
// cost model: exactly one extra read per written cell.
func TestCaptureAddsOnePreReadPerCell(t *testing.T) {
	n := 32
	plain := PaperWOMConfig()
	capture := plain
	capture.CaptureStale = true
	capture.StaleExpect = ExpectedFinalContents(plain, n)

	memA := ram.NewWOM(n, 4)
	a := MustRunIteration(plain, memA)
	memB := ram.NewWOM(n, 4)
	b := MustRunIteration(capture, memB)
	if b.Ops != a.Ops+uint64(n) {
		t.Errorf("capture ops = %d, want %d + %d", b.Ops, a.Ops, n)
	}
}
