package prt

import (
	"fmt"

	"repro/internal/gf"
	"repro/internal/lfsr"
	"repro/internal/ram"
)

// Scheme is a multi-iteration PRT experiment: the paper's §3 result is
// that three π-test iterations with a specific test data background
// detect all single- and multi-cell faults, for bit- and word-oriented
// memories alike.
type Scheme struct {
	Name  string
	Iters []Config
}

// SchemeResult aggregates the per-iteration outcomes.
type SchemeResult struct {
	PerIteration []IterationResult
	// Detected is true when any iteration's signature check fails.
	Detected bool
	// DetectedAt is the 1-based index of the first detecting iteration
	// (0 when undetected).
	DetectedAt int
	// Ops totals memory operations across all iterations.
	Ops uint64
}

// Run executes all iterations in order on mem (the memory state carries
// over between iterations; each iteration re-seeds its first k cells).
// Mirror placeholders (Config.MirrorOf > 0) are resolved against the
// memory size here.
func (s Scheme) Run(mem ram.Memory) (SchemeResult, error) {
	var res SchemeResult
	resolved := make([]Config, len(s.Iters))
	var prevContents []gf.Elem
	for i, cfg := range s.Iters {
		capture := cfg.CaptureStale
		if t := cfg.mirrorTarget(); t >= 0 {
			if t >= i {
				return res, fmt.Errorf("prt: scheme %q iteration %d mirrors a later iteration %d", s.Name, i+1, t+1)
			}
			m, err := MirrorConfig(resolved[t], mem.Size())
			if err != nil {
				return res, fmt.Errorf("prt: scheme %q iteration %d: %w", s.Name, i+1, err)
			}
			m.Verify = cfg.Verify
			m.CaptureStale = capture
			cfg = m
		}
		// Feed the previous iteration's predicted contents to the
		// transparent stale capture.
		if capture && cfg.StaleExpect == nil {
			cfg.StaleExpect = prevContents // nil on the first iteration
		}
		resolved[i] = cfg
		ir, err := RunIteration(cfg, mem)
		if err != nil {
			return res, fmt.Errorf("prt: scheme %q iteration %d: %w", s.Name, i+1, err)
		}
		res.PerIteration = append(res.PerIteration, ir)
		res.Ops += ir.Ops
		if ir.Detected && !res.Detected {
			res.Detected = true
			res.DetectedAt = i + 1
		}
		prevContents = ExpectedFinalContents(cfg, mem.Size())
	}
	return res, nil
}

// MustRun is Run but panics on configuration errors.
func (s Scheme) MustRun(mem ram.Memory) SchemeResult {
	r, err := s.Run(mem)
	if err != nil {
		panic(err)
	}
	return r
}

// Truncate returns a scheme with only the first count iterations —
// used by the coverage-versus-iterations experiments.
func (s Scheme) Truncate(count int) Scheme {
	if count > len(s.Iters) {
		count = len(s.Iters)
	}
	return Scheme{Name: fmt.Sprintf("%s[:%d]", s.Name, count), Iters: s.Iters[:count]}
}

// OpsPerCell estimates the per-cell operation count: each iteration
// costs (k+1) ops per cell (k reads + 1 write) plus O(k) edge terms —
// i.e. 3n for the paper's k=2 — plus one read per cell for each of the
// Verify and CaptureStale options.  Mirror placeholders inherit the
// register length of their source iteration.
func (s Scheme) OpsPerCell() int {
	total := 0
	for _, c := range s.Iters {
		k := 0
		if c.Gen.Field != nil {
			k = c.Gen.K()
		}
		if t := c.mirrorTarget(); t >= 0 && t < len(s.Iters) && s.Iters[t].Gen.Field != nil {
			k = s.Iters[t].Gen.K()
		}
		total += k + 1
		if c.Verify {
			total++
		}
		if c.CaptureStale {
			total++
		}
	}
	return total
}

// StandardScheme3 builds the 3-iteration recipe reproducing the
// paper's "specific TDB" requirement for generator polynomial g:
//
//	it.1  ascending,  seed Init (all ones), plain automaton
//	it.2  ascending,  complemented seed with affine offset 2^m-1 — its
//	      TDB is the exact bitwise complement of it.1's, so after the
//	      two iterations every bit of every cell has held both 0 and 1
//	      and made both transitions (full SAF/TF excitation)
//	it.3  descending with a phase-shifted seed, reversing the
//	      aggressor/victim order seen by coupling and decoder faults
//
// Verify (full read-back) is enabled on every iteration: the paper's
// quality argument assumes stored errors reach the observer, and the
// read-back removes the blind spot for victim cells the walk has
// already passed (see EXPERIMENTS.md E4/E5 for the measured effect of
// signature-only checking).
func StandardScheme3(g lfsr.GenPoly) Scheme {
	s := buildScheme(g, 3)
	s.Name = "PRT-3"
	return s
}

// StandardScheme4 extends StandardScheme3 with a fourth iteration
// (descending, complement of it.3's TDB), which closes the remaining
// coupling excitation gaps of the 3-iteration recipe.
func StandardScheme4(g lfsr.GenPoly) Scheme {
	s := buildScheme(g, 4)
	s.Name = "PRT-4"
	return s
}

// SignatureOnly returns a copy of the scheme with the Verify read-back
// and transparent stale capture disabled on every iteration — the
// paper's pure Fin-vs-Fin* comparator, used by the ablation
// experiments.
func (s Scheme) SignatureOnly() Scheme {
	out := Scheme{Name: s.Name + "/sig", Iters: append([]Config(nil), s.Iters...)}
	for i := range out.Iters {
		out.Iters[i].Verify = false
		out.Iters[i].CaptureStale = false
	}
	return out
}

func buildScheme(g lfsr.GenPoly, iters int) Scheme {
	f := g.Field
	k := g.K()
	mask := f.Mask()
	// Alternating nonzero/zero seed: adjacent seed cells must differ so
	// a stuck-open first cell cannot alias to its neighbour's sensed
	// value (an all-ones seed lets SOF@cell0 escape every iteration).
	seed1 := make([]gf.Elem, k)
	for i := range seed1 {
		if i%2 == 0 {
			seed1[i] = 1
		}
	}
	seed2 := complementSeed(seed1, mask)
	all := []Config{
		// it.1: plain TDB, ascending.
		{Gen: g, Seed: seed1, Trajectory: Ascending, Verify: true, CaptureStale: true},
		// it.2: exact complement TDB (affine offset), ascending —
		// every bit now held 0 and 1 and transitioned once.
		{Gen: g, Seed: seed2, Offset: mask, Trajectory: Ascending, Verify: true, CaptureStale: true},
		// it.3: mirror of it.1 — rewrites TDB1 descending, forcing the
		// opposite transition on every bit and reversing the
		// aggressor/victim order for coupling and decoder faults.
		Mirrored(0, true),
		// it.4: mirror of it.2 — the complement TDB descending.
		Mirrored(1, true),
	}
	for i := range all {
		all[i].CaptureStale = true
	}
	if iters > len(all) {
		iters = len(all)
	}
	return Scheme{Iters: all[:iters]}
}

func complementSeed(seed []gf.Elem, mask gf.Elem) []gf.Elem {
	out := make([]gf.Elem, len(seed))
	for i := range out {
		out[i] = seed[i] ^ mask
	}
	return out
}

// ExtendedScheme builds blocks of four iterations (ascending TDBφ,
// ascending ¬TDBφ, and their two mirrors) for successive phase shifts
// φ of the automaton orbit.  Each extra block exposes every
// (aggressor, victim) cell pair to new value combinations, so coverage
// of idempotent and state coupling faults climbs towards 100% with the
// block count — the quantitative form of the paper's §3 observation
// that initial values are a controllable quality factor.
func ExtendedScheme(g lfsr.GenPoly, blocks int) Scheme {
	if blocks < 1 {
		blocks = 1
	}
	mask := g.Field.Mask()
	k := g.K()
	seed := make([]gf.Elem, k)
	for i := range seed {
		if i%2 == 0 {
			seed[i] = 1
		}
	}
	s := Scheme{Name: fmt.Sprintf("PRT-x%d", blocks)}
	prev := seed
	for b := 0; b < blocks; b++ {
		base := len(s.Iters)
		s.Iters = append(s.Iters,
			Config{Gen: g, Seed: prev, Trajectory: Ascending, Verify: true, CaptureStale: true},
			Config{Gen: g, Seed: complementSeed(prev, mask), Offset: mask, Trajectory: Ascending, Verify: true, CaptureStale: true},
			Mirrored(base, true),
			Mirrored(base+1, true),
		)
		s.Iters[len(s.Iters)-2].CaptureStale = true
		s.Iters[len(s.Iters)-1].CaptureStale = true
		prev = nextPhase(g, prev, prev)
	}
	return s
}

// nextPhase walks the orbit of `from` and returns the first nonzero
// state distinct from both arguments; if the orbit is too short it
// returns `from` unchanged.
func nextPhase(g lfsr.GenPoly, from, avoid []gf.Elem) []gf.Elem {
	w := lfsr.MustWord(g, from)
	bits := g.Field.M() * g.K()
	if bits > 20 {
		bits = 20 // a distinct phase appears within a few steps anyway
	}
	bound := uint64(1) << uint(bits)
	for i := uint64(0); i < bound; i++ {
		w.Step()
		s := w.State()
		if !elemsEqual(s, from) && !elemsEqual(s, avoid) && !allZeroElems(s) {
			return s
		}
	}
	return from
}

func allZeroElems(s []gf.Elem) bool {
	for _, v := range s {
		if v != 0 {
			return false
		}
	}
	return true
}

// PaperBOMScheme3 is StandardScheme3 for the bit-oriented example
// automaton g(x) = 1 + x + x².
func PaperBOMScheme3() Scheme { return StandardScheme3(PaperBOMConfig().Gen) }

// PaperWOMScheme3 is StandardScheme3 for the paper's word-oriented
// example automaton g(x) = 1 + 2x + 2x² over GF(2⁴).
func PaperWOMScheme3() Scheme { return StandardScheme3(PaperWOMConfig().Gen) }
