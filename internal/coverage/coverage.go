// Package coverage runs fault-injection campaigns: a test algorithm ×
// a fault universe → per-class detection statistics.  It is the engine
// behind the quantitative experiments (E4, E5, E6, E9, E10) comparing
// pseudo-ring testing with the March baselines.
package coverage

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bist"
	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
	"repro/internal/sim"
)

// Runner is a memory test algorithm under evaluation.
type Runner interface {
	// Name labels the algorithm in reports.
	Name() string
	// Run executes the test on mem and reports whether a fault was
	// detected and how many memory operations were spent.
	Run(mem ram.Memory) (detected bool, ops uint64)
}

// ReplaySafe marks runners eligible for the bit-parallel trace-replay
// engine: the operation schedule is deterministic and independent of
// read values, every value-dependent write is annotated as an affine
// function of preceding reads (ram.TraceAnnotator), and detection is
// exactly "some checked read diverges from its fault-free value, or a
// signature observer's accumulator differs from its prediction at an
// annotated compare point".  MISR/BIST compression of read streams is
// replayable via the fold/observe annotations — the observer path
// reproduces aliasing bit-exactly.  Only runners with un-annotated
// adaptive stimuli or detection criteria outside those two forms must
// not implement it; they stay on the per-fault oracle.
type ReplaySafe interface {
	Runner
	// ReplaySafe is a marker method.
	ReplaySafe()
}

// Engine selects the campaign execution strategy.
type Engine int

const (
	// EngineCompiled lowers the recorded trace into a flat instruction
	// program once per campaign and replays it over per-worker arenas
	// with width-specialized kernels and structural fault collapsing —
	// the default, allocation-free fast path.  It falls back to the
	// oracle per-universe when the runner or a fault cannot take it.
	EngineCompiled Engine = iota
	// EngineBitParallel replays the recorded trace over 64-machine
	// batches with the per-batch interpreter (the PR 1 path, kept as a
	// mid-tier reference: it rebuilds the machine array every batch).
	EngineBitParallel
	// EngineOracle re-runs the full algorithm once per injected fault —
	// the reference semantics every optimisation is measured against.
	EngineOracle
)

func (e Engine) String() string {
	switch e {
	case EngineOracle:
		return "oracle"
	case EngineBitParallel:
		return "bitpar"
	default:
		return "compiled"
	}
}

// ParseEngine converts a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "compiled", "arena":
		return EngineCompiled, nil
	case "bitpar", "bit-parallel", "sim":
		return EngineBitParallel, nil
	case "oracle", "reference":
		return EngineOracle, nil
	}
	return 0, fmt.Errorf("coverage: unknown engine %q (want oracle, bitpar or compiled)", s)
}

// defaultEngine is the engine Campaign uses; the compiled path is the
// default fast path and is property-tested to produce results
// byte-identical to the oracle.
var defaultEngine atomic.Int32

// SetDefaultEngine switches the engine used by Campaign (and so by
// every experiment table).
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the engine Campaign currently uses.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// defaultWorkers is the worker count used when a campaign is invoked
// with workers <= 0; its own zero value defers to GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers fixes the worker count campaigns use when invoked
// with workers <= 0 (the -workers flag); n <= 0 restores GOMAXPROCS.
func SetDefaultWorkers(n int) { defaultWorkers.Store(int32(n)) }

// DefaultWorkers returns the effective default worker count.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// collapseOff disables structural fault collapsing on the compiled
// engine; the zero value means collapsing is on.
var collapseOff atomic.Bool

// SetCollapse toggles structural fault collapsing (the -collapse flag).
// Collapsing is exact — collapsed campaigns are property-tested
// byte-identical to full ones — so it defaults to on.
func SetCollapse(on bool) { collapseOff.Store(!on) }

// CollapseEnabled reports whether the compiled engine collapses.
func CollapseEnabled() bool { return !collapseOff.Load() }

// MemoryFactory builds a fresh fault-free memory for each trial.
type MemoryFactory func() ram.Memory

// ClassStat is the per-fault-class tally.
type ClassStat struct {
	Total    int
	Detected int
}

// Ratio returns the detection ratio (0 when the class is empty).
func (c ClassStat) Ratio() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Total)
}

// Result aggregates one campaign.
type Result struct {
	Runner   string
	Universe string
	Total    int
	Detected int
	ByClass  map[fault.Class]ClassStat
	// OpsCleanRun is the operation count of the algorithm on a
	// fault-free memory (the test length).
	OpsCleanRun uint64
	// FalsePositive is set when the algorithm flags a fault-free
	// memory — a broken configuration.
	FalsePositive bool
	// Stats describes how the campaign actually executed.  Engine
	// reports the strategy that really ran — when a replay-safe runner
	// records a non-replayable trace or a false-positive clean run, the
	// campaign falls back to the oracle and Stats says so instead of
	// leaving the requested engine's label standing.  It is diagnostic
	// metadata: Result equality is defined over the detection tallies,
	// so the equivalence tests zero it before comparing engines.
	Stats *EngineStats
}

// EngineStats is the campaign's execution report.
type EngineStats struct {
	// Engine is the strategy that actually ran (the oracle on
	// fallback, whatever was requested otherwise).
	Engine Engine
	// Workers is the effective goroutine count work was sharded over,
	// after clamping to the batch (or fault) count — a small universe
	// run by one worker reports 1, not the requested pool size.
	Workers int
	// Reps is the number of faults simulated after collapsing
	// (== Total when collapsing was off or not applicable).
	Reps int
	// ProgramOps and TrimmedOps report the compiled instruction count
	// and how many trailing trace ops the compiler dropped (compiled
	// engine only).
	ProgramOps int
	TrimmedOps int
}

// Coverage returns the overall detection ratio.
func (r Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Classes returns the classes present, in canonical order.
func (r Result) Classes() []fault.Class {
	var out []fault.Class
	for c := range r.ByClass {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Campaign injects every fault of the universe into a fresh memory and
// runs the algorithm, fanning trials across workers goroutines
// (0 = GOMAXPROCS).  Results are deterministic regardless of the
// worker count and identical for both engines (the bit-parallel path
// is property-tested against the oracle).
func Campaign(r Runner, u fault.Universe, mk MemoryFactory, workers int) Result {
	return CampaignEngine(r, u, mk, workers, DefaultEngine())
}

// CampaignEngine is Campaign with an explicit engine choice.
func CampaignEngine(r Runner, u fault.Universe, mk MemoryFactory, workers int, engine Engine) Result {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	res := Result{
		Runner:   r.Name(),
		Universe: u.Name,
		Total:    len(u.Faults),
		ByClass:  make(map[fault.Class]ClassStat),
	}
	// Clean baseline; under the replay engines this one run also
	// records the replay trace.
	var detected []bool
	_, replaySafe := r.(ReplaySafe)
	if engine != EngineOracle && replaySafe && sim.Batchable(u.Faults) {
		tr, cleanDetected, cleanOps := sim.Record(mk(), r.Run)
		res.OpsCleanRun = cleanOps
		res.FalsePositive = cleanDetected
		// A false-positive clean run breaks the checked-read criterion
		// (clean values no longer equal the algorithm's expectations):
		// keep the oracle semantics instead.
		if !cleanDetected && tr.Replayable() {
			d, stats, err := replayDetect(tr, u, workers, engine)
			if err != nil {
				// Both non-batchable faults and non-replayable traces
				// were pre-checked, so an error here is a broken
				// invariant in the engine — failing loudly beats
				// silently delivering correct-but-slow oracle results
				// under a fast-path label.
				panic(fmt.Sprintf("coverage: %s replay of %s on %s: %v", engine, r.Name(), u.Name, err))
			}
			detected, res.Stats = d, stats
		}
	} else {
		cleanDetected, cleanOps := r.Run(mk())
		res.OpsCleanRun = cleanOps
		res.FalsePositive = cleanDetected
	}
	if detected == nil {
		var w int
		detected, w = oracleDetect(r, u, mk, workers)
		res.Stats = &EngineStats{Engine: EngineOracle, Workers: w, Reps: len(u.Faults)}
	}

	for i, f := range u.Faults {
		cs := res.ByClass[f.Class()]
		cs.Total++
		if detected[i] {
			cs.Detected++
			res.Detected++
		}
		res.ByClass[f.Class()] = cs
	}
	return res
}

// replayDetect runs the selected replay fast path over the universe.
// The compiled engine lowers the trace once, optionally collapses the
// universe to equivalence-class representatives, replays them over
// per-worker arenas, and expands the representatives' results back to
// the full universe.
func replayDetect(tr *sim.Trace, u fault.Universe, workers int, engine Engine) ([]bool, *EngineStats, error) {
	if engine == EngineBitParallel {
		d, w, err := sim.Shards(tr, u.Faults, workers)
		if err != nil {
			return nil, nil, err
		}
		return d, &EngineStats{Engine: engine, Workers: w, Reps: len(u.Faults)}, nil
	}
	prog, err := sim.Compile(tr)
	if err != nil {
		return nil, nil, err
	}
	faults := u.Faults
	var col fault.Collapsed
	collapsed := CollapseEnabled()
	if collapsed {
		sum := prog.Summary()
		col = fault.Collapse(u.Faults, &sum)
		faults = col.Reps
	}
	d, w, err := sim.ShardsCompiled(prog, faults, workers)
	if err != nil {
		return nil, nil, err
	}
	if collapsed {
		d = col.Expand(d) // representative results back onto the universe
	}
	return d, &EngineStats{
		Engine:     EngineCompiled,
		Workers:    w,
		Reps:       len(faults),
		ProgramOps: prog.Ops(),
		TrimmedOps: prog.TrimmedOps(),
	}, nil
}

// oracleDetect is the reference path: one full algorithm run per
// injected fault, distributed over workers with an atomic cursor (no
// producer goroutine or channel hand-off contention on large
// universes).  It also returns the effective worker count.
func oracleDetect(r Runner, u fault.Universe, mk MemoryFactory, workers int) ([]bool, int) {
	detected := make([]bool, len(u.Faults))
	if workers > len(u.Faults) {
		workers = len(u.Faults)
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(cursor.Add(1)) - 1
				if idx >= len(u.Faults) {
					return
				}
				mem := u.Faults[idx].Inject(mk())
				d, _ := r.Run(mem)
				detected[idx] = d
			}
		}()
	}
	wg.Wait()
	return detected, workers
}

// Sum aggregates the detected/total counts over several fault classes.
func Sum(byClass map[fault.Class]ClassStat, classes ...fault.Class) (detected, total int) {
	for _, c := range classes {
		s := byClass[c]
		detected += s.Detected
		total += s.Total
	}
	return detected, total
}

// Compare runs several algorithms over the same universe.
func Compare(runners []Runner, u fault.Universe, mk MemoryFactory, workers int) []Result {
	out := make([]Result, len(runners))
	for i, r := range runners {
		out[i] = Campaign(r, u, mk, workers)
	}
	return out
}

// --- runner adapters ---

type marchRunner struct {
	test        march.Test
	backgrounds []ram.Word
}

// MarchRunner adapts a March algorithm; backgrounds nil means the
// single all-zero background.
func MarchRunner(t march.Test, backgrounds []ram.Word) Runner {
	if len(backgrounds) == 0 {
		backgrounds = []ram.Word{0}
	}
	return marchRunner{test: t, backgrounds: backgrounds}
}

func (m marchRunner) Name() string { return m.test.Name }

// ReplaySafe implements ReplaySafe: March stimuli are literal and
// every read is compared against its expected background value.
func (marchRunner) ReplaySafe() {}

func (m marchRunner) Run(mem ram.Memory) (bool, uint64) {
	r := march.RunBackgrounds(m.test, mem, m.backgrounds)
	return r.Detected, r.Ops
}

type prtRunner struct{ scheme prt.Scheme }

// PRTRunner adapts a pseudo-ring scheme.
func PRTRunner(s prt.Scheme) Runner { return prtRunner{scheme: s} }

func (p prtRunner) Name() string { return p.scheme.Name }

// ReplaySafe implements ReplaySafe: the π-test's recurrence writes are
// annotated as affine maps of the preceding reads, and all detection
// (signature, stale capture, verify) compares reads against fault-free
// predictions.
func (prtRunner) ReplaySafe() {}

func (p prtRunner) Run(mem ram.Memory) (bool, uint64) {
	r, err := p.scheme.Run(mem)
	if err != nil {
		panic(fmt.Sprintf("coverage: scheme %s: %v", p.scheme.Name, err))
	}
	return r.Detected, r.Ops
}

type bitSlicedRunner struct {
	name string
	cfgs []prt.BitSlicedConfig
}

// BitSlicedRunner adapts a bit-sliced lane scheme.
func BitSlicedRunner(name string, cfgs []prt.BitSlicedConfig) Runner {
	return bitSlicedRunner{name: name, cfgs: cfgs}
}

func (b bitSlicedRunner) Name() string { return b.name }

// ReplaySafe implements ReplaySafe: the lane recurrences are annotated
// bit-diagonal linear maps and detection compares Fin and read-back
// values against per-lane predictions.
func (bitSlicedRunner) ReplaySafe() {}

func (b bitSlicedRunner) Run(mem ram.Memory) (bool, uint64) {
	r, err := prt.RunBitSlicedScheme(b.cfgs, mem)
	if err != nil {
		panic(fmt.Sprintf("coverage: bit-sliced %s: %v", b.name, err))
	}
	return r.Detected, r.Ops
}

type bistRunner struct {
	s     prt.Scheme
	alpha gf.Elem
}

// BISTRunner adapts the cycle-stepped on-chip BIST controller with
// MISR signature compression (bist.RunAllCompressed): every read the
// controller performs folds into an m-bit signature register that is
// compared against the virtual automaton's prediction after each
// iteration — the paper's §4 observer, aliasing included.  alpha is
// the MISR multiplier (0 selects the field generator).
func BISTRunner(s prt.Scheme, alpha gf.Elem) Runner {
	return bistRunner{s: s, alpha: alpha}
}

func (b bistRunner) Name() string { return b.s.Name + "/bist" }

// ReplaySafe implements ReplaySafe: the controller annotates every
// read as a GF(2)-linear fold into the signature observer and each
// iteration's compare as an observer compare point, so replay
// reproduces the compressed detection — aliased multi-error patterns
// included — bit-exactly.
func (bistRunner) ReplaySafe() {}

func (b bistRunner) Run(mem ram.Memory) (bool, uint64) {
	pass, cycles, err := bist.RunAllCompressed(b.s, mem, b.alpha)
	if err != nil {
		panic(fmt.Sprintf("coverage: bist %s: %v", b.s.Name, err))
	}
	return !pass, cycles
}

type dualPortRunner struct {
	name string
	run  func(mp *ram.MultiPort) (bool, uint64, error)
}

// DualPortRunner adapts a dual-port scheme; the faulty memory is
// wrapped with a two-port front end.
func DualPortRunner(name string, run func(mp *ram.MultiPort) (bool, uint64, error)) Runner {
	return dualPortRunner{name: name, run: run}
}

func (d dualPortRunner) Name() string { return d.name }

func (d dualPortRunner) Run(mem ram.Memory) (bool, uint64) {
	mp := ram.NewMultiPortOn(mem, 2)
	det, cycles, err := d.run(mp)
	if err != nil {
		panic(fmt.Sprintf("coverage: dual-port %s: %v", d.name, err))
	}
	return det, cycles
}
