package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ram"
)

func TestSelfTestCleanMemories(t *testing.T) {
	for _, mem := range []Memory{
		ram.NewBOM(64),
		ram.NewWOM(64, 4),
		ram.NewWOM(100, 8),
		ram.NewWOM(33, 16),
	} {
		pass, err := SelfTest(mem)
		if err != nil {
			t.Fatalf("width %d: %v", mem.Width(), err)
		}
		if !pass {
			t.Errorf("clean memory of width %d failed self-test", mem.Width())
		}
	}
}

func TestSelfTestFaultyMemories(t *testing.T) {
	cases := []struct {
		mem  Memory
		name string
	}{
		{fault.SAF{Cell: 9, Bit: 0, Value: 1}.Inject(ram.NewBOM(64)), "BOM SAF"},
		{fault.SAF{Cell: 9, Bit: 3, Value: 0}.Inject(ram.NewWOM(64, 4)), "WOM SAF"},
		{fault.TF{Cell: 30, Bit: 5, Up: true}.Inject(ram.NewWOM(64, 8)), "WOM TF"},
		{fault.AF{Kind: fault.AFAlias, Addr: 3, Target: 11}.Inject(ram.NewWOM(64, 4)), "WOM AFalias"},
	}
	for _, c := range cases {
		pass, err := SelfTest(c.mem)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if pass {
			t.Errorf("%s: fault escaped the default self-test", c.name)
		}
	}
}

func TestDefaultSchemesShape(t *testing.T) {
	if got := len(DefaultBOMScheme().Iters); got != 3 {
		t.Errorf("BOM scheme iterations = %d", got)
	}
	for _, m := range []int{2, 4, 8, 12} {
		s := DefaultWOMScheme(m)
		if len(s.Iters) != 3 {
			t.Errorf("m=%d: iterations = %d", m, len(s.Iters))
		}
		r, err := s.Run(ram.NewWOM(50, m))
		if err != nil {
			t.Fatalf("m=%d: %v", m, err)
		}
		if r.Detected {
			t.Errorf("m=%d: false positive", m)
		}
	}
}
