package coverage

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fault"
)

// The partition-equivalence property (this PR's acceptance criterion):
// splitting a streaming campaign into k index-range partitions and
// running each as its own session must reproduce the unpartitioned
// run exactly — summed stage tallies, summed per-class results, and
// (via checkpoint.Merge) a byte-identical final checkpoint including
// the cumulative detection bitmap.  Partitioning commutes with
// cross-test dropping because dropping is per-fault: stage s drops
// universe index u iff an earlier stage detected u, which depends on
// u alone, not on which partition simulated it.

// tallySum is the partition-summable slice of a Session: per-stage
// and per-runner detection tallies (execution metadata like
// OpsCleanRun repeats per partition and is excluded).
type tallySum struct {
	StageEntered  []int
	StageDetected []int
	Survivors     []int
	Total         []int
	Detected      []int
	ByClass       []map[fault.Class]ClassStat
	CumTotal      int
	CumDetected   int
}

func sumSessions(parts ...*Session) tallySum {
	first := parts[0]
	s := tallySum{
		StageEntered:  make([]int, len(first.Stages)),
		StageDetected: make([]int, len(first.Stages)),
		Survivors:     make([]int, len(first.Stages)),
		Total:         make([]int, len(first.Results)),
		Detected:      make([]int, len(first.Results)),
		ByClass:       make([]map[fault.Class]ClassStat, len(first.Results)),
	}
	for i := range s.ByClass {
		s.ByClass[i] = map[fault.Class]ClassStat{}
	}
	for _, p := range parts {
		for i, st := range p.Stages {
			s.StageEntered[i] += st.Entered
			s.StageDetected[i] += st.Detected
			s.Survivors[i] += st.Survivors
		}
		for i, r := range p.Results {
			s.Total[i] += r.Total
			s.Detected[i] += r.Detected
			for c, cs := range r.ByClass {
				agg := s.ByClass[i][c]
				agg.Total += cs.Total
				agg.Detected += cs.Detected
				s.ByClass[i][c] = agg
			}
		}
		s.CumTotal += p.Cumulative.Total
		s.CumDetected += p.Cumulative.Detected
	}
	return s
}

func assertTalliesEqual(t *testing.T, label string, want, got tallySum) {
	t.Helper()
	for i := range want.StageEntered {
		if want.StageEntered[i] != got.StageEntered[i] ||
			want.StageDetected[i] != got.StageDetected[i] ||
			want.Survivors[i] != got.Survivors[i] {
			t.Errorf("%s stage %d: %d/%d→%d, want %d/%d→%d", label, i,
				got.StageDetected[i], got.StageEntered[i], got.Survivors[i],
				want.StageDetected[i], want.StageEntered[i], want.Survivors[i])
		}
	}
	for i := range want.Total {
		if want.Total[i] != got.Total[i] || want.Detected[i] != got.Detected[i] {
			t.Errorf("%s runner %d: %d/%d, want %d/%d", label, i,
				got.Detected[i], got.Total[i], want.Detected[i], want.Total[i])
		}
		for c, w := range want.ByClass[i] {
			if g := got.ByClass[i][c]; g != w {
				t.Errorf("%s runner %d class %s: %+v, want %+v", label, i, c, g, w)
			}
		}
		for c := range got.ByClass[i] {
			if _, ok := want.ByClass[i][c]; !ok {
				t.Errorf("%s runner %d: unexpected class %s", label, i, c)
			}
		}
	}
	if want.CumTotal != got.CumTotal || want.CumDetected != got.CumDetected {
		t.Errorf("%s cumulative: %d/%d, want %d/%d", label,
			got.CumDetected, got.CumTotal, want.CumDetected, want.CumTotal)
	}
}

func TestPartitionedMatchesUnpartitioned(t *testing.T) {
	engines := []Engine{EngineOracle, EngineBitParallel, EngineCompiled}
	ks := []int{2, 3, 7}
	chunks := []int{1, 4096}
	families := streamFamilies()
	if testing.Short() {
		engines = engines[1:]
		ks = []int{2, 3}
		chunks = []int{7}
		families = families[:4]
	}
	for _, fam := range families {
		for _, engine := range engines {
			for _, chunk := range chunks {
				mkPlan := func(i, k int) *Plan {
					return &Plan{
						Runners: fam.runners,
						Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
						Chunk:   chunk, Memory: fam.mk,
						Workers: 4, Engine: engine, Drop: true,
						PartitionIndex: i, PartitionCount: k,
					}
				}
				want := sumSessions(mkPlan(0, 0).Run())
				for _, k := range ks {
					label := fmt.Sprintf("%s [%s chunk=%d k=%d]", fam.name, engine, chunk, k)
					parts := make([]*Session, k)
					for i := range parts {
						parts[i] = mkPlan(i+1, k).Run()
					}
					assertTalliesEqual(t, label, want, sumSessions(parts...))
				}
			}
		}
	}
}

// The multi-process contract end to end at the library level: k
// partitioned sessions each writing their own checkpoint, merged with
// checkpoint.Merge, must produce a state byte-identical to the final
// checkpoint of the unpartitioned run — same tallies, same stage
// records, same cumulative detection bitmap words.
func TestPartitionCheckpointsMergeByteIdentical(t *testing.T) {
	families := streamFamilies()
	ks := []int{2, 3, 7}
	if testing.Short() {
		families = families[:3]
		ks = []int{3}
	}
	dir := t.TempDir()
	for fi, fam := range families {
		for _, k := range ks {
			label := fmt.Sprintf("%s k=%d", fam.name, k)
			mkPlan := func(i, n int, path string) *Plan {
				return &Plan{
					Runners: fam.runners,
					Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
					Chunk:   64, Memory: fam.mk,
					Workers: 4, Engine: EngineCompiled, Drop: true,
					PartitionIndex: i, PartitionCount: n,
					Checkpoint: &CheckpointConfig{Path: path, Label: "partition-prop"},
				}
			}
			refPath := filepath.Join(dir, fmt.Sprintf("ref-%d-%d.fckp", fi, k))
			mkPlan(0, 0, refPath).Run()
			ref, err := checkpoint.Load(refPath)
			if err != nil {
				t.Fatalf("%s: load reference: %v", label, err)
			}
			states := make([]*checkpoint.State, k)
			for i := range states {
				p := filepath.Join(dir, fmt.Sprintf("part-%d-%d-%d.fckp", fi, k, i))
				mkPlan(i+1, k, p).Run()
				if states[i], err = checkpoint.Load(p); err != nil {
					t.Fatalf("%s: load partition %d: %v", label, i+1, err)
				}
				lo, hi, part := states[i].PartitionRange()
				wantLo, wantHi := fault.PartitionRange(int(ref.UniverseN), i, k)
				if !part || lo != int64(wantLo) || hi != int64(wantHi) {
					t.Fatalf("%s: partition %d recorded [%d, %d) part=%v, want [%d, %d)",
						label, i+1, lo, hi, part, wantLo, wantHi)
				}
			}
			merged, err := checkpoint.Merge(states)
			if err != nil {
				t.Fatalf("%s: merge: %v", label, err)
			}
			if !bytes.Equal(merged.Encode(), ref.Encode()) {
				t.Errorf("%s: merged checkpoint differs from the unpartitioned run's", label)
			}
		}
	}
}

// Resuming a partition's checkpoint under a different partition spec
// (or none) must be refused before any simulation runs.
func TestPartitionResumeMismatchRefused(t *testing.T) {
	fam := streamFamilies()[0]
	dir := t.TempDir()
	mkPlan := func(i, k int, cp *CheckpointConfig) *Plan {
		return &Plan{
			Runners: fam.runners,
			Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
			Chunk:   64, Memory: fam.mk,
			Workers: 2, Engine: EngineCompiled, Drop: true,
			PartitionIndex: i, PartitionCount: k,
			Checkpoint: cp,
		}
	}
	path := filepath.Join(dir, "p1of2.fckp")
	mkPlan(1, 2, &CheckpointConfig{Path: path}).Run()
	st, err := checkpoint.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mkPlan(1, 2, nil).ValidateResume(st, 0); err != nil {
		t.Errorf("matching partition spec refused: %v", err)
	}
	for _, tc := range []struct{ i, k int }{{0, 0}, {2, 2}, {1, 3}} {
		err := mkPlan(tc.i, tc.k, nil).ValidateResume(st, 0)
		if err == nil || !strings.Contains(err.Error(), "partition") {
			t.Errorf("partition %d/%d resuming a 1/2 checkpoint: err = %v, want a partition mismatch", tc.i, tc.k, err)
		}
	}
}

// The unordered per-worker sink must be invisible in the results: the
// same plan run with SinkOrdered and SinkUnordered produces identical
// Sessions across chunk and worker sweeps, dropping on and off.
func TestUnorderedSinkMatchesOrdered(t *testing.T) {
	families := streamFamilies()
	if testing.Short() {
		families = families[:3]
	}
	for _, fam := range families {
		for _, drop := range []bool{false, true} {
			for _, chunk := range []int{1, 64, 4096} {
				for _, workers := range []int{1, 4} {
					mkPlan := func(mode SinkMode) *Plan {
						return &Plan{
							Runners: fam.runners,
							Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
							Chunk:   chunk, Memory: fam.mk,
							Workers: workers, Engine: EngineCompiled, Drop: drop,
							Sink: mode,
						}
					}
					label := fmt.Sprintf("%s [drop=%v chunk=%d workers=%d]", fam.name, drop, chunk, workers)
					want := mkPlan(SinkOrdered).Run()
					got := mkPlan(SinkUnordered).Run()
					assertSessionsEqual(t, label, want, got)
					for i, st := range got.Stages {
						if st.Stats.Sink != "unordered" {
							t.Errorf("%s stage %d: Stats.Sink = %q, want unordered", label, i, st.Stats.Sink)
						}
						for w, d := range st.Stats.SinkWait {
							if d != 0 {
								t.Errorf("%s stage %d worker %d: unordered sink reported %v sink wait", label, i, w, d)
							}
						}
					}
					for i, st := range want.Stages {
						if st.Stats.Sink != "ordered" {
							t.Errorf("%s stage %d: Stats.Sink = %q, want ordered", label, i, st.Stats.Sink)
						}
					}
				}
			}
		}
	}
}

// SinkAuto picks the unordered path exactly when nothing needs ordered
// delivery: a checkpointed session stays ordered, a plain one does not.
func TestSinkAutoSelection(t *testing.T) {
	fam := streamFamilies()[0]
	mkPlan := func(cp *CheckpointConfig) *Plan {
		return &Plan{
			Runners: fam.runners,
			Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
			Chunk:   64, Memory: fam.mk,
			Workers: 2, Engine: EngineCompiled,
			Checkpoint: cp,
		}
	}
	s := mkPlan(nil).Run()
	if got := s.Stages[0].Stats.Sink; got != "unordered" {
		t.Errorf("plain auto session: Sink = %q, want unordered", got)
	}
	path := filepath.Join(t.TempDir(), "auto.fckp")
	s = mkPlan(&CheckpointConfig{Path: path}).Run()
	if got := s.Stages[0].Stats.Sink; got != "ordered" {
		t.Errorf("checkpointed auto session: Sink = %q, want ordered", got)
	}
}

func expectPanic(t *testing.T, label, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Errorf("%s: no panic, want one mentioning %q", label, want)
			return
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
			t.Errorf("%s: panic %q, want it to mention %q", label, msg, want)
		}
	}()
	f()
}

// Invalid partition and sink combinations must refuse loudly up front
// rather than silently produce wrong results.
func TestPartitionAndSinkMisuse(t *testing.T) {
	fam := streamFamilies()[0]
	base := func() *Plan {
		return &Plan{
			Runners: fam.runners,
			Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
			Chunk:   64, Memory: fam.mk, Workers: 2, Engine: EngineCompiled,
		}
	}
	p := base()
	p.PartitionIndex, p.PartitionCount = 1, 2
	p.KeepVectors = true
	expectPanic(t, "partition+KeepVectors", "KeepVectors", func() { p.Run() })

	p = base()
	p.PartitionIndex, p.PartitionCount = 5, 3
	expectPanic(t, "index out of range", "PartitionIndex", func() { p.Run() })

	p = base()
	p.Sink = SinkUnordered
	p.KeepVectors = true
	expectPanic(t, "unordered+KeepVectors", "verdict vectors", func() { p.Run() })

	p = base()
	p.Sink = SinkUnordered
	p.Checkpoint = &CheckpointConfig{Path: filepath.Join(t.TempDir(), "x.fckp")}
	expectPanic(t, "unordered+checkpoint", "checkpoint", func() { p.Run() })

	expectPanic(t, "ambient index out of range", "index", func() { SetDefaultPartition(4, 3) })
}

// The ambient default partition (the faultcov -partition flag) applies
// to plans that do not set their own partition fields.
func TestAmbientDefaultPartition(t *testing.T) {
	fam := streamFamilies()[0]
	mk := func() *Plan {
		return &Plan{
			Runners: fam.runners,
			Stream:  &fault.Stream{Name: fam.name, Source: fam.src},
			Chunk:   64, Memory: fam.mk, Workers: 2, Engine: EngineCompiled,
		}
	}
	count, _ := fam.src.Count()
	SetDefaultPartition(2, 3)
	defer SetDefaultPartition(0, 0)
	lo, hi := fault.PartitionRange(count, 1, 3)
	s := mk().Run()
	if s.Cumulative.Total != hi-lo {
		t.Errorf("ambient partition 2/3: covered %d faults, want %d", s.Cumulative.Total, hi-lo)
	}
	if got := s.Stages[0].Stats.PartitionIndex; got != 2 {
		t.Errorf("Stats.PartitionIndex = %d, want 2", got)
	}
	// Plan fields win over the ambient default.
	p := mk()
	p.PartitionIndex, p.PartitionCount = 1, 2
	lo, hi = fault.PartitionRange(count, 0, 2)
	if s := p.Run(); s.Cumulative.Total != hi-lo {
		t.Errorf("plan partition 1/2 under ambient 2/3: covered %d faults, want %d", s.Cumulative.Total, hi-lo)
	}
	// Clearing restores full-universe sessions.
	SetDefaultPartition(0, 0)
	if s := mk().Run(); s.Cumulative.Total != count {
		t.Errorf("cleared ambient partition: covered %d faults, want %d", s.Cumulative.Total, count)
	}
}
