package gf

import (
	"testing"
	"testing/quick"

	"repro/internal/gf2"
)

func TestNewFieldPaperExample(t *testing.T) {
	f := NewField(4)
	if f.M() != 4 || f.Size() != 16 || f.Mask() != 0xF {
		t.Fatalf("GF(2^4) basic properties wrong: %v", f)
	}
	if f.Modulus() != gf2.MustParse("1+z+z^4") {
		t.Fatalf("GF(2^4) modulus = %v, want the paper's 1+z+z^4", f.Modulus())
	}
	// In GF(16)/0x13: z^4 = z + 1, so 2*8 = 0x3.
	if got := f.Mul(2, 8); got != 3 {
		t.Errorf("z * z^3 = %#x, want 0x3", uint32(got))
	}
	// 2 * 6 = z*(z^2+z) = z^3+z^2 = 0xC (used in Fig. 1b sequence).
	if got := f.Mul(2, 6); got != 0xC {
		t.Errorf("2*6 = %#x, want 0xC", uint32(got))
	}
}

func TestMulTablesGF16Complete(t *testing.T) {
	// Cross-check the table multiply against shift-add for every pair.
	f := NewField(4)
	for a := Elem(0); a < 16; a++ {
		for b := Elem(0); b < 16; b++ {
			if got, want := f.Mul(a, b), f.MulNoTable(a, b); got != want {
				t.Fatalf("Mul(%x,%x) = %x, want %x", a, b, got, want)
			}
		}
	}
}

func TestTableBoundary(t *testing.T) {
	f16, err := NewFieldPoly(gf2.DefaultModulus(16))
	if err != nil {
		t.Fatal(err)
	}
	if f16.log == nil {
		t.Errorf("m=16 should materialise log/exp tables")
	}
	f17, err := NewFieldPoly(gf2.DefaultModulus(17))
	if err != nil {
		t.Fatal(err)
	}
	if f17.log != nil {
		t.Errorf("m=17 should not materialise tables")
	}
	// Arithmetic must agree across the boundary implementation switch.
	if f16.Mul(0xABCD, 0x1234) != f16.MulNoTable(0xABCD, 0x1234) {
		t.Errorf("m=16 table/no-table mismatch")
	}
}

func TestFieldAboveTableLimit(t *testing.T) {
	f, err := NewFieldPoly(gf2.DefaultModulus(18))
	if err != nil {
		t.Fatal(err)
	}
	if f.log != nil {
		t.Fatalf("m=18 should not materialise tables")
	}
	a, b := Elem(0x2ABCD), Elem(0x31337)
	if got, want := f.Mul(a, b), f.MulNoTable(a, b); got != want {
		t.Errorf("large-field Mul mismatch: %x vs %x", got, want)
	}
	if inv := f.Inv(a); f.Mul(a, inv) != 1 {
		t.Errorf("large-field Inv broken")
	}
}

func TestNewFieldPolyRejectsReducible(t *testing.T) {
	if _, err := NewFieldPoly(0x15); err == nil { // (z^2+z+1)^2
		t.Error("reducible modulus accepted")
	}
	if _, err := NewFieldPoly(0); err == nil {
		t.Error("zero modulus accepted")
	}
	if _, err := NewFieldPoly(1); err == nil {
		t.Error("constant modulus accepted")
	}
}

func TestInvDiv(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8, 12} {
		f := NewField(m)
		for a := Elem(1); a <= f.Mask(); a++ {
			inv := f.Inv(a)
			if f.Mul(a, inv) != 1 {
				t.Fatalf("GF(2^%d): %x * inv = %x, want 1", m, a, f.Mul(a, inv))
			}
			if f.Div(a, a) != 1 {
				t.Fatalf("GF(2^%d): a/a != 1", m)
			}
			if m > 8 && a > 200 {
				break // full scan only for small fields
			}
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	NewField(4).Inv(0)
}

func TestCheckPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul with out-of-range operand did not panic")
		}
	}()
	NewField(4).Mul(0x10, 1)
}

func TestPow(t *testing.T) {
	f := NewField(4)
	if f.Pow(0, 0) != 1 {
		t.Errorf("0^0 != 1")
	}
	if f.Pow(5, 1) != 5 {
		t.Errorf("a^1 != a")
	}
	// Lagrange: a^(2^m-1) = 1 for a != 0.
	for a := Elem(1); a < 16; a++ {
		if f.Pow(a, 15) != 1 {
			t.Errorf("a^15 != 1 for a=%x", a)
		}
	}
	// Repeated squaring consistency.
	if f.Pow(3, 5) != f.Mul(f.Mul(f.Mul(f.Mul(3, 3), 3), 3), 3) {
		t.Errorf("Pow(3,5) inconsistent with iterated Mul")
	}
}

func TestGeneratorAndOrder(t *testing.T) {
	f := NewField(4)
	g := f.Generator()
	if f.Order(g) != 15 {
		t.Errorf("generator order = %d, want 15", f.Order(g))
	}
	// With the primitive default modulus, z (=2) generates.
	if g != 2 {
		t.Errorf("generator = %x, want z (2) for primitive modulus", g)
	}
	// Order of 1 is 1; orders divide 15.
	if f.Order(1) != 1 {
		t.Errorf("Order(1) != 1")
	}
	for a := Elem(1); a < 16; a++ {
		if 15%f.Order(a) != 0 {
			t.Errorf("Order(%x)=%d does not divide 15", a, f.Order(a))
		}
	}
}

func TestNonPrimitiveModulusStillWorks(t *testing.T) {
	// AES field: 0x11B is irreducible but not primitive; z has order 51.
	f, err := NewFieldPoly(0x11B)
	if err != nil {
		t.Fatal(err)
	}
	if f.Order(2) != 51 {
		t.Errorf("AES field: order of z = %d, want 51", f.Order(2))
	}
	if f.Order(f.Generator()) != 255 {
		t.Errorf("AES field generator order = %d, want 255", f.Order(f.Generator()))
	}
	// Known AES arithmetic: {53}*{CA}={01}.
	if f.Mul(0x53, 0xCA) != 0x01 {
		t.Errorf("AES 0x53*0xCA = %x, want 1", f.Mul(0x53, 0xCA))
	}
}

func TestTrace(t *testing.T) {
	f := NewField(4)
	// Trace is GF(2)-linear and not identically zero.
	nonzero := false
	for a := Elem(0); a < 16; a++ {
		ta := f.Trace(a)
		if ta > 1 {
			t.Fatalf("Trace out of GF(2): %x", ta)
		}
		if ta == 1 {
			nonzero = true
		}
		for b := Elem(0); b < 16; b++ {
			if f.Trace(a^b) != f.Trace(a)^f.Trace(b) {
				t.Fatalf("Trace not additive at %x,%x", a, b)
			}
		}
	}
	if !nonzero {
		t.Error("Trace identically zero")
	}
	// Exactly half the elements have trace 1.
	count := 0
	for a := Elem(0); a < 16; a++ {
		count += int(f.Trace(a))
	}
	if count != 8 {
		t.Errorf("trace-1 count = %d, want 8", count)
	}
}

func TestGF2Degenerate(t *testing.T) {
	f := NewField(1)
	if f.Size() != 2 {
		t.Fatalf("GF(2) size = %d", f.Size())
	}
	if f.Mul(1, 1) != 1 || f.Mul(1, 0) != 0 || f.Add(1, 1) != 0 {
		t.Errorf("GF(2) arithmetic broken")
	}
	if f.Inv(1) != 1 {
		t.Errorf("GF(2) Inv(1) != 1")
	}
	if f.Order(1) != 1 {
		t.Errorf("GF(2) Order(1) != 1")
	}
}

func TestFormatElem(t *testing.T) {
	f4 := NewField(4)
	if got := f4.FormatElem(0xF); got != "F" {
		t.Errorf("FormatElem(0xF) = %q", got)
	}
	f8 := NewField(8)
	if got := f8.FormatElem(0x0A); got != "0A" {
		t.Errorf("FormatElem(0x0A) = %q", got)
	}
}

func TestStringer(t *testing.T) {
	if got := NewField(4).String(); got != "GF(2^4) mod 1 + z + z^4" {
		t.Errorf("String() = %q", got)
	}
}

// --- property-based tests ---

func TestQuickFieldAxiomsGF256(t *testing.T) {
	f := NewField(8)
	mask := uint32(f.Mask())
	assoc := func(a, b, c uint32) bool {
		x, y, z := Elem(a&mask), Elem(b&mask), Elem(c&mask)
		return f.Mul(f.Mul(x, y), z) == f.Mul(x, f.Mul(y, z))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error("associativity:", err)
	}
	distrib := func(a, b, c uint32) bool {
		x, y, z := Elem(a&mask), Elem(b&mask), Elem(c&mask)
		return f.Mul(x, f.Add(y, z)) == f.Add(f.Mul(x, y), f.Mul(x, z))
	}
	if err := quick.Check(distrib, nil); err != nil {
		t.Error("distributivity:", err)
	}
	comm := func(a, b uint32) bool {
		x, y := Elem(a&mask), Elem(b&mask)
		return f.Mul(x, y) == f.Mul(y, x)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	invProp := func(a uint32) bool {
		x := Elem(a & mask)
		if x == 0 {
			return true
		}
		return f.Mul(x, f.Inv(x)) == 1
	}
	if err := quick.Check(invProp, nil); err != nil {
		t.Error("inverses:", err)
	}
}

func TestQuickFrobeniusAdditive(t *testing.T) {
	f := NewField(8)
	mask := uint32(f.Mask())
	prop := func(a, b uint32) bool {
		x, y := Elem(a&mask), Elem(b&mask)
		// (x+y)^2 = x^2 + y^2 in characteristic 2
		return f.Mul(x^y, x^y) == f.Mul(x, x)^f.Mul(y, y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
