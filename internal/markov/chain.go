// Package markov implements the absorbing Markov-chain analysis the
// paper's §3 appeals to ("Applying Markov chain analysis it was shown
// that π-test iteration has a high resolution for most memory
// faults"), plus the generic small-matrix machinery it needs.
//
// The model: a fault starts dormant; each π-iteration excites it with
// some probability (determined by the test data background); once
// excited, the resulting error walks the linear automaton to the final
// state and is caught by the signature comparison unless it aliases —
// for a k-stage automaton over GF(2^m) a random nonzero error state
// aliases with probability 2^-(m·k) per iteration.  Detection and
// permanent escape are the absorbing states.
package markov

import (
	"fmt"
	"math"
)

// Chain is a finite Markov chain with named states and row-stochastic
// transition matrix P (P[i][j] = probability i -> j).
type Chain struct {
	States []string
	P      [][]float64
}

// NewChain validates and returns a chain.
func NewChain(states []string, p [][]float64) (*Chain, error) {
	n := len(states)
	if n == 0 || len(p) != n {
		return nil, fmt.Errorf("markov: need %d transition rows, have %d", n, len(p))
	}
	for i, row := range p {
		if len(row) != n {
			return nil, fmt.Errorf("markov: row %d has %d entries", i, len(row))
		}
		sum := 0.0
		for _, v := range row {
			if v < -1e-12 || v > 1+1e-12 {
				return nil, fmt.Errorf("markov: probability %g out of range in row %d", v, i)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			return nil, fmt.Errorf("markov: row %d sums to %g", i, sum)
		}
	}
	return &Chain{States: states, P: p}, nil
}

// MustChain is NewChain but panics on error.
func MustChain(states []string, p [][]float64) *Chain {
	c, err := NewChain(states, p)
	if err != nil {
		panic(err)
	}
	return c
}

// Index returns the index of the named state, or -1.
func (c *Chain) Index(name string) int {
	for i, s := range c.States {
		if s == name {
			return i
		}
	}
	return -1
}

// IsAbsorbing reports whether state i is absorbing (P[i][i] = 1).
func (c *Chain) IsAbsorbing(i int) bool {
	return math.Abs(c.P[i][i]-1) < 1e-12
}

// Step advances a distribution one transition: d' = d·P.
func (c *Chain) Step(d []float64) []float64 {
	n := len(c.States)
	out := make([]float64, n)
	for i, di := range d {
		if di == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			out[j] += di * c.P[i][j]
		}
	}
	return out
}

// Distribution returns the state distribution after t steps starting
// from the given initial distribution.
func (c *Chain) Distribution(init []float64, t int) []float64 {
	d := append([]float64(nil), init...)
	for s := 0; s < t; s++ {
		d = c.Step(d)
	}
	return d
}

// PointMass returns the distribution concentrated on state i.
func (c *Chain) PointMass(i int) []float64 {
	d := make([]float64, len(c.States))
	d[i] = 1
	return d
}

// AbsorptionProbabilities returns, for each transient state i and each
// absorbing state a, the probability of eventually being absorbed in a
// when starting from i: B = N·R with N = (I-Q)^-1 the fundamental
// matrix.  The result maps transientIndex -> absorbingIndex ->
// probability (indices into States).
func (c *Chain) AbsorptionProbabilities() (map[int]map[int]float64, error) {
	var transient, absorbing []int
	for i := range c.States {
		if c.IsAbsorbing(i) {
			absorbing = append(absorbing, i)
		} else {
			transient = append(transient, i)
		}
	}
	if len(absorbing) == 0 {
		return nil, fmt.Errorf("markov: chain has no absorbing states")
	}
	tn := len(transient)
	// Build I-Q over the transient states.
	iq := make([][]float64, tn)
	for a, i := range transient {
		iq[a] = make([]float64, tn)
		for b, j := range transient {
			v := -c.P[i][j]
			if a == b {
				v += 1
			}
			iq[a][b] = v
		}
	}
	ninv, err := invert(iq)
	if err != nil {
		return nil, fmt.Errorf("markov: fundamental matrix: %w", err)
	}
	out := make(map[int]map[int]float64, tn)
	for a, i := range transient {
		out[i] = make(map[int]float64, len(absorbing))
		for _, abs := range absorbing {
			// B[a][abs] = Σ_b N[a][b] * R[b][abs]
			sum := 0.0
			for b, j := range transient {
				sum += ninv[a][b] * c.P[j][abs]
			}
			out[i][abs] = sum
		}
	}
	return out, nil
}

// ExpectedStepsToAbsorption returns, for each transient state, the
// expected number of steps before absorption (t = N·1).
func (c *Chain) ExpectedStepsToAbsorption() (map[int]float64, error) {
	var transient []int
	for i := range c.States {
		if !c.IsAbsorbing(i) {
			transient = append(transient, i)
		}
	}
	tn := len(transient)
	if tn == 0 {
		return map[int]float64{}, nil
	}
	iq := make([][]float64, tn)
	for a, i := range transient {
		iq[a] = make([]float64, tn)
		for b, j := range transient {
			v := -c.P[i][j]
			if a == b {
				v += 1
			}
			iq[a][b] = v
		}
	}
	ninv, err := invert(iq)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, tn)
	for a, i := range transient {
		sum := 0.0
		for b := 0; b < tn; b++ {
			sum += ninv[a][b]
		}
		out[i] = sum
	}
	return out, nil
}

// invert returns the inverse of a small dense matrix via Gauss-Jordan
// elimination with partial pivoting.
func invert(a [][]float64) ([][]float64, error) {
	n := len(a)
	// Augmented [A | I].
	aug := make([][]float64, n)
	for i := range aug {
		aug[i] = make([]float64, 2*n)
		copy(aug[i], a[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(aug[r][col]) > math.Abs(aug[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(aug[pivot][col]) < 1e-14 {
			return nil, fmt.Errorf("singular matrix")
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		inv := 1 / aug[col][col]
		for j := 0; j < 2*n; j++ {
			aug[col][j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for j := 0; j < 2*n; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = append([]float64(nil), aug[i][n:]...)
	}
	return out, nil
}
