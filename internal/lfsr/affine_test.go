package lfsr

import (
	"testing"

	"repro/internal/gf"
)

func TestAffineZeroOffsetMatchesWord(t *testing.T) {
	g := PaperGenPoly()
	a := MustAffine(g, 0, []gf.Elem{0, 1})
	w := MustWord(g, []gf.Elem{0, 1})
	for i := 0; i < 300; i++ {
		if a.Step() != w.Step() {
			t.Fatalf("affine(q=0) diverged from word LFSR at step %d", i)
		}
	}
}

func TestAffineComplementSequence(t *testing.T) {
	// Over GF(2^m), the affine automaton with offset mask and
	// complemented seed generates the bitwise complement sequence.
	g := PaperGenPoly()
	mask := g.Field.Mask()
	plain := MustWord(g, []gf.Elem{1, 0})
	comp := MustAffine(g, mask, []gf.Elem{1 ^ mask, 0 ^ mask})
	ps := plain.Sequence(100)
	cs := comp.Sequence(100)
	for i := range ps {
		if cs[i] != ps[i]^mask {
			t.Fatalf("complement property broken at %d: %x vs %x", i, cs[i], ps[i])
		}
	}
}

func TestAffineComplementGF2(t *testing.T) {
	f := gf.NewField(1)
	g := MustGenPoly(f, []gf.Elem{1, 1, 1})
	plain := MustWord(g, []gf.Elem{1, 0})
	comp := MustAffine(g, 1, []gf.Elem{0, 1})
	ps := plain.Sequence(30)
	cs := comp.Sequence(30)
	for i := range ps {
		if cs[i] != ps[i]^1 {
			t.Fatalf("GF(2) complement broken at %d", i)
		}
	}
}

func TestAffineJumpAheadMatchesStepping(t *testing.T) {
	g := PaperGenPoly()
	for _, q := range []gf.Elem{0, 1, 0xF, 7} {
		for _, n := range []uint64{0, 1, 5, 100, 255, 1000} {
			a := MustAffine(g, q, []gf.Elem{3, 9})
			for i := uint64(0); i < n; i++ {
				a.Step()
			}
			jumped, err := AffineJumpAhead(g, q, []gf.Elem{3, 9}, n)
			if err != nil {
				t.Fatal(err)
			}
			if !equalStates(a.State(), jumped) {
				t.Errorf("q=%x n=%d: jump %v != step %v", q, n, jumped, a.State())
			}
		}
	}
}

func TestAffinePeriod(t *testing.T) {
	g := PaperGenPoly()
	// q=0 from a nonzero state: the plain 255 cycle.
	if got := MustAffine(g, 0, []gf.Elem{0, 1}).Period(0); got != 255 {
		t.Errorf("q=0 period = %d", got)
	}
	// Complement automaton also has period 255 (conjugate orbit).
	mask := g.Field.Mask()
	if got := MustAffine(g, mask, []gf.Elem{0 ^ mask, 1 ^ mask}).Period(0); got != 255 {
		t.Errorf("complement period = %d", got)
	}
}

func TestAffineValidation(t *testing.T) {
	g := PaperGenPoly()
	if _, err := NewAffine(g, 0x10, []gf.Elem{0, 1}); err == nil {
		t.Error("out-of-field offset accepted")
	}
	if _, err := NewAffine(g, 0, []gf.Elem{1}); err == nil {
		t.Error("short seed accepted")
	}
	if _, err := AffineJumpAhead(g, 0, []gf.Elem{1}, 5); err == nil {
		t.Error("short state accepted by jump-ahead")
	}
}

func TestAffineAccessors(t *testing.T) {
	g := PaperGenPoly()
	a := MustAffine(g, 7, []gf.Elem{2, 3})
	if a.K() != 2 || a.Offset() != 7 {
		t.Error("accessors wrong")
	}
	s := a.State()
	s[0] = 9
	if a.State()[0] != 2 {
		t.Error("State aliased internal slice")
	}
	if got := a.Sequence(2); got[0] != 2 || got[1] != 3 {
		t.Errorf("Sequence prefix = %v", got)
	}
}

func TestAffinePeriodCap(t *testing.T) {
	g := PaperGenPoly()
	if got := MustAffine(g, 1, []gf.Elem{0, 1}).Period(3); got != 0 {
		t.Errorf("capped period should return 0, got %d", got)
	}
}
