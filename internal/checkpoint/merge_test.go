package checkpoint

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// partitionState builds the final checkpoint partition [lo, hi) of a
// synthetic 3-stage campaign would write: deterministic per-range
// tallies so merged sums are easy to predict.
func partitionState(lo, hi int64) *State {
	n := hi - lo
	s := &State{
		SpecHash:    Hash("universe", "a", "b", "compiled"),
		Seed:        7,
		Size:        512,
		Width:       2,
		PartitionLo: lo,
		PartitionHi: hi,
		Label:       "faultcov -exp e17 -seed 7",
		UniverseN:   n,
		StageNames:  []string{"MATS+", "March C-"},
		Done: []StageRecord{
			{Runner: "MATS+", RunnerIndex: 0, Entered: n, Detected: n / 2, Survivors: n - n/2,
				ByClass: []ClassTally{{Class: 0, Total: n, Detected: n / 2}}},
			{Runner: "March C-", RunnerIndex: 1, Entered: n - n/2, Detected: n / 4, Survivors: n - n/2 - n/4,
				ByClass: []ClassTally{{Class: 0, Total: n - n/2, Detected: n / 4}}},
		},
		Complete: true,
		Universe: []ClassTally{{Class: 0, Total: n, Detected: n/2 + n/4}},
		Bits:     make([]uint64, (hi+63)/64),
	}
	// Detection is a pure function of the absolute universe index, so
	// the union of partition bitmaps equals the full run's bitmap.
	for i := lo; i < hi; i++ {
		if i%4 != 3 { // 3 of every 4 detected = n/2 + n/4
			s.Bits[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return s
}

func fullState(n int64) *State {
	s := partitionState(0, n)
	s.PartitionLo, s.PartitionHi = 0, -1
	return s
}

func TestMergeReassemblesPartitions(t *testing.T) {
	const n = 300
	parts := []*State{partitionState(0, 100), partitionState(100, 200), partitionState(200, n)}
	// Shuffle the input order: merge must sort by range.
	got, err := Merge([]*State{parts[2], parts[0], parts[1]})
	if err != nil {
		t.Fatal(err)
	}
	if got.UniverseN != n || !got.Complete {
		t.Fatalf("merged UniverseN=%d Complete=%v, want %d true", got.UniverseN, got.Complete, n)
	}
	if _, _, partitioned := got.PartitionRange(); partitioned {
		t.Fatal("merged state still marked as a partition")
	}
	want := fullState(n)
	if !reflect.DeepEqual(got.Done, want.Done) {
		t.Fatalf("merged stage records diverge:\n got %+v\nwant %+v", got.Done, want.Done)
	}
	if !reflect.DeepEqual(got.Universe, want.Universe) {
		t.Fatalf("merged universe tallies diverge: got %+v want %+v", got.Universe, want.Universe)
	}
	if !bytes.Equal(got.Encode(), want.Encode()) {
		t.Fatal("merged state does not encode byte-identical to the single-process state")
	}
}

func TestMergeSingleFullInput(t *testing.T) {
	want := fullState(128)
	got, err := Merge([]*State{want})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), want.Encode()) {
		t.Fatal("merging a single complete run did not reproduce it byte-identically")
	}
}

func TestMergeRefusals(t *testing.T) {
	mk := func() []*State {
		return []*State{partitionState(0, 100), partitionState(100, 200), partitionState(200, 300)}
	}
	cases := []struct {
		name string
		mut  func([]*State) []*State
		want error
	}{
		{"incomplete input", func(s []*State) []*State { s[1].Complete = false; return s }, ErrMergeIncomplete},
		{"spec hash mismatch", func(s []*State) []*State { s[2].SpecHash++; return s }, ErrMergeSpec},
		{"seed mismatch", func(s []*State) []*State { s[1].Seed = 8; return s }, ErrMergeSpec},
		{"geometry mismatch", func(s []*State) []*State { s[0].Size = 256; return s }, ErrMergeSpec},
		{"width mismatch", func(s []*State) []*State { s[0].Width = 4; return s }, ErrMergeSpec},
		{"stage names diverged", func(s []*State) []*State {
			s[1].StageNames = []string{"MATS+", "March B"}
			s[1].Done[1].Runner = "March B"
			return s
		}, ErrMergeStages},
		{"stage order diverged", func(s []*State) []*State {
			s[2].StageNames = []string{"March C-", "MATS+"}
			s[2].Done[0], s[2].Done[1] = s[2].Done[1], s[2].Done[0]
			return s
		}, ErrMergeStages},
		{"runner binding diverged", func(s []*State) []*State { s[1].Done[0].RunnerIndex = 5; return s }, ErrMergeStages},
		{"overlapping ranges", func(s []*State) []*State {
			return []*State{s[0], partitionState(50, 150), s[2]}
		}, ErrMergeOverlap},
		{"duplicate range", func(s []*State) []*State { return []*State{s[0], s[0], s[1], s[2]} }, ErrMergeOverlap},
		{"gap between ranges", func(s []*State) []*State { return []*State{s[0], s[2]} }, ErrMergeGap},
		{"missing leading range", func(s []*State) []*State { return []*State{s[1], s[2]} }, ErrMergeGap},
		{"no inputs", func(s []*State) []*State { return nil }, ErrMergeGap},
		{"universe count disagrees with range", func(s []*State) []*State { s[1].UniverseN = 99; return s }, ErrMergeGap},
	}
	for _, tc := range cases {
		if _, err := Merge(tc.mut(mk())); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

// The corrupted-partition sweep: every single-bit flip of an encoded
// partition checkpoint must be rejected at Decode — a corrupt
// partition can never silently contribute wrong bits to a merge.
func TestPartitionDecodeRejectsCorruption(t *testing.T) {
	b := partitionState(100, 200).Encode()
	if _, err := Decode(b); err != nil {
		t.Fatalf("pristine partition state rejected: %v", err)
	}
	step := 1
	if testing.Short() {
		step = 7
	}
	for i := 0; i < len(b)*8; i += step {
		mut := append([]byte(nil), b...)
		mut[i/8] ^= 1 << (uint(i) % 8)
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	for cut := 0; cut < len(b); cut += step {
		if _, err := Decode(b[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestPartitionRangeRoundTrip(t *testing.T) {
	p := partitionState(100, 200)
	b, err := Decode(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, partitioned := b.PartitionRange()
	if !partitioned || lo != 100 || hi != 200 {
		t.Fatalf("PartitionRange = (%d,%d,%v), want (100,200,true)", lo, hi, partitioned)
	}
	f, err := Decode(fullState(300).Encode())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, partitioned = f.PartitionRange()
	if partitioned || lo != 0 || hi != 300 {
		t.Fatalf("full PartitionRange = (%d,%d,%v), want (0,300,false)", lo, hi, partitioned)
	}
}
