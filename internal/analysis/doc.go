// Package analysis groups the repo's own go/analysis suite: four
// analyzers that turn the documented engine invariants into vet-time
// build failures.  cmd/faultvet bundles them into a unitchecker binary
// that CI (and any developer) runs as
//
//	go build -o faultvet ./cmd/faultvet
//	go vet -vettool=$PWD/faultvet ./...
//
// # Invariants and their analyzers
//
// The engine's performance and reproducibility guarantees are worthless
// if they only hold until the next refactor.  Each analyzer enforces
// one of them:
//
//   - hotpathalloc — code marked //faultsim:hotpath is the compiled
//     replay path, where steady-state batches must allocate nothing
//     (the AllocsPerRun benches enforce this at runtime; the analyzer
//     enforces it at vet time, and on the paths benches don't reach).
//     It flags make/new/append, closures, defers, go statements,
//     composite literals, fmt calls, string conversions, map access,
//     and non-pointer-to-interface boxing.  A justified exception reads
//     //faultsim:alloc-ok <why> on or above the line.
//
//   - deterministic — code marked //faultsim:deterministic feeds the
//     byte-diffed experiment tables: identical inputs must produce
//     identical bytes regardless of worker count, map seed, or clock.
//     It flags map iteration, multi-way selects, time.Now/Since/Until,
//     and the process-seeded global math/rand state (explicitly seeded
//     rand.New(rand.NewSource(seed)) constructions pass).  A justified
//     exception reads //faultsim:ordered <why> — typically "sorted
//     below" or "telemetry only".
//
//   - ctxflow — cancellation plumbing, enforced everywhere with no
//     marker: a context parameter comes first; contexts are not stored
//     in structs or package variables (the audited ambient-default
//     hooks carry //faultsim:ambient <why>); context.Background/TODO
//     stay confined to main packages and tests, and never appear in a
//     function that was already handed a context.
//
//   - syncerr — code marked //faultsim:durable is the checkpoint write
//     path, whose whole point is surviving a crash: discarding the
//     error of (*os.File).Sync, (*os.File).Close, or os.Rename there
//     silently converts "durable" into "probably durable".  There is
//     deliberately no waiver comment — a checked error is always
//     expressible.
//
// # Markers
//
// Scopes are declared where the code lives, not in a config file:
//
//	//faultsim:hotpath        (file scope: in or before the package
//	//faultsim:deterministic   doc comment; func scope: in the doc
//	//faultsim:durable         comment of one declaration)
//
// Suppressions go on the flagged line or the line above and must carry
// a non-empty justification; a bare //faultsim:alloc-ok or
// //faultsim:ordered is itself reported.
//
// # Testing
//
// Each analyzer has analysistest-style fixtures under its testdata/
// directory, run by the offline harness in analyzertest (go/parser +
// go/types with the source importer — no network, no export data).
// The selftest package seeds one violation per analyzer and fails if
// any goes unreported; CI additionally copies that fixture into a
// scratch module and requires the faultvet binary to reject it.
//
// # Adding an analyzer
//
// Create internal/analysis/<name> exporting an *analysis.Analyzer with
// no Requires (the analyzertest harness and unitchecker facts are not
// needed for syntax+types checks), use faultsim.Collect for marker or
// suppression handling, add fixtures plus a seeded violation, and
// register it in cmd/faultvet and the selftest.
package analysis
