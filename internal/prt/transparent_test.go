package prt

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/ram"
)

func TestTransparentPreservesPayload(t *testing.T) {
	n := 64
	mem := ram.NewWOM(n, 4)
	// Fill with a recognisable payload.
	for a := 0; a < n; a++ {
		mem.Write(a, ram.Word(a*3)&0xF)
	}
	want := ram.Snapshot(mem)

	res, err := TransparentRun(PaperWOMScheme3(), mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected || res.RestoreErrors != 0 {
		t.Fatalf("clean transparent run detected: %+v", res)
	}
	got := ram.Snapshot(mem)
	for a := range want {
		if got[a] != want[a] {
			t.Fatalf("payload cell %d changed: %x -> %x", a, want[a], got[a])
		}
	}
}

func TestTransparentDetectsFault(t *testing.T) {
	mem := fault.SAF{Cell: 20, Bit: 1, Value: 1}.Inject(ram.NewWOM(64, 4))
	mem.Write(30, 0x9) // live payload
	res, err := TransparentRun(PaperWOMScheme3(), mem)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("transparent run missed the fault")
	}
}

func TestTransparentRestoreErrorCounts(t *testing.T) {
	// A stuck-at is invisible to the restore check (the snapshot is
	// taken through the same faulty read path).  The constructible
	// restore failure is the in-field scenario: the payload was written
	// while the memory was healthy, a rise-blocking transition fault
	// develops afterwards, and the restoration write itself needs the
	// now-blocked 0→1 transition.
	base := ram.NewWOM(32, 4)
	for a := 0; a < 32; a++ {
		base.Write(a, 0xF) // payload stored pre-fault
	}
	mem := fault.TF{Cell: 3, Bit: 0, Up: true}.Inject(base)
	res, err := TransparentRun(PaperWOMScheme3(), mem)
	if err != nil {
		t.Fatal(err)
	}
	if res.RestoreErrors == 0 {
		t.Error("restore verification missed the blocked payload transition")
	}
	if !res.Detected {
		t.Error("restore errors must imply detection")
	}
}

func TestTransparentSchemeError(t *testing.T) {
	bad := Scheme{Name: "bad", Iters: []Config{{}}}
	if _, err := TransparentRun(bad, ram.NewWOM(16, 4)); err == nil {
		t.Error("invalid scheme accepted")
	}
}
