// Package coverage runs fault-injection campaigns: a test algorithm ×
// a fault universe → per-class detection statistics.  It is the engine
// behind the quantitative experiments (E4, E5, E6, E9, E10) comparing
// pseudo-ring testing with the March baselines.
package coverage

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bist"
	"repro/internal/fault"
	"repro/internal/gf"
	"repro/internal/march"
	"repro/internal/prt"
	"repro/internal/ram"
)

// Runner is a memory test algorithm under evaluation.
type Runner interface {
	// Name labels the algorithm in reports.
	Name() string
	// Run executes the test on mem and reports whether a fault was
	// detected and how many memory operations were spent.
	Run(mem ram.Memory) (detected bool, ops uint64)
}

// ReplaySafe marks runners eligible for the bit-parallel trace-replay
// engine: the operation schedule is deterministic and independent of
// read values, every value-dependent write is annotated as an affine
// function of preceding reads (ram.TraceAnnotator), and detection is
// exactly "some checked read diverges from its fault-free value, or a
// signature observer's accumulator differs from its prediction at an
// annotated compare point".  MISR/BIST compression of read streams is
// replayable via the fold/observe annotations — the observer path
// reproduces aliasing bit-exactly.  Only runners with un-annotated
// adaptive stimuli or detection criteria outside those two forms must
// not implement it; they stay on the per-fault oracle.
type ReplaySafe interface {
	Runner
	// ReplaySafe is a marker method.
	ReplaySafe()
}

// Engine selects the campaign execution strategy.
type Engine int

const (
	// EngineCompiled lowers the recorded trace into a flat instruction
	// program once per campaign and replays it over per-worker arenas
	// with width-specialized kernels and structural fault collapsing —
	// the default, allocation-free fast path.  It falls back to the
	// oracle per-universe when the runner or a fault cannot take it.
	EngineCompiled Engine = iota
	// EngineBitParallel replays the recorded trace over 64-machine
	// batches with the per-batch interpreter (the PR 1 path, kept as a
	// mid-tier reference: it rebuilds the machine array every batch).
	EngineBitParallel
	// EngineOracle re-runs the full algorithm once per injected fault —
	// the reference semantics every optimisation is measured against.
	EngineOracle
)

func (e Engine) String() string {
	switch e {
	case EngineOracle:
		return "oracle"
	case EngineBitParallel:
		return "bitpar"
	default:
		return "compiled"
	}
}

// ParseEngine converts a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "compiled", "arena":
		return EngineCompiled, nil
	case "bitpar", "bit-parallel", "sim":
		return EngineBitParallel, nil
	case "oracle", "reference":
		return EngineOracle, nil
	}
	return 0, fmt.Errorf("coverage: unknown engine %q (want oracle, bitpar or compiled)", s)
}

// defaultEngine is the engine Campaign uses; the compiled path is the
// default fast path and is property-tested to produce results
// byte-identical to the oracle.
var defaultEngine atomic.Int32

// SetDefaultEngine switches the engine used by Campaign (and so by
// every experiment table).
func SetDefaultEngine(e Engine) { defaultEngine.Store(int32(e)) }

// DefaultEngine returns the engine Campaign currently uses.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// defaultWorkers is the worker count used when a campaign is invoked
// with workers <= 0; its own zero value defers to GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers fixes the worker count campaigns use when invoked
// with workers <= 0 (the -workers flag); n <= 0 restores GOMAXPROCS.
func SetDefaultWorkers(n int) { defaultWorkers.Store(int32(n)) }

// DefaultWorkers returns the effective default worker count.
func DefaultWorkers() int {
	if n := int(defaultWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// defaultLaneWords is the lane width (in 64-machine words) campaigns
// compile at when the plan leaves LaneWords unset; its own zero value
// defers to 1 — the classic 64-machine configuration.
var defaultLaneWords atomic.Int32

// SetDefaultLaneWords fixes the lane width campaigns compile at when
// the plan leaves LaneWords unset (the -lanes flag, converted from
// machines to words); w <= 0 restores the single-word default.  w must
// be a width sim.Compile accepts (1, 4 or 8) — prepareStage panics on
// an unsupported width, so CLI callers validate first.
func SetDefaultLaneWords(w int) {
	if w <= 0 {
		w = 1
	}
	defaultLaneWords.Store(int32(w))
}

// DefaultLaneWords returns the effective default lane width in words.
func DefaultLaneWords() int {
	if w := int(defaultLaneWords.Load()); w > 0 {
		return w
	}
	return 1
}

// defaultCtx, when set, is the ambient context campaigns invoked
// through the context-less entry points (Plan.Run, Campaign, Compare,
// the experiment tables) execute under — the CLI installs its
// signal-cancelled context here so SIGINT/SIGTERM reaches every shard
// driver without threading a parameter through each experiment.
//
//faultsim:ambient audited ambient-default hook: installed once by the CLI, read by context-less entry points, cleared by SetDefaultContext(nil)
var defaultCtx atomic.Pointer[context.Context]

// SetDefaultContext installs the ambient campaign context (nil
// restores context.Background()).
func SetDefaultContext(ctx context.Context) {
	if ctx == nil {
		defaultCtx.Store(nil)
		return
	}
	defaultCtx.Store(&ctx)
}

// DefaultContext returns the ambient campaign context.
func DefaultContext() context.Context {
	if p := defaultCtx.Load(); p != nil {
		return *p
	}
	//faultsim:ambient the documented fallback when no CLI installed a context; campaigns then run uncancellable by design
	return context.Background()
}

// SinkMode selects the streaming chunk-sink discipline of a Plan.
type SinkMode int

const (
	// SinkAuto picks per session: ordered whenever something needs the
	// serialized, order-capable sink (checkpointing, KeepVectors, a
	// live progress callback), unordered otherwise.
	SinkAuto SinkMode = iota
	// SinkOrdered forces the serialized ChunkSink path.
	SinkOrdered
	// SinkUnordered forces per-worker sinks merged at drain — the
	// lock-free path.  Incompatible with checkpointing and KeepVectors
	// (both need ordered delivery); non-compiled stages (bitpar,
	// oracle — the reference paths) still run ordered.
	SinkUnordered
)

// String implements fmt.Stringer with the /metrics label values.
func (m SinkMode) String() string {
	switch m {
	case SinkOrdered:
		return "ordered"
	case SinkUnordered:
		return "unordered"
	}
	return "auto"
}

// defaultPartition packs the ambient partition spec (index<<32|count)
// of streaming sessions whose plan leaves PartitionCount unset — the
// faultcov -partition flag.  Zero means unpartitioned.
//
//faultsim:ambient audited ambient-default hook: installed once by the CLI, read by streaming sessions, cleared by SetDefaultPartition(0, 0)
var defaultPartition atomic.Uint64

// SetDefaultPartition restricts subsequently executed streaming
// sessions to universe partition index of count (1-based; count <= 0
// clears the restriction).  Materialized sessions are unaffected.
// Panics unless 1 <= index <= count.
func SetDefaultPartition(index, count int) {
	if count <= 0 {
		defaultPartition.Store(0)
		return
	}
	if index < 1 || index > count {
		panic(fmt.Sprintf("coverage: partition index %d outside [1, %d]", index, count))
	}
	defaultPartition.Store(uint64(index)<<32 | uint64(uint32(count)))
}

// DefaultPartition returns the ambient partition spec ((0, 0) when
// unpartitioned).
func DefaultPartition() (index, count int) {
	v := defaultPartition.Load()
	return int(v >> 32), int(uint32(v))
}

// collapseOff disables structural fault collapsing on the compiled
// engine; the zero value means collapsing is on.
var collapseOff atomic.Bool

// SetCollapse toggles structural fault collapsing (the -collapse flag).
// Collapsing is exact — collapsed campaigns are property-tested
// byte-identical to full ones — so it defaults to on.
func SetCollapse(on bool) { collapseOff.Store(!on) }

// CollapseEnabled reports whether the compiled engine collapses.
func CollapseEnabled() bool { return !collapseOff.Load() }

// MemoryFactory builds a fresh fault-free memory for each trial.
type MemoryFactory func() ram.Memory

// ClassStat is the per-fault-class tally.
type ClassStat struct {
	Total    int
	Detected int
}

// Ratio returns the detection ratio (0 when the class is empty).
func (c ClassStat) Ratio() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Total)
}

// Result aggregates one campaign.
type Result struct {
	Runner   string
	Universe string
	Total    int
	Detected int
	ByClass  map[fault.Class]ClassStat
	// OpsCleanRun is the operation count of the algorithm on a
	// fault-free memory (the test length).
	OpsCleanRun uint64
	// FalsePositive is set when the algorithm flags a fault-free
	// memory — a broken configuration.
	FalsePositive bool
	// Interrupted marks a partial result: the campaign's context was
	// cancelled before this stage finished.  Streaming sessions tally
	// only the faults actually simulated (every count carries a true
	// verdict); materialized sessions tally the whole presented view
	// with unsimulated faults reading as undetected, so Detected is a
	// lower bound there.  Either way the counts are well-formed but
	// not the full campaign.
	Interrupted bool
	// Stats describes how the campaign actually executed.  Engine
	// reports the strategy that really ran — when a replay-safe runner
	// records a non-replayable trace or a false-positive clean run, the
	// campaign falls back to the oracle and Stats says so instead of
	// leaving the requested engine's label standing.  It is diagnostic
	// metadata: Result equality is defined over the detection tallies,
	// so the equivalence tests zero it before comparing engines.
	Stats *EngineStats
}

// EngineStats is the campaign's execution report.
type EngineStats struct {
	// Engine is the strategy that actually ran (the oracle on
	// fallback, whatever was requested otherwise).
	Engine Engine
	// Workers is the effective goroutine count work was sharded over,
	// after clamping to the batch (or fault) count — a small universe
	// run by one worker reports 1, not the requested pool size.
	Workers int
	// Reps is the number of faults simulated after collapsing
	// (== Total when collapsing was off or not applicable).
	Reps int
	// ProgramOps and TrimmedOps report the compiled instruction count
	// and how many trailing trace ops the compiler dropped (compiled
	// engine only).
	ProgramOps int
	TrimmedOps int
	// LaneWords is the lane width the stage's program was compiled at
	// (64-machine words per lane; compiled engine only) and FusedOps
	// how many of its instructions are read-check-write super-ops.
	LaneWords int
	FusedOps  int
	// Elapsed is the wall time of the detection phase (the clean-run
	// recording and compilation are not included) and FaultsPerSec the
	// resulting throughput over presented faults.  Both are populated
	// on every path, oracle fallbacks included.
	Elapsed      time.Duration
	FaultsPerSec float64
	// CollapseRatio is Reps per presented fault: 1 with collapsing off
	// or inapplicable, smaller the harder collapsing worked.
	CollapseRatio float64
	// CacheHits/CacheMisses count the stage's program-cache lookups
	// (at most one of each: a stage looks its program up once).
	CacheHits, CacheMisses uint64
	// ArenaReuse/ArenaFresh count the stage's arena-pool checkouts
	// (telemetry registry attached only; zero otherwise).
	ArenaReuse, ArenaFresh uint64
	// KernelTime, SinkWait and SourceWait split each worker's stage
	// time: inside the replay kernel, blocked acquiring the serialized
	// streaming sink, and claiming chunks from the source.
	// Populated when a telemetry.Registry is attached; indexed by
	// worker slot.  SinkWait is the direct measure of streaming-sink
	// contention: if its share of Elapsed grows with the worker count,
	// the serialized sink is the scaling bottleneck.
	KernelTime, SinkWait, SourceWait []time.Duration
	// Sink labels the streaming sink discipline the stage ran under —
	// "ordered" (serialized ChunkSink) or "unordered" (per-worker
	// sinks merged at drain); empty for materialized stages.
	Sink string
	// MergeNanos is the time spent folding the per-worker unordered
	// sinks into the session accumulators after the drivers drained
	// (unordered stages only) — the unordered path's whole
	// serialization cost, paid once per stage instead of once per
	// chunk.
	MergeNanos time.Duration
	// PartitionIndex is the 1-based index of the universe partition
	// this session ran (0 when the session spanned the full universe).
	PartitionIndex int
}

// SinkWaitShares returns each worker's sink-wait time as a fraction of
// the stage's wall time — the per-worker sink-contention report (nil
// when no per-worker telemetry was captured).
func (s *EngineStats) SinkWaitShares() []float64 {
	if s == nil || len(s.SinkWait) == 0 || s.Elapsed <= 0 {
		return nil
	}
	out := make([]float64, len(s.SinkWait))
	for i, d := range s.SinkWait {
		out[i] = float64(d) / float64(s.Elapsed)
	}
	return out
}

// Coverage returns the overall detection ratio.
func (r Result) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Total)
}

// Classes returns the classes present, in canonical order.
//
//faultsim:deterministic
func (r Result) Classes() []fault.Class {
	var out []fault.Class
	for c := range r.ByClass { //faultsim:ordered order-insensitive accumulation; sorted below
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Campaign injects every fault of the universe into a fresh memory and
// runs the algorithm, fanning trials across workers goroutines
// (0 = GOMAXPROCS).  Results are deterministic regardless of the
// worker count and identical for both engines (the bit-parallel path
// is property-tested against the oracle).
func Campaign(r Runner, u fault.Universe, mk MemoryFactory, workers int) Result {
	return CampaignEngine(r, u, mk, workers, DefaultEngine())
}

// CampaignEngine is Campaign with an explicit engine choice.  It is a
// single-stage session: the planner/executor in session.go is the one
// campaign code path, whether one runner or many execute.
func CampaignEngine(r Runner, u fault.Universe, mk MemoryFactory, workers int, engine Engine) Result {
	p := Plan{Runners: []Runner{r}, Universe: u, Memory: mk, Workers: workers, Engine: engine}
	return p.Run().Results[0]
}

// Sum aggregates the detected/total counts over several fault classes.
func Sum(byClass map[fault.Class]ClassStat, classes ...fault.Class) (detected, total int) {
	for _, c := range classes {
		s := byClass[c]
		detected += s.Detected
		total += s.Total
	}
	return detected, total
}

// Compare runs several algorithms over the same universe as one
// campaign session on the default engine, sharing the process-wide
// program cache, and returns the per-runner results in runner order.
// With the default settings every Result is byte-identical to an
// independent Campaign; SetDefaultDrop(true) (the faultcov -drop flag)
// enables cross-test fault dropping, after which each Result covers
// the faults the preceding runners left undetected.
func Compare(runners []Runner, u fault.Universe, mk MemoryFactory, workers int) []Result {
	p := Plan{
		Runners:  runners,
		Universe: u,
		Memory:   mk,
		Workers:  workers,
		Engine:   DefaultEngine(),
		Drop:     DefaultDrop(),
		Cache:    SharedProgramCache(),
	}
	return p.Run().Results
}

// --- runner adapters ---

// schemeTraceKey serialises a PRT scheme's full configuration for the
// program cache.  The display name is deliberately excluded: distinct
// configurations share names (E10's factor grid all run "PRT-3/sig"),
// and identically-configured schemes under different names record the
// same trace.
func schemeTraceKey(b *strings.Builder, s prt.Scheme) {
	for _, c := range s.Iters {
		if c.Gen.Field != nil {
			fmt.Fprintf(b, "g{%v|%v}", c.Gen.Field.Modulus(), c.Gen.Coeffs)
		}
		fmt.Fprintf(b, "s%v q%d t%d p%d r%t v%t cs%t se%v m%d;",
			c.Seed, c.Offset, int(c.Trajectory), c.PermSeed,
			c.Ring, c.Verify, c.CaptureStale, c.StaleExpect, c.MirrorOf)
	}
}

type marchRunner struct {
	test        march.Test
	backgrounds []ram.Word
}

// MarchRunner adapts a March algorithm; backgrounds nil means the
// single all-zero background.
func MarchRunner(t march.Test, backgrounds []ram.Word) Runner {
	if len(backgrounds) == 0 {
		backgrounds = []ram.Word{0}
	}
	return marchRunner{test: t, backgrounds: backgrounds}
}

func (m marchRunner) Name() string { return m.test.Name }

// ReplaySafe implements ReplaySafe: March stimuli are literal and
// every read is compared against its expected background value.
func (marchRunner) ReplaySafe() {}

// TraceKey implements TraceKeyer: the van de Goor notation plus the
// background set fully determines a March test's operation schedule.
func (m marchRunner) TraceKey() string {
	return fmt.Sprintf("march:%s|bg=%v", m.test, m.backgrounds)
}

func (m marchRunner) Run(mem ram.Memory) (bool, uint64) {
	r := march.RunBackgrounds(m.test, mem, m.backgrounds)
	return r.Detected, r.Ops
}

type prtRunner struct{ scheme prt.Scheme }

// PRTRunner adapts a pseudo-ring scheme.
func PRTRunner(s prt.Scheme) Runner { return prtRunner{scheme: s} }

func (p prtRunner) Name() string { return p.scheme.Name }

// ReplaySafe implements ReplaySafe: the π-test's recurrence writes are
// annotated as affine maps of the preceding reads, and all detection
// (signature, stale capture, verify) compares reads against fault-free
// predictions.
func (prtRunner) ReplaySafe() {}

// TraceKey implements TraceKeyer over the scheme's full configuration.
func (p prtRunner) TraceKey() string {
	var b strings.Builder
	b.WriteString("prt:")
	schemeTraceKey(&b, p.scheme)
	return b.String()
}

func (p prtRunner) Run(mem ram.Memory) (bool, uint64) {
	r, err := p.scheme.Run(mem)
	if err != nil {
		panic(fmt.Sprintf("coverage: scheme %s: %v", p.scheme.Name, err))
	}
	return r.Detected, r.Ops
}

type bitSlicedRunner struct {
	name string
	cfgs []prt.BitSlicedConfig
}

// BitSlicedRunner adapts a bit-sliced lane scheme.
func BitSlicedRunner(name string, cfgs []prt.BitSlicedConfig) Runner {
	return bitSlicedRunner{name: name, cfgs: cfgs}
}

func (b bitSlicedRunner) Name() string { return b.name }

// ReplaySafe implements ReplaySafe: the lane recurrences are annotated
// bit-diagonal linear maps and detection compares Fin and read-back
// values against per-lane predictions.
func (bitSlicedRunner) ReplaySafe() {}

// TraceKey implements TraceKeyer over the lane configurations.
func (b bitSlicedRunner) TraceKey() string {
	var sb strings.Builder
	sb.WriteString("bitsliced:")
	for _, c := range b.cfgs {
		if c.Gen.Field != nil {
			fmt.Fprintf(&sb, "g{%v|%v}", c.Gen.Field.Modulus(), c.Gen.Coeffs)
		}
		fmt.Fprintf(&sb, "m%d mode%d ls%d t%d p%d v%t;",
			c.M, int(c.Mode), c.LaneSeedSeed, int(c.Trajectory), c.PermSeed, c.Verify)
	}
	return sb.String()
}

func (b bitSlicedRunner) Run(mem ram.Memory) (bool, uint64) {
	r, err := prt.RunBitSlicedScheme(b.cfgs, mem)
	if err != nil {
		panic(fmt.Sprintf("coverage: bit-sliced %s: %v", b.name, err))
	}
	return r.Detected, r.Ops
}

type bistRunner struct {
	s     prt.Scheme
	alpha gf.Elem
}

// BISTRunner adapts the cycle-stepped on-chip BIST controller with
// MISR signature compression (bist.RunAllCompressed): every read the
// controller performs folds into an m-bit signature register that is
// compared against the virtual automaton's prediction after each
// iteration — the paper's §4 observer, aliasing included.  alpha is
// the MISR multiplier (0 selects the field generator).
func BISTRunner(s prt.Scheme, alpha gf.Elem) Runner {
	return bistRunner{s: s, alpha: alpha}
}

func (b bistRunner) Name() string { return b.s.Name + "/bist" }

// ReplaySafe implements ReplaySafe: the controller annotates every
// read as a GF(2)-linear fold into the signature observer and each
// iteration's compare as an observer compare point, so replay
// reproduces the compressed detection — aliased multi-error patterns
// included — bit-exactly.
func (bistRunner) ReplaySafe() {}

// TraceKey implements TraceKeyer over the scheme and MISR multiplier.
func (b bistRunner) TraceKey() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bist:a%d:", b.alpha)
	schemeTraceKey(&sb, b.s)
	return sb.String()
}

func (b bistRunner) Run(mem ram.Memory) (bool, uint64) {
	pass, cycles, err := bist.RunAllCompressed(b.s, mem, b.alpha)
	if err != nil {
		panic(fmt.Sprintf("coverage: bist %s: %v", b.s.Name, err))
	}
	return !pass, cycles
}

type dualPortRunner struct {
	name string
	run  func(mp *ram.MultiPort) (bool, uint64, error)
}

// DualPortRunner adapts a dual-port scheme; the faulty memory is
// wrapped with a two-port front end.
func DualPortRunner(name string, run func(mp *ram.MultiPort) (bool, uint64, error)) Runner {
	return dualPortRunner{name: name, run: run}
}

func (d dualPortRunner) Name() string { return d.name }

func (d dualPortRunner) Run(mem ram.Memory) (bool, uint64) {
	mp := ram.NewMultiPortOn(mem, 2)
	det, cycles, err := d.run(mp)
	if err != nil {
		panic(fmt.Sprintf("coverage: dual-port %s: %v", d.name, err))
	}
	return det, cycles
}
