// Coupling-fault universes, including the exhaustive pair-CF
// generators: enumeration order is part of the checkpoint contract.
//
//faultsim:deterministic

package fault

import (
	"fmt"

	"repro/internal/ram"
)

// CFin is an inversion coupling fault: an Up (0→1) or Down (1→0)
// transition of the aggressor bit inverts the victim bit.  Aggressor
// and victim may live in different cells (inter-word) or in the same
// cell with different bit positions (intra-word — report Class IWCF).
type CFin struct {
	AggCell, AggBit int
	VicCell, VicBit int
	Up              bool
}

// Class implements Fault.
func (f CFin) Class() Class {
	if f.AggCell == f.VicCell {
		return ClassIWCF
	}
	return ClassCFin
}

func (f CFin) String() string {
	return fmt.Sprintf("CFin<%s>@c%d.b%d->c%d.b%d", arrow(f.Up), f.AggCell, f.AggBit, f.VicCell, f.VicBit)
}

// Inject implements Fault.
func (f CFin) Inject(base ram.Memory) ram.Memory {
	return &cfinMem{Memory: base, f: f}
}

type cfinMem struct {
	ram.Memory
	f CFin
}

func (m *cfinMem) Write(addr int, v ram.Word) {
	if addr != m.f.AggCell {
		m.Memory.Write(addr, v)
		return
	}
	old := m.Memory.Read(addr)
	trig := triggered(bit(old, m.f.AggBit), bit(v, m.f.AggBit), m.f.Up)
	if m.f.VicCell == addr {
		// Intra-word: the coupling disturbs the value being latched.
		if trig {
			v = setBit(v, m.f.VicBit, 1^bit(v, m.f.VicBit))
		}
		m.Memory.Write(addr, v)
		return
	}
	m.Memory.Write(addr, v)
	if trig {
		w := m.Memory.Read(m.f.VicCell)
		m.Memory.Write(m.f.VicCell, setBit(w, m.f.VicBit, 1^bit(w, m.f.VicBit)))
	}
}

// CFid is an idempotent coupling fault: an Up or Down transition of the
// aggressor bit forces the victim bit to Value.
type CFid struct {
	AggCell, AggBit int
	VicCell, VicBit int
	Up              bool
	Value           ram.Word
}

// Class implements Fault.
func (f CFid) Class() Class {
	if f.AggCell == f.VicCell {
		return ClassIWCF
	}
	return ClassCFid
}

func (f CFid) String() string {
	return fmt.Sprintf("CFid<%s;%d>@c%d.b%d->c%d.b%d",
		arrow(f.Up), f.Value&1, f.AggCell, f.AggBit, f.VicCell, f.VicBit)
}

// Inject implements Fault.
func (f CFid) Inject(base ram.Memory) ram.Memory {
	return &cfidMem{Memory: base, f: f}
}

type cfidMem struct {
	ram.Memory
	f CFid
}

func (m *cfidMem) Write(addr int, v ram.Word) {
	if addr != m.f.AggCell {
		m.Memory.Write(addr, v)
		return
	}
	old := m.Memory.Read(addr)
	trig := triggered(bit(old, m.f.AggBit), bit(v, m.f.AggBit), m.f.Up)
	if m.f.VicCell == addr {
		if trig {
			v = setBit(v, m.f.VicBit, m.f.Value)
		}
		m.Memory.Write(addr, v)
		return
	}
	m.Memory.Write(addr, v)
	if trig {
		w := m.Memory.Read(m.f.VicCell)
		m.Memory.Write(m.f.VicCell, setBit(w, m.f.VicBit, m.f.Value))
	}
}

// CFst is a state coupling fault: the victim bit is forced to Value
// whenever the aggressor bit holds AggValue.  Modelled at read time
// (the forcing is level-sensitive, not event-sensitive).
type CFst struct {
	AggCell, AggBit int
	VicCell, VicBit int
	AggValue        ram.Word
	Value           ram.Word
}

// Class implements Fault.
func (f CFst) Class() Class {
	if f.AggCell == f.VicCell {
		return ClassIWCF
	}
	return ClassCFst
}

func (f CFst) String() string {
	return fmt.Sprintf("CFst<%d;%d>@c%d.b%d->c%d.b%d",
		f.AggValue&1, f.Value&1, f.AggCell, f.AggBit, f.VicCell, f.VicBit)
}

// Inject implements Fault.
func (f CFst) Inject(base ram.Memory) ram.Memory {
	return &cfstMem{Memory: base, f: f}
}

type cfstMem struct {
	ram.Memory
	f CFst
}

func (m *cfstMem) Read(addr int) ram.Word {
	v := m.Memory.Read(addr)
	if addr == m.f.VicCell {
		var agg ram.Word
		if m.f.AggCell == addr {
			agg = bit(v, m.f.AggBit)
		} else {
			agg = bit(m.Memory.Read(m.f.AggCell), m.f.AggBit)
		}
		if agg == m.f.AggValue&1 {
			v = setBit(v, m.f.VicBit, m.f.Value)
		}
	}
	return v
}

// BF is a bridging fault: bits (CellA,BitA) and (CellB,BitB) are
// resistively shorted.  Reads of either bit sense the wired-AND
// (And=true) or wired-OR of the two stored values.
type BF struct {
	CellA, BitA int
	CellB, BitB int
	And         bool
}

// Class implements Fault.
func (f BF) Class() Class { return ClassBF }

func (f BF) String() string {
	op := "OR"
	if f.And {
		op = "AND"
	}
	return fmt.Sprintf("BF%s@c%d.b%d~c%d.b%d", op, f.CellA, f.BitA, f.CellB, f.BitB)
}

// Inject implements Fault.
func (f BF) Inject(base ram.Memory) ram.Memory {
	return &bfMem{Memory: base, f: f}
}

type bfMem struct {
	ram.Memory
	f BF
}

func (m *bfMem) Read(addr int) ram.Word {
	v := m.Memory.Read(addr)
	if addr != m.f.CellA && addr != m.f.CellB {
		return v
	}
	a := bit(m.Memory.Read(m.f.CellA), m.f.BitA)
	b := bit(m.Memory.Read(m.f.CellB), m.f.BitB)
	var wired ram.Word
	if m.f.And {
		wired = a & b
	} else {
		wired = a | b
	}
	if addr == m.f.CellA {
		v = setBit(v, m.f.BitA, wired)
	}
	if addr == m.f.CellB {
		v = setBit(v, m.f.BitB, wired)
	}
	return v
}

// triggered reports whether an old→new bit pair is the watched
// transition.
func triggered(old, new ram.Word, up bool) bool {
	if up {
		return old == 0 && new == 1
	}
	return old == 1 && new == 0
}

func arrow(up bool) string {
	if up {
		return "up"
	}
	return "down"
}
