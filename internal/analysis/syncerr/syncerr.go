// Package syncerr defines an analyzer for the checkpoint/durable write
// path: in code marked //faultsim:durable, the error results of
// (*os.File).Sync, (*os.File).Close and os.Rename must be checked.  A
// dropped fsync or rename error silently forfeits the crash-safety the
// checkpoint format exists to provide — the caller believes a cut is
// durable when the kernel may still lose it.
package syncerr

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/faultsim"
)

const doc = `require checked errors from Sync/Close/Rename in //faultsim:durable code

In a function marked //faultsim:durable (or any function of a file
whose header carries the marker), a call to (*os.File).Sync,
(*os.File).Close or os.Rename whose error result is discarded — used
as a bare statement, deferred, launched in a goroutine, or assigned
only to the blank identifier — is reported.  Handle the error or
deliberately propagate it; there is no waiver comment for this
analyzer, because a checked error is always expressible.`

// Analyzer is the syncerr analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "syncerr",
	Doc:  doc,
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	info := faultsim.Collect(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !info.FuncMarked(f, fn, faultsim.Durable) {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil, nil
}

// checkFunc reports durable-path calls whose error result is
// discarded.  Discarding is recognized structurally from the statement
// forms that can drop a result; any other use (assignment to a named
// variable, an if-init, a return, an argument) counts as checked.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				report(pass, call, "discarded")
			}
		case *ast.DeferStmt:
			report(pass, n.Call, "discarded by defer")
		case *ast.GoStmt:
			report(pass, n.Call, "discarded by go")
		case *ast.AssignStmt:
			checkAssign(pass, n)
		}
		return true
	})
}

// checkAssign flags a durable call whose error result lands only in
// blank identifiers.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Multi-value form: err is the last result; single call on the rhs.
	if len(as.Rhs) == 1 {
		if call, ok := as.Rhs[0].(*ast.CallExpr); ok && isDurableCall(pass, call) != "" {
			if isBlank(as.Lhs[len(as.Lhs)-1]) {
				report(pass, call, "assigned to _")
			}
			return
		}
	}
	for i, rhs := range as.Rhs {
		if call, ok := rhs.(*ast.CallExpr); ok && i < len(as.Lhs) && isBlank(as.Lhs[i]) {
			report(pass, call, "assigned to _")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	if name := isDurableCall(pass, call); name != "" {
		pass.Reportf(call.Pos(), "syncerr: error result of %s is %s on the durable write path", name, how)
	}
}

// isDurableCall returns a display name when the call is one of the
// durable-path operations whose error is load-bearing.
func isDurableCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if !isOSFile(recv.Type()) {
			return ""
		}
		switch fn.Name() {
		case "Sync":
			return "(*os.File).Sync"
		case "Close":
			return "(*os.File).Close"
		}
		return ""
	}
	if fn.Pkg().Path() == "os" && fn.Name() == "Rename" {
		return "os.Rename"
	}
	return ""
}

func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
