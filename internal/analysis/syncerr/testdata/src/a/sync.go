// Durable write path fixture: the file header marks every function.
//
//faultsim:durable

package a

import (
	"fmt"
	"os"
)

// writeBad drops every durable error the statement grammar allows.
func writeBad(f *os.File, from, to string) {
	f.Sync()            // want `syncerr: error result of \(\*os.File\).Sync is discarded on the durable write path`
	_ = f.Sync()        // want `syncerr: error result of \(\*os.File\).Sync is assigned to _ on the durable write path`
	defer f.Close()     // want `syncerr: error result of \(\*os.File\).Close is discarded by defer on the durable write path`
	os.Rename(from, to) // want `syncerr: error result of os.Rename is discarded on the durable write path`
	go f.Sync()         // want `syncerr: error result of \(\*os.File\).Sync is discarded by go on the durable write path`
}

// writeGood checks or propagates every durable error.
func writeGood(f *os.File, from, to string) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	cerr := f.Close()
	if err := os.Rename(from, to); err != nil {
		return err
	}
	return cerr
}

// nonDurableCalls are out of the analyzer's vocabulary even in scope:
// only Sync, Close and Rename carry the durability contract.
func nonDurableCalls(f *os.File, b []byte) {
	f.Write(b)
	os.Remove(f.Name())
}
