package sim

import (
	"fmt"

	"repro/internal/ram"
)

// Linear describes a write as a GF(2)-affine function of earlier
// reads; see ram.TraceAnnotator for the exact bit semantics.
type Linear struct {
	// Back[j] is the 1-based distance to source read j (1 = the read
	// immediately preceding the write).
	Back []int
	// Rows[j][r] is the bitmask of source-read bits feeding bit r.
	Rows [][]uint32
	// Offset is the affine constant.
	Offset ram.Word
}

// Op is one recorded memory operation (ram.OpRead or ram.OpWrite).
type Op struct {
	Kind ram.OpKind
	Addr int
	// Data is the written value for OpWrite and the fault-free sensed
	// value for OpRead.
	Data ram.Word
	// Checked marks a read the algorithm compares against its
	// fault-free expected value.
	Checked bool
	// Lin, when non-nil, overrides Data with an affine recomputation
	// from the replaying machine's own earlier reads.
	Lin *Linear
}

// Trace is the deterministic operation stream of one clean run of a
// test algorithm, ready for bit-parallel replay.
type Trace struct {
	Size  int
	Width int
	// Init is the memory contents before the run.
	Init []ram.Word
	Ops  []Op
	// Checked counts checked reads — a trace with none would declare
	// every fault undetected, which almost always means the executor
	// does not annotate; Replayable reports on it.
	Checked int
	// MaxBack is the largest Linear.Back distance, sizing the replay's
	// read-history ring.
	MaxBack int
}

// Replayable reports whether the trace carries the annotations replay
// correctness depends on (at least one checked read).
func (t *Trace) Replayable() bool { return t.Checked > 0 }

// Recorder is an instrumented ram.Memory: it forwards every operation
// to a fault-free backing memory and appends it to the trace.  It
// implements ram.TraceAnnotator, so annotation-aware executors mark
// checked reads and linear writes as they run.
type Recorder struct {
	mem ram.Memory
	tr  Trace
}

// NewRecorder wraps a fresh fault-free memory.
func NewRecorder(mem ram.Memory) *Recorder {
	return &Recorder{
		mem: mem,
		tr: Trace{
			Size:  mem.Size(),
			Width: mem.Width(),
			Init:  ram.Snapshot(mem),
		},
	}
}

// Read implements ram.Memory.
func (r *Recorder) Read(addr int) ram.Word {
	v := r.mem.Read(addr)
	r.tr.Ops = append(r.tr.Ops, Op{Kind: ram.OpRead, Addr: addr, Data: v})
	return v
}

// Write implements ram.Memory.
func (r *Recorder) Write(addr int, v ram.Word) {
	r.mem.Write(addr, v)
	r.tr.Ops = append(r.tr.Ops, Op{Kind: ram.OpWrite, Addr: addr, Data: v})
}

// Size implements ram.Memory.
func (r *Recorder) Size() int { return r.mem.Size() }

// Width implements ram.Memory.
func (r *Recorder) Width() int { return r.mem.Width() }

// AnnotateChecked implements ram.TraceAnnotator.
func (r *Recorder) AnnotateChecked() {
	last := len(r.tr.Ops) - 1
	if last < 0 || r.tr.Ops[last].Kind != ram.OpRead {
		panic("sim: AnnotateChecked without a preceding read")
	}
	if !r.tr.Ops[last].Checked {
		r.tr.Ops[last].Checked = true
		r.tr.Checked++
	}
}

// AnnotateLinear implements ram.TraceAnnotator.
func (r *Recorder) AnnotateLinear(back []int, rows [][]uint32, offset ram.Word) {
	last := len(r.tr.Ops) - 1
	if last < 0 || r.tr.Ops[last].Kind != ram.OpWrite {
		panic("sim: AnnotateLinear without a preceding write")
	}
	if len(back) != len(rows) {
		panic(fmt.Sprintf("sim: %d back distances for %d row sets", len(back), len(rows)))
	}
	lin := &Linear{
		Back:   append([]int(nil), back...),
		Rows:   make([][]uint32, len(rows)),
		Offset: offset,
	}
	for j, rw := range rows {
		lin.Rows[j] = append([]uint32(nil), rw...)
	}
	for _, b := range back {
		if b < 1 {
			panic(fmt.Sprintf("sim: linear back distance %d must be >= 1", b))
		}
		if b > r.tr.MaxBack {
			r.tr.MaxBack = b
		}
	}
	r.tr.Ops[last].Lin = lin
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *Trace { return &r.tr }

// Record runs the test once on an instrumented clean memory and
// returns the trace plus the clean run's outcome (detected on a
// fault-free memory means a broken configuration — a campaign must
// fall back to the oracle in that case, because checked-read
// comparison against clean values no longer matches the algorithm's
// own expectations).
func Record(mem ram.Memory, run func(ram.Memory) (bool, uint64)) (*Trace, bool, uint64) {
	rec := NewRecorder(mem)
	detected, ops := run(rec)
	return rec.Trace(), detected, ops
}
