package lfsr

import (
	"testing"

	"repro/internal/gf2"
)

func TestBitFibonacciMaxPeriod(t *testing.T) {
	for _, k := range []int{2, 3, 4, 5, 7, 8} {
		p := gf2.FirstPrimitive(k)
		b := MustBit(p, Fibonacci, 1)
		want := uint64(1)<<uint(k) - 1
		if got := b.Period(); got != want {
			t.Errorf("degree %d primitive %v: period %d, want %d", k, p, got, want)
		}
		if b.MaxPeriod() != want {
			t.Errorf("MaxPeriod wrong for k=%d", k)
		}
	}
}

func TestBitGaloisMaxPeriod(t *testing.T) {
	for _, k := range []int{2, 3, 4, 8} {
		p := gf2.FirstPrimitive(k)
		b := MustBit(p, Galois, 1)
		want := uint64(1)<<uint(k) - 1
		if got := b.Period(); got != want {
			t.Errorf("Galois degree %d: period %d, want %d", k, got, want)
		}
	}
}

func TestBitPeriodMatchesPolynomialOrder(t *testing.T) {
	// For irreducible non-primitive polynomials the LFSR period equals
	// the order of x mod p. 0x11B (AES) has order 51.
	b := MustBit(0x11B, Fibonacci, 1)
	if got := b.Period(); got != 51 {
		t.Errorf("period = %d, want 51", got)
	}
	if got := gf2.Order(0x11B); got != 51 {
		t.Errorf("cross-check order = %d", got)
	}
}

func TestBitZeroStateFixed(t *testing.T) {
	for _, form := range []Form{Fibonacci, Galois} {
		b := MustBit(0x13, form, 0)
		b.Step()
		if b.State() != 0 {
			t.Errorf("%v: zero state not fixed", form)
		}
		if b.Period() != 1 {
			t.Errorf("%v: zero state period != 1", form)
		}
	}
}

func TestBitKnownSequence(t *testing.T) {
	// x^2+x+1, seed 0b01: recurrence s_{t+2}=s_{t+1}+s_t -> output 1,0,1,1,0,1,...
	b := MustBit(0x7, Fibonacci, 0b01)
	out := b.Output(6)
	want := []byte{1, 0, 1, 1, 0, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("output = %v, want %v", out, want)
		}
	}
}

func TestBitRunAndSeed(t *testing.T) {
	b := MustBit(0x13, Fibonacci, 0b1011)
	s0 := b.State()
	b.Run(15) // full period for primitive degree 4
	if b.State() != s0 {
		t.Errorf("state after full period differs: %x vs %x", b.State(), s0)
	}
	b.Seed(0xFFFF)
	if b.State() != 0xF {
		t.Errorf("Seed not masked to k bits: %x", b.State())
	}
	if b.K() != 4 || b.Poly() != 0x13 {
		t.Errorf("accessors wrong")
	}
}

func TestBitFormsSameCycleStructure(t *testing.T) {
	// Fibonacci and Galois realisations of the same polynomial have the
	// same cycle-length multiset; for primitive p both are maximal.
	p := gf2.Poly(0x19)
	fib := MustBit(p, Fibonacci, 5)
	gal := MustBit(p, Galois, 5)
	if fib.Period() != gal.Period() {
		t.Errorf("form periods differ: %d vs %d", fib.Period(), gal.Period())
	}
}

func TestNewBitErrors(t *testing.T) {
	if _, err := NewBit(0, Fibonacci, 1); err == nil {
		t.Error("zero polynomial accepted")
	}
	if _, err := NewBit(1, Fibonacci, 1); err == nil {
		t.Error("constant polynomial accepted")
	}
	if _, err := NewBit(0x6, Fibonacci, 1); err == nil {
		t.Error("polynomial with zero constant term accepted (singular)")
	}
	if _, err := NewBit(0x13, Form(9), 1); err == nil {
		t.Error("bad form accepted")
	}
}

func TestMustBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBit did not panic on bad input")
		}
	}()
	MustBit(0, Fibonacci, 1)
}

func TestFormString(t *testing.T) {
	if Fibonacci.String() != "Fibonacci" || Galois.String() != "Galois" {
		t.Error("Form.String wrong")
	}
	if Form(9).String() == "" {
		t.Error("unknown form should still format")
	}
}

func TestParity64(t *testing.T) {
	cases := map[uint64]uint64{0: 0, 1: 1, 3: 0, 7: 1, 0xFF: 0, 1 << 63: 1, ^uint64(0): 0}
	for v, want := range cases {
		if got := parity64(v); got != want {
			t.Errorf("parity64(%#x) = %d, want %d", v, got, want)
		}
	}
}
