package ram

import "testing"

func TestDualPortSimultaneousReadWrite(t *testing.T) {
	dp := NewDualPort(8, 4)
	dp.Backing().Write(1, 0x9)
	// Port A reads cell 1 while port B writes it: the read must observe
	// the pre-cycle value (read-before-write cycle semantics).
	out := dp.Cycle([]PortOp{ReadOp(1), WriteOp(1, 0x3)})
	if out[0] != 0x9 {
		t.Errorf("simultaneous read saw %x, want pre-cycle 0x9", out[0])
	}
	if dp.Backing().Read(1) != 0x3 {
		t.Errorf("write did not commit")
	}
	if dp.Cycles != 1 {
		t.Errorf("cycle count = %d", dp.Cycles)
	}
}

func TestDualPortWriteConflict(t *testing.T) {
	dp := NewDualPort(8, 4)
	dp.Cycle([]PortOp{WriteOp(2, 0x5), WriteOp(2, 0xA)})
	if dp.Backing().Read(2) != 0x5 {
		t.Errorf("lowest port should win conflicts, got %x", dp.Backing().Read(2))
	}
	if dp.WriteConflicts != 1 {
		t.Errorf("conflict count = %d", dp.WriteConflicts)
	}
	// Writes to distinct cells do not conflict.
	dp.Cycle([]PortOp{WriteOp(3, 1), WriteOp(4, 2)})
	if dp.WriteConflicts != 1 {
		t.Errorf("false conflict recorded")
	}
}

func TestDualPortDoubleRead(t *testing.T) {
	dp := NewDualPort(8, 4)
	dp.Backing().Write(5, 0x7)
	dp.Backing().Write(6, 0x2)
	out := dp.Cycle([]PortOp{ReadOp(5), ReadOp(6)})
	if out[0] != 0x7 || out[1] != 0x2 {
		t.Errorf("double read = %v", out)
	}
	if dp.PortReads[0] != 1 || dp.PortReads[1] != 1 {
		t.Errorf("per-port read counters wrong: %v", dp.PortReads)
	}
}

func TestPortViewConsumesCycles(t *testing.T) {
	dp := NewDualPort(8, 4)
	a := dp.Port(0)
	a.Write(0, 1)
	_ = a.Read(0)
	if dp.Cycles != 2 {
		t.Errorf("port view should consume one cycle per op, got %d", dp.Cycles)
	}
	if a.Size() != 8 || a.Width() != 4 {
		t.Errorf("port view geometry wrong")
	}
}

func TestPortViewIsMemory(t *testing.T) {
	var _ Memory = NewDualPort(8, 4).Port(0)
	var _ Memory = NewWOM(4, 4)
	var _ Memory = NewBOM(4)
	var _ Memory = NewStats(NewWOM(4, 4))
	var _ Memory = NewTrace(NewWOM(4, 4), 0)
}

func TestQuadPort(t *testing.T) {
	qp := NewQuadPort(16, 8)
	if qp.Ports() != 4 {
		t.Fatalf("quad port has %d ports", qp.Ports())
	}
	qp.Backing().Write(0, 0xAA)
	out := qp.Cycle([]PortOp{ReadOp(0), WriteOp(1, 0x11), ReadOp(0), Idle()})
	if out[0] != 0xAA || out[2] != 0xAA {
		t.Errorf("quad reads wrong: %v", out)
	}
	if qp.Backing().Read(1) != 0x11 {
		t.Errorf("quad write missing")
	}
}

func TestMultiPortValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewMultiPort(8, 4, 0) },
		func() { NewMultiPort(8, 4, 9) },
		func() { NewDualPort(8, 4).Cycle([]PortOp{Idle()}) },
		func() { NewDualPort(8, 4).Port(2) },
		func() { NewDualPort(8, 4).Port(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid multiport use did not panic")
				}
			}()
			f()
		}()
	}
}

func TestPortOpKindString(t *testing.T) {
	if PortIdle.String() != "idle" || PortRead.String() != "read" || PortWrite.String() != "write" {
		t.Error("PortOpKind strings wrong")
	}
	if PortOpKind(7).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestOpKindString(t *testing.T) {
	if OpRead.String() != "r" || OpWrite.String() != "w" {
		t.Error("OpKind strings wrong")
	}
}

func TestMultiPortIdleCycle(t *testing.T) {
	dp := NewDualPort(8, 4)
	before := Snapshot(dp.Backing())
	dp.Cycle([]PortOp{Idle(), Idle()})
	after := Snapshot(dp.Backing())
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("idle cycle changed memory")
		}
	}
	if dp.Cycles != 1 {
		t.Errorf("idle cycle not counted")
	}
}
