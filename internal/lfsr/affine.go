package lfsr

import (
	"fmt"

	"repro/internal/gf"
)

// Affine is an affine automaton over GF(2^m): a word LFSR whose
// recurrence adds a constant offset,
//
//	u_t = a₁·u_{t-1} ⊕ … ⊕ a_k·u_{t-k} ⊕ q .
//
// With q = 2^m - 1 (all ones) and the complemented seed, the generated
// sequence is the bitwise complement of the plain LFSR sequence — the
// mechanism pseudo-ring testing uses to build a complementary test
// data background (the paper's "specific TDB") out of one extra XOR
// layer of hardware.
type Affine struct {
	gen    GenPoly
	offset gf.Elem
	state  []gf.Elem
}

// NewAffine returns an affine automaton with the given generator,
// offset q and initial window (oldest first).
func NewAffine(g GenPoly, offset gf.Elem, init []gf.Elem) (*Affine, error) {
	if !g.Field.Contains(offset) {
		return nil, fmt.Errorf("lfsr: offset %#x outside field", uint32(offset))
	}
	w, err := NewWord(g, init)
	if err != nil {
		return nil, err
	}
	return &Affine{gen: g, offset: offset, state: w.State()}, nil
}

// MustAffine is NewAffine but panics on error.
func MustAffine(g GenPoly, offset gf.Elem, init []gf.Elem) *Affine {
	a, err := NewAffine(g, offset, init)
	if err != nil {
		panic(err)
	}
	return a
}

// K returns the register length.
func (a *Affine) K() int { return a.gen.K() }

// Offset returns the additive constant q.
func (a *Affine) Offset() gf.Elem { return a.offset }

// State returns a copy of the state window (oldest first).
func (a *Affine) State() []gf.Elem {
	out := make([]gf.Elem, len(a.state))
	copy(out, a.state)
	return out
}

// Step advances one clock and returns the value shifted in.
func (a *Affine) Step() gf.Elem {
	f := a.gen.Field
	k := a.K()
	acc := a.offset
	for j := 1; j <= k; j++ {
		acc = f.Add(acc, f.Mul(a.gen.Coeffs[j], a.state[k-j]))
	}
	copy(a.state, a.state[1:])
	a.state[len(a.state)-1] = acc
	return acc
}

// Sequence returns u_0 … u_{n-1} including the seed window, without
// mutating the automaton.
func (a *Affine) Sequence(n int) []gf.Elem {
	cp := MustAffine(a.gen, a.offset, a.State())
	out := make([]gf.Elem, 0, n)
	out = append(out, cp.state...)
	if n <= len(out) {
		return out[:n]
	}
	for len(out) < n {
		out = append(out, cp.Step())
	}
	return out
}

// Period returns the period of the affine orbit containing the current
// state (by Brent's algorithm; affine maps with invertible linear part
// are bijective, so orbits are pure cycles).  maxSteps of 0 uses the
// bound (2^m)^k.
func (a *Affine) Period(maxSteps uint64) uint64 {
	if maxSteps == 0 {
		bits := a.gen.Field.M() * a.K()
		if bits >= 64 {
			maxSteps = ^uint64(0)
		} else {
			maxSteps = uint64(1) << uint(bits)
		}
	}
	tortoise := MustAffine(a.gen, a.offset, a.State())
	hare := MustAffine(a.gen, a.offset, a.State())
	var power, lam uint64 = 1, 0
	hare.Step()
	lam = 1
	for !equalStates(tortoise.state, hare.state) {
		if power == lam {
			tortoise.state = hare.State()
			power *= 2
			lam = 0
		}
		hare.Step()
		lam++
		if lam > maxSteps {
			return 0
		}
	}
	return lam
}

// AffineJumpAhead returns the affine automaton state after n steps from
// state, in O((k+1)³ log n) field operations using the homogeneous
// trick: embed the affine map S ↦ C·S + D into the (k+1)×(k+1) linear
// map [[C D],[0 1]].
func AffineJumpAhead(g GenPoly, offset gf.Elem, state []gf.Elem, n uint64) ([]gf.Elem, error) {
	if len(state) != g.K() {
		return nil, fmt.Errorf("lfsr: state length %d != k=%d", len(state), g.K())
	}
	k := g.K()
	f := g.Field
	c := Companion(g)
	h := NewMatrix(f, k+1)
	for i := 0; i < k; i++ {
		copy(h.A[i][:k], c.A[i])
	}
	h.A[k-1][k] = offset // the new element's constant term
	h.A[k][k] = 1
	hn := h.Pow(n)
	v := make([]gf.Elem, k+1)
	copy(v, state)
	v[k] = 1
	out := hn.Apply(v)
	return out[:k], nil
}
