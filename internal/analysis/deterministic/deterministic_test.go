package deterministic_test

import (
	"testing"

	"repro/internal/analysis/analyzertest"
	"repro/internal/analysis/deterministic"
)

func TestDeterministic(t *testing.T) {
	analyzertest.Run(t, "testdata", deterministic.Analyzer, "a")
}
