// Package telemetry is the campaign instrumentation layer: cheap,
// race-clean counters threaded through the simulation engines
// (sim.Shards*, the streaming drivers, the program cache, the arena
// pool, fault collapsing) and the coverage session executors.
//
// # Design
//
// The kernel hot path must stay hot, so the package is built around
// three tiers:
//
//   - Worker-local accumulation (Local): each shard worker owns a plain
//     struct it increments freely — no atomics, no sharing, effectively
//     register arithmetic.
//
//   - Per-worker flush slots (Worker): cache-line-padded blocks of
//     atomic counters, one per worker index.  A worker flushes its
//     Local into its slot once per batch (materialized drivers) or once
//     per chunk (streaming drivers) — a handful of uncontended atomic
//     adds amortized over 64..8192 faults.  False sharing is kept off
//     the table by the padding.
//
//   - Aggregation on read (Snapshot): readers sum the slots (plus the
//     low-frequency global counters: program-cache hits, arena reuse,
//     collapse in/out) whenever they want a view.  Writers never
//     aggregate.
//
// When no Registry is attached (telemetry.Active() == nil) the
// instrumented drivers skip every timestamp and counter behind a single
// nil check per batch, so the instrumentation is compiled in but
// near-free — BenchmarkTelemetryOverhead guards the bound (<2% on the
// compiled campaign path).
//
// # Progress
//
// A Registry carries one active campaign stage at a time
// (BeginStage): flushes feed a rate-limited Progress callback
// (OnProgress) with faults done/total, throughput, an ETA extrapolated
// from the rate so far, the universe-index high-water mark (streaming
// sources are index-addressable, so the high-water mark is exactly the
// checkpoint a resumable run would restart from), and the session's
// current survivor count.  Completed stages are reported through
// OnStage with per-worker kernel / sink-wait / source-wait time — the
// sink-wait share is the direct answer to "is the serialized streaming
// sink the bottleneck at N workers".
//
// # Debug endpoint
//
// ServeDebug exposes the same snapshot as flat JSON on /metrics plus
// the standard net/http/pprof handlers, so a long scaling run can be
// profiled in flight (faultcov -debug-addr :6060).
package telemetry
