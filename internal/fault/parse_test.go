package fault

import (
	"testing"

	"repro/internal/ram"
)

func TestParseSpecRoundTrips(t *testing.T) {
	cases := map[string]Fault{
		"saf0@3.1":          SAF{Cell: 3, Bit: 1, Value: 0},
		"saf1@17":           SAF{Cell: 17, Value: 1},
		"tfup@5.2":          TF{Cell: 5, Bit: 2, Up: true},
		"tfdown@9":          TF{Cell: 9, Up: false},
		"sof@12":            SOF{Cell: 12},
		"drf0@4.1/100":      DRF{Cell: 4, Bit: 1, Decay: 0, Delay: 100},
		"drf1@4/7":          DRF{Cell: 4, Decay: 1, Delay: 7},
		"afnone@8":          AF{Kind: AFNone, Addr: 8},
		"afalias@2:6":       AF{Kind: AFAlias, Addr: 2, Target: 6},
		"afmulti@2:6":       AF{Kind: AFMulti, Addr: 2, Target: 6},
		"cfin@1.0>2.0":      CFin{AggCell: 1, VicCell: 2, Up: true},
		"cfind@1>2":         CFin{AggCell: 1, VicCell: 2, Up: false},
		"cfid0@1>2":         CFid{AggCell: 1, VicCell: 2, Up: true, Value: 0},
		"cfid1@1.3>2.1":     CFid{AggCell: 1, AggBit: 3, VicCell: 2, VicBit: 1, Up: true, Value: 1},
		"cfst@1.0=1>2.0=0":  CFst{AggCell: 1, VicCell: 2, AggValue: 1, Value: 0},
		"bridge@1.0~2.0":    BF{CellA: 1, CellB: 2, And: false},
		"bridgeand@1.2~3.1": BF{CellA: 1, BitA: 2, CellB: 3, BitB: 1, And: true},
		" SAF1@2 ":          SAF{Cell: 2, Value: 1}, // case/space tolerant
	}
	for spec, want := range cases {
		got, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("ParseSpec(%q) = %#v, want %#v", spec, got, want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "saf0", "bogus@1", "saf0@x", "saf0@1.y", "saf0@-1",
		"drf0@1", "drf0@1/x", "afalias@1", "afalias@x:2", "afalias@1:y",
		"cfin@1", "cfst@1>2", "cfst@1.0=2>2.0=0", "bridge@1",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) should fail", spec)
		}
	}
}

func TestMustParseSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseSpec did not panic")
		}
	}()
	MustParseSpec("nope")
}

func TestParsedSpecsAreInjectable(t *testing.T) {
	specs := []string{
		"saf0@3.1", "tfup@5.2", "sof@12", "drf1@4/7", "afalias@2:6",
		"cfin@1>2", "cfid1@1>2", "cfst@1.0=1>2.0=0", "bridge@1~2",
	}
	for _, s := range specs {
		f := MustParseSpec(s)
		mem := f.Inject(ram.NewWOM(16, 4))
		if mem.Size() != 16 || mem.Width() != 4 {
			t.Errorf("%s: wrapper geometry broken", s)
		}
	}
}
