package sim

import (
	"context"
	"testing"

	"repro/internal/fault"
	"repro/internal/march"
)

// wideTraceCases covers every kernel family the wide paths dispatch to:
// the width-1 kernel (march on a 1-bit memory), the generic multi-bit
// kernel, the affine recurrence path (PRT), and the fold/observe (MISR)
// path at both widths.  Each case pairs the trace with a fault universe
// whose size is deliberately NOT a multiple of any batch width, so the
// final partial batch exercises the idle-group masking too.
func wideTraceCases(t *testing.T) []struct {
	name   string
	tr     *Trace
	faults []fault.Fault
} {
	t.Helper()
	return []struct {
		name   string
		tr     *Trace
		faults []fault.Fault
	}{
		{"width1", recordMarch(t, march.MarchB(), 24),
			fault.StandardUniverse(24, 1, 8, 3).Faults},
		{"generic", recordWOM(t, march.MarchCMinus(), 24, 4),
			fault.StandardUniverse(24, 4, 8, 5).Faults},
		{"affine", recordPRT(t, 17, 4),
			fault.StandardUniverse(17, 4, 8, 7).Faults},
		{"observer1", recordObserver(t, 24, 1),
			fault.StandardUniverse(24, 1, 8, 9).Faults},
		{"observerN", recordObserver(t, 24, 4),
			fault.StandardUniverse(24, 4, 8, 9).Faults},
	}
}

// TestWideKernelMatchesWidth1 is the tentpole equivalence property: a
// program compiled at 4 or 8 lane words must assign every fault the
// exact verdict of the classic single-word program — batch by batch,
// including the trailing partial batch — for every kernel family.
func TestWideKernelMatchesWidth1(t *testing.T) {
	for _, tc := range wideTraceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			p1, err := Compile(tc.tr, 1)
			if err != nil {
				t.Fatal(err)
			}
			a1 := NewArena(p1)
			for _, w := range []int{4, 8} {
				pw, err := Compile(tc.tr, w)
				if err != nil {
					t.Fatal(err)
				}
				if pw.LaneWords() != w || pw.BatchFaults() != w*BatchSize {
					t.Fatalf("lane geometry: LaneWords=%d BatchFaults=%d, want %d/%d",
						pw.LaneWords(), pw.BatchFaults(), w, w*BatchSize)
				}
				if pw.FusedOps() != p1.FusedOps() {
					t.Fatalf("fusion differs across widths: %d at w=%d, %d at w=1",
						pw.FusedOps(), w, p1.FusedOps())
				}
				aw := NewArena(pw)
				det := make([]uint64, w)
				for lo := 0; lo < len(tc.faults); lo += pw.BatchFaults() {
					hi := lo + pw.BatchFaults()
					if hi > len(tc.faults) {
						hi = len(tc.faults)
					}
					if err := pw.ReplayInto(aw, tc.faults[lo:hi], det); err != nil {
						t.Fatal(err)
					}
					// The wide batch's group g must equal the W=1 mask of the
					// corresponding 64-fault sub-batch.
					for g := 0; g*BatchSize < hi-lo; g++ {
						slo := lo + g*BatchSize
						shi := slo + BatchSize
						if shi > hi {
							shi = hi
						}
						want, err := p1.Replay(a1, tc.faults[slo:shi])
						if err != nil {
							t.Fatal(err)
						}
						if det[g] != want {
							t.Fatalf("w=%d batch [%d:%d) group %d:\n  wide %064b\n  w=1  %064b",
								w, lo, hi, g, det[g], want)
						}
					}
				}
			}
		})
	}
}

// TestWideShardsCompiledMatchesWidth1 runs the full shard driver over
// wide programs: verdict slices must be identical to the single-word
// drive at every worker count (batch boundaries move with the width,
// worker interleaving with the count — neither may show).
func TestWideShardsCompiledMatchesWidth1(t *testing.T) {
	const n = 32
	tr := recordMarch(t, march.MarchB(), n)
	p1, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StandardUniverse(n, 1, 8, 11).Faults
	ctx := context.Background()
	ref, _, err := ShardsCompiled(ctx, p1, faults, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		pw, err := Compile(tr, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 8} {
			got, _, err := ShardsCompiled(ctx, pw, faults, workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("w=%d workers=%d: fault %d differs from width-1 verdict", w, workers, i)
				}
			}
		}
	}
}

// TestWideStreamMatchesWidth1 is the streaming variant across chunk
// sizes and collapse settings: chunk-local collapsing and the wide
// batch layout must compose without changing a single verdict.
func TestWideStreamMatchesWidth1(t *testing.T) {
	const n = 33
	tr := recordMarch(t, march.MarchCMinus(), n)
	p1, err := Compile(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.StandardUniverse(n, 1, 6, 9).Faults
	ctx := context.Background()
	ref, _, err := ShardsCompiled(ctx, p1, faults, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		pw, err := Compile(tr, w)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{7, 100, 4096} {
			for _, collapse := range []bool{false, true} {
				cs := newCollectSink()
				if _, _, err := ShardsCompiledStream(ctx, pw, fault.SliceSource(faults),
					StreamConfig{Chunk: chunk, Workers: 3, Collapse: collapse}, cs.sink); err != nil {
					t.Fatal(err)
				}
				if cs.seen != len(faults) {
					t.Fatalf("w=%d chunk=%d: %d verdicts, want %d", w, chunk, cs.seen, len(faults))
				}
				for i := range faults {
					if cs.det[i] != ref[i] {
						t.Fatalf("w=%d chunk=%d collapse=%v fault %d: stream %v, width-1 %v",
							w, chunk, collapse, i, cs.det[i], ref[i])
					}
				}
			}
		}
	}
}

// TestWideReplaySteadyStateAllocatesNothing extends the zero-alloc
// hot-path guarantee to the wide kernels, for every kernel family.
func TestWideReplaySteadyStateAllocatesNothing(t *testing.T) {
	for _, tc := range wideTraceCases(t) {
		for _, w := range []int{4, 8} {
			p, err := Compile(tc.tr, w)
			if err != nil {
				t.Fatal(err)
			}
			a := NewArena(p)
			batch := tc.faults
			if len(batch) > p.BatchFaults() {
				batch = batch[:p.BatchFaults()]
			}
			det := make([]uint64, w)
			if err := p.ReplayInto(a, batch, det); err != nil { // warm-up
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if err := p.ReplayInto(a, batch, det); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%s w=%d: steady-state replay allocates %.1f objects per batch, want 0",
					tc.name, w, allocs)
			}
		}
	}
}

// TestCompileRejectsUnsupportedLaneWidths: width validation must refuse
// up front, on both the word-count and the CLI machine-count units.
func TestCompileRejectsUnsupportedLaneWidths(t *testing.T) {
	tr := recordMarch(t, march.MATSPlus(), 8)
	for _, w := range []int{-1, 0, 2, 3, 5, 7, 9, 16} {
		if _, err := Compile(tr, w); err == nil {
			t.Errorf("Compile accepted laneWords=%d", w)
		}
		if ValidLaneWords(w) {
			t.Errorf("ValidLaneWords(%d) = true", w)
		}
	}
	for _, w := range []int{1, 4, 8} {
		if !ValidLaneWords(w) {
			t.Errorf("ValidLaneWords(%d) = false", w)
		}
	}
	for machines, want := range map[int]int{64: 1, 256: 4, 512: 8} {
		got, err := LaneWordsForMachines(machines)
		if err != nil || got != want {
			t.Errorf("LaneWordsForMachines(%d) = %d, %v; want %d", machines, got, err, want)
		}
	}
	for _, machines := range []int{-64, 0, 1, 63, 100, 128, 384, 1024} {
		if _, err := LaneWordsForMachines(machines); err == nil {
			t.Errorf("LaneWordsForMachines accepted %d", machines)
		}
	}
}

// TestReplayRejectsWideProgram: the single-mask compat entry point only
// fits one lane word; a wide program must refuse it rather than return
// a truncated mask.
func TestReplayRejectsWideProgram(t *testing.T) {
	tr := recordMarch(t, march.MATSPlus(), 8)
	p, err := Compile(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := NewArena(p)
	faults := fault.SingleCellUniverse(8, 1)
	if _, err := p.Replay(a, faults); err == nil {
		t.Fatal("Replay accepted a 4-word program")
	}
	det := make([]uint64, 3)
	if err := p.ReplayInto(a, faults, det); err == nil {
		t.Fatal("ReplayInto accepted a det buffer of the wrong word count")
	}
}
