// Streaming universe generators.  Every Source in this package is an
// index-addressable pure function of (family parameters, index):
// Next/Skip/Reset must enumerate the same faults in the same order on
// every run, or checkpoint resume and the streaming≡materialized
// equivalence break.
//
//faultsim:deterministic

package fault

import "repro/internal/ram"

// This file is the streaming side of the universe builders: a Source
// is a pull-based fault generator that yields a universe in bounded
// chunks instead of materializing it as one slice, so campaign memory
// is capped by the chunk size — not the universe size.  Every universe
// family is defined here as a resumable generator; the slice-returning
// constructors in universe.go and npsf.go are thin Collect wrappers
// over them, so the two shapes cannot drift apart.
//
// All built-in sources are index-addressable (fault i of the stream is
// computed from i by arithmetic), which makes them trivially resumable
// and gives exact Counts; Next never allocates beyond the boxed fault
// headers it writes into the caller's buffer.

// Source is a pull-based fault stream.  Next fills dst with the next
// faults of the stream and returns how many were written; ok reports
// whether the stream may have more (ok == false means the source is
// exhausted — the n faults written, if any, are the last).  Count
// returns the total number of faults a freshly Reset source yields;
// exact distinguishes a guaranteed count from an estimate.  Reset
// rewinds the stream to the beginning, so one source can drive every
// stage of a multi-test campaign session.  Skip advances past the
// next n faults and returns how many were actually skipped (fewer
// only when the stream ends first) — semantically identical to
// discarding n faults via Next, but O(1) for the index-addressable
// built-in generators, which is what makes checkpoint/resume seeks
// over multi-billion-fault universes free.  A Source is single-
// threaded; concurrent drivers serialize Next behind a mutex.
type Source interface {
	Next(dst []Fault) (n int, ok bool)
	Count() (n int, exact bool)
	Reset()
	Skip(n int) int
}

// Stream is a named Source — the streaming analogue of Universe.
type Stream struct {
	Name   string
	Source Source
}

// Collect drains the source (from a fresh Reset) into one slice and
// leaves it Reset again — the bridge from the streaming builders to
// the materialized universe constructors.
func Collect(s Source) []Fault {
	s.Reset()
	var out []Fault
	if n, exact := s.Count(); exact {
		out = make([]Fault, 0, n)
	}
	buf := make([]Fault, 4096)
	for {
		n, ok := s.Next(buf)
		out = append(out, buf[:n]...)
		if !ok {
			break
		}
	}
	s.Reset()
	return out
}

// genSource adapts an index-addressable family — count faults, the
// i-th computed by at — into a resumable Source.
type genSource struct {
	n   int
	at  func(i int) Fault
	pos int
}

func (g *genSource) Next(dst []Fault) (int, bool) {
	n := len(dst)
	if rem := g.n - g.pos; n > rem {
		n = rem
	}
	for i := 0; i < n; i++ {
		dst[i] = g.at(g.pos + i)
	}
	g.pos += n
	return n, g.pos < g.n
}

func (g *genSource) Count() (int, bool) { return g.n, true }

func (g *genSource) Reset() { g.pos = 0 }

func (g *genSource) Skip(n int) int {
	if rem := g.n - g.pos; n > rem {
		n = rem
	}
	if n < 0 {
		n = 0
	}
	g.pos += n
	return n
}

// SliceSource adapts an already-materialized fault slice to the
// Source interface.
func SliceSource(faults []Fault) Source {
	return &genSource{n: len(faults), at: func(i int) Fault { return faults[i] }}
}

// concatSource chains several sources back to back.
type concatSource struct {
	srcs []Source
	cur  int
}

// ConcatSource yields the sources' faults in order, one source after
// the other; Count is the sum (exact only when every part is exact).
func ConcatSource(srcs ...Source) Source {
	return &concatSource{srcs: srcs}
}

func (c *concatSource) Next(dst []Fault) (int, bool) {
	total := 0
	for total < len(dst) && c.cur < len(c.srcs) {
		n, ok := c.srcs[c.cur].Next(dst[total:])
		total += n
		if !ok {
			c.cur++
		}
	}
	return total, c.cur < len(c.srcs)
}

func (c *concatSource) Count() (int, bool) {
	total, exact := 0, true
	for _, s := range c.srcs {
		n, e := s.Count()
		total += n
		exact = exact && e
	}
	return total, exact
}

func (c *concatSource) Reset() {
	for _, s := range c.srcs {
		s.Reset()
	}
	c.cur = 0
}

func (c *concatSource) Skip(n int) int {
	total := 0
	for total < n && c.cur < len(c.srcs) {
		k := c.srcs[c.cur].Skip(n - total)
		total += k
		if total < n {
			// The current part ended before satisfying the seek.
			c.cur++
		}
	}
	return total
}

// SingleCellSource streams every SAF and TF instance of an n-cell,
// m-bit memory: 4 faults per bit (SA0, SA1, TF↑, TF↓).
func SingleCellSource(n, m int) Source {
	return &genSource{n: 4 * n * m, at: func(i int) Fault {
		b := i / 4
		c, bit := b/m, b%m
		switch i % 4 {
		case 0:
			return SAF{Cell: c, Bit: bit, Value: 0}
		case 1:
			return SAF{Cell: c, Bit: bit, Value: 1}
		case 2:
			return TF{Cell: c, Bit: bit, Up: true}
		default:
			return TF{Cell: c, Bit: bit, Up: false}
		}
	}}
}

// StuckOpenSource streams one SOF per cell.
func StuckOpenSource(n int) Source {
	return &genSource{n: n, at: func(i int) Fault { return SOF{Cell: i} }}
}

// RetentionSource streams DRF faults (decay to 0 and to 1) for every
// bit, with the given decay delay in operations.
func RetentionSource(n, m int, delay uint64) Source {
	return &genSource{n: 2 * n * m, at: func(i int) Fault {
		b := i / 2
		return DRF{Cell: b / m, Bit: b % m, Decay: ram.Word(i % 2), Delay: delay}
	}}
}

// DecoderSource streams the address-decoder faults of DecoderUniverse:
// per address one AFNone, plus AFAlias and AFMulti against the next
// address (wrapping).
func DecoderSource(n int) Source {
	if n < 2 {
		panic("fault: decoder universe needs at least 2 cells")
	}
	return &genSource{n: 3 * n, at: func(i int) Fault {
		a := i / 3
		partner := (a + 1) % n
		switch i % 3 {
		case 0:
			return AF{Kind: AFNone, Addr: a}
		case 1:
			return AF{Kind: AFAlias, Addr: a, Target: partner}
		default:
			return AF{Kind: AFMulti, Addr: a, Target: partner}
		}
	}}
}

// couplingAt expands pair p into its sub-th coupling fault, in the
// fixed 12-fault order of CouplingUniverse: CFin↑, CFid↑/0, CFid↑/1,
// CFin↓, CFid↓/0, CFid↓/1, the four CFst states, BF-AND, BF-OR.
func couplingAt(p CouplingPair, sub int) Fault {
	switch sub {
	case 0:
		return CFin{p.AggCell, p.AggBit, p.VicCell, p.VicBit, true}
	case 1:
		return CFid{p.AggCell, p.AggBit, p.VicCell, p.VicBit, true, 0}
	case 2:
		return CFid{p.AggCell, p.AggBit, p.VicCell, p.VicBit, true, 1}
	case 3:
		return CFin{p.AggCell, p.AggBit, p.VicCell, p.VicBit, false}
	case 4:
		return CFid{p.AggCell, p.AggBit, p.VicCell, p.VicBit, false, 0}
	case 5:
		return CFid{p.AggCell, p.AggBit, p.VicCell, p.VicBit, false, 1}
	case 6:
		return CFst{p.AggCell, p.AggBit, p.VicCell, p.VicBit, 0, 0}
	case 7:
		return CFst{p.AggCell, p.AggBit, p.VicCell, p.VicBit, 0, 1}
	case 8:
		return CFst{p.AggCell, p.AggBit, p.VicCell, p.VicBit, 1, 0}
	case 9:
		return CFst{p.AggCell, p.AggBit, p.VicCell, p.VicBit, 1, 1}
	case 10:
		return BF{p.AggCell, p.AggBit, p.VicCell, p.VicBit, true}
	default:
		return BF{p.AggCell, p.AggBit, p.VicCell, p.VicBit, false}
	}
}

// couplingSubTypes is the size of the per-pair sub-type set.
const couplingSubTypes = 12

// CouplingSource streams the 12-fault sub-type expansion of each pair,
// in pair order.
func CouplingSource(pairs []CouplingPair) Source {
	return &genSource{n: couplingSubTypes * len(pairs), at: func(i int) Fault {
		return couplingAt(pairs[i/couplingSubTypes], i%couplingSubTypes)
	}}
}

// FullCouplingSource streams the exhaustive inter-cell coupling
// universe of an n-cell bit-oriented array: every ordered
// aggressor→victim cell pair (a ≠ v, bit 0 on both sides) expanded
// into the full 12-fault sub-type set — n·(n-1)·12 fault instances,
// the population SamplePairs-built universes estimate coverage over.
// The pairs are computed from the stream index, so nothing is
// materialized: exhaustive universes of tens of millions of instances
// stream through a campaign in chunk-sized bites (the E17 workload).
// BF is symmetric in its two ends, so the reverse-pair duplicates
// collapse structurally when fault collapsing is on.
func FullCouplingSource(n int) Source {
	if n < 2 {
		panic("fault: coupling pairs need at least 2 cells")
	}
	return &genSource{n: n * (n - 1) * couplingSubTypes, at: func(i int) Fault {
		pi, sub := i/couplingSubTypes, i%couplingSubTypes
		a := pi / (n - 1)
		v := pi % (n - 1)
		if v >= a {
			v++
		}
		return couplingAt(CouplingPair{AggCell: a, VicCell: v}, sub)
	}}
}

// IntraWordSource streams intra-word coupling faults for every ordered
// bit pair of every cell: CFin ↑/↓ and CFid ↑/↓ × 0/1 (6 per ordered
// pair).  Requires m >= 2.
func IntraWordSource(n, m int) Source {
	if m < 2 {
		panic("fault: intra-word universe needs word width >= 2")
	}
	perCell := 6 * m * (m - 1)
	return &genSource{n: n * perCell, at: func(i int) Fault {
		c, r := i/perCell, i%perCell
		pair, sub := r/6, r%6
		ba := pair / (m - 1)
		bv := pair % (m - 1)
		if bv >= ba {
			bv++
		}
		// Sub-type order of IntraWordUniverse: per direction (↑ then ↓)
		// a CFin and the two CFid polarities.
		up := sub < 3
		switch sub % 3 {
		case 0:
			return CFin{c, ba, c, bv, up}
		case 1:
			return CFid{c, ba, c, bv, up, 0}
		default:
			return CFid{c, ba, c, bv, up, 1}
		}
	}}
}

// completeBases lists the interior cells of an n-cell grid of the
// given width — the bases whose four von Neumann neighbours all exist.
// O(n) ints: bounded by the memory size, never by the universe size.
func completeBases(n, width int) []int32 {
	var out []int32
	for base := 0; base < n; base++ {
		if GridNeighbourhood(base, n, width).Complete() {
			out = append(out, int32(base))
		}
	}
	return out
}

// npsfPatterns returns the number of neighbourhood patterns a stride
// subsampling visits (p = 0, stride, 2·stride, … < 16) and the
// normalized stride.
func npsfPatterns(stride int) (count, norm int) {
	if stride < 1 {
		stride = 1
	}
	return (15 + stride) / stride, stride
}

// NPSFSource streams static NPSF faults for every interior cell: per
// cell, the stride-subsampled patterns × forced values 0/1.
func NPSFSource(n, width, stride int) Source {
	bases := completeBases(n, width)
	pc, stride := npsfPatterns(stride)
	perBase := 2 * pc
	return &genSource{n: len(bases) * perBase, at: func(i int) Fault {
		nb := GridNeighbourhood(int(bases[i/perBase]), n, width)
		r := i % perBase
		return SNPSF{Nb: nb, Pattern: ram.Word((r / 2) * stride), Value: ram.Word(r % 2)}
	}}
}

// ANPSFSource streams active NPSF faults: per interior cell, each of
// the four neighbours as trigger, both directions, patterns
// subsampled by stride.
func ANPSFSource(n, width, stride int) Source {
	bases := completeBases(n, width)
	pc, stride := npsfPatterns(stride)
	perBase := 4 * 2 * pc
	return &genSource{n: len(bases) * perBase, at: func(i int) Fault {
		nb := GridNeighbourhood(int(bases[i/perBase]), n, width)
		r := i % perBase
		trig := r / (2 * pc)
		r %= 2 * pc
		p := ram.Word((r / 2) * stride)
		if r%2 == 0 {
			return ANPSF{Nb: nb, Trigger: trig, Up: true, Pattern: p, Value: 0}
		}
		return ANPSF{Nb: nb, Trigger: trig, Up: false, Pattern: p, Value: 1}
	}}
}
