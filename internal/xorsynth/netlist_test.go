package xorsynth

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

func TestNaiveMatchesField(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		f := gf.NewField(m)
		for c := gf.Elem(0); c <= f.Mask(); c++ {
			nl := Naive(f.ConstMulMatrix(c))
			for x := gf.Elem(0); x <= f.Mask(); x++ {
				if got, want := gf.Elem(nl.Eval(uint32(x))), f.Mul(c, x); got != want {
					t.Fatalf("GF(2^%d) naive c=%x x=%x: got %x want %x", m, c, x, got, want)
				}
			}
			if m == 8 && c > 40 {
				break
			}
		}
	}
}

func TestCSEMatchesField(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		f := gf.NewField(m)
		for c := gf.Elem(0); c <= f.Mask(); c++ {
			nl := CSE(f.ConstMulMatrix(c))
			for x := gf.Elem(0); x <= f.Mask(); x++ {
				if got, want := gf.Elem(nl.Eval(uint32(x))), f.Mul(c, x); got != want {
					t.Fatalf("GF(2^%d) CSE c=%x x=%x: got %x want %x", m, c, x, got, want)
				}
			}
			if m == 8 && c > 40 {
				break
			}
		}
	}
}

func TestCSENeverWorseThanNaive(t *testing.T) {
	f := gf.NewField(8)
	for c := gf.Elem(1); c <= f.Mask(); c++ {
		m := f.ConstMulMatrix(c)
		if CSE(m).GateCount() > Naive(m).GateCount() {
			t.Errorf("CSE worse than naive for c=%x", c)
		}
	}
}

func TestCSESavesOnDenseMatrix(t *testing.T) {
	// A matrix whose rows share big supports must benefit from CSE.
	m := gf.NewBitMatrix(8)
	for i := range m.Rows {
		m.Rows[i] = 0xFF // every output is the parity of all inputs
	}
	naive := Naive(m)
	cse := CSE(m)
	if naive.GateCount() != 8*7 {
		t.Fatalf("naive gates = %d, want 56", naive.GateCount())
	}
	// Optimal is 7 (compute parity once, fan out); greedy CSE must get
	// close — certainly strictly better than half the naive count.
	if cse.GateCount() >= naive.GateCount()/2 {
		t.Errorf("CSE gates = %d, expected large saving over %d", cse.GateCount(), naive.GateCount())
	}
	if !cse.Matrix().Equal(m) {
		t.Errorf("CSE netlist does not realise the matrix")
	}
}

func TestIdentityNeedsNoGates(t *testing.T) {
	f := gf.NewField(4)
	nl := CSE(f.ConstMulMatrix(1))
	if nl.GateCount() != 0 {
		t.Errorf("multiplier by 1 uses %d gates, want 0", nl.GateCount())
	}
	if nl.Depth() != 0 {
		t.Errorf("multiplier by 1 depth = %d, want 0", nl.Depth())
	}
}

func TestZeroConstant(t *testing.T) {
	f := gf.NewField(4)
	for _, nl := range []*Netlist{Naive(f.ConstMulMatrix(0)), CSE(f.ConstMulMatrix(0))} {
		if nl.GateCount() != 0 {
			t.Errorf("multiplier by 0 uses gates")
		}
		for x := uint32(0); x < 16; x++ {
			if nl.Eval(x) != 0 {
				t.Errorf("multiplier by 0 output nonzero")
			}
		}
	}
}

func TestMatrixRecovery(t *testing.T) {
	f := gf.NewField(8)
	for _, c := range []gf.Elem{0x02, 0x1B, 0xFF, 0x80} {
		want := f.ConstMulMatrix(c)
		if !Naive(want).Matrix().Equal(want) {
			t.Errorf("naive Matrix() mismatch for c=%x", c)
		}
		if !CSE(want).Matrix().Equal(want) {
			t.Errorf("CSE Matrix() mismatch for c=%x", c)
		}
	}
}

func TestDepthConsistent(t *testing.T) {
	f := gf.NewField(8)
	nl := Naive(f.ConstMulMatrix(0xFF))
	if nl.Depth() < 1 {
		t.Errorf("dense multiplier depth = %d", nl.Depth())
	}
	// A pure-wire netlist has depth 0.
	id := Naive(f.ConstMulMatrix(1))
	if id.Depth() != 0 {
		t.Errorf("wire netlist depth = %d", id.Depth())
	}
}

func TestVerilogEmission(t *testing.T) {
	f := gf.NewField(4)
	v := ConstMultiplier(f, 2).Verilog("mul2")
	for _, want := range []string{"module mul2", "input [3:0] x", "output [3:0] y", "endmodule"} {
		if !strings.Contains(v, want) {
			t.Errorf("Verilog missing %q:\n%s", want, v)
		}
	}
	// x2 multiplier in GF(16)/0x13: y0=x3, y1=x0^x3, y2=x1, y3=x2.
	if !strings.Contains(v, "xor") {
		t.Errorf("Verilog for x2 should contain at least one xor (y1)")
	}
}

func TestSurveyField(t *testing.T) {
	f := gf.NewField(4)
	costs := SurveyField(f)
	if len(costs) != 15 {
		t.Fatalf("survey size = %d, want 15", len(costs))
	}
	for _, c := range costs {
		if c.CSEGates > c.NaiveGates {
			t.Errorf("c=%x: CSE %d > naive %d", c.Constant, c.CSEGates, c.NaiveGates)
		}
		if c.Saved() != c.NaiveGates-c.CSEGates {
			t.Errorf("Saved() inconsistent")
		}
	}
	// Multiplication by 1 must be gate-free.
	if costs[0].Constant != 1 || costs[0].CSEGates != 0 {
		t.Errorf("survey[0] should be the free multiplier by 1: %+v", costs[0])
	}
}

func TestConstMultiplierHelper(t *testing.T) {
	f := gf.NewField(4)
	nl := ConstMultiplier(f, 2) // the paper's coefficient a=2
	for x := gf.Elem(0); x < 16; x++ {
		if gf.Elem(nl.Eval(uint32(x))) != f.Mul(2, x) {
			t.Fatalf("ConstMultiplier(2) wrong at %x", x)
		}
	}
}

func TestQuickCSELinear(t *testing.T) {
	f := gf.NewField(8)
	nl := CSE(f.ConstMulMatrix(0xA7))
	prop := func(a, b uint32) bool {
		x, y := a&0xFF, b&0xFF
		return nl.Eval(x^y) == nl.Eval(x)^nl.Eval(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRandomMatrixSynthesis(t *testing.T) {
	// For arbitrary 6x6 GF(2) matrices, both strategies must realise
	// exactly the matrix they were given.
	prop := func(r0, r1, r2, r3, r4, r5 uint32) bool {
		m := gf.NewBitMatrix(6)
		rows := []uint32{r0, r1, r2, r3, r4, r5}
		for i := range m.Rows {
			m.Rows[i] = rows[i] & 0x3F
		}
		return Naive(m).Matrix().Equal(m) && CSE(m).Matrix().Equal(m)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
